#!/bin/sh
# serve_smoke.sh — end-to-end smoke test for the stonned daemon.
#
# Builds stonned, starts it on an ephemeral local port, submits the same
# job twice, asserts the second response is served from the result cache
# ("cached":true), then SIGTERMs the daemon and asserts a clean drain
# (exit code 0). Everything a deploy needs to trust: the binary starts,
# serves, caches, and shuts down gracefully.
set -eu

GO=${GO:-go}
ADDR=${STONNED_ADDR:-127.0.0.1:19444}
BASE="http://$ADDR"
TMP=$(mktemp -d)
PID=""
cleanup() {
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

JOB='{"op":"gemm","arch":"maeri","ms":32,"bw":16,"m":16,"n":16,"k":32,"seed":7}'

$GO build -o "$TMP/stonned" ./cmd/stonned
"$TMP/stonned" -addr "$ADDR" &
PID=$!

# Wait for the daemon to come up (healthz polls, 10s budget).
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "serve-smoke: stonned did not become healthy at $BASE" >&2
        exit 1
    fi
    sleep 0.1
done

curl -sf -X POST -d "$JOB" "$BASE/jobs" >"$TMP/cold.json"
curl -sf -X POST -d "$JOB" "$BASE/jobs" >"$TMP/warm.json"

grep -q '"cached":false' "$TMP/cold.json" || {
    echo "serve-smoke: first submission was not a cold run:" >&2
    head -c 300 "$TMP/cold.json" >&2; echo >&2
    exit 1
}
grep -q '"cached":true' "$TMP/warm.json" || {
    echo "serve-smoke: repeated submission missed the result cache:" >&2
    head -c 300 "$TMP/warm.json" >&2; echo >&2
    exit 1
}

# The cached result must be byte-identical to the cold one.
sed 's/.*"result"://' "$TMP/cold.json" >"$TMP/cold.result"
sed 's/.*"result"://' "$TMP/warm.json" >"$TMP/warm.result"
cmp -s "$TMP/cold.result" "$TMP/warm.result" || {
    echo "serve-smoke: cached result bytes differ from the cold run" >&2
    exit 1
}

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
if wait "$PID"; then
    status=0
else
    status=$?
fi
PID="" # already reaped; keep the EXIT trap from killing a reused pid
if [ "$status" -ne 0 ]; then
    echo "serve-smoke: stonned exited $status on SIGTERM" >&2
    exit 1
fi
echo "serve-smoke: ok (cold run, cached repeat, byte-identical, clean shutdown)"
