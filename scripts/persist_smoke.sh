#!/bin/sh
# persist_smoke.sh — restart-persistence smoke test for the stonned daemon.
#
# Starts stonned with -cache-dir, submits a job cold, SIGTERMs the
# daemon, restarts it over the same directory, and asserts the repeat
# submission is served warm ("cached":true) with a byte-identical
# result. This is the deploy-facing proof that the disk tier survives a
# process restart.
set -eu

GO=${GO:-go}
ADDR=${STONNED_ADDR:-127.0.0.1:19445}
BASE="http://$ADDR"
TMP=$(mktemp -d)
PID=""
cleanup() {
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

JOB='{"op":"gemm","arch":"maeri","ms":32,"bw":16,"m":16,"n":16,"k":32,"seed":11}'

wait_healthy() {
    i=0
    until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "persist-smoke: stonned did not become healthy at $BASE" >&2
            exit 1
        fi
        sleep 0.1
    done
}

stop_daemon() {
    kill -TERM "$PID"
    if wait "$PID"; then
        status=0
    else
        status=$?
    fi
    PID=""
    if [ "$status" -ne 0 ]; then
        echo "persist-smoke: stonned exited $status on SIGTERM" >&2
        exit 1
    fi
}

$GO build -o "$TMP/stonned" ./cmd/stonned

# First life: cold run populates the disk cache.
"$TMP/stonned" -addr "$ADDR" -cache-dir "$TMP/cache" &
PID=$!
wait_healthy
curl -sf -X POST -d "$JOB" "$BASE/jobs" >"$TMP/cold.json"
grep -q '"cached":false' "$TMP/cold.json" || {
    echo "persist-smoke: first submission was not a cold run:" >&2
    head -c 300 "$TMP/cold.json" >&2; echo >&2
    exit 1
}
stop_daemon

# Second life: a fresh process over the same cache dir must serve the
# same job warm, byte-identically.
"$TMP/stonned" -addr "$ADDR" -cache-dir "$TMP/cache" &
PID=$!
wait_healthy
curl -sf -X POST -d "$JOB" "$BASE/jobs" >"$TMP/warm.json"
grep -q '"cached":true' "$TMP/warm.json" || {
    echo "persist-smoke: restarted daemon missed the persisted result:" >&2
    head -c 300 "$TMP/warm.json" >&2; echo >&2
    exit 1
}
sed 's/.*"result"://' "$TMP/cold.json" >"$TMP/cold.result"
sed 's/.*"result"://' "$TMP/warm.json" >"$TMP/warm.result"
cmp -s "$TMP/cold.result" "$TMP/warm.result" || {
    echo "persist-smoke: persisted result bytes differ from the cold run" >&2
    exit 1
}
stop_daemon

echo "persist-smoke: ok (cold run, restart, warm byte-identical repeat, clean shutdowns)"
