#!/bin/sh
# trace_smoke.sh — end-to-end smoke test for arrival-trace replay plus
# cache persistence.
#
# Replays the bundled tiny trace twice through stonnetrace with a shared
# -cache-dir. Each run starts a fresh in-process server, so the second
# run can only go warm via the persisted disk tier. Asserts the second
# replay is ~100% warm and that both runs report the same result digest
# — the restarted server served byte-identical results.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

TRACE=examples/traces/tiny.json
CACHE="$TMP/cache"

$GO build -o "$TMP/stonnetrace" ./cmd/stonnetrace

# Run 1: cold server, persistent cache dir. No request may fail or be
# rejected (the queue is deep enough for the tiny trace).
"$TMP/stonnetrace" -trace "$TRACE" -cache-dir "$CACHE" -speed 5 \
    -json -max-rejected 0 >"$TMP/run1.json"

# Run 2: brand-new server over the same cache dir. Every request must be
# a warm hit served from disk.
"$TMP/stonnetrace" -trace "$TRACE" -cache-dir "$CACHE" -speed 5 \
    -json -max-rejected 0 -min-warm-rate 0.99 >"$TMP/run2.json"

# The top-level digest is the first "digest" field in the report (it is
# declared before the per-scenario blocks). Same digest = byte-identical
# result stream across the restart.
d1=$(grep -o '"digest": *"[0-9a-f]*"' "$TMP/run1.json" | head -1)
d2=$(grep -o '"digest": *"[0-9a-f]*"' "$TMP/run2.json" | head -1)
if [ -z "$d1" ] || [ "$d1" != "$d2" ]; then
    echo "trace-smoke: replay digests differ across the cache restart:" >&2
    echo "  run1: $d1" >&2
    echo "  run2: $d2" >&2
    exit 1
fi

# A persisted entry must actually exist on disk.
count=$(find "$CACHE" -name '*.res' | wc -l)
if [ "$count" -lt 1 ]; then
    echo "trace-smoke: no persisted cache entries in $CACHE" >&2
    exit 1
fi

echo "trace-smoke: ok (deterministic replay, warm restart, $count persisted entries, digest $d1)"
