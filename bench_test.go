// Package repro's benchmark suite regenerates every table and figure of
// the paper's evaluation as testing.B benchmarks, plus ablation benches
// for the design choices DESIGN.md calls out. Each benchmark reports the
// headline metric of its figure via b.ReportMetric so `go test -bench=.`
// reproduces the numbers EXPERIMENTS.md records.
//
// Workloads use the documented 1/16 spatial scale so a full -bench=. run
// completes in minutes; cmd/experiments runs the larger-scale versions.
package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/dnn"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/sched"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/stonne"
)

const benchScale = 16

// --- Table V -----------------------------------------------------------

// BenchmarkTableV runs the eleven RTL-validation microbenchmarks and
// reports the mean absolute cycle error against the published counts.
func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, avg, err := exp.TableVRun()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avg*100, "%avg-err-vs-RTL")
	}
}

// --- Figure 1 ----------------------------------------------------------

func benchFig1(b *testing.B, f func(int) ([]exp.Fig1Row, error)) {
	for i := 0; i < b.N; i++ {
		rows, err := f(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		worst, sum := 0.0, 0.0
		for _, r := range rows {
			ratio := r.RatioSTOverAM()
			sum += ratio
			if ratio > worst {
				worst = ratio
			}
		}
		b.ReportMetric(worst, "max-ST/AM")
		b.ReportMetric(sum/float64(len(rows)), "mean-ST/AM")
	}
}

func BenchmarkFig1aSystolicVsAnalytical(b *testing.B) { benchFig1(b, exp.Fig1a) }
func BenchmarkFig1bMAERIBandwidth(b *testing.B)       { benchFig1(b, exp.Fig1b) }
func BenchmarkFig1cSIGMASparsity(b *testing.B)        { benchFig1(b, exp.Fig1c) }

// --- Figure 5 ----------------------------------------------------------

// BenchmarkFig5 runs the use-case-1 comparison on three representative
// models and reports the headline speedups.
func BenchmarkFig5AccelComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig5(benchScale, []string{"M", "S", "A"})
		if err != nil {
			b.Fatal(err)
		}
		agg := map[string]uint64{}
		for _, r := range rows {
			agg[r.Arch] += r.Cycles
		}
		b.ReportMetric(float64(agg["TPU-like"])/float64(agg["MAERI-like"]), "maeri-vs-tpu-x")
		b.ReportMetric(float64(agg["MAERI-like"])/float64(agg["SIGMA-like"]), "sigma-vs-maeri-x")
	}
}

// BenchmarkFig5Parallel times the same use-case-1 comparison fanned over
// the simpool at GOMAXPROCS workers and reports the wall-clock speedup
// against a serial (workers=1) run measured in the same invocation. On a
// single-core host both paths take the same time (speedup ≈ 1); the
// parallel win appears with ≥4 cores.
func BenchmarkFig5Parallel(b *testing.B) {
	ctx := context.Background()
	tags := []string{"M", "S", "A"}
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := exp.Fig5Par(ctx, 1, benchScale, tags); err != nil {
			b.Fatal(err)
		}
		serial := time.Since(t0)
		t0 = time.Now()
		if _, err := exp.Fig5Par(ctx, 0, benchScale, tags); err != nil {
			b.Fatal(err)
		}
		par := time.Since(t0)
		b.ReportMetric(serial.Seconds()/par.Seconds(), "speedup-vs-serial")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	}
}

// --- Figure 6 ----------------------------------------------------------

func BenchmarkFig6SNAPEA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig6(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		var sp float64
		for _, r := range rows {
			sp += r.Speedup
		}
		b.ReportMetric(sp/float64(len(rows)), "avg-speedup-x")
	}
}

// --- Figure 7 ----------------------------------------------------------

func BenchmarkFig7FilterMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, _, err := exp.Fig7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var avg float64
		for _, r := range a {
			avg += r.AvgFilters
		}
		b.ReportMetric(avg/float64(len(a)), "avg-filters-per-round")
	}
}

// --- Figure 9 ----------------------------------------------------------

func BenchmarkFig9Scheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig9(benchScale, []string{"S", "R", "V"})
		if err != nil {
			b.Fatal(err)
		}
		var lff float64
		var n int
		for _, r := range rows {
			if r.Policy == "LFF" {
				lff += r.NormRuntime
				n++
			}
		}
		b.ReportMetric(lff/float64(n), "lff-norm-runtime")
	}
}

func BenchmarkFig9cResNetSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig9c(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		b.ReportMetric(rows[0].NormRuntime, "best-layer-norm-runtime")
	}
}

// --- Multi-core chip scaling --------------------------------------------

// BenchmarkMulticoreScaling runs the chip scaling sweep (1/2/4 cores ×
// layer/batch placement, MobileNets, 8 streams) and reports each
// configuration's inference throughput plus the 4-core speedups — the
// snapshot metric pinning that chip composition actually overlaps work
// under both placement policies.
func BenchmarkMulticoreScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Multicore(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Throughput, fmt.Sprintf("%s-x%d-str/Mcyc", r.Placement, r.Cores))
			if r.Cores == exp.MulticoreCores[len(exp.MulticoreCores)-1] {
				b.ReportMetric(r.Speedup, r.Placement+"-x4-speedup")
				b.ReportMetric(float64(r.ICNWaitCycles), r.Placement+"-x4-icn-wait")
			}
		}
	}
}

// --- Raw engine benchmarks (cycles/sec of simulation throughput) --------

func benchEngineGEMM(b *testing.B, hw config.Hardware, m, n, k int) {
	hw.Preloaded = true
	acc, err := engine.New(hw)
	if err != nil {
		b.Fatal(err)
	}
	rng := dnn.NewRNG(1)
	A := tensor.New(m, k)
	B := tensor.New(k, n)
	for _, d := range [][]float32{A.Data(), B.Data()} {
		for i := range d {
			d[i] = float32(rng.Normal())
		}
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, run, err := acc.RunGEMM(A, B, "bench")
		if err != nil {
			b.Fatal(err)
		}
		cycles = run.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

func BenchmarkEngineTPU64x64x64(b *testing.B) {
	benchEngineGEMM(b, config.TPULike(256), 64, 64, 64)
}

func BenchmarkEngineMAERI64x64x64(b *testing.B) {
	benchEngineGEMM(b, config.MAERILike(256, 128), 64, 64, 64)
}

func BenchmarkEngineSIGMA64x64x64(b *testing.B) {
	benchEngineGEMM(b, config.SIGMALike(256, 128), 64, 64, 64)
}

// BenchmarkTraceOverhead runs the same MAERI GEMM untraced and traced: the
// "off" case pins the zero-overhead-when-disabled guarantee (a nil recorder
// costs one pointer check per run), the "on" case measures the per-cycle
// attribution cost of the enabled recorder.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		traced bool
	}{
		{"off", false},
		{"on", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			hw := config.MAERILike(256, 128)
			hw.Preloaded = true
			if cfg.traced {
				hw.Trace = &trace.Config{}
			}
			acc, err := engine.New(hw)
			if err != nil {
				b.Fatal(err)
			}
			rng := dnn.NewRNG(9)
			A := tensor.New(64, 64)
			B := tensor.New(64, 64)
			for _, d := range [][]float32{A.Data(), B.Data()} {
				for i := range d {
					d[i] = float32(rng.Normal())
				}
			}
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				_, run, err := acc.RunGEMM(A, B, "bench")
				if err != nil {
					b.Fatal(err)
				}
				cycles = run.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkFastForward pins the event-driven fast-forward win on the
// workload it targets: a MAERI GEMM with DRAM throttled to a trickle, so
// fold-barrier prefetch stalls dominate the simulated time. The "ticked"
// case forces the per-cycle loop (-fastforward=false); "fastforward" lets
// the kernel jump the provably-idle stall windows. Both simulate exactly the
// same cycle count (asserted by TestFastForwardTickedParity); only the
// wall-clock differs.
func BenchmarkFastForward(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		disable bool
	}{
		{"ticked", true},
		{"fastforward", false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			hw := config.MAERILike(128, 64)
			hw.Preloaded = true
			hw.DRAM.BandwidthGBs = 0.25 // trickle DRAM: fetch swamps compute
			hw.DRAM.Modules = 1
			hw.DisableFastForward = cfg.disable
			acc, err := engine.New(hw)
			if err != nil {
				b.Fatal(err)
			}
			rng := dnn.NewRNG(10)
			// Deep K, small M×N: one starved weight prefetch per fold with
			// little streaming to hide it — ~93% of the simulated cycles are
			// provably-idle barrier stalls.
			A := tensor.New(16, 4096)
			B := tensor.New(4096, 16)
			for _, d := range [][]float32{A.Data(), B.Data()} {
				for i := range d {
					d[i] = float32(rng.Normal())
				}
			}
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				_, run, err := acc.RunGEMM(A, B, "bench")
				if err != nil {
					b.Fatal(err)
				}
				cycles = run.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationFIFODepth sweeps the operand FIFO depth: deeper FIFOs
// let delivery run further ahead of compute and absorb reduction stalls.
func BenchmarkAblationFIFODepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8, 16} {
		b.Run(depthName(depth), func(b *testing.B) {
			hw := config.MAERILike(128, 32)
			hw.FIFODepth = depth
			hw.Preloaded = true
			acc, err := engine.New(hw)
			if err != nil {
				b.Fatal(err)
			}
			rng := dnn.NewRNG(2)
			A := tensor.New(32, 256)
			B := tensor.New(256, 32)
			for _, d := range [][]float32{A.Data(), B.Data()} {
				for i := range d {
					d[i] = float32(rng.Normal())
				}
			}
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				_, run, err := acc.RunGEMM(A, B, "ablation")
				if err != nil {
					b.Fatal(err)
				}
				cycles = run.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationRN compares the reduction networks (ART+ACC vs plain
// ART, whose fold partials round-trip through the output ports).
func BenchmarkAblationRN(b *testing.B) {
	for _, cfg := range []struct {
		name string
		rn   config.RNType
		acc  bool
	}{
		{"ART+ACC", config.ARTAccRN, true},
		{"ART", config.ARTRN, false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			hw := config.MAERILike(128, 64)
			hw.RN = cfg.rn
			hw.AccumulationBuffer = cfg.acc
			hw.Preloaded = true
			acc, err := engine.New(hw)
			if err != nil {
				b.Fatal(err)
			}
			rng := dnn.NewRNG(3)
			A := tensor.New(16, 512) // folds force accumulation traffic
			B := tensor.New(512, 16)
			for _, d := range [][]float32{A.Data(), B.Data()} {
				for i := range d {
					d[i] = float32(rng.Normal())
				}
			}
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				_, run, err := acc.RunGEMM(A, B, "ablation")
				if err != nil {
					b.Fatal(err)
				}
				cycles = run.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationSparseFormat compares the bitmap and CSR sparse front
// formats — identical cycles, different metadata traffic.
func BenchmarkAblationSparseFormat(b *testing.B) {
	for _, cfg := range []struct {
		name string
		f    config.SparseFmt
	}{
		{"bitmap", config.FmtBitmap},
		{"csr", config.FmtCSR},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			hw := config.SIGMALike(128, 128)
			hw.SparseFormat = cfg.f
			hw.Preloaded = true
			acc, err := engine.New(hw)
			if err != nil {
				b.Fatal(err)
			}
			rng := dnn.NewRNG(4)
			A := tensor.New(64, 256)
			for i, d := 0, A.Data(); i < len(d); i++ {
				if rng.Float64() > 0.8 {
					d[i] = float32(rng.Normal())
				}
			}
			B := tensor.New(256, 32)
			for i, d := 0, B.Data(); i < len(d); i++ {
				d[i] = float32(rng.Normal())
			}
			b.ResetTimer()
			var meta uint64
			for i := 0; i < b.N; i++ {
				_, run, err := acc.RunSpMM(A, B, "ablation", nil)
				if err != nil {
					b.Fatal(err)
				}
				meta = run.Counters["gb.meta_reads"]
			}
			b.ReportMetric(float64(meta), "meta-reads")
		})
	}
}

// BenchmarkAblationForwarding toggles the Linear MN forwarding links for a
// convolution: identical cycles (injection is serialized either way), but
// the GB read and tree-wire energy drop with forwarding on.
func BenchmarkAblationForwarding(b *testing.B) {
	for _, cfg := range []struct {
		name string
		mn   config.MNType
	}{
		{"LMN", config.LinearMN},
		{"DMN-style", config.DisabledMN},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			hw := config.MAERILike(128, 32)
			hw.MN = cfg.mn
			hw.Preloaded = true
			acc, err := engine.New(hw)
			if err != nil {
				b.Fatal(err)
			}
			cs := tensor.ConvShape{R: 3, S: 3, C: 8, G: 1, K: 8, N: 1, X: 16, Y: 16, Stride: 1, Padding: 1}
			rng := dnn.NewRNG(5)
			in := tensor.New(1, cs.C, cs.X, cs.Y)
			w := tensor.New(cs.K, cs.C, cs.R, cs.S)
			for _, d := range [][]float32{in.Data(), w.Data()} {
				for i := range d {
					d[i] = float32(rng.Normal())
				}
			}
			b.ResetTimer()
			var reads uint64
			for i := 0; i < b.N; i++ {
				_, run, err := acc.RunConv(in, w, cs, "ablation")
				if err != nil {
					b.Fatal(err)
				}
				reads = run.Counters["gb.reads"]
			}
			b.ReportMetric(float64(reads), "gb-reads")
		})
	}
}

// BenchmarkAblationPrefetch compares double-buffered DRAM prefetch against
// a cold start (Preloaded=false vs true on the same run).
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, cfg := range []struct {
		name      string
		preloaded bool
	}{
		{"cold-dram", false},
		{"preloaded", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			hw := config.MAERILike(128, 64)
			hw.Preloaded = cfg.preloaded
			acc, err := engine.New(hw)
			if err != nil {
				b.Fatal(err)
			}
			rng := dnn.NewRNG(6)
			A := tensor.New(64, 128)
			B := tensor.New(128, 64)
			for _, d := range [][]float32{A.Data(), B.Data()} {
				for i := range d {
					d[i] = float32(rng.Normal())
				}
			}
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				_, run, err := acc.RunGEMM(A, B, "ablation")
				if err != nil {
					b.Fatal(err)
				}
				cycles = run.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationDataflow pins the dense controller's stationary choice
// on a batch-1 fully-connected layer: forced weight-stationary reloads the
// stationary registers every fold with zero reuse, while the controller's
// automatic input-stationary choice streams the weights instead.
func BenchmarkAblationDataflow(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		df    config.Dataflow
		force bool
	}{
		{"auto", config.OutputStationary, false},
		{"forced-WS", config.WeightStationary, true},
		{"forced-IS", config.InputStationary, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			hw := config.MAERILike(128, 64)
			hw.Dataflow = cfg.df
			hw.ForceDataflow = cfg.force
			hw.Preloaded = true
			acc, err := engine.New(hw)
			if err != nil {
				b.Fatal(err)
			}
			rng := dnn.NewRNG(8)
			W := tensor.New(256, 512) // fc weights
			x := tensor.New(512, 1)   // batch-1 input column
			for _, d := range [][]float32{W.Data(), x.Data()} {
				for i := range d {
					d[i] = float32(rng.Normal())
				}
			}
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				_, run, err := acc.RunGEMM(W, x, "ablation")
				if err != nil {
					b.Fatal(err)
				}
				cycles = run.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationSchedulingPolicies sweeps the three policies on one
// sparse layer (the kernel of Fig. 9).
func BenchmarkAblationSchedulingPolicies(b *testing.B) {
	for _, pol := range []sched.Policy{sched.NS, sched.RDM, sched.LFF} {
		b.Run(pol.String(), func(b *testing.B) {
			hw := config.SIGMALike(256, 128)
			hw.Preloaded = true
			acc, err := engine.New(hw)
			if err != nil {
				b.Fatal(err)
			}
			// High per-row variance, as trained-then-pruned filters have.
			rng := dnn.NewRNG(7)
			A := tensor.New(96, 256)
			d := A.Data()
			for r := 0; r < 96; r++ {
				density := 0.05 + 0.4*rng.Float64()
				for c := 0; c < 256; c++ {
					if rng.Float64() < density {
						d[r*256+c] = float32(rng.Normal())
					}
				}
			}
			B := tensor.New(256, 64)
			for i, bd := 0, B.Data(); i < len(bd); i++ {
				bd[i] = float32(rng.Normal())
			}
			p := pol
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				_, run, err := acc.RunSpMM(A, B, "ablation", &p)
				if err != nil {
					b.Fatal(err)
				}
				cycles = run.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// --- Full-model benchmark through the public API -------------------------

func BenchmarkFullModelQuickstart(b *testing.B) {
	model, err := stonne.ScaleSpatial(stonne.SqueezeNet(), benchScale)
	if err != nil {
		b.Fatal(err)
	}
	w := stonne.InitWeights(model, 1)
	if err := w.Prune(model.Sparsity); err != nil {
		b.Fatal(err)
	}
	input := stonne.RandomInput(model, 2)
	hw := stonne.MAERILike(128, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, mr, err := stonne.RunModel(model, w, input, hw, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(mr.TotalCycles()), "sim-cycles")
	}
}

func depthName(d int) string {
	return "depth-" + string(rune('0'+d/10)) + string(rune('0'+d%10))
}
