// Snapea is use case 2 (Section VI-B): the simulator's back end extended
// with SnaPEA's data-dependent optimization. Weights are sign-sorted at
// compile time; during execution the accumulation logic cuts a convolution
// window off as soon as its partial sum can only stay negative — the
// following ReLU would zero it anyway (exact mode). The example runs a CNN
// on the SNAPEA-like accelerator and on the same architecture without the
// detection logic (the Baseline), and verifies the post-ReLU outputs still
// match the native execution bit-for-bit in the places that matter.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/stonne"
)

func main() {
	tag := flag.String("model", "A", "CNN tag: A S V R")
	scale := flag.Int("scale", 8, "spatial scale divisor")
	images := flag.Int("images", 2, "input samples")
	flag.Parse()

	full, err := stonne.ModelByShort(*tag)
	if err != nil {
		log.Fatal(err)
	}
	model, err := stonne.ScaleSpatial(full, *scale)
	if err != nil {
		log.Fatal(err)
	}
	weights := stonne.InitWeights(model, 11)
	if err := weights.Prune(model.Sparsity); err != nil {
		log.Fatal(err)
	}

	hw := stonne.SNAPEALike(64, 64) // the paper's use-case-2 system

	var cycSnap, cycBase, opsSnap, opsBase, memSnap, memBase uint64
	worst := 0.0
	for img := 0; img < *images; img++ {
		input := stonne.RandomInput(model, uint64(100+img))

		native, err := stonne.RunModelNative(model, weights, input)
		if err != nil {
			log.Fatal(err)
		}
		outSnap, snap, err := stonne.RunModel(model, weights, input, hw, nil)
		if err != nil {
			log.Fatal(err)
		}
		_, base, err := stonne.RunModel(model, weights, input, hw,
			&stonne.RunOptions{DisableSNAPEACut: true})
		if err != nil {
			log.Fatal(err)
		}

		cycSnap += snap.TotalCycles()
		cycBase += base.TotalCycles()
		opsSnap += snap.TotalMACs()
		opsBase += base.TotalMACs()
		memSnap += snap.TotalMemAccesses()
		memBase += base.TotalMemAccesses()

		for i, got := range outSnap.Data() {
			if d := math.Abs(float64(got - native.Data()[i])); d > worst {
				worst = d
			}
		}
	}

	fmt.Printf("%s on %s, %d input(s), 1/%d scale\n\n", full.Name, hw.Name, *images, *scale)
	fmt.Printf("speedup            : %.2fx  (Fig. 6a; paper average 1.35x)\n",
		float64(cycBase)/float64(cycSnap))
	fmt.Printf("operations         : %.0f%% of baseline  (Fig. 6c; paper ~70%%)\n",
		100*float64(opsSnap)/float64(opsBase))
	fmt.Printf("memory accesses    : %.0f%% of baseline  (Fig. 6d; paper ~84%%)\n",
		100*float64(memSnap)/float64(memBase))
	fmt.Printf("final-score match  : max |Δ| vs native = %.2g\n", worst)
	fmt.Println("\nEarly termination is only enabled on convolutions whose output")
	fmt.Println("feeds a ReLU directly; residual-add inputs always run to completion,")
	fmt.Println("which is why ResNet benefits less than the pure feed-forward CNNs.")
}
