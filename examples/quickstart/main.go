// Quickstart reproduces the paper's walk-through example (Fig. 2): a small
// DNN whose compute-intensive layers (Conv2d, Linear) are off-loaded to a
// simulated MAERI-like accelerator while pooling and softmax run natively,
// and whose final scores are compared against the pure-CPU execution — the
// simulated-vs-native functional validation of Section V.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/dnn"
	"repro/internal/tensor"
	"repro/stonne"
)

func main() {
	// The five-operation model of Fig. 2(c): Conv2d → MaxPool → Conv2d →
	// Linear → log-softmax (the sparse_mm flavour is shown in the
	// scheduling example).
	model := &stonne.Model{
		Name: "quickstart", Short: "Q", Sparsity: 0.5, InputC: 1, InputXY: 28,
		Layers: []stonne.Layer{
			{Name: "conv1", Kind: dnn.Conv, Class: dnn.ClassC,
				Conv: tensor.ConvShape{R: 5, S: 5, C: 1, G: 1, K: 8, N: 1, X: 28, Y: 28, Stride: 1, Padding: 2}},
			{Name: "relu1", Kind: dnn.ReLU},
			{Name: "pool1", Kind: dnn.MaxPool, Pool: dnn.PoolShape{Window: 2, Stride: 2}},
			{Name: "conv2", Kind: dnn.Conv, Class: dnn.ClassC,
				Conv: tensor.ConvShape{R: 3, S: 3, C: 8, G: 1, K: 16, N: 1, X: 14, Y: 14, Stride: 1, Padding: 1}},
			{Name: "relu2", Kind: dnn.ReLU},
			{Name: "flatten", Kind: dnn.Flatten},
			{Name: "fc", Kind: dnn.Linear, In: 16 * 14 * 14, Out: 10},
			{Name: "softmax", Kind: dnn.Softmax},
		},
	}
	if err := model.Validate(); err != nil {
		log.Fatal(err)
	}
	weights := stonne.InitWeights(model, 2024)
	if err := weights.Prune(model.Sparsity); err != nil {
		log.Fatal(err)
	}
	input := stonne.RandomInput(model, 7)

	// Native execution — the ground truth (PyTorch-on-CPU in the paper).
	native, err := stonne.RunModelNative(model, weights, input)
	if err != nil {
		log.Fatal(err)
	}

	// Simulated execution: the hardware configuration file of Fig. 2(d)
	// selects a 128-multiplier MAERI-like accelerator.
	hw := stonne.MAERILike(128, 64)
	simulated, mr, err := stonne.RunModel(model, weights, input, hw, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %s on %s\n\n", model.Name, hw.Name)
	fmt.Printf("%-8s %-5s %10s %8s %12s\n", "layer", "op", "cycles", "util", "energy µJ")
	for _, r := range mr.Runs {
		fmt.Printf("%-8s %-5s %10d %7.1f%% %12.4f\n",
			r.Layer, r.Op, r.Cycles, 100*r.Utilization, r.TotalEnergy())
	}
	fmt.Printf("\ntotal: %d cycles (%.1f µs @1GHz), %.3f µJ\n",
		mr.TotalCycles(), float64(mr.TotalCycles())/1e3, mr.TotalEnergy())

	// Functional validation: class scores must match.
	worst := 0.0
	for i, got := range simulated.Data() {
		if d := math.Abs(float64(got - native.Data()[i])); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nfunctional validation vs native CPU: max |Δscore| = %.2g", worst)
	if worst < 1e-4 {
		fmt.Println("  — outputs match ✓")
	} else {
		fmt.Println("  — MISMATCH")
	}
}
