// Training demonstrates the extension the paper lists as ongoing work:
// simulating DNN *training* on the modelled accelerators. Every matrix
// product of the forward and backward passes — the layer forward GEMMs,
// the weight-gradient GEMMs (dW = dYᵀ·X) and the input-gradient GEMMs
// (dX = dY·W) — executes on a simulated fabric, and the example compares
// how the MAERI-like dense and SIGMA-like sparse compositions handle the
// same fine-tuning workload (SIGMA's original motivation was exactly these
// sparse, irregular training GEMMs).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/dnn"
	"repro/stonne"
)

const netJSON = `{
  "name": "ft-cnn", "input_channels": 3, "input_size": 16, "sparsity": 0.7,
  "layers": [
    {"type": "conv", "name": "c1", "filters": 8, "kernel": 3, "pad": 1},
    {"type": "relu"},
    {"type": "maxpool", "window": 2},
    {"type": "conv", "name": "c2", "filters": 16, "kernel": 3, "pad": 1},
    {"type": "relu"},
    {"type": "linear", "name": "fc", "out": 4},
    {"type": "softmax"}
  ]
}`

func main() {
	steps := flag.Int("steps", 5, "SGD steps")
	lr := flag.Float64("lr", 0.05, "learning rate")
	flag.Parse()

	arches := []stonne.Hardware{
		stonne.MAERILike(128, 64),
		stonne.SIGMALike(128, 64),
	}
	for _, hw := range arches {
		model, err := parse()
		if err != nil {
			log.Fatal(err)
		}
		weights := stonne.InitWeights(model, 2026)
		if err := weights.Prune(model.Sparsity); err != nil {
			log.Fatal(err)
		}
		input := stonne.RandomInput(model, 1)
		const label = 3

		fmt.Printf("fine-tuning %s (%.0f%% sparse) on %s\n", model.Name, model.Sparsity*100, hw.Name)
		var totalCycles uint64
		for step := 0; step < *steps; step++ {
			res, err := stonne.RunTrainingStep(model, weights, input, label, hw)
			if err != nil {
				log.Fatal(err)
			}
			if err := stonne.ApplySGD(weights, res.Grads, *lr); err != nil {
				log.Fatal(err)
			}
			totalCycles += res.Stats.TotalCycles()
			fmt.Printf("  step %d: loss %.4f  (%d GEMMs, %d cycles, %.3f µJ)\n",
				step, res.Loss, len(res.Stats.Runs),
				res.Stats.TotalCycles(), res.Stats.TotalEnergy())
		}
		fmt.Printf("  total simulated cycles: %d\n", totalCycles)
		// The pruned-mask invariant: fine-tuning must not densify.
		for name, t := range weights.ByLayer {
			if s := t.Sparsity(); s < model.Sparsity-0.05 {
				log.Fatalf("layer %s densified to %.2f", name, s)
			}
		}
		fmt.Println("  pruned sparsity mask preserved ✓")
		fmt.Println()
	}
	fmt.Println("The sparse fabric skips every pruned weight in the forward and")
	fmt.Println("dW products, which is why its per-step cycle count is lower —")
	fmt.Println("the effect SIGMA was built around.")
}

func parse() (*stonne.Model, error) {
	return dnn.ParseModel(strings.NewReader(netJSON))
}
