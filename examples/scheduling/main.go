// Scheduling is use case 3 (Section VI-C): static filter scheduling on a
// flexible sparse accelerator. It first replays the paper's Fig. 8 worked
// example — four sparse filters on an 8-switch SIGMA-like fabric, where
// Largest-Filter-First turns 4 cycles into 3 — then runs a real sparse
// model under NS, RDM and LFF and reports the utilization and runtime
// deltas of Fig. 9.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/sched"
	"repro/stonne"
)

func main() {
	tag := flag.String("model", "S", "model tag: M S A R V S-M B")
	scale := flag.Int("scale", 8, "spatial scale divisor")
	flag.Parse()

	fig8()

	full, err := stonne.ModelByShort(*tag)
	if err != nil {
		log.Fatal(err)
	}
	model, err := stonne.ScaleSpatial(full, *scale)
	if err != nil {
		log.Fatal(err)
	}
	weights := stonne.InitWeights(model, 5)
	if err := weights.Prune(model.Sparsity); err != nil {
		log.Fatal(err)
	}
	input := stonne.RandomInput(model, 77)
	hw := stonne.SIGMALike(256, 128)

	fmt.Printf("\n%s on %s (%.0f%% sparsity, 1/%d scale)\n\n",
		full.Name, hw.Name, full.Sparsity*100, *scale)
	fmt.Printf("%-7s %12s %8s %12s\n", "policy", "cycles", "util", "vs NS")
	var ns uint64
	for _, pol := range []stonne.SchedPolicy{
		stonne.NoScheduling, stonne.RandomScheduling, stonne.LargestFilterFirst,
	} {
		_, mr, err := stonne.RunModel(model, weights, input, hw, &stonne.RunOptions{Policy: pol})
		if err != nil {
			log.Fatal(err)
		}
		if pol == stonne.NoScheduling {
			ns = mr.TotalCycles()
		}
		fmt.Printf("%-7s %12d %7.1f%% %11.1f%%\n",
			pol, mr.TotalCycles(), 100*mr.AvgUtilization(),
			100*float64(mr.TotalCycles())/float64(ns))
	}
}

// fig8 replays the paper's illustration: an 8-MS fabric, four sparse
// filters of effective sizes 4, 2, 4, 2. Natural order packs {F0,F1} and
// {F2,F3} (6 switches each, 2 wasted twice); LFF packs {F0,F2} (full) and
// {F1,F3}, saving a quarter of the cycles.
func fig8() {
	const capacity = 8
	sizes := []int{4, 2, 4, 2}
	fmt.Println("Fig. 8 worked example — four filters (sizes 4,2,4,2) on 8 switches:")
	for _, pol := range []sched.Policy{sched.NS, sched.LFF} {
		rounds := sched.Pack(sizes, capacity, pol, 0)
		fmt.Printf("  %-3s: %d rounds —", pol, len(rounds))
		total := 0
		for _, r := range rounds {
			used := 0
			var rows []int
			for _, c := range r {
				used += c.Len
				rows = append(rows, c.Row)
			}
			// With a streaming bandwidth of 4 elements/cycle, a round of
			// `used` mapped switches takes ceil(used/4) cycles per output
			// column — the arithmetic of the figure.
			cyc := (used + 3) / 4
			total += cyc
			fmt.Printf(" filters %v (%d MS, %d cycles)", rows, used, cyc)
		}
		fmt.Printf(" → %d cycles total\n", total)
	}
	fmt.Println("  LFF saves 25%, exactly as the figure shows.")
}
