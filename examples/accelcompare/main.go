// Accelcompare is use case 1 (Section VI-A) in miniature: the same DNN
// model runs, layer by layer, on the three Table IV accelerator
// compositions — rigid TPU-like, flexible dense MAERI-like and flexible
// sparse SIGMA-like — and the example reports the cycles, energy breakdown
// and area that STONNE's output module produces for each.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/energy"
	"repro/stonne"
)

func main() {
	tag := flag.String("model", "S", "model tag: M S A R V S-M B")
	scale := flag.Int("scale", 8, "spatial scale divisor (1 = full resolution)")
	pes := flag.Int("pes", 256, "processing elements")
	bw := flag.Int("bw", 128, "GB bandwidth for the flexible designs")
	flag.Parse()

	full, err := stonne.ModelByShort(*tag)
	if err != nil {
		log.Fatal(err)
	}
	model, err := stonne.ScaleSpatial(full, *scale)
	if err != nil {
		log.Fatal(err)
	}
	weights := stonne.InitWeights(model, 99)
	if err := weights.Prune(model.Sparsity); err != nil {
		log.Fatal(err)
	}
	input := stonne.RandomInput(model, 3)

	arches := []stonne.Hardware{
		stonne.TPULike(*pes),
		stonne.MAERILike(*pes, *bw),
		stonne.SIGMALike(*pes, *bw),
	}

	fmt.Printf("%s (%.0f%% weight sparsity, 1/%d scale), %d PEs\n\n",
		full.Name, full.Sparsity*100, *scale, *pes)
	fmt.Printf("%-11s %12s %8s %12s %14s\n", "arch", "cycles", "util", "energy µJ", "area µm²")
	var base uint64
	for _, hw := range arches {
		_, mr, err := stonne.RunModel(model, weights, input, hw, nil)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = mr.TotalCycles()
		}
		fmt.Printf("%-11s %12d %7.1f%% %12.2f %14.0f   (%.2fx vs TPU)\n",
			hw.Name, mr.TotalCycles(), 100*mr.AvgUtilization(),
			mr.TotalEnergy(), energy.TotalArea(&hw),
			float64(base)/float64(mr.TotalCycles()))
	}
	fmt.Println("\nThe flexible fabrics adapt their virtual-neuron shapes per layer;")
	fmt.Println("the sparse one additionally skips every pruned weight — the same")
	fmt.Println("trends as Fig. 5 of the paper.")
}
