GO ?= go

.PHONY: build test race bench vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race exercises the parallel runtime paths: the simpool itself, the
# public API, and the serial-vs-parallel equivalence test in exp.
race:
	$(GO) test -race ./internal/simpool/... ./stonne/...
	$(GO) test -race -run 'TestFig5SerialParallelEquivalence' ./internal/exp/

bench:
	$(GO) test -run=XXX -bench=. -benchtime=1x .
	$(GO) test -run=XXX -bench='BenchmarkCounters' ./internal/comp/
