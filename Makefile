GO ?= go

.PHONY: build test race bench bench-json bench-json-smoke vet lint lint-suppressions fmt-check trace-demo checksweep fuzz fuzz-smoke load-test serve-smoke trace-smoke persist-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own analyzer suite (cmd/stonnelint) plus go vet.
# Test files are included by default (stonnelint -tests=false to skip).
# Suppressions use `//lint:ignore <analyzer> <reason>`; a directive without
# a reason is itself a finding, so the suite stays honest.
lint:
	$(GO) run ./cmd/stonnelint ./...
	$(GO) vet ./...

# lint-suppressions fails when the set of //lint:ignore directives in the
# tree drifts from the committed SUPPRESSIONS.txt allowlist: adding an
# exemption means committing its justification in the same change.
# Regenerate with: go run ./cmd/stonnelint -suppressions ./... > SUPPRESSIONS.txt
lint-suppressions:
	@$(GO) run ./cmd/stonnelint -suppressions ./... > /tmp/stonnelint-suppressions.txt; \
	if ! diff -u SUPPRESSIONS.txt /tmp/stonnelint-suppressions.txt; then \
		echo "suppression set drifted from SUPPRESSIONS.txt (regenerate and commit it)"; exit 1; fi

# fmt-check fails if any file needs gofmt (prints the offenders).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# race runs the whole module under the race detector — not just the
# overtly parallel packages: the serving layer, simpool fan-out and chip
# scheduler reach into every core package, so a data race can surface
# anywhere. The explicit timeout keeps slow CI runners from hitting go
# test's default 10m panic mid-suite under the detector's ~10x slowdown
# (the exp figure suite dominates the wall time).
race:
	$(GO) test -race -timeout 45m ./...

# load-test drives an in-process stonned through the full HTTP stack with
# 1000 concurrent clients cycling 8 repeat shapes. stonneload pre-warms each
# shape, then asserts every measured response is byte-identical to the
# pre-warmed result, the warm hit rate clears 99%, and prints req/s with
# p50/p99 latency — the serving layer's acceptance harness.
load-test:
	$(GO) run ./cmd/stonneload -requests 5000 -concurrency 1000 -shapes 8

# serve-smoke boots the real stonned binary, submits the same job twice,
# asserts the repeat is served from the result cache byte-identically, and
# checks SIGTERM drains to a clean exit 0.
serve-smoke:
	./scripts/serve_smoke.sh

# trace-smoke replays the bundled tiny arrival trace twice through
# stonnetrace with a shared persistent cache dir: the second replay (a
# fresh server over the same dir) must be ~100% warm and report the same
# result digest as the first — deterministic replay plus restart-safe
# persistence in one check.
trace-smoke:
	./scripts/trace_smoke.sh

# persist-smoke restarts the real stonned binary over a -cache-dir and
# asserts the repeated job is served warm and byte-identical after the
# restart.
persist-smoke:
	./scripts/persist_smoke.sh

bench:
	$(GO) test -run=XXX -bench=. -benchtime=1x .
	$(GO) test -run=XXX -bench='BenchmarkCounters' ./internal/comp/

# bench-json runs the canonical benchmark set (Fig 5 parallel scaling, trace
# overhead, fast-forward vs ticked, multi-core chip scaling, counter hot
# path) through cmd/benchjson
# and writes the machine-readable snapshot that each perf PR commits as its
# BENCH_<issue>.json trajectory point. bench-json-smoke is the CI guard: one
# iteration, output discarded — it keeps the harness runnable without
# committing CI-runner noise as a measurement.
BENCH_SNAPSHOT ?= BENCH_7.json

bench-json:
	$(GO) run ./cmd/benchjson -benchtime 3x -out $(BENCH_SNAPSHOT)

bench-json-smoke:
	$(GO) run ./cmd/benchjson -benchtime 1x > /dev/null

# trace-demo runs one traced MAERI GEMM end to end and validates that the
# emitted Chrome trace parses — the smoke check for the observability layer.
trace-demo:
	$(GO) run ./cmd/stonne gemm -arch maeri -ms 64 -bw 16 -M 32 -N 32 -K 64 -trace /tmp/stonne-trace-demo.json
	$(GO) run ./cmd/tracecheck /tmp/stonne-trace-demo.json

# checksweep runs every registered architecture × {GEMM, conv, sparse} over
# the edge-case shape grid and verifies each simulated output against the
# CPU reference under the architecture's numeric contract.
checksweep:
	$(GO) run ./cmd/experiments checksweep

# Go's native fuzzer accepts one -fuzz pattern per invocation, so each
# target gets its own run. FUZZTIME scales both flavours: fuzz-smoke is the
# CI budget, fuzz a longer local soak.
FUZZ_TARGETS = FuzzGEMMDispatch FuzzConvTile FuzzSparseRoundTrip

fuzz-smoke: FUZZTIME ?= 30s
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		echo "== $$t ($(FUZZTIME)) =="; \
		$(GO) test ./internal/check/ -run='^$$' -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) || exit 1; \
	done

fuzz: FUZZTIME ?= 3m
fuzz: fuzz-smoke
