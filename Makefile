GO ?= go

.PHONY: build test race bench vet trace-demo

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race exercises the parallel runtime paths: the simpool itself, the
# public API, and the serial-vs-parallel equivalence test in exp. The
# explicit timeout keeps slow CI runners from hitting go test's default
# 10m panic mid-suite under the race detector's ~10x slowdown.
race:
	$(GO) test -race -timeout 20m ./internal/simpool/... ./stonne/...
	$(GO) test -race -timeout 20m -run 'TestFig5SerialParallelEquivalence' ./internal/exp/

bench:
	$(GO) test -run=XXX -bench=. -benchtime=1x .
	$(GO) test -run=XXX -bench='BenchmarkCounters' ./internal/comp/

# trace-demo runs one traced MAERI GEMM end to end and validates that the
# emitted Chrome trace parses — the smoke check for the observability layer.
trace-demo:
	$(GO) run ./cmd/stonne gemm -arch maeri -ms 64 -bw 16 -M 32 -N 32 -K 64 -trace /tmp/stonne-trace-demo.json
	$(GO) run ./cmd/tracecheck /tmp/stonne-trace-demo.json
