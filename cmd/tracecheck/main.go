// Command tracecheck validates a Chrome trace_event JSON file produced by
// `stonne -trace`: it must parse, carry at least one event, and every
// complete ("X") event must name a known tier track. Used by `make
// trace-demo` as a smoke check that the trace pipeline stays well-formed.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Dur  uint64         `json:"dur"`
	Args map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents []event `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fatal(fmt.Errorf("invalid trace JSON: %w", err))
	}
	if len(tf.TraceEvents) == 0 {
		fatal(fmt.Errorf("trace has no events"))
	}
	var meta, spans int
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			spans++
			if ev.Dur == 0 {
				fatal(fmt.Errorf("zero-duration span event %q", ev.Name))
			}
		default:
			fatal(fmt.Errorf("unexpected event phase %q", ev.Ph))
		}
	}
	if spans == 0 {
		fatal(fmt.Errorf("trace has metadata but no span events"))
	}
	fmt.Printf("ok: %d events (%d metadata, %d spans)\n", len(tf.TraceEvents), meta, spans)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
