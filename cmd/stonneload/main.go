// Command stonneload drives a stonned server with concurrent repeat-shape
// job submissions and reports throughput, cache hit rate and latency
// percentiles — the serving layer's load harness.
//
// With -addr it targets a running server; without, it starts an in-process
// stonned on an ephemeral port so `make load-test` is self-contained while
// still exercising the full HTTP stack.
//
//	stonneload -requests 5000 -concurrency 1000 -shapes 8
//
// Every shape is pre-warmed once, so the measured phase is all warm
// traffic; the harness asserts each response is byte-identical to the
// pre-warmed result (the content-addressed cache contract) and exits
// non-zero when the hit rate or identity check fails.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
)

func main() {
	addr := flag.String("addr", "", "target server base URL (empty = start an in-process server)")
	requests := flag.Int("requests", 5000, "total measured requests")
	concurrency := flag.Int("concurrency", 1000, "concurrent client goroutines")
	shapes := flag.Int("shapes", 8, "distinct job shapes cycled through")
	ms := flag.Int("ms", 64, "fabric size of the generated jobs")
	workers := flag.Int("workers", 0, "in-process server workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "in-process server queue depth")
	minHitRate := flag.Float64("min-hit-rate", 0.99, "fail below this warm hit rate")
	flag.Parse()

	base := *addr
	if base == "" {
		s, err := serve.New(serve.Config{Workers: *workers, QueueDepth: *queue})
		if err != nil {
			fatal(err)
		}
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		base = srv.URL
		fmt.Fprintf(os.Stderr, "stonneload: in-process server at %s\n", base)
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	client.Transport = &http.Transport{MaxIdleConnsPerHost: *concurrency}

	// One body per shape: identical repeats are what the cache serves.
	bodies := make([][]byte, *shapes)
	for i := range bodies {
		req := map[string]any{
			"op": "gemm", "arch": "maeri", "ms": *ms, "bw": 16,
			"m": 32, "n": 32, "k": 48 + i, "seed": 1,
		}
		b, err := json.Marshal(req)
		if err != nil {
			fatal(err)
		}
		bodies[i] = b
	}

	// Pre-warm: one cold run per shape, keeping its result bytes as the
	// byte-identity reference for the measured phase.
	warmRef := make([][]byte, *shapes)
	for i, b := range bodies {
		env, err := post(client, base, b)
		if err != nil {
			fatal(fmt.Errorf("pre-warm shape %d: %w", i, err))
		}
		warmRef[i] = env.Result
	}
	fmt.Fprintf(os.Stderr, "stonneload: %d shapes pre-warmed\n", *shapes)

	var (
		hits, misses, mismatches, failures atomic.Uint64
		next                               atomic.Int64
		mu                                 sync.Mutex
		latencies                          []time.Duration
	)
	began := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, *requests / *concurrency + 1)
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					break
				}
				shape := i % *shapes
				t0 := time.Now()
				env, err := post(client, base, bodies[shape])
				if err != nil {
					// Timeouts and 429s are counted, not mixed into the
					// success percentiles: a shed request's latency says
					// nothing about serving latency.
					failures.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
				if env.Cached {
					hits.Add(1)
				} else {
					misses.Add(1)
				}
				if !bytes.Equal(env.Result, warmRef[shape]) {
					mismatches.Add(1)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(began)

	// Nearest-rank percentiles over successful requests only (failures are
	// reported as their own count below, never in the distribution).
	sum := stats.SummarizeLatencies(latencies)
	total := hits.Load() + misses.Load() + failures.Load()
	hitRate := float64(hits.Load()) / float64(max(1, hits.Load()+misses.Load()))
	fmt.Printf("requests    : %d (%d concurrent clients, %d shapes)\n", total, *concurrency, *shapes)
	fmt.Printf("duration    : %v (%.0f req/s)\n", elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("cache       : %d warm hits, %d cold runs (%.2f%% hit rate)\n", hits.Load(), misses.Load(), 100*hitRate)
	fmt.Printf("latency     : p50 %.3fms, p90 %.3fms, p99 %.3fms over %d ok (%d failed excluded)\n",
		sum.P50Ms, sum.P90Ms, sum.P99Ms, sum.Count, failures.Load())
	fmt.Printf("byte-ident  : %d mismatches, %d failures\n", mismatches.Load(), failures.Load())

	if st, err := getStats(client, base); err == nil {
		fmt.Printf("server      : warm=%d coalesced=%d cold=%d rejected=%d cache_entries=%d\n",
			st.WarmHits, st.Coalesced, st.ColdRuns, st.Rejected, st.Cache.Entries)
	}

	switch {
	case failures.Load() > 0:
		fatal(fmt.Errorf("%d requests failed", failures.Load()))
	case mismatches.Load() > 0:
		fatal(fmt.Errorf("%d responses were not byte-identical to the pre-warmed result", mismatches.Load()))
	case hitRate < *minHitRate:
		fatal(fmt.Errorf("hit rate %.4f below the required %.4f", hitRate, *minHitRate))
	}
}

func post(client *http.Client, base string, body []byte) (*serve.Envelope, error) {
	resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var env serve.Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, err
	}
	return &env, nil
}

func getStats(client *http.Client, base string) (*serve.Stats, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stonneload:", err)
	os.Exit(1)
}
