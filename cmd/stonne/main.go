// Command stonne is the "STONNE User Interface" of the paper (Fig. 2):
// it loads any layer or GEMM with any dimensions onto a selected simulator
// instance, runs it with deterministic random tensors, and reports the
// statistics — the fast path for prototyping and debugging without the
// full DL-framework front end.
//
// Examples:
//
//	stonne gemm -arch maeri -ms 128 -bw 32 -M 64 -N 64 -K 256
//	stonne conv -arch tpu -ms 256 -R 3 -S 3 -C 64 -K 64 -X 56 -Y 56
//	stonne spmm -arch sigma -ms 256 -bw 128 -M 128 -N 128 -K 512 -sparsity 0.8 -policy LFF
//	stonne gemm -hw my_hw.cfg -M 32 -N 32 -K 64 -json out.json -counters out.counters
//	stonne gemm -arch maeri -M 64 -N 64 -K 256 -batch 8 -workers 0
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/dnn"
	"repro/internal/sim"
	"repro/internal/simpool"
	"repro/internal/trace"
	"repro/stonne"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	op := os.Args[1]
	if op == "-list-archs" || op == "--list-archs" || op == "list-archs" {
		listArchs()
		return
	}
	fs := flag.NewFlagSet(op, flag.ExitOnError)

	arch := fs.String("arch", "maeri", "preset architecture: tpu | maeri | sigma | snapea")
	hwFile := fs.String("hw", "", "hardware configuration file (overrides -arch)")
	ms := fs.Int("ms", 256, "number of multiplier switches")
	bw := fs.Int("bw", 128, "GB bandwidth in elements/cycle")
	mDim := fs.Int("M", 16, "GEMM M")
	nDim := fs.Int("N", 16, "GEMM N")
	kDim := fs.Int("K", 16, "GEMM K")
	rDim := fs.Int("R", 3, "filter rows")
	sDim := fs.Int("S", 3, "filter columns")
	cDim := fs.Int("C", 16, "input channels")
	gDim := fs.Int("G", 1, "groups")
	kFil := fs.Int("Kf", 16, "filters")
	xDim := fs.Int("X", 16, "input rows")
	yDim := fs.Int("Y", 16, "input columns")
	stride := fs.Int("stride", 1, "stride")
	pad := fs.Int("pad", 0, "padding")
	sparsity := fs.Float64("sparsity", 0.8, "MK weight sparsity for spmm")
	policy := fs.String("policy", "NS", "filter scheduling policy: NS | RDM | LFF")
	seed := fs.Uint64("seed", 1, "random tensor seed")
	jsonOut := fs.String("json", "", "write the JSON summary to this file")
	counterOut := fs.String("counters", "", "write the counter file to this path")
	modelFile := fs.String("file", "", "JSON model description (model/train subcommands)")
	weightsFile := fs.String("weights", "", "binary weights file (optional; random weights otherwise)")
	saveWeights := fs.String("save-weights", "", "write the (generated or trained) weights to this path")
	label := fs.Int("label", 0, "target class for the train subcommand")
	lr := fs.Float64("lr", 0.01, "SGD learning rate for the train subcommand")
	steps := fs.Int("steps", 1, "SGD steps for the train subcommand")
	batch := fs.Int("batch", 1, "independent runs with seeds seed..seed+batch-1 (gemm/spmm/conv)")
	workers := fs.Int("workers", 0, "parallel simulation jobs for -batch (0 = GOMAXPROCS, 1 = serial)")
	selfcheck := fs.Bool("selfcheck", false, "verify every simulated output against the CPU reference (gemm/spmm/conv)")
	traceOut := fs.String("trace", "", "write a Chrome trace_event JSON cycle trace to this file (gemm/spmm/conv)")
	progress := fs.Bool("progress", false, "print periodic per-job progress to stderr (gemm/spmm/conv/model)")
	cores := fs.Int("cores", 1, "simulated cores on the chip (model subcommand; >1 shares a banked DRAM)")
	placement := fs.String("placement", "layer", "multi-core placement policy: layer (pipeline stages) | batch (whole streams)")
	banks := fs.Int("banks", 0, "shared DRAM banks for multi-core runs (0 = default)")
	streams := fs.Int("streams", 1, "independent inference streams for multi-core model runs")
	fastforward := fs.Bool("fastforward", true, "skip provably-idle cycles (bit-exact; -fastforward=false forces the fully ticked loop)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	hw, err := pickHW(*hwFile, *arch, *ms, *bw)
	if err != nil {
		fatal(err)
	}
	hw.Preloaded = true // user-interface mode runs from preloaded buffers
	hw.DisableFastForward = !*fastforward

	switch op {
	case "gemm", "spmm", "conv":
	case "model":
		if *cores > 1 || *streams > 1 {
			runModelChipCmd(hw, *modelFile, *weightsFile, *policy, *seed,
				*cores, *placement, *banks, *streams, *progress)
		} else {
			runModelCmd(hw, *modelFile, *weightsFile, *saveWeights, *policy, *seed)
		}
		return
	case "train":
		runTrainCmd(hw, *modelFile, *weightsFile, *saveWeights, *label, *lr, *steps, *seed)
		return
	default:
		usage()
		os.Exit(2)
	}

	p := opParams{
		M: *mDim, N: *nDim, K: *kDim,
		R: *rDim, S: *sDim, C: *cDim, G: *gDim, Kf: *kFil,
		X: *xDim, Y: *yDim, Stride: *stride, Pad: *pad,
		Sparsity: *sparsity, Policy: *policy, SelfCheck: *selfcheck,
	}
	if *batch < 1 {
		*batch = 1
	}
	seeds := make([]uint64, *batch)
	for i := range seeds {
		seeds[i] = *seed + uint64(i)
	}
	sink := newTraceSink(*traceOut != "", *progress)
	runs, err := simpool.Map(context.Background(), *workers, seeds,
		func(_ context.Context, i int, sd uint64) (*stonne.Run, error) {
			h := hw
			if cfg := sink.configFor(fmt.Sprintf("run %d (seed %d)", i, sd)); cfg != nil {
				h.Trace = cfg
			}
			return runOp(h, op, p, sd)
		})
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		if werr := sink.writeChrome(*traceOut); werr != nil {
			fatal(werr)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open in https://ui.perfetto.dev)\n", *traceOut)
	}
	for i, run := range runs {
		if *batch > 1 {
			fmt.Printf("== run %d (seed %d) ==\n", i, seeds[i])
		}
		printRun(run)
		if *jsonOut != "" {
			if err := writeJSON(run, batchPath(*jsonOut, i, *batch)); err != nil {
				fatal(err)
			}
		}
		if *counterOut != "" {
			if err := os.WriteFile(batchPath(*counterOut, i, *batch), []byte(run.CounterFile()), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if *selfcheck {
		// A failed check surfaces as a run error above, so reaching this
		// point means every output matched the CPU reference.
		fmt.Printf("self-check  : %d run(s) verified against the CPU reference\n", len(runs))
	}
}

// opParams carries the operation shape so batched runs can rebuild their
// tensors independently from per-run seeds.
type opParams struct {
	M, N, K              int
	R, S, C, G, Kf, X, Y int
	Stride, Pad          int
	Sparsity             float64
	Policy               string
	SelfCheck            bool
}

// runOp simulates one gemm/spmm/conv with tensors derived from seed. Each
// call builds its own simulator instance, so batched runs share nothing.
func runOp(hw stonne.Hardware, op string, p opParams, seed uint64) (*stonne.Run, error) {
	inst, err := stonne.CreateInstance(hw)
	if err != nil {
		return nil, err
	}
	if p.SelfCheck {
		inst.EnableSelfCheck()
	}
	rng := dnn.NewRNG(seed)
	randTensor := func(shape ...int) *stonne.Tensor {
		t := stonne.NewTensor(shape...)
		for i, d := 0, t.Data(); i < len(d); i++ {
			d[i] = float32(rng.Normal())
		}
		return t
	}
	var run *stonne.Run
	switch op {
	case "gemm":
		inst.ConfigureDMM()
		inst.ConfigureData(randTensor(p.M, p.K), randTensor(p.K, p.N))
		_, run, err = inst.RunOperation()
	case "spmm":
		pol, perr := parsePolicy(p.Policy)
		if perr != nil {
			return nil, perr
		}
		inst.ConfigureSpMM(pol)
		A := randTensor(p.M, p.K)
		pruneTo(A, p.Sparsity)
		inst.ConfigureData(A, randTensor(p.K, p.N))
		_, run, err = inst.RunOperation()
	case "conv":
		cs := stonne.ConvShape{
			R: p.R, S: p.S, C: p.C, G: p.G, K: p.Kf, N: 1,
			X: p.X, Y: p.Y, Stride: p.Stride, Padding: p.Pad,
		}
		if cerr := inst.ConfigureCONV(cs); cerr != nil {
			return nil, cerr
		}
		w := randTensor(cs.K, cs.C/cs.G, cs.R, cs.S)
		in := stonne.NewTensor(1, cs.C, cs.X, cs.Y)
		for i, d := 0, in.Data(); i < len(d); i++ {
			v := rng.Normal()
			if v < 0 {
				v = 0
			}
			d[i] = float32(v)
		}
		inst.ConfigureData(w, in)
		_, run, err = inst.RunOperation()
	}
	if err != nil {
		return nil, err
	}
	return run, nil
}

// traceSink collects completed run traces and live progress samples from
// concurrently executing jobs. Both hooks are invoked from pool worker
// goroutines, so all state is mutex-guarded.
type traceSink struct {
	collect  bool
	progress bool

	mu        sync.Mutex
	traces    []*trace.RunTrace
	board     *simpool.Board
	lastPrint time.Time
}

func newTraceSink(collect, progress bool) *traceSink {
	return &traceSink{collect: collect, progress: progress, board: simpool.NewBoard()}
}

// configFor builds the per-job trace configuration, or nil when neither
// tracing nor progress reporting is enabled (leaving the run untraced).
func (s *traceSink) configFor(label string) *trace.Config {
	if !s.collect && !s.progress {
		return nil
	}
	cfg := &trace.Config{Label: label}
	if s.collect {
		cfg.OnComplete = s.complete
	}
	if s.progress {
		cfg.ProgressEvery = 4096
		cfg.OnProgress = s.onProgress
	}
	return cfg
}

func (s *traceSink) complete(rt *trace.RunTrace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces = append(s.traces, rt)
	s.board.Finish(rt.Label)
}

// onProgress updates the board and prints a throttled status line (at most
// twice per second, regardless of how many jobs report).
func (s *traceSink) onProgress(p trace.Progress) {
	s.board.Update(p.Label, p.Cycles, p.Outputs, p.Occupancy, p.Skipped)
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.lastPrint) >= 500*time.Millisecond {
		s.lastPrint = now
		fmt.Fprintf(os.Stderr, "progress: %s\n", s.board.Summary())
	}
}

func (s *traceSink) writeChrome(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteChrome(f, s.traces)
}

func printRun(run *stonne.Run) {
	fmt.Printf("accelerator : %s\n", run.Accelerator)
	fmt.Printf("operation   : %s (M=%d N=%d K=%d)\n", run.Op, run.M, run.N, run.K)
	fmt.Printf("cycles      : %d\n", run.Cycles)
	fmt.Printf("time @1GHz  : %.3f µs\n", run.TimeSeconds(1)*1e6)
	fmt.Printf("MACs        : %d\n", run.MACs)
	fmt.Printf("utilization : %.1f%%\n", 100*run.Utilization)
	fmt.Printf("mem accesses: %d\n", run.MemAccesses)
	fmt.Printf("energy      : %.3f µJ\n", run.TotalEnergy())
	for _, comp := range []string{"GB", "DN", "MN", "RN"} {
		if v, ok := run.Energy[comp]; ok {
			fmt.Printf("  %-4s %10.4f µJ\n", comp, v)
		}
	}
	if len(run.Breakdown) > 0 {
		fmt.Printf("cycle breakdown (%% of %d cycles):\n", run.Cycles)
		fmt.Printf("  %-4s %7s %9s %9s %7s %7s\n", "tier", "busy", "stall-in", "stall-bw", "drain", "idle")
		for _, tier := range []string{"DN", "MN", "RN", "MEM"} {
			b, ok := run.Breakdown[tier]
			if !ok {
				continue
			}
			pct := func(v uint64) float64 {
				if run.Cycles == 0 {
					return 0
				}
				return 100 * float64(v) / float64(run.Cycles)
			}
			fmt.Printf("  %-4s %6.1f%% %8.1f%% %8.1f%% %6.1f%% %6.1f%%\n",
				tier, pct(b.Busy), pct(b.StallInput), pct(b.StallBandwidth), pct(b.Drain), pct(b.Idle))
		}
	}
}

// batchPath suffixes an output path with the run index when batching, so
// -batch 1 keeps the exact path the user asked for.
func batchPath(path string, i, batch int) string {
	if batch == 1 {
		return path
	}
	return fmt.Sprintf("%s.%d", path, i)
}

func writeJSON(run *stonne.Run, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return run.WriteJSON(f)
}

func pickHW(file, arch string, ms, bw int) (stonne.Hardware, error) {
	if file != "" {
		inst, err := stonne.CreateInstanceFromFile(file)
		if err != nil {
			return stonne.Hardware{}, err
		}
		return inst.HW(), nil
	}
	return sim.PresetHW(arch, ms, bw)
}

// listArchs prints the architecture registry — every composition this
// build can simulate, in registration order.
func listArchs() {
	fmt.Println("registered architectures:")
	for _, a := range sim.List() {
		fmt.Printf("  %-8s %-18s %s\n", a.Name, a.Title, a.Description)
	}
}

func parsePolicy(s string) (stonne.SchedPolicy, error) {
	switch s {
	case "NS":
		return stonne.NoScheduling, nil
	case "RDM":
		return stonne.RandomScheduling, nil
	case "LFF":
		return stonne.LargestFilterFirst, nil
	default:
		return stonne.NoScheduling, fmt.Errorf("unknown policy %q", s)
	}
}

func pruneTo(t *stonne.Tensor, sparsity float64) {
	d := t.Data()
	rng := dnn.NewRNG(0x9981)
	for i := range d {
		if rng.Float64() < sparsity {
			d[i] = 0
		}
	}
}

// loadModelAndWeights resolves the model/weights flags shared by the
// model and train subcommands.
func loadModelAndWeights(modelFile, weightsFile string, seed uint64) (*stonne.Model, *stonne.Weights, *stonne.Tensor) {
	if modelFile == "" {
		fatal(fmt.Errorf("the subcommand needs -file <model.json>"))
	}
	m, err := stonne.LoadModelFile(modelFile)
	if err != nil {
		fatal(err)
	}
	var w *stonne.Weights
	if weightsFile != "" {
		w, err = stonne.LoadWeightsFile(weightsFile)
		if err != nil {
			fatal(err)
		}
		if err := stonne.CheckWeights(m, w); err != nil {
			fatal(err)
		}
	} else {
		w = stonne.InitWeights(m, seed)
		if err := w.Prune(m.Sparsity); err != nil {
			fatal(err)
		}
	}
	return m, w, stonne.RandomInput(m, seed+1)
}

// runModelCmd runs a full model from a description file, layer by layer.
func runModelCmd(hw stonne.Hardware, modelFile, weightsFile, saveWeights, policy string, seed uint64) {
	m, w, input := loadModelAndWeights(modelFile, weightsFile, seed)
	pol, err := parsePolicy(policy)
	if err != nil {
		fatal(err)
	}
	out, mr, err := stonne.RunModel(m, w, input, hw, &stonne.RunOptions{Policy: pol})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model %s on %s\n\n", m.Name, hw.Name)
	fmt.Printf("%-14s %-5s %10s %8s %12s\n", "layer", "op", "cycles", "util", "energy µJ")
	for _, r := range mr.Runs {
		fmt.Printf("%-14s %-5s %10d %7.1f%% %12.4f\n",
			r.Layer, r.Op, r.Cycles, 100*r.Utilization, r.TotalEnergy())
	}
	fmt.Printf("\ntotal: %d cycles, %.3f µJ, output shape %v\n",
		mr.TotalCycles(), mr.TotalEnergy(), out.Shape())
	if saveWeights != "" {
		if err := w.SaveFile(saveWeights); err != nil {
			fatal(err)
		}
	}
}

// runModelChipCmd runs -streams inferences of the model on a simulated
// chip of -cores cores sharing a banked DRAM, and prints the chip-level
// summary: per-core load, contention, makespan, and throughput.
func runModelChipCmd(hw stonne.Hardware, modelFile, weightsFile, policy string, seed uint64,
	cores int, placement string, banks, streams int, progress bool) {
	m, w, _ := loadModelAndWeights(modelFile, weightsFile, seed)
	pol, err := parsePolicy(policy)
	if err != nil {
		fatal(err)
	}
	if streams < 1 {
		streams = 1
	}
	inputs := make([]*stonne.Tensor, streams)
	for i := range inputs {
		inputs[i] = stonne.RandomInput(m, seed+1+uint64(i))
	}
	copts := stonne.ChipOptions{Cores: cores, Placement: placement, Banks: banks}
	if progress {
		board := simpool.NewBoard()
		copts.Progress = func(core, stream, stage int, endCycle uint64) {
			board.Update(fmt.Sprintf("core%d", core), endCycle, stream+1, 0, 0)
			fmt.Fprintf(os.Stderr, "\r%s", board.Summary())
		}
		defer fmt.Fprintln(os.Stderr)
	}
	outs, cr, err := stonne.RunModelChip(context.Background(), m, w, inputs, hw, copts, &stonne.RunOptions{Policy: pol})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model %s on %d× %s (%s placement, %d banks, %d streams)\n\n",
		m.Name, cr.Cores, hw.Name, cr.Placement, cr.Banks, cr.Streams)
	fmt.Printf("%-6s %12s %8s %12s\n", "core", "cycles", "util", "energy µJ")
	for i, r := range cr.PerCore {
		fmt.Printf("core%-2d %12d %7.1f%% %12.4f\n", i, r.Cycles, 100*r.Utilization, r.TotalEnergy())
	}
	fmt.Printf("\nmakespan: %d cycles (serial work %d, icn wait %d)\n",
		cr.MakespanCycles, cr.Total.Cycles, cr.ICNWaitCycles())
	fmt.Printf("throughput: %.3f streams/Mcycle, output shape %v\n",
		cr.Throughput(), outs[0].Shape())
}

// runTrainCmd runs SGD steps with every GEMM simulated on the accelerator.
func runTrainCmd(hw stonne.Hardware, modelFile, weightsFile, saveWeights string, label int, lr float64, steps int, seed uint64) {
	m, w, input := loadModelAndWeights(modelFile, weightsFile, seed)
	fmt.Printf("training %s on %s (label %d, lr %g)\n\n", m.Name, hw.Name, label, lr)
	for step := 0; step < steps; step++ {
		res, err := stonne.RunTrainingStep(m, w, input, label, hw)
		if err != nil {
			fatal(err)
		}
		if err := stonne.ApplySGD(w, res.Grads, lr); err != nil {
			fatal(err)
		}
		fmt.Printf("step %2d: loss %.4f, %d simulated GEMMs, %d cycles\n",
			step, res.Loss, len(res.Stats.Runs), res.Stats.TotalCycles())
	}
	if saveWeights != "" {
		if err := w.SaveFile(saveWeights); err != nil {
			fatal(err)
		}
		fmt.Printf("weights saved to %s\n", saveWeights)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: stonne <gemm|conv|spmm|model|train> [flags]
       stonne -list-archs
run "stonne gemm -h" for the flag list`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stonne:", err)
	os.Exit(1)
}
