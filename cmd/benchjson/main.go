// Command benchjson runs the repo's canonical benchmark set and writes a
// machine-readable snapshot — the BENCH_*.json perf trajectory. Each PR that
// claims a speed win commits the snapshot it measured (BENCH_<issue>.json),
// so the trajectory is a series of concrete, diffable measurements rather
// than prose claims. CI runs the same harness in smoke mode (one iteration,
// output discarded) so the tooling cannot rot between snapshots.
//
// The tool shells out to `go test -bench` — the benchmarks themselves stay
// ordinary Go benchmarks, runnable directly — and parses the standard
// benchmark output format: one line per result,
//
//	BenchmarkName/sub-8   5   266891194 ns/op   263717 sim-cycles
//
// i.e. name, iteration count, then (value, unit) pairs including any
// b.ReportMetric custom units.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// suites lists the benchmark surfaces that make up a snapshot: the paper
// experiments and kernel-loop benchmarks in the root package, and the
// counter hot path in internal/comp. Patterns are anchored so ablation and
// figure sweeps don't balloon the snapshot.
var suites = []struct {
	pkg     string
	pattern string
}{
	{".", "^(BenchmarkFig5Parallel|BenchmarkTraceOverhead|BenchmarkFastForward|BenchmarkMulticoreScaling)$"},
	{"./internal/comp", "^(BenchmarkCountersHandle|BenchmarkCountersString)$"},
}

type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type snapshot struct {
	Schema    int      `json:"schema"`
	Go        string   `json:"go"`
	Benchtime string   `json:"benchtime"`
	Results   []result `json:"results"`
}

func main() {
	out := flag.String("out", "", "output file (default: stdout)")
	benchtime := flag.String("benchtime", "1x", "value passed to go test -benchtime")
	flag.Parse()

	snap := snapshot{Schema: 1, Go: runtime.Version(), Benchtime: *benchtime}
	for _, s := range suites {
		results, err := runSuite(s.pkg, s.pattern, *benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", s.pkg, err)
			os.Exit(1)
		}
		snap.Results = append(snap.Results, results...)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed — pattern drift?")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(snap.Results), *out)
}

func runSuite(pkg, pattern, benchtime string) ([]result, error) {
	cmd := exec.Command("go", "test", "-run=^$", "-bench="+pattern, "-benchtime="+benchtime, pkg)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench %s: %w\n%s", pattern, err, stdout.String())
	}
	var results []result
	for _, line := range strings.Split(stdout.String(), "\n") {
		r, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		r.Package = pkg
		results = append(results, r)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched %q in:\n%s", pattern, stdout.String())
	}
	return results, nil
}

// parseBenchLine parses one standard benchmark output line into a result.
// Lines that aren't benchmark results (headers, PASS/ok trailers) report ok
// as false.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
