package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseCounterFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.counters")
	content := `# STONNE counter file: test
cycles=1234
gb.reads=100
mn.mults=500

rn.adders_fan=499
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cycles, counters, err := parseCounterFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 1234 {
		t.Errorf("cycles %d", cycles)
	}
	if counters["gb.reads"] != 100 || counters["mn.mults"] != 500 || counters["rn.adders_fan"] != 499 {
		t.Errorf("counters %v", counters)
	}
	if _, ok := counters["cycles"]; ok {
		t.Error("cycles leaked into the counter map")
	}
}

func TestParseCounterFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := parseCounterFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, []byte("not a kv line\n"), 0o644)
	if _, _, err := parseCounterFile(bad); err == nil {
		t.Error("malformed line accepted")
	}
	nonnum := filepath.Join(dir, "nonnum")
	os.WriteFile(nonnum, []byte("gb.reads=abc\n"), 0o644)
	if _, _, err := parseCounterFile(nonnum); err == nil {
		t.Error("non-numeric value accepted")
	}
}
