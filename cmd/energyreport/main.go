// Command energyreport is the analogue of STONNE's energy script: given a
// counter file produced by the output module (stonne ... -counters out)
// and the table-based energy model, it computes the per-component and
// total energy — the Accelergy-style post-processing step of Section III.
//
// Usage:
//
//	energyreport -counters run.counters [-ms 256] [-gb 108]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/stats"
)

func main() {
	counterFile := flag.String("counters", "", "counter file written by the output module")
	ms := flag.Int("ms", 256, "multiplier switches (for static energy)")
	gbKB := flag.Int("gb", 108, "global buffer size in KB (for static energy)")
	flag.Parse()
	if *counterFile == "" {
		fmt.Fprintln(os.Stderr, "usage: energyreport -counters <file> [-ms N] [-gb KB]")
		os.Exit(2)
	}

	cycles, counters, err := parseCounterFile(*counterFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energyreport:", err)
		os.Exit(1)
	}

	hw := config.MAERILike(*ms, 1) // only MSSize and GBSizeKB matter here
	hw.GBSizeKB = *gbKB
	run := &stats.Run{Cycles: cycles, Counters: counters}
	run.Breakdown = stats.BreakdownFromCounters(counters)
	tbl := energy.DefaultTable()
	tbl.Apply(run, &hw)

	fmt.Printf("cycles: %d\n", cycles)
	var total float64
	comps := make([]string, 0, len(run.Energy))
	for c := range run.Energy {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		v := run.Energy[c]
		total += v
		fmt.Printf("%-5s %12.4f µJ\n", c, v)
	}
	fmt.Printf("%-5s %12.4f µJ\n", "TOTAL", total)

	// Counter files from traced runs carry the per-tier cycle attribution;
	// report the leakage burned while each tier was not doing useful work.
	if stalled := tbl.StalledStatic(run, &hw); stalled != nil {
		fmt.Println("\nstatic energy spent in non-busy cycles (stall + drain + idle):")
		tiers := make([]string, 0, len(stalled))
		for t := range stalled {
			tiers = append(tiers, t)
		}
		sort.Strings(tiers)
		var stalledTotal float64
		for _, t := range tiers {
			b := run.Breakdown[t]
			stalledTotal += stalled[t]
			fmt.Printf("%-5s %12.4f µJ (%d of %d cycles non-busy)\n",
				t, stalled[t], b.Total()-b.Busy, b.Total())
		}
		fmt.Printf("%-5s %12.4f µJ\n", "TOTAL", stalledTotal)
	}
}

// parseCounterFile reads the "key=value" format of stats.Run.CounterFile.
func parseCounterFile(path string) (uint64, map[string]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	counters := map[string]uint64{}
	var cycles uint64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, value, ok := strings.Cut(text, "=")
		if !ok {
			return 0, nil, fmt.Errorf("%s:%d: not a key=value line: %q", path, line, text)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(value), 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if key == "cycles" {
			cycles = n
			continue
		}
		counters[strings.TrimSpace(key)] = n
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	return cycles, counters, nil
}
