// Command stonnetrace replays an arrival trace against a stonned server
// and reports per-scenario latency percentiles, the queue-wait vs
// simulate-time split, warm/cold/rejected counts and a result digest —
// the serving layer's workload harness.
//
// With -addr it targets a running daemon; without, it starts an
// in-process stonned (optionally with a persistent -cache-dir) so
// `make trace-smoke` is self-contained while still exercising the full
// HTTP serving path.
//
//	stonnetrace -trace examples/traces/tiny.json -speed 50
//	stonnetrace -trace examples/traces/tiny.json -cache-dir /tmp/c -min-warm-rate 0.99
//
// The report digest is a SHA-256 over every result body in schedule
// order: replaying the same trace and seed against a warm (or
// deterministic cold) server yields the same digest, which is how the
// persistence smoke proves a restarted daemon serves byte-identical
// results.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/serve"
)

func main() {
	tracePath := flag.String("trace", "", "arrival trace file (required)")
	addr := flag.String("addr", "", "target server base URL (empty = start an in-process server)")
	seed := flag.Uint64("seed", 1, "replay seed: drives generated scenario arrivals")
	speed := flag.Float64("speed", 1, "time compression: an arrival offset of t fires at t/speed")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout")
	jsonOut := flag.Bool("json", false, "print the full report as JSON on stdout")
	workers := flag.Int("workers", 0, "in-process server workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "in-process server queue depth")
	cacheDir := flag.String("cache-dir", "", "in-process server persistent cache directory")
	minWarmRate := flag.Float64("min-warm-rate", -1, "fail below this warm rate (negative = no check)")
	maxFailed := flag.Int("max-failed", 0, "fail above this many failed requests (negative = no check)")
	maxRejected := flag.Int("max-rejected", -1, "fail above this many rejected requests (negative = no check)")
	flag.Parse()

	if *tracePath == "" {
		fatal(fmt.Errorf("-trace is required"))
	}
	data, err := os.ReadFile(*tracePath)
	if err != nil {
		fatal(err)
	}
	tr, err := serve.ParseTrace(data)
	if err != nil {
		fatal(err)
	}

	base := *addr
	if base == "" {
		s, err := serve.New(serve.Config{Workers: *workers, QueueDepth: *queue, CacheDir: *cacheDir})
		if err != nil {
			fatal(err)
		}
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		base = srv.URL
		fmt.Fprintf(os.Stderr, "stonnetrace: in-process server at %s\n", base)
	}

	rep := &serve.Replayer{Base: base, Speed: *speed, Timeout: *timeout}
	report, err := rep.Replay(context.Background(), tr, *seed)
	if err != nil {
		fatal(err)
	}

	printHuman(os.Stderr, report)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
	}

	switch {
	case *maxFailed >= 0 && report.Failed > *maxFailed:
		fatal(fmt.Errorf("%d requests failed (max %d)", report.Failed, *maxFailed))
	case *maxRejected >= 0 && report.Rejected > *maxRejected:
		fatal(fmt.Errorf("%d requests rejected (max %d)", report.Rejected, *maxRejected))
	case *minWarmRate >= 0 && report.WarmRate < *minWarmRate:
		fatal(fmt.Errorf("warm rate %.4f below the required %.4f", report.WarmRate, *minWarmRate))
	}
}

func printHuman(w *os.File, r *serve.ReplayReport) {
	fmt.Fprintf(w, "trace       : %s (%d requests, %d scenarios, seed %d, %gx speed)\n",
		r.Trace, r.Requests, len(r.Scenarios), r.Seed, r.Speed)
	fmt.Fprintf(w, "duration    : %.1fms\n", r.DurationMs)
	fmt.Fprintf(w, "requests    : %d ok (%d warm + %d cold, %.1f%% warm), %d rejected, %d failed\n",
		r.Completed, r.Warm, r.Cold, 100*r.WarmRate, r.Rejected, r.Failed)
	fmt.Fprintf(w, "latency     : p50 %.3fms p90 %.3fms p99 %.3fms (max %.3fms)\n",
		r.Latency.P50Ms, r.Latency.P90Ms, r.Latency.P99Ms, r.Latency.MaxMs)
	fmt.Fprintf(w, "queue/sim   : queue p99 %.3fms, sim p99 %.3fms\n",
		r.QueueWait.P99Ms, r.SimTime.P99Ms)
	fmt.Fprintf(w, "digest      : %s\n", r.Digest)
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, "scenario %-16s: %d req, %d warm, %d cold, %d rej, %d fail, p50 %.3fms p99 %.3fms\n",
			s.Name, s.Requests, s.Warm, s.Cold, s.Rejected, s.Failed,
			s.Latency.P50Ms, s.Latency.P99Ms)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stonnetrace:", err)
	os.Exit(1)
}
