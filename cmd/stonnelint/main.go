// Command stonnelint is the simulator's invariant checker: a multichecker
// over the internal/lint analyzer suite. It loads the module's packages
// (test files included by default), runs every analyzer, applies the
// //lint:ignore suppression convention and prints surviving findings one
// per line:
//
//	file:line:col: message (analyzer)
//
// Usage:
//
//	stonnelint [-C dir] [-list] [-tests=false] [-suppressions] [patterns ...]
//
// Patterns default to ./... relative to the module root. The exit status
// is 1 when any diagnostic survives, 2 on a loading or internal error —
// the same contract as go vet, so `make lint` and CI can gate on it.
//
// -tests=false drops findings located in _test.go files (individual
// analyzers may still exempt tests on principle — floatcmp, for example,
// lets golden tests pin bit-exact floats deliberately).
//
// -suppressions switches to audit mode: instead of findings it lists every
// //lint:ignore directive in the matched packages as
//
//	file:line: analyzer: reason
//
// and exits 0, so the full set of silenced findings is reviewable (CI
// diffs this output against the committed SUPPRESSIONS.txt allowlist — a
// new suppression must arrive as a reviewed allowlist edit).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module root to lint")
	list := flag.Bool("list", false, "list the analyzers and exit")
	tests := flag.Bool("tests", true, "report findings in _test.go files")
	suppressions := flag.Bool("suppressions", false, "audit mode: list every //lint:ignore directive instead of running the analyzers")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: stonnelint [-C dir] [-list] [-tests=false] [-suppressions] [patterns ...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the repository's invariant analyzers (default patterns: ./...).\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Suppress a finding with a justified directive:\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "\t//lint:ignore <analyzer> <reason>\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-17s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *suppressions {
		for _, s := range lint.Suppressions(pkgs, analyzers) {
			s.File = relTo(loader.Dir, s.File)
			fmt.Println(s)
		}
		return
	}

	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !*tests {
		kept := diags[:0]
		for _, d := range diags {
			if !strings.HasSuffix(d.Pos.Filename, "_test.go") {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "stonnelint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// relTo renders path relative to the module root so audit output is stable
// across checkouts (the committed allowlist is diffed verbatim in CI).
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}
