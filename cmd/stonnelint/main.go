// Command stonnelint is the simulator's invariant checker: a multichecker
// over the internal/lint analyzer suite. It loads the module's packages
// (test files included), runs every analyzer, applies the //lint:ignore
// suppression convention and prints surviving findings one per line:
//
//	file:line:col: message (analyzer)
//
// Usage:
//
//	stonnelint [-C dir] [-list] [patterns ...]
//
// Patterns default to ./... relative to the module root. The exit status
// is 1 when any diagnostic survives, 2 on a loading or internal error —
// the same contract as go vet, so `make lint` and CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module root to lint")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: stonnelint [-C dir] [-list] [patterns ...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the repository's invariant analyzers (default patterns: ./...).\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Suppress a finding with a justified directive:\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "\t//lint:ignore <analyzer> <reason>\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-17s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "stonnelint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
