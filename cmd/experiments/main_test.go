package main

import "testing"

func TestRepresentative14(t *testing.T) {
	// Fewer rows than 14: all of them, in order.
	got := representative14(5)
	if len(got) != 5 {
		t.Fatalf("len %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Errorf("short case not identity: %v", got)
			break
		}
	}
	// More rows: 14 indices spanning head, middle, tail.
	got = representative14(40)
	if len(got) != 14 {
		t.Fatalf("len %d", len(got))
	}
	seen := map[int]bool{}
	last := -1
	for _, v := range got {
		if v < 0 || v >= 40 || seen[v] || v <= last {
			t.Fatalf("bad pick: %v", got)
		}
		seen[v] = true
		last = v
	}
	if got[0] != 0 || got[len(got)-1] != 39 {
		t.Errorf("extremes missing: %v", got)
	}
}

func TestBreakdownPct(t *testing.T) {
	br := map[string]float64{"GB": 2, "DN": 1, "MN": 3, "RN": 4}
	s := breakdownPct(br, 10)
	want := "GB=20% DN=10% MN=30% RN=40%"
	if s != want {
		t.Errorf("got %q want %q", s, want)
	}
	if breakdownPct(br, 0) != "-" {
		t.Error("zero total not handled")
	}
}
