// Command experiments regenerates every table and figure of the paper's
// evaluation. Each subcommand prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured for each.
//
// Usage:
//
//	experiments <tablei|tablev|fig1a|fig1b|fig1c|fig5|fig6|fig7|fig9|fig9c|stalls|multicore|checksweep|all> [flags]
//
// Flags:
//
//	-scale N    spatial scale divisor for the DNN models (default 8);
//	            1 reproduces the full-resolution workloads (slow)
//	-models M,S machine tags to run (fig5/fig9; default: all seven)
//	-images N   input samples per model for fig6 (default 2)
//	-workers N  parallel simulation jobs (0 = GOMAXPROCS, 1 = serial)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/check"
	"repro/internal/dnn"
	"repro/internal/exp"
	"repro/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.Int("scale", 8, "spatial scale divisor for model workloads (1 = full resolution)")
	modelsFlag := fs.String("models", "", "comma-separated model tags (M,S,A,R,V,S-M,B); empty = all")
	images := fs.Int("images", 2, "input samples per model (fig6)")
	workers := fs.Int("workers", 0, "parallel simulation jobs (0 = GOMAXPROCS, 1 = serial)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	var tags []string
	if *modelsFlag != "" {
		tags = strings.Split(*modelsFlag, ",")
	}
	ctx := context.Background()

	run := func(name string) error {
		switch name {
		case "tablei":
			return tableI()
		case "tablev":
			return tableV(ctx, *workers)
		case "fig1a":
			return fig1("Figure 1a — OS systolic array, STONNE vs analytical", func() ([]exp.Fig1Row, error) { return exp.Fig1aPar(ctx, *workers, *scale) })
		case "fig1b":
			return fig1("Figure 1b — 128-mult MAERI, bandwidth sweep", func() ([]exp.Fig1Row, error) { return exp.Fig1bPar(ctx, *workers, *scale) })
		case "fig1c":
			return fig1("Figure 1c — 128-mult SIGMA, sparsity sweep", func() ([]exp.Fig1Row, error) { return exp.Fig1cPar(ctx, *workers, *scale) })
		case "fig5":
			return fig5(ctx, *workers, *scale, tags)
		case "fig6":
			return fig6(ctx, *workers, *scale, *images)
		case "fig7":
			return fig7(ctx, *workers, *scale)
		case "fig9":
			return fig9(ctx, *workers, *scale, tags)
		case "fig9c":
			return fig9c(ctx, *workers, *scale)
		case "stalls":
			return stalls(ctx, *workers, *scale)
		case "multicore":
			return multicore(*scale)
		case "checksweep":
			return checksweep()
		default:
			usage()
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	var names []string
	if cmd == "all" {
		names = []string{"tablei", "tablev", "fig1a", "fig1b", "fig1c", "fig5", "fig6", "fig7", "fig9", "fig9c"}
	} else {
		names = []string{cmd}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments <tablei|tablev|fig1a|fig1b|fig1c|fig5|fig6|fig7|fig9|fig9c|stalls|multicore|checksweep|all> [-scale N] [-models tags] [-images N] [-workers N]")
}

// checksweep runs the differential verification sweep: every registered
// architecture × {GEMM, conv, sparse} × a grid of edge-case shapes, each
// simulated output compared element-wise against the CPU reference under
// the architecture's numeric contract. Exits non-zero on any mismatch.
func checksweep() error {
	fmt.Println("== Differential self-check sweep — all architectures vs CPU reference ==")
	return check.WriteSweep(os.Stdout)
}

// multicore prints the chip scaling figure: core-count sweep under both
// placement policies, with the contention the shared memory charges.
func multicore(scale int) error {
	fmt.Println("== Multi-core chip scaling — MobileNets, layer vs batch placement ==")
	rows, err := exp.Multicore(scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %6s %8s %12s %12s %11s %8s %12s\n",
		"place", "cores", "streams", "makespan", "serial", "str/Mcyc", "speedup", "icn-wait")
	for _, r := range rows {
		fmt.Printf("%-6s %6d %8d %12d %12d %11.3f %7.2fx %12d\n",
			r.Placement, r.Cores, r.Streams, r.MakespanCycles, r.SerialCycles,
			r.Throughput, r.Speedup, r.ICNWaitCycles)
	}
	fmt.Println()
	return nil
}

// stalls prints the per-tier cycle-attribution table: MAERI under a
// shrinking-bandwidth sweep against the rigid TPU reference. It is the
// observability companion to fig1b — the same sweep, but showing where the
// extra cycles go instead of just how many there are.
func stalls(ctx context.Context, workers, scale int) error {
	fmt.Println("== Stall breakdown — 128-mult MAERI bandwidth sweep vs 16x16 TPU ==")
	rows, err := exp.StallBreakdownPar(ctx, workers, scale)
	if err != nil {
		return err
	}
	busy := func(b stats.CycleBreakdown) uint64 { return b.Busy }
	sIn := func(b stats.CycleBreakdown) uint64 { return b.StallInput }
	sBW := func(b stats.CycleBreakdown) uint64 { return b.StallBandwidth }
	fmt.Printf("%-7s %4s %-7s %10s  %7s %8s %8s  %7s %8s %8s  %7s\n",
		"Arch", "BW", "Layer", "Cycles",
		"DNbusy", "DNst-in", "DNst-bw",
		"MNbusy", "MNst-in", "MNst-bw", "MEMbusy")
	for _, r := range rows {
		fmt.Printf("%-7s %4d %-7s %10d  %6.1f%% %7.1f%% %7.1f%%  %6.1f%% %7.1f%% %7.1f%%  %6.1f%%\n",
			r.Arch, r.BW, r.Layer, r.Cycles,
			100*r.Frac("DN", busy), 100*r.Frac("DN", sIn), 100*r.Frac("DN", sBW),
			100*r.Frac("MN", busy), 100*r.Frac("MN", sIn), 100*r.Frac("MN", sBW),
			100*r.Frac("MEM", busy))
	}
	fmt.Println()
	return nil
}

func tableI() error {
	fmt.Println("== Table I — contemporary DNN models ==")
	fmt.Printf("%-16s %-20s %9s %12s %8s\n", "Model", "Domain", "Sparsity", "MACs(dense)", "Layers")
	for _, m := range dnn.AllModels() {
		fmt.Printf("%-16s %-20s %8.0f%% %12.3g %8d\n",
			m.Name, m.Domain, m.Sparsity*100, float64(m.TotalMACs()), len(m.OffloadedLayers()))
	}
	fmt.Println()
	return nil
}

func tableV(ctx context.Context, workers int) error {
	fmt.Println("== Table V — timing validation vs published RTL cycle counts ==")
	rows, avg, err := exp.TableVRunPar(ctx, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-9s %5s %5s %5s %9s %9s %9s %8s %8s\n",
		"Design", "Layer", "M", "N", "K", "RTL", "origST", "thisST", "err/RTL", "err/orig")
	for _, r := range rows {
		fmt.Printf("%-8s %-9s %5d %5d %5d %9d %9d %9d %7.1f%% %7.1f%%\n",
			r.Design, r.Layer, r.M, r.N, r.K, r.RTL, r.STONNE, r.Got, 100*r.ErrRTL, 100*r.ErrOrig)
	}
	fmt.Printf("average |error| vs RTL: %.2f%% (paper's own STONNE: 1.53%%)\n\n", 100*avg)
	return nil
}

func fig1(title string, f func() ([]exp.Fig1Row, error)) error {
	fmt.Println("==", title, "==")
	rows, err := f()
	if err != nil {
		return err
	}
	fmt.Printf("%-7s %-10s %12s %12s %8s\n", "Layer", "Config", "ST(cycles)", "AM(cycles)", "ST/AM")
	for _, r := range rows {
		fmt.Printf("%-7s %-10s %12d %12.0f %8.2f\n", r.Layer, r.Config, r.ST, r.AM, r.RatioSTOverAM())
	}
	fmt.Println()
	return nil
}

func fig5(ctx context.Context, workers, scale int, tags []string) error {
	fmt.Println("== Figure 5 — TPU vs MAERI vs SIGMA: full-model cycles, energy, area ==")
	rows, err := exp.Fig5Par(ctx, workers, scale, tags)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %-11s %12s %7s %10s  %s\n", "Model", "Arch", "Cycles", "Util", "Energy µJ", "breakdown GB/DN/MN/RN %")
	for _, r := range rows {
		fmt.Printf("%-16s %-11s %12d %6.1f%% %10.1f  %s\n",
			r.Model, r.Arch, r.Cycles, 100*r.Utilization, r.TotalEnergy, breakdownPct(r.EnergyUJ, r.TotalEnergy))
	}
	fmt.Println()
	fmt.Printf("%-11s %12s  %s\n", "Arch", "Area µm²", "breakdown GB/DN/MN/RN %")
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Arch] {
			continue
		}
		seen[r.Arch] = true
		fmt.Printf("%-11s %12.0f  %s\n", r.Arch, r.TotalArea, breakdownPct(r.AreaUM2, r.TotalArea))
	}
	fmt.Println()
	// Headline ratios of Section VI-A.
	agg := map[string]uint64{}
	en := map[string]float64{}
	for _, r := range rows {
		agg[r.Arch] += r.Cycles
		en[r.Arch] += r.TotalEnergy
	}
	if agg["TPU-like"] > 0 && agg["MAERI-like"] > 0 && agg["SIGMA-like"] > 0 {
		fmt.Printf("speedup MAERI vs TPU: %.2fx (paper ~1.20x) | SIGMA vs MAERI: %.2fx (paper ~1.91x)\n",
			float64(agg["TPU-like"])/float64(agg["MAERI-like"]),
			float64(agg["MAERI-like"])/float64(agg["SIGMA-like"]))
		fmt.Printf("energy SIGMA/MAERI: %.2f (paper ~0.30) | SIGMA/TPU: %.2f (paper ~0.46)\n\n",
			en["SIGMA-like"]/en["MAERI-like"], en["SIGMA-like"]/en["TPU-like"])
	}
	return nil
}

func breakdownPct(br map[string]float64, total float64) string {
	if total == 0 {
		return "-"
	}
	keys := []string{"GB", "DN", "MN", "RN"}
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%.0f%%", k, 100*br[k]/total))
	}
	return strings.Join(parts, " ")
}

func fig6(ctx context.Context, workers, scale, images int) error {
	fmt.Println("== Figure 6 — SNAPEA vs baseline on four CNNs ==")
	rows, err := exp.Fig6Par(ctx, workers, scale, images)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %9s %11s %9s %9s\n", "Model", "Speedup", "EnergyNorm", "OpsNorm", "MemNorm")
	var sp, en, op, me float64
	for _, r := range rows {
		fmt.Printf("%-12s %8.2fx %11.2f %9.2f %9.2f\n", r.Model, r.Speedup, r.EnergyNorm, r.OpsNorm, r.MemNorm)
		sp += r.Speedup
		en += r.EnergyNorm
		op += r.OpsNorm
		me += r.MemNorm
	}
	n := float64(len(rows))
	fmt.Printf("%-12s %8.2fx %11.2f %9.2f %9.2f   (paper: 1.35x, 0.79, 0.70, 0.84)\n\n",
		"average", sp/n, en/n, op/n, me/n)
	return nil
}

func fig7(ctx context.Context, workers, scale int) error {
	fmt.Println("== Figure 7 — filter mapping on a 256-MS sparse fabric ==")
	a, b, err := exp.Fig7Par(ctx, workers, scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %s\n", "Model", "avg entire filters per round (7a)")
	for _, r := range a {
		fmt.Printf("%-16s %.2f\n", r.Model, r.AvgFilters)
	}
	fmt.Println()
	fmt.Printf("%-16s %s\n", "Model", "first-layer filter sizes, largest 8 (7b)")
	for _, r := range b {
		sizes := r.Sizes
		if len(sizes) > 8 {
			sizes = sizes[:8]
		}
		fmt.Printf("%-16s %v (of %d filters)\n", r.Model, sizes, len(r.Sizes))
	}
	fmt.Println()
	return nil
}

func fig9(ctx context.Context, workers, scale int, tags []string) error {
	fmt.Println("== Figure 9a/9b — filter scheduling (NS / RDM / LFF) ==")
	rows, err := exp.Fig9Par(ctx, workers, scale, tags)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %-6s %12s %7s %12s %12s\n", "Model", "Policy", "Cycles", "Util", "NormRuntime", "NormEnergy")
	var lffSum float64
	var lffN int
	for _, r := range rows {
		fmt.Printf("%-16s %-6s %12d %6.1f%% %12.3f %12.3f\n",
			r.Model, r.Policy, r.Cycles, 100*r.Utilization, r.NormRuntime, r.NormEnergy)
		if r.Policy == "LFF" {
			lffSum += r.NormRuntime
			lffN++
		}
	}
	if lffN > 0 {
		fmt.Printf("LFF mean normalized runtime: %.3f (paper: ~0.93 on average)\n\n", lffSum/float64(lffN))
	}
	return nil
}

func fig9c(ctx context.Context, workers, scale int) error {
	fmt.Println("== Figure 9c — Resnets-50 per-layer LFF sensitivity ==")
	rows, err := exp.Fig9cPar(ctx, workers, scale)
	if err != nil {
		return err
	}
	// Show the paper's three sensitivity classes: 5 most improved, 4 from
	// the middle, 5 least improved — 14 representative layers.
	pick := representative14(len(rows))
	fmt.Printf("%-16s %12s %11s %9s\n", "Layer", "NormRuntime", "NormEnergy", "UtilGain")
	for _, i := range pick {
		r := rows[i]
		fmt.Printf("%-16s %12.3f %11.3f %8.1f%%\n", r.Layer, r.NormRuntime, r.NormEnergy, 100*r.UtilGain)
	}
	fmt.Println()
	return nil
}

func representative14(n int) []int {
	if n <= 14 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	var idx []int
	for i := 0; i < 5; i++ {
		idx = append(idx, i)
	}
	mid := n / 2
	for i := mid - 2; i < mid+2; i++ {
		idx = append(idx, i)
	}
	for i := n - 5; i < n; i++ {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}
