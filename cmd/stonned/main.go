// Command stonned is the simulation-as-a-service daemon: a long-running
// HTTP server that accepts simulation jobs as JSON, executes them on the
// simulator with bounded concurrency, and memoizes results in a
// content-addressed cache — repeated jobs replay byte-identical results
// without re-running the kernel.
//
//	stonned -addr :9444 -workers 8 -queue 64 -cache-entries 4096 -cache-dir /var/lib/stonned
//
//	curl -s localhost:9444/jobs -d '{"op":"gemm","arch":"maeri","ms":64,"bw":16,"m":32,"n":32,"k":64,"seed":1}'
//
// With -cache-dir the result cache is backed by a persistent disk tier:
// jobkey content addresses are stable across processes, so a restarted
// daemon serves repeats of anything a previous process computed warm and
// byte-identical.
//
// Endpoints: POST /jobs, POST /replay (arrival-trace replay against this
// daemon's own serving path), GET /stats, GET /archs, GET /progress,
// GET /healthz. SIGINT/SIGTERM drain in-flight jobs and exit cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9444", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulation jobs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admitted jobs waiting for a worker beyond the executing ones (more get 429)")
	cacheEntries := flag.Int("cache-entries", 0, "result cache bound (0 = default)")
	cacheDir := flag.String("cache-dir", "", "persist cached results here; restarts serve repeats warm (empty = memory only)")
	diskEntries := flag.Int("disk-entries", 0, "persistent cache entry bound (0 = default)")
	batchWorkers := flag.Int("batch-workers", 1, "simpool fan-out inside one batched job")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace period for in-flight jobs")
	flag.Parse()

	srv, err := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		DiskEntries:  *diskEntries,
		BatchWorkers: *batchWorkers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stonned:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "stonned: listening on %s\n", *addr)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "stonned: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "stonned: shutdown:", err)
			os.Exit(1)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "stonned:", err)
			os.Exit(1)
		}
	}
}
