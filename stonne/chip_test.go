package stonne

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/comp/names"
	"repro/internal/trace"
)

// chipTestModel builds the shared fixture: AlexNet at 1/32 spatial scale
// with seeded weights and a couple of distinct input streams.
func chipTestModel(t *testing.T, streams int) (*Model, *Weights, []*Tensor) {
	t.Helper()
	full, err := ModelByShort("A")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ScaleSpatial(full, 32)
	if err != nil {
		t.Fatal(err)
	}
	w := InitWeights(m, 0xc41b)
	inputs := make([]*Tensor, streams)
	for i := range inputs {
		inputs[i] = RandomInput(m, uint64(0x9000+i))
	}
	return m, w, inputs
}

// TestChipSingleCoreParity pins the tentpole's safety contract at the API
// level: a 1-core chip is byte-identical to RunModel — same output bits,
// same cycles, same counters — under both placement policies.
func TestChipSingleCoreParity(t *testing.T) {
	m, w, inputs := chipTestModel(t, 1)
	hw := MAERILike(64, 16)

	want, mr, err := RunModel(m, w, inputs[0], hw, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate the bare path's per-layer runs the way ChipRun.Total does.
	ref := &Run{}
	for _, r := range mr.Runs {
		ref.Merge(r)
	}

	for _, placement := range []string{"layer", "batch"} {
		outs, cr, err := RunModelChip(context.Background(), m, w, inputs, hw,
			ChipOptions{Cores: 1, Placement: placement}, nil)
		if err != nil {
			t.Fatalf("%s: %v", placement, err)
		}
		if !reflect.DeepEqual(outs[0].Data(), want.Data()) {
			t.Errorf("%s: 1-core chip output differs from RunModel", placement)
		}
		if cr.Total.Cycles != ref.Cycles {
			t.Errorf("%s: chip cycles %d != bare %d", placement, cr.Total.Cycles, ref.Cycles)
		}
		if !reflect.DeepEqual(cr.Total.Counters, ref.Counters) {
			t.Errorf("%s: chip counters differ from bare path", placement)
		}
		if _, icn := cr.Total.Counters[names.ICNRequests]; icn {
			t.Errorf("%s: 1-core chip touched the interconnect — counter sets no longer match the bare kernel", placement)
		}
	}
}

// TestChipMultiCoreScaling checks the multi-core behaviours the tentpole
// promises: outputs stay bit-identical to the single-core path, the
// makespan beats serializing the same work on the busiest core, the
// interconnect counters appear, and the ICN breakdown keeps the exact-sum
// invariant.
func TestChipMultiCoreScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("chip integration test")
	}
	m, w, inputs := chipTestModel(t, 3)
	hw := MAERILike(64, 16)

	refs := make([]*Tensor, len(inputs))
	for i, in := range inputs {
		out, _, err := RunModel(m, w, in, hw, nil)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = out
	}

	for _, placement := range []string{"layer", "batch"} {
		outs, cr, err := RunModelChip(context.Background(), m, w, inputs, hw,
			ChipOptions{Cores: 2, Placement: placement}, nil)
		if err != nil {
			t.Fatalf("%s: %v", placement, err)
		}
		for i := range outs {
			if !reflect.DeepEqual(outs[i].Data(), refs[i].Data()) {
				t.Errorf("%s: stream %d output differs from single-core run", placement, i)
			}
		}
		if cr.MakespanCycles == 0 || cr.MakespanCycles >= cr.Total.Cycles {
			t.Errorf("%s: makespan %d does not overlap work (total %d)", placement, cr.MakespanCycles, cr.Total.Cycles)
		}
		if cr.Total.Counters[names.ICNRequests] == 0 {
			t.Errorf("%s: no interconnect requests recorded on a 2-core chip", placement)
		}
		icn, ok := cr.Total.Breakdown[trace.TierICN]
		if !ok {
			t.Fatalf("%s: no ICN tier in the merged breakdown", placement)
		}
		if icn.Total() != cr.Total.Cycles {
			t.Errorf("%s: ICN breakdown sums to %d, want exactly %d", placement, icn.Total(), cr.Total.Cycles)
		}
	}
}

// TestChipPreloadedMultiCore is the regression test for the watchdog abort
// on preloaded multi-core chips: with Preloaded set there is no initial-fill
// transfer to absorb the shared-bank backlog, so a core's first prefetch can
// stall behind another core's entire stage for longer than the deadlock
// window. The kernel's certified-wait signal must keep such runs alive, and
// preloading only changes cycle charging — outputs must stay bit-identical
// to the cold chip run.
func TestChipPreloadedMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("chip integration test")
	}
	m, w, inputs := chipTestModel(t, 2)
	cold := MAERILike(64, 16)
	warm := MAERILike(64, 16)
	warm.Preloaded = true

	for _, placement := range []string{"layer", "batch"} {
		coldOuts, _, err := RunModelChip(context.Background(), m, w, inputs, cold,
			ChipOptions{Cores: 2, Placement: placement}, nil)
		if err != nil {
			t.Fatalf("%s cold: %v", placement, err)
		}
		warmOuts, _, err := RunModelChip(context.Background(), m, w, inputs, warm,
			ChipOptions{Cores: 2, Placement: placement}, nil)
		if err != nil {
			t.Fatalf("%s preloaded: watchdog aborted a legitimate shared-bank stall: %v", placement, err)
		}
		for i := range coldOuts {
			if !reflect.DeepEqual(coldOuts[i].Data(), warmOuts[i].Data()) {
				t.Errorf("%s: preloading changed stream %d output bits", placement, i)
			}
		}
	}
}

// TestChipDeterminism pins bit-identical repeatability: two fresh N-core
// chip runs of the same workload produce deeply equal aggregates and
// outputs.
func TestChipDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chip integration test")
	}
	m, w, inputs := chipTestModel(t, 2)
	hw := MAERILike(64, 16)
	run := func() ([]*Tensor, *ChipRun) {
		outs, cr, err := RunModelChip(context.Background(), m, w, inputs, hw,
			ChipOptions{Cores: 2, Placement: "layer"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return outs, cr
	}
	out1, cr1 := run()
	out2, cr2 := run()
	if !reflect.DeepEqual(cr1, cr2) {
		t.Error("repeated 2-core chip runs produced different aggregates")
	}
	for i := range out1 {
		if !reflect.DeepEqual(out1[i].Data(), out2[i].Data()) {
			t.Errorf("repeated chip runs differ on stream %d output", i)
		}
	}
}
