// Package stonne is the public API of the simulator — the Go analogue of
// the STONNE API instruction set of Table III plus the deep-learning
// front-end integration of Figure 2. A typical flow mirrors the paper's
// walk-through example:
//
//	inst, _ := stonne.CreateInstance(stonne.MAERILike(256, 128))
//	inst.ConfigureCONV(shape)           // ConfigureCONV
//	inst.ConfigureData(weights, input)  // ConfigureData
//	out, run, _ := inst.RunOperation()  // RunOperation
//
// or, one level up, a whole model is executed with RunModel, which drives
// the layer-by-layer offload loop of Figure 2(b): compute-intensive layers
// run on the simulated accelerator, everything else runs natively, and the
// final scores are bit-compared against the native execution for
// functional validation.
package stonne

import (
	"fmt"

	"repro/internal/comp/names"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/mapper"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Re-exported types: the configuration, tensor and statistics vocabulary a
// user needs to drive the simulator.
type (
	// Hardware is the accelerator description (stonne_hw.cfg).
	Hardware = config.Hardware
	// Tensor is the dense tensor type operands are passed as.
	Tensor = tensor.Tensor
	// ConvShape is the Layer(R,S,C,G,K,N,X',Y') descriptor.
	ConvShape = tensor.ConvShape
	// Tile is the dense-controller tile descriptor.
	Tile = mapper.Tile
	// Run is the per-operation statistics record.
	Run = stats.Run
	// ModelRun aggregates a full-model simulation.
	ModelRun = stats.ModelRun
	// SchedPolicy selects the sparse filter-scheduling strategy.
	SchedPolicy = sched.Policy
	// EnergyTable is the table-based energy model.
	EnergyTable = energy.Table
)

// Scheduling policies (use case 3).
const (
	NoScheduling       = sched.NS
	RandomScheduling   = sched.RDM
	LargestFilterFirst = sched.LFF
)

// Preset configurations of Table IV.
var (
	// TPULike is the rigid output-stationary systolic composition.
	TPULike = config.TPULike
	// MAERILike is the flexible dense composition.
	MAERILike = config.MAERILike
	// SIGMALike is the flexible sparse composition.
	SIGMALike = config.SIGMALike
	// SNAPEALike is the data-dependent early-termination composition.
	SNAPEALike = config.SNAPEALike
)

// NewTensor allocates a zero tensor.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// TensorFromSlice wraps data in a tensor without copying.
func TensorFromSlice(data []float32, shape ...int) (*Tensor, error) {
	return tensor.FromSlice(data, shape...)
}

// opKind is the currently configured operation.
type opKind int

const (
	opNone opKind = iota
	opCONV
	opLinear
	opDMM
	opSpMM
	opMaxPool
)

// Instance is one simulated accelerator — what CreateInstance returns in
// Table III. It is not safe for concurrent use; create one instance per
// goroutine (they are cheap).
type Instance struct {
	hw  Hardware
	acc *engine.Accelerator
	tab EnergyTable

	op     opKind
	conv   ConvShape
	lin    struct{ out, in, batch int }
	pool   struct{ window, stride, padding int }
	tile   *Tile
	policy SchedPolicy

	weights, inputs *Tensor

	selfCheck bool
	lastCheck *CheckReport

	// Runs is the log of every operation executed on this instance.
	Runs []*Run
}

// CreateInstance builds an accelerator instance from a hardware
// configuration (Table III: CreateInstance).
func CreateInstance(hw Hardware) (*Instance, error) {
	acc, err := engine.New(hw)
	if err != nil {
		return nil, err
	}
	return &Instance{hw: hw, acc: acc, tab: energy.DefaultTable()}, nil
}

// CreateInstanceFromFile loads the hardware configuration from a JSON file
// — the stonne_hw.cfg of Fig. 2(d).
func CreateInstanceFromFile(path string) (*Instance, error) {
	hw, err := config.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return CreateInstance(hw)
}

// HW returns the instance's hardware configuration.
func (s *Instance) HW() Hardware { return s.hw }

// ConfigureCONV configures the accelerator to run a convolution
// (Table III: ConfigureCONV).
func (s *Instance) ConfigureCONV(cs ConvShape) error {
	if err := cs.Validate(); err != nil {
		return err
	}
	s.op, s.conv = opCONV, cs
	return nil
}

// ConfigureLinear configures a fully-connected layer of the given output
// and input widths (Table III: ConfigureLinear). batch is the number of
// input vectors (1 for image classifiers).
func (s *Instance) ConfigureLinear(out, in, batch int) error {
	if out <= 0 || in <= 0 || batch <= 0 {
		return fmt.Errorf("stonne: non-positive linear dims out=%d in=%d batch=%d", out, in, batch)
	}
	s.op = opLinear
	s.lin.out, s.lin.in, s.lin.batch = out, in, batch
	return nil
}

// ConfigureDMM configures a dense matrix multiplication (Table III:
// ConfigureDMM). Dimensions are taken from the operands at RunOperation.
func (s *Instance) ConfigureDMM() { s.op = opDMM }

// ConfigureSpMM configures a sparse matrix multiplication with the given
// filter-scheduling policy (Table III: ConfigureSpMM).
func (s *Instance) ConfigureSpMM(policy SchedPolicy) {
	s.op = opSpMM
	s.policy = policy
}

// ConfigureMaxPool configures a max pooling layer (Table III:
// ConfigureMaxPool). Pooling maps onto the flexible fabric without extra
// SIMD units; the simulator accounts it as window-sized comparisons.
func (s *Instance) ConfigureMaxPool(window, stride, padding int) error {
	if window <= 0 || stride <= 0 || padding < 0 {
		return fmt.Errorf("stonne: bad pool parameters window=%d stride=%d padding=%d", window, stride, padding)
	}
	s.op = opMaxPool
	s.pool.window, s.pool.stride, s.pool.padding = window, stride, padding
	return nil
}

// ConfigureTile supplies an explicit tile for the next dense convolution,
// overriding the mapper's choice — the per-layer tile configuration of
// Fig. 2(d).
func (s *Instance) ConfigureTile(t Tile) { s.tile = &t }

// ConfigureData loads the weight and input tensors into the accelerator's
// address space (Table III: ConfigureData). For DMM/SpMM, weights is the
// MK operand and inputs the KN operand.
func (s *Instance) ConfigureData(weights, inputs *Tensor) {
	s.weights, s.inputs = weights, inputs
}

// RunOperation launches the simulation of the configured operation
// (Table III: RunOperation), returning the output tensor and the run
// statistics (with the energy model applied).
func (s *Instance) RunOperation() (*Tensor, *Run, error) {
	if s.inputs == nil {
		return nil, nil, fmt.Errorf("stonne: no data configured — call ConfigureData first")
	}
	var (
		out    *Tensor
		run    *Run
		err    error
		gA, gB *Tensor // exact GEMM operands, kept for self-checking
	)
	switch s.op {
	case opCONV:
		if s.weights == nil {
			return nil, nil, fmt.Errorf("stonne: CONV requires weights")
		}
		if s.tile != nil {
			out, run, err = s.acc.RunConvTiled(s.inputs, s.weights, s.conv, "conv", *s.tile)
			s.tile = nil
		} else {
			out, run, err = s.acc.RunConv(s.inputs, s.weights, s.conv, "conv")
		}
	case opLinear:
		outW, inW, batch := s.lin.out, s.lin.in, s.lin.batch
		if s.weights == nil || s.weights.Len() != outW*inW {
			return nil, nil, fmt.Errorf("stonne: linear weights must be %d×%d", outW, inW)
		}
		W, err2 := s.weights.Reshape(outW, inW)
		if err2 != nil {
			return nil, nil, err2
		}
		X, err2 := s.inputs.Reshape(batch, inW)
		if err2 != nil {
			return nil, nil, err2
		}
		// out = W × Xᵀ: run as GEMM with the weight matrix stationary.
		gA, gB = W, transpose(X)
		out, run, err = s.acc.RunGEMM(gA, gB, "linear")
	case opDMM:
		if s.weights == nil {
			return nil, nil, fmt.Errorf("stonne: DMM requires both operands")
		}
		gA, gB = s.weights, s.inputs
		out, run, err = s.acc.RunGEMM(gA, gB, "dmm")
	case opSpMM:
		if s.weights == nil {
			return nil, nil, fmt.Errorf("stonne: SpMM requires both operands")
		}
		pol := s.policy
		gA, gB = s.weights, s.inputs
		out, run, err = s.acc.RunSpMM(gA, gB, "spmm", &pol)
	case opMaxPool:
		out, run, err = s.runMaxPool()
	default:
		return nil, nil, fmt.Errorf("stonne: no operation configured")
	}
	if err != nil {
		return nil, nil, err
	}
	if s.selfCheck {
		if cerr := s.verifyRun(out, gA, gB); cerr != nil {
			return nil, nil, cerr
		}
	}
	s.tab.Apply(run, &s.hw)
	s.Runs = append(s.Runs, run)
	return out, run, nil
}

// runMaxPool executes pooling on the fabric: one comparison per window
// element per output, at MSSize comparisons per cycle.
func (s *Instance) runMaxPool() (*Tensor, *Run, error) {
	in := s.inputs
	if in.Rank() != 4 {
		return nil, nil, fmt.Errorf("stonne: MaxPool expects NCHW input, got %v", in.Shape())
	}
	n, c, x, y := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	w, st, pad := s.pool.window, s.pool.stride, s.pool.padding
	ox := (x+2*pad-w)/st + 1
	oy := (y+2*pad-w)/st + 1
	if ox <= 0 || oy <= 0 {
		return nil, nil, fmt.Errorf("stonne: pool window %d stride %d yields empty output from %v", w, st, in.Shape())
	}
	out := tensor.New(n, c, ox, oy)
	comparisons := uint64(n*c*ox*oy) * uint64(w*w)
	cycles := comparisons / uint64(s.hw.MSSize)
	if cycles == 0 {
		cycles = 1
	}
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for i := 0; i < ox; i++ {
				for j := 0; j < oy; j++ {
					best := float32(0)
					first := true
					for wi := 0; wi < w; wi++ {
						xi := i*st + wi - pad
						if xi < 0 || xi >= x {
							continue
						}
						for wj := 0; wj < w; wj++ {
							yj := j*st + wj - pad
							if yj < 0 || yj >= y {
								continue
							}
							v := in.At(ni, ci, xi, yj)
							if first || v > best {
								best = v
								first = false
							}
						}
					}
					out.Set(best, ni, ci, i, j)
				}
			}
		}
	}
	run := &Run{
		Accelerator: s.hw.Name, Op: "MaxPool",
		Cycles: cycles, MemAccesses: uint64(n * c * (x*y + ox*oy)),
		Counters: map[string]uint64{
			names.MNComparisons: comparisons,
			names.GBReads:       uint64(n * c * x * y),
			names.GBWrites:      uint64(n * c * ox * oy),
		},
	}
	return out, run, nil
}

func transpose(t *Tensor) *Tensor {
	r, c := t.Dim(0), t.Dim(1)
	out := tensor.New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.Set(t.At(i, j), j, i)
		}
	}
	return out
}
