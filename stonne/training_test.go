package stonne

import (
	"strings"
	"testing"

	"repro/internal/dnn"
)

const trainNetJSON = `{
  "name": "trainnet", "input_channels": 2, "input_size": 8,
  "layers": [
    {"type": "conv", "name": "c1", "filters": 4, "kernel": 3, "pad": 1},
    {"type": "relu"},
    {"type": "linear", "name": "fc", "out": 3},
    {"type": "softmax"}
  ]
}`

func trainFixture(t *testing.T) (*Model, *Weights, *Tensor) {
	t.Helper()
	m, err := dnn.ParseModel(strings.NewReader(trainNetJSON))
	if err != nil {
		t.Fatal(err)
	}
	w := InitWeights(m, 55)
	return m, w, RandomInput(m, 56)
}

func TestRunTrainingStepOnAccelerators(t *testing.T) {
	for _, hw := range []Hardware{MAERILike(64, 16), SIGMALike(64, 16), TPULike(64)} {
		m, w, input := trainFixture(t)
		// The simulated gradients must equal the native ones.
		native, err := dnn.TrainStep(m, w, input, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunTrainingStep(m, w, input, 1, hw)
		if err != nil {
			t.Fatalf("%s: %v", hw.Name, err)
		}
		if d := res.Loss - native.Loss; d > 1e-3 || d < -1e-3 {
			t.Errorf("%s: loss %v vs native %v", hw.Name, res.Loss, native.Loss)
		}
		for name, g := range native.Grads {
			sim := res.Grads[name]
			if sim == nil {
				t.Fatalf("%s: gradient %s missing", hw.Name, name)
			}
			for i, v := range g.Data() {
				diff := float64(sim.Data()[i] - v)
				if diff > 1e-2 || diff < -1e-2 {
					t.Fatalf("%s: grad %s[%d] = %v vs native %v", hw.Name, name, i, sim.Data()[i], v)
				}
			}
		}
		// Forward + dW + dX per weighted layer → 6 simulated GEMMs.
		if len(res.Stats.Runs) != 6 {
			t.Errorf("%s: %d simulated GEMMs, want 6", hw.Name, len(res.Stats.Runs))
		}
		if res.Stats.TotalCycles() == 0 {
			t.Errorf("%s: zero cycles", hw.Name)
		}
	}
}

func TestTrainingLossConvergesOnSimulator(t *testing.T) {
	m, w, input := trainFixture(t)
	hw := MAERILike(64, 32)
	first, err := RunTrainingStep(m, w, input, 2, hw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		res, err := RunTrainingStep(m, w, input, 2, hw)
		if err != nil {
			t.Fatal(err)
		}
		if err := ApplySGD(w, res.Grads, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	last, err := RunTrainingStep(m, w, input, 2, hw)
	if err != nil {
		t.Fatal(err)
	}
	if last.Loss >= first.Loss {
		t.Errorf("loss did not converge: %.4f -> %.4f", first.Loss, last.Loss)
	}
}

func TestTrainingRejectsSNAPEA(t *testing.T) {
	m, w, input := trainFixture(t)
	if _, err := RunTrainingStep(m, w, input, 0, SNAPEALike(64, 64)); err == nil {
		t.Error("SNAPEA accepted for training")
	}
}

func TestTilesOption(t *testing.T) {
	m, w, input := trainFixture(t)
	want, err := RunModelNative(m, w, input)
	if err != nil {
		t.Fatal(err)
	}
	// An explicit (valid) tile for c1: 3×3×1 window slice, one VN.
	tiles := map[string]Tile{
		"c1": {TR: 3, TS: 3, TC: 1, TG: 1, TK: 1, TN: 1, TXp: 1, TYp: 2,
			VNSize: 9, NumVNs: 2, Folds: 2, UsedMultipliers: 18},
	}
	got, mr, err := RunModel(m, w, input, MAERILike(64, 16), &RunOptions{Tiles: tiles})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(got, want); d > 1e-3 {
		t.Errorf("tiled run differs from native by %g", d)
	}
	if mr.TotalCycles() == 0 {
		t.Error("no cycles")
	}
}
