package stonne

import (
	"fmt"

	"repro/internal/check"
)

// CheckReport is the differential verification report produced when
// self-checking is enabled: the simulated output compared element-wise
// against the CPU reference under the architecture's numeric contract.
type CheckReport = check.Report

// EnableSelfCheck makes every subsequent RunOperation verify its output
// tensor against the CPU reference (tensor.MatMul / tensor.Conv2D) under
// the architecture's numeric contract — bit-exact where the engine
// accumulates in reference order, bounded relative error where the
// reduction tree reorders the sum. A failed check fails the operation.
// MaxPool runs natively and is not checked.
func (s *Instance) EnableSelfCheck() { s.selfCheck = true }

// LastCheck returns the verification report of the most recent checked
// operation, or nil if self-checking is disabled or nothing has run yet.
func (s *Instance) LastCheck() *CheckReport { return s.lastCheck }

// VerifyGEMM, VerifySpMM and VerifyConv expose the differential verifiers
// directly, for callers that hold their own simulated outputs rather than
// running through an Instance.
var (
	VerifyGEMM = check.VerifyGEMM
	VerifySpMM = check.VerifySpMM
	VerifyConv = check.VerifyConv
)

// verifyRun dispatches the configured operation to the matching
// differential verifier. gA/gB are the exact GEMM operands handed to the
// engine (already reshaped/transposed for linear layers).
func (s *Instance) verifyRun(out, gA, gB *Tensor) error {
	var (
		rep *check.Report
		err error
	)
	switch s.op {
	case opCONV:
		rep, err = check.VerifyConv(s.hw, s.inputs, s.weights, s.conv, out)
	case opDMM, opLinear:
		rep, err = check.VerifyGEMM(s.hw, gA, gB, out)
	case opSpMM:
		rep, err = check.VerifySpMM(s.hw, gA, gB, out)
	default:
		return nil // MaxPool etc. execute natively; nothing to diff against
	}
	if err != nil {
		return fmt.Errorf("stonne: self-check: %w", err)
	}
	s.lastCheck = rep
	if rerr := rep.Err(); rerr != nil {
		return fmt.Errorf("stonne: self-check failed: %w", rerr)
	}
	return nil
}
