package stonne

import (
	"strings"
	"testing"
)

// fillDet populates a tensor with a small deterministic pattern mixing
// signs and magnitudes.
func fillDet(t *Tensor, phase int) {
	d := t.Data()
	for i := range d {
		d[i] = float32((i*7+phase*13)%11-5) / 4
	}
}

func TestSelfCheckVerifiesOperations(t *testing.T) {
	// DMM on the reordered-sum flexible fabric.
	inst, err := CreateInstance(MAERILike(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	inst.EnableSelfCheck()
	if inst.LastCheck() != nil {
		t.Error("LastCheck non-nil before any run")
	}
	A, B := NewTensor(9, 13), NewTensor(13, 7)
	fillDet(A, 1)
	fillDet(B, 2)
	inst.ConfigureDMM()
	inst.ConfigureData(A, B)
	if _, _, err := inst.RunOperation(); err != nil {
		t.Fatal(err)
	}
	rep := inst.LastCheck()
	if rep == nil || !rep.OK() {
		t.Fatalf("DMM self-check: %v", rep)
	}

	// Conv on the same instance (activations non-negative, post-ReLU).
	cs := ConvShape{R: 3, S: 3, C: 4, G: 1, K: 4, N: 1, X: 8, Y: 8, Stride: 1, Padding: 1}
	in, w := NewTensor(1, 4, 8, 8), NewTensor(4, 4, 3, 3)
	fillDet(in, 3)
	for i, d := 0, in.Data(); i < len(d); i++ {
		if d[i] < 0 {
			d[i] = -d[i]
		}
	}
	fillDet(w, 4)
	if err := inst.ConfigureCONV(cs); err != nil {
		t.Fatal(err)
	}
	inst.ConfigureData(w, in)
	if _, _, err := inst.RunOperation(); err != nil {
		t.Fatal(err)
	}
	if rep := inst.LastCheck(); rep == nil || !rep.OK() || rep.Op != "CONV" {
		t.Fatalf("conv self-check: %v", rep)
	}

	// SpMM on the sparse composition.
	sp, err := CreateInstance(SIGMALike(64, 32))
	if err != nil {
		t.Fatal(err)
	}
	sp.EnableSelfCheck()
	MK := NewTensor(8, 16)
	fillDet(MK, 5)
	for i, d := 0, MK.Data(); i < len(d); i++ {
		if i%3 != 0 {
			d[i] = 0
		}
	}
	KN := NewTensor(16, 6)
	fillDet(KN, 6)
	sp.ConfigureSpMM(LargestFilterFirst)
	sp.ConfigureData(MK, KN)
	if _, _, err := sp.RunOperation(); err != nil {
		t.Fatal(err)
	}
	if rep := sp.LastCheck(); rep == nil || !rep.OK() {
		t.Fatalf("SpMM self-check: %v", rep)
	}
}

// A corrupted simulation result must fail the operation with a report that
// names the worst offender, proving the check is actually wired in.
func TestSelfCheckCatchesCorruption(t *testing.T) {
	inst, err := CreateInstance(TPULike(16))
	if err != nil {
		t.Fatal(err)
	}
	A, B := NewTensor(4, 4), NewTensor(4, 4)
	fillDet(A, 1)
	fillDet(B, 2)
	inst.ConfigureDMM()
	inst.ConfigureData(A, B)
	out, _, err := inst.RunOperation() // unchecked run to get a real output
	if err != nil {
		t.Fatal(err)
	}
	// Re-verify through the public path with a flipped element: the exact
	// contract of the systolic array must flag a single-ULP perturbation.
	inst.EnableSelfCheck()
	inst.ConfigureData(A, B)
	if _, _, err := inst.RunOperation(); err != nil {
		t.Fatalf("clean rerun failed: %v", err)
	}
	_ = out
	bad := NewTensor(4, 4)
	copy(bad.Data(), out.Data())
	bad.Data()[5] += 0.25
	rep, err := VerifyGEMM(inst.HW(), A, B, bad)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("corrupted output passed verification")
	}
	if !strings.Contains(rep.String(), "worst") {
		t.Errorf("report lacks worst-offender detail: %s", rep)
	}
}
