package stonne

import (
	"fmt"

	"repro/internal/dnn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// This file is the front-end integration of Figure 2: the Go analogue of
// the modified PyTorch whose Simulated* operations off-load
// compute-intensive layers onto a simulator instance while the remaining
// layers run natively, preserving end-to-end correctness.

// Re-exported model-zoo vocabulary.
type (
	// Model is a DNN model graph (Table I zoo).
	Model = dnn.Model
	// Layer is one operator of a model.
	Layer = dnn.Layer
	// Weights holds a model's trained tensors.
	Weights = dnn.Weights
)

// The seven models of Table I.
var (
	MobileNetsV1  = dnn.MobileNetsV1
	SqueezeNet    = dnn.SqueezeNet
	AlexNet       = dnn.AlexNet
	ResNet50      = dnn.ResNet50
	VGG16         = dnn.VGG16
	SSDMobileNets = dnn.SSDMobileNets
	BERT          = dnn.BERT
	AllModels     = dnn.AllModels
	ModelByShort  = dnn.ModelByShort

	// InitWeights generates seeded weights; Prune applies the Table I
	// sparsity; RandomInput builds a deterministic sample.
	InitWeights  = dnn.InitWeights
	RandomInput  = dnn.RandomInput
	ScaleSpatial = dnn.ScaleSpatial
)

// RunOptions tunes a full-model simulation.
type RunOptions struct {
	// Policy is the sparse filter-scheduling strategy (SIGMA-like only).
	Policy SchedPolicy
	// DisableSNAPEACut turns the SNAPEA early-termination logic off,
	// yielding the paper's "Baseline" architecture.
	DisableSNAPEACut bool
	// Tiles supplies explicit per-layer tile configurations for the dense
	// flexible fabric, keyed by layer name — the per-layer tile arguments
	// of the paper's Fig. 2(d). Layers without an entry use the mapper.
	Tiles map[string]Tile
}

// simOffloader implements dnn.Offloader on top of an Instance.
type simOffloader struct {
	inst *Instance
	opts RunOptions
	// cutSafe marks convolutions whose output feeds a ReLU directly
	// (possibly through an inference-time batch norm) — the layers SNAPEA
	// exact mode may cut.
	cutSafe map[string]bool
}

// RunLayer dispatches one offloaded layer to the simulated accelerator.
func (o *simOffloader) RunLayer(l *dnn.Layer, in, w *tensor.Tensor) (*tensor.Tensor, error) {
	inst := o.inst
	var (
		out *Tensor
		run *Run
		err error
	)
	switch l.Kind {
	case dnn.Conv:
		switch {
		case inst.acc.SupportsEarlyCut():
			cut := !o.opts.DisableSNAPEACut && o.cutSafe[l.Name]
			out, run, err = inst.acc.RunSNAPEAConv(in, w, l.Conv, l.Name, cut)
		case inst.acc.SupportsScheduling():
			out, run, err = inst.acc.RunConvScheduled(in, w, l.Conv, l.Name, o.opts.Policy)
		default:
			if tile, ok := o.opts.Tiles[l.Name]; ok {
				out, run, err = inst.acc.RunConvTiled(in, w, l.Conv, l.Name, tile)
			} else {
				out, run, err = inst.acc.RunConv(in, w, l.Conv, l.Name)
			}
		}
	case dnn.Linear:
		// out = W(Out×In) × inᵀ(In×B), reshaped to (B, Out).
		wt := w
		bt := transpose(in)
		if inst.acc.SupportsScheduling() {
			pol := o.opts.Policy
			out, run, err = inst.acc.RunSpMM(wt, bt, l.Name, &pol)
		} else {
			out, run, err = inst.acc.RunGEMM(wt, bt, l.Name)
		}
		if err == nil {
			out = transpose(out)
		}
	case dnn.GEMM:
		a, b, err2 := dnn.GEMMOperands(l, in)
		if err2 != nil {
			return nil, err2
		}
		if inst.acc.SupportsScheduling() {
			pol := o.opts.Policy
			out, run, err = inst.acc.RunSpMM(a, b, l.Name, &pol)
		} else {
			out, run, err = inst.acc.RunGEMM(a, b, l.Name)
		}
	default:
		return nil, fmt.Errorf("stonne: layer %s of kind %v cannot be offloaded", l.Name, l.Kind)
	}
	if err != nil {
		return nil, err
	}
	inst.tab.Apply(run, &inst.hw)
	inst.Runs = append(inst.Runs, run)
	return out, nil
}

// RunModel executes a full-model inference with every compute-intensive
// layer simulated on the given hardware (Fig. 2b). It returns the final
// activation (identical, up to float ordering, to the native execution),
// the aggregated per-layer statistics, and an error if any layer fails.
func RunModel(m *Model, w *Weights, input *Tensor, hw Hardware, opts *RunOptions) (*Tensor, *ModelRun, error) {
	if opts == nil {
		opts = &RunOptions{}
	}
	inst, err := CreateInstance(hw)
	if err != nil {
		return nil, nil, err
	}
	off := &simOffloader{inst: inst, opts: *opts, cutSafe: dnn.SNAPEACutSafe(m)}
	exec := &dnn.Executor{Model: m, Weights: w, Offload: off}
	out, err := exec.Run(input)
	if err != nil {
		return nil, nil, err
	}
	mr := &stats.ModelRun{Accelerator: hw.Name, Model: m.Name, Runs: inst.Runs}
	return out, mr, nil
}

// RunModelNative executes the model entirely on the CPU reference
// executor — the ground truth the paper compares simulated outputs against.
func RunModelNative(m *Model, w *Weights, input *Tensor) (*Tensor, error) {
	exec := &dnn.Executor{Model: m, Weights: w}
	return exec.Run(input)
}
