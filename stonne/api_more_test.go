package stonne

import (
	"testing"

	"repro/internal/dnn"
	"repro/internal/tensor"
)

func randAPITensor(seed uint64, sparsity float64, shape ...int) *Tensor {
	rng := dnn.NewRNG(seed)
	t := NewTensor(shape...)
	for i, d := 0, t.Data(); i < len(d); i++ {
		if rng.Float64() >= sparsity {
			d[i] = float32(rng.Normal())
		}
	}
	return t
}

func TestConfigureSpMMFlow(t *testing.T) {
	inst, err := CreateInstance(SIGMALike(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	A := randAPITensor(1, 0.7, 12, 40)
	B := randAPITensor(2, 0, 40, 9)
	for _, pol := range []SchedPolicy{NoScheduling, RandomScheduling, LargestFilterFirst} {
		inst.ConfigureSpMM(pol)
		inst.ConfigureData(A, B)
		out, run, err := inst.RunOperation()
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		want, _ := tensor.MatMul(A, B)
		if d := maxRelDiff(out, want); d > 1e-3 {
			t.Errorf("%v: SpMM wrong by %g", pol, d)
		}
		if run.Op != "SpMM" {
			t.Errorf("op %q", run.Op)
		}
	}
	if len(inst.Runs) != 3 {
		t.Errorf("run log has %d entries", len(inst.Runs))
	}
}

func TestConfigureLinearFlow(t *testing.T) {
	inst, err := CreateInstance(MAERILike(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	const out, in, batch = 6, 20, 3
	if err := inst.ConfigureLinear(out, in, batch); err != nil {
		t.Fatal(err)
	}
	W := randAPITensor(3, 0, out, in)
	X := randAPITensor(4, 0, batch, in)
	inst.ConfigureData(W, X)
	got, run, err := inst.RunOperation()
	if err != nil {
		t.Fatal(err)
	}
	// Reference: Y = W·Xᵀ, i.e. got should be (out × batch).
	want, _ := tensor.MatMul(W, transpose(X))
	if d := maxRelDiff(got, want); d > 1e-3 {
		t.Errorf("linear output differs by %g", d)
	}
	if run.M == 0 {
		t.Error("run dims empty")
	}
	if err := inst.ConfigureLinear(0, 1, 1); err == nil {
		t.Error("zero out accepted")
	}
	badW := NewTensor(out, in+1)
	inst.ConfigureLinear(out, in, batch)
	inst.ConfigureData(badW, X)
	if _, _, err := inst.RunOperation(); err == nil {
		t.Error("mis-sized weights accepted")
	}
}

func TestConfigureTileViaInstructionSet(t *testing.T) {
	inst, err := CreateInstance(MAERILike(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	cs := ConvShape{R: 3, S: 3, C: 2, G: 1, K: 4, N: 1, X: 6, Y: 6, Stride: 1, Padding: 1}
	if err := inst.ConfigureCONV(cs); err != nil {
		t.Fatal(err)
	}
	inst.ConfigureTile(Tile{
		TR: 3, TS: 3, TC: 1, TG: 1, TK: 2, TN: 1, TXp: 1, TYp: 2,
		VNSize: 9, NumVNs: 4, Folds: 2, UsedMultipliers: 36,
	})
	in := randAPITensor(5, 0, 1, 2, 6, 6)
	w := randAPITensor(6, 0, 4, 2, 3, 3)
	inst.ConfigureData(w, in)
	got, _, err := inst.RunOperation()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.Conv2D(in, w, cs)
	if d := maxRelDiff(got, want); d > 1e-3 {
		t.Errorf("tiled CONV differs by %g", d)
	}
	// The tile is one-shot: the next run uses the mapper again.
	inst.ConfigureData(w, in)
	if _, _, err := inst.RunOperation(); err != nil {
		t.Fatalf("mapper fallback after one-shot tile: %v", err)
	}
}

func TestConfigureMaxPoolErrors(t *testing.T) {
	inst, err := CreateInstance(MAERILike(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ConfigureMaxPool(0, 1, 0); err == nil {
		t.Error("zero window accepted")
	}
	if err := inst.ConfigureMaxPool(2, 2, -1); err == nil {
		t.Error("negative padding accepted")
	}
	if err := inst.ConfigureMaxPool(9, 2, 0); err != nil {
		t.Fatal(err)
	}
	inst.ConfigureData(nil, NewTensor(1, 1, 4, 4))
	if _, _, err := inst.RunOperation(); err == nil {
		t.Error("pool window larger than the input accepted")
	}
}

func TestSNAPEAPresetThroughAPI(t *testing.T) {
	inst, err := CreateInstance(SNAPEALike(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	cs := ConvShape{R: 3, S: 3, C: 4, G: 1, K: 4, N: 1, X: 8, Y: 8, Stride: 1, Padding: 1}
	if err := inst.ConfigureCONV(cs); err != nil {
		t.Fatal(err)
	}
	in := randAPITensor(7, 0, 1, 4, 8, 8)
	in.Apply(func(v float32) float32 { // non-negative inputs (exact mode)
		if v < 0 {
			return 0
		}
		return v
	})
	w := randAPITensor(8, 0.5, 4, 4, 3, 3)
	inst.ConfigureData(w, in)
	got, run, err := inst.RunOperation()
	if err != nil {
		t.Fatal(err)
	}
	if run.Counters["snapea.cuts"] == 0 {
		t.Error("no early cuts through the API path")
	}
	// Post-ReLU equality with the reference.
	want, _ := tensor.Conv2D(in, w, cs)
	relu := func(t *Tensor) {
		t.Apply(func(v float32) float32 {
			if v < 0 {
				return 0
			}
			return v
		})
	}
	relu(got)
	relu(want)
	if d := maxRelDiff(got, want); d > 1e-3 {
		t.Errorf("SNAPEA post-relu differs by %g", d)
	}
}
