package stonne

import (
	"fmt"

	"repro/internal/dnn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Training support — the paper's stated ongoing work, exposed here: one
// SGD step whose forward and backward matrix products all execute on the
// simulated accelerator. SIGMA (one of the Table IV compositions) was
// designed for exactly these sparse and irregular training GEMMs.

// TrainResult is one training step's outcome plus the simulation record.
type TrainResult struct {
	Loss  float64
	Grads map[string]*tensor.Tensor
	Stats *ModelRun
}

// trainOffloader adapts an Instance to the trainer's GEMM seam.
type trainOffloader struct {
	inst *Instance
}

func (o *trainOffloader) RunTrainGEMM(a, b *tensor.Tensor, tag string) (*tensor.Tensor, error) {
	var (
		out *Tensor
		run *Run
		err error
	)
	if o.inst.acc.SupportsScheduling() {
		pol := NoScheduling
		out, run, err = o.inst.acc.RunSpMM(a, b, tag, &pol)
	} else {
		out, run, err = o.inst.acc.RunGEMM(a, b, tag)
	}
	if err != nil {
		return nil, err
	}
	o.inst.tab.Apply(run, &o.inst.hw)
	o.inst.Runs = append(o.inst.Runs, run)
	return out, nil
}

// RunTrainingStep executes one forward+backward pass for (input, label) on
// the given hardware and returns the loss, the weight gradients and the
// per-GEMM simulation statistics. Apply the gradients with ApplySGD.
func RunTrainingStep(m *Model, w *Weights, input *Tensor, label int, hw Hardware) (*TrainResult, error) {
	inst, err := CreateInstance(hw)
	if err != nil {
		return nil, err
	}
	if inst.acc.SupportsEarlyCut() {
		return nil, fmt.Errorf("stonne: the SNAPEA accelerator is inference-only (early termination is unsound for gradients)")
	}
	res, err := dnn.TrainStep(m, w, input, label, &trainOffloader{inst: inst})
	if err != nil {
		return nil, err
	}
	return &TrainResult{
		Loss:  res.Loss,
		Grads: res.Grads,
		Stats: &stats.ModelRun{Accelerator: hw.Name, Model: m.Name, Runs: inst.Runs},
	}, nil
}

// ApplySGD updates weights in place (w ← w − lr·g), preserving the pruned
// zero mask.
var ApplySGD = dnn.ApplySGD

// Model-file front end (the Caffe-path analogue): models described in a
// JSON file, weights in the binary .stnw format.
var (
	// LoadModelFile parses a JSON model description.
	LoadModelFile = dnn.LoadModelFile
	// LoadWeightsFile reads a binary weights file.
	LoadWeightsFile = dnn.LoadWeightsFile
	// CheckWeights verifies weights cover a model with matching shapes.
	CheckWeights = dnn.CheckWeights
)
