package stonne

import (
	"math"
	"testing"

	"repro/internal/dnn"
	"repro/internal/tensor"
)

// smallCNN is a compact conv net exercising every offloaded kind.
func smallCNN(t *testing.T) (*Model, *Weights, *Tensor) {
	t.Helper()
	m := &dnn.Model{
		Name: "smallcnn", Short: "T", Sparsity: 0.5, InputC: 3, InputXY: 16,
		Layers: []dnn.Layer{
			{Name: "conv1", Kind: dnn.Conv, Class: dnn.ClassC,
				Conv: tensor.ConvShape{R: 3, S: 3, C: 3, G: 1, K: 8, N: 1, X: 16, Y: 16, Stride: 1, Padding: 1}},
			{Name: "relu1", Kind: dnn.ReLU},
			{Name: "pool1", Kind: dnn.MaxPool, Pool: dnn.PoolShape{Window: 2, Stride: 2}},
			{Name: "conv2", Kind: dnn.Conv, Class: dnn.ClassC,
				Conv: tensor.ConvShape{R: 3, S: 3, C: 8, G: 1, K: 8, N: 1, X: 8, Y: 8, Stride: 1, Padding: 1}},
			{Name: "relu2", Kind: dnn.ReLU},
			{Name: "flatten", Kind: dnn.Flatten},
			{Name: "fc", Kind: dnn.Linear, In: 8 * 8 * 8, Out: 10},
			{Name: "softmax", Kind: dnn.Softmax},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	w := InitWeights(m, 42)
	if err := w.Prune(m.Sparsity); err != nil {
		t.Fatal(err)
	}
	return m, w, RandomInput(m, 7)
}

func maxRelDiff(a, b *Tensor) float64 {
	ad, bd := a.Data(), b.Data()
	worst := 0.0
	for i := range ad {
		diff := math.Abs(float64(ad[i]) - float64(bd[i]))
		scale := math.Max(1e-3, math.Abs(float64(bd[i])))
		if d := diff / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// TestFullModelFunctionalValidation is the paper's Section V functional
// validation: the simulated execution's final scores must match the
// native CPU execution on every architecture.
func TestFullModelFunctionalValidation(t *testing.T) {
	m, w, input := smallCNN(t)
	want, err := RunModelNative(m, w, input)
	if err != nil {
		t.Fatal(err)
	}
	for _, hw := range []Hardware{TPULike(64), MAERILike(64, 16), SIGMALike(64, 16)} {
		got, mr, err := RunModel(m, w, input, hw, nil)
		if err != nil {
			t.Fatalf("%s: %v", hw.Name, err)
		}
		if d := maxRelDiff(got, want); d > 1e-3 {
			t.Errorf("%s: output differs from native by %g", hw.Name, d)
		}
		if len(mr.Runs) != 3 { // conv1, conv2, fc
			t.Errorf("%s: %d offloaded runs, want 3", hw.Name, len(mr.Runs))
		}
		if mr.TotalCycles() == 0 {
			t.Errorf("%s: zero total cycles", hw.Name)
		}
		for _, r := range mr.Runs {
			if len(r.Energy) == 0 {
				t.Errorf("%s/%s: energy model not applied", hw.Name, r.Layer)
			}
		}
	}
}

func TestFullModelSNAPEA(t *testing.T) {
	m, w, input := smallCNN(t)
	want, err := RunModelNative(m, w, input)
	if err != nil {
		t.Fatal(err)
	}
	hw := SNAPEALike(64, 64)
	got, mr, err := RunModel(m, w, input, hw, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Final scores pass through a softmax after the fc layer; all conv
	// outputs were ReLU'd, so they match and the scores match too.
	if d := maxRelDiff(got, want); d > 1e-3 {
		t.Errorf("SNAPEA output differs from native by %g", d)
	}
	base, mrBase, err := RunModel(m, w, input, hw, &RunOptions{DisableSNAPEACut: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(base, want); d > 1e-3 {
		t.Errorf("SNAPEA baseline differs from native by %g", d)
	}
	if mr.TotalCycles() >= mrBase.TotalCycles() {
		t.Errorf("SNAPEA cut did not save cycles: %d vs %d", mr.TotalCycles(), mrBase.TotalCycles())
	}
}

func TestInstructionSetFlow(t *testing.T) {
	// The Table III walk-through: CreateInstance → ConfigureCONV →
	// ConfigureData → RunOperation.
	inst, err := CreateInstance(MAERILike(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	cs := ConvShape{R: 3, S: 3, C: 4, G: 1, K: 4, N: 1, X: 8, Y: 8, Stride: 1, Padding: 1}
	if err := inst.ConfigureCONV(cs); err != nil {
		t.Fatal(err)
	}
	rng := dnn.NewRNG(5)
	in := NewTensor(1, 4, 8, 8)
	w := NewTensor(4, 4, 3, 3)
	for _, d := range [][]float32{in.Data(), w.Data()} {
		for i := range d {
			d[i] = float32(rng.Normal())
		}
	}
	inst.ConfigureData(w, in)
	out, run, err := inst.RunOperation()
	if err != nil {
		t.Fatal(err)
	}
	want, err := tensor.Conv2D(in, w, cs)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(out, want); d > 1e-3 {
		t.Errorf("CONV output differs by %g", d)
	}
	if run.Cycles == 0 || len(run.Energy) == 0 {
		t.Error("run statistics incomplete")
	}
	if len(inst.Runs) != 1 {
		t.Errorf("instance logged %d runs, want 1", len(inst.Runs))
	}

	// DMM on the same instance.
	inst.ConfigureDMM()
	A := NewTensor(8, 12)
	B := NewTensor(12, 6)
	for _, d := range [][]float32{A.Data(), B.Data()} {
		for i := range d {
			d[i] = float32(rng.Normal())
		}
	}
	inst.ConfigureData(A, B)
	out2, _, err := inst.RunOperation()
	if err != nil {
		t.Fatal(err)
	}
	want2, _ := tensor.MatMul(A, B)
	if d := maxRelDiff(out2, want2); d > 1e-3 {
		t.Errorf("DMM output differs by %g", d)
	}

	// MaxPool.
	if err := inst.ConfigureMaxPool(2, 2, 0); err != nil {
		t.Fatal(err)
	}
	inst.ConfigureData(nil, in)
	pooled, _, err := inst.RunOperation()
	if err != nil {
		t.Fatal(err)
	}
	if got := pooled.Shape(); got[2] != 4 || got[3] != 4 {
		t.Errorf("pool output shape %v", got)
	}
}

func TestRunOperationErrors(t *testing.T) {
	inst, err := CreateInstance(MAERILike(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := inst.RunOperation(); err == nil {
		t.Error("RunOperation without data accepted")
	}
	inst.ConfigureData(nil, NewTensor(1))
	if _, _, err := inst.RunOperation(); err == nil {
		t.Error("RunOperation without configured op accepted")
	}
}

func TestConfigFileRoundTrip(t *testing.T) {
	hw := SIGMALike(128, 64)
	path := t.TempDir() + "/stonne_hw.cfg"
	if err := hw.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	inst, err := CreateInstanceFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if inst.HW().MSSize != 128 || inst.HW().DNBandwidth != 64 {
		t.Errorf("config round trip lost fields: %+v", inst.HW())
	}
}
