package stonne

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/dnn"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// ChipRun is the aggregated result of a multi-core chip simulation.
type ChipRun = stats.ChipRun

// ChipOptions configures a multi-core chip simulation (sim.Chip): how many
// cores, how work is placed on them, and the shared-DRAM shape.
type ChipOptions struct {
	// Cores is the core count; <= 1 simulates a single core (whose runs
	// are byte-identical to RunModel on the same hardware).
	Cores int
	// Placement is "layer" (default: pipeline contiguous layer stages
	// across cores) or "batch" (deal whole inference streams round-robin).
	Placement string
	// Banks is the shared DRAM bank count; <= 0 uses mem.DefaultBanks.
	Banks int
	// LinkGBs overrides the shared memory link bandwidth; <= 0 derives it
	// from the hardware configuration.
	LinkGBs float64
	// Progress, when non-nil, observes every completed stage with the chip
	// cycle it finished at — the per-core progress hook the CLI feeds a
	// simpool.Board from.
	Progress func(core, stream, stage int, endCycle uint64)
}

// chipStream is one inference request's state between pipeline stages:
// exactly the (activation, saved-map) pair dnn.Executor.RunRange resumes
// from.
type chipStream struct {
	act   *tensor.Tensor
	saved map[string]*tensor.Tensor
}

// chipWorkload adapts a model inference over many inputs to the chip
// scheduler's (stream × stage) grid. Each stage runs its layer range
// through a per-core Instance, so capability dispatch (SNAPEA cuts,
// sparse scheduling, explicit tiles) and the energy model apply per op
// exactly as in single-core RunModel.
type chipWorkload struct {
	m       *Model
	wts     *Weights
	opts    RunOptions
	cutSafe map[string]bool
	insts   []*Instance
	bounds  [][2]int
	streams []chipStream
	outs    []*Tensor
}

func (w *chipWorkload) Streams() int { return len(w.streams) }
func (w *chipWorkload) Stages() int  { return len(w.bounds) }

func (w *chipWorkload) RunStage(stream, stage, core int, _ sim.Runner) ([]*stats.Run, int, error) {
	inst := w.insts[core]
	off := &simOffloader{inst: inst, opts: w.opts, cutSafe: w.cutSafe}
	exec := &dnn.Executor{Model: w.m, Weights: w.wts, Offload: off}
	before := len(inst.Runs)
	st := &w.streams[stream]
	out, err := exec.RunRange(st.act, st.saved, w.bounds[stage][0], w.bounds[stage][1])
	if err != nil {
		return nil, 0, err
	}
	st.act = out
	if stage == len(w.bounds)-1 {
		w.outs[stream] = out
	}
	return inst.Runs[before:], out.Len(), nil
}

// RunModelChip executes one inference per input tensor on a simulated chip
// of copts.Cores identically configured cores sharing a banked DRAM — the
// multi-core analogue of RunModel. Under layer placement the model is cut
// into MAC-balanced contiguous stages (one per core) and the streams
// pipeline through them, activations handed off through DRAM; under batch
// placement each core runs whole streams. It returns the final activation
// of every stream (bit-identical to RunModel's output for the same input)
// and the aggregated chip statistics.
func RunModelChip(ctx context.Context, m *Model, wts *Weights, inputs []*Tensor, hw Hardware, copts ChipOptions, opts *RunOptions) ([]*Tensor, *ChipRun, error) {
	if len(inputs) == 0 {
		return nil, nil, fmt.Errorf("stonne: chip run needs at least one input stream")
	}
	if opts == nil {
		opts = &RunOptions{}
	}
	cores := copts.Cores
	if cores < 1 {
		cores = 1
	}
	placement, err := sim.ParsePlacement(copts.Placement)
	if err != nil {
		return nil, nil, err
	}

	coreHW := make([]config.Hardware, cores)
	for i := range coreHW {
		coreHW[i] = hw
	}
	insts := make([]*Instance, cores)
	chip, err := sim.NewChip(
		sim.ChipConfig{Cores: coreHW, Banks: copts.Banks, LinkGBs: copts.LinkGBs, Placement: placement},
		func(i int, chw config.Hardware) (sim.Runner, error) {
			inst, err := CreateInstance(chw)
			if err != nil {
				return nil, err
			}
			insts[i] = inst
			return inst.acc, nil
		},
	)
	if err != nil {
		return nil, nil, err
	}

	stages := 1
	if placement == sim.PlaceLayer {
		stages = cores
	}
	w := &chipWorkload{
		m:       m,
		wts:     wts,
		opts:    *opts,
		cutSafe: dnn.SNAPEACutSafe(m),
		insts:   insts,
		bounds:  dnn.PartitionLayers(m, stages),
		streams: make([]chipStream, len(inputs)),
		outs:    make([]*Tensor, len(inputs)),
	}
	for i, in := range inputs {
		w.streams[i] = chipStream{act: in, saved: map[string]*tensor.Tensor{}}
	}
	if copts.Progress != nil {
		chip.OnOp = func(core, stream, stage int, end uint64, _ []*stats.Run) {
			copts.Progress(core, stream, stage, end)
		}
	}
	cr, err := chip.Run(ctx, w)
	if err != nil {
		return nil, nil, err
	}
	return w.outs, cr, nil
}
