package stonne

import (
	"testing"
)

// TestSectionVFunctionalValidation is the paper's Section V validation at
// repo scale: full Table I models run with every compute-intensive layer
// simulated, and the final scores must match the native CPU execution on
// all three use-case-1 architectures. The image classifiers run at 1/16
// spatial scale; skipped under -short.
func TestSectionVFunctionalValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, tag := range []string{"M", "S", "A"} {
		full, err := ModelByShort(tag)
		if err != nil {
			t.Fatal(err)
		}
		model, err := ScaleSpatial(full, 32)
		if err != nil {
			t.Fatal(err)
		}
		w := InitWeights(model, 0x5ec7)
		if err := w.Prune(model.Sparsity); err != nil {
			t.Fatal(err)
		}
		input := RandomInput(model, 0x11)
		want, err := RunModelNative(model, w, input)
		if err != nil {
			t.Fatalf("%s native: %v", full.Name, err)
		}
		for _, hw := range []Hardware{TPULike(256), MAERILike(256, 128), SIGMALike(256, 128)} {
			got, mr, err := RunModel(model, w, input, hw, nil)
			if err != nil {
				t.Fatalf("%s on %s: %v", full.Name, hw.Name, err)
			}
			if d := maxRelDiff(got, want); d > 1e-3 {
				t.Errorf("%s on %s: scores differ from native by %g", full.Name, hw.Name, d)
			}
			if got := len(mr.Runs); got != len(model.OffloadedLayers()) {
				t.Errorf("%s on %s: %d runs for %d offloaded layers",
					full.Name, hw.Name, got, len(model.OffloadedLayers()))
			}
		}
	}
}

// TestSevenModelsRunOnSIGMA covers the remaining Table I models on the
// sparse architecture (the most failure-prone path: real zero
// distributions drive the cluster packing). Functional equivalence plus
// per-layer accounting invariants.
func TestSevenModelsRunOnSIGMA(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	hw := SIGMALike(256, 128)
	for _, tag := range []string{"R", "V", "S-M", "B"} {
		full, err := ModelByShort(tag)
		if err != nil {
			t.Fatal(err)
		}
		model, err := ScaleSpatial(full, 32)
		if err != nil {
			t.Fatal(err)
		}
		if tag == "B" {
			model = truncateBERT(t, model, 2)
		}
		w := InitWeights(model, 0x5ec8)
		if err := w.Prune(model.Sparsity); err != nil {
			t.Fatal(err)
		}
		input := RandomInput(model, 0x12)
		want, err := RunModelNative(model, w, input)
		if err != nil {
			t.Fatalf("%s native: %v", full.Name, err)
		}
		got, mr, err := RunModel(model, w, input, hw, nil)
		if err != nil {
			t.Fatalf("%s: %v", full.Name, err)
		}
		if d := maxRelDiff(got, want); d > 1e-3 {
			t.Errorf("%s: scores differ by %g", full.Name, d)
		}
		for _, r := range mr.Runs {
			if r.Cycles == 0 && r.MACs > 0 {
				t.Errorf("%s/%s: %d MACs in zero cycles", full.Name, r.Layer, r.MACs)
			}
			if r.Utilization < 0 || r.Utilization > 1 {
				t.Errorf("%s/%s: utilization %v out of range", full.Name, r.Layer, r.Utilization)
			}
		}
	}
}

// truncateBERT keeps the first `encoders` encoder blocks plus the
// classifier so the integration run stays fast while still exercising
// every transformer layer kind.
func truncateBERT(t *testing.T, m *Model, encoders int) *Model {
	t.Helper()
	const layersPerEncoder = 8
	out := *m
	keep := encoders * layersPerEncoder
	if keep > len(m.Layers)-2 {
		keep = len(m.Layers) - 2
	}
	out.Layers = append(append([]Layer{}, m.Layers[:keep]...), m.Layers[len(m.Layers)-2:]...)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	return &out
}
