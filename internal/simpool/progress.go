package simpool

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// JobProgress is the latest progress sample reported by one in-flight job.
type JobProgress struct {
	Cycles    uint64
	Outputs   int
	Occupancy float64
	// Skipped counts the cycles the kernel fast-forwarded over rather than
	// ticked (always ≤ Cycles); the board renders it as a skip rate.
	Skipped uint64
	Done    bool
}

// Board aggregates periodic progress samples from a batch of concurrent
// simulation jobs into one coherent view. Jobs report through Update (safe
// from any worker goroutine — the trace layer's OnProgress hook feeds it
// directly) and the driver reads a consistent snapshot whenever it wants to
// render live status. The board never blocks reporters beyond a mutex.
type Board struct {
	mu    sync.Mutex
	jobs  map[string]*JobProgress
	order []string // first-report order, for stable rendering
}

// NewBoard returns an empty progress board.
func NewBoard() *Board {
	return &Board{jobs: make(map[string]*JobProgress)}
}

// Update records the latest sample for the named job. skipped is the
// cumulative count of fast-forwarded cycles (zero when the kernel ticks
// every cycle).
func (b *Board) Update(label string, cycles uint64, outputs int, occupancy float64, skipped uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	jp, ok := b.jobs[label]
	if !ok {
		jp = &JobProgress{}
		b.jobs[label] = jp
		b.order = append(b.order, label)
	}
	jp.Cycles, jp.Outputs, jp.Occupancy, jp.Skipped = cycles, outputs, occupancy, skipped
}

// Finish marks the named job complete (creating it if it never reported).
func (b *Board) Finish(label string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	jp, ok := b.jobs[label]
	if !ok {
		jp = &JobProgress{}
		b.jobs[label] = jp
		b.order = append(b.order, label)
	}
	jp.Done = true
}

// Snapshot returns a copy of every job's latest state, keyed by label.
func (b *Board) Snapshot() map[string]JobProgress {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]JobProgress, len(b.jobs))
	for k, v := range b.jobs {
		out[k] = *v
	}
	return out
}

// Summary renders a one-line status: done/total counts plus the in-flight
// jobs' cycle counts, in first-report order (running jobs first).
func (b *Board) Summary() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	done := 0
	var running []string
	for _, label := range b.order {
		jp := b.jobs[label]
		if jp.Done {
			done++
			continue
		}
		if jp.Skipped > 0 && jp.Cycles > 0 {
			running = append(running, fmt.Sprintf("%s@%dcyc(ff %d%%)",
				label, jp.Cycles, 100*jp.Skipped/jp.Cycles))
		} else {
			running = append(running, fmt.Sprintf("%s@%dcyc", label, jp.Cycles))
		}
	}
	sort.Strings(running)
	s := fmt.Sprintf("%d/%d done", done, len(b.order))
	if len(running) > 0 {
		s += "; running: " + strings.Join(running, ", ")
	}
	return s
}
