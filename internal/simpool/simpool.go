// Package simpool is the parallel simulation runtime: it fans independent
// simulation jobs (one engine run per job — a model × architecture ×
// bandwidth sweep point) across a bounded set of worker goroutines.
//
// The design leans on a property the engine already guarantees: every run
// owns a private sim.Ctx/Counters/buffer set, so jobs share nothing and a
// whole sweep is embarrassingly parallel. The pool's job is therefore only
// scheduling and bookkeeping, with four contracts the experiment layer
// depends on:
//
//   - Deterministic ordering: results come back indexed by job position,
//     independent of completion order, so parallel sweeps emit rows in
//     exactly the serial order.
//   - Bounded in-flight work: at most `workers` jobs execute at once
//     (atomic-index dispatch, no job queue buildup), which bounds peak
//     memory to workers × one-run working set.
//   - Panic containment: a panicking job is captured as a *PanicError
//     carrying the job index and stack instead of killing the process.
//   - Cancellation: a cancelled context stops dispatching new jobs;
//     in-flight jobs run to completion (engine runs are not interruptible
//     mid-cycle) and their results are kept.
//
// workers <= 0 selects GOMAXPROCS; workers == 1 degenerates to an exact
// serial loop on the caller's goroutine — the equivalence anchor the
// serial-vs-parallel tests pin.
package simpool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic raised by one job, preserving which job blew up
// and where.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("simpool: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Workers resolves a requested worker count against a job count: <= 0 means
// GOMAXPROCS, and the result is clamped to [1, jobs] (never more workers
// than jobs, never fewer than one).
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if jobs >= 1 && w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn over every job on up to `workers` goroutines and returns the
// results in job order. On error it returns the error of the lowest-indexed
// failing job (deterministic across schedules) alongside the results
// gathered so far; result slots of jobs that never ran hold zero values.
// A context cancellation stops dispatch and surfaces ctx.Err() unless a job
// error takes precedence.
func Map[J, R any](ctx context.Context, workers int, jobs []J, fn func(ctx context.Context, index int, job J) (R, error)) ([]R, error) {
	n := len(jobs)
	results := make([]R, n)
	if n == 0 {
		return results, ctx.Err()
	}
	w := Workers(workers, n)

	if w == 1 {
		// Serial fast path: same goroutine, same order, same float
		// environment — byte-for-byte the behaviour of a plain loop.
		for i := range jobs {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			r, err := runJob(ctx, i, jobs[i], fn)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next    atomic.Int64 // dispatch cursor
		stopped atomic.Bool  // error observed: stop handing out jobs
		wg      sync.WaitGroup

		mu       sync.Mutex
		firstIdx = -1
		firstErr error
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstIdx == -1 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}

	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := runJob(ctx, i, jobs[i], fn)
				if err != nil {
					record(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return results, firstErr
	}
	return results, ctx.Err()
}

// ForEach is Map for side-effecting jobs with no result value.
func ForEach[J any](ctx context.Context, workers int, jobs []J, fn func(ctx context.Context, index int, job J) error) error {
	_, err := Map(ctx, workers, jobs, func(ctx context.Context, i int, j J) (struct{}, error) {
		return struct{}{}, fn(ctx, i, j)
	})
	return err
}

// Indexes runs fn for each index in [0, n) — the common sweep shape where
// the job is defined by its position alone.
func Indexes(ctx context.Context, workers, n int, fn func(ctx context.Context, index int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return ForEach(ctx, workers, idx, func(ctx context.Context, i int, _ int) error {
		return fn(ctx, i)
	})
}

// runJob invokes fn with panic containment.
func runJob[J, R any](ctx context.Context, i int, job J, fn func(context.Context, int, J) (R, error)) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i, job)
}
