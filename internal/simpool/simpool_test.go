package simpool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderingDeterministic(t *testing.T) {
	jobs := make([]int, 100)
	for i := range jobs {
		jobs[i] = i
	}
	for _, workers := range []int{1, 2, 7, 0} {
		got, err := Map(context.Background(), workers, jobs, func(_ context.Context, idx int, j int) (int, error) {
			if idx != j {
				t.Errorf("workers=%d: fn saw index %d for job %d", workers, idx, j)
			}
			return j * j, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	cases := []struct {
		requested, jobs, want int
	}{
		{1, 10, 1},
		{4, 10, 4},
		{4, 2, 2},                        // clamp to job count
		{0, 1000, runtime.GOMAXPROCS(0)}, // default
		{-3, 1000, runtime.GOMAXPROCS(0)},
		{8, 0, 8}, // no clamp against empty job sets
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.jobs); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.jobs, got, c.want)
		}
	}
}

func TestBoundedInFlight(t *testing.T) {
	const workers = 3
	var inFlight, maxSeen atomic.Int64
	jobs := make([]int, 64)
	_, err := Map(context.Background(), workers, jobs, func(_ context.Context, _ int, _ int) (int, error) {
		cur := inFlight.Add(1)
		for {
			m := maxSeen.Load()
			if cur <= m || maxSeen.CompareAndSwap(m, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := maxSeen.Load(); m > workers {
		t.Fatalf("observed %d concurrent jobs, pool bound is %d", m, workers)
	}
}

func TestPanicRecovered(t *testing.T) {
	jobs := []int{0, 1, 2, 3}
	_, err := Map(context.Background(), 2, jobs, func(_ context.Context, idx int, _ int) (int, error) {
		if idx == 2 {
			panic("boom")
		}
		return idx, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Index != 2 || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {Index: %d, Value: %v, stack %d bytes}", pe.Index, pe.Value, len(pe.Stack))
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	// Make a high-index job fail instantly and a low-index job fail after a
	// delay: the reported error must still be the low index's.
	jobs := make([]int, 8)
	_, err := Map(context.Background(), 8, jobs, func(_ context.Context, idx int, _ int) (int, error) {
		switch idx {
		case 1:
			time.Sleep(20 * time.Millisecond)
			return 0, fmt.Errorf("err-1")
		case 7:
			return 0, fmt.Errorf("err-7")
		default:
			time.Sleep(40 * time.Millisecond)
			return idx, nil
		}
	})
	if err == nil || err.Error() != "err-1" {
		t.Fatalf("want err-1 (lowest failing index), got %v", err)
	}
}

func TestErrorStopsDispatch(t *testing.T) {
	var started atomic.Int64
	jobs := make([]int, 1000)
	_, err := Map(context.Background(), 2, jobs, func(_ context.Context, idx int, _ int) (int, error) {
		started.Add(1)
		if idx == 0 {
			return 0, fmt.Errorf("first job fails")
		}
		time.Sleep(time.Millisecond)
		return idx, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := started.Load(); n > 10 {
		t.Fatalf("dispatch did not stop after error: %d jobs started", n)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	jobs := make([]int, 1000)
	_, err := Map(ctx, 2, jobs, func(_ context.Context, idx int, _ int) (int, error) {
		if started.Add(1) == 4 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return idx, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := started.Load(); n > 20 {
		t.Fatalf("dispatch did not stop after cancel: %d jobs started", n)
	}
}

func TestSerialPathStopsOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := Map(ctx, 1, []int{1}, func(_ context.Context, _ int, _ int) (int, error) {
		ran = true
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("cancelled ctx: err=%v ran=%v", err, ran)
	}
}

func TestEmptyJobs(t *testing.T) {
	got, err := Map(context.Background(), 4, []int(nil), func(_ context.Context, _ int, _ int) (int, error) {
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty jobs: got %v, err %v", got, err)
	}
}

func TestForEachAndIndexes(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), 4, []int{1, 2, 3, 4}, func(_ context.Context, _ int, j int) error {
		sum.Add(int64(j))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 10 {
		t.Fatalf("ForEach sum = %d", sum.Load())
	}
	var mu sync.Mutex
	seen := map[int]bool{}
	if err := Indexes(context.Background(), 4, 17, func(_ context.Context, i int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 17 {
		t.Fatalf("Indexes visited %d of 17", len(seen))
	}
}
