package simpool

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// Cancelling mid-sweep must stop dispatching new jobs, keep the results of
// jobs that completed before the cancel, and surface ctx.Err().
func TestCancellationKeepsCompletedResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]int, 100)
	results, err := Map(ctx, 2, jobs, func(_ context.Context, idx int, _ int) (int, error) {
		if idx == 2 {
			cancel() // in-flight when the cancel lands: still runs to completion
		}
		return idx + 100, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(results) != 100 {
		t.Fatalf("result slice resized to %d", len(results))
	}
	for idx := 0; idx < 3; idx++ {
		if results[idx] != idx+100 {
			t.Errorf("completed result[%d] = %d, want %d (dropped by cancel)", idx, results[idx], idx+100)
		}
	}
	var ran int
	for _, r := range results {
		if r != 0 {
			ran++
		}
	}
	if ran > 10 {
		t.Errorf("%d jobs ran after cancellation", ran)
	}
}

// The serial path must also keep earlier results when a later job observes
// the cancel.
func TestSerialCancellationKeepsCompletedResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	results, err := Map(ctx, 1, []int{0, 1, 2, 3}, func(_ context.Context, idx int, _ int) (int, error) {
		if idx == 1 {
			cancel()
		}
		return idx + 10, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if results[0] != 10 || results[1] != 11 {
		t.Errorf("completed results dropped: %v", results)
	}
	if results[2] != 0 || results[3] != 0 {
		t.Errorf("jobs ran past the cancel: %v", results)
	}
}

// ForEach and Indexes with nothing to do: no error, no calls; and a
// cancelled context still surfaces its error.
func TestForEachAndIndexesEmpty(t *testing.T) {
	called := false
	if err := ForEach(context.Background(), 4, []int{}, func(_ context.Context, _ int, _ int) error {
		called = true
		return nil
	}); err != nil || called {
		t.Fatalf("empty ForEach: err=%v called=%v", err, called)
	}
	if err := Indexes(context.Background(), 4, 0, func(_ context.Context, _ int) error {
		called = true
		return nil
	}); err != nil || called {
		t.Fatalf("Indexes(n=0): err=%v called=%v", err, called)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Indexes(ctx, 4, 0, func(_ context.Context, _ int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Indexes(n=0, cancelled) = %v", err)
	}
}

// More workers than jobs must clamp and still run every job exactly once.
func TestMoreWorkersThanJobs(t *testing.T) {
	var calls atomic.Int64
	results, err := Map(context.Background(), 64, []int{1, 2, 3}, func(_ context.Context, _ int, j int) (int, error) {
		calls.Add(1)
		return j * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("ran %d jobs, want 3", calls.Load())
	}
	if results[0] != 10 || results[1] != 20 || results[2] != 30 {
		t.Fatalf("results: %v", results)
	}
}

func TestBoardUpdatesAndSummary(t *testing.T) {
	b := NewBoard()
	b.Update("job 0", 1000, 5, 0.5, 0)
	b.Update("job 1", 2000, 9, 0.8, 0)
	b.Update("job 0", 1500, 7, 0.6, 750) // later sample replaces, not duplicates
	b.Finish("job 1")
	b.Finish("job 2") // finishing an unseen job registers it as done

	snap := b.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d jobs: %v", len(snap), snap)
	}
	if jp := snap["job 0"]; jp.Cycles != 1500 || jp.Outputs != 7 || jp.Occupancy != 0.6 || jp.Skipped != 750 || jp.Done {
		t.Errorf("job 0: %+v", jp)
	}
	if !snap["job 1"].Done || !snap["job 2"].Done {
		t.Errorf("done flags: %+v", snap)
	}

	s := b.Summary()
	if !strings.Contains(s, "2/3 done") || !strings.Contains(s, "job 0@1500cyc(ff 50%)") {
		t.Errorf("summary: %q", s)
	}
	// Mutating the snapshot must not reach the board.
	snap["job 0"] = JobProgress{Cycles: 1}
	if b.Snapshot()["job 0"].Cycles != 1500 {
		t.Error("snapshot aliases board state")
	}
}

// The board is driven concurrently by pool workers; exercise that shape so
// the race detector covers it.
func TestBoardConcurrent(t *testing.T) {
	b := NewBoard()
	err := Indexes(context.Background(), 4, 16, func(_ context.Context, i int) error {
		label := string(rune('a' + i))
		for c := uint64(1); c <= 50; c++ {
			b.Update(label, c, int(c), 0.5, c/2)
		}
		b.Finish(label)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := b.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("%d jobs on the board, want 16", len(snap))
	}
	for label, jp := range snap {
		if !jp.Done || jp.Cycles != 50 {
			t.Errorf("%s: %+v", label, jp)
		}
	}
}
