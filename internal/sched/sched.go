// Package sched implements the static filter-scheduling strategies of the
// paper's third use case (Section VI-C): given the non-zero sizes of the
// sparse filters (rows of the stationary matrix), a policy decides the
// order in which the sparse memory controller maps them onto the
// multiplier network, and the packer bins them into rounds of at most the
// fabric size.
package sched

import "sort"

// Policy names a filter-scheduling strategy.
type Policy int

const (
	// NS (No Scheduling) keeps the natural filter order.
	NS Policy = iota
	// RDM shuffles the filters pseudo-randomly.
	RDM
	// LFF (Largest Filter First) always maps the largest remaining filter
	// that fits, then fills the rest of the switches in descending size
	// order — the paper's load-balancing heuristic.
	LFF
)

func (p Policy) String() string {
	switch p {
	case NS:
		return "NS"
	case RDM:
		return "RDM"
	case LFF:
		return "LFF"
	default:
		return "Policy(?)"
	}
}

// Chunk is one contiguous slice of a filter's non-zeros mapped in one
// round; filters larger than the fabric split into several chunks whose
// partial sums accumulate.
type Chunk struct {
	Row        int // filter (output row) index
	Start, Len int // non-zero range within the row
	Final      bool
}

// Round is the set of chunks mapped simultaneously onto the fabric.
type Round []Chunk

// rng is a tiny deterministic generator so RDM schedules are reproducible.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Pack bins filters with the given non-zero counts into rounds of at most
// `capacity` multiplier switches, following the policy. Zero-size filters
// produce no chunks (their outputs are all zero and never mapped).
func Pack(nnz []int, capacity int, policy Policy, seed uint64) []Round {
	if capacity <= 0 {
		return nil
	}
	type item struct{ row, size int }
	items := make([]item, 0, len(nnz))
	for row, n := range nnz {
		if n > 0 {
			items = append(items, item{row, n})
		}
	}
	switch policy {
	case RDM:
		r := rng{s: seed ^ 0x5eed}
		for i := len(items) - 1; i > 0; i-- {
			j := int(r.next() % uint64(i+1))
			items[i], items[j] = items[j], items[i]
		}
	}

	var rounds []Round
	switch policy {
	case LFF:
		// Oversize filters first fold across full rounds; their tails
		// rejoin the pool as ordinary chunks.
		pool := make([]chunkItem, 0, len(items))
		for _, it := range items {
			if it.size <= capacity {
				pool = append(pool, chunkItem{row: it.row, size: it.size, final: true})
				continue
			}
			start := 0
			for it.size-start >= capacity {
				rounds = append(rounds, Round{{
					Row: it.row, Start: start, Len: capacity,
					Final: start+capacity == it.size,
				}})
				start += capacity
			}
			if start < it.size {
				pool = append(pool, chunkItem{row: it.row, start: start, size: it.size - start, final: true})
			}
		}
		sort.SliceStable(pool, func(a, b int) bool { return pool[a].size > pool[b].size })
		// Best-fit descending: repeatedly scan the remaining chunks in
		// descending size order, taking every one that still fits.
		for len(pool) > 0 {
			var round Round
			used := 0
			var leftover []chunkItem
			for _, it := range pool {
				if it.size <= capacity-used {
					round = append(round, Chunk{Row: it.row, Start: it.start, Len: it.size, Final: it.final})
					used += it.size
				} else {
					leftover = append(leftover, it)
				}
			}
			rounds = append(rounds, round)
			pool = leftover
		}
	default:
		// NS and RDM: sequential fill in (shuffled) order. Filters map
		// whole — a filter that does not fit the remaining switches closes
		// the round (Fig. 8: entire filters are the mapping granularity;
		// the resulting fragmentation is exactly what LFF recovers). Only
		// a filter larger than the whole fabric folds across rounds.
		var round Round
		used := 0
		flush := func() {
			if len(round) > 0 {
				rounds = append(rounds, round)
				round, used = nil, 0
			}
		}
		for _, it := range items {
			if it.size > capacity {
				// An oversize filter folds across rounds: its chunks
				// stream through whatever capacity each round has left, so
				// neighbouring filters share its head and tail rounds.
				start := 0
				for start < it.size {
					if used == capacity {
						flush()
					}
					take := capacity - used
					if take > it.size-start {
						take = it.size - start
					}
					round = append(round, Chunk{
						Row: it.row, Start: start, Len: take,
						Final: start+take == it.size,
					})
					used += take
					start += take
					if used == capacity {
						flush()
					}
				}
				continue
			}
			if it.size > capacity-used {
				flush()
			}
			round = append(round, Chunk{Row: it.row, Start: 0, Len: it.size, Final: true})
			used += it.size
		}
		flush()
	}
	return rounds
}

// chunkItem is a schedulable unit in the LFF pool: a whole filter or the
// tail chunk of an oversize one.
type chunkItem struct {
	row, start, size int
	final            bool
}

// Utilization returns the mean fraction of switches occupied across
// rounds — the MS-utilization metric of Figure 9. Degenerate inputs (no
// rounds, or a fabric without switches) report zero utilization.
func Utilization(rounds []Round, capacity int) float64 {
	if len(rounds) == 0 || capacity <= 0 {
		return 0
	}
	total := 0
	for _, r := range rounds {
		for _, c := range r {
			total += c.Len
		}
	}
	return float64(total) / float64(len(rounds)*capacity)
}

// FiltersPerRound returns the mean number of (whole) filters mapped
// simultaneously — the metric of Figure 7a.
func FiltersPerRound(rounds []Round) float64 {
	if len(rounds) == 0 {
		return 0
	}
	n := 0
	for _, r := range rounds {
		n += len(r)
	}
	return float64(n) / float64(len(rounds))
}
