package sched

import (
	"testing"
	"testing/quick"
)

// checkCoverage verifies every non-zero element of every filter is mapped
// exactly once and no round exceeds capacity.
func checkCoverage(t *testing.T, nnz []int, rounds []Round, capacity int) {
	t.Helper()
	covered := map[int][]bool{}
	for row, n := range nnz {
		covered[row] = make([]bool, n)
	}
	for ri, r := range rounds {
		used := 0
		for _, c := range r {
			used += c.Len
			for i := c.Start; i < c.Start+c.Len; i++ {
				if covered[c.Row][i] {
					t.Fatalf("round %d: element (%d,%d) mapped twice", ri, c.Row, i)
				}
				covered[c.Row][i] = true
			}
			if c.Final != (c.Start+c.Len == nnz[c.Row]) {
				t.Fatalf("round %d: chunk %+v Final flag wrong (nnz %d)", ri, c, nnz[c.Row])
			}
		}
		if used > capacity {
			t.Fatalf("round %d uses %d > capacity %d", ri, used, capacity)
		}
	}
	for row, cov := range covered {
		for i, ok := range cov {
			if !ok {
				t.Fatalf("element (%d,%d) never mapped", row, i)
			}
		}
	}
}

func TestPackPolicies(t *testing.T) {
	nnz := []int{4, 2, 4, 2}
	for _, pol := range []Policy{NS, RDM, LFF} {
		rounds := Pack(nnz, 8, pol, 1)
		checkCoverage(t, nnz, rounds, 8)
	}
}

func TestFig8Example(t *testing.T) {
	// The paper's worked example: filters 4,2,4,2 on 8 switches with a
	// 4-elements/cycle stream: NS needs 4 cycles, LFF 3.
	nnz := []int{4, 2, 4, 2}
	cycles := func(rounds []Round) int {
		total := 0
		for _, r := range rounds {
			used := 0
			for _, c := range r {
				used += c.Len
			}
			total += (used + 3) / 4
		}
		return total
	}
	ns := Pack(nnz, 8, NS, 0)
	lff := Pack(nnz, 8, LFF, 0)
	if got := cycles(ns); got != 4 {
		t.Errorf("NS cycles = %d, want 4", got)
	}
	if got := cycles(lff); got != 3 {
		t.Errorf("LFF cycles = %d, want 3", got)
	}
}

func TestOversizeFolding(t *testing.T) {
	nnz := []int{20, 3}
	for _, pol := range []Policy{NS, LFF} {
		rounds := Pack(nnz, 8, pol, 0)
		checkCoverage(t, nnz, rounds, 8)
	}
}

func TestZeroFiltersSkipped(t *testing.T) {
	rounds := Pack([]int{0, 5, 0, 3}, 8, NS, 0)
	checkCoverage(t, []int{0, 5, 0, 3}, rounds, 8)
	if len(rounds) != 1 {
		t.Errorf("rounds = %d", len(rounds))
	}
}

// TestLFFBetterOnAverageProperty pins what the paper actually claims for
// LFF: an average improvement, not a per-instance guarantee. Largest-first
// greedy packing is subject to the classic first-fit-decreasing anomaly —
// nnz [14 6 43 10 17 9 26] at capacity 64 packs in 2 rounds sequentially
// but 3 rounds largest-first — so the old "LFF never worse than NS"
// property was false, and because testing/quick's nil Rand is time-seeded
// it made the suite flaky: a counterexample surfaced roughly once per
// thousand runs. The instances are now a fixed deterministic corpus, each
// pinned to the sound per-instance bounds (a round count between the
// capacity lower bound and the 2·lb+1 greedy guarantee), with the paper's
// claim asserted in aggregate across the corpus.
func TestLFFBetterOnAverageProperty(t *testing.T) {
	const capacity = 64
	var nsTotal, lffTotal int
	for seed := int64(0); seed < 300; seed++ {
		s := uint64(seed)*2654435761 + 3
		next := func(m int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(m))
		}
		nnz := make([]int, 5+next(20))
		total := 0
		for i := range nnz {
			nnz[i] = 1 + next(capacity)
			total += nnz[i]
		}
		lb := (total + capacity - 1) / capacity
		ns := Pack(nnz, capacity, NS, 0)
		lff := Pack(nnz, capacity, LFF, 0)
		for _, got := range []struct {
			pol    string
			rounds int
		}{{"NS", len(ns)}, {"LFF", len(lff)}} {
			if got.rounds < lb || got.rounds > 2*lb+1 {
				t.Errorf("seed %d: %s rounds %d outside [lb, 2·lb+1] = [%d, %d] (nnz %v)",
					seed, got.pol, got.rounds, lb, 2*lb+1, nnz)
			}
		}
		nsTotal += len(ns)
		lffTotal += len(lff)
	}
	if lffTotal > nsTotal {
		t.Errorf("LFF used %d rounds across the corpus vs NS's %d — no aggregate gain", lffTotal, nsTotal)
	}
}

// Property: every policy yields a valid exact cover of the non-zeros.
func TestPackCoverageProperty(t *testing.T) {
	f := func(seed int64, polPick uint8) bool {
		s := uint64(seed)*0x9e3779b97f4a7c15 + 11
		next := func(m int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(m))
		}
		capacity := 8 + next(120)
		nnz := make([]int, 1+next(30))
		total := 0
		for i := range nnz {
			nnz[i] = next(3 * capacity) // includes zero and oversize
			total += nnz[i]
		}
		rounds := Pack(nnz, capacity, Policy(int(polPick)%3), uint64(seed))
		mapped := 0
		seen := map[[2]int]bool{}
		for _, r := range rounds {
			used := 0
			for _, c := range r {
				used += c.Len
				mapped += c.Len
				key := [2]int{c.Row, c.Start}
				if seen[key] {
					return false
				}
				seen[key] = true
			}
			if used > capacity {
				return false
			}
		}
		return mapped == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRDMIsDeterministicPerSeed(t *testing.T) {
	nnz := []int{5, 9, 2, 7, 1, 8}
	a := Pack(nnz, 16, RDM, 42)
	b := Pack(nnz, 16, RDM, 42)
	if len(a) != len(b) {
		t.Fatal("same seed produced different round counts")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("same seed produced different rounds")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different chunks")
			}
		}
	}
}

func TestUtilizationAndFiltersPerRound(t *testing.T) {
	rounds := Pack([]int{4, 4}, 8, NS, 0)
	if u := Utilization(rounds, 8); u != 1.0 {
		t.Errorf("utilization %v", u)
	}
	if f := FiltersPerRound(rounds); f != 2.0 {
		t.Errorf("filters/round %v", f)
	}
	if Utilization(nil, 8) != 0 || FiltersPerRound(nil) != 0 {
		t.Error("empty rounds not handled")
	}
}

// Degenerate inputs: a fabric without capacity yields no rounds and zero
// metrics rather than dividing by zero or looping forever.
func TestDegenerateCapacityAndInputs(t *testing.T) {
	for _, capacity := range []int{0, -8} {
		for _, pol := range []Policy{NS, RDM, LFF} {
			if rounds := Pack([]int{3, 1, 4}, capacity, pol, 7); rounds != nil {
				t.Errorf("Pack(capacity=%d, %v) = %v, want nil", capacity, pol, rounds)
			}
		}
		if u := Utilization([]Round{{{Row: 0, Len: 4, Final: true}}}, capacity); u != 0 {
			t.Errorf("Utilization(capacity=%d) = %v, want 0", capacity, u)
		}
	}
	for _, pol := range []Policy{NS, RDM, LFF} {
		if rounds := Pack(nil, 8, pol, 0); len(rounds) != 0 {
			t.Errorf("Pack(empty nnz) = %v", rounds)
		}
		if rounds := Pack([]int{0, 0, 0}, 8, pol, 0); len(rounds) != 0 {
			t.Errorf("Pack(all-zero nnz, %v) = %v", pol, rounds)
		}
	}
	if u := Utilization(nil, 8); u != 0 {
		t.Errorf("Utilization(no rounds) = %v", u)
	}
	if f := FiltersPerRound(nil); f != 0 {
		t.Errorf("FiltersPerRound(no rounds) = %v", f)
	}
}

func TestPolicyString(t *testing.T) {
	if NS.String() != "NS" || RDM.String() != "RDM" || LFF.String() != "LFF" {
		t.Error("policy strings wrong")
	}
}
