package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/config"
)

// tick records the order fabric components were ticked in.
type tick struct {
	id  int
	log *[]int
}

func (t tick) Cycle() { *t.log = append(*t.log, t.id) }

func testCtx() *Ctx {
	hw := config.MAERILike(16, 8)
	hw.Preloaded = true
	return NewCtx(&hw)
}

func TestKernelTickOrderAndCycleCount(t *testing.T) {
	ctx := testCtx()
	var log []int
	cycles := 0
	k := &Kernel{
		Ctx:      ctx,
		Control:  func() { cycles++ },
		Ticks:    []Tickable{tick{1, &log}, tick{2, &log}, tick{3, &log}},
		Done:     func() bool { return cycles == 4 },
		Progress: func() int { return cycles },
		Err:      func() error { return nil },
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ctx.Cycles != 4 {
		t.Errorf("Cycles = %d, want 4", ctx.Cycles)
	}
	// Pipeline order within every cycle: 1, 2, 3.
	if len(log) != 12 {
		t.Fatalf("tick log has %d entries, want 12", len(log))
	}
	for i, id := range log {
		if id != i%3+1 {
			t.Fatalf("tick %d was component %d — pipeline order broken", i, id)
		}
	}
}

func TestKernelErrAborts(t *testing.T) {
	ctx := testCtx()
	boom := errors.New("controller fault")
	k := &Kernel{
		Ctx:      ctx,
		Control:  func() {},
		Done:     func() bool { return false },
		Progress: func() int { return 0 },
		Err:      func() error { return boom },
	}
	if err := k.Run(); !errors.Is(err, boom) {
		t.Errorf("Run() = %v, want the controller fault", err)
	}
	if ctx.Cycles != 0 {
		t.Errorf("aborted before ticking, but Cycles = %d", ctx.Cycles)
	}
}

// failingTick raises its error through the Err hook the moment it is
// ticked — the mid-cycle fault path.
type failingTick struct {
	err  *error
	boom error
}

func (f failingTick) Cycle() { *f.err = f.boom }

// An error raised by a Tickable during the fabric ticks must abort that
// same cycle even when Done would flip true first — the late Err check.
// Before the fix, Run only consulted Err after Control, so a fault raised
// mid-cycle on the final cycle was swallowed and the run reported success.
func TestKernelErrRaisedByTickableAborts(t *testing.T) {
	ctx := testCtx()
	boom := errors.New("fabric fault")
	var tickErr error
	done := false
	k := &Kernel{
		Ctx:     ctx,
		Control: func() {},
		Ticks:   []Tickable{failingTick{&tickErr, boom}},
		// Done flips after the first cycle: without the post-tick Err
		// check the loop would exit cleanly and drop the error.
		Done:     func() bool { d := done; done = true; return d },
		Progress: func() int { return 0 },
		Err:      func() error { return tickErr },
	}
	if err := k.Run(); !errors.Is(err, boom) {
		t.Errorf("Run() = %v, want the fabric fault", err)
	}
	if ctx.Cycles != 1 {
		t.Errorf("Cycles = %d, want 1 (abort in the faulting cycle)", ctx.Cycles)
	}
}

func TestKernelWatchdog(t *testing.T) {
	ctx := testCtx()
	k := &Kernel{
		Ctx:      ctx,
		Control:  func() {},
		Done:     func() bool { return false },
		Progress: func() int { return 7 }, // constant: no progress ever
		Err:      func() error { return nil },
	}
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "no progress") {
		t.Fatalf("watchdog did not fire: %v", err)
	}

	// A custom Deadlock hook renders the diagnostic instead.
	ctx2 := testCtx()
	k.Ctx = ctx2
	k.Deadlock = func(window uint64) error {
		return fmt.Errorf("custom diagnostic after %d", window)
	}
	err = k.Run()
	if err == nil || err.Error() != fmt.Sprintf("custom diagnostic after %d", uint64(DeadlockWindow)) {
		t.Fatalf("custom deadlock hook not used: %v", err)
	}
}

func TestKernelWatchdogResetsOnProgress(t *testing.T) {
	ctx := testCtx()
	n := uint64(0)
	k := &Kernel{
		Ctx:     ctx,
		Control: func() { n++ },
		Done:    func() bool { return n > DeadlockWindow+DeadlockWindow/2 },
		// Progress changes every DeadlockWindow/2 cycles — always inside
		// the window, so the watchdog must never fire.
		Progress: func() int { return int(n / (DeadlockWindow / 2)) },
		Err:      func() error { return nil },
	}
	if err := k.Run(); err != nil {
		t.Fatalf("watchdog fired despite periodic progress: %v", err)
	}
}

// TestKernelWaitingResetsWatchdog pins the certified-wait contract: a run
// stalled on a fixed future event (Waiting advances every cycle, Progress
// frozen) outlives the deadlock window, while a frozen Waiting value — even a
// nonzero one present before the run — is not progress and still aborts.
func TestKernelWaitingResetsOnWatchdog(t *testing.T) {
	target := uint64(DeadlockWindow + DeadlockWindow/2)
	wait := uint64(0)
	ctx := testCtx()
	k := &Kernel{
		Ctx:      ctx,
		Control:  func() { wait++ },
		Done:     func() bool { return ctx.Cycles >= target },
		Progress: func() int { return 0 }, // no outputs ever complete
		Waiting:  func() uint64 { return wait },
		Err:      func() error { return nil },
	}
	if err := k.Run(); err != nil {
		t.Fatalf("watchdog fired during an advancing certified wait: %v", err)
	}
	if ctx.Cycles != target {
		t.Errorf("Cycles = %d, want %d", ctx.Cycles, target)
	}

	// Same shape with the wait value frozen at a nonzero initial reading:
	// the watchdog must fire exactly as if the hook were absent.
	ctx2 := testCtx()
	k = &Kernel{
		Ctx:      ctx2,
		Control:  func() {},
		Done:     func() bool { return false },
		Progress: func() int { return 0 },
		Waiting:  func() uint64 { return 42 },
		Err:      func() error { return nil },
	}
	if err := k.Run(); err == nil || !strings.Contains(err.Error(), "no progress") {
		t.Fatalf("frozen wait did not trip the watchdog: %v", err)
	}
	// The first cycle always registers once (the -1 progress sentinel), so
	// the ticked watchdog aborts at window + 2 — the frozen wait value must
	// not postpone that by a single cycle.
	if ctx2.Cycles != DeadlockWindow+2 {
		t.Errorf("frozen-wait abort at cycle %d, want %d", ctx2.Cycles, uint64(DeadlockWindow)+2)
	}
}

func TestRegisterValidation(t *testing.T) {
	expectPanic := func(name string, a Arch) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(a)
	}
	full := Arch{
		Name:    "sim-test-dup",
		Matches: func(config.Hardware) bool { return false },
		Preset:  func(ms, bw int) config.Hardware { return config.Hardware{} },
		Build:   func(config.Hardware) (Runner, error) { return nil, nil },
	}
	Register(full)
	expectPanic("duplicate name", full)
	incomplete := full
	incomplete.Name = "sim-test-nobuild"
	incomplete.Build = nil
	expectPanic("missing builder", incomplete)

	if _, ok := Lookup("sim-test-dup"); !ok {
		t.Error("registered architecture not found by Lookup")
	}
	if _, ok := Lookup("sim-test-missing"); ok {
		t.Error("Lookup invented an architecture")
	}
}

func TestUnknownArchErrorListsNames(t *testing.T) {
	err := UnknownArchError("bogus")
	msg := err.Error()
	if !strings.Contains(msg, `"bogus"`) || !strings.Contains(msg, "available:") {
		t.Errorf("unhelpful unknown-arch error: %q", msg)
	}
	// Names() is sorted, and the error embeds that order.
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, n := range names {
		if !strings.Contains(msg, n) {
			t.Errorf("error %q does not name %q", msg, n)
		}
	}
}
