package sim

import (
	"fmt"

	"repro/internal/comp"
	"repro/internal/comp/names"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DeadlockWindow is the number of cycles without any observable progress
// after which a run aborts with a diagnostic instead of spinning forever —
// a controller bug, not a valid hardware state.
const DeadlockWindow = 200_000

// MaxAccEntries bounds the accumulation-buffer working set; schedulers
// panelize output sweeps so folds never need more in-flight partial sums.
const MaxAccEntries = 4096

// Ctx bundles the per-run state shared by every engine composition: one
// private counter set, Global Buffer and DRAM model, plus the cycle count
// the kernel advances. Each run owns a fresh Ctx, so concurrent runs share
// nothing.
type Ctx struct {
	HW       *config.Hardware
	Counters *comp.Counters
	GB       *mem.GlobalBuffer
	// DRAM is the run's off-chip memory port: a private DRAM model on the
	// bare-kernel path, or a per-core port into the chip-shared memory
	// system when HW.SharedMem is set (sim.Chip). Either way the engine
	// compositions drive the same method set.
	DRAM   mem.Port
	Cycles uint64

	// Rec is the per-run cycle-attribution recorder, nil unless the
	// hardware configuration enables tracing. Runners attribute through it
	// (the kernel per tick, non-pipelined compositions in bulk spans); all
	// Recorder methods are nil-safe.
	Rec *trace.Recorder

	// Pre-resolved results-path handles: Finish reads totals through these
	// instead of string-keyed lookups.
	cMults, cGBReads, cGBWrites comp.Counter

	// cFFSkipped counts fast-forwarded cycles on traced runs. It is only
	// resolved (and only ever touched) when tracing is enabled, so untraced
	// runs — the dispatch-parity goldens, check.Sweep, every counter-file
	// comparison — see byte-identical counter sets with and without
	// fast-forward.
	cFFSkipped comp.Counter
}

// NewCtx builds the per-run context for one operation on hw. A shared
// memory source on the configuration replaces the run-private DRAM with a
// port into the chip-shared system, rebound to this run's counter set;
// otherwise the run owns its DRAM model outright, byte-identical to every
// run before chips existed.
func NewCtx(hw *config.Hardware) *Ctx {
	c := comp.NewCounters()
	var port mem.Port
	if hw.SharedMem != nil {
		port = hw.SharedMem.Port(c)
	} else {
		port = mem.NewDRAM(hw, c)
	}
	ctx := &Ctx{
		HW:        hw,
		Counters:  c,
		GB:        mem.NewGlobalBuffer(hw, c),
		DRAM:      port,
		cMults:    c.Counter(names.MNMults),
		cGBReads:  c.Counter(names.GBReads),
		cGBWrites: c.Counter(names.GBWrites),
	}
	if hw.Trace != nil {
		ctx.Rec = trace.NewRecorder(c, hw.Trace)
		ctx.cFFSkipped = c.Counter(names.TraceFFSkippedCycles)
	}
	return ctx
}

// AccountSkipped records n fast-forwarded cycles. The counter exists only
// on traced runs (see cFFSkipped); untraced runs keep their counter set
// identical to the ticked loop's, which is what the parity goldens pin.
func (c *Ctx) AccountSkipped(n uint64) {
	if c.Rec != nil {
		c.cFFSkipped.Add(n)
	}
}

// SkippedSoFar returns the cycles fast-forward has skipped so far (zero on
// untraced runs, which do not account skips).
func (c *Ctx) SkippedSoFar() uint64 {
	if c.Rec == nil {
		return 0
	}
	return c.cFFSkipped.Value()
}

// UtilizationSoFar is the multiplier busy fraction up to the current cycle,
// used by the periodic progress hook.
func (c *Ctx) UtilizationSoFar() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.cMults.Value()) / (float64(c.Cycles) * float64(c.HW.MSSize))
}

// Finish assembles the Run record.
func (c *Ctx) Finish(op, layer string, m, n, k int) *stats.Run {
	mults := c.cMults.Value()
	util := 0.0
	if c.Cycles > 0 {
		util = float64(mults) / (float64(c.Cycles) * float64(c.HW.MSSize))
	}
	run := &stats.Run{
		Accelerator: c.HW.Name,
		Op:          op,
		Layer:       layer,
		M:           m, N: n, K: k,
		Cycles:      c.Cycles,
		MACs:        mults,
		MemAccesses: c.cGBReads.Value() + c.cGBWrites.Value(),
		Utilization: util,
		Counters:    c.Counters.Snapshot(),
	}
	if c.Rec != nil {
		rt := c.Rec.Finalize(fmt.Sprintf("%s %s %s", c.HW.Name, op, layer))
		run.Breakdown = rt.Breakdown()
	}
	return run
}

// InitialFill charges the unavoidable DRAM latency of streaming the first
// working set into the Global Buffer before compute can start; later
// transfers double-buffer behind compute. The fill is attributed as memory
// busy time during which the fabric tiers wait on bandwidth.
func (c *Ctx) InitialFill(elems int) {
	if c.HW.Preloaded {
		return
	}
	half := c.GB.CapacityElems() / 2 // double-buffered halves
	if elems > half {
		elems = half
	}
	fill := uint64(c.DRAM.FetchCycles(elems))
	c.Cycles += fill
	c.Counters.Add(names.DRAMInitialFillCycles, fill)
	if c.Rec != nil {
		c.Rec.AddSpan(trace.TierMem, trace.Busy, fill)
		c.Rec.AddSpan(trace.TierDN, trace.StallBandwidth, fill)
		c.Rec.AddSpan(trace.TierMN, trace.StallBandwidth, fill)
		c.Rec.AddSpan(trace.TierRN, trace.StallBandwidth, fill)
		c.Rec.Sync()
	}
}
