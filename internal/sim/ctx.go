package sim

import (
	"repro/internal/comp"
	"repro/internal/comp/names"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
)

// DeadlockWindow is the number of cycles without any observable progress
// after which a run aborts with a diagnostic instead of spinning forever —
// a controller bug, not a valid hardware state.
const DeadlockWindow = 200_000

// MaxAccEntries bounds the accumulation-buffer working set; schedulers
// panelize output sweeps so folds never need more in-flight partial sums.
const MaxAccEntries = 4096

// Ctx bundles the per-run state shared by every engine composition: one
// private counter set, Global Buffer and DRAM model, plus the cycle count
// the kernel advances. Each run owns a fresh Ctx, so concurrent runs share
// nothing.
type Ctx struct {
	HW       *config.Hardware
	Counters *comp.Counters
	GB       *mem.GlobalBuffer
	DRAM     *mem.DRAM
	Cycles   uint64

	// Pre-resolved results-path handles: Finish reads totals through these
	// instead of string-keyed lookups.
	cMults, cGBReads, cGBWrites comp.Counter
}

// NewCtx builds the per-run context for one operation on hw.
func NewCtx(hw *config.Hardware) *Ctx {
	c := comp.NewCounters()
	return &Ctx{
		HW:        hw,
		Counters:  c,
		GB:        mem.NewGlobalBuffer(hw, c),
		DRAM:      mem.NewDRAM(hw, c),
		cMults:    c.Counter(names.MNMults),
		cGBReads:  c.Counter(names.GBReads),
		cGBWrites: c.Counter(names.GBWrites),
	}
}

// Finish assembles the Run record.
func (c *Ctx) Finish(op, layer string, m, n, k int) *stats.Run {
	mults := c.cMults.Value()
	util := 0.0
	if c.Cycles > 0 {
		util = float64(mults) / (float64(c.Cycles) * float64(c.HW.MSSize))
	}
	return &stats.Run{
		Accelerator: c.HW.Name,
		Op:          op,
		Layer:       layer,
		M:           m, N: n, K: k,
		Cycles:      c.Cycles,
		MACs:        mults,
		MemAccesses: c.cGBReads.Value() + c.cGBWrites.Value(),
		Utilization: util,
		Counters:    c.Counters.Snapshot(),
	}
}

// InitialFill charges the unavoidable DRAM latency of streaming the first
// working set into the Global Buffer before compute can start; later
// transfers double-buffer behind compute.
func (c *Ctx) InitialFill(elems int) {
	if c.HW.Preloaded {
		return
	}
	half := c.GB.CapacityElems() / 2 // double-buffered halves
	if elems > half {
		elems = half
	}
	fill := uint64(c.DRAM.FetchCycles(elems))
	c.Cycles += fill
	c.Counters.Add(names.DRAMInitialFillCycles, fill)
}
