package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/comp/names"
	"repro/internal/config"
	"repro/internal/trace"
)

// ffTick is a fabric component with a scriptable steady-state bound; the
// default (nil bound) reports Unbounded, i.e. a permanently idle component.
type ffTick struct {
	ticks    int
	advanced uint64
	bound    func() uint64
}

func (f *ffTick) Cycle() { f.ticks++ }
func (f *ffTick) Lookahead() uint64 {
	if f.bound == nil {
		return Unbounded
	}
	return f.bound()
}
func (f *ffTick) Advance(n uint64) { f.advanced += n }

// wakeKernel builds a kernel whose controller certifies idleness until the
// cycle counter reaches target — the distilled shape of a DRAM-stall wait.
func wakeKernel(ctx *Ctx, target uint64, tk *ffTick, ctrlAdvanced *uint64) *Kernel {
	return &Kernel{
		Ctx:      ctx,
		Control:  func() {},
		Ticks:    []Tickable{tk},
		Done:     func() bool { return ctx.Cycles >= target },
		Progress: func() int { return 0 },
		Err:      func() error { return nil },
		Lookahead: func() uint64 {
			if ctx.Cycles >= target {
				return 0
			}
			return target - ctx.Cycles
		},
		Advance: func(n uint64) { *ctrlAdvanced += n },
	}
}

// A fully idle wait must be jumped in one skip: no component ticks, the
// controller's Advance replays the whole window, and the cycle counter lands
// exactly on the wake-up cycle.
func TestKernelFastForwardSkipsIdleWait(t *testing.T) {
	ctx := testCtx()
	tk := &ffTick{}
	var advanced uint64
	if err := wakeKernel(ctx, 1000, tk, &advanced).Run(); err != nil {
		t.Fatal(err)
	}
	if ctx.Cycles != 1000 {
		t.Errorf("Cycles = %d, want 1000", ctx.Cycles)
	}
	if tk.ticks != 0 || tk.advanced != 1000 || advanced != 1000 {
		t.Errorf("ticks=%d component-advanced=%d ctrl-advanced=%d, want 0/1000/1000",
			tk.ticks, tk.advanced, advanced)
	}
}

// The skip length is min over all participants: a component whose next event
// is 7 cycles out must bound every jump even when the controller is idle
// forever.
func TestKernelFastForwardTakesMinBound(t *testing.T) {
	ctx := testCtx()
	tk := &ffTick{bound: func() uint64 { return 7 }}
	var advanced uint64
	k := wakeKernel(ctx, 21, tk, &advanced)
	k.Lookahead = func() uint64 { return Unbounded }
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ctx.Cycles != 21 || tk.ticks != 0 || tk.advanced != 21 {
		t.Errorf("Cycles=%d ticks=%d advanced=%d, want 21/0/21", ctx.Cycles, tk.ticks, tk.advanced)
	}
	if advanced != 21 {
		t.Errorf("controller advanced %d, want 21", advanced)
	}
}

// A skip is not progress: a run that never progresses must hit the deadlock
// watchdog at exactly the same cycle whether it ticks or fast-forwards —
// the skip is capped at the watchdog deadline, never jumped past it.
func TestKernelWatchdogIdenticalAcrossSkip(t *testing.T) {
	run := func(disable bool) (uint64, error) {
		hw := config.MAERILike(16, 8)
		hw.Preloaded = true
		hw.DisableFastForward = disable
		ctx := NewCtx(&hw)
		k := &Kernel{
			Ctx:       ctx,
			Control:   func() {},
			Ticks:     []Tickable{&ffTick{}},
			Done:      func() bool { return false },
			Progress:  func() int { return 7 }, // constant: no progress ever
			Err:       func() error { return nil },
			Lookahead: func() uint64 { return Unbounded },
			Advance:   func(uint64) {},
		}
		// Run first, then read the counter: a multi-value return would
		// evaluate ctx.Cycles before Run executes and always yield 0.
		err := k.Run()
		return ctx.Cycles, err
	}
	tickedCycles, tickedErr := run(true)
	ffCycles, ffErr := run(false)
	if tickedErr == nil || !strings.Contains(tickedErr.Error(), "no progress") {
		t.Fatalf("ticked watchdog did not fire: %v", tickedErr)
	}
	if ffErr == nil || !strings.Contains(ffErr.Error(), "no progress") {
		t.Fatalf("fast-forward watchdog did not fire: %v", ffErr)
	}
	if tickedCycles != ffCycles {
		t.Errorf("watchdog abort cycle diverged: ticked %d, fast-forward %d", tickedCycles, ffCycles)
	}
}

// A certified wait longer than the deadlock window — the shape of a core
// whose first prefetch queues behind another core's whole stage in the
// shared banks — must complete under both the ticked and fast-forwarded
// loops, landing on the same cycle. Waiting advances once per stalled cycle
// (via Control when ticking, via Advance when skipping), exactly how the
// dense controller's dram-wait counter behaves.
func TestKernelWaitingIdenticalAcrossSkip(t *testing.T) {
	target := 2*uint64(DeadlockWindow) + 12345
	run := func(disable bool) (uint64, error) {
		hw := config.MAERILike(16, 8)
		hw.Preloaded = true
		hw.DisableFastForward = disable
		ctx := NewCtx(&hw)
		wait := uint64(0)
		k := &Kernel{
			Ctx:      ctx,
			Control:  func() { wait++ },
			Ticks:    []Tickable{&ffTick{}},
			Done:     func() bool { return ctx.Cycles >= target },
			Progress: func() int { return 0 },
			Waiting:  func() uint64 { return wait },
			Err:      func() error { return nil },
			Lookahead: func() uint64 {
				if ctx.Cycles >= target {
					return 0
				}
				return target - ctx.Cycles
			},
			Advance: func(n uint64) { wait += n },
		}
		err := k.Run()
		return ctx.Cycles, err
	}
	tickedCycles, tickedErr := run(true)
	ffCycles, ffErr := run(false)
	if tickedErr != nil {
		t.Fatalf("ticked loop aborted a certified wait: %v", tickedErr)
	}
	if ffErr != nil {
		t.Fatalf("fast-forward aborted a certified wait: %v", ffErr)
	}
	if tickedCycles != target || ffCycles != target {
		t.Errorf("completion cycle diverged: ticked %d, fast-forward %d, want %d",
			tickedCycles, ffCycles, target)
	}
}

// An error surfacing during Advance aborts the run right after the jump,
// with the skipped cycles already accounted — the same "abort in the
// faulting cycle" contract the ticked loop gives Tickables.
func TestKernelErrRaisedDuringAdvance(t *testing.T) {
	ctx := testCtx()
	boom := errors.New("advance fault")
	var fatal error
	tk := &ffTick{}
	k := &Kernel{
		Ctx:       ctx,
		Control:   func() {},
		Ticks:     []Tickable{tk},
		Done:      func() bool { return false },
		Progress:  func() int { return 0 },
		Err:       func() error { return fatal },
		Lookahead: func() uint64 { return 50 },
		Advance:   func(uint64) { fatal = boom },
	}
	if err := k.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run() = %v, want the advance fault", err)
	}
	if ctx.Cycles != 50 {
		t.Errorf("Cycles = %d, want 50 (skip applied, then abort)", ctx.Cycles)
	}
	if tk.ticks != 0 {
		t.Errorf("component ticked %d times during an aborted skip", tk.ticks)
	}
}

// Skipped cycles of a draining run must land in the Drain tier of the
// breakdown (same classification the ticked loop would give them), and the
// skip total must surface through the trace.ff.skipped_cycles counter.
func TestKernelSkippedDrainAttribution(t *testing.T) {
	hw := config.MAERILike(16, 8)
	hw.Preloaded = true
	hw.Trace = &trace.Config{}
	ctx := NewCtx(&hw)
	tk := &ffTick{}
	var advanced uint64
	k := wakeKernel(ctx, 64, tk, &advanced)
	k.Draining = func() bool { return true }
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := ctx.SkippedSoFar(); got != 64 {
		t.Errorf("SkippedSoFar = %d, want 64", got)
	}
	rt := ctx.Rec.Finalize("ff drain")
	for tier, b := range rt.Breakdown() {
		if b.Drain != 64 {
			t.Errorf("%s: drain = %d, want all 64 skipped cycles (%+v)", tier, b.Drain, b)
		}
	}
	if got := ctx.Counters.Snapshot()[names.TraceFFSkippedCycles]; got != 64 {
		t.Errorf("%s = %d, want 64", names.TraceFFSkippedCycles, got)
	}
}

// Untraced runs must not grow a skip counter: the counter set stays
// byte-identical to the ticked loop's (what the dispatch-parity goldens and
// check.Sweep compare), and SkippedSoFar reports zero.
func TestKernelFastForwardUntracedCounterPurity(t *testing.T) {
	ctx := testCtx()
	tk := &ffTick{}
	var advanced uint64
	if err := wakeKernel(ctx, 100, tk, &advanced).Run(); err != nil {
		t.Fatal(err)
	}
	if ctx.Cycles != 100 || tk.ticks != 0 {
		t.Fatalf("Cycles=%d ticks=%d, want a pure 100-cycle skip", ctx.Cycles, tk.ticks)
	}
	if got := ctx.SkippedSoFar(); got != 0 {
		t.Errorf("SkippedSoFar = %d on an untraced run, want 0", got)
	}
	if _, ok := ctx.Counters.Snapshot()[names.TraceFFSkippedCycles]; ok {
		t.Errorf("untraced run grew a %s counter", names.TraceFFSkippedCycles)
	}
}

// One non-Lookahead Tickable disables fast-forward for the whole run: the
// loop must tick every cycle even though the controller certifies idleness.
func TestKernelFastForwardRequiresAllParticipants(t *testing.T) {
	ctx := testCtx()
	var log []int
	var advanced uint64
	k := &Kernel{
		Ctx:       ctx,
		Control:   func() {},
		Ticks:     []Tickable{&ffTick{}, tick{1, &log}}, // tick lacks Lookahead
		Done:      func() bool { return ctx.Cycles >= 5 },
		Progress:  func() int { return 0 },
		Err:       func() error { return nil },
		Lookahead: func() uint64 { return Unbounded },
		Advance:   func(n uint64) { advanced += n },
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ctx.Cycles != 5 || len(log) != 5 || advanced != 0 {
		t.Errorf("Cycles=%d ticks=%d advanced=%d, want a fully ticked 5-cycle run",
			ctx.Cycles, len(log), advanced)
	}
}

// DisableFastForward forces the ticked loop even when every participant
// implements the capability — the -fastforward=false escape hatch.
func TestKernelFastForwardDisabledByConfig(t *testing.T) {
	hw := config.MAERILike(16, 8)
	hw.Preloaded = true
	hw.DisableFastForward = true
	ctx := NewCtx(&hw)
	tk := &ffTick{}
	var advanced uint64
	if err := wakeKernel(ctx, 5, tk, &advanced).Run(); err != nil {
		t.Fatal(err)
	}
	if ctx.Cycles != 5 || tk.ticks != 5 || tk.advanced != 0 || advanced != 0 {
		t.Errorf("Cycles=%d ticks=%d component-advanced=%d ctrl-advanced=%d, want 5 ticked cycles",
			ctx.Cycles, tk.ticks, tk.advanced, advanced)
	}
}

// The periodic progress callback must fire at exactly the same cycles with
// and without fast-forward: skips are capped at the next emission point.
func TestKernelFastForwardProgressEmissionParity(t *testing.T) {
	run := func(disable bool) []uint64 {
		var fired []uint64
		hw := config.MAERILike(16, 8)
		hw.Preloaded = true
		hw.DisableFastForward = disable
		hw.Trace = &trace.Config{
			Label:         "parity",
			ProgressEvery: 8,
			OnProgress:    func(p trace.Progress) { fired = append(fired, p.Cycles) },
		}
		ctx := NewCtx(&hw)
		tk := &ffTick{}
		var advanced uint64
		if err := wakeKernel(ctx, 50, tk, &advanced).Run(); err != nil {
			t.Fatal(err)
		}
		return fired
	}
	ticked := run(true)
	ff := run(false)
	if len(ticked) != len(ff) {
		t.Fatalf("emission count diverged: ticked %v, fast-forward %v", ticked, ff)
	}
	for i := range ticked {
		if ticked[i] != ff[i] {
			t.Fatalf("emission cycles diverged: ticked %v, fast-forward %v", ticked, ff)
		}
	}
	if len(ticked) != 6 || ticked[0] != 8 {
		t.Errorf("unexpected emission schedule: %v", ticked)
	}
}
