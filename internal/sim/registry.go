package sim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/config"
)

// Builder constructs a ready-to-run accelerator composition from a
// validated hardware description.
type Builder func(config.Hardware) (Runner, error)

// NumericContract declares how closely an architecture's datapath follows
// the reference summation order — the tolerance the differential check
// harness (internal/check) grants its output tensors. An architecture that
// accumulates every output in reference (k-major) order is bit-exact
// against the CPU reference; tree/cluster reductions reorder the sum and
// are only correct up to a bounded relative error on the magnitude of the
// absolute-value product.
type NumericContract struct {
	// ExactSum marks compositions whose per-element accumulation order is
	// identical to the reference GEMM's: outputs must match bit for bit
	// (ULP distance 0).
	ExactSum bool
	// RelTol bounds |got-want| by RelTol·(Σ|aᵢ·bᵢ|) per element for
	// reordered accumulation. Zero means "use the harness default".
	RelTol float64
	// PostActivationConv marks architectures whose convolution outputs are
	// only defined up to the following ReLU (SNAPEA's early negative cut
	// stops as soon as the sign is decided): the harness clamps both sides
	// at zero before comparing.
	PostActivationConv bool
}

// Arch is one registered accelerator architecture: a stable name (the CLI
// -arch value), a human-readable description, a predicate matching the
// hardware configurations the architecture serves, a preset constructor,
// and the builder producing the runner. Adding an accelerator to the
// simulator is registering one of these — no dispatch code changes.
type Arch struct {
	// Name is the registry key, e.g. "maeri".
	Name string
	// Title is the display name, e.g. "MAERI-like (flexible dense)".
	Title string
	// Description is a one-line summary for -list-archs.
	Description string
	// Matches reports whether hw is a configuration of this architecture.
	// Registration order breaks ties: the first match wins.
	Matches func(config.Hardware) bool
	// Preset builds the canonical Table IV configuration at the given
	// fabric size and Global Buffer bandwidth (architectures with a fixed
	// bandwidth requirement may ignore bw).
	Preset func(ms, bw int) config.Hardware
	// Build constructs the runner for a validated configuration.
	Build Builder
	// Contract is the architecture's numeric contract against the CPU
	// reference executor (see NumericContract).
	Contract NumericContract
}

var registry = struct {
	sync.RWMutex
	archs  []*Arch // registration order — Resolve scans in order
	byName map[string]*Arch
}{byName: make(map[string]*Arch)}

// Register adds an architecture to the registry. It panics on a duplicate
// name or an incomplete entry — registration happens in package init, where
// a panic is a build-time bug, not a runtime condition.
func Register(a Arch) {
	if a.Name == "" || a.Matches == nil || a.Build == nil || a.Preset == nil {
		panic(fmt.Sprintf("sim: incomplete architecture registration %+v", a))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[a.Name]; dup {
		panic(fmt.Sprintf("sim: duplicate architecture %q", a.Name))
	}
	arch := a
	registry.archs = append(registry.archs, &arch)
	registry.byName[a.Name] = &arch
}

// Lookup returns the architecture registered under name.
func Lookup(name string) (*Arch, bool) {
	registry.RLock()
	defer registry.RUnlock()
	a, ok := registry.byName[name]
	return a, ok
}

// Names returns the registered architecture names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.archs))
	for _, a := range registry.archs {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// List returns the registered architectures in registration order.
func List() []*Arch {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]*Arch, len(registry.archs))
	copy(out, registry.archs)
	return out
}

// Resolve finds the architecture serving hw, scanning in registration
// order so more specific compositions register before broader ones.
func Resolve(hw config.Hardware) (*Arch, error) {
	registry.RLock()
	defer registry.RUnlock()
	for _, a := range registry.archs {
		if a.Matches(hw) {
			return a, nil
		}
	}
	return nil, fmt.Errorf("engine: unknown controller %v", hw.Ctrl)
}

// PresetHW builds the named architecture's canonical configuration at the
// given fabric size and bandwidth. Unknown names report the available set.
func PresetHW(name string, ms, bw int) (config.Hardware, error) {
	a, ok := Lookup(name)
	if !ok {
		return config.Hardware{}, UnknownArchError(name)
	}
	return a.Preset(ms, bw), nil
}

// UnknownArchError renders the friendly unknown-architecture error naming
// every registered architecture.
func UnknownArchError(name string) error {
	return fmt.Errorf("unknown architecture %q (available: %s)", name, archListString())
}

func archListString() string {
	names := Names()
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
