package sim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/comp/names"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Placement selects how the chip scheduler maps a workload's (stream,
// stage) grid onto cores.
type Placement int

const (
	// PlaceLayer assigns stage s to core s%N: the model's layers are split
	// into contiguous stages, one per core, and successive streams pipeline
	// through them with activations handed off through DRAM — the
	// layer-parallel policy.
	PlaceLayer Placement = iota
	// PlaceBatch assigns stream b to core b%N: every core runs the whole
	// model and streams are dealt round-robin — the batch-parallel policy.
	PlaceBatch
)

// String returns the CLI spelling of the placement.
func (p Placement) String() string {
	if p == PlaceBatch {
		return "batch"
	}
	return "layer"
}

// ParsePlacement parses the CLI spelling ("layer" or "batch").
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "layer", "":
		return PlaceLayer, nil
	case "batch":
		return PlaceBatch, nil
	}
	return 0, fmt.Errorf("sim: unknown placement %q (available: layer, batch)", s)
}

// ChipConfig describes a chip composition: one hardware configuration per
// core (cores may differ — each resolves its own registered Arch), the
// shared-DRAM bank count and link bandwidth, and the placement policy.
type ChipConfig struct {
	Cores []config.Hardware
	// Banks is the shared DRAM bank count; <= 0 uses mem.DefaultBanks.
	Banks int
	// LinkGBs overrides the shared link bandwidth; <= 0 derives it from
	// the first core's DRAM configuration.
	LinkGBs   float64
	Placement Placement
}

// Workload is what a chip schedules: a grid of streams (independent
// inference requests) by stages (contiguous slices of work a stream passes
// through in order). RunStage executes one cell on the given core's runner
// and returns the per-op runs plus the element count of the activation
// handed to the next stage (charged as a DRAM transfer when the next stage
// sits on a different core).
type Workload interface {
	Streams() int
	Stages() int
	RunStage(stream, stage, core int, r Runner) ([]*stats.Run, int, error)
}

// Chip composes N cores — each an independently configured registered Arch
// driven by its own Kernel/Ctx per op — around a shared banked DRAM. The
// scheduler is event-driven at stage granularity: cores simulate their ops
// with the usual cycle-level kernels (watchdog and fast-forward intact),
// while the chip advances a virtual clock from stage completion to stage
// completion, serializing execution in deterministic event order so shared
// memory contention resolves identically on every run.
//
// A 1-core chip builds no shared memory system at all: the single core
// keeps its run-private DRAM model, so its runs are byte-identical to the
// bare-kernel path — the pin the parity tests in internal/engine enforce.
type Chip struct {
	cfg     ChipConfig
	runners []Runner
	ports   []*mem.CorePort
	shared  *mem.SharedDRAM

	// OnOp, when non-nil, observes every completed stage: the core it ran
	// on, the (stream, stage) cell, the chip cycle it finished, and the
	// per-op runs — the hook the CLI feeds a per-core progress board from.
	OnOp func(core, stream, stage int, endCycle uint64, runs []*stats.Run)
}

// NewChip builds the composition. build constructs core i's runner from
// its (already shared-memory-wired) hardware configuration; nil resolves
// each core through the architecture registry.
func NewChip(cfg ChipConfig, build func(core int, hw config.Hardware) (Runner, error)) (*Chip, error) {
	if len(cfg.Cores) == 0 {
		return nil, fmt.Errorf("sim: chip needs at least one core")
	}
	if build == nil {
		build = func(_ int, hw config.Hardware) (Runner, error) {
			arch, err := Resolve(hw)
			if err != nil {
				return nil, err
			}
			return arch.Build(hw)
		}
	}
	c := &Chip{cfg: cfg}
	if len(cfg.Cores) > 1 {
		shared, err := mem.NewSharedDRAM(&cfg.Cores[0], cfg.Banks, cfg.LinkGBs)
		if err != nil {
			return nil, fmt.Errorf("sim: chip shared memory: %w", err)
		}
		c.shared = shared
		c.ports = make([]*mem.CorePort, len(cfg.Cores))
	}
	c.runners = make([]Runner, len(cfg.Cores))
	for i := range cfg.Cores {
		hw := cfg.Cores[i]
		if err := hw.Validate(); err != nil {
			return nil, fmt.Errorf("sim: chip core %d: %w", i, err)
		}
		if c.shared != nil {
			c.ports[i] = mem.NewCorePort(c.shared, i)
			hw.SharedMem = c.ports[i]
		}
		r, err := build(i, hw)
		if err != nil {
			return nil, fmt.Errorf("sim: chip core %d: %w", i, err)
		}
		c.runners[i] = r
	}
	return c, nil
}

// Cores returns the core count.
func (c *Chip) Cores() int { return len(c.runners) }

// coreOf maps a (stream, stage) cell to its core under the placement.
func (c *Chip) coreOf(stream, stage int) int {
	if c.cfg.Placement == PlaceBatch {
		return stream % len(c.runners)
	}
	return stage % len(c.runners)
}

// Run schedules the workload to completion. Each iteration picks the
// runnable (stream, stage) cell with the earliest possible start — the
// maximum of its core's free cycle and its predecessor stage's handoff —
// and simulates it there, so execution order is a deterministic function
// of the workload alone. Cancellation is checked between stages; inside a
// stage the per-op kernels keep their own watchdogs, and fast-forward
// composes because a core's skip bound never crosses its next interconnect
// event (see mem.CorePort.StallLookahead).
func (c *Chip) Run(ctx context.Context, w Workload) (*stats.ChipRun, error) {
	streams, stages := w.Streams(), w.Stages()
	if streams <= 0 || stages <= 0 {
		return nil, fmt.Errorf("sim: chip workload has %d streams × %d stages", streams, stages)
	}
	banks := 0
	if c.shared != nil {
		banks = c.shared.Banks()
	}
	res := stats.NewChipRun(c.cfg.Placement.String(), len(c.runners), banks, streams)

	coreFree := make([]float64, len(c.runners))
	nextStage := make([]int, streams)
	ready := make([]float64, streams) // earliest start of the stream's next stage
	var makespan float64
	for remaining := streams * stages; remaining > 0; remaining-- {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: chip run cancelled: %w", err)
		}
		// Earliest-start-first, ties to the lowest stream: deterministic.
		pick := -1
		var pickStart float64
		for b := 0; b < streams; b++ {
			if nextStage[b] >= stages {
				continue
			}
			start := ready[b]
			if cf := coreFree[c.coreOf(b, nextStage[b])]; cf > start {
				start = cf
			}
			if pick == -1 || start < pickStart {
				pick, pickStart = b, start
			}
		}
		b := pick
		s := nextStage[b]
		core := c.coreOf(b, s)
		if c.ports != nil {
			c.ports[core].StartOp(pickStart)
		}
		runs, elems, err := w.RunStage(b, s, core, c.runners[core])
		if err != nil {
			return nil, fmt.Errorf("sim: chip stream %d stage %d on core %d: %w", b, s, core, err)
		}
		var cycles uint64
		for _, r := range runs {
			if c.shared != nil {
				attachICN(r)
			}
			cycles += r.Cycles
			if err := res.Add(core, r); err != nil {
				return nil, fmt.Errorf("sim: chip stream %d stage %d: %w", b, s, err)
			}
		}
		end := pickStart + float64(cycles)
		coreFree[core] = end
		hand := end
		if s+1 < stages && c.shared != nil && c.coreOf(b, s+1) != core && elems > 0 {
			// The activation crosses cores through the shared DRAM: the
			// handoff transfer contends like any other traffic.
			hand = c.ports[core].Handoff(end, elems)
		}
		ready[b] = hand
		nextStage[b]++
		if end > makespan {
			makespan = end
		}
		if c.OnOp != nil {
			c.OnOp(core, b, s, uint64(math.Ceil(end)), runs)
		}
	}
	res.MakespanCycles = uint64(math.Ceil(makespan))
	for i, r := range res.PerCore {
		r.Accelerator = c.cfg.Cores[i].Name
		r.RecomputeUtilization(c.cfg.Cores[i].MSSize)
	}
	totalMS := 0
	for i := range c.cfg.Cores {
		totalMS += c.cfg.Cores[i].MSSize
	}
	res.Total.RecomputeUtilization(totalMS)
	return res, nil
}

// attachICN reconstructs the op's interconnect tier from its icn.*
// counters and attaches it to the breakdown, preserving the exact-sum
// invariant. Only multi-core runs reach here, so bare-kernel and 1-core
// chip breakdowns stay untouched.
func attachICN(r *stats.Run) {
	if r.Breakdown == nil {
		r.Breakdown = make(map[string]stats.CycleBreakdown, 1)
	}
	r.Breakdown[trace.TierICN] = trace.ICNBreakdown(
		r.Cycles,
		r.Counters[names.ICNBusyCycles],
		r.Counters[names.ICNWaitCycles],
	)
}
