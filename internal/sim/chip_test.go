package sim

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// stubRunner satisfies Runner for scheduler tests that never execute ops
// through it (the stub workload fabricates its runs).
type stubRunner struct{}

func (stubRunner) RunGEMM(a, b *tensor.Tensor, layer string) (*tensor.Tensor, *stats.Run, error) {
	return nil, nil, fmt.Errorf("stub runner has no datapath")
}
func (stubRunner) RunConv(in, w *tensor.Tensor, cs tensor.ConvShape, layer string) (*tensor.Tensor, *stats.Run, error) {
	return nil, nil, fmt.Errorf("stub runner has no datapath")
}

// gridWorkload is a streams×stages grid where every stage costs a fixed
// cycle count and hands off nothing — the pure-scheduler fixture.
type gridWorkload struct {
	streams, stages int
	cycles          uint64
}

func (w *gridWorkload) Streams() int { return w.streams }
func (w *gridWorkload) Stages() int  { return w.stages }
func (w *gridWorkload) RunStage(stream, stage, core int, _ Runner) ([]*stats.Run, int, error) {
	return []*stats.Run{{Cycles: w.cycles}}, 0, nil
}

func stubChip(t *testing.T, cores int, p Placement) *Chip {
	t.Helper()
	hw := make([]config.Hardware, cores)
	for i := range hw {
		hw[i] = config.MAERILike(64, 16)
	}
	chip, err := NewChip(ChipConfig{Cores: hw, Placement: p},
		func(int, config.Hardware) (Runner, error) { return stubRunner{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

// TestChipLayerPipelining pins the event-driven schedule: with two equal
// stages on two cores and three streams, the pipeline fills and the
// makespan is (streams+1)×stage — not streams×stages×stage.
func TestChipLayerPipelining(t *testing.T) {
	chip := stubChip(t, 2, PlaceLayer)
	cr, err := chip.Run(context.Background(), &gridWorkload{streams: 3, stages: 2, cycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if cr.MakespanCycles != 40 {
		t.Errorf("layer-pipelined makespan = %d, want 40", cr.MakespanCycles)
	}
	if cr.Total.Cycles != 60 {
		t.Errorf("total work = %d, want 60", cr.Total.Cycles)
	}
	if cr.PerCore[0].Cycles != 30 || cr.PerCore[1].Cycles != 30 {
		t.Errorf("per-core split = %d/%d, want 30/30", cr.PerCore[0].Cycles, cr.PerCore[1].Cycles)
	}
}

// TestChipBatchParallel pins the batch policy: four whole streams dealt
// over two cores run two deep on each.
func TestChipBatchParallel(t *testing.T) {
	chip := stubChip(t, 2, PlaceBatch)
	cr, err := chip.Run(context.Background(), &gridWorkload{streams: 4, stages: 1, cycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if cr.MakespanCycles != 20 {
		t.Errorf("batch-parallel makespan = %d, want 20", cr.MakespanCycles)
	}
	if cr.Total.Cycles != 40 {
		t.Errorf("total work = %d, want 40", cr.Total.Cycles)
	}
}

// TestChipSharedMemWiring pins the parity-critical construction rule: a
// 1-core chip leaves SharedMem nil (private DRAM, byte-identical to the
// bare-kernel path); multi-core chips wire every core a distinct port.
func TestChipSharedMemWiring(t *testing.T) {
	seen := map[int]config.MemPortSource{}
	build := func(i int, hw config.Hardware) (Runner, error) {
		seen[i] = hw.SharedMem
		return stubRunner{}, nil
	}
	if _, err := NewChip(ChipConfig{Cores: []config.Hardware{config.MAERILike(64, 16)}}, build); err != nil {
		t.Fatal(err)
	}
	if seen[0] != nil {
		t.Errorf("1-core chip wired a shared memory source — parity with the bare kernel is broken")
	}
	seen = map[int]config.MemPortSource{}
	cores := []config.Hardware{config.MAERILike(64, 16), config.MAERILike(64, 16)}
	if _, err := NewChip(ChipConfig{Cores: cores}, build); err != nil {
		t.Fatal(err)
	}
	if seen[0] == nil || seen[1] == nil {
		t.Fatalf("2-core chip left a core without a shared memory port: %v", seen)
	}
	if seen[0] == seen[1] {
		t.Errorf("cores share one port — per-core clocks would collide")
	}
}

// TestChipCancellation pins the Ctx lifecycle hook: a cancelled context
// stops the scheduler between stages.
func TestChipCancellation(t *testing.T) {
	chip := stubChip(t, 2, PlaceLayer)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := chip.Run(ctx, &gridWorkload{streams: 2, stages: 2, cycles: 10}); err == nil {
		t.Fatal("cancelled chip run returned nil error")
	}
}

func TestParsePlacement(t *testing.T) {
	for in, want := range map[string]Placement{"": PlaceLayer, "layer": PlaceLayer, "batch": PlaceBatch} {
		got, err := ParsePlacement(in)
		if err != nil || got != want {
			t.Errorf("ParsePlacement(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePlacement("diagonal"); err == nil {
		t.Error("ParsePlacement accepted an unknown policy")
	}
}
