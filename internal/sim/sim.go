// Package sim is the architecture-independent simulation substrate the
// engine compositions are built on. It owns the three pieces every
// accelerator shares and none should re-implement:
//
//   - the per-run context (Ctx): activity counters, Global Buffer, DRAM
//     model and the initial-fill accounting — one private instance per run,
//     which is what makes whole runs embarrassingly parallel;
//   - the cycle kernel (Kernel): the canonical simulation loop that ticks
//     registered Tickable components in pipeline order, tracks progress and
//     aborts via the deadlock watchdog instead of spinning forever;
//   - the work vocabulary (WorkItem, JobSpec, Source, Sink): the schedule
//     stream a memory controller consumes, formalizing the duck-typed
//     pattern the GEMM, convolution and SIGMA schedulers all follow.
//
// On top of that, the package keeps the architecture registry: each
// accelerator composition registers a named builder, and everything above
// the engine — the public API, both CLIs, the experiment figures — resolves
// architectures by name instead of switching on controller types.
package sim

import (
	"repro/internal/comp"
	"repro/internal/dn"
	"repro/internal/rn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Tickable is any hardware module that advances one clock cycle at a time.
// The kernel ticks every registered Tickable once per simulated cycle, in
// registration (pipeline) order.
type Tickable interface {
	Cycle()
}

// Lookahead re-exports the fast-forward capability (comp.Lookahead) under
// the simulation vocabulary: a Tickable that also implements Lookahead lets
// the kernel skip provably-steady stretches of cycles in one jump instead
// of ticking through them. See Kernel.Run for the exactness contract.
type Lookahead = comp.Lookahead

// Unbounded mirrors comp.Unbounded: a Lookahead bound meaning "steady for
// any horizon".
const Unbounded = comp.Unbounded

// Runner is one built accelerator composition: it executes whole operations
// on the simulated fabric and returns the result with per-run statistics.
// Architecture-specific entry points (explicit tiles, scheduling policies,
// early-termination control) live on the concrete runner types; the
// Accelerator facade reaches them by type assertion.
type Runner interface {
	RunGEMM(A, B *tensor.Tensor, layer string) (*tensor.Tensor, *stats.Run, error)
	RunConv(in, w *tensor.Tensor, cs tensor.ConvShape, layer string) (*tensor.Tensor, *stats.Run, error)
}

// JobSpec describes one reduction the controller expects to fire: virtual
// neuron VN will have Expect products tagged with step Seq, reducing into
// output element OutIdx; Last marks the final fold of that output.
type JobSpec struct {
	VN, Seq, Expect, OutIdx int
	Last                    bool
	// Members, when non-nil, is the snapshot of the VN's switch set at
	// schedule time — required when cluster shapes change between rounds
	// (sparse controller). Nil falls back to the configured VN table.
	Members []int
}

// WorkItem is one schedulable unit: a weight (re)load or one compute step.
type WorkItem struct {
	// Barrier requires the switches in ReloadSet to be quiescent (operand
	// FIFOs and psum latches empty) and the DN drained before issuing —
	// the stationary registers are about to be overwritten.
	Barrier   bool
	ReloadSet []int
	// Prefetch, when non-zero, starts a DRAM prefetch of that many
	// elements for the following block (double buffering).
	Prefetch   int
	Deliveries []dn.Delivery
	Jobs       []JobSpec
	// Reconfig, when non-nil, reprograms the VN membership once the
	// barrier has drained the fabric (sparse rounds change cluster shapes
	// between rounds). It requires full quiescence, not just the
	// ReloadSet.
	Reconfig func() error
}

// Source generates work items on demand so full-model runs never
// materialize their schedule up front. The dense GEMM, dense convolution
// and SIGMA sparse schedulers are all Sources driving the same controller.
type Source interface {
	Next() (WorkItem, bool)
}

// Sink receives reduced results leaving the reduction network. The
// controller composition implements it to scatter values into the output
// tensor and account the Global Buffer write-back.
type Sink interface {
	Consume(rn.Result)
}
