package sim

import "fmt"

// Kernel is the canonical cycle loop every pipelined composition runs: the
// controller acts, the fabric components tick once each in pipeline order,
// the cycle counter advances, and a watchdog aborts the run when no
// observable progress is made for DeadlockWindow cycles.
//
// The hooks keep the kernel architecture-agnostic:
//
//   - Control is the memory controller's per-clock behaviour, run before
//     the fabric ticks (it fires ready reductions and issues schedule
//     items into the distribution network).
//   - Ticks are the fabric components, ticked in registration order —
//     the tick ordering is the pipeline order (DN → MN → RN).
//   - Done reports run completion; the loop exits without a final tick.
//   - Progress returns a value that changes whenever the run moved forward
//     (completed outputs); the watchdog resets on change.
//   - Err surfaces a fatal controller error raised during Control.
//   - Deadlock renders the abort diagnostic; nil falls back to a generic
//     message.
type Kernel struct {
	Ctx      *Ctx
	Control  func()
	Ticks    []Tickable
	Done     func() bool
	Progress func() int
	Err      func() error
	Deadlock func(window uint64) error
}

// Run executes the cycle loop to completion (or watchdog abort).
func (k *Kernel) Run() error {
	lastProgress := k.Ctx.Cycles
	lastState := -1
	for !k.Done() {
		k.Control()
		if err := k.Err(); err != nil {
			return err
		}
		for _, t := range k.Ticks {
			t.Cycle()
		}
		k.Ctx.Cycles++

		if state := k.Progress(); state != lastState {
			lastState = state
			lastProgress = k.Ctx.Cycles
		}
		if k.Ctx.Cycles-lastProgress > DeadlockWindow {
			if k.Deadlock != nil {
				return k.Deadlock(DeadlockWindow)
			}
			return fmt.Errorf("sim: no progress for %d cycles", uint64(DeadlockWindow))
		}
	}
	return nil
}
