package sim

import "fmt"

// Kernel is the canonical cycle loop every pipelined composition runs: the
// controller acts, the fabric components tick once each in pipeline order,
// the cycle counter advances, and a watchdog aborts the run when no
// observable progress is made for DeadlockWindow cycles.
//
// The hooks keep the kernel architecture-agnostic:
//
//   - Control is the memory controller's per-clock behaviour, run before
//     the fabric ticks (it fires ready reductions and issues schedule
//     items into the distribution network).
//   - Ticks are the fabric components, ticked in registration order —
//     the tick ordering is the pipeline order (DN → MN → RN).
//   - Done reports run completion; the loop exits without a final tick.
//   - Progress returns a value that changes whenever the run moved forward
//     (completed outputs); the watchdog resets on change.
//   - Err surfaces a fatal error; it is checked after Control and again
//     after the fabric ticks, so an error raised mid-cycle by a Tickable
//     aborts the same cycle instead of leaking into the next (or being
//     swallowed entirely when Done flips first).
//   - Draining optionally reports that the schedule source is exhausted;
//     the cycle recorder uses it to classify end-of-run pipeline flushing
//     as drain rather than idle. Nil means never draining.
//   - Deadlock renders the abort diagnostic; nil falls back to a generic
//     message.
type Kernel struct {
	Ctx      *Ctx
	Control  func()
	Ticks    []Tickable
	Done     func() bool
	Progress func() int
	Err      func() error
	Draining func() bool
	Deadlock func(window uint64) error
}

// Run executes the cycle loop to completion (or watchdog abort). When the
// context carries a cycle recorder, every cycle is attributed per tier; a
// nil recorder costs one pointer check per run, not per cycle, because the
// check is hoisted out of the per-cycle work.
func (k *Kernel) Run() error {
	lastProgress := k.Ctx.Cycles
	lastState := -1
	rec := k.Ctx.Rec
	for !k.Done() {
		k.Control()
		if err := k.Err(); err != nil {
			return err
		}
		for _, t := range k.Ticks {
			t.Cycle()
		}
		k.Ctx.Cycles++
		if err := k.Err(); err != nil {
			return err
		}

		state := k.Progress()
		if state != lastState {
			lastState = state
			lastProgress = k.Ctx.Cycles
		}
		if rec != nil {
			rec.Tick(k.Draining != nil && k.Draining())
			if rec.ProgressDue(k.Ctx.Cycles) {
				rec.EmitProgress(k.Ctx.Cycles, state, k.Ctx.UtilizationSoFar())
			}
		}
		if k.Ctx.Cycles-lastProgress > DeadlockWindow {
			if k.Deadlock != nil {
				return k.Deadlock(DeadlockWindow)
			}
			return fmt.Errorf("sim: no progress for %d cycles", uint64(DeadlockWindow))
		}
	}
	return nil
}
