package sim

import "fmt"

// Kernel is the canonical cycle loop every pipelined composition runs: the
// controller acts, the fabric components tick once each in pipeline order,
// the cycle counter advances, and a watchdog aborts the run when no
// observable progress is made for DeadlockWindow cycles.
//
// The hooks keep the kernel architecture-agnostic:
//
//   - Control is the memory controller's per-clock behaviour, run before
//     the fabric ticks (it fires ready reductions and issues schedule
//     items into the distribution network).
//   - Ticks are the fabric components, ticked in registration order —
//     the tick ordering is the pipeline order (DN → MN → RN).
//   - Done reports run completion; the loop exits without a final tick.
//   - Progress returns a value that changes whenever the run moved forward
//     (completed outputs); the watchdog resets on change.
//   - Waiting optionally returns a value that changes while the run is
//     stalled on a certified external event — a granted DRAM transfer whose
//     completion time was fixed when the bank accepted it. Such a stall is
//     forward motion toward a bounded future event, not a deadlock, so the
//     watchdog also resets on change. On a multi-core chip a core's first
//     prefetch can legitimately queue behind another core's entire stage in
//     the shared banks, stalling far longer than DeadlockWindow; without
//     this signal the watchdog would abort that run. A true deadlock keeps
//     both Progress and Waiting frozen. Nil means the controller has no
//     such states.
//   - Err surfaces a fatal error; it is checked after Control and again
//     after the fabric ticks, so an error raised mid-cycle by a Tickable
//     aborts the same cycle instead of leaking into the next (or being
//     swallowed entirely when Done flips first).
//   - Draining optionally reports that the schedule source is exhausted;
//     the cycle recorder uses it to classify end-of-run pipeline flushing
//     as drain rather than idle. Nil means never draining.
//   - Deadlock renders the abort diagnostic; nil falls back to a generic
//     message.
//   - Lookahead / Advance are the controller's fast-forward capability,
//     mirroring the component-side Lookahead interface: Lookahead returns
//     how many upcoming Control calls are provably no-ops apart from the
//     closed-form bookkeeping Advance replays, and 0 when the controller
//     must actually run. Nil disables fast-forward for the run.
type Kernel struct {
	Ctx      *Ctx
	Control  func()
	Ticks    []Tickable
	Done     func() bool
	Progress func() int
	Waiting  func() uint64
	Err      func() error
	Draining func() bool
	Deadlock func(window uint64) error

	Lookahead func() uint64
	Advance   func(n uint64)
}

// Run executes the cycle loop to completion (or watchdog abort). When the
// context carries a cycle recorder, every cycle is attributed per tier; a
// nil recorder costs one pointer check per run, not per cycle, because the
// check is hoisted out of the per-cycle work.
//
// When the controller provides Lookahead/Advance and every Tickable also
// implements the Lookahead capability, the loop fast-forwards: whenever all
// participants report a nonzero steady-state bound, it jumps min(bounds)
// cycles at once, replaying counters and trace attribution in closed form.
// Fast-forward is bit-exact, not approximate — the jump is additionally
// capped so the deadlock watchdog and the periodic progress callback fire
// at exactly the cycles the ticked loop would have fired them, and the
// differential tests in internal/engine pin ticked and fast-forwarded runs
// identical in cycles, counters and breakdowns. Ctx.HW.DisableFastForward
// forces the ticked loop as a validation escape hatch.
func (k *Kernel) Run() error {
	lastProgress := k.Ctx.Cycles
	lastState := -1
	var lastWait uint64
	if k.Waiting != nil {
		lastWait = k.Waiting() // a pre-existing wait count is not progress
	}
	rec := k.Ctx.Rec
	// Fast-forward participation is decided once per run: the controller
	// must expose the capability, every fabric component must implement it,
	// and the configuration must not opt out. A nil las means "always tick".
	var las []Lookahead
	if k.Lookahead != nil && k.Advance != nil && !k.Ctx.HW.DisableFastForward {
		las = make([]Lookahead, 0, len(k.Ticks))
		for _, t := range k.Ticks {
			la, ok := t.(Lookahead)
			if !ok {
				las = nil
				break
			}
			las = append(las, la)
		}
	}
	for !k.Done() {
		if las != nil {
			if n := k.skipBound(las, lastProgress); n > 0 {
				before := k.Ctx.Cycles
				k.Advance(n)
				for _, la := range las {
					la.Advance(n)
				}
				k.Ctx.Cycles += n
				k.Ctx.AccountSkipped(n)
				if err := k.Err(); err != nil {
					return err
				}
				// A skip is never progress: the steady-state certificate
				// guarantees Progress() is unchanged across it, so the
				// watchdog keeps counting — exactly as in the ticked loop.
				// Only the first-ever iteration can still observe a change
				// here (the -1 sentinel); the ticked loop would have
				// recorded it at the window's first cycle, so pin exactly
				// that.
				state := k.Progress()
				if state != lastState {
					lastState = state
					lastProgress = before + 1
				}
				// A certified-wait skip IS watchdog progress: in the stalled
				// steady state every ticked cycle advances the wait counter,
				// so the ticked loop's last reset lands on the final skipped
				// cycle — pin exactly that.
				if k.Waiting != nil {
					if w := k.Waiting(); w != lastWait {
						lastWait = w
						lastProgress = k.Ctx.Cycles
					}
				}
				if rec != nil {
					rec.TickN(n, k.Draining != nil && k.Draining())
					if rec.ProgressDue(k.Ctx.Cycles) {
						rec.EmitProgress(k.Ctx.Cycles, state, k.Ctx.UtilizationSoFar(), k.Ctx.SkippedSoFar())
					}
				}
				if k.Ctx.Cycles-lastProgress > DeadlockWindow {
					if k.Deadlock != nil {
						return k.Deadlock(DeadlockWindow)
					}
					return fmt.Errorf("sim: no progress for %d cycles", uint64(DeadlockWindow))
				}
				continue
			}
		}
		k.Control()
		if err := k.Err(); err != nil {
			return err
		}
		for _, t := range k.Ticks {
			t.Cycle()
		}
		k.Ctx.Cycles++
		if err := k.Err(); err != nil {
			return err
		}

		state := k.Progress()
		if state != lastState {
			lastState = state
			lastProgress = k.Ctx.Cycles
		}
		if k.Waiting != nil {
			if w := k.Waiting(); w != lastWait {
				lastWait = w
				lastProgress = k.Ctx.Cycles
			}
		}
		if rec != nil {
			rec.Tick(k.Draining != nil && k.Draining())
			if rec.ProgressDue(k.Ctx.Cycles) {
				rec.EmitProgress(k.Ctx.Cycles, state, k.Ctx.UtilizationSoFar(), k.Ctx.SkippedSoFar())
			}
		}
		if k.Ctx.Cycles-lastProgress > DeadlockWindow {
			if k.Deadlock != nil {
				return k.Deadlock(DeadlockWindow)
			}
			return fmt.Errorf("sim: no progress for %d cycles", uint64(DeadlockWindow))
		}
	}
	return nil
}

// skipBound computes how many cycles may be fast-forwarded right now: the
// minimum of the controller's and every component's steady-state bound,
// additionally capped so two ticked-loop observation points land on exactly
// the cycles they would have landed on without the skip:
//
//   - the deadlock watchdog aborts after its check at cycle
//     lastProgress + DeadlockWindow + 1, so a skip never jumps past that
//     cycle (and the post-skip check fires there, identically);
//   - the periodic progress callback fires at every multiple of the
//     configured period, so a skip never jumps past the next multiple.
//
// The controller bound is probed first: in busy states it returns 0 after a
// few field comparisons, keeping the fast-forward probe cheap on runs that
// never skip.
func (k *Kernel) skipBound(las []Lookahead, lastProgress uint64) uint64 {
	n := k.Lookahead()
	if n == 0 {
		return 0
	}
	for _, la := range las {
		b := la.Lookahead()
		if b == 0 {
			return 0
		}
		if b < n {
			n = b
		}
	}
	if dead := lastProgress + DeadlockWindow + 1 - k.Ctx.Cycles; n > dead {
		n = dead
	}
	if every := k.Ctx.Rec.ProgressPeriod(); every > 0 {
		if due := every - k.Ctx.Cycles%every; n > due {
			n = due
		}
	}
	return n
}
