package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/jobkey"
)

const testKeyA = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
const testKeyB = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
const testKeyC = "cccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccc"

// TestDiskStoreRoundTrip is the restart contract: bytes saved by one
// store instance load byte-identically from a fresh instance over the
// same directory — the in-memory state is gone, the entry survives.
func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"result":"payload","n":42}`)
	d1.Save(testKeyA, body)
	if st := d1.Stats(); st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("after save: %+v", st)
	}

	// "Restart": a brand-new store over the same directory.
	d2, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := d2.Stats(); st.Entries != 1 {
		t.Fatalf("restart scan found %d entries, want 1", st.Entries)
	}
	got, ok := d2.Load(testKeyA)
	if !ok {
		t.Fatal("entry did not survive the restart")
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("loaded %q, want %q", got, body)
	}
	if _, ok := d2.Load(testKeyB); ok {
		t.Error("missing key loaded")
	}
}

// TestDiskStoreCorruption: truncated bodies, flipped bytes, bad magic and
// an unknown format version must all read as a miss and delete the file —
// the cache recomputes, it never serves suspect bytes.
func TestDiskStoreCorruption(t *testing.T) {
	body := []byte("some result body bytes, long enough to truncate meaningfully")
	mutate := map[string]func(raw []byte) []byte{
		"truncated":   func(raw []byte) []byte { return raw[:len(raw)-7] },
		"flipped bit": func(raw []byte) []byte { raw[len(raw)-3] ^= 0x40; return raw },
		"bad magic":   func(raw []byte) []byte { return append([]byte("x"), raw[1:]...) },
		"future version": func(raw []byte) []byte {
			return bytes.Replace(raw, []byte(diskMagic+" 1 "), []byte(diskMagic+" 99 "), 1)
		},
		"no header": func([]byte) []byte { return []byte("junk with no newline") },
	}
	for name, fn := range mutate {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := NewDiskStore(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			d.Save(testKeyA, body)
			path := filepath.Join(dir, testKeyA+diskEntrySuffix)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, fn(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := d.Load(testKeyA); ok {
				t.Fatal("corrupted entry served as a hit")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupted entry not deleted")
			}
			if st := d.Stats(); st.Corrupt != 1 {
				t.Errorf("corrupt counter %d, want 1", st.Corrupt)
			}
		})
	}
}

// TestDiskStoreEviction: the store bounds its entry count by evicting the
// oldest files.
func TestDiskStoreEviction(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDiskStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Save(testKeyA, []byte("a"))
	d.Save(testKeyB, []byte("b"))
	d.Save(testKeyC, []byte("c"))
	st := d.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 saves into a 2-entry store: %+v", st)
	}
	if _, ok := d.Load(testKeyC); !ok {
		t.Error("newest entry evicted")
	}
}

// TestDiskStoreRejectsBadKeys: only well-formed content addresses become
// file names.
func TestDiskStoreRejectsBadKeys(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "short", "../../../../etc/passwd", strings.Repeat("Z", 64)} {
		d.Save(jobkey.Key(k), []byte("x"))
		if _, ok := d.Load(jobkey.Key(k)); ok {
			t.Errorf("bad key %q round-tripped", k)
		}
	}
	if st := d.Stats(); st.Entries != 0 {
		t.Errorf("bad keys created %d entries", st.Entries)
	}
}

// TestCacheDiskFallback: a memory miss falls back to the disk tier and
// promotes the entry, so a fresh Cache over a warm directory hits.
func TestCacheDiskFallback(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCache(8)
	c1.SetDisk(d1)
	body := []byte("cached body")
	c1.Put(testKeyA, body)

	d2, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCache(8)
	c2.SetDisk(d2)
	got, ok := c2.Get(testKeyA)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("restarted cache: ok=%v body=%q", ok, got)
	}
	st := c2.Stats()
	if st.Disk == nil || st.Disk.Hits != 1 {
		t.Fatalf("disk stats after fallback: %+v", st.Disk)
	}
	if st.Entries != 1 {
		t.Error("disk hit was not promoted into the memory LRU")
	}
	// Second Get is a pure memory hit: disk hit counter stays put.
	if _, ok := c2.Get(testKeyA); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.Disk.Hits != 1 {
		t.Errorf("promotion did not stick: %d disk hits", st.Disk.Hits)
	}
}

// TestServerRestartServesWarm is the end-to-end persistence contract: a
// second server process (fresh Server over the same cache dir) serves the
// first server's job as a byte-identical warm hit without re-simulating.
func TestServerRestartServesWarm(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	resp1, raw1 := postJob(t, ts1, gemmBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %d %s", resp1.StatusCode, raw1)
	}
	var cold Envelope
	if err := json.Unmarshal(raw1, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first run claims cached")
	}

	s2, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	_, raw2 := postJob(t, ts2, gemmBody)
	var warm Envelope
	if err := json.Unmarshal(raw2, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("restarted server missed the persisted result")
	}
	if !bytes.Equal(cold.Result, warm.Result) {
		t.Error("persisted result is not byte-identical to the cold run")
	}
	st := s2.Snapshot()
	if st.ColdRuns != 0 || st.WarmHits != 1 {
		t.Errorf("restarted server counters: cold=%d warm=%d", st.ColdRuns, st.WarmHits)
	}
}
