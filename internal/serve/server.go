// Package serve is the simulation-as-a-service layer: a long-running HTTP
// server that accepts simulation jobs, fans them out over the simpool
// runtime, and memoizes results in a bounded content-addressed cache.
// Because every simulation here is bit-deterministic (pinned by the parity
// and differential suites), a cache hit replays the stored result bytes —
// byte-identical to re-running the kernel, at zero simulation cost.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/jobkey"
	"repro/internal/sim"
	"repro/internal/simpool"
	"repro/internal/stats"
)

// Config sizes the server.
type Config struct {
	// Workers bounds the jobs simulating concurrently; <= 0 uses
	// simpool's default (GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted jobs may wait for a worker beyond
	// the ones executing; further submissions get 429. <0 means 0.
	QueueDepth int
	// CacheEntries bounds the result cache; <= 0 uses DefaultCacheEntries.
	CacheEntries int
	// BatchWorkers bounds the simpool fan-out inside one batched job;
	// <= 0 runs each batch serially (1), keeping the worker bound global.
	BatchWorkers int
	// CacheDir, when non-empty, backs the result cache with a persistent
	// disk tier: results survive process restarts (the jobkey content
	// addresses are stable across processes) and memory eviction.
	CacheDir string
	// DiskEntries bounds the disk tier; <= 0 uses DefaultDiskEntries.
	DiskEntries int
}

// flight is one in-progress execution that identical concurrent requests
// coalesce onto: they wait for done and share the marshaled result.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// Server handles simulation jobs over HTTP. Create with New, mount via
// Handler.
type Server struct {
	cfg   Config
	cache *Cache
	admit chan struct{} // admission tokens: executing + queued
	exec  chan struct{} // execution tokens: actively simulating
	board *simpool.Board
	start time.Time

	mu       sync.Mutex
	inflight map[jobkey.Key]*flight // guarded by mu

	warmHits  uint64 // guarded by mu; served from cache
	coalesced uint64 // guarded by mu; joined an identical in-flight job
	coldRuns  uint64 // guarded by mu; executed the simulator
	rejected  uint64 // guarded by mu; 429: queue full
	failed    uint64 // guarded by mu; jobs that errored or were cancelled

	warmLat, coldLat *latencyRing

	// run executes a resolved job; tests substitute it to exercise
	// admission and coalescing without simulating.
	run func(ctx context.Context, j *job, progress progressFn) (*Result, error)
}

// New builds a server. It fails only when a configured cache directory
// cannot be opened.
func New(cfg Config) (*Server, error) {
	workers := simpool.Workers(cfg.Workers, 1<<30)
	queue := cfg.QueueDepth
	if queue < 0 {
		queue = 0
	}
	batchWorkers := cfg.BatchWorkers
	if batchWorkers <= 0 {
		batchWorkers = 1
	}
	s := &Server{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheEntries),
		admit:    make(chan struct{}, workers+queue),
		exec:     make(chan struct{}, workers),
		board:    simpool.NewBoard(),
		start:    time.Now(),
		inflight: make(map[jobkey.Key]*flight),
		warmLat:  newLatencyRing(4096),
		coldLat:  newLatencyRing(4096),
	}
	if cfg.CacheDir != "" {
		disk, err := NewDiskStore(cfg.CacheDir, cfg.DiskEntries)
		if err != nil {
			return nil, err
		}
		s.cache.SetDisk(disk)
	}
	s.run = func(ctx context.Context, j *job, progress progressFn) (*Result, error) {
		return execute(ctx, j, batchWorkers, progress)
	}
	return s, nil
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/archs", s.handleArchs)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/replay", s.handleReplay)
	return mux
}

// Envelope is the POST /jobs response: whether the result came from the
// cache, the job's content address, the server-side cost split, and the
// raw result bytes (replayed verbatim on a hit, so repeated jobs are
// byte-identical).
type Envelope struct {
	Cached bool       `json:"cached"`
	Key    jobkey.Key `json:"key"`
	// QueueMs is time this request spent waiting — for an execution slot,
	// or for the coalesced leader's flight — and SimMs the time actually
	// simulating. Warm hits report 0/0; coalesced followers report their
	// wait with SimMs 0 (they did not simulate). Timing never feeds the
	// cache key and is the only per-response field that varies between
	// byte-identical results.
	QueueMs float64         `json:"queue_ms"`
	SimMs   float64         `json:"sim_ms"`
	Result  json.RawMessage `json:"result"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST a job description"})
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	j, err := resolve(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	began := time.Now()

	// Warm path: replay the cached bytes, no admission needed.
	if body, ok := s.cache.Get(j.key); ok {
		s.mu.Lock()
		s.warmHits++
		s.mu.Unlock()
		s.warmLat.add(time.Since(began))
		writeJSON(w, http.StatusOK, Envelope{Cached: true, Key: j.key, Result: body})
		return
	}

	// Admission: bounded queue, shed load beyond it.
	select {
	case s.admit <- struct{}{}:
		defer func() { <-s.admit }()
	default:
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{"queue full"})
		return
	}

	// Coalescing: identical jobs racing past the cache share one run.
	s.mu.Lock()
	if f, ok := s.inflight[j.key]; ok {
		s.coalesced++
		s.mu.Unlock()
		select {
		case <-f.done:
		case <-r.Context().Done():
			return
		}
		if f.err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{f.err.Error()})
			return
		}
		wait := time.Since(began)
		s.warmLat.add(wait)
		writeJSON(w, http.StatusOK, Envelope{
			Cached: true, Key: j.key, QueueMs: durMs(wait), Result: f.body,
		})
		return
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[j.key] = f
	s.mu.Unlock()

	body, queueWait, simTime, err := s.execJob(r.Context(), j, w)
	f.body, f.err = body, err
	// Publish to the cache BEFORE dropping the in-flight entry: a request
	// arriving in between must find one or the other, never a gap where an
	// identical job runs cold a second time.
	if err == nil {
		s.cache.Put(j.key, body)
	}
	s.mu.Lock()
	delete(s.inflight, j.key)
	s.mu.Unlock()
	close(f.done)
	if err != nil {
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
		if j.req.Progress {
			// Progress lines may already be on the wire: the status is
			// committed, so the error goes out as a final NDJSON line.
			_ = json.NewEncoder(w).Encode(struct {
				Type  string `json:"type"`
				Error string `json:"error"`
			}{"error", err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
		return
	}
	s.mu.Lock()
	s.coldRuns++
	s.mu.Unlock()
	s.coldLat.add(time.Since(began))
	env := Envelope{
		Cached: false, Key: j.key,
		QueueMs: durMs(queueWait), SimMs: durMs(simTime), Result: body,
	}
	if j.req.Progress {
		_ = json.NewEncoder(w).Encode(struct {
			Type string `json:"type"`
			Envelope
		}{"result", env})
		return
	}
	writeJSON(w, http.StatusOK, env)
}

// execJob takes an execution slot, runs the job, and returns the
// canonical marshaled result bytes plus the cost split: time spent
// waiting for the slot vs time simulating. When the request asked for
// progress, samples stream to the response as NDJSON lines before the
// final envelope (written by the caller).
func (s *Server) execJob(ctx context.Context, j *job, w http.ResponseWriter) (body []byte, queueWait, simTime time.Duration, err error) {
	waitStart := time.Now()
	select {
	case s.exec <- struct{}{}:
		defer func() { <-s.exec }()
	case <-ctx.Done():
		return nil, time.Since(waitStart), 0, ctx.Err()
	}
	queueWait = time.Since(waitStart)
	var progress progressFn
	if j.req.Progress {
		progress = s.streamProgress(w)
	}
	simStart := time.Now()
	res, err := s.run(ctx, j, progress)
	simTime = time.Since(simStart)
	if err != nil {
		return nil, queueWait, simTime, err
	}
	body, err = json.Marshal(res)
	return body, queueWait, simTime, err
}

// durMs converts a duration to float milliseconds.
func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// progressLine is one NDJSON progress sample.
type progressLine struct {
	Type      string  `json:"type"`
	Label     string  `json:"label"`
	Cycles    uint64  `json:"cycles"`
	Outputs   int     `json:"outputs"`
	Occupancy float64 `json:"occupancy"`
	Skipped   uint64  `json:"skipped,omitempty"`
}

// streamProgress returns a progressFn that mirrors samples onto the shared
// board (for GET /progress) and streams them to this response, throttled
// to one line per label per 100ms so a fast simulation cannot flood the
// connection.
func (s *Server) streamProgress(w http.ResponseWriter) progressFn {
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	var mu sync.Mutex
	last := make(map[string]time.Time)
	enc := json.NewEncoder(w)
	return func(label string, cycles uint64, outputs int, occupancy float64, skipped uint64) {
		s.board.Update(label, cycles, outputs, occupancy, skipped)
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if now.Sub(last[label]) < 100*time.Millisecond {
			return
		}
		last[label] = now
		_ = enc.Encode(progressLine{
			Type: "progress", Label: label, Cycles: cycles,
			Outputs: outputs, Occupancy: occupancy, Skipped: skipped,
		})
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// Stats is the GET /stats payload. The latency summaries cover successful
// requests only (failed jobs never feed the rings) and use the shared
// nearest-rank percentile definition from internal/stats.
type Stats struct {
	UptimeSeconds float64              `json:"uptime_seconds"`
	Workers       int                  `json:"workers"`
	QueueDepth    int                  `json:"queue_depth"`
	Inflight      int                  `json:"inflight"`
	WarmHits      uint64               `json:"warm_hits"`
	Coalesced     uint64               `json:"coalesced"`
	ColdRuns      uint64               `json:"cold_runs"`
	Rejected      uint64               `json:"rejected"`
	Failed        uint64               `json:"failed"`
	Cache         CacheStats           `json:"cache"`
	WarmLatency   stats.LatencySummary `json:"warm_latency"`
	ColdLatency   stats.LatencySummary `json:"cold_latency"`
}

// Snapshot returns the current service counters.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       cap(s.exec),
		QueueDepth:    cap(s.admit) - cap(s.exec),
		Inflight:      len(s.inflight),
		WarmHits:      s.warmHits,
		Coalesced:     s.coalesced,
		ColdRuns:      s.coldRuns,
		Rejected:      s.rejected,
		Failed:        s.failed,
	}
	s.mu.Unlock()
	st.Cache = s.cache.Stats()
	st.WarmLatency = s.warmLat.stats()
	st.ColdLatency = s.coldLat.stats()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// archInfo is one /archs entry.
type archInfo struct {
	Name        string `json:"name"`
	Title       string `json:"title"`
	Description string `json:"description"`
}

func (s *Server) handleArchs(w http.ResponseWriter, r *http.Request) {
	var out []archInfo
	for _, a := range sim.List() {
		out = append(out, archInfo{Name: a.Name, Title: a.Title, Description: a.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.board.Snapshot())
}

// latencyRing keeps the most recent size samples for percentile reporting.
// Only successful requests are added; failures are a separate counter so
// they never skew the distribution.
func newLatencyRing(size int) *latencyRing {
	if size < 1 {
		// A zero-capacity ring would divide by zero in add; clamp to the
		// smallest ring that still reports a (degenerate) distribution.
		size = 1
	}
	return &latencyRing{samples: make([]time.Duration, 0, size)}
}

type latencyRing struct {
	mu      sync.Mutex
	samples []time.Duration // guarded by mu
	next    int             // guarded by mu
	count   uint64          // guarded by mu
}

func (l *latencyRing) add(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) < cap(l.samples) {
		l.samples = append(l.samples, d)
	} else {
		l.samples[l.next] = d
	}
	l.next = (l.next + 1) % cap(l.samples)
	l.count++
}

// stats summarizes the retained window with the shared nearest-rank
// helper. Count is every sample ever observed, percentiles cover the
// window (the ring overwrites oldest-first).
func (l *latencyRing) stats() stats.LatencySummary {
	l.mu.Lock()
	window := make([]time.Duration, len(l.samples))
	copy(window, l.samples)
	count := l.count
	l.mu.Unlock()
	sum := stats.SummarizeLatencies(window)
	sum.Count = count
	return sum
}
