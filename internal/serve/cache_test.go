package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/jobkey"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes the eviction victim
		t.Fatal("a missing before eviction")
	}
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was evicted despite being recently used")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing right after insertion")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Errorf("stats after eviction: %+v", st)
	}
}

func TestCacheDuplicatePutKeepsOriginal(t *testing.T) {
	c := NewCache(4)
	c.Put("k", []byte("first"))
	c.Put("k", []byte("second"))
	body, ok := c.Get("k")
	if !ok || string(body) != "first" {
		t.Errorf("duplicate Put replaced the original body: %q", body)
	}
	if st := c.Stats(); st.Bytes != int64(len("first")) {
		t.Errorf("byte accounting drifted: %d", st.Bytes)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := jobkey.Key(fmt.Sprintf("key-%d", (g+i)%24))
				if body, ok := c.Get(k); ok {
					if string(body) != string(k) {
						t.Errorf("corrupted body for %s: %q", k, body)
					}
				} else {
					c.Put(k, []byte(k))
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 32 {
		t.Errorf("cache exceeded its bound: %d entries", n)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("counters did not move: %+v", st)
	}
}
