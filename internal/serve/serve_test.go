package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	_ "repro/internal/engine" // register the architectures
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

const gemmBody = `{"op":"gemm","arch":"maeri","ms":16,"bw":16,"m":8,"n":8,"k":16,"seed":1}`

// TestRepeatJobIsByteIdenticalCacheHit is the acceptance criterion: the
// second submission of an identical job comes back cached, byte-identical,
// and without re-running the kernel (the cold counter stays put).
func TestRepeatJobIsByteIdenticalCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2})

	resp1, raw1 := postJob(t, ts, gemmBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold run: status %d: %s", resp1.StatusCode, raw1)
	}
	var env1, env2 Envelope
	if err := json.Unmarshal(raw1, &env1); err != nil {
		t.Fatal(err)
	}
	if env1.Cached {
		t.Error("first submission claims to be cached")
	}

	// A different spelling of the same job (explicit batch=1, spaced op)
	// must land on the same key and hit.
	resp2, raw2 := postJob(t, ts,
		`{"op":" GEMM ","arch":"maeri","ms":16,"bw":16,"m":8,"n":8,"k":16,"seed":1,"batch":1}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm run: status %d: %s", resp2.StatusCode, raw2)
	}
	if err := json.Unmarshal(raw2, &env2); err != nil {
		t.Fatal(err)
	}
	if !env2.Cached {
		t.Error("identical job was not served from the cache")
	}
	if env2.Key != env1.Key {
		t.Errorf("keys differ across spellings: %s vs %s", env1.Key, env2.Key)
	}
	if !bytes.Equal(env1.Result, env2.Result) {
		t.Error("cached result is not byte-identical to the cold run")
	}

	st := s.Snapshot()
	if st.ColdRuns != 1 || st.WarmHits != 1 {
		t.Errorf("counters: cold=%d warm=%d, want 1/1", st.ColdRuns, st.WarmHits)
	}

	// A semantically different job (changed K) must miss.
	_, raw3 := postJob(t, ts, `{"op":"gemm","arch":"maeri","ms":16,"bw":16,"m":8,"n":8,"k":17,"seed":1}`)
	var env3 Envelope
	if err := json.Unmarshal(raw3, &env3); err != nil {
		t.Fatal(err)
	}
	if env3.Cached || env3.Key == env1.Key {
		t.Error("different shape reused the cached result")
	}
}

// TestProgressRunMatchesUntracedBytes pins the trace-scrubbing contract:
// a progress-streamed execution caches the same bytes as an untraced one,
// so either can serve the other's hits.
func TestProgressRunMatchesUntracedBytes(t *testing.T) {
	_, ts1 := newTestServer(t, Config{Workers: 1})
	_, ts2 := newTestServer(t, Config{Workers: 1})

	// Big enough K that at least one 4096-cycle progress sample fires.
	job := `{"op":"gemm","arch":"maeri","ms":16,"bw":16,"m":16,"n":16,"k":256,"seed":3`
	_, rawPlain := postJob(t, ts1, job+`}`)
	var plain Envelope
	if err := json.Unmarshal(rawPlain, &plain); err != nil {
		t.Fatal(err)
	}

	resp, rawStream := postJob(t, ts2, job+`,"progress":true}`)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("progress response Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(rawStream)), "\n")
	var final struct {
		Type string `json:"type"`
		Envelope
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatalf("final line: %v\n%s", err, lines[len(lines)-1])
	}
	if final.Type != "result" {
		t.Fatalf("final line type %q", final.Type)
	}
	if final.Key != plain.Key {
		t.Errorf("progress run changed the key: %s vs %s", final.Key, plain.Key)
	}
	if !bytes.Equal(final.Result, plain.Result) {
		t.Errorf("progress run result differs from untraced run:\n%s\nvs\n%s", final.Result, plain.Result)
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionControl floods a server whose single worker is blocked and
// checks overflow gets 429 with the rejected counter moving.
func TestAdmissionControl(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.run = func(ctx context.Context, j *job, progress progressFn) (*Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &Result{Key: j.key, Op: j.req.Op, Arch: j.arch}, nil
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Distinct jobs so none coalesce: capacity is 1 executing + 1 queued.
	job := func(k int) string {
		return fmt.Sprintf(`{"op":"gemm","arch":"maeri","ms":16,"bw":16,"m":8,"n":8,"k":%d,"seed":1}`, k)
	}
	var wg sync.WaitGroup
	codes := make(chan int, 8)
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJob(t, ts, job(i))
			codes <- resp.StatusCode
		}(i)
	}
	// Wait until both admission tokens are actually held before overflowing.
	waitFor(t, "both admission slots to fill", func() bool { return len(s.admit) == 2 })

	resp, body := postJob(t, ts, job(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overflow got %d (%s), want 429", resp.StatusCode, body)
	}
	if s.Snapshot().Rejected == 0 {
		t.Error("rejected counter did not move")
	}
	close(release)
	wg.Wait()
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("admitted job got %d", code)
		}
	}
}

// TestCoalescing submits the same job concurrently while the first is
// stalled: the followers must share the leader's single execution.
func TestCoalescing(t *testing.T) {
	s, err := New(Config{Workers: 4, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var runCount int
	var mu sync.Mutex
	s.run = func(ctx context.Context, j *job, progress progressFn) (*Result, error) {
		mu.Lock()
		runCount++
		mu.Unlock()
		<-release
		return &Result{Key: j.key, Op: j.req.Op, Arch: j.arch}, nil
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	results := make(chan Envelope, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, raw := postJob(t, ts, gemmBody)
			var env Envelope
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Error(err)
				return
			}
			results <- env
		}()
	}
	// Let every request reach the coalescing point, then release.
	waitFor(t, "3 coalesced followers", func() bool { return s.Snapshot().Coalesced == 3 })
	close(release)
	wg.Wait()

	mu.Lock()
	if runCount != 1 {
		t.Errorf("identical concurrent jobs executed %d times, want 1", runCount)
	}
	mu.Unlock()
	cached := 0
	for i := 0; i < 4; i++ {
		if env := <-results; env.Cached {
			cached++
		}
	}
	if cached != 3 {
		t.Errorf("%d of 4 responses were marked cached, want 3 coalesced followers", cached)
	}
}

// TestBadRequests pins the 400 surface: junk op, missing dims, unknown
// fields, unknown arch and over-limit batch all fail fast with an error
// body instead of reaching the simulator.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"unknown op":    `{"op":"matmul","m":8,"n":8,"k":8}`,
		"no dims":       `{"op":"gemm","arch":"maeri"}`,
		"unknown field": `{"op":"gemm","m":8,"n":8,"k":8,"bogus":1}`,
		"unknown arch":  `{"op":"gemm","arch":"nope","m":8,"n":8,"k":8}`,
		"batch limit":   `{"op":"gemm","arch":"maeri","m":8,"n":8,"k":8,"batch":999999}`,
		"bad sparsity":  `{"op":"spmm","arch":"sigma","m":8,"n":8,"k":8,"sparsity":1.5}`,
		"bad policy":    `{"op":"spmm","arch":"sigma","m":8,"n":8,"k":8,"policy":"FIFO"}`,
		"conv no shape": `{"op":"conv","arch":"maeri"}`,
		"bad model":     `{"op":"model","arch":"maeri","model":"ZZZ"}`,
	} {
		resp, raw := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, raw)
			continue
		}
		var eb struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: no error body: %s", name, raw)
		}
	}
}

// TestBatchJob runs a small batch and checks one run per seed comes back.
func TestBatchJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, BatchWorkers: 2})
	_, raw := postJob(t, ts,
		`{"op":"gemm","arch":"maeri","ms":16,"bw":16,"m":8,"n":8,"k":16,"seed":5,"batch":3}`)
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 || len(res.Seeds) != 3 || len(res.OutputSums) != 3 {
		t.Fatalf("batch result has %d runs / %d seeds / %d sums, want 3 each",
			len(res.Runs), len(res.Seeds), len(res.OutputSums))
	}
	if res.Seeds[0] != 5 || res.Seeds[2] != 7 {
		t.Errorf("seeds %v, want 5..7", res.Seeds)
	}
	if res.TotalCycles == 0 {
		t.Error("batch reports zero total cycles")
	}
}

// TestModelChipJob runs a tiny multi-core model job end to end.
func TestModelChipJob(t *testing.T) {
	if testing.Short() {
		t.Skip("model simulation in -short mode")
	}
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, raw := postJob(t, ts,
		`{"op":"model","arch":"maeri","ms":64,"bw":16,"model":"A","scale":32,"seed":1,"chip":{"cores":2,"streams":2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Chip == nil || res.Chip.Cores != 2 {
		t.Fatalf("chip result missing: %s", env.Result)
	}
	if len(res.OutputSums) != 2 {
		t.Errorf("%d output sums, want one per stream", len(res.OutputSums))
	}
	if res.TotalCycles != res.Chip.MakespanCycles {
		t.Errorf("total cycles %d != makespan %d", res.TotalCycles, res.Chip.MakespanCycles)
	}
}

// TestStatsAndAuxEndpoints smoke-checks /stats, /archs, /healthz and
// /progress.
func TestStatsAndAuxEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	postJob(t, ts, gemmBody)
	postJob(t, ts, gemmBody)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ColdRuns != 1 || st.WarmHits != 1 || st.Cache.Entries != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.ColdLatency.Count != 1 || st.WarmLatency.Count != 1 {
		t.Errorf("latency counts: cold=%d warm=%d", st.ColdLatency.Count, st.WarmLatency.Count)
	}

	resp, err = http.Get(ts.URL + "/archs")
	if err != nil {
		t.Fatal(err)
	}
	var archs []archInfo
	if err := json.NewDecoder(resp.Body).Decode(&archs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(archs) < 4 {
		t.Errorf("/archs lists %d architectures", len(archs))
	}

	for _, path := range []string{"/healthz", "/progress"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestLatencyRingClampsSize pins the divide-by-zero fix: a ring sized <= 0
// must clamp instead of panicking in add on `% cap`.
func TestLatencyRingClampsSize(t *testing.T) {
	for _, size := range []int{-4, 0, 1} {
		l := newLatencyRing(size)
		l.add(3 * time.Millisecond)
		l.add(5 * time.Millisecond)
		s := l.stats()
		if s.Count != 2 {
			t.Errorf("size %d: count %d, want 2", size, s.Count)
		}
		// Window capacity is clamped to 1: the retained sample is the last.
		if got := time.Duration(s.P99Ms * float64(time.Millisecond)); got != 5*time.Millisecond {
			t.Errorf("size %d: p99 %v, want 5ms", size, got)
		}
	}
}

// TestLatencyRingNearestRankTail pins the percentile regression at the
// server's ring: 50 samples 1..50ms must report p99 = 50ms (the max, by
// nearest rank), not 49ms (the truncating index the old code used).
func TestLatencyRingNearestRankTail(t *testing.T) {
	l := newLatencyRing(64)
	for i := 1; i <= 50; i++ {
		l.add(time.Duration(i) * time.Millisecond)
	}
	s := l.stats()
	asDur := func(msv float64) time.Duration { return time.Duration(msv * float64(time.Millisecond)) }
	if got := asDur(s.P99Ms); got != 50*time.Millisecond {
		t.Errorf("p99 = %v, want 50ms (nearest rank includes the tail)", got)
	}
	if got := asDur(s.P50Ms); got != 25*time.Millisecond {
		t.Errorf("p50 = %v, want 25ms", got)
	}
	if got := asDur(s.P90Ms); got != 45*time.Millisecond {
		t.Errorf("p90 = %v, want 45ms", got)
	}
}

// TestEnvelopeTimingSplit checks the queue-wait vs simulate-time split on
// the wire: a cold run reports a positive sim_ms, a warm hit reports 0/0.
func TestEnvelopeTimingSplit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, raw1 := postJob(t, ts, gemmBody)
	var cold Envelope
	if err := json.Unmarshal(raw1, &cold); err != nil {
		t.Fatal(err)
	}
	if !(cold.SimMs > 0) {
		t.Errorf("cold run sim_ms = %g, want > 0", cold.SimMs)
	}
	_, raw2 := postJob(t, ts, gemmBody)
	var warm Envelope
	if err := json.Unmarshal(raw2, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.SimMs > 0 || warm.QueueMs > 0 {
		t.Errorf("warm hit reports timing %g/%g, want 0/0", warm.QueueMs, warm.SimMs)
	}
}
