package serve

import (
	"container/list"
	"sync"

	"repro/internal/jobkey"
)

// Cache is the bounded, concurrency-safe content-addressed result store:
// marshaled result bodies keyed by jobkey.Key, evicted least-recently-used
// once the entry bound is reached. Because every simulation is a pure
// function of its key material (bit-determinism is pinned by the parity
// and differential suites), a hit can replay the stored bytes verbatim —
// the response is byte-identical to recomputing.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List                   // guarded by mu; front = most recently used
	byKey map[jobkey.Key]*list.Element // guarded by mu

	hits, misses, evictions uint64 // guarded by mu
	bytes                   int64  // guarded by mu

	// disk, when set, backs the LRU with a persistent tier: entries are
	// written through on Put and a memory miss falls back to a disk load,
	// so results survive both eviction and process restarts.
	disk *DiskStore
}

// cacheEntry is one stored result body.
type cacheEntry struct {
	key  jobkey.Key
	body []byte
}

// DefaultCacheEntries bounds the store when the configuration does not.
const DefaultCacheEntries = 4096

// NewCache builds an empty store holding at most entries results;
// entries <= 0 selects DefaultCacheEntries.
func NewCache(entries int) *Cache {
	if entries <= 0 {
		entries = DefaultCacheEntries
	}
	return &Cache{
		cap:   entries,
		ll:    list.New(),
		byKey: make(map[jobkey.Key]*list.Element, entries),
	}
}

// SetDisk attaches the persistent tier. Call before the cache starts
// serving; the store has its own lock, so no cache mutex is held during
// disk I/O.
func (c *Cache) SetDisk(d *DiskStore) { c.disk = d }

// Get returns the stored result body for k, marking it most recently used.
// On a memory miss it consults the disk tier (when attached) and promotes
// a disk hit back into the LRU. The returned slice is the cached backing
// array: callers must treat it as immutable (the server only ever writes
// it to a response).
func (c *Cache) Get(k jobkey.Key) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.byKey[k]
	if ok {
		c.hits++
		c.ll.MoveToFront(el)
		body := el.Value.(*cacheEntry).body
		c.mu.Unlock()
		return body, true
	}
	c.misses++
	c.mu.Unlock()
	if c.disk == nil {
		return nil, false
	}
	body, ok := c.disk.Load(k)
	if !ok {
		return nil, false
	}
	// Promote without re-writing disk: the entry just came from there. A
	// racing promotion of the same key is harmless — insert is idempotent.
	c.mu.Lock()
	c.insert(k, body)
	c.mu.Unlock()
	return body, true
}

// Put stores the result body for k, evicting the least-recently-used entry
// when the store is full, and writes through to the disk tier when one is
// attached. Storing an existing key refreshes its recency but keeps the
// original body — content addressing guarantees they are equal.
func (c *Cache) Put(k jobkey.Key, body []byte) {
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.insert(k, body)
	c.mu.Unlock()
	if c.disk != nil {
		c.disk.Save(k, body)
	}
}

// insert adds a new entry to the LRU, evicting as needed. Caller holds mu
// and has established k is absent (a racing duplicate is tolerated: the
// bodies are identical by content addressing, the older entry just ages
// out).
func (c *Cache) insert(k jobkey.Key, body []byte) {
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.byKey, ent.key)
		c.bytes -= int64(len(ent.body))
		c.evictions++
	}
	c.byKey[k] = c.ll.PushFront(&cacheEntry{key: k, body: body})
	c.bytes += int64(len(body))
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is the store's observable state for the /stats endpoint.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`

	// Disk is the persistent tier's state, present only when a cache
	// directory is configured.
	Disk *DiskStats `json:"disk,omitempty"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	st := CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		ds := disk.Stats()
		st.Disk = &ds
	}
	return st
}
