package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/dnn"
)

// TraceFormatVersion is the arrival-trace format this build reads. The
// version is explicit in every trace file so a future incompatible change
// bumps it and old binaries refuse cleanly instead of misreading offsets.
const TraceFormatVersion = 1

// maxTraceRequests bounds one replay: traces are serving workloads, not
// denial-of-service vectors, and the replay engine keeps one outcome slot
// per request.
const maxTraceRequests = 100000

// Trace is a replayable arrival trace: a named set of requests, each with
// a job shape (including batch size) and an arrival offset from replay
// start. Requests can be listed explicitly or generated from scenario
// templates; generated arrivals are a pure function of the trace and the
// replay seed, so the same (trace, seed) pair always produces the same
// schedule — the determinism the replay reports rely on.
type Trace struct {
	Version   int             `json:"version"`
	Name      string          `json:"name"`
	Requests  []TraceRequest  `json:"requests,omitempty"`
	Scenarios []TraceScenario `json:"scenarios,omitempty"`
}

// TraceRequest is one explicit request in a trace.
type TraceRequest struct {
	// Scenario labels the request for per-scenario reporting; empty lands
	// in the "default" scenario.
	Scenario string `json:"scenario,omitempty"`
	// ArrivalMs is the offset from replay start at which the request fires.
	ArrivalMs float64 `json:"arrival_ms"`
	// Job is the request shape — the same fields as a POST /jobs body.
	Job Request `json:"job"`
}

// TraceScenario generates Count requests from a job template. Arrivals
// start at StartMs and advance either by the fixed IntervalMs or, when
// RateRPS is set instead, by exponential inter-arrival gaps (a Poisson
// process) drawn from the replay seed. SeedStep advances the job's data
// seed per generated request: 0 replays the identical job (warm traffic
// after the first), 1 makes every request a distinct cold job.
type TraceScenario struct {
	Name       string  `json:"name"`
	Job        Request `json:"job"`
	Count      int     `json:"count"`
	StartMs    float64 `json:"start_ms,omitempty"`
	IntervalMs float64 `json:"interval_ms,omitempty"`
	RateRPS    float64 `json:"rate_rps,omitempty"`
	SeedStep   uint64  `json:"seed_step,omitempty"`
}

// ScheduledRequest is one expanded, validated request of a replay: Index
// is its position in the arrival-sorted schedule (the order every
// deterministic report artifact uses).
type ScheduledRequest struct {
	Index    int
	Scenario string
	Arrival  time.Duration
	Job      Request
}

// ParseTrace decodes and validates a trace file.
func ParseTrace(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if t.Version != TraceFormatVersion {
		return nil, fmt.Errorf("trace %q: format version %d, this build reads %d",
			t.Name, t.Version, TraceFormatVersion)
	}
	total := len(t.Requests)
	for i, sc := range t.Scenarios {
		if sc.Name == "" {
			return nil, fmt.Errorf("trace %q: scenario %d has no name", t.Name, i)
		}
		if sc.Count < 1 {
			return nil, fmt.Errorf("trace %q: scenario %q count %d (want >= 1)", t.Name, sc.Name, sc.Count)
		}
		if sc.IntervalMs < 0 || sc.RateRPS < 0 || sc.StartMs < 0 {
			return nil, fmt.Errorf("trace %q: scenario %q has a negative timing field", t.Name, sc.Name)
		}
		if sc.IntervalMs > 0 && sc.RateRPS > 0 {
			return nil, fmt.Errorf("trace %q: scenario %q sets both interval_ms and rate_rps", t.Name, sc.Name)
		}
		total += sc.Count
	}
	for i, r := range t.Requests {
		if r.ArrivalMs < 0 || math.IsNaN(r.ArrivalMs) || math.IsInf(r.ArrivalMs, 0) {
			return nil, fmt.Errorf("trace %q: request %d arrival_ms %g", t.Name, i, r.ArrivalMs)
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("trace %q: no requests", t.Name)
	}
	if total > maxTraceRequests {
		return nil, fmt.Errorf("trace %q: %d requests exceeds the limit %d", t.Name, total, maxTraceRequests)
	}
	return &t, nil
}

// Expand turns the trace into its arrival-sorted request schedule for one
// replay seed. Every job is resolved (so a malformed trace fails here,
// named, instead of as mid-replay 400s) and progress streaming is forced
// off — replay measures the result path, not the NDJSON side channel.
func (t *Trace) Expand(seed uint64) ([]ScheduledRequest, error) {
	var sched []ScheduledRequest
	add := func(scenario string, at time.Duration, job Request) error {
		job.Progress = false
		if _, err := resolve(job); err != nil {
			return fmt.Errorf("trace %q: scenario %q: %w", t.Name, scenario, err)
		}
		if scenario == "" {
			scenario = "default"
		}
		sched = append(sched, ScheduledRequest{Scenario: scenario, Arrival: at, Job: job})
		return nil
	}
	for _, r := range t.Requests {
		if err := add(r.Scenario, msDuration(r.ArrivalMs), r.Job); err != nil {
			return nil, err
		}
	}
	for si, sc := range t.Scenarios {
		// One independent generator per scenario, derived from the replay
		// seed and the scenario's position: reordering scenarios changes
		// the trace, same order + same seed replays identically.
		rng := dnn.NewRNG(seed + uint64(si)*0x9e3779b97f4a7c15)
		at := msDuration(sc.StartMs)
		for i := 0; i < sc.Count; i++ {
			job := sc.Job
			job.Seed += uint64(i) * sc.SeedStep
			if err := add(sc.Name, at, job); err != nil {
				return nil, err
			}
			switch {
			case sc.RateRPS > 0:
				gap := -math.Log(1-rng.Float64()) / sc.RateRPS // seconds
				at += time.Duration(gap * float64(time.Second))
			default:
				at += msDuration(sc.IntervalMs)
			}
		}
	}
	// Arrival order with a stable tie-break on declaration order; Index is
	// the schedule position and keys every deterministic report artifact.
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].Arrival < sched[j].Arrival })
	for i := range sched {
		sched[i].Index = i
	}
	return sched, nil
}

func msDuration(msv float64) time.Duration {
	return time.Duration(msv * float64(time.Millisecond))
}
