package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// Replayer drives an arrival trace against a stonned /jobs endpoint: each
// scheduled request fires at its (speed-compressed) arrival offset,
// open-loop — a slow server does not slow the arrival process, it grows
// the queue, exactly like production traffic. The resulting report splits
// client-observed latency into the server's queue-wait and simulate-time
// components and digests every result body in schedule order, so two
// replays of the same trace are comparable byte-for-byte.
type Replayer struct {
	// Client issues the requests; nil uses http.DefaultClient. Use
	// InProcClient to replay against an in-process handler without
	// sockets.
	Client *http.Client
	// Base is the server base URL ("http://host:port").
	Base string
	// Speed compresses arrival offsets: an offset of t fires at t/Speed.
	// <= 0 replays in real time (1x).
	Speed float64
	// Timeout bounds one request; <= 0 uses 2 minutes.
	Timeout time.Duration
}

// ReplayReport is the outcome of one replay. Latency percentiles cover
// successful requests only — rejected (429) and failed requests are
// counted alongside, never mixed into the distribution. Digest is the
// SHA-256 over every request's outcome marker and result bytes in
// schedule order: with a deterministic simulator it is a pure function of
// (trace, seed) whenever every request completes, which is what the
// replay-determinism and persistence smokes compare across runs and
// process restarts.
type ReplayReport struct {
	Trace      string  `json:"trace"`
	Seed       uint64  `json:"seed"`
	Speed      float64 `json:"speed"`
	DurationMs float64 `json:"duration_ms"`

	Requests  int     `json:"requests"`
	Completed int     `json:"completed"`
	Warm      int     `json:"warm"`
	Cold      int     `json:"cold"`
	Rejected  int     `json:"rejected"`
	Failed    int     `json:"failed"`
	WarmRate  float64 `json:"warm_rate"`

	Latency   stats.LatencySummary `json:"latency"`
	QueueWait stats.LatencySummary `json:"queue_wait"`
	SimTime   stats.LatencySummary `json:"sim_time"`

	Digest    string           `json:"digest"`
	Scenarios []ScenarioReport `json:"scenarios"`
}

// ScenarioReport is one scenario's slice of the replay, same conventions
// as the top-level report.
type ScenarioReport struct {
	Name      string  `json:"name"`
	Requests  int     `json:"requests"`
	Completed int     `json:"completed"`
	Warm      int     `json:"warm"`
	Cold      int     `json:"cold"`
	Rejected  int     `json:"rejected"`
	Failed    int     `json:"failed"`
	WarmRate  float64 `json:"warm_rate"`

	Latency   stats.LatencySummary `json:"latency"`
	QueueWait stats.LatencySummary `json:"queue_wait"`
	SimTime   stats.LatencySummary `json:"sim_time"`

	Digest string `json:"digest"`
}

// outcome is one request's observed result.
type outcome struct {
	scenario string
	status   int // 0 = transport failure
	cached   bool
	latency  time.Duration
	queueMs  float64
	simMs    float64
	result   []byte
}

// Replay expands the trace with seed and runs it to completion (or ctx
// cancellation, which is an error: a partial replay has no meaningful
// report).
func (r *Replayer) Replay(ctx context.Context, tr *Trace, seed uint64) (*ReplayReport, error) {
	sched, err := tr.Expand(seed)
	if err != nil {
		return nil, err
	}
	client := r.Client
	if client == nil {
		client = http.DefaultClient
	}
	speed := r.Speed
	if speed <= 0 {
		speed = 1
	}
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}

	outs := make([]outcome, len(sched))
	start := time.Now()
	var wg sync.WaitGroup
	for _, sr := range sched {
		fireAt := start.Add(time.Duration(float64(sr.Arrival) / speed))
		if wait := time.Until(fireAt); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				wg.Wait()
				return nil, ctx.Err()
			}
		}
		wg.Add(1)
		go func(sr ScheduledRequest) {
			defer wg.Done()
			outs[sr.Index] = r.one(ctx, client, timeout, sr)
		}(sr)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return buildReport(tr, seed, speed, time.Since(start), outs), nil
}

// one issues a single scheduled request and records its outcome.
func (r *Replayer) one(ctx context.Context, client *http.Client, timeout time.Duration, sr ScheduledRequest) outcome {
	out := outcome{scenario: sr.Scenario}
	body, err := json.Marshal(sr.Job)
	if err != nil {
		return out
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, r.Base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	began := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		out.latency = time.Since(began)
		return out
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	out.latency = time.Since(began)
	if err != nil {
		return out
	}
	out.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		return out
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		out.status = 0 // malformed body counts as a failure
		return out
	}
	out.cached = env.Cached
	out.queueMs = env.QueueMs
	out.simMs = env.SimMs
	out.result = env.Result
	return out
}

// tally accumulates outcomes for one report scope.
type tally struct {
	requests, warm, cold, rejected, failed int
	latency, queue, sim                    []time.Duration
}

func newTally() *tally { return &tally{} }

func (t *tally) add(idx int, o outcome) {
	t.requests++
	switch {
	case o.status == http.StatusOK:
		if o.cached {
			t.warm++
		} else {
			t.cold++
		}
		t.latency = append(t.latency, o.latency)
		t.queue = append(t.queue, msDuration(o.queueMs))
		t.sim = append(t.sim, msDuration(o.simMs))
	case o.status == http.StatusTooManyRequests:
		t.rejected++
	default:
		t.failed++
	}
}

// digestOutcomes hashes the outcome markers and result bytes of the given
// schedule indices in order.
func digestOutcomes(outs []outcome, indices []int) string {
	h := sha256.New()
	for _, i := range indices {
		o := outs[i]
		switch {
		case o.status == http.StatusOK:
			fmt.Fprintf(h, "%d:ok:", i)
			h.Write(o.result)
		case o.status == http.StatusTooManyRequests:
			fmt.Fprintf(h, "%d:rejected", i)
		default:
			fmt.Fprintf(h, "%d:failed", i)
		}
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (t *tally) fill(req *int, completed *int, warm, cold, rejected, failed *int, rate *float64,
	lat, queue, sim *stats.LatencySummary) {
	*req = t.requests
	*completed = t.warm + t.cold
	*warm, *cold, *rejected, *failed = t.warm, t.cold, t.rejected, t.failed
	if done := t.warm + t.cold; done > 0 {
		*rate = float64(t.warm) / float64(done)
	}
	*lat = stats.SummarizeLatencies(t.latency)
	*queue = stats.SummarizeLatencies(t.queue)
	*sim = stats.SummarizeLatencies(t.sim)
}

func buildReport(tr *Trace, seed uint64, speed float64, wall time.Duration, outs []outcome) *ReplayReport {
	total := newTally()
	perScenario := map[string]*tally{}
	perIndices := map[string][]int{}
	for i, o := range outs {
		total.add(i, o)
		sc := perScenario[o.scenario]
		if sc == nil {
			sc = newTally()
			perScenario[o.scenario] = sc
		}
		sc.add(i, o)
		perIndices[o.scenario] = append(perIndices[o.scenario], i)
	}
	rep := &ReplayReport{
		Trace:      tr.Name,
		Seed:       seed,
		Speed:      speed,
		DurationMs: float64(wall) / float64(time.Millisecond),
		Digest:     digestOutcomes(outs, seqIndices(len(outs))),
	}
	total.fill(&rep.Requests, &rep.Completed, &rep.Warm, &rep.Cold, &rep.Rejected, &rep.Failed,
		&rep.WarmRate, &rep.Latency, &rep.QueueWait, &rep.SimTime)
	names := make([]string, 0, len(perScenario))
	for name := range perScenario {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sc := perScenario[name]
		s := ScenarioReport{Name: name, Digest: digestOutcomes(outs, perIndices[name])}
		sc.fill(&s.Requests, &s.Completed, &s.Warm, &s.Cold, &s.Rejected, &s.Failed,
			&s.WarmRate, &s.Latency, &s.QueueWait, &s.SimTime)
		rep.Scenarios = append(rep.Scenarios, s)
	}
	return rep
}

func seqIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// handlerTransport serves HTTP requests by invoking a handler directly —
// the full request path (admission, coalescing, cache) without a socket.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// InProcClient returns an http.Client whose requests are served by h
// in-process. Use with a Replayer Base of any syntactically valid URL.
func InProcClient(h http.Handler) *http.Client {
	return &http.Client{Transport: handlerTransport{h: h}}
}

// replayRequest is the POST /replay body: an inline trace plus replay
// knobs.
type replayRequest struct {
	Trace     json.RawMessage `json:"trace"`
	Seed      uint64          `json:"seed"`
	Speed     float64         `json:"speed"`
	TimeoutMs float64         `json:"timeout_ms"`
}

// handleReplay replays an inline trace against this server's own /jobs
// endpoint (in-process, through the full admission/coalescing/cache path)
// and returns the report. Latency here excludes client networking — it is
// the server-side serving distribution.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST a replay request"})
		return
	}
	var req replayRequest
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	if len(req.Trace) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"replay request has no trace"})
		return
	}
	tr, err := ParseTrace(req.Trace)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	rep := &Replayer{
		Client:  InProcClient(s.Handler()),
		Base:    "http://stonned.replay",
		Speed:   req.Speed,
		Timeout: msDuration(req.TimeoutMs),
	}
	report, err := rep.Replay(r.Context(), tr, req.Seed)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, report)
}
