package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/jobkey"
)

// DiskStore persists cached result bodies across process restarts, keyed
// by the same jobkey content addresses as the in-memory LRU. Because the
// key is a content address of the *job* and every simulation is
// bit-deterministic, a restarted daemon that loads an entry from disk
// serves exactly the bytes the previous process computed — the warm path
// survives the process.
//
// Entry format (version diskFormatVersion): one file per key named
// <key>.res, a single header line
//
//	stonnedcache <version> <sha256-of-body> <body-length>\n
//
// followed by the raw body bytes. Writes go to a temp file in the same
// directory and rename into place, so a crash mid-write never leaves a
// half-entry under the final name. Loads verify magic, version, length
// and checksum; any mismatch (truncation, corruption, a future format
// bump) deletes the file and reads as a miss — the simulator silently
// recomputes, it never serves suspect bytes.
//
// Eviction is write-time FIFO: when a Save pushes the store past its
// entry bound, the oldest entries by modification time are removed.
// Unlike the memory LRU this does not track read recency — the disk tier
// is a restart-survival layer, not a working-set tracker.
type DiskStore struct {
	dir string
	max int

	mu      sync.Mutex
	entries int // guarded by mu

	hits, writes, corrupt, evictions, errors uint64 // guarded by mu
}

const (
	diskMagic         = "stonnedcache"
	diskFormatVersion = 1
	diskEntrySuffix   = ".res"

	// DefaultDiskEntries bounds the disk store when the configuration
	// does not.
	DefaultDiskEntries = 65536
)

// NewDiskStore opens (creating if needed) the persistent store rooted at
// dir, bounded to maxEntries result files (<= 0 selects
// DefaultDiskEntries). The startup scan only counts entries; bodies load
// lazily on first Get.
func NewDiskStore(dir string, maxEntries int) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("disk store needs a directory")
	}
	if maxEntries <= 0 {
		maxEntries = DefaultDiskEntries
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk store: %w", err)
	}
	d := &DiskStore{dir: dir, max: maxEntries}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk store: %w", err)
	}
	for _, e := range names {
		if !e.IsDir() && strings.HasSuffix(e.Name(), diskEntrySuffix) {
			//lint:ignore mutexheld construction-time scan; the store has not escaped yet
			d.entries++
		}
	}
	return d, nil
}

// validKey reports whether k is a well-formed content address (64 hex
// chars) — the only strings the store will use as file names.
func validKey(k jobkey.Key) bool {
	if len(k) != 64 {
		return false
	}
	for _, c := range k {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (d *DiskStore) path(k jobkey.Key) string {
	return filepath.Join(d.dir, string(k)+diskEntrySuffix)
}

// Save writes the entry for k unless one already exists (content
// addressing guarantees an existing file holds the same bytes). Errors
// are counted, not returned: persistence is best-effort and must never
// fail a request that already has its result.
func (d *DiskStore) Save(k jobkey.Key, body []byte) {
	if !validKey(k) {
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return
	}
	path := d.path(k)
	if _, err := os.Stat(path); err == nil {
		return // already persisted; identical by content addressing
	}
	header := fmt.Sprintf("%s %d %s %d\n", diskMagic, diskFormatVersion, bodySum(body), len(body))
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return
	}
	_, werr := tmp.Write(append([]byte(header), body...))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return
	}
	d.mu.Lock()
	d.entries++
	d.writes++
	over := d.entries - d.max
	d.mu.Unlock()
	if over > 0 {
		d.evictOldest(over)
	}
}

// Load reads the entry for k, verifying format and checksum. A malformed,
// truncated or corrupted entry is deleted and reported as a miss.
func (d *DiskStore) Load(k jobkey.Key) ([]byte, bool) {
	if !validKey(k) {
		return nil, false
	}
	raw, err := os.ReadFile(d.path(k))
	if err != nil {
		return nil, false
	}
	body, ok := parseEntry(raw)
	if !ok {
		d.discard(k)
		return nil, false
	}
	d.mu.Lock()
	d.hits++
	d.mu.Unlock()
	return body, true
}

// parseEntry validates one entry file's bytes and returns the body.
func parseEntry(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 4 || fields[0] != diskMagic {
		return nil, false
	}
	version, sum := fields[1], fields[2]
	if version != fmt.Sprint(diskFormatVersion) {
		return nil, false
	}
	var n int
	if _, err := fmt.Sscanf(fields[3], "%d", &n); err != nil || n < 0 {
		return nil, false
	}
	body := raw[nl+1:]
	if len(body) != n || bodySum(body) != sum {
		return nil, false
	}
	return body, true
}

// discard removes a corrupt entry and counts it.
func (d *DiskStore) discard(k jobkey.Key) {
	err := os.Remove(d.path(k))
	d.mu.Lock()
	d.corrupt++
	if err == nil {
		d.entries--
	}
	d.mu.Unlock()
}

// evictOldest removes the n oldest entries by modification time.
func (d *DiskStore) evictOldest(n int) {
	names, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	var all []aged
	for _, e := range names {
		if e.IsDir() || !strings.HasSuffix(e.Name(), diskEntrySuffix) {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		all = append(all, aged{e.Name(), info.ModTime().UnixNano()})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].mod != all[j].mod {
			return all[i].mod < all[j].mod
		}
		return all[i].name < all[j].name
	})
	if n > len(all) {
		n = len(all)
	}
	removed := 0
	for _, a := range all[:n] {
		if os.Remove(filepath.Join(d.dir, a.name)) == nil {
			removed++
		}
	}
	d.mu.Lock()
	d.entries -= removed
	d.evictions += uint64(removed)
	d.mu.Unlock()
}

// DiskStats is the persistent tier's observable state.
type DiskStats struct {
	Dir       string `json:"dir"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Writes    uint64 `json:"writes"`
	Corrupt   uint64 `json:"corrupt"`
	Evictions uint64 `json:"evictions"`
	Errors    uint64 `json:"errors"`
}

// Stats snapshots the counters.
func (d *DiskStore) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DiskStats{
		Dir:       d.dir,
		Entries:   d.entries,
		Capacity:  d.max,
		Hits:      d.hits,
		Writes:    d.writes,
		Corrupt:   d.corrupt,
		Evictions: d.evictions,
		Errors:    d.errors,
	}
}

func bodySum(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}
