package serve

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/dnn"
	"repro/internal/jobkey"
	"repro/internal/mapper"
	"repro/internal/sim"
	"repro/internal/simpool"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/stonne"
)

// Request is the POST /jobs body: one simulation job. Either name a preset
// architecture (arch, optionally ms/bw) or supply a complete hardware
// description (hw); conv/tile field names are the paper's uppercase layer
// vocabulary (R, S, C, G, K, N, X, Y, Stride, Padding / TR..TYp).
type Request struct {
	Op   string           `json:"op"`
	Arch string           `json:"arch,omitempty"`
	MS   int              `json:"ms,omitempty"`
	BW   int              `json:"bw,omitempty"`
	HW   *config.Hardware `json:"hw,omitempty"`

	M int `json:"m,omitempty"`
	N int `json:"n,omitempty"`
	K int `json:"k,omitempty"`

	Conv *tensor.ConvShape `json:"conv,omitempty"`
	Tile *mapper.Tile      `json:"tile,omitempty"`

	Sparsity float64 `json:"sparsity,omitempty"`
	Policy   string  `json:"policy,omitempty"`

	Seed  uint64 `json:"seed,omitempty"`
	Batch int    `json:"batch,omitempty"`

	Model string `json:"model,omitempty"`
	// Scale divides the model's spatial dimensions (model op only; 0/1
	// runs the full-size model — expensive for the big Table I networks).
	Scale int         `json:"scale,omitempty"`
	Chip  ChipRequest `json:"chip,omitempty"`

	// Progress streams NDJSON progress samples before the final result
	// line. It never affects the result bytes (trace-only artifacts are
	// scrubbed) and is not part of the cache key.
	Progress bool `json:"progress,omitempty"`
}

// ChipRequest is the multi-core composition of a model job.
type ChipRequest struct {
	Cores     int     `json:"cores,omitempty"`
	Placement string  `json:"placement,omitempty"`
	Banks     int     `json:"banks,omitempty"`
	LinkGBs   float64 `json:"link_gbs,omitempty"`
	Streams   int     `json:"streams,omitempty"`
}

// Service-side bounds: a single request may not queue unbounded work.
const (
	maxBatch   = 1024
	maxStreams = 256
	maxCores   = 64

	// Defaults when the request names a preset without a fabric size: small
	// enough that an interactive curl answers in milliseconds.
	defaultMS = 64
	defaultBW = 16
)

// job is a resolved, validated, content-addressed request.
type job struct {
	key   jobkey.Key
	jk    jobkey.Job
	req   Request
	hw    config.Hardware
	arch  string
	pol   stonne.SchedPolicy
	model *stonne.Model // resolved, scaled model (model op only)
}

// resolve turns a wire request into a runnable job: presets and defaults
// applied, operands validated, and the content address computed from the
// fully resolved values (so every spelling of the same job lands on the
// same key).
func resolve(req Request) (*job, error) {
	j := &job{req: req}
	j.req.Op = strings.ToLower(strings.TrimSpace(req.Op))

	var hw config.Hardware
	switch {
	case req.HW != nil:
		hw = *req.HW
		if err := hw.Validate(); err != nil {
			return nil, fmt.Errorf("hw: %w", err)
		}
	default:
		name := req.Arch
		if name == "" {
			name = "maeri"
		}
		ms, bw := req.MS, req.BW
		if ms <= 0 {
			ms = defaultMS
		}
		if bw <= 0 {
			bw = defaultBW
		}
		var err error
		hw, err = sim.PresetHW(name, ms, bw)
		if err != nil {
			return nil, err
		}
	}
	// The service is the paper's user-interface mode: operands are
	// generated from the seed and start preloaded in the Global Buffer.
	hw.Preloaded = true
	hw.Trace = nil
	arch, err := sim.Resolve(hw)
	if err != nil {
		return nil, err
	}
	j.hw, j.arch = hw, arch.Name

	if req.Batch < 0 || req.Batch > maxBatch {
		return nil, fmt.Errorf("batch %d out of range [0,%d]", req.Batch, maxBatch)
	}

	switch j.req.Op {
	case jobkey.OpGEMM, jobkey.OpSpMM:
		m, n, k := req.M, req.N, req.K
		if m <= 0 || n <= 0 || k <= 0 {
			return nil, fmt.Errorf("%s needs positive m, n, k (got %d, %d, %d)", j.req.Op, m, n, k)
		}
		if j.req.Op == jobkey.OpSpMM {
			if req.Sparsity < 0 || req.Sparsity > 1 {
				return nil, fmt.Errorf("sparsity %g out of [0,1]", req.Sparsity)
			}
			if j.pol, err = parsePolicy(req.Policy); err != nil {
				return nil, err
			}
		}
	case jobkey.OpConv:
		if req.Conv == nil {
			return nil, fmt.Errorf("conv needs a conv shape")
		}
		if err := req.Conv.Validate(); err != nil {
			return nil, err
		}
		if req.Tile != nil {
			if err := req.Tile.Validate(*req.Conv); err != nil {
				return nil, err
			}
		}
	case jobkey.OpModel:
		full, merr := stonne.ModelByShort(req.Model)
		if merr != nil {
			return nil, merr
		}
		scale := req.Scale
		if scale < 1 {
			scale = 1
		}
		if j.model, err = stonne.ScaleSpatial(full, scale); err != nil {
			return nil, err
		}
		if j.pol, err = parsePolicy(req.Policy); err != nil {
			return nil, err
		}
		if req.Chip.Cores > maxCores {
			return nil, fmt.Errorf("cores %d exceeds the limit %d", req.Chip.Cores, maxCores)
		}
		if req.Chip.Streams > maxStreams {
			return nil, fmt.Errorf("streams %d exceeds the limit %d", req.Chip.Streams, maxStreams)
		}
	case "":
		return nil, fmt.Errorf("request has no op")
	default:
		return nil, fmt.Errorf("unknown op %q (want gemm, conv, spmm or model)", j.req.Op)
	}

	j.jk = jobkey.Job{
		Arch: arch.Name,
		Contract: jobkey.Contract{
			ExactSum:           arch.Contract.ExactSum,
			RelTol:             arch.Contract.RelTol,
			PostActivationConv: arch.Contract.PostActivationConv,
		},
		HW:       hw,
		Op:       j.req.Op,
		M:        req.M,
		N:        req.N,
		K:        req.K,
		Sparsity: req.Sparsity,
		Policy:   req.Policy,
		Tile:     req.Tile,
		Seed:     req.Seed,
		Batch:    req.Batch,
		Model:    req.Model,
		Scale:    req.Scale,
		Chip: jobkey.Chip{
			Cores:     req.Chip.Cores,
			Placement: req.Chip.Placement,
			Banks:     req.Chip.Banks,
			LinkGBs:   req.Chip.LinkGBs,
			Streams:   req.Chip.Streams,
		},
	}
	if req.Conv != nil {
		j.jk.Conv = *req.Conv
	}
	if j.key, err = j.jk.Hash(); err != nil {
		return nil, err
	}
	return j, nil
}

func parsePolicy(s string) (stonne.SchedPolicy, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "", "NS":
		return stonne.NoScheduling, nil
	case "RDM":
		return stonne.RandomScheduling, nil
	case "LFF":
		return stonne.LargestFilterFirst, nil
	default:
		return stonne.NoScheduling, fmt.Errorf("unknown policy %q (want NS, RDM or LFF)", s)
	}
}

// Result is the cached payload of one job: everything deterministic about
// the simulation. Map-valued fields marshal with sorted keys, so two runs
// of the same job produce byte-identical JSON — the property the
// content-addressed cache replays.
type Result struct {
	Key  jobkey.Key `json:"key"`
	Op   string     `json:"op"`
	Arch string     `json:"arch"`

	// Seeds lists the per-run data seeds (gemm/spmm/conv; one per batch
	// element), aligned with Runs.
	Seeds []uint64     `json:"seeds,omitempty"`
	Runs  []*stats.Run `json:"runs,omitempty"`
	// Chip is the aggregated result of a model job (always run through the
	// chip composition; one core is the degenerate chip).
	Chip *stats.ChipRun `json:"chip,omitempty"`

	// OutputSums checksums the functional outputs (one per run or stream):
	// the bit-determinism the cache relies on covers values, not just
	// counters, and the sums prove it cheaply.
	OutputSums []float64 `json:"output_sums,omitempty"`

	TotalCycles uint64 `json:"total_cycles"`
}

// progressFn observes one live progress sample of a running job.
type progressFn func(label string, cycles uint64, outputs int, occupancy float64, skipped uint64)

// execute runs the resolved job to completion. batchWorkers bounds the
// simpool fan-out of one batched request; progress, when non-nil, receives
// periodic samples.
func execute(ctx context.Context, j *job, batchWorkers int, progress progressFn) (*Result, error) {
	res := &Result{Key: j.key, Op: j.req.Op, Arch: j.arch}
	var err error
	if j.req.Op == jobkey.OpModel {
		err = executeModel(ctx, j, res, progress)
	} else {
		err = executeOp(ctx, j, res, batchWorkers, progress)
	}
	if err != nil {
		return nil, err
	}
	if res.Chip != nil {
		res.TotalCycles = res.Chip.MakespanCycles
	}
	for _, r := range res.Runs {
		res.TotalCycles += r.Cycles
	}
	return res, nil
}

// executeOp fans a gemm/spmm/conv batch out over simpool, one independent
// instance per seed — the exact per-seed tensor derivation of the stonne
// CLI, so a service job and a CLI run of the same spelling share a result.
func executeOp(ctx context.Context, j *job, res *Result, batchWorkers int, progress progressFn) error {
	batch := j.jk.Normalize().Batch
	seeds := make([]uint64, batch)
	for i := range seeds {
		seeds[i] = j.req.Seed + uint64(i)
	}
	type runOut struct {
		run *stats.Run
		sum float64
	}
	outs, err := simpool.Map(ctx, batchWorkers, seeds,
		func(_ context.Context, i int, sd uint64) (runOut, error) {
			hw := j.hw
			if progress != nil {
				label := fmt.Sprintf("%.8s/run%d", j.key, i)
				hw.Trace = &trace.Config{
					Label:         label,
					ProgressEvery: 4096,
					OnProgress: func(p trace.Progress) {
						progress(p.Label, p.Cycles, p.Outputs, p.Occupancy, p.Skipped)
					},
				}
			}
			out, run, rerr := runOne(hw, j, sd)
			if rerr != nil {
				return runOut{}, rerr
			}
			return runOut{run: scrubRun(run), sum: tensorSum(out)}, nil
		})
	if err != nil {
		return err
	}
	res.Seeds = seeds
	for _, o := range outs {
		res.Runs = append(res.Runs, o.run)
		res.OutputSums = append(res.OutputSums, o.sum)
	}
	return nil
}

// runOne simulates a single gemm/spmm/conv with operands derived from seed.
func runOne(hw config.Hardware, j *job, seed uint64) (*stonne.Tensor, *stats.Run, error) {
	inst, err := stonne.CreateInstance(hw)
	if err != nil {
		return nil, nil, err
	}
	rng := dnn.NewRNG(seed)
	randTensor := func(shape ...int) *stonne.Tensor {
		t := stonne.NewTensor(shape...)
		for i, d := 0, t.Data(); i < len(d); i++ {
			d[i] = float32(rng.Normal())
		}
		return t
	}
	switch j.req.Op {
	case jobkey.OpGEMM:
		inst.ConfigureDMM()
		inst.ConfigureData(randTensor(j.req.M, j.req.K), randTensor(j.req.K, j.req.N))
	case jobkey.OpSpMM:
		inst.ConfigureSpMM(j.pol)
		A := randTensor(j.req.M, j.req.K)
		pruneTo(A, j.req.Sparsity)
		inst.ConfigureData(A, randTensor(j.req.K, j.req.N))
	case jobkey.OpConv:
		cs := *j.req.Conv
		if err := inst.ConfigureCONV(cs); err != nil {
			return nil, nil, err
		}
		if j.req.Tile != nil {
			inst.ConfigureTile(*j.req.Tile)
		}
		w := randTensor(cs.K, cs.C/cs.G, cs.R, cs.S)
		in := stonne.NewTensor(cs.N, cs.C, cs.X, cs.Y)
		for i, d := 0, in.Data(); i < len(d); i++ {
			v := rng.Normal()
			if v < 0 {
				v = 0
			}
			d[i] = float32(v)
		}
		inst.ConfigureData(w, in)
	}
	out, run, err := inst.RunOperation()
	if err != nil {
		return nil, nil, err
	}
	return out, run, nil
}

// pruneTo zeroes elements with the CLI's fixed pruning stream, keeping
// service results byte-compatible with `stonne spmm` runs.
func pruneTo(t *stonne.Tensor, sparsity float64) {
	d := t.Data()
	rng := dnn.NewRNG(0x9981)
	for i := range d {
		if rng.Float64() < sparsity {
			d[i] = 0
		}
	}
}

// executeModel runs a model job through the chip composition (a 1-core
// chip is byte-identical to the flat model runner), with seeded weights
// pruned to the model's Table I sparsity and one seeded input per stream.
func executeModel(ctx context.Context, j *job, res *Result, progress progressFn) error {
	m := j.model
	w := stonne.InitWeights(m, j.req.Seed)
	if err := w.Prune(m.Sparsity); err != nil {
		return err
	}
	chip := j.jk.Normalize().Chip
	inputs := make([]*stonne.Tensor, chip.Streams)
	for i := range inputs {
		inputs[i] = stonne.RandomInput(m, j.req.Seed+1+uint64(i))
	}
	copts := stonne.ChipOptions{
		Cores:     chip.Cores,
		Placement: chip.Placement,
		Banks:     chip.Banks,
		LinkGBs:   chip.LinkGBs,
	}
	if progress != nil {
		prefix := string(j.key[:8])
		copts.Progress = func(core, stream, stage int, endCycle uint64) {
			progress(fmt.Sprintf("%s/core%d", prefix, core), endCycle, stream+1, 0, 0)
		}
	}
	outs, cr, err := stonne.RunModelChip(ctx, m, w, inputs, j.hw, copts, &stonne.RunOptions{Policy: j.pol})
	if err != nil {
		return err
	}
	res.Chip = cr
	for _, o := range outs {
		res.OutputSums = append(res.OutputSums, tensorSum(o))
	}
	return nil
}

// scrubRun strips trace-only artifacts (the cycle breakdown and trace.*
// counters) from a run so progress-streamed and untraced executions of the
// same job marshal byte-identically — the differential suite pins every
// remaining field as byte-exact.
func scrubRun(r *stats.Run) *stats.Run {
	if r == nil {
		return nil
	}
	s := *r
	s.Breakdown = nil
	if len(r.Counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.Counters))
		for k, v := range r.Counters {
			if strings.HasPrefix(k, "trace.") {
				continue
			}
			s.Counters[k] = v
		}
	}
	return &s
}

// tensorSum is the float64 checksum of a functional output.
func tensorSum(t *stonne.Tensor) float64 {
	if t == nil {
		return 0
	}
	var sum float64
	for _, v := range t.Data() {
		sum += float64(v)
	}
	return sum
}
