package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// testTrace mixes explicit requests, a repeat scenario (warm traffic), a
// seed-stepped scan (cold traffic) and a Poisson scenario.
const testTraceJSON = `{
  "version": 1,
  "name": "test-mix",
  "requests": [
    {"scenario": "solo", "arrival_ms": 0,
     "job": {"op":"gemm","arch":"maeri","ms":16,"bw":16,"m":8,"n":8,"k":16,"seed":1}}
  ],
  "scenarios": [
    {"name": "repeat", "start_ms": 1, "count": 4, "interval_ms": 1,
     "job": {"op":"gemm","arch":"maeri","ms":16,"bw":16,"m":8,"n":8,"k":16,"seed":1}},
    {"name": "scan", "start_ms": 2, "count": 3, "interval_ms": 1, "seed_step": 1,
     "job": {"op":"gemm","arch":"maeri","ms":16,"bw":16,"m":8,"n":8,"k":20,"seed":5}},
    {"name": "poisson", "start_ms": 0, "count": 3, "rate_rps": 2000,
     "job": {"op":"gemm","arch":"maeri","ms":16,"bw":16,"m":8,"n":8,"k":24,"seed":9}}
  ]
}`

func parseTestTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := ParseTrace([]byte(testTraceJSON))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// stubServer builds a server whose run hook returns a deterministic
// payload per key without simulating — replay mechanics without kernel
// cost.
func stubServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.run = func(ctx context.Context, j *job, progress progressFn) (*Result, error) {
		return &Result{Key: j.key, Op: j.req.Op, Arch: j.arch, TotalCycles: uint64(len(j.key))}, nil
	}
	return s
}

// TestTraceExpandDeterministic: the expanded schedule is a pure function
// of (trace, seed) — identical arrivals, order and job seeds across
// calls; a different replay seed moves the Poisson arrivals.
func TestTraceExpandDeterministic(t *testing.T) {
	tr := parseTestTrace(t)
	a, err := tr.Expand(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Expand(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 11 {
		t.Fatalf("expanded %d requests, want 11", len(a))
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Scenario != b[i].Scenario ||
			a[i].Job.Seed != b[i].Job.Seed || a[i].Index != i {
			t.Fatalf("expansion differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := tr.Expand(43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Arrival != c[i].Arrival {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical Poisson arrivals")
	}
	// Fixed-interval and explicit arrivals must not depend on the seed:
	// the non-Poisson subsequence (whose relative order is seed-free) is
	// identical under both seeds.
	type fixed struct {
		scenario string
		arrival  time.Duration
		seed     uint64
	}
	subseq := func(sched []ScheduledRequest) []fixed {
		var out []fixed
		for _, sr := range sched {
			if sr.Scenario != "poisson" {
				out = append(out, fixed{sr.Scenario, sr.Arrival, sr.Job.Seed})
			}
		}
		return out
	}
	fa, fc := subseq(a), subseq(c)
	if len(fa) != len(fc) {
		t.Fatalf("non-Poisson counts differ: %d vs %d", len(fa), len(fc))
	}
	for i := range fa {
		if fa[i] != fc[i] {
			t.Errorf("non-Poisson request %d changed with the seed: %+v vs %+v", i, fa[i], fc[i])
		}
	}
}

// TestTraceExpandScanSeeds: seed_step advances the job seed per request.
func TestTraceExpandScanSeeds(t *testing.T) {
	tr := parseTestTrace(t)
	sched, err := tr.Expand(1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[uint64]bool{}
	for _, sr := range sched {
		if sr.Scenario == "scan" {
			seeds[sr.Job.Seed] = true
		}
	}
	for want := uint64(5); want <= 7; want++ {
		if !seeds[want] {
			t.Errorf("scan scenario missing seed %d (got %v)", want, seeds)
		}
	}
}

// TestParseTraceRejects pins the format validation surface.
func TestParseTraceRejects(t *testing.T) {
	for name, body := range map[string]string{
		"wrong version":  `{"version":2,"name":"x","requests":[{"arrival_ms":0,"job":{"op":"gemm"}}]}`,
		"no version":     `{"name":"x","requests":[{"arrival_ms":0,"job":{"op":"gemm"}}]}`,
		"empty":          `{"version":1,"name":"x"}`,
		"unnamed scen":   `{"version":1,"name":"x","scenarios":[{"count":1,"job":{"op":"gemm"}}]}`,
		"zero count":     `{"version":1,"name":"x","scenarios":[{"name":"s","count":0,"job":{"op":"gemm"}}]}`,
		"both timings":   `{"version":1,"name":"x","scenarios":[{"name":"s","count":1,"interval_ms":1,"rate_rps":5,"job":{"op":"gemm"}}]}`,
		"negative time":  `{"version":1,"name":"x","requests":[{"arrival_ms":-1,"job":{"op":"gemm"}}]}`,
		"over the limit": `{"version":1,"name":"x","scenarios":[{"name":"s","count":999999,"job":{"op":"gemm"}}]}`,
	} {
		if _, err := ParseTrace([]byte(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestExpandRejectsBadJob: a trace whose job cannot resolve fails at
// expansion with the scenario named, not as mid-replay 400s.
func TestExpandRejectsBadJob(t *testing.T) {
	tr, err := ParseTrace([]byte(
		`{"version":1,"name":"x","scenarios":[{"name":"bad","count":1,"job":{"op":"gemm","arch":"nope","m":8,"n":8,"k":8}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Expand(1); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Errorf("expand error %v, want one naming scenario %q", err, "bad")
	}
}

func replayOnce(t *testing.T, s *Server, tr *Trace, seed uint64) *ReplayReport {
	t.Helper()
	rep := &Replayer{
		Client: InProcClient(s.Handler()),
		Base:   "http://test.replay",
		Speed:  1000, // compress the tiny offsets to near-zero wall time
	}
	report, err := rep.Replay(context.Background(), tr, seed)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestReplayDeterminism is the tentpole's acceptance pin: the same trace
// and seed, replayed against two fresh daemons, produce identical
// deterministic report fields — per-scenario counts, warm/cold split and
// the result digests — even though wall-clock latencies differ.
func TestReplayDeterminism(t *testing.T) {
	tr := parseTestTrace(t)
	r1 := replayOnce(t, stubServer(t, Config{Workers: 4, QueueDepth: 32}), tr, 7)
	r2 := replayOnce(t, stubServer(t, Config{Workers: 4, QueueDepth: 32}), tr, 7)

	if r1.Digest != r2.Digest {
		t.Errorf("digests differ: %s vs %s", r1.Digest, r2.Digest)
	}
	if r1.Requests != r2.Requests || r1.Completed != r2.Completed ||
		r1.Warm != r2.Warm || r1.Cold != r2.Cold ||
		r1.Rejected != r2.Rejected || r1.Failed != r2.Failed {
		t.Errorf("counts differ:\n%+v\nvs\n%+v", r1, r2)
	}
	if len(r1.Scenarios) != len(r2.Scenarios) {
		t.Fatalf("scenario counts differ: %d vs %d", len(r1.Scenarios), len(r2.Scenarios))
	}
	for i := range r1.Scenarios {
		a, b := r1.Scenarios[i], r2.Scenarios[i]
		if a.Name != b.Name || a.Digest != b.Digest || a.Requests != b.Requests ||
			a.Warm != b.Warm || a.Cold != b.Cold {
			t.Errorf("scenario %s differs: %+v vs %+v", a.Name, a, b)
		}
	}

	// The deterministic shape itself: 11 requests, all completed. The
	// repeat scenario plus the solo request share one key -> exactly one
	// cold run among those 5; the scan contributes 3 colds, poisson 1.
	if r1.Requests != 11 || r1.Completed != 11 || r1.Failed != 0 || r1.Rejected != 0 {
		t.Errorf("unexpected outcome counts: %+v", r1)
	}
	if r1.Cold != 5 || r1.Warm != 6 {
		t.Errorf("warm/cold split %d/%d, want 6/5", r1.Warm, r1.Cold)
	}
}

// TestReplayAgainstRealServer runs the bundled-trace shape end to end
// with the real simulator, checking report integrity invariants.
func TestReplayAgainstRealServer(t *testing.T) {
	s, err := New(Config{Workers: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	tr := parseTestTrace(t)
	report := replayOnce(t, s, tr, 1)
	if report.Completed != 11 || report.Failed != 0 {
		t.Fatalf("report: %+v", report)
	}
	if !(report.Latency.P99Ms >= report.Latency.P50Ms) {
		t.Errorf("p99 %g < p50 %g", report.Latency.P99Ms, report.Latency.P50Ms)
	}
	if report.Latency.Count != 11 {
		t.Errorf("latency over %d samples, want 11 (successes only)", report.Latency.Count)
	}
	var simP99 time.Duration = time.Duration(report.SimTime.P99Ms * float64(time.Millisecond))
	if simP99 <= 0 {
		t.Error("sim-time split is empty on a cold replay")
	}
	// A second replay against the same (now warm) server: everything warm,
	// same digest — the cache replays the identical bytes.
	again := replayOnce(t, s, tr, 1)
	if again.Cold != 0 || again.Warm != 11 {
		t.Errorf("second replay warm/cold = %d/%d, want 11/0", again.Warm, again.Cold)
	}
	if again.Digest != report.Digest {
		t.Error("warm replay digest differs from cold replay")
	}
	if !(again.WarmRate > 0.99) {
		t.Errorf("warm rate %g, want ~1", again.WarmRate)
	}
}

// TestReplayCountsRejections: a server with no capacity rejects; the
// report routes 429s to Rejected, never into the latency distribution.
func TestReplayCountsRejections(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 0})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	s.run = func(ctx context.Context, j *job, progress progressFn) (*Result, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &Result{Key: j.key}, nil
	}
	// 6 distinct jobs all at t=0 against 1 worker + 0 queue: 1 admitted
	// (stuck), 5 rejected. Release on cleanup.
	var reqs []string
	for k := 16; k < 22; k++ {
		reqs = append(reqs, fmt.Sprintf(
			`{"arrival_ms":0,"job":{"op":"gemm","arch":"maeri","ms":16,"bw":16,"m":8,"n":8,"k":%d,"seed":1}}`, k))
	}
	tr, err := ParseTrace([]byte(
		`{"version":1,"name":"flood","requests":[` + strings.Join(reqs, ",") + `]}`))
	if err != nil {
		t.Fatal(err)
	}
	rep := &Replayer{
		Client:  InProcClient(s.Handler()),
		Base:    "http://test.replay",
		Speed:   1000,
		Timeout: 300 * time.Millisecond, // the one admitted job times out
	}
	report, err := rep.Replay(context.Background(), tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.Rejected < 4 {
		t.Errorf("rejected %d, want >= 4 of 6", report.Rejected)
	}
	if report.Rejected+report.Failed+report.Completed != 6 {
		t.Errorf("outcomes do not partition: %+v", report)
	}
	if report.Latency.Count != uint64(report.Completed) {
		t.Errorf("latency samples %d != completed %d: failures leaked into the distribution",
			report.Latency.Count, report.Completed)
	}
}

// TestReplayEndpoint drives POST /replay: an inline trace replayed
// against the daemon's own serving path.
func TestReplayEndpoint(t *testing.T) {
	s := stubServer(t, Config{Workers: 4, QueueDepth: 32})
	client := InProcClient(s.Handler())
	body := fmt.Sprintf(`{"trace": %s, "seed": 7, "speed": 1000}`, testTraceJSON)
	resp, err := client.Post("http://test.replay/replay", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var report ReplayReport
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if report.Requests != 11 || report.Completed != 11 {
		t.Errorf("endpoint report: %+v", report)
	}
	if len(report.Scenarios) != 4 {
		t.Errorf("%d scenarios, want 4 (solo, repeat, scan, poisson)", len(report.Scenarios))
	}

	// Bad requests: no trace, wrong version, GET.
	for name, b := range map[string]string{
		"no trace":      `{"seed":1}`,
		"wrong version": `{"trace":{"version":9,"name":"x","requests":[{"arrival_ms":0,"job":{"op":"gemm"}}]}}`,
	} {
		resp, err := client.Post("http://test.replay/replay", "application/json", strings.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp2, err := client.Get("http://test.replay/replay")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /replay: status %d, want 405", resp2.StatusCode)
	}
}
