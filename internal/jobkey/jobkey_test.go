package jobkey_test

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/jobkey"
	"repro/internal/mapper"
	"repro/internal/sim"
	"repro/internal/tensor"

	_ "repro/internal/engine" // register the architectures
)

// gemmJob is the fully-spelled-out reference job the golden vectors pin.
func gemmJob() jobkey.Job {
	return jobkey.Job{
		Arch:     "maeri",
		Contract: jobkey.Contract{RelTol: 1e-5},
		HW:       config.MAERILike(64, 16),
		Op:       jobkey.OpGEMM,
		M:        32, N: 32, K: 64,
		Seed:  1,
		Batch: 1,
	}
}

// TestGoldenVectors pins canonical-encoding equality across different
// spellings of the same job, and the exact canonical form of the reference
// job so accidental encoding changes surface as a named failure.
func TestGoldenVectors(t *testing.T) {
	ref := gemmJob()
	refKey, err := ref.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// Spelling variants that must all collide with the reference:
	variants := map[string]jobkey.Job{}

	v := gemmJob()
	v.Batch = 0 // defaulted batch
	variants["zero batch"] = v

	v = gemmJob()
	v.Op = " GEMM " // case/space-insensitive op
	variants["op spelling"] = v

	v = gemmJob()
	v.HW.DisableFastForward = true // bit-exact knob, erased by Normalize
	variants["fast-forward disabled"] = v

	v = gemmJob()
	v.Policy = "LFF" // scheduling policy is meaningless outside spmm
	v.Sparsity = 0.9
	variants["non-spmm policy"] = v

	v = gemmJob()
	v.Conv = tensor.ConvShape{R: 3, S: 3, C: 8, G: 1, K: 8, N: 1, X: 8, Y: 8, Stride: 1}
	v.Tile = &mapper.Tile{TR: 1}
	variants["non-conv shape"] = v

	v = gemmJob()
	v.Model = "B"
	v.Scale = 32
	v.Chip = jobkey.Chip{Cores: 4, Placement: "batch", Banks: 16, Streams: 8}
	variants["non-model chip options"] = v

	for name, variant := range variants {
		k, err := variant.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k != refKey {
			t.Errorf("%s: key %s differs from the reference %s", name, k, refKey)
		}
	}

	// Semantic differences that must all separate from the reference:
	diffs := map[string]jobkey.Job{}

	v = gemmJob()
	v.Seed = 2
	diffs["seed"] = v

	v = gemmJob()
	v.K = 65
	diffs["shape"] = v

	v = gemmJob()
	v.Contract.RelTol = 2e-5 // a re-specified numeric contract must miss
	diffs["numeric contract"] = v

	v = gemmJob()
	v.Contract.ExactSum = true
	diffs["contract exactness"] = v

	v = gemmJob()
	v.HW.FIFODepth++
	diffs["hardware fifo"] = v

	v = gemmJob()
	v.HW.DRAM.BandwidthGBs = 128
	diffs["hardware dram"] = v

	v = gemmJob()
	v.HW.Preloaded = true
	diffs["preloaded"] = v

	v = gemmJob()
	v.Batch = 2
	diffs["batch"] = v

	v = gemmJob()
	v.Arch = "sigma"
	diffs["arch name"] = v

	seen := map[jobkey.Key]string{refKey: "reference"}
	for name, d := range diffs {
		k, err := d.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("%s: key collides with %s", name, prev)
		}
		seen[k] = name
	}

	// The canonical encoding itself is the golden artifact: sorted field
	// paths, no runtime-only fields, shortest-round-trip floats.
	canon, err := ref.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"job.Arch=\"maeri\"\n",
		"job.Contract.RelTol=1e-05\n",
		"job.HW.DRAM.BandwidthGBs=256\n",
		"job.Seed=1\n",
		"job.Tile=nil\n",
	} {
		if !strings.Contains(canon, want) {
			t.Errorf("canonical encoding missing %q:\n%s", want, canon)
		}
	}
	if strings.Contains(canon, "Trace") || strings.Contains(canon, "SharedMem") {
		t.Errorf("canonical encoding leaks runtime-only fields:\n%s", canon)
	}
	// Lines must come out sorted within each struct: a stable order is what
	// makes the encoding independent of declaration/request field order.
	lines := strings.Split(strings.TrimSpace(canon), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("canonical lines not strictly sorted: %q >= %q", lines[i-1], lines[i])
		}
	}
}

// TestChipNormalization pins the chip-options canonicalization: on a
// single core the placement/banks/link knobs are dead and must not feed
// the key; on a multi-core chip they are live and must.
func TestChipNormalization(t *testing.T) {
	base := jobkey.Job{
		Arch: "maeri", HW: config.MAERILike(64, 16),
		Op: jobkey.OpModel, Model: "B", Seed: 1,
		Chip: jobkey.Chip{Cores: 1, Streams: 1},
	}
	k0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	dead := base
	dead.Chip = jobkey.Chip{Cores: 0, Placement: "batch", Banks: 32, LinkGBs: 7, Streams: 0}
	if k, _ := dead.Hash(); k != k0 {
		t.Errorf("dead chip knobs changed the 1-core key: %s vs %s", k, k0)
	}

	// Scale 1 is the canonical full-size spelling; any other scale is a
	// different model.
	fullSize := base
	fullSize.Scale = 1
	if k, _ := fullSize.Hash(); k != k0 {
		t.Errorf("explicit scale 1 diverges from the omitted spelling: %s vs %s", k, k0)
	}
	scaled := base
	scaled.Scale = 32
	if k, _ := scaled.Hash(); k == k0 {
		t.Error("scaled model collides with the full-size job")
	}

	multi := base
	multi.Chip = jobkey.Chip{Cores: 4, Streams: 4}
	km, err := multi.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if km == k0 {
		t.Error("4-core chip collides with the 1-core job")
	}
	// "" and "layer" are the same placement; explicit default banks match
	// the omitted spelling.
	multiDefaults := base
	multiDefaults.Chip = jobkey.Chip{Cores: 4, Placement: "layer", Banks: 8, Streams: 4}
	if k, _ := multiDefaults.Hash(); k != km {
		t.Errorf("defaulted multi-core spellings diverge: %s vs %s", k, km)
	}
	for name, mutate := range map[string]func(*jobkey.Chip){
		"placement": func(c *jobkey.Chip) { c.Placement = "batch" },
		"banks":     func(c *jobkey.Chip) { c.Banks = 16 },
		"streams":   func(c *jobkey.Chip) { c.Streams = 8 },
		"link":      func(c *jobkey.Chip) { c.LinkGBs = 64 },
	} {
		v := multi
		mutate(&v.Chip)
		if k, _ := v.Hash(); k == km {
			t.Errorf("multi-core %s change did not change the key", name)
		}
	}
}

// TestRejectsUnknownOp pins strictness: junk never hashes.
func TestRejectsUnknownOp(t *testing.T) {
	j := gemmJob()
	j.Op = "matmul"
	if _, err := j.Hash(); err == nil {
		t.Error("unknown op hashed")
	}
	j = gemmJob()
	j.Arch = ""
	if _, err := j.Hash(); err == nil {
		t.Error("architecture-less job hashed")
	}
}

// caseJob converts one differential-sweep case into the serving layer's
// key material, exactly as the serve package does for a request.
func caseJob(t *testing.T, c check.Case) jobkey.Job {
	t.Helper()
	hw, err := c.HW()
	if err != nil {
		t.Fatalf("%s: %v", c, err)
	}
	arch, ok := sim.Lookup(c.Arch)
	if !ok {
		t.Fatalf("%s: unregistered arch", c)
	}
	j := jobkey.Job{
		Arch: c.Arch,
		Contract: jobkey.Contract{
			ExactSum:           arch.Contract.ExactSum,
			RelTol:             arch.Contract.RelTol,
			PostActivationConv: arch.Contract.PostActivationConv,
		},
		HW:   hw,
		Seed: c.Seed,
	}
	switch c.Op {
	case check.OpConv:
		j.Op, j.Conv = jobkey.OpConv, c.CS
	case check.OpSparse:
		j.Op = jobkey.OpSpMM
		j.M, j.N, j.K = c.M, c.N, c.K
		j.Sparsity, j.Policy = c.Sparsity, c.Policy.String()
	default:
		j.Op = jobkey.OpGEMM
		j.M, j.N, j.K = c.M, c.N, c.K
	}
	return j
}

// TestSweepCasesHashDistinct asserts every pair of the 96-case
// differential-sweep grid hashes differently — the separation half of the
// canonicalization contract over a corpus of real jobs. The sweep's seeds
// are per-case, so the test also re-checks with the seed normalized away:
// the shapes, policies and architectures alone must still separate every
// pair.
func TestSweepCasesHashDistinct(t *testing.T) {
	cases := check.SweepCases()
	if len(cases) < 96 {
		t.Fatalf("sweep grid shrank to %d cases", len(cases))
	}
	for _, zeroSeed := range []bool{false, true} {
		seen := make(map[jobkey.Key]string, len(cases))
		for _, c := range cases {
			j := caseJob(t, c)
			if zeroSeed {
				j.Seed = 0
			}
			k, err := j.Hash()
			if err != nil {
				t.Fatalf("%s: %v", c, err)
			}
			if prev, dup := seen[k]; dup {
				t.Errorf("zeroSeed=%t: %s collides with %s", zeroSeed, c, prev)
			}
			seen[k] = c.String()
		}
	}
}
