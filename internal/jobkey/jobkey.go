// Package jobkey computes canonical, content-addressed keys for simulation
// jobs. Every run of this simulator is a pure function of its inputs — the
// parity and differential suites pin bit-determinism per architecture — so
// two jobs with the same key are guaranteed to produce byte-identical
// results, which is what makes the serving layer's result cache sound.
//
// The key is a SHA-256 over a canonical text encoding of the normalized
// job. Canonicalization is strict in both directions:
//
//   - Two spellings of the same job collide: struct fields are emitted in
//     sorted-name order (so the encoding never depends on declaration or
//     request-body field order), defaulted fields are filled in by
//     Normalize before hashing, and knobs proven not to affect results
//     (fast-forward, which is bit-exact by differential test) are erased.
//   - Any semantic difference separates: the encoding covers the resolved
//     architecture name and its NumericContract, the complete hardware
//     description (every exported, serializable field — new fields are
//     picked up automatically by reflection), the operation shape, the
//     explicit tile if any, the data seed, and the chip composition.
//
// Runtime-only fields tagged `json:"-"` (trace hooks, shared-memory ports)
// are excluded: they carry callbacks, not semantics.
package jobkey

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/mapper"
	"repro/internal/mem"
	"repro/internal/tensor"
)

// Key is the content address of a job: the hex SHA-256 of its canonical
// encoding.
type Key string

// Contract mirrors sim.NumericContract without importing the registry
// (jobkey sits below sim so both the serve layer and tests can use it
// freely). A changed contract means the architecture's numeric behaviour
// was re-specified, so it must change the key even when nothing else did.
type Contract struct {
	ExactSum           bool
	RelTol             float64
	PostActivationConv bool
}

// Chip is the multi-core composition part of a job: how many cores, the
// placement policy, and the shared-DRAM shape — the placement/banks
// component of the cache key for chip runs.
type Chip struct {
	Cores     int
	Placement string
	Banks     int
	LinkGBs   float64
	Streams   int
}

// Operation names a Job accepts.
const (
	OpGEMM  = "gemm"
	OpConv  = "conv"
	OpSpMM  = "spmm"
	OpModel = "model"
)

// Job is everything that determines a simulation's result. Build one from
// resolved values (after presets and defaults are applied), then call Key.
type Job struct {
	// Arch is the registered architecture name serving HW, and Contract its
	// numeric contract from the registry.
	Arch     string
	Contract Contract

	// HW is the complete hardware description the job runs on.
	HW config.Hardware

	// Op selects the operation: OpGEMM, OpConv, OpSpMM or OpModel.
	Op string

	// M, N, K are the GEMM/SpMM dims (ignored for conv/model).
	M, N, K int
	// Conv is the convolution shape (OpConv only).
	Conv tensor.ConvShape
	// Sparsity and Policy parameterize OpSpMM: the fraction of zeros pruned
	// into the stationary operand and the filter-scheduling policy name.
	Sparsity float64
	Policy   string
	// Tile, when non-nil, is an explicit dense-controller tile overriding
	// the mapper (OpConv only).
	Tile *mapper.Tile

	// Seed derives the deterministic random operand data.
	Seed uint64
	// Batch runs seeds Seed..Seed+Batch-1 as independent jobs whose runs
	// are all part of the result.
	Batch int

	// Model is the built-in model short tag (OpModel only).
	Model string
	// Scale divides the model's spatial dimensions (OpModel only; 1 runs
	// the full-size model).
	Scale int
	// Chip is the chip composition (OpModel only; a single core with one
	// stream is the canonical non-chip form).
	Chip Chip
}

// Normalize returns the canonical form of the job: defaults filled in,
// fields that cannot affect this operation's result zeroed, and
// result-neutral knobs erased. Two requests that spell the same job
// differently normalize to identical values — the collision half of the
// canonicalization contract.
func (j Job) Normalize() Job {
	j.Op = strings.ToLower(strings.TrimSpace(j.Op))
	if j.Batch < 1 {
		j.Batch = 1
	}
	// Fast-forward is bit-exact (pinned by the fastforward-vs-ticked
	// differential sweep), so a run with it disabled produces the same
	// bytes: erase the knob. Trace and SharedMem are runtime-only and are
	// already excluded from the encoding by their json:"-" tags.
	j.HW.DisableFastForward = false

	switch j.Op {
	case OpSpMM:
		j.Policy = strings.ToUpper(strings.TrimSpace(j.Policy))
		if j.Policy == "" {
			j.Policy = "NS"
		}
	default:
		// Scheduling policy only steers the sparse controller.
		j.Sparsity, j.Policy = 0, ""
	}
	if j.Op != OpConv {
		j.Conv = tensor.ConvShape{}
		j.Tile = nil
	}
	if j.Op != OpGEMM && j.Op != OpSpMM {
		j.M, j.N, j.K = 0, 0, 0
	}
	if j.Op != OpModel {
		j.Model = ""
		j.Scale = 0
		j.Chip = Chip{}
	} else {
		if j.Scale < 1 {
			j.Scale = 1
		}
		if j.Chip.Cores < 1 {
			j.Chip.Cores = 1
		}
		if j.Chip.Streams < 1 {
			j.Chip.Streams = 1
		}
		if j.Chip.Cores == 1 {
			// A 1-core chip builds no shared memory system at all: the
			// placement, bank count and link override have no effect.
			j.Chip.Placement, j.Chip.Banks, j.Chip.LinkGBs = "", 0, 0
		} else {
			if j.Chip.Placement == "" {
				j.Chip.Placement = "layer"
			}
			if j.Chip.Banks <= 0 {
				j.Chip.Banks = mem.DefaultBanks
			}
			if j.Chip.LinkGBs <= 0 {
				j.Chip.LinkGBs = 0 // canonical "derive from the configuration"
			}
		}
		// Model runs take their shapes from the model description.
		j.M, j.N, j.K = 0, 0, 0
	}
	return j
}

// validOps is the closed set Canonical accepts; anything else is a caller
// bug surfaced as an error, never a silently-hashed junk key.
var validOps = map[string]bool{OpGEMM: true, OpConv: true, OpSpMM: true, OpModel: true}

// Canonical returns the normalized job's canonical text encoding — the
// exact bytes the key hashes, exposed for golden tests and debugging.
func (j Job) Canonical() (string, error) {
	n := j.Normalize()
	if !validOps[n.Op] {
		return "", fmt.Errorf("jobkey: unknown op %q", n.Op)
	}
	if n.Arch == "" {
		return "", fmt.Errorf("jobkey: job has no architecture name")
	}
	var b strings.Builder
	if err := appendValue(&b, "job", reflect.ValueOf(n)); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Hash computes the job's content address.
func (j Job) Hash() (Key, error) {
	c, err := j.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(c))
	return Key(hex.EncodeToString(sum[:])), nil
}

// appendValue writes one canonical `path=value` line per scalar reachable
// from v. Struct fields are visited in sorted-name order; fields tagged
// `json:"-"` and unexported fields are skipped. Unsupported kinds (func,
// chan, unsafe pointers) are an error: silently skipping them would let a
// future semantic field escape the key.
func appendValue(b *strings.Builder, path string, v reflect.Value) error {
	switch v.Kind() {
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			fmt.Fprintf(b, "%s=nil\n", path)
			return nil
		}
		return appendValue(b, path, v.Elem())
	case reflect.Struct:
		t := v.Type()
		type field struct {
			name string
			idx  int
		}
		fields := make([]field, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			if tag, _, _ := strings.Cut(f.Tag.Get("json"), ","); tag == "-" {
				continue // runtime-only state, never serialized
			}
			fields = append(fields, field{f.Name, i})
		}
		sort.Slice(fields, func(a, z int) bool { return fields[a].name < fields[z].name })
		for _, f := range fields {
			if err := appendValue(b, path+"."+f.name, v.Field(f.idx)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Map:
		if v.Type().Key().Kind() != reflect.String {
			return fmt.Errorf("jobkey: cannot canonicalize map with %s keys at %s", v.Type().Key(), path)
		}
		keys := make([]string, 0, v.Len())
		for _, k := range v.MapKeys() {
			keys = append(keys, k.String())
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := appendValue(b, path+"["+strconv.Quote(k)+"]", v.MapIndex(reflect.ValueOf(k))); err != nil {
				return err
			}
		}
		return nil
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(b, "%s.len=%d\n", path, v.Len())
		for i := 0; i < v.Len(); i++ {
			if err := appendValue(b, fmt.Sprintf("%s[%d]", path, i), v.Index(i)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Bool:
		fmt.Fprintf(b, "%s=%t\n", path, v.Bool())
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(b, "%s=%d\n", path, v.Int())
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fmt.Fprintf(b, "%s=%d\n", path, v.Uint())
		return nil
	case reflect.Float32, reflect.Float64:
		// 'g'/-1 is the shortest exact round-trip form: equal floats encode
		// identically, distinct floats never collide.
		fmt.Fprintf(b, "%s=%s\n", path, strconv.FormatFloat(v.Float(), 'g', -1, 64))
		return nil
	case reflect.String:
		fmt.Fprintf(b, "%s=%s\n", path, strconv.Quote(v.String()))
		return nil
	default:
		return fmt.Errorf("jobkey: cannot canonicalize %s at %s", v.Kind(), path)
	}
}
