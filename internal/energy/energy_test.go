package energy

import (
	"math"
	"sort"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

func TestAreaFractionsMatchPaper(t *testing.T) {
	// The Fig. 5c calibration targets at 256 MS / 108 KB GB: the Global
	// Buffer is 70% of the MAERI-like total, 77% of SIGMA-like, 82% of
	// TPU-like (±2 points).
	cases := []struct {
		hw   config.Hardware
		want float64
	}{
		{config.MAERILike(256, 128), 0.70},
		{config.SIGMALike(256, 128), 0.77},
		{config.TPULike(256), 0.82},
	}
	for _, c := range cases {
		br := Area(&c.hw)
		total := TotalArea(&c.hw)
		got := br["GB"] / total
		if math.Abs(got-c.want) > 0.02 {
			t.Errorf("%s: GB area fraction %.3f, want %.2f", c.hw.Name, got, c.want)
		}
	}
}

func TestAreaOrdering(t *testing.T) {
	tpu := config.TPULike(256)
	maeri := config.MAERILike(256, 128)
	sigma := config.SIGMALike(256, 128)
	at, am, as := TotalArea(&tpu), TotalArea(&maeri), TotalArea(&sigma)
	// Paper Section VI-A: TPU smallest, MAERI largest.
	if !(at < as && as < am) {
		t.Errorf("area ordering wrong: TPU %.0f, SIGMA %.0f, MAERI %.0f", at, am, as)
	}
}

func TestApplyBreakdown(t *testing.T) {
	hw := config.MAERILike(64, 16)
	run := &stats.Run{
		Cycles: 1000,
		Counters: map[string]uint64{
			"mn.mults":           5000,
			"rn.adders_3to1":     2500,
			"gb.reads":           3000,
			"dn.link_traversals": 4000,
			"unknown.counter":    999999, // uncosted: ignored
		},
	}
	tab := DefaultTable()
	tab.Apply(run, &hw)
	for _, comp := range []string{"GB", "DN", "MN", "RN"} {
		if run.Energy[comp] <= 0 {
			t.Errorf("component %s has no energy", comp)
		}
	}
	// RN must dominate with these counts (the Fig. 5b shape).
	if run.Energy["RN"] < run.Energy["MN"] || run.Energy["RN"] < run.Energy["DN"] {
		t.Errorf("RN does not dominate: %v", run.Energy)
	}
}

// TestApplyDeterministic is the regression test for map-order float drift:
// Apply used to accumulate per-component energy in Go's randomized map
// iteration order, so the last bits of the totals varied between identical
// runs — and between runs whose counter sets differ only by uncosted
// bookkeeping entries — breaking the bit-determinism the serving layer's
// result cache keys on. Many RN counters land in one component with
// magnitudes picked so the sum is order-sensitive at the last bit.
func TestApplyDeterministic(t *testing.T) {
	hw := config.MAERILike(64, 16)
	tab := DefaultTable()
	counters := map[string]uint64{
		"rn.adders_lrn":   1,
		"rn.adders_3to1":  3,
		"rn.adders_fan":   7919,
		"rn.acc_accesses": 1000003,
		"rn.outputs":      17,
	}
	base := &stats.Run{Cycles: 123, Counters: counters}
	tab.Apply(base, &hw)
	for i := 0; i < 100; i++ {
		run := &stats.Run{Cycles: 123, Counters: map[string]uint64{}}
		for k, v := range counters {
			run.Counters[k] = v
		}
		if i%2 == 1 {
			// Extra uncosted counters (what a progress-traced run carries)
			// must not perturb the sum either.
			run.Counters["trace.progress_events"] = uint64(i)
			run.Counters["ctrl.dram_wait_cycles"] = 42
		}
		tab.Apply(run, &hw)
		for comp, want := range base.Energy {
			if got := run.Energy[comp]; got != want {
				t.Fatalf("iteration %d: %s energy %v != %v (bit drift)", i, comp, got, want)
			}
		}
		if len(run.Energy) != len(base.Energy) {
			t.Fatalf("iteration %d: component sets diverged: %v vs %v", i, run.Energy, base.Energy)
		}
	}
}

func TestStaticEnergyScalesWithCycles(t *testing.T) {
	hw := config.SIGMALike(128, 64)
	tab := DefaultTable()
	short := &stats.Run{Cycles: 100, Counters: map[string]uint64{}}
	long := &stats.Run{Cycles: 10000, Counters: map[string]uint64{}}
	tab.Apply(short, &hw)
	tab.Apply(long, &hw)
	if long.TotalEnergy() <= short.TotalEnergy() {
		t.Error("static energy does not scale with cycles")
	}
	ratio := long.TotalEnergy() / short.TotalEnergy()
	if math.Abs(ratio-100) > 1 {
		t.Errorf("static-only energy ratio %v, want 100", ratio)
	}
}

func TestComponentOf(t *testing.T) {
	cases := map[string]string{
		"gb.reads":      "GB",
		"dn.injections": "DN",
		"mn.mults":      "MN",
		"rn.outputs":    "RN",
		"dram.reads":    "DRAM",
		"snapea.cuts":   "CTRL",
		"ctrl.reload":   "CTRL",
		"noprefix":      "CTRL",
	}
	for counter, want := range cases {
		if got := componentOf(counter); got != want {
			t.Errorf("componentOf(%q) = %q, want %q", counter, got, want)
		}
	}
}

func TestApplyModel(t *testing.T) {
	hw := config.TPULike(64)
	mr := &stats.ModelRun{Runs: []*stats.Run{
		{Cycles: 10, Counters: map[string]uint64{"mn.mults": 100}},
		{Cycles: 20, Counters: map[string]uint64{"mn.mults": 200}},
	}}
	DefaultTable().ApplyModel(mr, &hw)
	if mr.TotalEnergy() <= 0 {
		t.Error("model energy not applied")
	}
	br := mr.EnergyBreakdown()
	if br["MN"] <= 0 {
		t.Error("MN missing from model breakdown")
	}
}

func TestStalledStatic(t *testing.T) {
	hw := config.MAERILike(128, 64)
	tab := DefaultTable()

	// Untraced run: no breakdown, no report.
	if got := tab.StalledStatic(&stats.Run{Cycles: 100}, &hw); got != nil {
		t.Errorf("untraced run produced a stalled-static report: %v", got)
	}

	run := &stats.Run{
		Cycles: 1000,
		Breakdown: map[string]stats.CycleBreakdown{
			"DN":  {Busy: 600, StallBandwidth: 400},
			"MN":  {Busy: 1000},
			"RN":  {Busy: 250, StallInput: 750},
			"MEM": {Busy: 500, Idle: 500},
		},
	}
	got := tab.StalledStatic(run, &hw)
	perMS := tab.StaticPJPerCyclePerMS * float64(hw.MSSize)
	want := map[string]float64{
		"DN":  perMS * 0.2 * 400 * 1e-6,
		"MN":  0, // fully busy: nothing wasted
		"RN":  perMS * 0.4 * 750 * 1e-6,
		"MEM": tab.StaticPJPerCycleGBKB * float64(hw.GBSizeKB) * 500 * 1e-6,
	}
	for tier, w := range want {
		if math.Abs(got[tier]-w) > 1e-12 {
			t.Errorf("%s: %v µJ, want %v", tier, got[tier], w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("tiers: %v", got)
	}
}

// TestTotalAreaDeterministic pins TotalArea's sorted-component walk: the
// total must be bit-identical across calls (a map-iteration-order sum can
// differ in the last bits between otherwise identical invocations).
func TestTotalAreaDeterministic(t *testing.T) {
	hw := config.MAERILike(64, 16)
	br := Area(&hw)
	keys := make([]string, 0, len(br))
	for k := range br {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var want float64
	for _, k := range keys {
		want += br[k]
	}
	for i := 0; i < 50; i++ {
		if got := TotalArea(&hw); got != want {
			t.Fatalf("call %d: TotalArea = %v, want sorted-order sum %v", i, got, want)
		}
	}
}
