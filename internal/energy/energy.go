// Package energy implements the table-based energy and area models of the
// Output Module (Section III): activity counts from the counter file are
// multiplied by per-event energy costs, and area is summed from
// per-component costs — the same methodology STONNE borrows from Accelergy.
//
// The original tool derived its tables from Synopsys Design-Compiler
// synthesis and Cadence Innovus place-and-route of the MAERI/SIGMA/TPU RTL
// at 28nm. We cannot re-run those flows, so the tables below are
// calibrated to reproduce the published *shapes*: the reduction network
// dominating dynamic energy (84%/58%/43% of TPU/MAERI/SIGMA, Fig. 5b) and
// the SRAM-dominated area split (the Global Buffer is 70%/77%/82% of the
// MAERI/SIGMA/TPU totals, Fig. 5c). The derivation of each constant is
// commented next to it.
package energy

import (
	"math"
	"sort"

	"repro/internal/comp/names"
	"repro/internal/config"
	"repro/internal/stats"
)

// Table holds per-event dynamic energy costs in picojoules and per-cycle
// static power shares. Costs are for the paper's FP8 datatype at 28nm/1GHz.
type Table struct {
	PerEvent map[string]float64 // pJ per counted event
	// StaticPJPerCyclePerMS is leakage charged per multiplier switch per
	// cycle (covers its slice of all three networks).
	StaticPJPerCyclePerMS float64
	// StaticPJPerCycleGB is the Global Buffer leakage per cycle per KB.
	StaticPJPerCycleGBKB float64
}

// DefaultTable returns the FP8 table.
func DefaultTable() Table {
	return Table{
		PerEvent: map[string]float64{
			// Multiplier switches: an FP8 multiply plus operand latching.
			names.MNMults: 0.09,
			// Forwarding-link hop (register + short wire).
			names.MNForwards:    0.012,
			names.MNWeightLoads: 0.03,
			names.MNFifoPushes:  0.006,
			names.MNFifoPops:    0.006,

			// Reduction networks dominate the published breakdowns (84%,
			// 58% and 43% of the TPU/MAERI/SIGMA on-chip energy): each
			// event is an adder plus its pipeline register and the long
			// wires of the tree/chain level it drives. The three costs
			// are calibrated so the Fig. 5b shares come out at 256 MS.
			names.RNAddersLRN:   2.0,  // LRN accumulate: adder + psum register + drain chain slice
			names.RNAdders3to1:  3.0,  // ART 3:1 adder node + horizontal link
			names.RNAddersFAN:   1.42, // FAN 2:1 adder + forwarding mux
			names.RNAccAccesses: 0.12,
			names.RNOutputs:     0.08,

			// Distribution networks: per-link / per-switch traversals.
			names.DNLinkTraversals:   0.045, // tree or systolic edge
			names.DNSwitchTraversals: 0.03,  // Benes 2×2 switch hop
			names.DNInjections:       0.01,

			// Global buffer SRAM: per-element (FP8 byte) access.
			names.GBReads:     0.55,
			names.GBWrites:    0.65,
			names.GBMetaReads: 0.35,

			// Off-chip DRAM per-element transfer (amortized HBM2 energy).
			names.DRAMReads:  10.0,
			names.DRAMWrites: 10.0,

			// Control events.
			names.SNAPEASignChecks:   0.004,
			names.MNReconfigurations: 0.5,
			names.DRAMRowActivations: 2.0,
		},
		StaticPJPerCyclePerMS: 0.015,
		StaticPJPerCycleGBKB:  0.004,
	}
}

// componentOf maps a counter prefix to the breakdown component of Fig. 5b.
func componentOf(counter string) string {
	for i := 0; i < len(counter); i++ {
		if counter[i] == '.' {
			switch counter[:i] {
			case "gb":
				return "GB"
			case "dn":
				return "DN"
			case "mn":
				return "MN"
			case "rn":
				return "RN"
			case "dram":
				return "DRAM"
			default:
				return "CTRL"
			}
		}
	}
	return "CTRL"
}

// Apply fills run.Energy with the per-component dynamic + static energy in
// microjoules. Counters are accumulated in sorted-name order: float addition
// is not associative, so summing in Go's randomized map order would make the
// last bits of the totals differ from run to run (and between runs whose
// counter sets differ only by uncosted bookkeeping entries), breaking the
// bit-determinism the result cache keys on.
func (t Table) Apply(run *stats.Run, hw *config.Hardware) {
	counters := make([]string, 0, len(run.Counters))
	for counter := range run.Counters {
		counters = append(counters, counter)
	}
	sort.Strings(counters)
	br := map[string]float64{}
	for _, counter := range counters {
		cost, ok := t.PerEvent[counter]
		if !ok {
			continue // uncosted bookkeeping counters (stalls, waits)
		}
		br[componentOf(counter)] += cost * float64(run.Counters[counter])
	}
	// Static energy: charged to the component areas' owners.
	cycles := float64(run.Cycles)
	br["MN"] += t.StaticPJPerCyclePerMS * float64(hw.MSSize) * cycles * 0.4
	br["RN"] += t.StaticPJPerCyclePerMS * float64(hw.MSSize) * cycles * 0.4
	br["DN"] += t.StaticPJPerCyclePerMS * float64(hw.MSSize) * cycles * 0.2
	br["GB"] += t.StaticPJPerCycleGBKB * float64(hw.GBSizeKB) * cycles

	run.Energy = map[string]float64{}
	for k, v := range br {
		run.Energy[k] = v * 1e-6 // pJ → µJ
	}
}

// StalledStatic estimates how much of each component's static energy (in
// microjoules) was burned during non-busy cycles, using the run's per-tier
// cycle breakdown. It answers the Fig. 5-style question "how much leakage
// would a perfectly stall-free schedule save" — dynamic energy is activity
// driven and unaffected by stalls, so only the static share is attributed.
// Returns nil when the run carries no breakdown (untraced).
func (t Table) StalledStatic(run *stats.Run, hw *config.Hardware) map[string]float64 {
	if len(run.Breakdown) == 0 {
		return nil
	}
	// Per-cycle static rates, mirroring the component split in Apply.
	perMS := t.StaticPJPerCyclePerMS * float64(hw.MSSize)
	rates := map[string]float64{
		"DN":  perMS * 0.2,
		"MN":  perMS * 0.4,
		"RN":  perMS * 0.4,
		"MEM": t.StaticPJPerCycleGBKB * float64(hw.GBSizeKB),
	}
	out := map[string]float64{}
	for tier, b := range run.Breakdown {
		rate, ok := rates[tier]
		if !ok {
			continue
		}
		stalled := b.Total() - b.Busy
		out[tier] = rate * float64(stalled) * 1e-6 // pJ → µJ
	}
	return out
}

// ApplyModel fills energy for every run of a model aggregation.
func (t Table) ApplyModel(m *stats.ModelRun, hw *config.Hardware) {
	for _, r := range m.Runs {
		t.Apply(r, hw)
	}
}

// Area constants (µm², 28nm), derived so that a 256-MS fabric with the
// paper's 108-KB Global Buffer reproduces the published area fractions:
// the GB is 70% of the MAERI-like total, 77% of SIGMA-like and 82% of
// TPU-like (Section VI-A). SRAM density is taken as 450 µm²/KB.
const (
	areaSRAMPerKB = 450.0
	areaMult      = 25.0 // FP8 multiplier switch incl. operand FIFO
	areaTreeNode  = 18.0 // distribution-tree link+switch slice per MS
	areaARTNode   = 38.4 // 3:1 adder + horizontal link + accumulator slice
	areaFANNode   = 14.7 // 2:1 adder + forwarding mux slice
	areaLRNNode   = 14.7 // accumulation register + adder slice
	areaBenesSw   = 2.0  // one 2×2 Benes switch
	areaPoPNWire  = 2.0  // point-to-point wire slice per PE
)

// Area returns the per-component area breakdown in µm² for a hardware
// configuration.
func Area(hw *config.Hardware) map[string]float64 {
	ms := float64(hw.MSSize)
	br := map[string]float64{
		"GB": areaSRAMPerKB * float64(hw.GBSizeKB),
		"MN": areaMult * ms,
	}
	switch hw.DN {
	case config.TreeDN:
		br["DN"] = areaTreeNode * ms
	case config.BenesDN:
		levels := 2*math.Log2(ms) + 1
		br["DN"] = areaBenesSw * levels * ms / 2
	case config.PointToPointDN:
		br["DN"] = areaPoPNWire * ms
	}
	switch hw.RN {
	case config.ARTRN, config.ARTAccRN:
		br["RN"] = areaARTNode * ms
	case config.FANRN:
		br["RN"] = areaFANNode * ms
	case config.LinearRN:
		br["RN"] = areaLRNNode * ms
	}
	return br
}

// TotalArea sums the breakdown in sorted-component order so the float
// total is bit-identical across calls (map iteration order would perturb
// the last bits).
func TotalArea(hw *config.Hardware) float64 {
	br := Area(hw)
	keys := make([]string, 0, len(br))
	for k := range br {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var t float64
	for _, k := range keys {
		t += br[k]
	}
	return t
}
