package mem

import (
	"math"
	"testing"

	"repro/internal/comp"
	"repro/internal/comp/names"
	"repro/internal/config"
)

// TestSharedUncontendedMatchesPrivate pins the parity-critical shape of
// the shared model: a transfer on an idle shared system costs exactly what
// the private DRAM model charges for the same element count.
func TestSharedUncontendedMatchesPrivate(t *testing.T) {
	hw := testHW()
	for _, n := range []int{1, 100, 4096, 100_000} {
		priv := NewDRAM(hw, comp.NewCounters())
		want := priv.FetchCycles(n)

		s := mustShared(t, hw, 0, 0)
		start, completion := s.Serve(0, n)
		if start != 0 {
			t.Errorf("n=%d: idle system delayed the grant to %g", n, start)
		}
		if got := completion - start; math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d: shared uncontended cost %g, private cost %g", n, got, want)
		}
	}
}

// TestSharedContentionAndBanking pins the per-bank queueing model: with a
// bank free, concurrent transfers overlap fully; once in-flight transfers
// outnumber banks, the overflow queues behind the earliest grant; and a
// single bank serializes everything.
func TestSharedContentionAndBanking(t *testing.T) {
	hw := testHW()
	const n = 100_000

	banked := mustShared(t, hw, 8, 0)
	_, c1 := banked.Serve(0, n)
	for i := 0; i < 7; i++ {
		if s, _ := banked.Serve(0, n); s != 0 {
			t.Fatalf("transfer %d queued at %g with a bank free", i+2, s)
		}
	}
	s9, _ := banked.Serve(0, n) // ninth concurrent transfer: all banks busy
	if s9 != c1 {
		t.Errorf("overflow transfer started at %g, want the first bank to free at %g", s9, c1)
	}

	single := mustShared(t, hw, 1, 0)
	_, c1s := single.Serve(0, n)
	s2s, _ := single.Serve(0, n)
	if s2s != c1s {
		t.Errorf("1 bank: second transfer started at %g, want serialized behind the first at %g", s2s, c1s)
	}
}

// TestSharedLinkBandwidthKnob pins the configurable link: a narrower link
// lengthens the stream component of every transfer.
func TestSharedLinkBandwidthKnob(t *testing.T) {
	hw := testHW()
	full := mustShared(t, hw, 1, 0)
	_, cFull := full.Serve(0, 1<<16)
	halfGBs := hw.DRAM.BandwidthGBs * float64(hw.DRAM.Modules) / 2
	half := mustShared(t, hw, 1, halfGBs)
	_, cHalf := half.Serve(0, 1<<16)
	if cHalf <= cFull {
		t.Errorf("half-bandwidth link not slower: %g vs %g", cHalf, cFull)
	}
}

// TestCorePortMirrorsPrivateCounters pins the Port contract on an idle
// system: a core port's blocking fetch accounts the same dram.* counters
// and returns the same duration as a private DRAM.
func TestCorePortMirrorsPrivateCounters(t *testing.T) {
	hw := testHW()
	const n = 50_000

	pc := comp.NewCounters()
	priv := NewDRAM(hw, pc)
	wantDur := priv.FetchCycles(n)

	s := mustShared(t, hw, 0, 0)
	cc := comp.NewCounters()
	port := NewCorePort(s, 0).Port(cc)
	if got := port.FetchCycles(n); math.Abs(got-wantDur) > 1e-9 {
		t.Errorf("idle core-port fetch %g cycles, private %g", got, wantDur)
	}
	for _, key := range []string{names.DRAMReads, names.DRAMRowActivations} {
		if got, want := cc.Get(key), pc.Get(key); got != want {
			t.Errorf("%s = %d on the core port, %d on the private model", key, got, want)
		}
	}
	if cc.Get(names.ICNRequests) != 1 {
		t.Errorf("icn.requests = %d, want 1", cc.Get(names.ICNRequests))
	}
	if cc.Get(names.ICNWaitCycles) != 0 {
		t.Errorf("idle fetch recorded %d wait cycles", cc.Get(names.ICNWaitCycles))
	}
}

// TestCorePortStallLookaheadExact pins the fast-forward contract: the
// lookahead bound equals the stalled-cycle count the ticked probes would
// observe, and traffic from another core granted later never moves an
// already-issued prefetch's completion.
func TestCorePortStallLookaheadExact(t *testing.T) {
	hw := testHW()
	s := mustShared(t, hw, 0, 0)
	c0, c1 := comp.NewCounters(), comp.NewCounters()
	p0 := NewCorePort(s, 0)
	port0 := p0.Port(c0)
	port1 := NewCorePort(s, 1).Port(c1)

	port0.BeginPrefetch(0, 100_000)
	before := port0.StallLookahead(0)
	if before == 0 {
		t.Fatal("prefetch of 100k elements reported no stall")
	}
	// Ticked equivalence: the first cycle at which StallCycles reports no
	// stall is exactly `before`.
	if got := port0.StallCycles(float64(before)); got != 0 {
		t.Errorf("StallCycles at the lookahead bound = %g, want 0", got)
	}
	if got := port0.StallCycles(float64(before - 1)); got <= 0 {
		t.Errorf("StallCycles one cycle before the bound = %g, want > 0", got)
	}

	// A competing core's transfer granted afterwards must not move it.
	port1.BeginPrefetch(0, 500_000)
	if after := port0.StallLookahead(0); after != before {
		t.Errorf("later traffic moved the lookahead bound %d -> %d", before, after)
	}
}

// TestCorePortContentionCounters pins the icn.* attribution: on a 1-bank
// system a transfer queued behind another core's records its wait.
func TestCorePortContentionCounters(t *testing.T) {
	hw := testHW()
	s := mustShared(t, hw, 1, 0)
	c0, c1 := comp.NewCounters(), comp.NewCounters()
	port0 := NewCorePort(s, 0).Port(c0)
	port1 := NewCorePort(s, 1).Port(c1)

	port0.BeginPrefetch(0, 200_000)
	port1.BeginPrefetch(0, 200_000)
	if w := c1.Get(names.ICNWaitCycles); w == 0 {
		t.Error("contended prefetch recorded no icn.wait_cycles")
	}
	if w := c0.Get(names.ICNWaitCycles); w != 0 {
		t.Errorf("first-granted prefetch recorded %d wait cycles", w)
	}
	if b := c1.Get(names.ICNBusyCycles); b == 0 {
		t.Error("served prefetch recorded no icn.busy_cycles")
	}
}

// mustShared builds a SharedDRAM from a configuration the test knows is
// valid, failing the test on an unexpected construction error.
func mustShared(t *testing.T, hw *config.Hardware, banks int, linkGBs float64) *SharedDRAM {
	t.Helper()
	s, err := NewSharedDRAM(hw, banks, linkGBs)
	if err != nil {
		t.Fatalf("NewSharedDRAM(%s, banks=%d, link=%g): %v", hw.Name, banks, linkGBs, err)
	}
	return s
}

// TestNewSharedDRAMRejectsDegenerateHardware pins the construction-time
// validation: a zeroed (or partially zeroed) hardware description must be
// rejected with a descriptive error instead of building a model that later
// divides by zero or charges NaN/Inf cycle costs in Serve.
func TestNewSharedDRAMRejectsDegenerateHardware(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*config.Hardware)
	}{
		{"zero value", func(h *config.Hardware) { *h = config.Hardware{} }},
		{"zero clock", func(h *config.Hardware) { h.ClockGHz = 0 }},
		{"negative clock", func(h *config.Hardware) { h.ClockGHz = -1 }},
		{"zero bytes per element", func(h *config.Hardware) { h.BytesPerElement = 0 }},
		{"row smaller than element", func(h *config.Hardware) { h.DRAM.RowBytes = 0 }},
		{"negative row miss", func(h *config.Hardware) { h.DRAM.RowMissLatency = -1 }},
		{"zero bandwidth", func(h *config.Hardware) { h.DRAM.BandwidthGBs = 0 }},
		{"zero modules", func(h *config.Hardware) { h.DRAM.Modules = 0 }},
		{"negative modules", func(h *config.Hardware) { h.DRAM.Modules = -2 }},
	}
	for _, tc := range cases {
		hw := testHW()
		tc.mutate(hw)
		if s, err := NewSharedDRAM(hw, 0, 0); err == nil {
			// Prove the rejected configuration would have been poisonous:
			// serve one transfer and look for the NaN/Inf it would yield.
			_, completion := s.Serve(0, 100)
			t.Errorf("%s: NewSharedDRAM accepted the configuration (a transfer completes at %g)",
				tc.name, completion)
		}
	}

	// An explicit link override sidesteps the configured bandwidth, so a
	// zero-bandwidth DRAM block with a positive override is still valid.
	hw := testHW()
	hw.DRAM.BandwidthGBs = 0
	if _, err := NewSharedDRAM(hw, 0, 64); err != nil {
		t.Errorf("explicit link override rejected: %v", err)
	}
}

// TestCorePortRoundingCarriesRemainders pins the icn.* accounting fix: the
// counted busy+wait cycles must never drift above the true completion-issue
// chip-time interval, no matter how many fractional-duration transfers a
// port issues. The old independent round-half-up could overshoot by up to
// one cycle per transfer.
func TestCorePortRoundingCarriesRemainders(t *testing.T) {
	// Pick rates that make every transfer duration end in .5: 8 elems/cycle
	// at 1 B/elem and 1 GHz is 8 GB/s; 4 elements stream in 0.5 cycles and
	// the single row activation adds 10·0.1 = 1.0, so each uncontended
	// transfer truly costs 1.5 cycles.
	hw := testHW()
	hw.ClockGHz = 1
	hw.BytesPerElement = 1
	hw.DRAM.RowBytes = 2048
	hw.DRAM.RowMissLatency = 10
	s := mustShared(t, hw, 1, 8.0/1e0*1) // 8 B/s·1e9 → 8 elems/cycle
	c0 := comp.NewCounters()
	p0 := NewCorePort(s, 0)
	port0 := p0.Port(c0)

	const transfers = 1000
	for i := 0; i < transfers; i++ {
		port0.FetchCycles(4)
	}
	trueSpan := p0.busyAcc + p0.waitAcc // busy+wait == completion-issue per transfer
	got := c0.Get(names.ICNBusyCycles) + c0.Get(names.ICNWaitCycles)
	if float64(got) > math.Ceil(trueSpan) {
		t.Errorf("counted busy+wait %d cycles, exceeds ceil of the true %g-cycle span", got, trueSpan)
	}
	if float64(got) < trueSpan-2 {
		t.Errorf("counted busy+wait %d cycles, lost more than the carried remainder of the true %g", got, trueSpan)
	}
	// The old rounding emitted 2 cycles per 1.5-cycle transfer; the carried
	// remainder must keep the total at the floor of the running sum.
	if want := uint64(trueSpan); got != want {
		t.Errorf("counted busy+wait = %d, want exactly floor(true span) = %d", got, want)
	}

	// Contended flavour: a second port queues behind the first on the one
	// bank, splitting each span into fractional busy and wait parts that
	// round independently in the broken scheme.
	c1 := comp.NewCounters()
	p1 := NewCorePort(s, 1)
	port1 := p1.Port(c1)
	for i := 0; i < transfers; i++ {
		port0.FetchCycles(4)
		port1.FetchCycles(4)
	}
	span1 := p1.busyAcc + p1.waitAcc
	got1 := c1.Get(names.ICNBusyCycles) + c1.Get(names.ICNWaitCycles)
	if float64(got1) > math.Ceil(span1) {
		t.Errorf("contended port counted %d busy+wait cycles, exceeds ceil of the true %g", got1, span1)
	}
}
