package mem

import "repro/internal/config"

// Port is the memory interface an engine composition drives off-chip
// memory through — the exact method set DRAM has always exposed, extracted
// so a run can be pointed at either a private DRAM model (the bare-kernel
// path) or a per-core port into a chip-shared memory system (sim.Chip)
// without any call-site changes. The semantics every implementation must
// honour:
//
//   - FetchCycles(n) returns the cycles to stream n elements and accounts
//     the reads/row activations — a blocking fetch, used for the initial
//     working-set fill.
//   - BeginPrefetch(now, n) starts a double-buffered background transfer
//     at cycle `now`; StallCycles(now) later reports how long the consumer
//     must still wait for it (counting one stall event per probe).
//   - StallLookahead(now) is the side-effect-free fast-forward probe:
//     how many whole cycles from `now` the in-flight transfer still blocks
//     the consumer. Its bound must be exact — the kernel skips that many
//     cycles in one jump — which every implementation guarantees by fixing
//     a transfer's completion time at issue, never retroactively.
//   - AdvanceStall(n) replays the bookkeeping of n skipped stalled cycles.
//   - WriteBack(n) accounts n output elements leaving for memory.
type Port interface {
	FetchCycles(n int) float64
	BeginPrefetch(now float64, n int)
	StallCycles(now float64) float64
	StallLookahead(now uint64) uint64
	AdvanceStall(n uint64)
	WriteBack(n int)
}

// The private DRAM model and the shared-chip core port are the two
// implementations; config.MemPort is the same interface restated below mem
// in the package graph. The conversions pin all three method sets
// identical at compile time.
var (
	_ Port                 = (*DRAM)(nil)
	_ Port                 = (*CorePort)(nil)
	_ Port                 = config.MemPort(nil)
	_ config.MemPort       = Port(nil)
	_ config.MemPortSource = (*CorePort)(nil)
)
