package mem

import (
	"fmt"
	"math"

	"repro/internal/comp"
	"repro/internal/comp/names"
	"repro/internal/config"
)

// DefaultBanks is the shared DRAM bank count a chip uses when the
// configuration does not say otherwise.
const DefaultBanks = 8

// SharedDRAM is the chip-level shared memory system: B banks behind a
// link, serving every core's transfers through per-bank queues with a
// round-robin bank grant. It keeps the first-order stance of the private
// DRAM model — transfers are transactions with closed-form durations, not
// per-beat traffic — and adds exactly one new effect: transfers from
// different cores contend.
//
// A transfer costs what the private model's FetchCycles charges — stream
// time at the link rate plus row-activation overhead — and occupies the
// granted bank for that whole duration; transfers on different banks
// overlap fully, the banked-DRAM shape (HBM pseudo-channels). An
// uncontended transfer therefore costs exactly what the private model
// charges, aggregate chip bandwidth scales with the bank count, and
// contention appears as queueing when in-flight transfers outnumber banks
// (or collide on one under round-robin).
//
// A transfer's completion time is fixed at Serve time and never
// retroactively changed — later arrivals only ever queue behind earlier
// grants. That is the property the kernel's fast-forward relies on: a
// core's StallLookahead bound (the next interconnect event it waits on)
// stays exact no matter what other cores do afterwards.
//
// SharedDRAM is not safe for concurrent use: the chip scheduler runs ops
// sequentially in deterministic event order, which is also what makes
// N-core runs bit-identical across repeats.
type SharedDRAM struct {
	elemsPerCycle float64
	rowElems      int
	rowMiss       int

	bankFree []float64 // chip cycle each bank is next free
	next     int       // round-robin bank grant cursor
}

// NewSharedDRAM builds the shared memory system from the chip's DRAM
// parameters. banks <= 0 uses DefaultBanks; linkGBs <= 0 derives the link
// bandwidth from the configuration's modules, matching what a private
// DRAM would deliver. The derived per-cycle rates divide by several
// hardware fields, so a zero or negative field is rejected here with a
// descriptive error instead of silently yielding NaN/Inf cycle costs (or
// a divide-by-zero panic) deep inside Serve.
func NewSharedDRAM(h *config.Hardware, banks int, linkGBs float64) (*SharedDRAM, error) {
	if banks <= 0 {
		banks = DefaultBanks
	}
	switch {
	case !(h.ClockGHz > 0): // also catches NaN
		return nil, fmt.Errorf("mem: shared DRAM needs ClockGHz > 0, got %g", h.ClockGHz)
	case h.BytesPerElement <= 0:
		return nil, fmt.Errorf("mem: shared DRAM needs BytesPerElement > 0, got %d", h.BytesPerElement)
	case h.DRAM.RowBytes < h.BytesPerElement:
		return nil, fmt.Errorf("mem: shared DRAM needs DRAM.RowBytes >= BytesPerElement, got %d < %d",
			h.DRAM.RowBytes, h.BytesPerElement)
	case h.DRAM.RowMissLatency < 0:
		return nil, fmt.Errorf("mem: shared DRAM needs DRAM.RowMissLatency >= 0, got %d", h.DRAM.RowMissLatency)
	}
	if linkGBs <= 0 {
		linkGBs = h.DRAM.BandwidthGBs * float64(h.DRAM.Modules)
	}
	if !(linkGBs > 0) {
		return nil, fmt.Errorf("mem: shared DRAM link bandwidth must be positive, got %g GB/s (BandwidthGBs=%g Modules=%d)",
			linkGBs, h.DRAM.BandwidthGBs, h.DRAM.Modules)
	}
	bytesPerCycle := linkGBs * 1e9 / (h.ClockGHz * 1e9)
	return &SharedDRAM{
		elemsPerCycle: bytesPerCycle / float64(h.BytesPerElement),
		rowElems:      h.DRAM.RowBytes / h.BytesPerElement,
		rowMiss:       h.DRAM.RowMissLatency,
		bankFree:      make([]float64, banks),
	}, nil
}

// Banks returns the configured bank count.
func (s *SharedDRAM) Banks() int { return len(s.bankFree) }

// Serve grants a transfer of n elements issued at chip cycle `issue` to
// the next bank in round-robin order, queueing behind whatever that bank is
// already serving. It returns the grant and completion cycles; wait time is
// start-issue, and completion-start is exactly the private model's
// uncontended cost.
func (s *SharedDRAM) Serve(issue float64, n int) (start, completion float64) {
	if n <= 0 {
		return issue, issue
	}
	stream := float64(n) / s.elemsPerCycle
	rows := 1 + n/s.rowElems
	overhead := float64(rows*s.rowMiss) * 0.1 // banking hides most activations
	b := s.next
	s.next++
	if s.next == len(s.bankFree) {
		s.next = 0
	}
	start = issue
	if s.bankFree[b] > start {
		start = s.bankFree[b]
	}
	completion = start + stream + overhead
	s.bankFree[b] = completion
	return start, completion
}

// rowsFor is the row-activation count the private model would charge a
// transfer of n elements (shared by CorePort accounting).
func (s *SharedDRAM) rowsFor(n int) int { return 1 + n/s.rowElems }

// CorePort is one core's view of a SharedDRAM: it implements Port (so the
// engine compositions drive it exactly as they drive a private DRAM) and
// config.MemPortSource (so sim.NewCtx can rebind it to each op's private
// counter set). The port owns the translation between a run's op-local
// clock and the chip clock: StartOp pins the chip cycle at which the
// current op's cycle zero sits, and every transfer is issued in chip time,
// so contention with other cores lands in the op's observed stalls.
type CorePort struct {
	shared *SharedDRAM
	core   int

	base          float64 // chip cycle of the current op's cycle zero
	selfReady     float64 // chip cycle the core's last transfer completes
	prefetchReady float64 // op-local cycle the in-flight prefetch completes

	// Cumulative true busy/wait chip time and the integer cycles already
	// emitted to the icn.* counters. Each transfer emits floor(cum)-emitted,
	// carrying the fractional remainder to the next one (the same scheme the
	// trace tiers use), so the counted busy+wait can never drift above the
	// true completion-issue span the way independent per-transfer rounding
	// did.
	busyAcc, waitAcc         float64
	busyEmitted, waitEmitted uint64

	cReads, cRowActs, cStallEvents, cWrites comp.Counter
	cICNReq, cICNBusy, cICNWait             comp.Counter
}

// NewCorePort builds core's port into the shared memory system.
func NewCorePort(s *SharedDRAM, core int) *CorePort {
	return &CorePort{shared: s, core: core}
}

// StartOp pins the chip cycle at which the next op's cycle zero sits and
// resets the op-local prefetch horizon. The chip scheduler calls it once
// per scheduled stage, before the core's kernel starts ticking.
func (p *CorePort) StartOp(base float64) {
	p.base = base
	p.prefetchReady = 0
}

// Port rebinds the port to a fresh run's counter set and returns itself —
// the config.MemPortSource hook sim.NewCtx calls exactly once per op. A
// new op's local clock restarts at zero, so the port re-bases its chip
// mapping the way the private model does (a fresh DRAM per Ctx): the
// prefetch horizon resets, and op cycle zero maps to the core's current
// memory horizon — the furthest of the stage's start and the core's last
// transfer completion. For compute-bound stages that is earlier than the
// true op start, a deliberate first-order simplification: transfers stay
// correctly ordered per core (selfReady serializes them) and contention
// stays deterministic; only the cross-core interleaving is approximate.
func (p *CorePort) Port(c *comp.Counters) config.MemPort {
	if p.selfReady > p.base {
		p.base = p.selfReady
	}
	p.prefetchReady = 0
	p.cReads = c.Counter(names.DRAMReads)
	p.cRowActs = c.Counter(names.DRAMRowActivations)
	p.cStallEvents = c.Counter(names.DRAMStallEvents)
	p.cWrites = c.Counter(names.DRAMWrites)
	p.cICNReq = c.Counter(names.ICNRequests)
	p.cICNBusy = c.Counter(names.ICNBusyCycles)
	p.cICNWait = c.Counter(names.ICNWaitCycles)
	return p
}

// transfer issues n elements at chip cycle `issue` (no earlier than the
// core's previous transfer — a core's own requests serialize, exactly as
// the private model's prefetchReady chain does) and returns the chip cycle
// the data lands.
func (p *CorePort) transfer(issue float64, n int) float64 {
	if p.selfReady > issue {
		issue = p.selfReady
	}
	start, completion := p.shared.Serve(issue, n)
	p.selfReady = completion
	p.cReads.Add(uint64(n))
	p.cRowActs.Add(uint64(p.shared.rowsFor(n)))
	p.cICNReq.Add(1)
	p.busyAcc += completion - start
	p.waitAcc += start - issue
	if d := uint64(p.busyAcc) - p.busyEmitted; d > 0 {
		p.cICNBusy.Add(d)
		p.busyEmitted += d
	}
	if d := uint64(p.waitAcc) - p.waitEmitted; d > 0 {
		p.cICNWait.Add(d)
		p.waitEmitted += d
	}
	return completion
}

// FetchCycles streams n elements as a blocking fetch issued at the op's
// current prefetch horizon and returns the op-local cycles until the data
// lands — the private model's duration plus any contention wait.
func (p *CorePort) FetchCycles(n int) float64 {
	if n <= 0 {
		return 0
	}
	issue := p.base + p.prefetchReady
	return p.transfer(issue, n) - issue
}

// BeginPrefetch starts a double-buffered transfer of n elements at
// op-local cycle `now`, mirroring the private model's serialization of
// successive prefetches and adding shared-link/bank contention on top.
func (p *CorePort) BeginPrefetch(now float64, n int) {
	start := now
	if p.prefetchReady > start {
		start = p.prefetchReady
	}
	p.prefetchReady = p.transfer(p.base+start, n) - p.base
}

// StallCycles reports how many op-local cycles past `now` the in-flight
// prefetch still needs, counting one stall event per probe — identical in
// shape to the private model; the contention is already folded into
// prefetchReady.
func (p *CorePort) StallCycles(now float64) float64 {
	if p.prefetchReady <= now {
		return 0
	}
	p.cStallEvents.Add(1)
	return p.prefetchReady - now
}

// StallLookahead is the side-effect-free fast-forward probe: the bound is
// exact because the transfer's completion was fixed when it was granted —
// later traffic from other cores can only queue behind it, never push it.
// A core therefore skips at most to its next interconnect event.
func (p *CorePort) StallLookahead(now uint64) uint64 {
	if p.prefetchReady <= float64(now) {
		return 0
	}
	return uint64(math.Ceil(p.prefetchReady)) - now
}

// AdvanceStall replays the bookkeeping of n skipped stalled cycles.
func (p *CorePort) AdvanceStall(n uint64) { p.cStallEvents.Add(n) }

// WriteBack accounts n output elements leaving for DRAM; as in the
// private model, writes are buffered and overlap compute.
func (p *CorePort) WriteBack(n int) { p.cWrites.Add(uint64(n)) }

// Handoff streams n activation elements through the shared system at chip
// cycle `now` — the producer-to-consumer transfer of a cross-core stage
// boundary — and returns the chip cycle the consuming core may start.
func (p *CorePort) Handoff(now float64, n int) float64 {
	_, completion := p.shared.Serve(now, n)
	return completion
}

// String identifies the port in diagnostics.
func (p *CorePort) String() string { return fmt.Sprintf("core%d-port", p.core) }
