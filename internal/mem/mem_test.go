package mem

import (
	"testing"

	"repro/internal/comp"
	"repro/internal/config"
)

func testHW() *config.Hardware {
	h := config.MAERILike(128, 64)
	return &h
}

func TestGlobalBufferAccounting(t *testing.T) {
	c := comp.NewCounters()
	gb := NewGlobalBuffer(testHW(), c)
	gb.Read(10)
	gb.Write(3)
	if c.Get("gb.reads") != 10 || c.Get("gb.writes") != 3 {
		t.Errorf("counters %v", c.Snapshot())
	}
	if gb.CapacityElems() != 108*1024 { // 108 KB at 1 B/elem (FP8)
		t.Errorf("capacity %d", gb.CapacityElems())
	}
}

func TestCheckTileFit(t *testing.T) {
	c := comp.NewCounters()
	gb := NewGlobalBuffer(testHW(), c)
	if err := gb.CheckTileFit(1000); err != nil {
		t.Errorf("small tile rejected: %v", err)
	}
	if err := gb.CheckTileFit(200 * 1024); err == nil {
		t.Error("oversize tile accepted")
	}
}

func TestDRAMFetchCycles(t *testing.T) {
	c := comp.NewCounters()
	d := NewDRAM(testHW(), c)
	// 2 modules × 256 GB/s at 1 GHz and 1 B/elem = 512 elements/cycle.
	cy := d.FetchCycles(512 * 100)
	if cy < 100 || cy > 250 {
		t.Errorf("fetch cycles %v for 51200 elems", cy)
	}
	if d.FetchCycles(0) != 0 {
		t.Error("zero fetch nonzero")
	}
	if c.Get("dram.reads") != 51200 {
		t.Errorf("dram.reads %d", c.Get("dram.reads"))
	}
}

func TestDoubleBufferingHidesPrefetch(t *testing.T) {
	c := comp.NewCounters()
	d := NewDRAM(testHW(), c)
	// Prefetch launched at cycle 0; by cycle 10000 it is long done.
	d.BeginPrefetch(0, 1000)
	if s := d.StallCycles(10000); s != 0 {
		t.Errorf("hidden prefetch stalls %v", s)
	}
	// A prefetch probed immediately still needs time.
	d.BeginPrefetch(10000, 512*1000)
	if s := d.StallCycles(10001); s <= 0 {
		t.Error("immediate probe shows no stall for a huge transfer")
	}
}

func TestPrefetchQueueing(t *testing.T) {
	c := comp.NewCounters()
	d := NewDRAM(testHW(), c)
	// Two overlapping prefetches serialize on the channel.
	d.BeginPrefetch(0, 512*100) // ~100+ cycles
	first := d.StallCycles(0)
	d.BeginPrefetch(0, 512*100)
	second := d.StallCycles(0)
	if second <= first {
		t.Errorf("queued prefetch not serialized: %v then %v", first, second)
	}
}

func TestWriteBack(t *testing.T) {
	c := comp.NewCounters()
	d := NewDRAM(testHW(), c)
	d.WriteBack(77)
	if c.Get("dram.writes") != 77 {
		t.Errorf("writes %d", c.Get("dram.writes"))
	}
}
