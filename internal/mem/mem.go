// Package mem models the memory hierarchy of Section IV-B: the on-chip
// Global Buffer (GB) with configurable read/write port widths, and the
// off-chip DRAM with double-buffered prefetching into the GB — the role
// DRAMsim3 plays for the original tool, reduced to the first-order timing
// behaviour the accelerator observes (bandwidth ceiling, row hit/miss
// latency, prefetch overlap with compute).
//
// The gb.*/dram.* access counters double as the trace layer's busy probes
// for the MEM tier, and ctrl.dram_wait_cycles as its bandwidth-stall probe
// (internal/trace).
package mem

import (
	"fmt"
	"math"

	"repro/internal/comp"
	"repro/internal/comp/names"
	"repro/internal/config"
)

// GlobalBuffer tracks capacity and access activity. Port bandwidth is
// enforced by the distribution and reduction networks (they are the ports);
// the GB accounts the SRAM accesses for the energy model and checks that
// the working set of each tile fits.
type GlobalBuffer struct {
	sizeBytes    int
	bytesPerElem int
	counters     *comp.Counters

	// Pre-resolved handles: Read/Write run in per-element inner loops.
	cReads, cWrites comp.Counter
}

// NewGlobalBuffer builds a GB of the configured size.
func NewGlobalBuffer(h *config.Hardware, c *comp.Counters) *GlobalBuffer {
	return &GlobalBuffer{
		sizeBytes:    h.GBSizeKB * 1024,
		bytesPerElem: h.BytesPerElement,
		counters:     c,
		cReads:       c.Counter(names.GBReads),
		cWrites:      c.Counter(names.GBWrites),
	}
}

// CapacityElems returns how many elements fit in the buffer.
func (g *GlobalBuffer) CapacityElems() int { return g.sizeBytes / g.bytesPerElem }

// Read accounts n element reads.
func (g *GlobalBuffer) Read(n int) { g.cReads.Add(uint64(n)) }

// Write accounts n element writes.
func (g *GlobalBuffer) Write(n int) { g.cWrites.Add(uint64(n)) }

// CheckTileFit reports an error when a tile working set exceeds the buffer
// (weights + inputs + outputs for one tile iteration, double-buffered).
func (g *GlobalBuffer) CheckTileFit(elems int) error {
	need := 2 * elems * g.bytesPerElem // double buffering
	if need > g.sizeBytes {
		return fmt.Errorf("mem: tile working set %d B exceeds global buffer %d B", need, g.sizeBytes)
	}
	return nil
}

// DRAM models the off-chip memory modules with double-buffered prefetch:
// while tile t computes, tile t+1's operands stream in. The accelerator
// stalls only when a tile's compute time is shorter than its successor's
// fetch time.
type DRAM struct {
	elemsPerCycle   float64 // aggregate deliverable elements per core cycle
	rowElems        int
	rowHit, rowMiss int
	counters        *comp.Counters

	cReads, cRowActs, cStallEvents, cWrites comp.Counter

	// prefetchReady is the cycle at which the currently prefetching tile
	// completes.
	prefetchReady float64
}

// NewDRAM derives per-cycle element bandwidth from the configured modules
// and clock.
func NewDRAM(h *config.Hardware, c *comp.Counters) *DRAM {
	bytesPerSec := h.DRAM.BandwidthGBs * 1e9 * float64(h.DRAM.Modules)
	cyclesPerSec := h.ClockGHz * 1e9
	bytesPerCycle := bytesPerSec / cyclesPerSec
	return &DRAM{
		elemsPerCycle: bytesPerCycle / float64(h.BytesPerElement),
		rowElems:      h.DRAM.RowBytes / h.BytesPerElement,
		rowHit:        h.DRAM.RowHitLatency,
		rowMiss:       h.DRAM.RowMissLatency,
		counters:      c,
		cReads:        c.Counter(names.DRAMReads),
		cRowActs:      c.Counter(names.DRAMRowActivations),
		cStallEvents:  c.Counter(names.DRAMStallEvents),
		cWrites:       c.Counter(names.DRAMWrites),
	}
}

// FetchCycles returns the cycles needed to stream n elements, including the
// amortized row activations of the banked model.
func (d *DRAM) FetchCycles(n int) float64 {
	if n <= 0 {
		return 0
	}
	stream := float64(n) / d.elemsPerCycle
	rows := 1 + n/d.rowElems
	overhead := float64(rows*d.rowMiss) * 0.1 // banking hides most activations
	d.cReads.Add(uint64(n))
	d.cRowActs.Add(uint64(rows))
	return stream + overhead
}

// BeginPrefetch records that a tile of n elements starts streaming at
// cycle `now`; it returns nothing — StallCycles later reports how long the
// consumer must wait for it.
func (d *DRAM) BeginPrefetch(now float64, n int) {
	start := now
	if d.prefetchReady > start {
		start = d.prefetchReady
	}
	d.prefetchReady = start + d.FetchCycles(n)
}

// StallCycles reports how many cycles past `now` the in-flight prefetch
// still needs — zero when double buffering fully hid the transfer.
func (d *DRAM) StallCycles(now float64) float64 {
	if d.prefetchReady <= now {
		return 0
	}
	d.cStallEvents.Add(1)
	return d.prefetchReady - now
}

// StallLookahead is the side-effect-free fast-forward probe behind
// StallCycles: it returns how many whole controller cycles from `now`
// (inclusive) the in-flight prefetch still blocks the consumer — i.e. the
// count of consecutive cycles at which StallCycles would report a stall.
// The first unblocked cycle is the smallest integer ≥ prefetchReady, so the
// bound is ceil(prefetchReady) − now. Unlike StallCycles it counts no stall
// event; AdvanceStall replays those for the skipped cycles.
func (d *DRAM) StallLookahead(now uint64) uint64 {
	if d.prefetchReady <= float64(now) {
		return 0
	}
	return uint64(math.Ceil(d.prefetchReady)) - now
}

// AdvanceStall replays the bookkeeping of n skipped stalled cycles: the
// ticked loop probes StallCycles once per controller cycle while blocked,
// counting one stall event each time.
func (d *DRAM) AdvanceStall(n uint64) { d.cStallEvents.Add(n) }

// WriteBack accounts n output elements leaving for DRAM; writes are
// buffered and overlap compute, so they cost bandwidth but no stall.
func (d *DRAM) WriteBack(n int) {
	d.cWrites.Add(uint64(n))
}
