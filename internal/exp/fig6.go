package exp

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/dnn"
	"repro/stonne"
)

// Fig6Row summarizes use case 2 for one CNN model: the SNAPEA-like
// architecture against the same architecture without the negative
// detection logic (the paper's Baseline), over a set of input images.
type Fig6Row struct {
	Model string
	Scale int

	// Speedup = baseline cycles / SNAPEA cycles (Fig. 6a; paper: ~1.35×).
	Speedup float64
	// EnergyNorm = SNAPEA energy / baseline energy (Fig. 6b; ~0.79).
	EnergyNorm float64
	// OpsNorm = SNAPEA MACs / baseline MACs (Fig. 6c; ~0.70).
	OpsNorm float64
	// MemNorm = SNAPEA GB accesses / baseline accesses (Fig. 6d; ~0.84).
	MemNorm float64
}

// Fig6 runs the four purely-CNN models (Alexnet, Squeezenet, VGG-16,
// Resnets-50) on the 64-multiplier SNAPEA configuration with `images`
// distinct inputs each, comparing exact-mode early termination against the
// baseline.
func Fig6(scale, images int) ([]Fig6Row, error) {
	if images < 1 {
		images = 1
	}
	hw := config.SNAPEALike(64, 64)
	var rows []Fig6Row
	for _, tag := range []string{"A", "S", "V", "R"} {
		full, err := dnn.ModelByShort(tag)
		if err != nil {
			return nil, err
		}
		m, err := dnn.ScaleSpatial(full, scale)
		if err != nil {
			return nil, err
		}
		w := dnn.InitWeights(m, 0xf166)
		if err := w.Prune(m.Sparsity); err != nil {
			return nil, err
		}
		var cycA, cycB, opsA, opsB, memA, memB uint64
		var enA, enB float64
		for img := 0; img < images; img++ {
			input := dnn.RandomInput(m, 0x100+uint64(img))
			_, snap, err := stonne.RunModel(m, w, input, hw, nil)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s snapea: %w", m.Name, err)
			}
			_, base, err := stonne.RunModel(m, w, input, hw, &stonne.RunOptions{DisableSNAPEACut: true})
			if err != nil {
				return nil, fmt.Errorf("fig6 %s baseline: %w", m.Name, err)
			}
			cycA += snap.TotalCycles()
			cycB += base.TotalCycles()
			opsA += snap.TotalMACs()
			opsB += base.TotalMACs()
			memA += snap.TotalMemAccesses()
			memB += base.TotalMemAccesses()
			enA += snap.TotalEnergy()
			enB += base.TotalEnergy()
		}
		rows = append(rows, Fig6Row{
			Model: full.Name, Scale: scale,
			Speedup:    ratio(cycB, cycA),
			EnergyNorm: enA / enB,
			OpsNorm:    ratio(opsA, opsB),
			MemNorm:    ratio(memA, memB),
		})
	}
	return rows, nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
