package exp

import (
	"context"
	"fmt"

	"repro/internal/dnn"
	"repro/internal/simpool"
	"repro/stonne"
)

// Fig6Row summarizes use case 2 for one CNN model: the SNAPEA-like
// architecture against the same architecture without the negative
// detection logic (the paper's Baseline), over a set of input images.
type Fig6Row struct {
	Model string
	Scale int

	// Speedup = baseline cycles / SNAPEA cycles (Fig. 6a; paper: ~1.35×).
	Speedup float64
	// EnergyNorm = SNAPEA energy / baseline energy (Fig. 6b; ~0.79).
	EnergyNorm float64
	// OpsNorm = SNAPEA MACs / baseline MACs (Fig. 6c; ~0.70).
	OpsNorm float64
	// MemNorm = SNAPEA GB accesses / baseline accesses (Fig. 6d; ~0.84).
	MemNorm float64
}

// Fig6 runs the four purely-CNN models (Alexnet, Squeezenet, VGG-16,
// Resnets-50) on the 64-multiplier SNAPEA configuration with `images`
// distinct inputs each, comparing exact-mode early termination against the
// baseline.
func Fig6(scale, images int) ([]Fig6Row, error) {
	return Fig6Par(context.Background(), 1, scale, images)
}

// fig6Cell is one (model, image) pair's SNAPEA-vs-baseline measurements.
// Per-image cells come back from the pool in job order and are folded
// serially per model — same summation order as the serial loop, so the
// float energy totals stay bit-identical.
type fig6Cell struct {
	cycA, cycB, opsA, opsB, memA, memB uint64
	enA, enB                           float64
}

type fig6Job struct {
	tag string
	img int
}

// Fig6Par is Fig6 with one simpool job per (model, image) pair.
func Fig6Par(ctx context.Context, workers, scale, images int) ([]Fig6Row, error) {
	if images < 1 {
		images = 1
	}
	tags := []string{"A", "S", "V", "R"}
	var jobs []fig6Job
	for _, tag := range tags {
		for img := 0; img < images; img++ {
			jobs = append(jobs, fig6Job{tag: tag, img: img})
		}
	}
	cells, err := simpool.Map(ctx, workers, jobs, func(_ context.Context, _ int, j fig6Job) (fig6Cell, error) {
		return fig6Image(j.tag, scale, j.img)
	})
	if err != nil {
		return nil, err
	}

	var rows []Fig6Row
	for ti, tag := range tags {
		full, err := dnn.ModelByShort(tag)
		if err != nil {
			return nil, err
		}
		var agg fig6Cell
		for img := 0; img < images; img++ {
			c := cells[ti*images+img]
			agg.cycA += c.cycA
			agg.cycB += c.cycB
			agg.opsA += c.opsA
			agg.opsB += c.opsB
			agg.memA += c.memA
			agg.memB += c.memB
			agg.enA += c.enA
			agg.enB += c.enB
		}
		rows = append(rows, Fig6Row{
			Model: full.Name, Scale: scale,
			Speedup:    ratio(agg.cycB, agg.cycA),
			EnergyNorm: agg.enA / agg.enB,
			OpsNorm:    ratio(agg.opsA, agg.opsB),
			MemNorm:    ratio(agg.memA, agg.memB),
		})
	}
	return rows, nil
}

// fig6Image runs one model on one input image, SNAPEA and baseline.
func fig6Image(tag string, scale, img int) (fig6Cell, error) {
	hw := archHW("snapea", 64, 64)
	full, err := dnn.ModelByShort(tag)
	if err != nil {
		return fig6Cell{}, err
	}
	m, err := dnn.ScaleSpatial(full, scale)
	if err != nil {
		return fig6Cell{}, err
	}
	w := dnn.InitWeights(m, 0xf166)
	if err := w.Prune(m.Sparsity); err != nil {
		return fig6Cell{}, err
	}
	input := dnn.RandomInput(m, 0x100+uint64(img))
	_, snap, err := stonne.RunModel(m, w, input, hw, nil)
	if err != nil {
		return fig6Cell{}, fmt.Errorf("fig6 %s snapea: %w", m.Name, err)
	}
	_, base, err := stonne.RunModel(m, w, input, hw, &stonne.RunOptions{DisableSNAPEACut: true})
	if err != nil {
		return fig6Cell{}, fmt.Errorf("fig6 %s baseline: %w", m.Name, err)
	}
	return fig6Cell{
		cycA: snap.TotalCycles(), cycB: base.TotalCycles(),
		opsA: snap.TotalMACs(), opsB: base.TotalMACs(),
		memA: snap.TotalMemAccesses(), memB: base.TotalMemAccesses(),
		enA: snap.TotalEnergy(), enB: base.TotalEnergy(),
	}, nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
