package exp

import (
	"context"
	"math"

	"repro/internal/engine"
	"repro/internal/simpool"
	"repro/internal/stats"
)

// TableVResult is one validation row: published RTL and STONNE counts
// alongside this implementation's cycles and error.
type TableVResult struct {
	engine.TableVRow
	Got     uint64
	ErrRTL  float64 // (got-RTL)/RTL
	ErrOrig float64 // (got-original STONNE)/original
}

// TableVRun executes the eleven validation microbenchmarks.
func TableVRun() ([]TableVResult, float64, error) {
	return TableVRunPar(context.Background(), 1)
}

// TableVRunPar fans the validation microbenchmarks over a simpool — each
// row is a self-contained engine run — and computes the error summary as a
// serial post-pass in row order.
func TableVRunPar(ctx context.Context, workers int) ([]TableVResult, float64, error) {
	rows := engine.TableV()
	runs, err := simpool.Map(ctx, workers, rows, func(_ context.Context, _ int, row engine.TableVRow) (*stats.Run, error) {
		return engine.RunTableVRow(row)
	})
	if err != nil {
		return nil, 0, err
	}
	out := make([]TableVResult, 0, len(rows))
	var sumAbs float64
	for i, row := range rows {
		run := runs[i]
		r := TableVResult{
			TableVRow: row,
			Got:       run.Cycles,
			ErrRTL:    (float64(run.Cycles) - float64(row.RTL)) / float64(row.RTL),
			ErrOrig:   (float64(run.Cycles) - float64(row.STONNE)) / float64(row.STONNE),
		}
		sumAbs += math.Abs(r.ErrRTL)
		out = append(out, r)
	}
	return out, sumAbs / float64(len(rows)), nil
}
