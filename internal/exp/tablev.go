package exp

import (
	"math"

	"repro/internal/engine"
)

// TableVResult is one validation row: published RTL and STONNE counts
// alongside this implementation's cycles and error.
type TableVResult struct {
	engine.TableVRow
	Got     uint64
	ErrRTL  float64 // (got-RTL)/RTL
	ErrOrig float64 // (got-original STONNE)/original
}

// TableVRun executes the eleven validation microbenchmarks.
func TableVRun() ([]TableVResult, float64, error) {
	var out []TableVResult
	var sumAbs float64
	rows := engine.TableV()
	for _, row := range rows {
		run, err := engine.RunTableVRow(row)
		if err != nil {
			return nil, 0, err
		}
		r := TableVResult{
			TableVRow: row,
			Got:       run.Cycles,
			ErrRTL:    (float64(run.Cycles) - float64(row.RTL)) / float64(row.RTL),
			ErrOrig:   (float64(run.Cycles) - float64(row.STONNE)) / float64(row.STONNE),
		}
		sumAbs += math.Abs(r.ErrRTL)
		out = append(out, r)
	}
	return out, sumAbs / float64(len(rows)), nil
}
