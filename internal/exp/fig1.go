package exp

import (
	"context"
	"fmt"

	"repro/internal/analytical"
	"repro/internal/dnn"
	"repro/internal/engine"
	"repro/internal/mapper"
	"repro/internal/simpool"
	"repro/internal/tensor"
)

// Fig1Row is one bar pair of Figure 1: cycle counts from the cycle-level
// simulator (ST) and the analytical model (AM) for one layer and
// configuration.
type Fig1Row struct {
	Layer  string  // "S-SC", ...
	Config string  // "16x16", "bw=64", "sp=0.9", ...
	ST     uint64  // cycle-level simulation
	AM     float64 // analytical model
}

// RatioSTOverAM is the headline metric: how much the analytical model
// underestimates.
func (r Fig1Row) RatioSTOverAM() float64 {
	if r.AM == 0 {
		return 0
	}
	return float64(r.ST) / r.AM
}

// Fig1a compares STONNE against the SCALE-Sim-style analytical model for
// an output-stationary systolic array of 16×16, 32×32 and 64×64 PEs over
// the eight representative layers — the rigid case where both should agree
// closely.
func Fig1a(scale int) ([]Fig1Row, error) {
	return Fig1aPar(context.Background(), 1, scale)
}

// fig1Job pairs one sweep configuration with one representative layer; the
// layer struct is shared read-only between jobs (operands are rebuilt
// inside each job from fixed seeds).
type fig1Job struct {
	cfg   int // pe / bw, or sparsity index for fig1c
	layer RepLayer
}

func fig1Jobs(cfgs []int, layers []RepLayer) []fig1Job {
	jobs := make([]fig1Job, 0, len(cfgs)*len(layers))
	for _, c := range cfgs {
		for _, rl := range layers {
			jobs = append(jobs, fig1Job{cfg: c, layer: rl})
		}
	}
	return jobs
}

// Fig1aPar is Fig1a with one simpool job per (PE array, layer) point.
func Fig1aPar(ctx context.Context, workers, scale int) ([]Fig1Row, error) {
	layers, err := RepresentativeLayers(scale)
	if err != nil {
		return nil, err
	}
	return simpool.Map(ctx, workers, fig1Jobs([]int{16, 32, 64}, layers),
		func(_ context.Context, _ int, j fig1Job) (Fig1Row, error) {
			return fig1aPoint(j.cfg, j.layer)
		})
}

func fig1aPoint(pe int, rl RepLayer) (Fig1Row, error) {
	hw := archHW("tpu", pe*pe, 2*pe)
	hw.Preloaded = true
	acc, err := engine.New(hw)
	if err != nil {
		return Fig1Row{}, err
	}
	m, n, k := rl.Layer.GEMMDims()
	var st uint64
	if rl.Layer.Kind == dnn.Conv {
		in, w := convOperands(&rl.Layer, 0)
		_, run, err := acc.RunConv(in, w, rl.Layer.Conv, rl.Tag)
		if err != nil {
			return Fig1Row{}, fmt.Errorf("fig1a %s: %w", rl.Tag, err)
		}
		st = run.Cycles
	} else {
		A, B, err := layerOperands(&rl.Layer, 0, 0xf16a)
		if err != nil {
			return Fig1Row{}, err
		}
		_, run, err := acc.RunGEMM(A, B, rl.Tag)
		if err != nil {
			return Fig1Row{}, fmt.Errorf("fig1a %s: %w", rl.Tag, err)
		}
		st = run.Cycles
	}
	am, err := analytical.SystolicOS(m, n, k, pe)
	if err != nil {
		return Fig1Row{}, err
	}
	// Grouped convolutions run once per group on both sides.
	if rl.Layer.Kind == dnn.Conv {
		am *= float64(rl.Layer.Conv.G)
	}
	return Fig1Row{Layer: rl.Tag, Config: fmt.Sprintf("%dx%d", pe, pe), ST: st, AM: am}, nil
}

// Fig1b compares STONNE against the MAERI analytical model on a
// 128-multiplier flexible dense accelerator while the Global Buffer
// bandwidth shrinks from 128 to 64 to 32 elements/cycle — the flexible
// case where the analytical model misses pipeline stalls.
func Fig1b(scale int) ([]Fig1Row, error) {
	return Fig1bPar(context.Background(), 1, scale)
}

// Fig1bPar is Fig1b with one simpool job per (bandwidth, layer) point.
func Fig1bPar(ctx context.Context, workers, scale int) ([]Fig1Row, error) {
	layers, err := RepresentativeLayers(scale)
	if err != nil {
		return nil, err
	}
	return simpool.Map(ctx, workers, fig1Jobs([]int{128, 64, 32}, layers),
		func(_ context.Context, _ int, j fig1Job) (Fig1Row, error) {
			return fig1bPoint(j.cfg, j.layer)
		})
}

func fig1bPoint(bw int, rl RepLayer) (Fig1Row, error) {
	const ms = 128
	hw := archHW("maeri", ms, bw)
	hw.Preloaded = true
	acc, err := engine.New(hw)
	if err != nil {
		return Fig1Row{}, err
	}
	var st uint64
	var am float64
	if rl.Layer.Kind == dnn.Conv {
		cs := rl.Layer.Conv
		in, w := convOperands(&rl.Layer, 0)
		_, run, err := acc.RunConv(in, w, cs, rl.Tag)
		if err != nil {
			return Fig1Row{}, fmt.Errorf("fig1b %s bw=%d: %w", rl.Tag, bw, err)
		}
		st = run.Cycles
		tile, err := mapper.PickConv(&hw, cs)
		if err != nil {
			return Fig1Row{}, err
		}
		am, err = analytical.MAERIConv(analytical.MAERIConvParams{
			K: cs.K / cs.G, C: cs.C / cs.G, G: cs.G, R: cs.R, S: cs.S,
			Xo: cs.OutX(), Yo: cs.OutY(),
			TK: tile.TK, TYp: tile.TYp, TC: tile.TC,
			MSSize: ms, Bandwidth: bw,
		})
		if err != nil {
			return Fig1Row{}, err
		}
	} else {
		A, B, err := layerOperands(&rl.Layer, 0, 0xf16b)
		if err != nil {
			return Fig1Row{}, err
		}
		_, run, err := acc.RunGEMM(A, B, rl.Tag)
		if err != nil {
			return Fig1Row{}, fmt.Errorf("fig1b %s bw=%d: %w", rl.Tag, bw, err)
		}
		st = run.Cycles
		m, n, k := rl.Layer.GEMMDims()
		tile, err := mapper.PickGEMM(&hw, m, n, k)
		if err != nil {
			return Fig1Row{}, err
		}
		am, err = analytical.MAERIGEMM(analytical.MAERIGEMMParams{
			M: m, N: n, K: k,
			TM: tile.TM, TN: tile.TN, KSlice: tile.KSlice,
			MSSize: ms, Bandwidth: bw,
		})
		if err != nil {
			return Fig1Row{}, err
		}
	}
	return Fig1Row{Layer: rl.Tag, Config: fmt.Sprintf("bw=%d", bw), ST: st, AM: am}, nil
}

// Fig1c compares STONNE against the SIGMA analytical model at full
// bandwidth while the weight sparsity sweeps 0% → 90% — the sparse case
// where the distribution of zeros (invisible to a formula) drives the
// cycle count.
func Fig1c(scale int) ([]Fig1Row, error) {
	return Fig1cPar(context.Background(), 1, scale)
}

var fig1cSparsities = []float64{0, 0.3, 0.5, 0.7, 0.9}

// Fig1cPar is Fig1c with one simpool job per (sparsity, layer) point.
func Fig1cPar(ctx context.Context, workers, scale int) ([]Fig1Row, error) {
	layers, err := RepresentativeLayers(scale)
	if err != nil {
		return nil, err
	}
	return simpool.Map(ctx, workers, fig1Jobs([]int{0, 1, 2, 3, 4}, layers),
		func(_ context.Context, _ int, j fig1Job) (Fig1Row, error) {
			return fig1cPoint(fig1cSparsities[j.cfg], j.layer)
		})
}

func fig1cPoint(sp float64, rl RepLayer) (Fig1Row, error) {
	const ms, bw = 128, 128
	hw := archHW("sigma", ms, bw)
	hw.Preloaded = true
	acc, err := engine.New(hw)
	if err != nil {
		return Fig1Row{}, err
	}
	m, n, k := rl.Layer.GEMMDims()
	A, B, err := layerOperands(&rl.Layer, sp, 0xf16c)
	if err != nil {
		return Fig1Row{}, err
	}
	_, run, err := acc.RunSpMM(A, B, rl.Tag, nil)
	if err != nil {
		return Fig1Row{}, fmt.Errorf("fig1c %s sp=%.1f: %w", rl.Tag, sp, err)
	}
	am, err := analytical.SIGMA(analytical.SIGMAParams{
		M: m, N: n, K: k,
		SparsityA: A.Sparsity(), SparsityB: B.Sparsity(),
		MSSize: ms, Bandwidth: bw,
	})
	if err != nil {
		return Fig1Row{}, err
	}
	return Fig1Row{Layer: rl.Tag, Config: fmt.Sprintf("sp=%.0f%%", sp*100), ST: run.Cycles, AM: am}, nil
}

// convOperands builds deterministic input and weight tensors for a conv
// layer, pruning weights to the given sparsity.
func convOperands(l *dnn.Layer, sparsity float64) (in, w *tensor.Tensor) {
	cs := l.Conv
	rng := dnn.NewRNG(0xc04 + uint64(cs.K*cs.C*cs.X))
	in = tensor.New(1, cs.C, cs.X, cs.Y)
	for i, d := 0, in.Data(); i < len(d); i++ {
		v := rng.Normal()
		if v < 0 {
			v = 0
		}
		d[i] = float32(v)
	}
	w = tensor.New(cs.K, cs.C/cs.G, cs.R, cs.S)
	for i, d := 0, w.Data(); i < len(d); i++ {
		d[i] = float32(rng.Normal())
	}
	if sparsity > 0 {
		_ = pruneDense(w, sparsity)
	}
	return in, w
}
