package exp

import (
	"testing"
)

// The exp tests run everything at 1/16 scale so the whole suite stays
// fast; the assertions pin the *shapes* the paper reports, which are
// scale-invariant.
const testScale = 16

func TestRepresentativeLayers(t *testing.T) {
	layers, err := RepresentativeLayers(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 8 {
		t.Fatalf("got %d layers, want 8", len(layers))
	}
	seen := map[string]bool{}
	for _, l := range layers {
		if seen[l.Tag] {
			t.Errorf("duplicate tag %s", l.Tag)
		}
		seen[l.Tag] = true
		if l.Layer.MACs() <= 0 {
			t.Errorf("%s: zero MACs", l.Tag)
		}
	}
}

func TestFig1aRigidAgreement(t *testing.T) {
	rows, err := Fig1a(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Rigid architectures: cycle-level and analytical mostly agree; we
	// bound the mean ratio (the paper reports near-equality).
	var sum float64
	for _, r := range rows {
		sum += r.RatioSTOverAM()
	}
	mean := sum / float64(len(rows))
	if mean < 0.8 || mean > 1.4 {
		t.Errorf("mean ST/AM = %.2f, want near 1 for the rigid case", mean)
	}
}

func TestFig1bDivergesWithBandwidth(t *testing.T) {
	rows, err := Fig1b(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// The sequence-model layers are scale-invariant (no spatial dims), so
	// they pin the figure's headline precisely: ST matches AM at full
	// bandwidth and diverges towards ~4× at bw=32 (the paper's "up to
	// 400%"). The tiny scaled conv layers add fixed reload/reconfiguration
	// overheads the AM misses — also the paper's point, but noisier.
	get := func(layer, cfg string) float64 {
		for _, r := range rows {
			if r.Layer == layer && r.Config == cfg {
				return r.RatioSTOverAM()
			}
		}
		t.Fatalf("row %s/%s missing", layer, cfg)
		return 0
	}
	if v := get("B-L", "bw=128"); v < 0.9 || v > 1.1 {
		t.Errorf("B-L at full bandwidth: ST/AM = %.2f, want ≈ 1", v)
	}
	if v := get("B-L", "bw=64"); v < 1.8 {
		t.Errorf("B-L at bw=64: ST/AM = %.2f, want ≈ 2", v)
	}
	if v := get("B-L", "bw=32"); v < 3.5 {
		t.Errorf("B-L at bw=32: ST/AM = %.2f, want ≈ 4", v)
	}
	// Every layer's divergence must be monotone non-decreasing in
	// bandwidth pressure at the 10% level.
	for _, layer := range []string{"M-L", "R-L", "B-TR", "B-L"} {
		if get(layer, "bw=32") < get(layer, "bw=128")*0.9 {
			t.Errorf("%s: divergence shrank with bandwidth pressure", layer)
		}
	}
}

func TestFig1cDivergesWithSparsity(t *testing.T) {
	rows, err := Fig1c(testScale)
	if err != nil {
		t.Fatal(err)
	}
	worst := map[string]float64{}
	for _, r := range rows {
		if v := r.RatioSTOverAM(); v > worst[r.Config] {
			worst[r.Config] = v
		}
	}
	if !(worst["sp=90%"] > worst["sp=0%"]) {
		t.Errorf("divergence does not grow with sparsity: %v", worst)
	}
}

func TestFig5Shapes(t *testing.T) {
	rows, err := Fig5(testScale, []string{"S"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	byArch := map[string]Fig5Row{}
	for _, r := range rows {
		byArch[r.Arch] = r
	}
	// SIGMA exploits sparsity: fastest and most energy-efficient.
	if !(byArch["SIGMA-like"].Cycles < byArch["MAERI-like"].Cycles) {
		t.Error("SIGMA not faster than MAERI")
	}
	if !(byArch["SIGMA-like"].TotalEnergy < byArch["TPU-like"].TotalEnergy) {
		t.Error("SIGMA not more energy-efficient than TPU")
	}
	// The reduction network dominates every breakdown ordering of Fig 5b:
	// TPU > MAERI > SIGMA in RN share.
	share := func(r Fig5Row) float64 { return r.EnergyUJ["RN"] / r.TotalEnergy }
	if !(share(byArch["TPU-like"]) > share(byArch["MAERI-like"]) &&
		share(byArch["MAERI-like"]) > share(byArch["SIGMA-like"])) {
		t.Errorf("RN share ordering wrong: TPU %.2f MAERI %.2f SIGMA %.2f",
			share(byArch["TPU-like"]), share(byArch["MAERI-like"]), share(byArch["SIGMA-like"]))
	}
	// Area ordering (Fig. 5c): TPU < SIGMA < MAERI.
	if !(byArch["TPU-like"].TotalArea < byArch["SIGMA-like"].TotalArea &&
		byArch["SIGMA-like"].TotalArea < byArch["MAERI-like"].TotalArea) {
		t.Error("area ordering wrong")
	}
}

func TestFig6SNAPEAWins(t *testing.T) {
	rows, err := Fig6(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup < 1.0 {
			t.Errorf("%s: SNAPEA slower than baseline (%.2fx)", r.Model, r.Speedup)
		}
		if r.OpsNorm >= 1.0 {
			t.Errorf("%s: no operation reduction (%.2f)", r.Model, r.OpsNorm)
		}
		if r.MemNorm >= 1.0 {
			t.Errorf("%s: no memory-access reduction (%.2f)", r.Model, r.MemNorm)
		}
	}
}

func TestFig7FilterStats(t *testing.T) {
	a, b, err := Fig7(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 7 || len(b) != 7 {
		t.Fatalf("rows %d %d", len(a), len(b))
	}
	for _, r := range a {
		if r.AvgFilters <= 0 {
			t.Errorf("%s: no filters per round", r.Model)
		}
	}
	// Fig 7b: filter sizes must be genuinely variable (the paper's point).
	for _, r := range b {
		if len(r.Sizes) < 2 {
			continue
		}
		if r.Sizes[0] == r.Sizes[len(r.Sizes)-1] {
			t.Errorf("%s: first-layer filter sizes are uniform (%v...)", r.Model, r.Sizes[:2])
		}
	}
}

func TestFig9LFFWins(t *testing.T) {
	rows, err := Fig9(testScale, []string{"S"})
	if err != nil {
		t.Fatal(err)
	}
	var ns, lff uint64
	for _, r := range rows {
		switch r.Policy {
		case "NS":
			ns = r.Cycles
		case "LFF":
			lff = r.Cycles
		}
	}
	if lff >= ns {
		t.Errorf("LFF (%d) not faster than NS (%d)", lff, ns)
	}
}

func TestTableVRunAverage(t *testing.T) {
	rows, avg, err := TableVRun()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows %d", len(rows))
	}
	if avg > 0.10 {
		t.Errorf("average |error| vs RTL = %.1f%%, budget 10%%", 100*avg)
	}
}

// TestSumEnergyOrderIndependent pins the sorted walk behind Fig5Row's
// TotalEnergy: 1e16+1 rounds back to 1e16 in float64, so this map sums to
// 0 in sorted-key order but 1 in the order a, c, b — a map-iteration-order
// walk would flip between them across runs.
func TestSumEnergyOrderIndependent(t *testing.T) {
	br := map[string]float64{"a": 1e16, "b": 1, "c": -1e16}
	for i := 0; i < 50; i++ {
		if got := sumEnergy(br); got != 0 {
			t.Fatalf("call %d: sumEnergy = %v, want 0 (map-order drift)", i, got)
		}
	}
}
