package exp

import (
	"context"
	"fmt"

	"repro/internal/dnn"
	"repro/stonne"
)

// MulticoreRow is one point of the multi-core scaling figure: a chip of
// Cores identical cores running Streams inference streams of one model
// under one placement policy, with the wall-clock (makespan), the scaling
// metric (throughput and its speedup over the 1-core chip), and the
// contention the shared memory system charged.
type MulticoreRow struct {
	Model     string
	Arch      string
	Scale     int
	Cores     int
	Placement string
	Streams   int

	MakespanCycles uint64
	// SerialCycles is the summed per-op work — what one core would take.
	SerialCycles uint64
	// Throughput is streams completed per million chip cycles.
	Throughput float64
	// Speedup is Throughput over the 1-core chip's under the same policy.
	Speedup float64
	// ICNWaitCycles is the chip-wide shared-memory contention delay.
	ICNWaitCycles uint64
}

// MulticoreCores is the default core-count sweep of the scaling figure.
var MulticoreCores = []int{1, 2, 4}

// Multicore sweeps chip core counts under both placement policies on
// MobileNets (the multi-layer pipeline workload of the figure): each
// configuration runs the same Streams = 2×max-cores input streams, so the
// batch policy always has work for every core and the layer policy a full
// pipeline. Rows come out grouped by placement, core counts ascending,
// with Speedup normalized inside each placement group.
func Multicore(scale int) ([]MulticoreRow, error) {
	full, err := dnn.ModelByShort("M")
	if err != nil {
		return nil, err
	}
	m, err := dnn.ScaleSpatial(full, scale)
	if err != nil {
		return nil, err
	}
	w := dnn.InitWeights(m, 0xf165)
	if err := w.Prune(m.Sparsity); err != nil {
		return nil, err
	}
	hw := archHW("tpu", 256, 32)

	maxCores := MulticoreCores[len(MulticoreCores)-1]
	streams := 2 * maxCores
	inputs := make([]*stonne.Tensor, streams)
	for i := range inputs {
		inputs[i] = dnn.RandomInput(m, 0x1217+uint64(i))
	}

	var rows []MulticoreRow
	for _, placement := range []string{"layer", "batch"} {
		var base float64
		for _, cores := range MulticoreCores {
			_, cr, err := stonne.RunModelChip(context.Background(), m, w, inputs, hw,
				stonne.ChipOptions{Cores: cores, Placement: placement}, nil)
			if err != nil {
				return nil, fmt.Errorf("multicore %d-core %s: %w", cores, placement, err)
			}
			row := MulticoreRow{
				Model: full.Name, Arch: hw.Name, Scale: scale,
				Cores: cores, Placement: placement, Streams: streams,
				MakespanCycles: cr.MakespanCycles,
				SerialCycles:   cr.Total.Cycles,
				Throughput:     cr.Throughput(),
				ICNWaitCycles:  cr.ICNWaitCycles(),
			}
			if cores == MulticoreCores[0] {
				base = row.Throughput
			}
			if base > 0 {
				row.Speedup = row.Throughput / base
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
