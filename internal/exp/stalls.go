package exp

import (
	"context"
	"fmt"

	"repro/internal/dnn"
	"repro/internal/engine"
	"repro/internal/simpool"
	"repro/internal/stats"
	"repro/internal/trace"
)

// StallRow is one point of the stall-breakdown study: where the cycles of
// one layer on one configuration actually go, per tier. It is the
// cycle-attribution counterpart of Figure 1b — instead of showing *that*
// the flexible fabric loses cycles when bandwidth shrinks, it shows *which
// tier* stalls and on what.
type StallRow struct {
	Arch      string
	BW        int
	Layer     string
	Cycles    uint64
	Breakdown map[string]stats.CycleBreakdown
}

// Frac returns class count / total cycles for one tier of the row.
func (r StallRow) Frac(tier string, class func(stats.CycleBreakdown) uint64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(class(r.Breakdown[tier])) / float64(r.Cycles)
}

// stallJob is one (architecture, bandwidth, layer) sweep point.
type stallJob struct {
	arch string
	ms   int
	bw   int
	rl   RepLayer
}

// StallBreakdown runs the stall-attribution sweep serially.
func StallBreakdown(scale int) ([]StallRow, error) {
	return StallBreakdownPar(context.Background(), 1, scale)
}

// StallBreakdownPar sweeps a 128-multiplier MAERI configuration across
// shrinking Global Buffer bandwidth (128 → 64 → 32 elements/cycle) and a
// 16×16 TPU as the rigid reference, tracing every run and returning the
// per-tier cycle breakdowns. One simpool job per point.
func StallBreakdownPar(ctx context.Context, workers, scale int) ([]StallRow, error) {
	layers, err := RepresentativeLayers(scale)
	if err != nil {
		return nil, err
	}
	var jobs []stallJob
	for _, bw := range []int{128, 64, 32} {
		for _, rl := range layers {
			jobs = append(jobs, stallJob{arch: "maeri", ms: 128, bw: bw, rl: rl})
		}
	}
	for _, rl := range layers {
		jobs = append(jobs, stallJob{arch: "tpu", ms: 256, bw: 32, rl: rl})
	}
	return simpool.Map(ctx, workers, jobs,
		func(_ context.Context, _ int, j stallJob) (StallRow, error) {
			return stallPoint(j)
		})
}

func stallPoint(j stallJob) (StallRow, error) {
	hw := archHW(j.arch, j.ms, j.bw)
	hw.Preloaded = true
	hw.Trace = &trace.Config{}
	acc, err := engine.New(hw)
	if err != nil {
		return StallRow{}, err
	}
	var run *stats.Run
	if j.rl.Layer.Kind == dnn.Conv {
		in, w := convOperands(&j.rl.Layer, 0)
		_, run, err = acc.RunConv(in, w, j.rl.Layer.Conv, j.rl.Tag)
	} else {
		A, B, oerr := layerOperands(&j.rl.Layer, 0, 0x57a1)
		if oerr != nil {
			return StallRow{}, oerr
		}
		_, run, err = acc.RunGEMM(A, B, j.rl.Tag)
	}
	if err != nil {
		return StallRow{}, fmt.Errorf("stalls %s/%s bw=%d: %w", j.arch, j.rl.Tag, j.bw, err)
	}
	return StallRow{
		Arch: j.arch, BW: j.bw, Layer: j.rl.Tag,
		Cycles: run.Cycles, Breakdown: run.Breakdown,
	}, nil
}
