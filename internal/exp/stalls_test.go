package exp

import (
	"context"
	"testing"

	"repro/internal/stats"
)

func TestStallBreakdownSweep(t *testing.T) {
	rows, err := StallBreakdownPar(context.Background(), 0, testScale)
	if err != nil {
		t.Fatal(err)
	}
	// 3 MAERI bandwidth points × 8 layers + 8 TPU reference rows.
	if len(rows) != 32 {
		t.Fatalf("got %d rows, want 32", len(rows))
	}
	busy := func(b stats.CycleBreakdown) uint64 { return b.Busy }
	drain := func(b stats.CycleBreakdown) uint64 { return b.Drain }
	maeriCycles := map[int]map[string]uint64{}
	for _, r := range rows {
		if r.Cycles == 0 {
			t.Fatalf("%s/%s bw=%d: zero cycles", r.Arch, r.Layer, r.BW)
		}
		if len(r.Breakdown) != 4 {
			t.Fatalf("%s/%s bw=%d: %d tiers in breakdown", r.Arch, r.Layer, r.BW, len(r.Breakdown))
		}
		// The exactness invariant holds for every row and tier.
		for tier, b := range r.Breakdown {
			if b.Total() != r.Cycles {
				t.Errorf("%s/%s bw=%d tier %s: sums to %d of %d cycles",
					r.Arch, r.Layer, r.BW, tier, b.Total(), r.Cycles)
			}
		}
		if r.Arch == "maeri" {
			if maeriCycles[r.BW] == nil {
				maeriCycles[r.BW] = map[string]uint64{}
			}
			maeriCycles[r.BW][r.Layer] = r.Cycles
		} else if f := r.Frac("MN", busy) + r.Frac("MN", drain); f < 0.999 {
			// The rigid TPU reference never stalls from preloaded buffers:
			// every MN cycle is stream (busy) or fixed pipeline drain.
			t.Errorf("tpu/%s: MN busy+drain fraction %.3f, want 1", r.Layer, f)
		}
	}
	// The Fig. 1b shape the table explains: shrinking bandwidth never makes
	// a layer faster — the extra cycles the breakdown attributes are real.
	for _, pair := range [][2]int{{128, 64}, {64, 32}} {
		for layer, hi := range maeriCycles[pair[0]] {
			if lo := maeriCycles[pair[1]][layer]; lo < hi {
				t.Errorf("%s: cycles fell from %d (bw=%d) to %d (bw=%d)", layer, hi, pair[0], lo, pair[1])
			}
		}
	}
}
