// Package exp implements the paper's evaluation: one function per table or
// figure, each returning structured rows that the cmd/experiments harness
// prints and the benchmark suite regenerates. Workload scaling (the
// documented substitution for the authors' multi-day cluster runs) is a
// parameter everywhere and recorded in the results.
package exp

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/dnn"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// RepLayer is one of the eight representative layers of Figure 1,
// "X-Y" = model tag - layer class.
type RepLayer struct {
	Tag   string // e.g. "S-SC"
	Model string
	Layer dnn.Layer
}

// repLayerSpecs names the concrete layer chosen for each Figure 1 tag.
var repLayerSpecs = []struct {
	tag, model, layer string
}{
	{"S-SC", "S", "fire4_squeeze"},
	{"S-EC", "S", "fire4_expand3x3"},
	{"M-FC", "M", "dw7"},
	{"M-L", "M", "fc"},
	{"R-C", "R", "res3_2_b"},
	{"R-L", "R", "fc"},
	{"B-TR", "B", "enc1_q"},
	{"B-L", "B", "enc1_ffn_up"},
}

// RepresentativeLayers returns the eight Figure 1 layers (Squeeze, Expand,
// Factorized and Regular Convolutions, Linear, Transformer) drawn from
// Squeezenet, Resnets-50, Mobilenets and BERT, at the given spatial scale.
func RepresentativeLayers(scale int) ([]RepLayer, error) {
	models := map[string]*dnn.Model{}
	for _, m := range dnn.AllModels() {
		s, err := dnn.ScaleSpatial(m, scale)
		if err != nil {
			return nil, err
		}
		models[m.Short] = s
	}
	var out []RepLayer
	for _, spec := range repLayerSpecs {
		m, ok := models[spec.model]
		if !ok {
			return nil, fmt.Errorf("exp: no model with tag %s", spec.model)
		}
		found := false
		for i := range m.Layers {
			if m.Layers[i].Name == spec.layer {
				out = append(out, RepLayer{Tag: spec.tag, Model: m.Name, Layer: m.Layers[i]})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("exp: layer %s not found in %s", spec.layer, m.Name)
		}
	}
	return out, nil
}

// layerOperands builds deterministic operand tensors for a representative
// layer: the weight/filter matrix and the input/im2col matrix of its GEMM
// lowering, with weights optionally pruned to a sparsity ratio.
func layerOperands(l *dnn.Layer, sparsity float64, seed uint64) (A, B *tensor.Tensor, err error) {
	m, n, k := l.GEMMDims()
	rng := dnn.NewRNG(seed)
	A = tensor.New(m, k)
	for i, d := 0, A.Data(); i < len(d); i++ {
		d[i] = float32(rng.Normal())
	}
	if sparsity > 0 {
		if err := pruneDense(A, sparsity); err != nil {
			return nil, nil, err
		}
	}
	B = tensor.New(k, n)
	for i, d := 0, B.Data(); i < len(d); i++ {
		v := rng.Normal()
		if v < 0 {
			v = 0 // post-ReLU activation statistics
		}
		d[i] = float32(v)
	}
	return A, B, nil
}

func pruneDense(t *tensor.Tensor, target float64) error {
	w := &dnn.Weights{ByLayer: map[string]*tensor.Tensor{"x": t}}
	return w.Prune(target)
}

// archHW resolves a preset from the architecture registry. The experiment
// definitions name only registered architectures, so a lookup failure is a
// programming error, not user input.
func archHW(name string, ms, bw int) config.Hardware {
	hw, err := sim.PresetHW(name, ms, bw)
	if err != nil {
		panic(err)
	}
	return hw
}
