package exp

import (
	"context"
	"reflect"
	"testing"
)

// The tentpole guarantee: fanning experiment jobs across a simpool must
// not change a single simulated number. Fig5 exercises the full stack
// (conv + gemm lowering, all three fabrics, energy model), so we run it
// serially and with several workers and require the rows to match
// bit-for-bit — cycles, MACs, utilization, and the complete per-model
// counter snapshots.
func TestFig5SerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig5 runs in -short mode")
	}
	ctx := context.Background()
	tags := []string{"M", "S"} // two models × three arches = six jobs
	serial, err := Fig5Par(ctx, 1, 2*testScale, tags)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 0} {
		par, err := Fig5Par(ctx, workers, 2*testScale, tags)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d rows, serial has %d", workers, len(par), len(serial))
		}
		for i := range serial {
			s, p := serial[i], par[i]
			if s.Model != p.Model || s.Arch != p.Arch {
				t.Fatalf("workers=%d row %d: order changed: %s/%s vs %s/%s",
					workers, i, s.Model, s.Arch, p.Model, p.Arch)
			}
			if s.Cycles != p.Cycles {
				t.Errorf("workers=%d %s/%s: cycles %d != %d", workers, s.Model, s.Arch, p.Cycles, s.Cycles)
			}
			if s.MACs != p.MACs {
				t.Errorf("workers=%d %s/%s: MACs %d != %d", workers, s.Model, s.Arch, p.MACs, s.MACs)
			}
			if s.Utilization != p.Utilization {
				t.Errorf("workers=%d %s/%s: utilization %v != %v", workers, s.Model, s.Arch, p.Utilization, s.Utilization)
			}
			if !reflect.DeepEqual(s.Counters, p.Counters) {
				t.Errorf("workers=%d %s/%s: counter snapshots differ", workers, s.Model, s.Arch)
				for k, v := range s.Counters {
					if p.Counters[k] != v {
						t.Logf("  %s: serial %d parallel %d", k, v, p.Counters[k])
					}
				}
			}
		}
	}
}

// Repeated serial runs must also be deterministic — the anchor the
// parallel comparison rests on.
func TestFig5SerialDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig5 runs in -short mode")
	}
	ctx := context.Background()
	tags := []string{"S"}
	a, err := Fig5Par(ctx, 1, 2*testScale, tags)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5Par(ctx, 1, 2*testScale, tags)
	if err != nil {
		t.Fatal(err)
	}
	// EnergyUJ folds a float map in Go's randomized iteration order (a
	// seed behavior), so determinism is pinned on the integer results and
	// the counter snapshots.
	for i := range a {
		if a[i].Cycles != b[i].Cycles || a[i].MACs != b[i].MACs ||
			a[i].Utilization != b[i].Utilization ||
			!reflect.DeepEqual(a[i].Counters, b[i].Counters) {
			t.Errorf("row %d (%s/%s): two serial Fig5 runs differ", i, a[i].Model, a[i].Arch)
		}
	}
}
