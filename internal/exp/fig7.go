package exp

import (
	"context"
	"sort"

	"repro/internal/dnn"
	"repro/internal/sched"
	"repro/internal/simpool"
	"repro/internal/tensor"
)

// Fig7aRow gives, per model, the average number of entire sparse filters
// that can be mapped simultaneously onto a 256-MS flexible architecture
// (Fig. 7a; the paper finds 4–8 for most models, fewer for Alexnet and
// BERT whose filters are larger).
type Fig7aRow struct {
	Model      string
	AvgFilters float64
}

// Fig7bRow gives the non-zero filter sizes of the first offloaded layer of
// each model (Fig. 7b), capped at the fabric size.
type Fig7bRow struct {
	Model string
	Sizes []int
}

// Fig7 computes both panels at the given scale and the Table I sparsity
// ratios, over a 256-switch fabric.
func Fig7(scale int) ([]Fig7aRow, []Fig7bRow, error) {
	return Fig7Par(context.Background(), 1, scale)
}

type fig7Pair struct {
	a Fig7aRow
	b Fig7bRow
}

// Fig7Par is Fig7 with one simpool job per model.
func Fig7Par(ctx context.Context, workers, scale int) ([]Fig7aRow, []Fig7bRow, error) {
	models := dnn.AllModels()
	pairs, err := simpool.Map(ctx, workers, models, func(_ context.Context, _ int, full *dnn.Model) (fig7Pair, error) {
		return fig7Model(full, scale)
	})
	if err != nil {
		return nil, nil, err
	}
	aRows := make([]Fig7aRow, len(pairs))
	bRows := make([]Fig7bRow, len(pairs))
	for i, p := range pairs {
		aRows[i], bRows[i] = p.a, p.b
	}
	return aRows, bRows, nil
}

func fig7Model(full *dnn.Model, scale int) (fig7Pair, error) {
	const capacity = 256
	m, err := dnn.ScaleSpatial(full, scale)
	if err != nil {
		return fig7Pair{}, err
	}
	w := dnn.InitWeights(m, 0xf167)
	if err := w.Prune(m.Sparsity); err != nil {
		return fig7Pair{}, err
	}
	var sumFilters, layerCount float64
	var first []int
	for i := range m.Layers {
		l := &m.Layers[i]
		nnz := filterNNZ(l, w)
		if nnz == nil {
			continue
		}
		rounds := sched.Pack(nnz, capacity, sched.NS, 0)
		if len(rounds) == 0 {
			continue
		}
		sumFilters += sched.FiltersPerRound(rounds)
		layerCount++
		if first == nil {
			first = append([]int(nil), nnz...)
			for j, v := range first {
				if v > capacity {
					first[j] = capacity
				}
			}
			sort.Sort(sort.Reverse(sort.IntSlice(first)))
		}
	}
	avg := 0.0
	if layerCount > 0 {
		avg = sumFilters / layerCount
	}
	return fig7Pair{
		a: Fig7aRow{Model: full.Name, AvgFilters: avg},
		b: Fig7bRow{Model: full.Name, Sizes: first},
	}, nil
}

// filterNNZ returns the non-zero count of each filter (row of the GEMM
// lowering) for a weighted layer, or nil for non-offloaded kinds.
func filterNNZ(l *dnn.Layer, w *dnn.Weights) []int {
	t, ok := w.ByLayer[l.Name]
	if !ok {
		return nil
	}
	switch l.Kind {
	case dnn.Conv:
		k := l.Conv.K
		per := t.Len() / k
		return rowNNZ(t, k, per)
	case dnn.Linear:
		return rowNNZ(t, l.Out, l.In)
	default:
		return nil
	}
}

func rowNNZ(t *tensor.Tensor, rows, cols int) []int {
	d := t.Data()
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		n := 0
		for c := 0; c < cols; c++ {
			if d[r*cols+c] != 0 {
				n++
			}
		}
		out[r] = n
	}
	return out
}
