package exp

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/simpool"
	"repro/internal/stats"
	"repro/stonne"
)

// Fig5Row is one bar of Figure 5: full-model inference of one DNN on one
// of the three use-case-1 architectures (TPU-like, MAERI-like,
// SIGMA-like), with cycles, the per-component energy breakdown and the
// area breakdown.
type Fig5Row struct {
	Model string
	Arch  string
	Scale int

	Cycles      uint64
	MACs        uint64
	Utilization float64

	EnergyUJ    map[string]float64
	TotalEnergy float64

	AreaUM2   map[string]float64
	TotalArea float64

	// Counters is the full-model aggregate counter snapshot — what the
	// serial-vs-parallel equivalence tests pin bit-for-bit.
	Counters map[string]uint64
}

// fig5Arches are the use-case-1 systems: 256 multipliers/adders, 128
// elements/cycle GB bandwidth for the flexible designs, full bandwidth for
// the TPU (Section VI-A).
func fig5Arches() []config.Hardware {
	return []config.Hardware{
		archHW("tpu", 256, 32),
		archHW("maeri", 256, 128),
		archHW("sigma", 256, 128),
	}
}

// Fig5 runs the complete inference of the requested models (nil = all
// seven of Table I) on the three architectures at the given spatial scale
// and returns one row per (model, architecture).
func Fig5(scale int, tags []string) ([]Fig5Row, error) {
	return Fig5Par(context.Background(), 1, scale, tags)
}

// fig5Job is one simulation unit: one model on one architecture. Each job
// rebuilds its model, weights and input from fixed seeds, so jobs share no
// mutable state and any worker count produces identical rows.
type fig5Job struct {
	tag string
	hw  config.Hardware
}

// Fig5Par is Fig5 fanned over a simpool: one job per (model, architecture),
// results in the serial row order regardless of completion order.
// workers <= 0 uses GOMAXPROCS; workers == 1 is exactly the serial loop.
func Fig5Par(ctx context.Context, workers, scale int, tags []string) ([]Fig5Row, error) {
	if tags == nil {
		tags = []string{"M", "S", "A", "R", "V", "S-M", "B"}
	}
	var jobs []fig5Job
	for _, tag := range tags {
		for _, hw := range fig5Arches() {
			jobs = append(jobs, fig5Job{tag: tag, hw: hw})
		}
	}
	return simpool.Map(ctx, workers, jobs, func(_ context.Context, _ int, j fig5Job) (Fig5Row, error) {
		return fig5Run(j.tag, j.hw, scale)
	})
}

// fig5Run simulates one (model, architecture) pair from scratch.
func fig5Run(tag string, hw config.Hardware, scale int) (Fig5Row, error) {
	full, err := dnn.ModelByShort(tag)
	if err != nil {
		return Fig5Row{}, err
	}
	m, err := dnn.ScaleSpatial(full, scale)
	if err != nil {
		return Fig5Row{}, err
	}
	w := dnn.InitWeights(m, 0xf165)
	if err := w.Prune(m.Sparsity); err != nil {
		return Fig5Row{}, err
	}
	input := dnn.RandomInput(m, 0x1217)
	mr, err := runModelStats(m, w, input, hw)
	if err != nil {
		return Fig5Row{}, fmt.Errorf("fig5 %s on %s: %w", m.Name, hw.Name, err)
	}
	counters := map[string]uint64{}
	for _, r := range mr.Runs {
		for k, v := range r.Counters {
			counters[k] += v
		}
	}
	row := Fig5Row{
		Model: full.Name, Arch: hw.Name, Scale: scale,
		Cycles: mr.TotalCycles(), MACs: mr.TotalMACs(),
		Utilization: mr.AvgUtilization(),
		EnergyUJ:    onChip(mr.EnergyBreakdown()),
		AreaUM2:     energy.Area(&hw),
		TotalArea:   energy.TotalArea(&hw),
		Counters:    counters,
	}
	row.TotalEnergy = sumEnergy(row.EnergyUJ)
	return row, nil
}

// sumEnergy totals a per-component energy map in sorted-key order: float
// addition is order-sensitive in the last bits, and Fig. 5 rows must be
// byte-identical across runs.
func sumEnergy(br map[string]float64) float64 {
	keys := make([]string, 0, len(br))
	for k := range br {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var t float64
	for _, k := range keys {
		t += br[k]
	}
	return t
}

// onChip keeps the four components of the paper's Fig. 5b breakdown
// (Global Buffer, Distribution, Multiplier and Reduction networks),
// dropping the off-chip DRAM and control bookkeeping.
func onChip(br map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for _, k := range []string{"GB", "DN", "MN", "RN"} {
		out[k] = br[k]
	}
	return out
}

// runModelStats offloads every compute-intensive layer onto the hardware
// and returns the aggregated statistics (without the functional output,
// which Fig. 5 does not need).
func runModelStats(m *dnn.Model, w *dnn.Weights, input *stonne.Tensor, hw config.Hardware) (*stats.ModelRun, error) {
	_, mr, err := stonne.RunModel(m, w, input, hw, nil)
	return mr, err
}
