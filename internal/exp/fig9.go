package exp

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dnn"
	"repro/internal/sched"
	"repro/internal/simpool"
	"repro/stonne"
)

// Fig9Row is one bar group of Figure 9a/9b: a model's full inference on
// the 256-MS SIGMA-like architecture under one filter-scheduling policy,
// normalized to the No-Scheduling run.
type Fig9Row struct {
	Model  string
	Policy string
	Scale  int

	Cycles      uint64
	Utilization float64
	EnergyUJ    float64

	// NormRuntime and NormEnergy are relative to the NS policy (1.0).
	NormRuntime float64
	NormEnergy  float64
}

// Fig9 runs the seven models under NS, RDM and LFF on the use-case-3
// system (256 multipliers, 128 elements/cycle bandwidth).
func Fig9(scale int, tags []string) ([]Fig9Row, error) {
	return Fig9Par(context.Background(), 1, scale, tags)
}

type fig9Job struct {
	tag string
	pol sched.Policy
}

// Fig9Par is Fig9 with one simpool job per (model, policy) run; the
// NS normalization is a serial post-pass over the ordered rows, exactly
// the arithmetic of the serial loop.
func Fig9Par(ctx context.Context, workers, scale int, tags []string) ([]Fig9Row, error) {
	if tags == nil {
		tags = []string{"M", "S", "A", "R", "V", "S-M", "B"}
	}
	policies := []sched.Policy{sched.NS, sched.RDM, sched.LFF}
	var jobs []fig9Job
	for _, tag := range tags {
		for _, pol := range policies {
			jobs = append(jobs, fig9Job{tag: tag, pol: pol})
		}
	}
	rows, err := simpool.Map(ctx, workers, jobs, func(_ context.Context, _ int, j fig9Job) (Fig9Row, error) {
		return fig9Run(j.tag, j.pol, scale)
	})
	if err != nil {
		return nil, err
	}
	// Normalize each policy row to its model's NS row (the first of each
	// group — policy order inside a group is fixed).
	var nsCycles uint64
	var nsEnergy float64
	for i := range rows {
		if rows[i].Policy == sched.NS.String() {
			nsCycles, nsEnergy = rows[i].Cycles, rows[i].EnergyUJ
		}
		rows[i].NormRuntime = float64(rows[i].Cycles) / float64(nsCycles)
		rows[i].NormEnergy = rows[i].EnergyUJ / nsEnergy
	}
	return rows, nil
}

// fig9Run simulates one model under one scheduling policy.
func fig9Run(tag string, pol sched.Policy, scale int) (Fig9Row, error) {
	hw := archHW("sigma", 256, 128)
	full, err := dnn.ModelByShort(tag)
	if err != nil {
		return Fig9Row{}, err
	}
	m, err := dnn.ScaleSpatial(full, scale)
	if err != nil {
		return Fig9Row{}, err
	}
	w := dnn.InitWeights(m, 0xf169)
	if err := w.Prune(m.Sparsity); err != nil {
		return Fig9Row{}, err
	}
	input := dnn.RandomInput(m, 0x919)
	_, mr, err := stonne.RunModel(m, w, input, hw, &stonne.RunOptions{Policy: pol})
	if err != nil {
		return Fig9Row{}, fmt.Errorf("fig9 %s %v: %w", m.Name, pol, err)
	}
	return Fig9Row{
		Model: full.Name, Policy: pol.String(), Scale: scale,
		Cycles:      mr.TotalCycles(),
		Utilization: mr.AvgUtilization(),
		EnergyUJ:    mr.TotalEnergy(),
	}, nil
}

// Fig9cRow is one layer of the Resnets-50 sensitivity study (Fig. 9c): the
// LFF runtime and energy of the layer normalized to its NS run.
type Fig9cRow struct {
	Layer       string
	NormRuntime float64
	NormEnergy  float64
	UtilGain    float64 // LFF − NS multiplier utilization
}

// Fig9c runs every offloaded Resnets-50 layer under NS and LFF and returns
// the rows sorted by sensitivity (most-improved first). The paper shows 14
// representative layers spanning its low/medium/high sensitivity classes;
// callers slice the extremes.
func Fig9c(scale int) ([]Fig9cRow, error) {
	return Fig9cPar(context.Background(), 1, scale)
}

// Fig9cPar is Fig9c with the NS and LFF full-model runs as two simpool
// jobs (each rebuilds its own model and weights).
func Fig9cPar(ctx context.Context, workers, scale int) ([]Fig9cRow, error) {
	mrs, err := simpool.Map(ctx, workers, []sched.Policy{sched.NS, sched.LFF},
		func(_ context.Context, _ int, pol sched.Policy) (*stonne.ModelRun, error) {
			hw := archHW("sigma", 256, 128)
			m, err := dnn.ScaleSpatial(dnn.ResNet50(), scale)
			if err != nil {
				return nil, err
			}
			w := dnn.InitWeights(m, 0xf169)
			if err := w.Prune(m.Sparsity); err != nil {
				return nil, err
			}
			input := dnn.RandomInput(m, 0x919)
			_, mr, err := stonne.RunModel(m, w, input, hw, &stonne.RunOptions{Policy: pol})
			if err != nil {
				return nil, fmt.Errorf("fig9c %v: %w", pol, err)
			}
			return mr, nil
		})
	if err != nil {
		return nil, err
	}

	runs := map[string][2]*stonne.Run{} // layer -> [NS, LFF]
	for pi, mr := range mrs {
		for _, r := range mr.Runs {
			pair := runs[r.Layer]
			pair[pi] = r
			runs[r.Layer] = pair
		}
	}
	var rows []Fig9cRow
	for layer, pair := range runs {
		ns, lff := pair[0], pair[1]
		if ns == nil || lff == nil || ns.Cycles == 0 {
			continue
		}
		rows = append(rows, Fig9cRow{
			Layer:       layer,
			NormRuntime: float64(lff.Cycles) / float64(ns.Cycles),
			NormEnergy:  lff.TotalEnergy() / ns.TotalEnergy(),
			UtilGain:    lff.Utilization - ns.Utilization,
		})
	}
	sort.Slice(rows, func(a, b int) bool {
		//lint:ignore floatcmp sort tie-break: exact inequality only decides whether to fall through to the Layer key, so no tolerance is wanted
		if rows[a].NormRuntime != rows[b].NormRuntime {
			return rows[a].NormRuntime < rows[b].NormRuntime
		}
		return rows[a].Layer < rows[b].Layer
	})
	return rows, nil
}
