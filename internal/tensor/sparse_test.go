package tensor

import (
	"testing"
	"testing/quick"
)

func sparseSample(r *quickRNG, rows, cols int, density float32) *Tensor {
	t := New(rows, cols)
	d := t.Data()
	for i := range d {
		if v := r.next(); v > 0 && v < density*4 { // roughly `density` fraction
			d[i] = v
		}
	}
	return t
}

// Property: dense → CSR → dense round-trips exactly.
func TestCSRRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newQuickRNG(seed)
		a := sparseSample(r, 7, 9, 0.3)
		csr, err := ToCSR(a)
		if err != nil {
			return false
		}
		d, _ := MaxAbsDiff(csr.Dense(), a)
		return d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: dense → bitmap → dense round-trips exactly.
func TestBitmapRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newQuickRNG(seed)
		a := sparseSample(r, 9, 13, 0.25)
		bm, err := ToBitmap(a)
		if err != nil {
			return false
		}
		d, _ := MaxAbsDiff(bm.Dense(), a)
		return d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the bitmap's CSR view equals the direct CSR conversion.
func TestBitmapCSRViewEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newQuickRNG(seed)
		a := sparseSample(r, 6, 11, 0.4)
		bm, _ := ToBitmap(a)
		direct, _ := ToCSR(a)
		view := bm.ToCSRView()
		if view.NNZ() != direct.NNZ() {
			return false
		}
		for i := range view.Vals {
			if view.Vals[i] != direct.Vals[i] || view.ColIdx[i] != direct.ColIdx[i] {
				return false
			}
		}
		for i := range view.RowPtr {
			if view.RowPtr[i] != direct.RowPtr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: SpMM over CSR equals dense MatMul.
func TestSpMMMatchesMatMulProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newQuickRNG(seed)
		a := sparseSample(r, 5, 8, 0.5)
		b := randQuick(r, 8, 6)
		csr, _ := ToCSR(a)
		got, err := SpMM(csr, b)
		if err != nil {
			return false
		}
		want, _ := MatMul(a, b)
		d, _ := MaxAbsDiff(got, want)
		return d < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCSRRowAccess(t *testing.T) {
	a, _ := FromSlice([]float32{0, 1, 0, 2, 0, 3}, 2, 3)
	csr, _ := ToCSR(a)
	if csr.RowNNZ(0) != 1 || csr.RowNNZ(1) != 2 {
		t.Errorf("row nnz %d %d", csr.RowNNZ(0), csr.RowNNZ(1))
	}
	idx, vals := csr.Row(1)
	if len(idx) != 2 || idx[0] != 0 || vals[1] != 3 {
		t.Errorf("row 1: %v %v", idx, vals)
	}
}

func TestBitmapBits(t *testing.T) {
	a, _ := FromSlice([]float32{0, 5, 0, 0, 0, 7}, 2, 3)
	bm, _ := ToBitmap(a)
	if !bm.Bit(0, 1) || bm.Bit(0, 0) || !bm.Bit(1, 2) {
		t.Error("bitmap bits wrong")
	}
	if bm.RowNNZ(0) != 1 || bm.RowNNZ(1) != 1 {
		t.Error("bitmap row nnz wrong")
	}
	if bm.NNZ() != 2 {
		t.Errorf("NNZ = %d", bm.NNZ())
	}
}

func TestSparseRankErrors(t *testing.T) {
	bad := New(2, 2, 2)
	if _, err := ToCSR(bad); err == nil {
		t.Error("rank-3 accepted by ToCSR")
	}
	if _, err := ToBitmap(bad); err == nil {
		t.Error("rank-3 accepted by ToBitmap")
	}
	a := New(2, 3)
	csr, _ := ToCSR(a)
	if _, err := SpMM(csr, New(4, 2)); err == nil {
		t.Error("SpMM dim mismatch accepted")
	}
}

func TestIm2ColShapes(t *testing.T) {
	cs := ConvShape{R: 2, S: 2, C: 2, G: 1, K: 1, N: 1, X: 3, Y: 3, Stride: 1}
	in := New(1, 2, 3, 3)
	for i, d := 0, in.Data(); i < len(d); i++ {
		d[i] = float32(i)
	}
	cols, err := Im2Col(in, cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cols.Dim(0) != 8 || cols.Dim(1) != 4 {
		t.Fatalf("im2col shape %v", cols.Shape())
	}
	// First column = window at (0,0): channel-major rows.
	want := []float32{0, 1, 3, 4, 9, 10, 12, 13}
	for r := 0; r < 8; r++ {
		if cols.At(r, 0) != want[r] {
			t.Errorf("col0[%d] = %v, want %v", r, cols.At(r, 0), want[r])
		}
	}
	if _, err := Im2Col(in, cs, 1); err == nil {
		t.Error("group out of range accepted")
	}
}

func TestSparseFormatString(t *testing.T) {
	if Bitmap.String() != "bitmap" || CSR.String() != "csr" {
		t.Error("format strings wrong")
	}
}
