package tensor

import (
	"testing"
	"testing/quick"
)

func sparseSample(r *quickRNG, rows, cols int, density float32) *Tensor {
	t := New(rows, cols)
	d := t.Data()
	for i := range d {
		if v := r.next(); v > 0 && v < density*4 { // roughly `density` fraction
			d[i] = v
		}
	}
	return t
}

// Property: dense → CSR → dense round-trips exactly.
func TestCSRRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newQuickRNG(seed)
		a := sparseSample(r, 7, 9, 0.3)
		csr, err := ToCSR(a)
		if err != nil {
			return false
		}
		d, _ := MaxAbsDiff(csr.Dense(), a)
		return d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: dense → bitmap → dense round-trips exactly.
func TestBitmapRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newQuickRNG(seed)
		a := sparseSample(r, 9, 13, 0.25)
		bm, err := ToBitmap(a)
		if err != nil {
			return false
		}
		d, _ := MaxAbsDiff(bm.Dense(), a)
		return d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the bitmap's CSR view equals the direct CSR conversion.
func TestBitmapCSRViewEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newQuickRNG(seed)
		a := sparseSample(r, 6, 11, 0.4)
		bm, _ := ToBitmap(a)
		direct, _ := ToCSR(a)
		view := bm.ToCSRView()
		if view.NNZ() != direct.NNZ() {
			return false
		}
		for i := range view.Vals {
			if view.Vals[i] != direct.Vals[i] || view.ColIdx[i] != direct.ColIdx[i] {
				return false
			}
		}
		for i := range view.RowPtr {
			if view.RowPtr[i] != direct.RowPtr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: SpMM over CSR equals dense MatMul.
func TestSpMMMatchesMatMulProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newQuickRNG(seed)
		a := sparseSample(r, 5, 8, 0.5)
		b := randQuick(r, 8, 6)
		csr, _ := ToCSR(a)
		got, err := SpMM(csr, b)
		if err != nil {
			return false
		}
		want, _ := MatMul(a, b)
		d, _ := MaxAbsDiff(got, want)
		return d < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCSRRowAccess(t *testing.T) {
	a, _ := FromSlice([]float32{0, 1, 0, 2, 0, 3}, 2, 3)
	csr, _ := ToCSR(a)
	if csr.RowNNZ(0) != 1 || csr.RowNNZ(1) != 2 {
		t.Errorf("row nnz %d %d", csr.RowNNZ(0), csr.RowNNZ(1))
	}
	idx, vals := csr.Row(1)
	if len(idx) != 2 || idx[0] != 0 || vals[1] != 3 {
		t.Errorf("row 1: %v %v", idx, vals)
	}
}

func TestBitmapBits(t *testing.T) {
	a, _ := FromSlice([]float32{0, 5, 0, 0, 0, 7}, 2, 3)
	bm, _ := ToBitmap(a)
	if !bm.Bit(0, 1) || bm.Bit(0, 0) || !bm.Bit(1, 2) {
		t.Error("bitmap bits wrong")
	}
	if bm.RowNNZ(0) != 1 || bm.RowNNZ(1) != 1 {
		t.Error("bitmap row nnz wrong")
	}
	if bm.NNZ() != 2 {
		t.Errorf("NNZ = %d", bm.NNZ())
	}
}

func TestSparseRankErrors(t *testing.T) {
	bad := New(2, 2, 2)
	if _, err := ToCSR(bad); err == nil {
		t.Error("rank-3 accepted by ToCSR")
	}
	if _, err := ToBitmap(bad); err == nil {
		t.Error("rank-3 accepted by ToBitmap")
	}
	a := New(2, 3)
	csr, _ := ToCSR(a)
	if _, err := SpMM(csr, New(4, 2)); err == nil {
		t.Error("SpMM dim mismatch accepted")
	}
}

// All-zero matrices and empty rows must round-trip through every encoding
// with nil index/value slices.
func TestSparseAllZeroAndEmptyRows(t *testing.T) {
	for _, a := range []*Tensor{
		New(4, 5), // all zero
		func() *Tensor { // only the middle row populated
			t := New(5, 3)
			t.Set(2.5, 2, 1)
			return t
		}(),
		New(1, 1),
	} {
		csr, err := ToCSR(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := csr.Validate(); err != nil {
			t.Fatalf("ToCSR invalid: %v", err)
		}
		if d, _ := MaxAbsDiff(csr.Dense(), a); d != 0 {
			t.Fatalf("CSR round trip diff %g", d)
		}
		bm, err := ToBitmap(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := bm.Validate(); err != nil {
			t.Fatalf("ToBitmap invalid: %v", err)
		}
		if d, _ := MaxAbsDiff(bm.Dense(), a); d != 0 {
			t.Fatalf("bitmap round trip diff %g", d)
		}
		view := bm.ToCSRView()
		if err := view.Validate(); err != nil {
			t.Fatalf("CSR view invalid: %v", err)
		}
		if d, _ := MaxAbsDiff(view.Dense(), a); d != 0 {
			t.Fatalf("CSR view round trip diff %g", d)
		}
	}
}

// A hand-built all-zero CSR with nil ColIdx/Vals is valid and usable.
func TestCSRNilSlicesHandled(t *testing.T) {
	m := &CSRMatrix{Rows: 3, Cols: 4, RowPtr: make([]int32, 4)}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(m.Dense(), New(3, 4)); d != 0 {
		t.Fatal("nil-slice CSR does not expand to zeros")
	}
	got, err := SpMM(m, New(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(got, New(3, 2)); d != 0 {
		t.Fatal("nil-slice SpMM not zero")
	}
	bm := &BitmapMatrix{Rows: 2, Cols: 5, Bits: make([]uint64, 1)}
	if err := bm.Validate(); err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(bm.Dense(), New(2, 5)); d != 0 {
		t.Fatal("nil-slice bitmap does not expand to zeros")
	}
}

// Malformed encodings are rejected by Validate and by SpMM, not executed.
func TestSparseValidateRejectsCorruption(t *testing.T) {
	bad := []*CSRMatrix{
		{Rows: 0, Cols: 3, RowPtr: []int32{0}},
		{Rows: 2, Cols: 3, RowPtr: []int32{0, 1}},                                               // RowPtr too short
		{Rows: 2, Cols: 3, RowPtr: []int32{1, 1, 1}, ColIdx: []int32{0}, Vals: []float32{1}},    // RowPtr[0] != 0
		{Rows: 2, Cols: 3, RowPtr: []int32{0, 2, 1}, ColIdx: []int32{0}, Vals: []float32{1}},    // decreasing
		{Rows: 2, Cols: 3, RowPtr: []int32{0, 1, 1}, ColIdx: []int32{5}, Vals: []float32{1}},    // col out of range
		{Rows: 2, Cols: 3, RowPtr: []int32{0, 1, 2}, ColIdx: []int32{0, 1}, Vals: []float32{1}}, // vals short
		{Rows: 1, Cols: 2, RowPtr: []int32{0, 1}, ColIdx: []int32{-1}, Vals: []float32{1}},      // negative col
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: corrupt CSR %+v accepted", i, m)
		}
	}
	if _, err := SpMM(bad[4], New(3, 2)); err == nil {
		t.Error("SpMM executed a CSR with out-of-range column indices")
	}
	badBM := []*BitmapMatrix{
		{Rows: 0, Cols: 4},
		{Rows: 2, Cols: 3, Bits: make([]uint64, 2)},                  // wrong word count
		{Rows: 2, Cols: 3, Bits: []uint64{1 << 10}},                  // stray bit past the end
		{Rows: 2, Cols: 3, Bits: []uint64{0b11}, Vals: []float32{1}}, // popcount mismatch
	}
	for i, m := range badBM {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: corrupt bitmap %+v accepted", i, m)
		}
	}
}

// Regression: a filter window larger than the padded input used to pass
// Validate — (X+2P-R)/Stride truncates -2/3 to 0, so OutX reported 1 —
// and crashed the flexible dense conv schedule downstream.
func TestConvShapeRejectsOverhangingWindow(t *testing.T) {
	cs := ConvShape{R: 7, S: 4, C: 2, G: 1, K: 4, N: 2, X: 1, Y: 8, Stride: 3, Padding: 2}
	if err := cs.Validate(); err == nil {
		t.Fatalf("window %dx%d over padded input %dx%d accepted (OutX=%d)",
			cs.R, cs.S, cs.X+2*cs.Padding, cs.Y+2*cs.Padding, cs.OutX())
	}
	// The same shape with enough padding is fine.
	ok := ConvShape{R: 3, S: 3, C: 1, G: 1, K: 1, N: 1, X: 1, Y: 1, Stride: 1, Padding: 1}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColShapes(t *testing.T) {
	cs := ConvShape{R: 2, S: 2, C: 2, G: 1, K: 1, N: 1, X: 3, Y: 3, Stride: 1}
	in := New(1, 2, 3, 3)
	for i, d := 0, in.Data(); i < len(d); i++ {
		d[i] = float32(i)
	}
	cols, err := Im2Col(in, cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cols.Dim(0) != 8 || cols.Dim(1) != 4 {
		t.Fatalf("im2col shape %v", cols.Shape())
	}
	// First column = window at (0,0): channel-major rows.
	want := []float32{0, 1, 3, 4, 9, 10, 12, 13}
	for r := 0; r < 8; r++ {
		if cols.At(r, 0) != want[r] {
			t.Errorf("col0[%d] = %v, want %v", r, cols.At(r, 0), want[r])
		}
	}
	if _, err := Im2Col(in, cs, 1); err == nil {
		t.Error("group out of range accepted")
	}
}

func TestSparseFormatString(t *testing.T) {
	if Bitmap.String() != "bitmap" || CSR.String() != "csr" {
		t.Error("format strings wrong")
	}
}
