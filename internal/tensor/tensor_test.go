package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 || a.Rank() != 3 || a.Dim(1) != 3 {
		t.Fatalf("bad metadata: len=%d rank=%d dim1=%d", a.Len(), a.Rank(), a.Dim(1))
	}
	a.Set(7, 1, 2, 3)
	if got := a.At(1, 2, 3); got != 7 {
		t.Errorf("At = %v, want 7", got)
	}
	if got := a.Data()[1*12+2*4+3]; got != 7 {
		t.Errorf("row-major layout broken: %v", got)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero dimension")
		}
	}()
	New(2, 0, 3)
}

func TestFromSliceErrors(t *testing.T) {
	if _, err := FromSlice(make([]float32, 5), 2, 3); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := FromSlice(nil, -1); err == nil {
		t.Error("negative dim accepted")
	}
	got, err := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil || got.At(1, 1) != 4 {
		t.Errorf("FromSlice: %v %v", got, err)
	}
}

func TestReshape(t *testing.T) {
	a := New(2, 6)
	a.Set(5, 1, 2)
	b, err := a.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.At(2, 0) != 5 { // same backing storage, offset 8
		t.Errorf("reshape lost data: %v", b.At(2, 0))
	}
	if _, err := a.Reshape(5, 5); err == nil {
		t.Error("bad reshape accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New(4)
	a.Set(1, 0)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 1 {
		t.Error("clone aliases original")
	}
}

func TestNNZSparsityApply(t *testing.T) {
	a := New(4)
	copy(a.Data(), []float32{0, 1, 0, -2})
	if a.NNZ() != 2 {
		t.Errorf("NNZ = %d", a.NNZ())
	}
	if s := a.Sparsity(); s != 0.5 {
		t.Errorf("Sparsity = %v", s)
	}
	a.Apply(func(v float32) float32 { return v * 2 })
	if a.At(3) != -4 {
		t.Errorf("Apply failed: %v", a.At(3))
	}
}

func TestMatMulSmall(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b, _ := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{19, 22, 43, 50}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Errorf("C[%d] = %v, want %v", i, v, want[i])
		}
	}
	if _, err := MatMul(a, New(3, 2)); err == nil {
		t.Error("inner-dim mismatch accepted")
	}
}

// Property: (A×B)×C == A×(B×C) within float tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newQuickRNG(seed)
		a := randQuick(r, 3, 4)
		b := randQuick(r, 4, 2)
		c := randQuick(r, 2, 5)
		ab, _ := MatMul(a, b)
		left, _ := MatMul(ab, c)
		bc, _ := MatMul(b, c)
		right, _ := MatMul(a, bc)
		d, _ := MaxAbsDiff(left, right)
		return d < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: multiplying by identity preserves the matrix.
func TestMatMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newQuickRNG(seed)
		a := randQuick(r, 5, 5)
		id := New(5, 5)
		for i := 0; i < 5; i++ {
			id.Set(1, i, i)
		}
		got, _ := MatMul(a, id)
		d, _ := MaxAbsDiff(got, a)
		return d < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConvShapeValidate(t *testing.T) {
	good := ConvShape{R: 3, S: 3, C: 4, G: 1, K: 8, N: 1, X: 8, Y: 8, Stride: 1, Padding: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid shape rejected: %v", err)
	}
	bad := []ConvShape{
		{R: 3, S: 3, C: 4, G: 3, K: 8, N: 1, X: 8, Y: 8, Stride: 1}, // C % G != 0
		{R: 3, S: 3, C: 4, G: 1, K: 8, N: 1, X: 8, Y: 8, Stride: 0}, // stride
		{R: 9, S: 9, C: 4, G: 1, K: 8, N: 1, X: 4, Y: 4, Stride: 1}, // empty output
		{R: 3, S: 3, C: 4, G: 1, K: 8, N: 1, X: 8, Y: 8, Stride: 1, Padding: -1},
	}
	for i, cs := range bad {
		if err := cs.Validate(); err == nil {
			t.Errorf("bad shape %d accepted: %+v", i, cs)
		}
	}
}

func TestConvShapeDims(t *testing.T) {
	cs := ConvShape{R: 3, S: 3, C: 6, G: 1, K: 4, N: 1, X: 7, Y: 7, Stride: 1}
	if cs.OutX() != 5 || cs.OutY() != 5 {
		t.Errorf("out dims %dx%d", cs.OutX(), cs.OutY())
	}
	m, n, k := cs.GEMMDims()
	if m != 4 || n != 25 || k != 54 {
		t.Errorf("GEMM dims %d %d %d", m, n, k)
	}
	if cs.MACs() != 4*25*54 {
		t.Errorf("MACs = %d", cs.MACs())
	}
}

// Property: Conv2D equals the explicit 7-loop convolution.
func TestConv2DMatchesDirectProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newQuickRNG(seed)
		cs := ConvShape{R: 3, S: 3, C: 2, G: 1, K: 3, N: 1, X: 6, Y: 6, Stride: 1, Padding: 1}
		in := randQuick(r, 1*cs.C*cs.X*cs.Y)
		inT, _ := in.Reshape(1, cs.C, cs.X, cs.Y)
		w := randQuick(r, cs.K*cs.C*cs.R*cs.S)
		wT, _ := w.Reshape(cs.K, cs.C, cs.R, cs.S)
		got, err := Conv2D(inT, wT, cs)
		if err != nil {
			return false
		}
		want := directConv(inT, wT, cs)
		d, _ := MaxAbsDiff(got, want)
		return d < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConv2DGrouped(t *testing.T) {
	cs := ConvShape{R: 3, S: 3, C: 4, G: 4, K: 4, N: 1, X: 5, Y: 5, Stride: 1, Padding: 1}
	r := newQuickRNG(77)
	in := randQuick(r, cs.C*cs.X*cs.Y)
	inT, _ := in.Reshape(1, cs.C, cs.X, cs.Y)
	w := randQuick(r, cs.K*1*cs.R*cs.S)
	wT, _ := w.Reshape(cs.K, 1, cs.R, cs.S)
	got, err := Conv2D(inT, wT, cs)
	if err != nil {
		t.Fatal(err)
	}
	want := directConv(inT, wT, cs)
	if d, _ := MaxAbsDiff(got, want); d > 1e-3 {
		t.Errorf("grouped conv differs by %v", d)
	}
}

// directConv is an independent 7-loop reference implementation.
func directConv(in, w *Tensor, cs ConvShape) *Tensor {
	xo, yo := cs.OutX(), cs.OutY()
	out := New(cs.N, cs.K, xo, yo)
	cg := cs.C / cs.G
	kg := cs.K / cs.G
	for n := 0; n < cs.N; n++ {
		for k := 0; k < cs.K; k++ {
			g := k / kg
			for ox := 0; ox < xo; ox++ {
				for oy := 0; oy < yo; oy++ {
					var acc float32
					for c := 0; c < cg; c++ {
						for r := 0; r < cs.R; r++ {
							for s := 0; s < cs.S; s++ {
								ix := ox*cs.Stride + r - cs.Padding
								iy := oy*cs.Stride + s - cs.Padding
								if ix < 0 || ix >= cs.X || iy < 0 || iy >= cs.Y {
									continue
								}
								acc += in.At(n, g*cg+c, ix, iy) * w.At(k, c, r, s)
							}
						}
					}
					out.Set(acc, n, k, ox, oy)
				}
			}
		}
	}
	return out
}

// quickRNG is a tiny local generator so property tests are hermetic.
type quickRNG struct{ s uint64 }

func newQuickRNG(seed int64) *quickRNG { return &quickRNG{s: uint64(seed)*2654435761 + 1} }

func (r *quickRNG) next() float32 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return float32(int64(r.s%2000)-1000) / 500
}

func randQuick(r *quickRNG, shape ...int) *Tensor {
	t := New(shape...)
	for i, d := 0, t.Data(); i < len(d); i++ {
		d[i] = r.next()
	}
	return t
}

func TestMaxAbsDiff(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2}, 2)
	b, _ := FromSlice([]float32{1, 5}, 2)
	d, err := MaxAbsDiff(a, b)
	if err != nil || math.Abs(d-3) > 1e-9 {
		t.Errorf("d=%v err=%v", d, err)
	}
	if _, err := MaxAbsDiff(a, New(3)); err == nil {
		t.Error("shape mismatch accepted")
	}
}
