package tensor

import "fmt"

// SparseFormat selects the encoding used by the sparse memory controller to
// describe the non-zero structure of an operand (Section IV-B of the paper:
// "supports both bitmap and CSR formats").
type SparseFormat int

const (
	// Bitmap stores a dense bit per element plus the packed non-zero values.
	Bitmap SparseFormat = iota
	// CSR stores row pointers, column indices and packed values.
	CSR
)

func (f SparseFormat) String() string {
	switch f {
	case Bitmap:
		return "bitmap"
	case CSR:
		return "csr"
	default:
		return fmt.Sprintf("SparseFormat(%d)", int(f))
	}
}

// CSRMatrix is a compressed-sparse-row matrix.
type CSRMatrix struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Vals       []float32
}

// BitmapMatrix is a bitmap-encoded sparse matrix: one bit per element in
// row-major order plus packed non-zero values.
type BitmapMatrix struct {
	Rows, Cols int
	Bits       []uint64
	Vals       []float32
}

// ToCSR converts a dense rank-2 tensor to CSR.
func ToCSR(t *Tensor) (*CSRMatrix, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("tensor: ToCSR requires rank-2 tensor, got %v", t.shape)
	}
	rows, cols := t.Dim(0), t.Dim(1)
	m := &CSRMatrix{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := t.data[i*cols+j]; v != 0 {
				m.ColIdx = append(m.ColIdx, int32(j))
				m.Vals = append(m.Vals, v)
			}
		}
		m.RowPtr[i+1] = int32(len(m.Vals))
	}
	return m, nil
}

// ToBitmap converts a dense rank-2 tensor to bitmap encoding.
func ToBitmap(t *Tensor) (*BitmapMatrix, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("tensor: ToBitmap requires rank-2 tensor, got %v", t.shape)
	}
	rows, cols := t.Dim(0), t.Dim(1)
	m := &BitmapMatrix{Rows: rows, Cols: cols, Bits: make([]uint64, (rows*cols+63)/64)}
	for i := 0; i < rows*cols; i++ {
		if v := t.data[i]; v != 0 {
			m.Bits[i/64] |= 1 << uint(i%64)
			m.Vals = append(m.Vals, v)
		}
	}
	return m, nil
}

// NNZ returns the number of stored non-zeros.
func (m *CSRMatrix) NNZ() int { return len(m.Vals) }

// Validate checks the CSR invariants: positive dimensions, a row-pointer
// array of Rows+1 monotone entries starting at 0 and ending at the
// non-zero count, matching index/value storage, and in-range column
// indices. An all-zero matrix is valid with nil ColIdx and Vals slices.
func (m *CSRMatrix) Validate() error {
	switch {
	case m.Rows <= 0 || m.Cols <= 0:
		return fmt.Errorf("tensor: CSR matrix has non-positive shape %dx%d", m.Rows, m.Cols)
	case len(m.RowPtr) != m.Rows+1:
		return fmt.Errorf("tensor: CSR RowPtr has %d entries, want %d", len(m.RowPtr), m.Rows+1)
	case m.RowPtr[0] != 0:
		return fmt.Errorf("tensor: CSR RowPtr starts at %d, want 0", m.RowPtr[0])
	case len(m.ColIdx) != len(m.Vals):
		return fmt.Errorf("tensor: CSR has %d column indices for %d values", len(m.ColIdx), len(m.Vals))
	case int(m.RowPtr[m.Rows]) != len(m.Vals):
		return fmt.Errorf("tensor: CSR RowPtr ends at %d, stores %d values", m.RowPtr[m.Rows], len(m.Vals))
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i+1] < m.RowPtr[i] {
			return fmt.Errorf("tensor: CSR RowPtr decreases at row %d (%d -> %d)", i, m.RowPtr[i], m.RowPtr[i+1])
		}
	}
	for p, j := range m.ColIdx {
		if j < 0 || int(j) >= m.Cols {
			return fmt.Errorf("tensor: CSR column index %d at position %d out of range [0,%d)", j, p, m.Cols)
		}
	}
	return nil
}

// NNZ returns the number of stored non-zeros.
func (m *BitmapMatrix) NNZ() int { return len(m.Vals) }

// Validate checks the bitmap invariants: positive dimensions, a bit array
// sized to the element count with no stray bits past the end, and exactly
// one packed value per set bit. An all-zero matrix is valid with a nil
// Vals slice.
func (m *BitmapMatrix) Validate() error {
	if m.Rows <= 0 || m.Cols <= 0 {
		return fmt.Errorf("tensor: bitmap matrix has non-positive shape %dx%d", m.Rows, m.Cols)
	}
	elems := m.Rows * m.Cols
	if want := (elems + 63) / 64; len(m.Bits) != want {
		return fmt.Errorf("tensor: bitmap has %d words for %d elements, want %d", len(m.Bits), elems, want)
	}
	pop := 0
	for w, bits := range m.Bits {
		if w == len(m.Bits)-1 && elems%64 != 0 {
			if bits>>(uint(elems%64)) != 0 {
				return fmt.Errorf("tensor: bitmap has bits set past element %d", elems)
			}
		}
		for ; bits != 0; bits &= bits - 1 {
			pop++
		}
	}
	if pop != len(m.Vals) {
		return fmt.Errorf("tensor: bitmap sets %d bits, stores %d values", pop, len(m.Vals))
	}
	return nil
}

// RowNNZ returns the non-zero count of row i.
func (m *CSRMatrix) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// Row returns the column indices and values of row i; the slices alias the
// matrix storage.
func (m *CSRMatrix) Row(i int) ([]int32, []float32) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Vals[lo:hi]
}

// Dense expands the CSR matrix back to a dense tensor.
func (m *CSRMatrix) Dense() *Tensor {
	t := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		idx, vals := m.Row(i)
		for p, j := range idx {
			t.data[i*m.Cols+int(j)] = vals[p]
		}
	}
	return t
}

// Bit reports whether element (i,j) is non-zero.
func (m *BitmapMatrix) Bit(i, j int) bool {
	p := i*m.Cols + j
	return m.Bits[p/64]&(1<<uint(p%64)) != 0
}

// RowNNZ returns the non-zero count of row i.
func (m *BitmapMatrix) RowNNZ(i int) int {
	n := 0
	for j := 0; j < m.Cols; j++ {
		if m.Bit(i, j) {
			n++
		}
	}
	return n
}

// Dense expands the bitmap matrix back to a dense tensor.
func (m *BitmapMatrix) Dense() *Tensor {
	t := New(m.Rows, m.Cols)
	p := 0
	for i := 0; i < m.Rows*m.Cols; i++ {
		if m.Bits[i/64]&(1<<uint(i%64)) != 0 {
			t.data[i] = m.Vals[p]
			p++
		}
	}
	return t
}

// ToCSRView reinterprets the bitmap matrix as CSR without touching the
// dense form; the sparse controller uses this when the user selects the CSR
// front format.
func (m *BitmapMatrix) ToCSRView() *CSRMatrix {
	c := &CSRMatrix{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int32, m.Rows+1)}
	p := 0
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.Bit(i, j) {
				c.ColIdx = append(c.ColIdx, int32(j))
				c.Vals = append(c.Vals, m.Vals[p])
				p++
			}
		}
		c.RowPtr[i+1] = int32(len(c.Vals))
	}
	return c
}

// SpMM multiplies CSR A (M×K) by dense B (K×N), the functional reference for
// the sparse controller. A malformed A (broken RowPtr, out-of-range column
// indices) reports an error instead of corrupting the product.
func SpMM(a *CSRMatrix, b *Tensor) (*Tensor, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if b.Rank() != 2 || b.Dim(0) != a.Cols {
		return nil, fmt.Errorf("tensor: SpMM dims mismatch: A is %dx%d, B is %v", a.Rows, a.Cols, b.shape)
	}
	n := b.Dim(1)
	c := New(a.Rows, n)
	for i := 0; i < a.Rows; i++ {
		idx, vals := a.Row(i)
		crow := c.data[i*n : (i+1)*n]
		for p, k := range idx {
			av := vals[p]
			brow := b.data[int(k)*n : (int(k)+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return c, nil
}
