package tensor

import "fmt"

// MatMul computes C = A × B for A of shape (M,K) and B of shape (K,N).
// It is the functional reference against which simulated executions are
// validated.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMul requires rank-2 operands, got %v × %v", a.shape, b.shape)
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dims differ: %v × %v", a.shape, b.shape)
	}
	c := New(m, n)
	ad, bd, cd := a.data, b.data, c.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return c, nil
}

// ConvShape describes a convolution in STONNE's seven-parameter layer
// nomenclature: Layer(R, S, C, G, K, N, X', Y'). X and Y are the input
// spatial dimensions from which X' and Y' derive.
type ConvShape struct {
	R, S    int // filter rows, columns
	C       int // input channels (total, across all groups)
	G       int // groups (factorized convolutions have G == C)
	K       int // filters (total, across all groups)
	N       int // batch
	X, Y    int // input rows, columns
	Stride  int
	Padding int
}

// OutX returns X', the number of output rows.
func (cs ConvShape) OutX() int { return (cs.X+2*cs.Padding-cs.R)/cs.Stride + 1 }

// OutY returns Y', the number of output columns.
func (cs ConvShape) OutY() int { return (cs.Y+2*cs.Padding-cs.S)/cs.Stride + 1 }

// Validate reports a descriptive error for an inconsistent shape.
func (cs ConvShape) Validate() error {
	switch {
	case cs.R <= 0 || cs.S <= 0 || cs.C <= 0 || cs.K <= 0 || cs.N <= 0 || cs.X <= 0 || cs.Y <= 0:
		return fmt.Errorf("tensor: conv shape has non-positive dimension: %+v", cs)
	case cs.G <= 0:
		return fmt.Errorf("tensor: conv shape needs G >= 1, got %d", cs.G)
	case cs.C%cs.G != 0:
		return fmt.Errorf("tensor: channels %d not divisible by groups %d", cs.C, cs.G)
	case cs.K%cs.G != 0:
		return fmt.Errorf("tensor: filters %d not divisible by groups %d", cs.K, cs.G)
	case cs.Stride <= 0:
		return fmt.Errorf("tensor: stride must be positive, got %d", cs.Stride)
	case cs.Padding < 0:
		return fmt.Errorf("tensor: padding must be non-negative, got %d", cs.Padding)
	case cs.R > cs.X+2*cs.Padding || cs.S > cs.Y+2*cs.Padding:
		// Must be checked explicitly: Go's truncated division makes the
		// OutX/OutY formula report 1 (not <= 0) when the window overhangs
		// the padded input, since (X+2P-R)/Stride rounds -2/3 to 0.
		return fmt.Errorf("tensor: filter %dx%d exceeds padded input %dx%d: %+v",
			cs.R, cs.S, cs.X+2*cs.Padding, cs.Y+2*cs.Padding, cs)
	case cs.OutX() <= 0 || cs.OutY() <= 0:
		return fmt.Errorf("tensor: conv shape yields empty output: %+v", cs)
	}
	return nil
}

// GEMMDims returns the (M, N, K) of the GEMM that this convolution lowers to
// via im2col, per group: M = K/G filters, N = N·X'·Y' output pixels,
// K = R·S·C/G dot-product length.
func (cs ConvShape) GEMMDims() (m, n, k int) {
	return cs.K / cs.G, cs.N * cs.OutX() * cs.OutY(), cs.R * cs.S * cs.C / cs.G
}

// MACs returns the total multiply-accumulate count of the dense convolution.
func (cs ConvShape) MACs() int64 {
	m, n, k := cs.GEMMDims()
	return int64(cs.G) * int64(m) * int64(n) * int64(k)
}

// Im2Col lowers the input tensor of shape (N, C, X, Y) into the column
// matrix of shape (R·S·Cg, N·X'·Y') for one group g, so that a convolution
// becomes filterMatrix(Kg × R·S·Cg) × columns. Cg = C/G and Kg = K/G.
func Im2Col(in *Tensor, cs ConvShape, g int) (*Tensor, error) {
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	if in.Rank() != 4 || in.Dim(0) != cs.N || in.Dim(1) != cs.C || in.Dim(2) != cs.X || in.Dim(3) != cs.Y {
		return nil, fmt.Errorf("tensor: Im2Col input %v does not match conv shape %+v", in.shape, cs)
	}
	if g < 0 || g >= cs.G {
		return nil, fmt.Errorf("tensor: group %d out of range [0,%d)", g, cs.G)
	}
	cg := cs.C / cs.G
	xo, yo := cs.OutX(), cs.OutY()
	rows := cs.R * cs.S * cg
	cols := cs.N * xo * yo
	out := New(rows, cols)
	col := 0
	for n := 0; n < cs.N; n++ {
		for ox := 0; ox < xo; ox++ {
			for oy := 0; oy < yo; oy++ {
				row := 0
				for c := 0; c < cg; c++ {
					cc := g*cg + c
					for r := 0; r < cs.R; r++ {
						ix := ox*cs.Stride + r - cs.Padding
						for s := 0; s < cs.S; s++ {
							iy := oy*cs.Stride + s - cs.Padding
							var v float32
							if ix >= 0 && ix < cs.X && iy >= 0 && iy < cs.Y {
								v = in.At(n, cc, ix, iy)
							}
							out.data[row*cols+col] = v
							row++
						}
					}
				}
				col++
			}
		}
	}
	return out, nil
}

// FilterMatrix flattens the weight tensor of shape (K, C/G, R, S) into the
// (Kg × R·S·Cg) matrix for group g with the same row layout Im2Col produces
// (channel-major, then filter row, then filter column).
func FilterMatrix(w *Tensor, cs ConvShape, g int) (*Tensor, error) {
	cg := cs.C / cs.G
	kg := cs.K / cs.G
	if w.Rank() != 4 || w.Dim(0) != cs.K || w.Dim(1) != cg || w.Dim(2) != cs.R || w.Dim(3) != cs.S {
		return nil, fmt.Errorf("tensor: FilterMatrix weights %v do not match conv shape %+v", w.shape, cs)
	}
	if g < 0 || g >= cs.G {
		return nil, fmt.Errorf("tensor: group %d out of range [0,%d)", g, cs.G)
	}
	rows := kg
	cols := cs.R * cs.S * cg
	out := New(rows, cols)
	for kf := 0; kf < kg; kf++ {
		kk := g*kg + kf
		col := 0
		for c := 0; c < cg; c++ {
			for r := 0; r < cs.R; r++ {
				for s := 0; s < cs.S; s++ {
					out.data[kf*cols+col] = w.At(kk, c, r, s)
					col++
				}
			}
		}
	}
	return out, nil
}

// Conv2D computes the dense reference convolution producing a tensor of
// shape (N, K, X', Y'). It lowers each group with im2col and multiplies.
func Conv2D(in, w *Tensor, cs ConvShape) (*Tensor, error) {
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	xo, yo := cs.OutX(), cs.OutY()
	out := New(cs.N, cs.K, xo, yo)
	kg := cs.K / cs.G
	for g := 0; g < cs.G; g++ {
		cols, err := Im2Col(in, cs, g)
		if err != nil {
			return nil, err
		}
		fm, err := FilterMatrix(w, cs, g)
		if err != nil {
			return nil, err
		}
		prod, err := MatMul(fm, cols)
		if err != nil {
			return nil, err
		}
		// prod is (Kg × N·X'·Y'); scatter back into NCHW.
		nc := xo * yo
		for kf := 0; kf < kg; kf++ {
			kk := g*kg + kf
			for n := 0; n < cs.N; n++ {
				for p := 0; p < nc; p++ {
					out.Set(prod.At(kf, n*nc+p), n, kk, p/yo, p%yo)
				}
			}
		}
	}
	return out, nil
}
