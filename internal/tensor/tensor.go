// Package tensor provides the dense and sparse tensor substrate used by the
// DNN front end and by the simulated accelerators. It is deliberately small:
// row-major float32 tensors, GEMM, im2col, and the two sparse encodings
// (bitmap and CSR) that the STONNE sparse controller understands.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor of arbitrary rank.
type Tensor struct {
	shape   []int
	strides []int
	data    []float32
}

// New allocates a zero tensor with the given shape. It panics on a
// non-positive dimension, matching the behaviour of make for slices.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float32, n),
	}
	t.computeStrides()
	return t
}

// FromSlice wraps data in a tensor of the given shape. The data is not
// copied; the caller must not reuse it. The product of the shape must equal
// len(data).
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: non-positive dimension %d in shape %v", d, shape)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("tensor: shape %v requires %d elements, got %d", shape, n, len(data))
	}
	t := &Tensor{shape: append([]int(nil), shape...), data: data}
	t.computeStrides()
	return t, nil
}

func (t *Tensor) computeStrides() {
	t.strides = make([]int, len(t.shape))
	s := 1
	for i := len(t.shape) - 1; i >= 0; i-- {
		t.strides[i] = s
		s *= t.shape[i]
	}
}

// Shape returns the tensor's shape. The returned slice must not be modified.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data exposes the backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.shape[i]))
		}
		off += x * t.strides[i]
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view with a new shape; the total element count must be
// unchanged.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: non-positive dimension %d in reshape to %v", d, shape)
		}
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.data), shape, n)
	}
	v := &Tensor{shape: append([]int(nil), shape...), data: t.data}
	v.computeStrides()
	return v, nil
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, x := range t.data {
		t.data[i] = f(x)
	}
}

// NNZ counts the non-zero elements.
func (t *Tensor) NNZ() int {
	n := 0
	for _, x := range t.data {
		if x != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of zero elements in [0,1].
func (t *Tensor) Sparsity() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return 1 - float64(t.NNZ())/float64(len(t.data))
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// two tensors of identical shape, used for functional validation against the
// CPU reference executor.
func MaxAbsDiff(a, b *Tensor) (float64, error) {
	if !SameShape(a, b) {
		return 0, fmt.Errorf("tensor: shape mismatch %v vs %v", a.shape, b.shape)
	}
	max := 0.0
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if d > max {
			max = d
		}
	}
	return max, nil
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}
