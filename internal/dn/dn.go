// Package dn implements the three distribution networks of Section IV-A.1:
// the MAERI-style Tree Network, the SIGMA-style Benes Network, and the
// unicast Point-to-Point network used by systolic designs. A distribution
// network moves values from the Global Buffer read ports to multiplier
// switches under a per-cycle bandwidth budget, and accounts the link/switch
// activity the energy model consumes.
//
// The dn.active_cycles and dn.stall_cycles counters double as the trace
// layer's classification probes (internal/trace): their per-cycle deltas
// decide whether the DN tier was busy or bandwidth-stalled, so they must
// keep firing on exactly the cycles the network moves or blocks packets.
package dn

import (
	"fmt"
	"math/bits"

	"repro/internal/comp"
	"repro/internal/comp/names"
)

// Delivery is one unique value read from the Global Buffer this cycle,
// fanned out to a set of multiplier-switch destinations. Multicast is a
// single delivery with many destinations; the network decides what that
// costs in bandwidth and link energy.
type Delivery struct {
	Pkt   comp.Packet
	Dests []int
	// Forward marks a value that travels over the multiplier network's
	// forwarding links instead of the distribution tree (Linear MN
	// sliding-window reuse): it keeps its place in the delivery order but
	// consumes no GB read bandwidth.
	Forward bool
}

// Sink receives a packet at a multiplier switch; it returns false when the
// switch cannot accept (operand FIFO full), which back-pressures the
// network.
type Sink func(ms int, p comp.Packet) bool

// Prober reports whether a switch could accept a packet right now without
// delivering it — needed because a multicast must land atomically on every
// destination (a partial retry would duplicate packets).
type Prober func(ms int, p comp.Packet) bool

// Network is the common behaviour of all three DN types.
type Network interface {
	comp.Component
	// Offer enqueues a delivery into the injection queue; false means the
	// queue is full and the caller must retry next cycle.
	Offer(d Delivery) bool
	// Pending reports queued plus in-flight deliveries.
	Pending() int
	// SetSink wires the destination array (normally the multiplier
	// network).
	SetSink(s Sink)
	// SetProber wires the capacity check used for atomic multicast.
	SetProber(p Prober)
	// Bandwidth returns the per-cycle unique-element budget.
	Bandwidth() int
}

// queueCap bounds the injection queue: the controller may run at most this
// many deliveries ahead of the network.
const queueCap = 1024

type base struct {
	name      string
	leaves    int
	bandwidth int
	sink      Sink
	probe     Prober
	queue     []Delivery
	head      int // consumed prefix of queue (head-indexed pop)
	counters  *comp.Counters

	// Pre-resolved counter handles shared by all DN kinds (per-cycle path).
	cStalls, cInjections, cActive comp.Counter
}

func newBase(name string, leaves, bandwidth int, c *comp.Counters) base {
	return base{
		name:        name,
		leaves:      leaves,
		bandwidth:   bandwidth,
		counters:    c,
		cStalls:     c.Counter(names.DNStallCycles),
		cInjections: c.Counter(names.DNInjections),
		cActive:     c.Counter(names.DNActiveCycles),
	}
}

func (b *base) Name() string { return b.name }
func (b *base) Offer(d Delivery) bool {
	if len(d.Dests) == 0 {
		return true // nothing to deliver
	}
	if b.qlen() >= queueCap {
		return false
	}
	b.queue = append(b.queue, d)
	return true
}
func (b *base) Pending() int       { return b.qlen() }
func (b *base) SetSink(s Sink)     { b.sink = s }
func (b *base) SetProber(p Prober) { b.probe = p }
func (b *base) Bandwidth() int     { return b.bandwidth }

func (b *base) qlen() int { return len(b.queue) - b.head }

// Lookahead implements comp.Lookahead for every DN kind: with an empty
// injection queue a distribution network's Cycle is a pure no-op (no
// deliveries, no counters), so an idle network never bounds a fast-forward
// skip; with queued work it must tick.
func (b *base) Lookahead() uint64 {
	if b.qlen() == 0 {
		return comp.Unbounded
	}
	return 0
}

// Advance implements comp.Lookahead: an idle network has no per-cycle
// state, so skipped cycles replay as nothing at all.
func (b *base) Advance(uint64) {}

// qpop removes the head delivery without giving up the queue's backing
// array; the zeroed slot releases the Dests slice for the collector.
func (b *base) qpop() {
	b.queue[b.head] = Delivery{}
	b.head++
	if b.head > 64 && b.head*2 >= len(b.queue) {
		n := copy(b.queue, b.queue[b.head:])
		b.queue = b.queue[:n]
		b.head = 0
	}
}

func (b *base) deliverAll(d Delivery) bool {
	// All-or-nothing multicast: probe every destination first, then
	// deliver — a partial delivery retried next cycle would duplicate
	// packets at the destinations that already accepted.
	if b.probe != nil {
		for _, ms := range d.Dests {
			if !b.probe(ms, d.Pkt) {
				return false
			}
		}
	}
	for _, ms := range d.Dests {
		if !b.sink(ms, d.Pkt) {
			return false
		}
	}
	return true
}

// Tree is the MAERI binary distribution tree. One traversal serves an
// arbitrary multicast group in a single cycle; the bandwidth budget counts
// unique values (GB read ports feeding the tree roots).
type Tree struct {
	base
	cLinkTrav comp.Counter
	cForwards comp.Counter
	// stamp marks tree nodes visited during the current Steiner-edge
	// count (generation-tagged to avoid clearing between deliveries —
	// this count runs once per delivered value).
	stamp    []uint32
	stampGen uint32
}

// NewTree builds a tree DN over `leaves` multiplier switches with the given
// per-cycle unique-value bandwidth.
func NewTree(leaves, bandwidth int, c *comp.Counters) *Tree {
	return &Tree{
		base:      newBase("dn.tree", leaves, bandwidth, c),
		cLinkTrav: c.Counter(names.DNLinkTraversals),
		cForwards: c.Counter(names.MNForwards),
		stamp:     make([]uint32, 2*leaves),
	}
}

// Cycle pops up to bandwidth deliveries and multicasts each down the tree.
// Forwarded values ride the MN links instead of the tree — they save the
// GB read and the tree wire energy — but their injection is serialized
// through the same switch-configuration path, so they spend an injection
// slot like any other value. (Calibrated against the MAERI BSV cycle
// counts of Table V, which show no cycle-level benefit from
// sliding-window forwarding at the validation tile.)
func (t *Tree) Cycle() {
	n := 0
	for n < t.bandwidth && t.qlen() > 0 {
		d := t.queue[t.head]
		if !t.deliverAll(d) {
			t.cStalls.Add(1)
			break // head-of-line blocking until the MN drains
		}
		t.qpop()
		n++
		if d.Forward {
			t.cForwards.Add(uint64(len(d.Dests)))
			continue
		}
		t.cInjections.Add(1)
		t.cLinkTrav.Add(uint64(t.steinerEdges(d.Dests)))
	}
	if n > 0 {
		t.cActive.Add(1)
	}
}

// steinerEdges counts the distinct edges of the complete binary tree
// covered by the union of the root-to-leaf paths of the destination set —
// the wires a single multicast toggles. Visited nodes are marked with a
// per-call generation stamp, so the hot path allocates nothing.
func (t *Tree) steinerEdges(dests []int) int {
	if len(dests) == 0 {
		return 0
	}
	t.stampGen++
	if t.stampGen == 0 { // wrapped: reset all stamps once
		for i := range t.stamp {
			t.stamp[i] = 0
		}
		t.stampGen = 1
	}
	edges := 0
	for _, d := range dests {
		node := t.leaves + d // heap numbering: leaves occupy [leaves, 2*leaves)
		for node > 1 && t.stamp[node] != t.stampGen {
			t.stamp[node] = t.stampGen
			edges++ // each newly covered node contributes its parent edge
			node /= 2
		}
	}
	return edges
}

// Benes is the SIGMA N-input N-output non-blocking network with
// 2·log2(N)+1 switch levels. The streaming gather reads one operand per
// participating multiplier switch from the Global Buffer — a value needed
// by several clusters is fetched once per destination, so the bandwidth
// budget counts destinations, not unique values (this is the arithmetic of
// the paper's Fig. 8 example, and the reason cluster sizes and therefore
// filter scheduling affect performance). The network itself is
// non-blocking, so any set of disjoint paths proceeds in one cycle.
type Benes struct {
	base
	cSwitchTrav comp.Counter
	levels      int
	partial     int // destinations of the head delivery already served
}

// NewBenes builds a Benes DN over `leaves` destinations.
func NewBenes(leaves, bandwidth int, c *comp.Counters) *Benes {
	return &Benes{
		base:        newBase("dn.benes", leaves, bandwidth, c),
		cSwitchTrav: c.Counter(names.DNSwitchTraversals),
		levels:      2*log2ceil(leaves) + 1,
	}
}

// Cycle serves up to bandwidth destination deliveries, splitting a wide
// fan-out across cycles.
func (b *Benes) Cycle() {
	n := 0
	for n < b.bandwidth && b.qlen() > 0 {
		d := b.queue[b.head]
		for b.partial < len(d.Dests) && n < b.bandwidth {
			ms := d.Dests[b.partial]
			if b.probe != nil && !b.probe(ms, d.Pkt) {
				b.cStalls.Add(1)
				if n > 0 {
					b.cActive.Add(1)
				}
				return
			}
			if !b.sink(ms, d.Pkt) {
				b.cStalls.Add(1)
				if n > 0 {
					b.cActive.Add(1)
				}
				return
			}
			// Replication happens inside the network: the first copy of a
			// value traverses all levels; further copies of the same
			// delivery branch off mid-network and only pay the output
			// half. Mapping more clusters simultaneously widens fan-outs
			// and saves these hops — the DN energy gain the scheduling
			// study reports.
			hops := b.levels
			if b.partial > 0 {
				hops = (b.levels + 1) / 2
			}
			b.partial++
			n++
			b.cInjections.Add(1)
			b.cSwitchTrav.Add(uint64(hops))
		}
		if b.partial == len(d.Dests) {
			b.qpop()
			b.partial = 0
		}
	}
	if n > 0 {
		b.cActive.Add(1)
	}
}

// PointToPoint provides unicast-only delivery: a multicast to k
// destinations costs k bandwidth slots, the defining inefficiency of rigid
// interconnects.
type PointToPoint struct {
	base
	cLinkTrav comp.Counter
	partial   int // how many dests of the head delivery already went out
}

// NewPointToPoint builds the unicast DN.
func NewPointToPoint(leaves, bandwidth int, c *comp.Counters) *PointToPoint {
	return &PointToPoint{
		base:      newBase("dn.popn", leaves, bandwidth, c),
		cLinkTrav: c.Counter(names.DNLinkTraversals),
	}
}

// Cycle sends up to bandwidth unicasts, splitting multicast deliveries into
// one unicast per destination.
func (p *PointToPoint) Cycle() {
	n := 0
	for n < p.bandwidth && p.qlen() > 0 {
		d := p.queue[p.head]
		for p.partial < len(d.Dests) && n < p.bandwidth {
			ms := d.Dests[p.partial]
			if !p.sink(ms, d.Pkt) {
				p.cStalls.Add(1)
				if n > 0 {
					p.cActive.Add(1)
				}
				return
			}
			p.partial++
			n++
			p.cInjections.Add(1)
			p.cLinkTrav.Add(1)
		}
		if p.partial == len(d.Dests) {
			p.qpop()
			p.partial = 0
		}
	}
	if n > 0 {
		p.cActive.Add(1)
	}
}

// New constructs the DN named by the configuration.
func New(kind string, leaves, bandwidth int, c *comp.Counters) (Network, error) {
	switch kind {
	case "TN":
		return NewTree(leaves, bandwidth, c), nil
	case "BN":
		return NewBenes(leaves, bandwidth, c), nil
	case "PoPN":
		return NewPointToPoint(leaves, bandwidth, c), nil
	default:
		return nil, fmt.Errorf("dn: unknown distribution network %q", kind)
	}
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
