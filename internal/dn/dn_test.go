package dn

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/comp"
)

// collector is a sink that records deliveries and can simulate fullness.
type collector struct {
	got     map[int][]comp.Packet
	rejects map[int]bool
}

func newCollector() *collector {
	return &collector{got: map[int][]comp.Packet{}, rejects: map[int]bool{}}
}

func (c *collector) sink(ms int, p comp.Packet) bool {
	if c.rejects[ms] {
		return false
	}
	c.got[ms] = append(c.got[ms], p)
	return true
}

func (c *collector) probe(ms int, p comp.Packet) bool { return !c.rejects[ms] }

func (c *collector) count() int {
	n := 0
	for _, ps := range c.got {
		n += len(ps)
	}
	return n
}

func TestTreeMulticastSingleCycle(t *testing.T) {
	ctr := comp.NewCounters()
	tree := NewTree(16, 4, ctr)
	col := newCollector()
	tree.SetSink(col.sink)
	tree.SetProber(col.probe)
	// One multicast to 8 destinations = one bandwidth slot.
	tree.Offer(Delivery{Pkt: comp.Packet{Value: 1}, Dests: []int{0, 1, 2, 3, 4, 5, 6, 7}})
	tree.Cycle()
	if col.count() != 8 {
		t.Fatalf("multicast delivered %d, want 8", col.count())
	}
	if ctr.Get("dn.injections") != 1 {
		t.Errorf("injections = %d, want 1 (multicast is one traversal)", ctr.Get("dn.injections"))
	}
}

func TestTreeBandwidthLimit(t *testing.T) {
	ctr := comp.NewCounters()
	tree := NewTree(16, 2, ctr)
	col := newCollector()
	tree.SetSink(col.sink)
	for i := 0; i < 5; i++ {
		tree.Offer(Delivery{Pkt: comp.Packet{Seq: i}, Dests: []int{i}})
	}
	tree.Cycle()
	if col.count() != 2 {
		t.Fatalf("bw=2 delivered %d in one cycle", col.count())
	}
	tree.Cycle()
	tree.Cycle()
	if col.count() != 5 || tree.Pending() != 0 {
		t.Errorf("after 3 cycles delivered %d, pending %d", col.count(), tree.Pending())
	}
}

func TestTreeBackpressureIsAtomic(t *testing.T) {
	ctr := comp.NewCounters()
	tree := NewTree(8, 4, ctr)
	col := newCollector()
	col.rejects[3] = true
	tree.SetSink(col.sink)
	tree.SetProber(col.probe)
	tree.Offer(Delivery{Pkt: comp.Packet{Value: 9}, Dests: []int{1, 3, 5}})
	tree.Cycle()
	// Nothing may be delivered: destination 3 is full and multicast is
	// all-or-nothing (a partial retry would duplicate packets).
	if col.count() != 0 {
		t.Fatalf("partial multicast delivered %d packets", col.count())
	}
	col.rejects[3] = false
	tree.Cycle()
	if col.count() != 3 {
		t.Errorf("retry delivered %d", col.count())
	}
	if len(col.got[1]) != 1 {
		t.Errorf("destination 1 got %d copies, want exactly 1", len(col.got[1]))
	}
}

func TestSteinerEdges(t *testing.T) {
	tree := NewTree(16, 4, comp.NewCounters())
	// Full broadcast over N leaves covers all 2N-2 edges.
	all := make([]int, 16)
	for i := range all {
		all[i] = i
	}
	if got := tree.steinerEdges(all); got != 30 {
		t.Errorf("broadcast edges = %d, want 30", got)
	}
	// A single leaf is one root-to-leaf path: log2(N) edges.
	if got := tree.steinerEdges([]int{5}); got != 4 {
		t.Errorf("unicast edges = %d, want 4", got)
	}
	if got := tree.steinerEdges(nil); got != 0 {
		t.Errorf("empty multicast edges = %d", got)
	}
	// Two sibling leaves share all edges except the last level.
	if got := tree.steinerEdges([]int{0, 1}); got != 5 {
		t.Errorf("sibling pair edges = %d, want 5", got)
	}
	// Repeat with the same generation machinery: results stay stable.
	if got := tree.steinerEdges(all); got != 30 {
		t.Errorf("stamped recount = %d, want 30", got)
	}
}

func TestBenesPerDestinationBandwidth(t *testing.T) {
	ctr := comp.NewCounters()
	bn := NewBenes(16, 4, ctr)
	col := newCollector()
	bn.SetSink(col.sink)
	// One delivery with 6 destinations needs 2 cycles at bw=4: the gather
	// reads one operand per participating switch.
	bn.Offer(Delivery{Pkt: comp.Packet{Value: 2}, Dests: []int{0, 1, 2, 3, 4, 5}})
	bn.Cycle()
	if col.count() != 4 {
		t.Fatalf("cycle 1 delivered %d, want 4", col.count())
	}
	bn.Cycle()
	if col.count() != 6 || bn.Pending() != 0 {
		t.Errorf("cycle 2 delivered %d, pending %d", col.count(), bn.Pending())
	}
}

func TestPointToPointUnicastCost(t *testing.T) {
	ctr := comp.NewCounters()
	pp := NewPointToPoint(16, 3, ctr)
	col := newCollector()
	pp.SetSink(col.sink)
	pp.Offer(Delivery{Pkt: comp.Packet{}, Dests: []int{0, 1, 2, 3, 4}})
	pp.Cycle()
	if col.count() != 3 {
		t.Fatalf("bw=3 delivered %d", col.count())
	}
	pp.Cycle()
	if col.count() != 5 {
		t.Errorf("total %d", col.count())
	}
}

func TestNewByName(t *testing.T) {
	ctr := comp.NewCounters()
	for _, kind := range []string{"TN", "BN", "PoPN"} {
		n, err := New(kind, 8, 4, ctr)
		if err != nil || n == nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	if _, err := New("bogus", 8, 4, ctr); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestOfferQueueCap(t *testing.T) {
	ctr := comp.NewCounters()
	tree := NewTree(8, 1, ctr)
	accepted := 0
	for i := 0; i < queueCap+10; i++ {
		if tree.Offer(Delivery{Pkt: comp.Packet{}, Dests: []int{0}}) {
			accepted++
		}
	}
	if accepted != queueCap {
		t.Errorf("accepted %d, want %d", accepted, queueCap)
	}
	// Empty destination lists are accepted and dropped.
	if !tree.Offer(Delivery{}) {
		t.Error("empty delivery rejected")
	}
}

// Property: every offered packet is delivered exactly once, in order per
// destination, regardless of the network kind.
func TestExactlyOnceDeliveryProperty(t *testing.T) {
	f := func(seed int64, kindPick uint8) bool {
		ctr := comp.NewCounters()
		kinds := []string{"TN", "BN", "PoPN"}
		n, _ := New(kinds[int(kindPick)%3], 8, 2, ctr)
		col := newCollector()
		n.SetSink(col.sink)
		s := uint64(seed)*2654435761 + 7
		next := func(m int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(m))
		}
		total := 0
		for i := 0; i < 20; i++ {
			nd := 1 + next(4)
			dests := map[int]struct{}{}
			for len(dests) < nd {
				dests[next(8)] = struct{}{}
			}
			var dl []int
			for d := range dests {
				dl = append(dl, d)
			}
			sort.Ints(dl) // fixed dest order: keeps the property run deterministic per seed
			n.Offer(Delivery{Pkt: comp.Packet{Seq: i}, Dests: dl})
			total += nd
		}
		for c := 0; c < 200 && n.Pending() > 0; c++ {
			n.Cycle()
		}
		if col.count() != total {
			return false
		}
		for _, ps := range col.got {
			last := -1
			for _, p := range ps {
				if p.Seq <= last {
					return false // out of order or duplicate
				}
				last = p.Seq
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
