package config

import (
	"path/filepath"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, hw := range []Hardware{
		TPULike(256), TPULike(16),
		MAERILike(256, 128), MAERILike(32, 4),
		SIGMALike(128, 128), SNAPEALike(64, 64),
	} {
		if err := hw.Validate(); err != nil {
			t.Errorf("%s: %v", hw.Name, err)
		}
	}
}

func TestTableIVCompositions(t *testing.T) {
	// Table IV of the paper: controller / DN / MN / RN per architecture.
	tpu := TPULike(256)
	if tpu.Ctrl != DenseCtrl || tpu.DN != PointToPointDN || tpu.MN != LinearMN || tpu.RN != LinearRN {
		t.Errorf("TPU composition wrong: %+v", tpu)
	}
	maeri := MAERILike(256, 128)
	if maeri.Ctrl != DenseCtrl || maeri.DN != TreeDN || maeri.MN != LinearMN ||
		(maeri.RN != ARTRN && maeri.RN != ARTAccRN) {
		t.Errorf("MAERI composition wrong: %+v", maeri)
	}
	sigma := SIGMALike(256, 128)
	if sigma.Ctrl != SparseCtrl || sigma.DN != BenesDN || sigma.MN != DisabledMN || sigma.RN != FANRN {
		t.Errorf("SIGMA composition wrong: %+v", sigma)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Hardware){
		func(h *Hardware) { h.MSSize = 0 },
		func(h *Hardware) { h.MSSize = 100 }, // not a power of two
		func(h *Hardware) { h.DNBandwidth = 0 },
		func(h *Hardware) { h.RNBandwidth = -1 },
		func(h *Hardware) { h.GBSizeKB = 0 },
		func(h *Hardware) { h.FIFODepth = 0 },
		func(h *Hardware) { h.BytesPerElement = 0 },
	}
	for i, mutate := range cases {
		hw := MAERILike(128, 32)
		mutate(&hw)
		if err := hw.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Controller/fabric compatibility (Section IV-B: "the configured
	// memory controller must always be compatible with the substrate").
	hw := SIGMALike(128, 64)
	hw.MN = LinearMN
	if err := hw.Validate(); err == nil {
		t.Error("sparse controller with Linear MN accepted")
	}
	hw2 := MAERILike(128, 64)
	hw2.DN = BenesDN
	if err := hw2.Validate(); err == nil {
		t.Error("dense controller on Benes accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	hw := MAERILike(64, 16)
	hw.Preloaded = true
	path := filepath.Join(t.TempDir(), "hw.cfg")
	if err := hw.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != hw {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, hw)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.cfg")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadFileValidates(t *testing.T) {
	hw := MAERILike(64, 16)
	hw.MSSize = 100 // invalid after the fact
	path := filepath.Join(t.TempDir(), "bad.cfg")
	if err := hw.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("invalid config file accepted")
	}
}

func TestStringers(t *testing.T) {
	if TreeDN.String() != "TN" || BenesDN.String() != "BN" || PointToPointDN.String() != "PoPN" {
		t.Error("DN strings")
	}
	if LinearMN.String() != "LMN" || DisabledMN.String() != "DMN" {
		t.Error("MN strings")
	}
	if ARTRN.String() != "ART" || ARTAccRN.String() != "ART+ACC" || FANRN.String() != "FAN" || LinearRN.String() != "LRN" {
		t.Error("RN strings")
	}
	if DenseCtrl.String() != "dense" || SparseCtrl.String() != "sparse" || SNAPEACtrl.String() != "snapea" {
		t.Error("ctrl strings")
	}
	if OutputStationary.String() != "OS" || WeightStationary.String() != "WS" || InputStationary.String() != "IS" {
		t.Error("dataflow strings")
	}
	if FmtBitmap.String() != "bitmap" || FmtCSR.String() != "csr" {
		t.Error("format strings")
	}
}
