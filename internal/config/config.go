// Package config defines the hardware configuration of a simulated
// accelerator — the programmatic equivalent of STONNE's stonne_hw.cfg file.
// A configuration selects one module for each of the three on-chip network
// tiers (distribution, multiplier, reduction), a memory controller, and the
// memory-hierarchy parameters. Table IV of the paper gives the three
// canonical compositions, exposed here as presets.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/comp"
	"repro/internal/trace"
)

// DNType selects the distribution network (Section IV-A.1).
type DNType int

const (
	// TreeDN is the MAERI-style replicated binary distribution tree with
	// single-cycle unicast/multicast/broadcast.
	TreeDN DNType = iota
	// BenesDN is the SIGMA-style N×N non-blocking Benes topology.
	BenesDN
	// PointToPointDN provides unicast-only delivery, the building block of
	// systolic arrays such as the TPU.
	PointToPointDN
)

func (t DNType) String() string {
	switch t {
	case TreeDN:
		return "TN"
	case BenesDN:
		return "BN"
	case PointToPointDN:
		return "PoPN"
	default:
		return fmt.Sprintf("DNType(%d)", int(t))
	}
}

// MNType selects the multiplier network (Section IV-A.2).
type MNType int

const (
	// LinearMN keeps forwarding links between neighbouring multiplier
	// switches to exploit sliding-window reuse (MAERI, TPU).
	LinearMN MNType = iota
	// DisabledMN removes the forwarding links; the fabric computes plain
	// GEMMs (SIGMA, SpArch).
	DisabledMN
)

func (t MNType) String() string {
	switch t {
	case LinearMN:
		return "LMN"
	case DisabledMN:
		return "DMN"
	default:
		return fmt.Sprintf("MNType(%d)", int(t))
	}
}

// RNType selects the reduction network (Section IV-A.3).
type RNType int

const (
	// ARTRN is the MAERI augmented reduction tree: 3:1 adders plus
	// horizontal forwarding links for non-blocking virtual trees.
	ARTRN RNType = iota
	// ARTAccRN is ART with an accumulation buffer at the outputs so folded
	// partial sums pipeline across iterations.
	ARTAccRN
	// FANRN is the SIGMA forwarding adder network built from 2:1 adders.
	FANRN
	// LinearRN is the linear accumulation chain of rigid designs
	// (TPU, Eyeriss, ShiDianNao).
	LinearRN
)

func (t RNType) String() string {
	switch t {
	case ARTRN:
		return "ART"
	case ARTAccRN:
		return "ART+ACC"
	case FANRN:
		return "FAN"
	case LinearRN:
		return "LRN"
	default:
		return fmt.Sprintf("RNType(%d)", int(t))
	}
}

// CtrlType selects the memory controller (Section IV-B).
type CtrlType int

const (
	// DenseCtrl orchestrates data with a fixed mRNA-style tile partition.
	DenseCtrl CtrlType = iota
	// SparseCtrl runs GEMMs over bitmap/CSR operands with dynamic cluster
	// sizes.
	SparseCtrl
	// SNAPEACtrl extends the dense controller with SNAPEA's sign-sorted
	// weights and early negative cut-off (use case 2).
	SNAPEACtrl
)

func (t CtrlType) String() string {
	switch t {
	case DenseCtrl:
		return "dense"
	case SparseCtrl:
		return "sparse"
	case SNAPEACtrl:
		return "snapea"
	default:
		return fmt.Sprintf("CtrlType(%d)", int(t))
	}
}

// Dataflow selects the stationary dimension of the dense controller.
type Dataflow int

const (
	OutputStationary Dataflow = iota
	WeightStationary
	InputStationary
)

func (d Dataflow) String() string {
	switch d {
	case OutputStationary:
		return "OS"
	case WeightStationary:
		return "WS"
	case InputStationary:
		return "IS"
	default:
		return fmt.Sprintf("Dataflow(%d)", int(d))
	}
}

// SparseFmt mirrors tensor.SparseFormat without importing it (config sits
// at the bottom of the package graph).
type SparseFmt int

const (
	FmtBitmap SparseFmt = iota
	FmtCSR
)

func (f SparseFmt) String() string {
	if f == FmtCSR {
		return "csr"
	}
	return "bitmap"
}

// DRAM holds the off-chip memory model parameters (the role DRAMsim3 plays
// in the original tool).
type DRAM struct {
	// BandwidthGBs is the peak bandwidth per module in GB/s.
	BandwidthGBs float64
	// Modules is the number of HBM modules.
	Modules int
	// SizeMB is the capacity per module.
	SizeMB int
	// RowHitLatency / RowMissLatency in cycles.
	RowHitLatency, RowMissLatency int
	// RowBytes is the open-row size used for hit/miss modelling.
	RowBytes int
}

// Hardware is the complete accelerator description.
type Hardware struct {
	Name string

	// MSSize is the number of multiplier switches (processing elements).
	MSSize int

	DN   DNType
	MN   MNType
	RN   RNType
	Ctrl CtrlType

	// Dataflow is the dense controller's stationary choice. With
	// ForceDataflow unset it is a hint: the controller keeps whichever
	// GEMM operand has more reuse stationary (weight-stationary when the
	// streaming dimension is wide, input-stationary for batch-1
	// fully-connected layers). Setting ForceDataflow pins the choice —
	// the WS/IS knob of Section IV-B.
	Dataflow      Dataflow
	ForceDataflow bool

	// DNBandwidth is the number of elements per cycle the Global Buffer
	// can deliver into the distribution network (GB read ports).
	DNBandwidth int
	// RNBandwidth is the number of reduced elements per cycle the
	// reduction network can hand back to the Global Buffer (GB write
	// ports).
	RNBandwidth int

	// GBSizeKB is the Global Buffer capacity.
	GBSizeKB int
	// FIFODepth is the depth of the operand FIFOs at the multiplier
	// switches; it bounds how far delivery can run ahead of compute.
	FIFODepth int
	// AccumulationBuffer enables the ART+ACC accumulators.
	AccumulationBuffer bool

	// SparseFormat selects bitmap or CSR for the sparse controller.
	SparseFormat SparseFmt

	// BytesPerElement of the data type (1 for the paper's FP8 use cases).
	BytesPerElement int

	// ClockGHz is used only to convert cycles to seconds in reports.
	ClockGHz float64

	// Preloaded marks the STONNE-user-interface mode in which operands are
	// already resident in the Global Buffer, so runs skip the initial DRAM
	// fill — the mode the Table V microbenchmarks use.
	Preloaded bool

	// DisableFastForward forces the kernel's fully-ticked cycle loop even
	// where the event-driven fast-forward path could skip provably-steady
	// stretches (DRAM-stalled barriers, drain tails). Fast-forward is
	// bit-exact — cycles, counters and trace breakdowns are identical either
	// way, pinned by differential tests — so this is a validation escape
	// hatch (`stonne -fastforward=false`), not an accuracy knob.
	DisableFastForward bool

	DRAM DRAM

	// Trace enables cycle attribution for runs on this configuration
	// (per-tier busy/stall breakdowns, Chrome trace export, periodic
	// progress callbacks). Nil disables tracing at zero per-cycle cost.
	// It is runtime-only state carrying callbacks and is never serialized.
	Trace *trace.Config `json:"-"`

	// SharedMem, when non-nil, replaces the run-private DRAM model with a
	// port into a chip-shared memory system (sim.Chip): each new run
	// context asks the source for a port bound to the run's private counter
	// set, so contention is simulated chip-wide while accounting stays
	// per-run. Like Trace, it is runtime-only state and is never
	// serialized; nil keeps today's private-DRAM behaviour bit for bit.
	SharedMem MemPortSource `json:"-"`
}

// MemPort is the method set a run's engine composition drives off-chip
// memory through. It restates mem.Port structurally — config sits below
// mem in the package graph, so the seam is declared here and mem pins the
// two interfaces identical with compile-time assertions.
type MemPort interface {
	FetchCycles(n int) float64
	BeginPrefetch(now float64, n int)
	StallCycles(now float64) float64
	StallLookahead(now uint64) uint64
	AdvanceStall(n uint64)
	WriteBack(n int)
}

// MemPortSource hands each run context a memory port bound to the run's
// private counter set. A chip-shared memory system implements it once per
// core; the per-run rebinding is what keeps counter snapshots per-op while
// the timing state underneath is shared.
type MemPortSource interface {
	Port(c *comp.Counters) MemPort
}

// Validate reports a descriptive error for an inconsistent configuration.
func (h *Hardware) Validate() error {
	switch {
	case h.MSSize <= 0:
		return fmt.Errorf("config: MSSize must be positive, got %d", h.MSSize)
	case h.MSSize&(h.MSSize-1) != 0:
		return fmt.Errorf("config: MSSize must be a power of two (tree fabrics), got %d", h.MSSize)
	case h.DNBandwidth <= 0:
		return fmt.Errorf("config: DNBandwidth must be positive, got %d", h.DNBandwidth)
	case h.RNBandwidth <= 0:
		return fmt.Errorf("config: RNBandwidth must be positive, got %d", h.RNBandwidth)
	case h.GBSizeKB <= 0:
		return fmt.Errorf("config: GBSizeKB must be positive, got %d", h.GBSizeKB)
	case h.FIFODepth <= 0:
		return fmt.Errorf("config: FIFODepth must be positive, got %d", h.FIFODepth)
	case h.BytesPerElement <= 0:
		return fmt.Errorf("config: BytesPerElement must be positive, got %d", h.BytesPerElement)
	case h.Ctrl == SparseCtrl && h.MN != DisabledMN:
		return fmt.Errorf("config: the sparse controller requires the disabled multiplier network (got %v)", h.MN)
	case h.Ctrl == DenseCtrl && h.DN == BenesDN:
		return fmt.Errorf("config: the dense controller does not target the Benes network")
	}
	return nil
}

// defaultDRAM mirrors the paper's use-case system: two 256 GB/s, 512 MB
// HBM2 modules.
func defaultDRAM() DRAM {
	return DRAM{
		BandwidthGBs:   256,
		Modules:        2,
		SizeMB:         512,
		RowHitLatency:  14,
		RowMissLatency: 38,
		RowBytes:       2048,
	}
}

func base(name string, ms int) Hardware {
	return Hardware{
		Name:            name,
		MSSize:          ms,
		GBSizeKB:        108, // paper Section VI system parameters
		FIFODepth:       4,
		BytesPerElement: 1, // FP8
		ClockGHz:        1,
		DRAM:            defaultDRAM(),
	}
}

// TPULike composes the rigid output-stationary systolic array of Table IV:
// dense controller + PoPN + LMN + LRN. pes must be a perfect square; the
// array is √pes × √pes. Systolic operation requires full edge bandwidth,
// which the constructor sets.
func TPULike(pes int) Hardware {
	h := base("TPU-like", pes)
	h.DN = PointToPointDN
	h.MN = LinearMN
	h.RN = LinearRN
	h.Ctrl = DenseCtrl
	h.Dataflow = OutputStationary
	h.DNBandwidth = pes // full bandwidth, as the architecture requires
	h.RNBandwidth = isqrt(pes)
	return h
}

// MAERILike composes the flexible dense accelerator of Table IV: dense
// controller + TN + LMN + ART(+ACC).
func MAERILike(ms, bandwidth int) Hardware {
	h := base("MAERI-like", ms)
	h.DN = TreeDN
	h.MN = LinearMN
	h.RN = ARTAccRN
	h.AccumulationBuffer = true
	h.Ctrl = DenseCtrl
	h.Dataflow = WeightStationary
	h.DNBandwidth = bandwidth
	h.RNBandwidth = bandwidth
	return h
}

// SIGMALike composes the flexible sparse accelerator of Table IV: sparse
// controller + BN + DMN + FAN.
func SIGMALike(ms, bandwidth int) Hardware {
	h := base("SIGMA-like", ms)
	h.DN = BenesDN
	h.MN = DisabledMN
	h.RN = FANRN
	h.Ctrl = SparseCtrl
	h.Dataflow = WeightStationary
	h.DNBandwidth = bandwidth
	h.RNBandwidth = bandwidth
	h.SparseFormat = FmtBitmap
	return h
}

// SNAPEALike composes the use-case-2 accelerator: the MAERI-like back end
// driven by the SNAPEA memory controller (output-stationary linear MN, as
// the paper's implementation notes describe).
func SNAPEALike(ms, bandwidth int) Hardware {
	h := MAERILike(ms, bandwidth)
	h.Name = "SNAPEA-like"
	h.Ctrl = SNAPEACtrl
	h.Dataflow = OutputStationary
	return h
}

// WriteFile serialises the configuration as JSON — the analogue of the
// stonne_hw.cfg file a PyTorch user passes to a Simulated* operation.
func (h *Hardware) WriteFile(path string) error {
	b, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return fmt.Errorf("config: marshal: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("config: write %s: %w", path, err)
	}
	return nil
}

// ReadFile loads a configuration written by WriteFile.
func ReadFile(path string) (Hardware, error) {
	var h Hardware
	b, err := os.ReadFile(path)
	if err != nil {
		return h, fmt.Errorf("config: read %s: %w", path, err)
	}
	if err := json.Unmarshal(b, &h); err != nil {
		return h, fmt.Errorf("config: parse %s: %w", path, err)
	}
	if err := h.Validate(); err != nil {
		return h, err
	}
	return h, nil
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
