package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// checkPkgPath owns the numeric tolerance model (PR 4): ULP distance for
// exact-sum architectures, bounded relative error for reordered sums. It is
// the one package allowed to compare floats exactly.
const checkPkgPath = "repro/internal/check"

// FloatCmp returns the analyzer flagging == and != between float operands
// outside internal/check. Simulated datapaths reorder summation, so exact
// float equality either works by accident or encodes a tolerance decision
// that belongs to the check package's NumericContract machinery.
//
// Two carve-outs keep the signal honest:
//
//   - Comparison against constant zero is allowed. The zero sentinel is
//     load-bearing across the codebase — pruned weights are written as
//     literal 0 and sparsity formats/schedulers test for exactly that bit
//     pattern — and x == 0 guards before division are exact by
//     construction. Comparisons against any other constant, or between two
//     computed values, remain flagged.
//   - Test files are exempt: golden tests pin bit-exact outputs
//     deliberately (that bit-exactness is itself an invariant the parity
//     suites enforce).
func FloatCmp() *Analyzer {
	a := &Analyzer{
		Name: "floatcmp",
		Doc: "== / != on float operands (other than the exact-zero sentinel) is " +
			"reserved to internal/check, which owns the tolerance model",
	}
	a.Run = func(pass *Pass) error {
		if pass.Pkg.Path() == checkPkgPath {
			return nil
		}
		for _, f := range pass.Files {
			if pass.InTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				b, ok := n.(*ast.BinaryExpr)
				if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
					return true
				}
				if (isFloat(pass.Info, b.X) || isFloat(pass.Info, b.Y)) &&
					!isZeroConst(pass.Info, b.X) && !isZeroConst(pass.Info, b.Y) {
					pass.Reportf(b.OpPos, "%s compares float operands exactly: use internal/check helpers or an explicit tolerance", b.Op)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// isZeroConst reports whether e is a compile-time constant equal to zero
// (the sparsity sentinel / division guard carve-out).
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float, constant.Complex:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&(types.IsFloat|types.IsComplex) != 0
}
