package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveAnalyzerName attributes diagnostics about the suppression
// directives themselves (malformed or unknown-analyzer //lint:ignore
// comments). It is always active: a suppression that cannot justify itself
// must not be able to silence anything — including this check.
const DirectiveAnalyzerName = "lintignore"

const directivePrefix = "lint:ignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
	// file plus the inclusive line range the suppression covers: the
	// commented line itself for a trailing comment, the following line for
	// an own-line comment, the whole function for a doc-comment directive.
	file                 string
	fromLine, toLine     int
	malformed, unknownAn bool
}

// collectDirectives parses every //lint:ignore comment in the package and
// computes its coverage. known is the set of analyzer names the run
// understands; directives naming anything else are flagged rather than
// silently ignored (a typo'd name would otherwise suppress nothing and
// report nothing).
func collectDirectives(pkg *Package, known map[string]bool) []directive {
	var dirs []directive
	for _, f := range pkg.Files {
		tokFile := pkg.Fset.File(f.Pos())
		if tokFile == nil {
			continue
		}
		src := pkg.Src[tokFile.Name()]
		docRange := funcDocRanges(pkg.Fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				d := directive{
					pos:  pkg.Fset.Position(c.Pos()),
					file: tokFile.Name(),
				}
				fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
				if len(fields) == 0 {
					d.malformed = true
				} else {
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
					if d.reason == "" {
						d.malformed = true
					} else if !known[d.analyzer] {
						d.unknownAn = true
					}
				}
				if r, ok := docRange[cg]; ok {
					d.fromLine, d.toLine = r[0], r[1]
				} else if trailing(src, tokFile, c.Pos()) {
					d.fromLine = d.pos.Line
					d.toLine = d.pos.Line
				} else {
					next := pkg.Fset.Position(c.End()).Line + 1
					d.fromLine = next
					d.toLine = next
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// funcDocRanges maps each function doc comment group to the line range of
// its function, so a doc-level directive covers the whole body.
func funcDocRanges(fset *token.FileSet, f *ast.File) map[*ast.CommentGroup][2]int {
	out := make(map[*ast.CommentGroup][2]int)
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			out[fd.Doc] = [2]int{fset.Position(fd.Pos()).Line, fset.Position(fd.End()).Line}
		}
	}
	return out
}

// trailing reports whether the comment at pos shares its line with code.
func trailing(src []byte, tokFile *token.File, pos token.Pos) bool {
	if src == nil {
		return false
	}
	p := tokFile.Position(pos)
	lineStart := tokFile.Offset(tokFile.LineStart(p.Line))
	return strings.TrimSpace(string(src[lineStart:tokFile.Offset(pos)])) != ""
}

// directiveDiagnostics reports directives that are themselves broken.
func directiveDiagnostics(dirs []directive) []Diagnostic {
	var out []Diagnostic
	for _, d := range dirs {
		switch {
		case d.malformed:
			out = append(out, Diagnostic{
				Analyzer: DirectiveAnalyzerName,
				Pos:      d.pos,
				Message:  "suppression without a reason: want //lint:ignore <analyzer> <reason>",
			})
		case d.unknownAn:
			out = append(out, Diagnostic{
				Analyzer: DirectiveAnalyzerName,
				Pos:      d.pos,
				Message:  "//lint:ignore names unknown analyzer " + strconvQuote(d.analyzer),
			})
		}
	}
	return out
}

func strconvQuote(s string) string { return `"` + s + `"` }

// filterSuppressed drops diagnostics covered by a well-formed directive for
// their analyzer. Directive-hygiene diagnostics are never suppressible.
func filterSuppressed(diags []Diagnostic, dirs []directive) []Diagnostic {
	out := diags[:0]
	for _, diag := range diags {
		if diag.Analyzer != DirectiveAnalyzerName && suppressed(diag, dirs) {
			continue
		}
		out = append(out, diag)
	}
	return out
}

func suppressed(diag Diagnostic, dirs []directive) bool {
	for _, d := range dirs {
		if d.malformed || d.unknownAn {
			continue
		}
		if d.analyzer == diag.Analyzer && d.file == diag.Pos.Filename &&
			diag.Pos.Line >= d.fromLine && diag.Pos.Line <= d.toLine {
			return true
		}
	}
	return false
}
