package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// namesPkgPath owns the counter-name vocabulary; string constants declared
// there are the only way to spell a counter key (PR 2's invariant).
const namesPkgPath = "repro/internal/comp/names"

// compPkgPath declares the Counters type whose resolution methods the
// analyzer guards.
const compPkgPath = "repro/internal/comp"

// counterKeyMethods are the comp.Counters methods whose first argument is a
// counter name.
var counterKeyMethods = map[string]bool{
	"Add":     true,
	"Counter": true,
	"Get":     true,
}

// CounterNames returns the analyzer enforcing that counter keys reaching
// comp.Counters resolution are spelled through internal/comp/names
// constants. A string literal (or a local string constant) at the call
// site reintroduces exactly the typo'd-name-reads-as-zero failure mode the
// names package was built to remove. Test files are exempt: tests probe
// unknown keys and misspellings on purpose.
func CounterNames() *Analyzer {
	a := &Analyzer{
		Name: "counternames",
		Doc: "counter keys passed to comp.Counters.Add/Counter/Get must come from " +
			"internal/comp/names constants, not string literals at the call site",
	}
	a.Run = func(pass *Pass) error {
		if pass.Pkg.Path() == namesPkgPath {
			return nil
		}
		for _, f := range pass.Files {
			if pass.InTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !counterKeyMethods[sel.Sel.Name] {
					return true
				}
				if !isCountersMethod(pass.Info, sel) {
					return true
				}
				reportNonVocabularyKey(pass, sel.Sel.Name, call.Args[0])
				return true
			})
		}
		return nil
	}
	return a
}

// isCountersMethod reports whether sel selects a method of comp.Counters.
func isCountersMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Counters" && obj.Pkg() != nil && obj.Pkg().Path() == compPkgPath
}

// reportNonVocabularyKey walks the key expression and reports every string
// constant in it that does not originate in the names package. Dynamic
// values (variables, function results) pass: they carry names resolved at
// run time, e.g. the snapshot keys the trace recorder re-resolves.
func reportNonVocabularyKey(pass *Pass, method string, arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BasicLit:
			if e.Kind == token.STRING {
				pass.Reportf(e.Pos(), "string literal %s passed as counter key to Counters.%s: use an internal/comp/names constant", e.Value, method)
			}
		case *ast.Ident:
			reportForeignStringConst(pass, method, e, e)
		case *ast.SelectorExpr:
			reportForeignStringConst(pass, method, e.Sel, e)
			return false // don't descend into the package qualifier
		}
		return true
	})
}

// reportForeignStringConst flags id when it denotes a string constant
// declared outside internal/comp/names.
func reportForeignStringConst(pass *Pass, method string, id *ast.Ident, at ast.Expr) {
	obj := pass.Info.Uses[id]
	c, ok := obj.(*types.Const)
	if !ok {
		return
	}
	basic, ok := c.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return
	}
	if c.Pkg() != nil && c.Pkg().Path() == namesPkgPath {
		return
	}
	pass.Reportf(at.Pos(), "string constant %s (declared outside %s) passed as counter key to Counters.%s: move it into the names vocabulary", id.Name, shortPkg(namesPkgPath), method)
}

func shortPkg(path string) string {
	if i := strings.Index(path, "/internal/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
