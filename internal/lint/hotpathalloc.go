package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc returns the analyzer guarding PR 1's hot-path contract: the
// code that runs every simulated cycle performs no allocation and no map
// lookup. The per-tick call surface is discovered structurally, per
// package:
//
//   - Cycle() methods — the sim.Tickable / comp.Component tick callbacks;
//   - Next() (T, bool) methods — sim.Source schedule generators;
//   - Consume(T) methods — sim.Sink result consumers;
//   - Lookahead() uint64 and Advance(uint64) methods — the comp.Lookahead
//     fast-forward probes, called once per candidate skip at tick rate;
//   - functions wired into a sim.Kernel literal's Control / Done /
//     Progress / Err / Draining / Lookahead / Advance hooks (method values
//     and closures);
//   - extraRoots, a per-package-path list of "Type.Method" (or plain
//     function) names for hot leaves invoked from another package's tick
//     loop — e.g. mem.GlobalBuffer.Read, which engine controllers call per
//     cycle but which roots nothing structurally in its own package.
//
// From those roots the analyzer walks the package-local static call graph
// and flags allocating expressions and map indexing in every reachable
// function. Calls that cross a package boundary are not followed (each
// package is analyzed with its own roots); the Deadlock hook is deliberately
// not a root — it renders once, at abort, never per tick.
func HotPathAlloc(extraRoots map[string][]string) *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc: "per-tick code (Cycle/Next/Consume and sim.Kernel hooks, plus their " +
			"package-local callees) must stay free of allocations and map lookups",
	}
	a.Run = func(pass *Pass) error {
		h := &hotPaths{pass: pass}
		h.collectDecls()
		h.collectRoots(extraRoots[pass.Pkg.Path()])
		h.propagate()
		h.flag()
		return nil
	}
	return a
}

type hotFunc struct {
	decl *ast.FuncDecl
	// root holds the surface name the function was reached from, for the
	// diagnostic ("Cycle", "Next", a Kernel hook, ...). Empty = cold.
	root string
}

type hotPaths struct {
	pass  *Pass
	decls map[*types.Func]*hotFunc
	// rootLits are hot closure bodies (Kernel hook func literals).
	rootLits map[*ast.FuncLit]string
	work     []*types.Func
}

func (h *hotPaths) collectDecls() {
	h.decls = make(map[*types.Func]*hotFunc)
	h.rootLits = make(map[*ast.FuncLit]string)
	for _, f := range h.pass.Files {
		if h.pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := h.pass.Info.Defs[fd.Name].(*types.Func); ok {
				h.decls[fn] = &hotFunc{decl: fd}
			}
		}
	}
}

func (h *hotPaths) markRoot(fn *types.Func, why string) {
	hf, ok := h.decls[fn]
	if !ok || hf.root != "" {
		return
	}
	hf.root = why
	h.work = append(h.work, fn)
}

func (h *hotPaths) collectRoots(extra []string) {
	extraSet := make(map[string]bool, len(extra))
	for _, e := range extra {
		extraSet[e] = true
	}
	for fn, hf := range h.decls {
		fd := hf.decl
		if name := qualifiedName(fd); extraSet[name] {
			h.markRoot(fn, name+" (configured hot leaf)")
		}
		if fd.Recv == nil {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		switch fd.Name.Name {
		case "Cycle":
			if sig.Params().Len() == 0 && sig.Results().Len() == 0 {
				h.markRoot(fn, qualifiedName(fd)+" (tick callback)")
			}
		case "Next":
			if sig.Params().Len() == 0 && sig.Results().Len() == 2 && isBool(sig.Results().At(1).Type()) {
				h.markRoot(fn, qualifiedName(fd)+" (sim.Source)")
			}
		case "Consume":
			if sig.Params().Len() == 1 && sig.Results().Len() == 0 {
				h.markRoot(fn, qualifiedName(fd)+" (sim.Sink)")
			}
		case "Lookahead":
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 && isUint64(sig.Results().At(0).Type()) {
				h.markRoot(fn, qualifiedName(fd)+" (fast-forward probe)")
			}
		case "Advance":
			if sig.Params().Len() == 1 && sig.Results().Len() == 0 && isUint64(sig.Params().At(0).Type()) {
				h.markRoot(fn, qualifiedName(fd)+" (fast-forward advance)")
			}
		}
	}
	// sim.Kernel hook wiring.
	for _, f := range h.pass.Files {
		if h.pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !h.isKernelLit(lit) {
				return true
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "Control", "Done", "Progress", "Err", "Draining", "Lookahead", "Advance":
				default:
					continue
				}
				why := "sim.Kernel." + key.Name + " hook"
				switch v := kv.Value.(type) {
				case *ast.FuncLit:
					if h.rootLits[v] == "" {
						h.rootLits[v] = why
					}
				default:
					if fn := h.staticCallee(kv.Value); fn != nil {
						h.markRoot(fn, why)
					}
				}
			}
			return true
		})
	}
}

func (h *hotPaths) isKernelLit(lit *ast.CompositeLit) bool {
	tv, ok := h.pass.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Kernel" && obj.Pkg() != nil && obj.Pkg().Path() == simPkgPath
}

// staticCallee resolves an expression to a package-local declared function
// (method value f.ctrlCycle, or plain identifier).
func (h *hotPaths) staticCallee(e ast.Expr) *types.Func {
	var obj types.Object
	switch v := e.(type) {
	case *ast.Ident:
		obj = h.pass.Info.Uses[v]
	case *ast.SelectorExpr:
		obj = h.pass.Info.Uses[v.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if _, local := h.decls[fn]; !local {
		return nil
	}
	return fn
}

// propagate runs the BFS over package-local static calls.
func (h *hotPaths) propagate() {
	seenLit := make(map[*ast.FuncLit]bool)
	visit := func(body ast.Node, root string) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := h.staticCallee(call.Fun); fn != nil {
				h.markRoot(fn, root)
			}
			return true
		})
	}
	for lit, why := range h.rootLits {
		if !seenLit[lit] {
			seenLit[lit] = true
			visit(lit.Body, why)
		}
	}
	for len(h.work) > 0 {
		fn := h.work[len(h.work)-1]
		h.work = h.work[:len(h.work)-1]
		hf := h.decls[fn]
		visit(hf.decl.Body, hf.root)
	}
}

// flag reports allocating constructs in every hot body.
func (h *hotPaths) flag() {
	for _, hf := range h.decls {
		if hf.root != "" {
			h.flagBody(hf.decl.Body, hf.root)
		}
	}
	for lit, why := range h.rootLits {
		h.flagBody(lit.Body, why)
	}
}

func (h *hotPaths) flagBody(body ast.Node, root string) {
	info := h.pass.Info
	report := func(pos token.Pos, what string) {
		h.pass.Reportf(pos, "%s on the per-tick path (reachable from %s)", what, root)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.IndexExpr:
			if tv, ok := info.Types[e.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(e.Lbrack, "map index")
				}
			}
		case *ast.FuncLit:
			report(e.Pos(), "closure (captures escape to the heap)")
		case *ast.GoStmt:
			report(e.Pos(), "goroutine launch")
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(e.Pos(), "slice literal (allocates)")
				case *types.Map:
					report(e.Pos(), "map literal (allocates)")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringExpr(info, e.X) {
				report(e.OpPos, "string concatenation (allocates)")
			}
		case *ast.CallExpr:
			h.flagCall(e, report)
		}
		return true
	})
}

func (h *hotPaths) flagCall(call *ast.CallExpr, report func(token.Pos, string)) {
	info := h.pass.Info
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				report(call.Pos(), "append (may grow the backing array)")
			case "make":
				report(call.Pos(), "make (allocates)")
			case "new":
				report(call.Pos(), "new (allocates)")
			}
			return
		}
	}
	// Conversions between string and byte/rune slices.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := info.Types[call.Args[0]].Type
		if from != nil {
			if isStringType(to) && isByteOrRuneSlice(from.Underlying()) ||
				isByteOrRuneSlice(to) && isStringType(from.Underlying()) {
				report(call.Pos(), "string/slice conversion (copies and allocates)")
			}
		}
		return
	}
	// fmt.* — formatting always allocates.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
			if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
				report(call.Pos(), "fmt."+fn.Name()+" (formats and allocates)")
			}
		}
	}
}

func qualifiedName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type.Underlying())
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune)
}
