// Package fixture mirrors the chip-interconnect hot leaves: a grant method
// (the SharedDRAM.Serve shape) and a port method that calls it (the
// CorePort.FetchCycles shape). Both are configured roots, so allocation in
// either — or anything they reach — is flagged.
package fixture

type grantQueue struct {
	bankFree []float64
	waits    []float64
}

func (q *grantQueue) Serve(issue float64) float64 {
	q.waits = append(q.waits, issue) // want `append \(may grow the backing array\) on the per-tick path \(reachable from grantQueue.Serve \(configured hot leaf\)\)`
	return issue
}

type port struct {
	q    *grantQueue
	hist []float64
}

func (p *port) FetchCycles(n int) float64 {
	done := p.q.Serve(float64(n))
	p.hist = append(p.hist, done) // want `append \(may grow the backing array\) on the per-tick path \(reachable from port.FetchCycles \(configured hot leaf\)\)`
	return done
}

func (p *port) Coldpath() {
	p.hist = append(p.hist, 0) // not configured as a root: ok
}
