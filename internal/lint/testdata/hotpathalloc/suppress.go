package fixture

type schedule struct {
	items []int
	idx   map[int]int
}

// Next generates one schedule item. Its allocations are amortized over the
// many cycles each item occupies the fabric, which the doc-comment
// directive below records once for the whole function — the same
// convention the real schedule sources use.
//
//lint:ignore hotpathalloc fixture: per-item schedule generation is amortized across the item's cycles
func (s *schedule) Next() (int, bool) {
	s.items = append(s.items, 1)
	_ = make([]int, 4)
	_ = s.idx[0]
	return 0, true
}

type lineSuppressed struct{ vals []int }

func (l *lineSuppressed) Cycle() {
	//lint:ignore hotpathalloc fixture: bounded buffer reaches steady-state capacity
	l.vals = append(l.vals, 1)
	_ = make([]int, 2) // want `make \(allocates\) on the per-tick path`
}
