// Package fixture exercises the hotpathalloc analyzer: per-tick code
// (Cycle/Next/Consume methods, sim.Kernel hooks, their package-local
// callees and configured hot leaves) must not allocate or index maps.
package fixture

import (
	"fmt"

	"repro/internal/sim"
)

type ticker struct {
	byName map[string]int
	vals   []int
	label  string
}

func (t *ticker) Cycle() {
	_ = t.byName["x"]          // want `map index on the per-tick path`
	t.vals = append(t.vals, 1) // want `append \(may grow the backing array\) on the per-tick path`
	_ = fmt.Sprintf("%d", 1)   // want `fmt.Sprintf \(formats and allocates\) on the per-tick path`
	_ = t.label + "!"          // want `string concatenation \(allocates\) on the per-tick path`
	f := func() {}             // want `closure \(captures escape to the heap\) on the per-tick path`
	f()
	t.helper()
}

// helper is reachable from Cycle through the package-local call graph.
func (t *ticker) helper() {
	_ = make([]int, 8) // want `make \(allocates\) on the per-tick path \(reachable from ticker.Cycle`
}

// cold is never called from a tick root: the same constructs pass.
func (t *ticker) cold() {
	_ = t.byName["x"]
	_ = make([]int, 8)
	_ = fmt.Sprintf("%d", 1)
}

type source struct{ n int }

func (s *source) Next() (sim.WorkItem, bool) {
	_ = []int{1, 2, 3} // want `slice literal \(allocates\) on the per-tick path \(reachable from source.Next`
	return sim.WorkItem{}, false
}

type sink struct{ out []float32 }

func (s *sink) Consume(v float32) {
	s.out = append(s.out, v) // want `append \(may grow the backing array\) on the per-tick path \(reachable from sink.Consume`
}

type run struct {
	state map[int]int
	done  bool
}

// ctrl is rooted through the sim.Kernel Control hook below.
func (r *run) ctrl() {
	_ = r.state[3] // want `map index on the per-tick path \(reachable from sim.Kernel.Control hook\)`
}

func (r *run) kernel() *sim.Kernel {
	return &sim.Kernel{
		Control: r.ctrl,
		Done:    func() bool { return r.done },
		Progress: func() int {
			return len(r.state) // len on a map does not allocate: ok
		},
		Lookahead: r.bound,
		Advance: func(n uint64) {
			_ = r.state[int(n)] // want `map index on the per-tick path \(reachable from sim.Kernel.Advance hook\)`
		},
	}
}

// bound is rooted through the sim.Kernel Lookahead hook above.
func (r *run) bound() uint64 {
	_ = r.state[1] // want `map index on the per-tick path \(reachable from sim.Kernel.Lookahead hook\)`
	return 0
}

// probe is a structural fast-forward root: Lookahead() uint64 on a type.
type probe struct{ pending []int }

func (p *probe) Lookahead() uint64 {
	_ = append(p.pending, 1) // want `append \(may grow the backing array\) on the per-tick path \(reachable from probe.Lookahead`
	return 0
}

func (p *probe) Advance(n uint64) {
	_ = make([]int, n) // want `make \(allocates\) on the per-tick path \(reachable from probe.Advance`
}

// lookalike does not match the fast-forward signatures: not a root.
type lookalike struct{}

func (l *lookalike) Lookahead(extra int) uint64 { _ = make([]int, extra); return 0 }
func (l *lookalike) Advance() []int             { return make([]int, 1) }

// build is cold setup code: constructing the fabric allocates freely.
func build() *ticker {
	return &ticker{byName: make(map[string]int), vals: make([]int, 0, 64)}
}
