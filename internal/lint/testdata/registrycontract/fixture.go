// Package fixture exercises the registrycontract analyzer: sim.Register
// call sites must declare their NumericContract under a unique name.
package fixture

import (
	"repro/internal/config"
	"repro/internal/sim"
)

func match(config.Hardware) bool                { return false }
func preset(ms, bw int) config.Hardware         { return config.Hardware{} }
func build(config.Hardware) (sim.Runner, error) { return nil, nil }
func someArch() sim.Arch                        { return sim.Arch{} }

func register() {
	sim.Register(sim.Arch{ // complete registration: ok
		Name:     "good",
		Matches:  match,
		Preset:   preset,
		Build:    build,
		Contract: sim.NumericContract{ExactSum: true},
	})
	sim.Register(sim.Arch{ // want `Arch literal omits its NumericContract`
		Name:    "nocontract",
		Matches: match,
		Preset:  preset,
		Build:   build,
	})
	sim.Register(sim.Arch{
		Name:     "emptycontract",
		Matches:  match,
		Preset:   preset,
		Build:    build,
		Contract: sim.NumericContract{}, // want `empty NumericContract\{\} declares nothing`
	})
	sim.Register(sim.Arch{
		Name:     "good", // want `duplicate architecture name "good"`
		Matches:  match,
		Preset:   preset,
		Build:    build,
		Contract: sim.NumericContract{RelTol: 1e-5},
	})
	sim.Register(someArch()) // want `argument is not an Arch composite literal`
}

func suppressed() {
	//lint:ignore registrycontract prototype arch pending a measured tolerance (tracked in ROADMAP)
	sim.Register(sim.Arch{
		Name:    "prototype",
		Matches: match,
		Preset:  preset,
		Build:   build,
	})
}
