// Package fixture exercises hotpathalloc's configured hot leaves: methods
// named in the ExtraRoots table are tick-path roots even though nothing in
// their own package roots them structurally — the cross-package shape of
// mem.GlobalBuffer.Read and friends.
package fixture

type Leaf struct{ buf []byte }

func (l *Leaf) Touch() {
	l.buf = append(l.buf, 0) // want `append \(may grow the backing array\) on the per-tick path \(reachable from Leaf.Touch \(configured hot leaf\)\)`
}

func (l *Leaf) Unlisted() {
	l.buf = append(l.buf, 0) // not configured as a root: ok
}
