package pkg

import "identmod/shared"

func Use(s shared.S) int { return s.X }
