package pkg_test

import (
	"identmod/helper"
	"identmod/pkg"
)

// A shared.S built by helper (a dependency outside the under-test world)
// flows into pkg's API (checked against the shared-cache shared package):
// the two must be the same *types.Package or this fails to type-check.
var _ = pkg.Use(helper.Make())
