// Package shared is a dependency of both the package under test and the
// helper its external test imports — its type identity must be shared.
package shared

type S struct{ X int }
