// Package helper does NOT import pkg, so it must resolve through the
// shared import cache when pkg's external test is checked.
package helper

import "identmod/shared"

func Make() shared.S { return shared.S{X: 1} }
