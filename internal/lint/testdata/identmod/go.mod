module identmod

go 1.22
