// Package fixture exercises the ctxcancel analyzer: every cancel func
// returned by context.WithCancel/WithTimeout/WithDeadline must stay alive
// — deferred, called, passed or stored — never discarded.
package fixture

import (
	"context"
	"time"
)

func discarded(ctx context.Context) context.Context {
	ctx, _ = context.WithCancel(ctx) // want `cancel function from context.WithCancel is discarded`
	return ctx
}

func discardedTimeout(ctx context.Context) context.Context {
	out, _ := context.WithTimeout(ctx, time.Second) // want `cancel function from context.WithTimeout is discarded`
	return out
}

func overwritten(ctx context.Context) context.Context {
	ctx, cancel := context.WithCancel(ctx) // want `cancel function from context.WithCancel is never called`
	cancel = nil
	_ = cancel
	return ctx
}

func deferred(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	<-ctx.Done()
	return ctx.Err()
}

func calledOnPath(ctx context.Context, fail bool) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithDeadline(ctx, time.Unix(1, 0))
	if fail {
		cancel()
	}
	// Escaping to the caller also counts as keeping it alive.
	return ctx, cancel
}

func storedAway(ctx context.Context, sink *[]context.CancelFunc) context.Context {
	ctx, cancel := context.WithCancel(ctx)
	*sink = append(*sink, cancel)
	return ctx
}

func suppressed(ctx context.Context) context.Context {
	//lint:ignore ctxcancel process-lifetime context; cancellation happens at exit
	ctx, _ = context.WithCancel(ctx)
	return ctx
}
