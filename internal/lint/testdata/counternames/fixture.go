// Package fixture exercises the counternames analyzer: counter keys
// reaching comp.Counters resolution must come from internal/comp/names.
package fixture

import (
	"repro/internal/comp"
	"repro/internal/comp/names"
)

// localKey is a string constant declared outside the names vocabulary.
const localKey = "local.counter"

func violations(c *comp.Counters) {
	c.Add("gb.reads", 1)        // want `string literal "gb.reads" passed as counter key`
	_ = c.Counter("mn.mults")   // want `string literal "mn.mults" passed as counter key`
	_ = c.Get("rn.outputs")     // want `string literal "rn.outputs" passed as counter key`
	c.Add(localKey, 1)          // want `string constant localKey \(declared outside internal/comp/names\)`
	c.Add(names.GBReads+"x", 2) // want `string literal "x" passed as counter key`
}

func allowed(c *comp.Counters, dynamic string) {
	c.Add(names.GBReads, 1)      // vocabulary constant: ok
	_ = c.Counter(names.MNMults) // ok
	_ = c.Get(names.RNOutputs)   // ok
	c.Add(dynamic, 1)            // runtime-derived name: ok
	h := c.Counter(names.DNStallCycles)
	h.Add(3) // Counter-handle Add takes a count, not a key: ok
}

func suppressed(c *comp.Counters) {
	//lint:ignore counternames fixture proves a justified suppression silences the finding
	c.Add("dram.reads", 1)
	c.Add("dram.writes", 1) //lint:ignore counternames trailing-comment form is honored too
}

func reasonless(c *comp.Counters) {
	// A directive without a reason suppresses nothing and is itself
	// flagged (at the directive, hence the offset want).
	//lint:ignore counternames
	// want-1 "suppression without a reason"
	c.Add("gb.writes", 1) // want `string literal "gb.writes" passed as counter key`
}
