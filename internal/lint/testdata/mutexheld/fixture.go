// Package fixture exercises the mutexheld analyzer: fields annotated
// `guarded by <mu>` may only be touched in functions that lock that mutex
// on the same base, or that document the caller-holds-lock contract.
package fixture

import "sync"

type box struct {
	mu sync.Mutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu

	// hot and cold share one declaration; the annotation covers both.
	hot, cold uint64 // guarded by mu

	free int // unannotated: accessible anywhere
}

func (b *box) locked() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hot++
	return b.n + b.m["k"]
}

func (b *box) unlocked() int {
	b.cold++     // want `cold is guarded by mu`
	return b.n + // want `n is guarded by mu`
		b.free
}

// bump advances n. The caller holds mu, so bump itself must not lock.
func (b *box) bump() { b.n++ }

// wrongReceiver locks its own mutex but touches another box's field.
func (b *box) wrongReceiver(other *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return other.n // want `n is guarded by mu`
}

func (b *box) bothReceivers(other *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	return b.n + other.n
}

type rbox struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

func (r *rbox) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

func (b *box) suppressedInit() {
	//lint:ignore mutexheld constructor-time store; the box is not shared yet
	b.n = 0
}
