// Package fixture exercises the globalrand analyzer: randomness must flow
// through seeded *rand.Rand instances, never the process-global source.
package fixture

import "math/rand"

func violations() {
	_ = rand.Intn(10)      // want `math/rand.Intn draws from the process-global source`
	_ = rand.Float32()     // want `math/rand.Float32 draws from the process-global source`
	_ = rand.Perm(4)       // want `math/rand.Perm draws from the process-global source`
	rand.Shuffle(3, swap)  // want `math/rand.Shuffle draws from the process-global source`
	rand.Seed(42)          // want `math/rand.Seed draws from the process-global source`
	_ = rand.NormFloat64() // want `math/rand.NormFloat64 draws from the process-global source`
}

func swap(i, j int) {}

func seeded() {
	// Constructing a seeded instance is the sanctioned pattern: runs (and
	// test failures) reproduce byte for byte.
	r := rand.New(rand.NewSource(1))
	_ = r.Intn(10)      // method on the seeded instance: ok
	_ = r.Float32()     // ok
	_ = r.Perm(4)       // ok
	_ = r.NormFloat64() // ok
}

func suppressed() {
	//lint:ignore globalrand fixture demonstrates a justified suppression
	_ = rand.Intn(3)
}
