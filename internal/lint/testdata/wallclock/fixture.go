// Package fixture exercises the wallclock analyzer: inside a restricted
// (result-producing) package, nothing may observe real time.
package fixture

import "time"

func violations() time.Duration {
	start := time.Now()          // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	return time.Since(start)     // want `time.Since reads the wall clock`
}

func timers(ch chan struct{}) {
	select {
	case <-time.After(time.Second): // want `time.After reads the wall clock`
	case <-ch:
	}
	t := time.NewTimer(time.Second) // want `time.NewTimer reads the wall clock`
	t.Stop()
}

// pure time handling is fine: constructing instants from data, duration
// arithmetic, and formatting do not observe the clock.
func pure(ns int64, d time.Duration) string {
	at := time.Unix(0, ns)
	return at.Add(3 * d).Format(time.RFC3339)
}

func suppressed() time.Time {
	//lint:ignore wallclock progress heartbeat only; never feeds a result or cache key
	return time.Now()
}
