// Package fixture exercises the directive hygiene baked into every run:
// a //lint:ignore naming an analyzer the suite does not know suppresses
// nothing and is flagged, so a typo cannot silently disarm a suppression.
package fixture

func oops(a, b float64) bool {
	//lint:ignore floatcompare tolerance handled by caller
	// want-1 `//lint:ignore names unknown analyzer "floatcompare"`
	return a == b // want `== compares float operands exactly`
}
