// Package fixture is the wallclock analyzer's unrestricted counterpart:
// the same wall-clock reads as the wallclock fixture, loaded as a package
// that is NOT on the restricted list. Nothing may fire — serving-layer
// latency measurement is exactly this shape.
package fixture

import "time"

func measure(work func()) time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}
