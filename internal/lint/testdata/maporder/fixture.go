// Package fixture exercises the maporder analyzer: map-iteration order
// must never leak into accumulated, appended, concatenated or serialized
// results.
package fixture

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
)

// applyShape reproduces the energy.Table.Apply regression (PR 8): several
// counter keys collapse onto one component bucket, so the float sum per
// bucket depends on which keys the randomized iteration visits first.
func applyShape(counters map[string]uint64, cost map[string]float64) map[string]float64 {
	br := map[string]float64{}
	for counter, n := range counters {
		br[component(counter)] += cost[counter] * float64(n) // want `float accumulation in map-iteration order`
	}
	return br
}

func component(counter string) string {
	if i := strings.IndexByte(counter, '.'); i >= 0 {
		return counter[:i]
	}
	return "CTRL"
}

// applyShapeSorted is the sanctioned fix: collect keys, sort, then walk.
func applyShapeSorted(counters map[string]uint64, cost map[string]float64) map[string]float64 {
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k) // collected then sorted below: ok
	}
	sort.Strings(keys)
	br := map[string]float64{}
	for _, k := range keys {
		br[component(k)] += cost[k] * float64(counters[k])
	}
	return br
}

func scalarFloatSum(m map[string]float64) float64 {
	var t float64
	for _, v := range m {
		t += v // want `float accumulation in map-iteration order`
	}
	return t
}

// intSum is order-insensitive: integer addition is associative and
// commutative and wraps consistently.
func intSum(m map[string]uint64) uint64 {
	var t uint64
	for _, v := range m {
		t += v
	}
	return t
}

// rekey touches each destination key exactly once per source map: plain
// keyed assignment and range-key-indexed accumulation are both safe.
func rekey(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * 2
		out[k] += 1
	}
	return out
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append in map-iteration order`
	}
	return keys
}

func concat(m map[string]string) string {
	var s string
	for _, v := range m {
		s += v // want `string concatenation in map-iteration order`
	}
	return s
}

func serialize(w *strings.Builder, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf in map-iteration order`
	}
}

func digest(m map[string][]byte) [32]byte {
	h := sha256.New()
	for _, v := range m {
		h.Write(v) // want `in map-iteration order commits bytes`
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// loopLocalWriter orders nothing that outlives the iteration.
func loopLocalWriter(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var b strings.Builder
		b.WriteString(v)
		out[k] = b.String()
	}
	return out
}

func suppressed(m map[string]float64) float64 {
	var t float64
	for _, v := range m {
		//lint:ignore maporder probe values are powers of two, addition is exact in any order
		t += v
	}
	return t
}
