// Package fixture exercises the atomicmix analyzer: a variable reached
// through sync/atomic anywhere may never be read or written plainly
// elsewhere.
package fixture

import "sync/atomic"

type counters struct {
	hits uint64
	cold uint64 // never touched atomically: plain access is fine
	done atomic.Bool
}

func (c *counters) inc()         { atomic.AddUint64(&c.hits, 1) }
func (c *counters) read() uint64 { return atomic.LoadUint64(&c.hits) }

func (c *counters) racyRead() uint64 {
	return c.hits // want `hits is accessed through sync/atomic elsewhere`
}

func (c *counters) racyWrite() {
	c.hits = 0 // want `hits is accessed through sync/atomic elsewhere`
}

func (c *counters) plainOnly() uint64 {
	c.cold++
	return c.cold
}

// typed atomics make the mix unrepresentable; nothing to flag.
func (c *counters) typed() bool { return c.done.Load() }

var generation uint64

func bumpGeneration() uint64 { return atomic.AddUint64(&generation, 1) }

func racyGeneration() uint64 {
	return generation // want `generation is accessed through sync/atomic elsewhere`
}

func (c *counters) suppressed() uint64 {
	//lint:ignore atomicmix single-threaded teardown path; all writers have joined
	return c.hits
}
