// Package fixture exercises the floatcmp analyzer: exact float equality
// belongs to internal/check, except against the zero sentinel.
package fixture

func violations(a, b float32, x, y float64) bool {
	if a == b { // want `== compares float operands exactly`
		return true
	}
	if x != y { // want `!= compares float operands exactly`
		return true
	}
	if a == 1.0 { // want `== compares float operands exactly`
		return true
	}
	return float64(a) != x // want `!= compares float operands exactly`
}

func zeroSentinel(v float32, sum float64) bool {
	if v == 0 { // pruned-weight sentinel: ok
		return true
	}
	if sum != 0.0 { // division guard: ok
		return true
	}
	const zero = 0.0
	return v != zero // named zero constant: ok
}

func nonFloat(i, j int, s, t string) bool {
	return i == j || s != t // integer and string equality: ok
}

func suppressed(a, b float64) bool {
	//lint:ignore floatcmp comparing quantized table entries that are copied, never recomputed
	return a == b
}
