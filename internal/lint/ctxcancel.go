package lint

import (
	"go/ast"
	"go/types"
)

// cancelReturningFuncs are the context constructors whose last result is a
// cancel function the caller owns: dropping it leaks the context's timer
// and goroutine until the parent dies, and — in the serving layer's
// per-job cancellation seam — leaves jobs uncancellable.
var cancelReturningFuncs = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
	"WithCancelCause": true, "WithTimeoutCause": true, "WithDeadlineCause": true,
}

// CtxCancel returns the analyzer enforcing that every
// context.WithCancel/WithTimeout/WithDeadline call keeps its cancel
// function alive: the cancel variable must not be the blank identifier and
// must be used — deferred, called, passed along, stored or returned —
// somewhere in the enclosing function. A cancel that is only ever
// reassigned counts as never called.
//
// This is a liveness check, not a full path analysis: a cancel called on
// one branch but leaked on another passes here (go vet's lostcancel owns
// the flow-sensitive version; this analyzer is the belt to its suspenders
// and also covers the Cause variants vet does not).
func CtxCancel() *Analyzer {
	a := &Analyzer{
		Name: "ctxcancel",
		Doc: "context.WithCancel/WithTimeout/WithDeadline cancel funcs must be called " +
			"or deferred (never discarded): leaked contexts pin timers and goroutines",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkCancelUse(pass, fd.Body)
			}
		}
		return nil
	}
	return a
}

func checkCancelUse(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 || len(st.Lhs) < 2 {
			return true
		}
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok || !isCancelReturningCall(pass.Info, call) {
			return true
		}
		cancel, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident)
		if !ok {
			return true
		}
		if cancel.Name == "_" {
			pass.Reportf(cancel.Pos(), "cancel function from %s is discarded: defer it (or call it on every path) so the context releases its resources", callName(call))
			return true
		}
		obj := pass.Info.Defs[cancel]
		if obj == nil {
			obj = pass.Info.Uses[cancel] // plain `=` rebinding
		}
		if obj == nil {
			return true
		}
		if !cancelObjUsed(pass, body, obj, cancel) {
			pass.Reportf(cancel.Pos(), "cancel function from %s is never called: defer %s() (or call it on every path)", callName(call), cancel.Name)
		}
		return true
	})
}

// cancelObjUsed reports whether obj is genuinely consumed in body: any use
// other than its defining identifier and other than being the target of a
// further plain assignment.
func cancelObjUsed(pass *Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if st, ok := n.(*ast.AssignStmt); ok {
			// `_ = cancel` only silences the compiler; it keeps nothing
			// alive and does not count.
			if allBlank(st.Lhs) && len(st.Rhs) == 1 {
				if id, ok := st.Rhs[0].(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					return false
				}
			}
			// Walk RHS (and any LHS that are not the bare cancel ident);
			// a reassignment target is not a use.
			for _, rhs := range st.Rhs {
				if identUses(pass, rhs, obj, def) {
					used = true
				}
			}
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && (pass.Info.Uses[id] == obj || pass.Info.Defs[id] == obj) {
					continue
				}
				if identUses(pass, lhs, obj, def) {
					used = true
				}
			}
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id != def && pass.Info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}

func identUses(pass *Pass, e ast.Expr, obj types.Object, def *ast.Ident) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id != def && pass.Info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

func isCancelReturningCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !cancelReturningFuncs[sel.Sel.Name] {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return "context." + sel.Sel.Name
	}
	return "context constructor"
}
