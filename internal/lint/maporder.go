package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder returns the analyzer guarding the bit-determinism contract
// against Go's randomized map iteration. The serving layer (PR 8) keys a
// content-addressed result cache on byte-identical outputs, and the class
// of bug that breaks it silently is a `range` over a map whose iteration
// order leaks into the result:
//
//   - float (or complex) compound accumulation — float addition is not
//     associative, so summing in map order drifts in the last bits between
//     identical runs. This is exactly the energy.Table.Apply regression PR 8
//     fixed by hand: per-component energy summed `br[component(k)] += cost`
//     over the counters map.
//   - string concatenation — the order is the output.
//   - append to a slice declared outside the loop — the element order is
//     the output. The canonical collect-keys-then-sort walk is recognized:
//     an append target that is later passed to a sort.*/slices.Sort* call
//     in the same file is the sanctioned fix, not a finding.
//   - writes to an ordered sink (Write/WriteString/WriteByte/WriteRune/
//     Encode methods on anything declared outside the loop, and the
//     fmt.Print/Fprint families) — bytes hashed or serialized in map order
//     differ between runs.
//
// Order-insensitive uses stay silent: integer accumulation (associative
// and commutative, wraps consistently), plain keyed re-insertion
// `out[k] = v`, and compound assignment into an element indexed by the
// range key itself (`out[k] += v` touches each target exactly once per
// source map, so order cannot matter).
func MapOrder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc: "range over a map feeding float accumulation, appends, or serialization " +
			"makes results depend on Go's randomized iteration order; walk sorted keys",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			sorted := sortedTargets(pass.Info, f)
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok || !isMapExpr(pass.Info, rng.X) {
					return true
				}
				checkMapRangeBody(pass, rng, sorted)
				return true
			})
		}
		return nil
	}
	return a
}

// sortedTargets collects the objects passed to a sort.* or slices.Sort*
// call anywhere in the file: an append target that ends up sorted is the
// sanctioned collect-then-sort walk.
func sortedTargets(info *types.Info, f *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		arg := call.Args[0]
		// Unwrap a sort.Sort(byName(keys))-style conversion or wrapper.
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
			arg = inner.Args[0]
		}
		if obj := rootObject(info, arg); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// checkMapRangeBody flags order-sensitive statements inside one map range.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	keyObj := rangeKeyObject(pass.Info, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, st, keyObj, sorted)
		case *ast.CallExpr:
			checkMapRangeCall(pass, rng, st)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, st *ast.AssignStmt, keyObj types.Object, sorted map[types.Object]bool) {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := st.Lhs[0]
		// `out[k] op= v` with k the range key touches each target exactly
		// once per source map: order-insensitive by construction.
		if idx, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil {
			if id, ok := idx.Index.(*ast.Ident); ok && pass.Info.Uses[id] == keyObj {
				return
			}
		}
		tv, ok := pass.Info.Types[lhs]
		if !ok || tv.Type == nil {
			return
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok {
			return
		}
		switch {
		case basic.Info()&(types.IsFloat|types.IsComplex) != 0:
			pass.Reportf(st.TokPos, "float accumulation in map-iteration order: float addition is not associative, so the sum's last bits depend on Go's randomized order — iterate sorted keys")
		case st.Tok == token.ADD_ASSIGN && basic.Info()&types.IsString != 0:
			pass.Reportf(st.TokPos, "string concatenation in map-iteration order produces a nondeterministic result: iterate sorted keys")
		}
	case token.ASSIGN, token.DEFINE:
		// `keys = append(keys, k)` into an outer slice: ordered output,
		// unless the target is sorted afterwards (the sanctioned walk).
		for i, rhs := range st.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				continue
			}
			if i >= len(st.Lhs) {
				continue
			}
			target := rootObject(pass.Info, st.Lhs[i])
			if target == nil || sorted[target] || !declaredOutside(target, rng) {
				continue
			}
			pass.Reportf(call.Pos(), "append in map-iteration order builds a nondeterministically ordered slice: sort it afterwards or iterate sorted keys")
		}
	}
}

// orderedSinkMethods are method names whose calls commit bytes/values in
// call order (writers, hashes, encoders).
var orderedSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

func checkMapRangeCall(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	// fmt.Print / fmt.Fprint families: serialization in map order.
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		name := fn.Name()
		if len(name) >= 5 && (name[:5] == "Print" || name[:6] == "Fprint") {
			pass.Reportf(call.Pos(), "fmt.%s in map-iteration order serializes nondeterministically: iterate sorted keys", name)
		}
		return
	}
	// Ordered-sink method on something declared outside the loop (a writer,
	// hash, or encoder fed in map order).
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return
	}
	if !orderedSinkMethods[fn.Name()] {
		return
	}
	recv := rootObject(pass.Info, sel.X)
	if recv == nil || !declaredOutside(recv, rng) {
		return
	}
	pass.Reportf(call.Pos(), "%s.%s in map-iteration order commits bytes nondeterministically (hashes and serializations are order-sensitive): iterate sorted keys", recv.Name(), fn.Name())
}

// rangeKeyObject resolves the range statement's key variable, for the
// out[k]-is-safe carve-out. Nil when the key is blank or omitted.
func rangeKeyObject(info *types.Info, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// rootObject resolves an expression to the object of its leftmost
// identifier (unwrapping selectors, indexes, parens and unary ops).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			// Resolve the selected member itself when it is a field; the
			// leftmost root would conflate distinct fields of one struct.
			if sel, ok := info.Selections[v]; ok {
				return sel.Obj()
			}
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside the range
// statement (loop-local temporaries cannot leak order into results that
// outlive the iteration).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

func isMapExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
