package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// simPkgPath declares the architecture registry and the NumericContract
// type the differential-check harness keys off (PR 4).
const simPkgPath = "repro/internal/sim"

// RegistryContract returns the analyzer enforcing the architecture
// registry's registration discipline: every sim.Register call site passes
// an Arch literal that (a) declares a non-empty NumericContract — the
// differential self-check harness refuses to guess an architecture's
// numeric tolerance — and (b) uses a Name no other registration in the
// same package claims (a duplicate only surfaces as an init-time panic of
// whichever binary happens to link both).
func RegistryContract() *Analyzer {
	a := &Analyzer{
		Name: "registrycontract",
		Doc: "sim.Register call sites must pass an Arch literal declaring its " +
			"NumericContract, under a package-unique Name",
	}
	a.Run = func(pass *Pass) error {
		// Name literal → position of first registration, per package.
		seen := make(map[string]ast.Expr)
		for _, f := range pass.Files {
			if pass.InTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 || !isSimRegister(pass.Info, call.Fun) {
					return true
				}
				lit := archLiteral(call.Args[0])
				if lit == nil {
					pass.Reportf(call.Pos(), "sim.Register argument is not an Arch composite literal: the registry contract cannot be verified statically — register with a literal")
					return true
				}
				checkArchLiteral(pass, lit, seen)
				return true
			})
		}
		return nil
	}
	return a
}

func isSimRegister(info *types.Info, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Register" {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == simPkgPath
}

// archLiteral unwraps the Arch composite literal from the call argument
// (plain or address-taken).
func archLiteral(e ast.Expr) *ast.CompositeLit {
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = u.X
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	return lit
}

func checkArchLiteral(pass *Pass, lit *ast.CompositeLit, seen map[string]ast.Expr) {
	var nameExpr, contract ast.Expr
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			nameExpr = kv.Value
		case "Contract":
			contract = kv.Value
		}
	}
	switch {
	case contract == nil:
		pass.Reportf(lit.Pos(), "sim.Register: Arch literal omits its NumericContract; declare the Contract field (the self-check harness needs the architecture's tolerance)")
	case emptyContract(contract):
		pass.Reportf(contract.Pos(), "sim.Register: empty NumericContract{} declares nothing; set ExactSum, RelTol or PostActivationConv (or spell the default explicitly via a named constant)")
	}
	if nameExpr == nil {
		return // registry.Register itself panics on the missing name
	}
	name, ok := stringConstant(pass.Info, nameExpr)
	if !ok {
		return
	}
	if _, dup := seen[name]; dup {
		pass.Reportf(nameExpr.Pos(), "sim.Register: duplicate architecture name %q (already registered in this package)", name)
		return
	}
	seen[name] = nameExpr
}

// emptyContract reports whether e is a bare NumericContract{} literal.
func emptyContract(e ast.Expr) bool {
	lit, ok := e.(*ast.CompositeLit)
	return ok && len(lit.Elts) == 0
}

func stringConstant(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
