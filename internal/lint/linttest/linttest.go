// Package linttest is the golden-test harness for the internal/lint
// analyzers, modeled on golang.org/x/tools' analysistest (which the
// toolchain image does not carry): a fixture directory under testdata is
// loaded as a real type-checked package, the analyzer under test runs over
// it — with the //lint:ignore suppression machinery applied, so fixtures
// can prove suppression works — and every diagnostic must be announced by
// a // want "regexp" comment on the line it fires on.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

// sharedLoader builds one Loader for the whole test process (the stdlib
// export-data table behind it is worth sharing across analyzer tests).
func sharedLoader() (*lint.Loader, error) {
	loaderOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = lint.NewLoader(root)
	})
	return loader, loaderErr
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run loads testdata/<fixture> as a package and checks the analyzer's
// post-suppression diagnostics against the fixture's // want comments.
func Run(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", fixture)
	pkg, err := l.LoadDirAs(dir, "repro/internal/lint/testdata/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, pkg)
	got := make(map[string][]lint.Diagnostic) // "file:line" -> diags
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		got[key] = append(got[key], d)
	}

	for key, res := range wants {
		found := got[key]
		if len(found) != len(res) {
			t.Errorf("%s: want %d diagnostic(s), got %d: %v", key, len(res), len(found), found)
			continue
		}
	nextWant:
		for _, re := range res {
			for _, d := range found {
				if re.MatchString(d.Message) {
					continue nextWant
				}
			}
			t.Errorf("%s: no diagnostic matching %q (got %v)", key, re, found)
		}
	}
	for key, found := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostic(s): %v", key, found)
		}
	}
}

var wantRE = regexp.MustCompile(`//\s*want([+-]\d+)?\s+(.*)$`)

// collectWants parses // want "re" ["re" ...] comments per fixture line.
// The optional offset form `// want-1 "re"` anchors the expectation N
// lines away — needed when the diagnosed line is itself a comment (a
// malformed //lint:ignore directive cannot carry a trailing want: the two
// would merge into one comment).
func collectWants(t *testing.T, pkg *lint.Package) map[string][]*regexp.Regexp {
	t.Helper()
	out := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, err := strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want offset %q", pos.Filename, pos.Line, m[1])
					}
					line += off
				}
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), line)
				for _, q := range splitQuoted(m[2]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					out[key] = append(out[key], re)
				}
			}
		}
	}
	return out
}

// splitQuoted splits `"a" "b"` (or the backtick-quoted equivalent) into
// its quoted fields.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if len(s) == 0 || (s[0] != '"' && s[0] != '`') {
			return out
		}
		quote := s[0]
		end := 1
		for end < len(s) {
			if quote == '"' && s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == quote {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}
