package lint

// DefaultExtraRoots is the repository's hot-leaf configuration for
// hotpathalloc: per-cycle functions invoked from another package's tick
// loop, which the structural root detection (Cycle/Next/Consume, Kernel
// hooks) cannot see from inside their own package.
func DefaultExtraRoots() map[string][]string {
	return map[string][]string{
		// The engine controllers call these once per element / per barrier
		// cycle from ctrlCycle and Consume.
		"repro/internal/mem": {
			"GlobalBuffer.Read",
			"GlobalBuffer.Write",
			"DRAM.BeginPrefetch",
			"DRAM.StallCycles",
			"DRAM.StallLookahead",
			"DRAM.AdvanceStall",
			// The chip interconnect: CorePort stands in for DRAM on every
			// multi-core tick path, and each of its transfers grants through
			// SharedDRAM.Serve.
			"SharedDRAM.Serve",
			"CorePort.FetchCycles",
			"CorePort.BeginPrefetch",
			"CorePort.StallCycles",
			"CorePort.StallLookahead",
			"CorePort.AdvanceStall",
		},
		// Fired from the controller's per-cycle VN scan and from the DN's
		// per-cycle delivery sink/prober callbacks.
		"repro/internal/mn": {
			"Array.AppendPop",
			"Array.ReadyVN",
			"Array.ReadyMembers",
			"Array.Deliver",
			"Array.CanDeliver",
			"Array.QuiescentSet",
			"Array.Idle",
			"Array.VNs",
		},
		// Offered work and completion probes, once per controller cycle.
		"repro/internal/rn": {
			"Net.Offer",
			"Net.CanAccept",
			"Net.Drained",
			"Net.HasAccumulator",
		},
		"repro/internal/dn": {
			"Tree.Offer",
			"Tree.Pending",
			"Benes.Offer",
			"Benes.Pending",
			"PointToPoint.Offer",
			"PointToPoint.Pending",
		},
	}
}

// DefaultWallClockPackages lists the simulation and result-producing
// packages where wall-clock reads are banned (subpackages and _test
// variants included). The serve layer measures request latency on purpose
// and is deliberately absent: latency is an envelope field, never part of
// the cached result bytes.
func DefaultWallClockPackages() []string {
	return []string{
		"repro/internal/sim",
		"repro/internal/engine",
		"repro/internal/mem",
		"repro/internal/trace",
		"repro/internal/stats",
		"repro/internal/jobkey",
		"repro/internal/energy",
		"repro/internal/comp",
		"repro/internal/dn",
		"repro/internal/mn",
		"repro/internal/rn",
	}
}

// DefaultAnalyzers is the stonnelint suite: the five PR 5 invariant checks
// plus the five determinism/concurrency checks distilled from the bug
// classes the serving layer surfaced (PRs 8–9), in the order their
// invariants were introduced.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc(DefaultExtraRoots()),
		CounterNames(),
		FloatCmp(),
		RegistryContract(),
		GlobalRand(),
		MapOrder(),
		WallClock(DefaultWallClockPackages()),
		MutexHeld(),
		CtxCancel(),
		AtomicMix(),
	}
}
