package lint

// DefaultExtraRoots is the repository's hot-leaf configuration for
// hotpathalloc: per-cycle functions invoked from another package's tick
// loop, which the structural root detection (Cycle/Next/Consume, Kernel
// hooks) cannot see from inside their own package.
func DefaultExtraRoots() map[string][]string {
	return map[string][]string{
		// The engine controllers call these once per element / per barrier
		// cycle from ctrlCycle and Consume.
		"repro/internal/mem": {
			"GlobalBuffer.Read",
			"GlobalBuffer.Write",
			"DRAM.BeginPrefetch",
			"DRAM.StallCycles",
			"DRAM.StallLookahead",
			"DRAM.AdvanceStall",
			// The chip interconnect: CorePort stands in for DRAM on every
			// multi-core tick path, and each of its transfers grants through
			// SharedDRAM.Serve.
			"SharedDRAM.Serve",
			"CorePort.FetchCycles",
			"CorePort.BeginPrefetch",
			"CorePort.StallCycles",
			"CorePort.StallLookahead",
			"CorePort.AdvanceStall",
		},
		// Fired from the controller's per-cycle VN scan and from the DN's
		// per-cycle delivery sink/prober callbacks.
		"repro/internal/mn": {
			"Array.AppendPop",
			"Array.ReadyVN",
			"Array.ReadyMembers",
			"Array.Deliver",
			"Array.CanDeliver",
			"Array.QuiescentSet",
			"Array.Idle",
			"Array.VNs",
		},
		// Offered work and completion probes, once per controller cycle.
		"repro/internal/rn": {
			"Net.Offer",
			"Net.CanAccept",
			"Net.Drained",
			"Net.HasAccumulator",
		},
		"repro/internal/dn": {
			"Tree.Offer",
			"Tree.Pending",
			"Benes.Offer",
			"Benes.Pending",
			"PointToPoint.Offer",
			"PointToPoint.Pending",
		},
	}
}

// DefaultAnalyzers is the stonnelint suite: the five invariant checks, in
// the order their invariants were introduced.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc(DefaultExtraRoots()),
		CounterNames(),
		FloatCmp(),
		RegistryContract(),
		GlobalRand(),
	}
}
