package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestLoadExternalTestSharedDepIdentity is the regression test for a type
// identity bug in the loader: while checking an external test package, every
// module dependency used to be rebuilt in the under-test world, giving
// dependencies that do not import the package under test a second
// *types.Package. A value built by such a dependency (helper.Make() below)
// then failed to unify with the same type in the under-test package's API
// ("cannot use shared.S as shared.S"). Only dependencies that transitively
// import the package under test may be rebuilt.
func TestLoadExternalTestSharedDepIdentity(t *testing.T) {
	l, err := lint.NewLoader("testdata/identmod")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./pkg")
	if err != nil {
		t.Fatalf("external test package failed to type-check: %v", err)
	}
	var found bool
	for _, p := range pkgs {
		if p.Path == "identmod/pkg_test" {
			found = true
		}
	}
	if !found {
		t.Fatalf("external test package not loaded; got %d packages", len(pkgs))
	}
}
