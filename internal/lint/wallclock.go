package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallClockFuncs are the time-package functions that read or wait on the
// wall clock. time.Unix, time.Date, time.Parse and Duration arithmetic are
// pure and stay allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// WallClock returns the analyzer banning wall-clock reads inside the
// simulation and result-producing packages listed in restricted (matched by
// import path, subpackages and _test variants included). A simulated run
// must be a pure function of configuration plus seed: the jobkey
// content-addressed cache, disk persistence and trace-replay digests
// (PRs 8–9) all serve stored bytes as if they had been recomputed, which is
// only sound while nothing in the result path can observe real time. The
// serve layer measures request latency on purpose and is simply not listed
// — latency is an envelope field, never part of the cached result bytes.
func WallClock(restricted []string) *Analyzer {
	a := &Analyzer{
		Name: "wallclock",
		Doc: "time.Now/Since/Sleep and friends are banned in result-producing packages: " +
			"simulation results must be functions of config+seed, never of real time",
	}
	a.Run = func(pass *Pass) error {
		if !wallClockRestricted(pass.Pkg.Path(), restricted) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !wallClockFuncs[sel.Sel.Name] {
					return true
				}
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock inside a result-producing package: results must be functions of config+seed (latency measurement belongs to the serve layer)", fn.Name())
				return true
			})
		}
		return nil
	}
	return a
}

// wallClockRestricted matches a package path (or its _test variant, or a
// subpackage) against the restricted list.
func wallClockRestricted(path string, restricted []string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range restricted {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
