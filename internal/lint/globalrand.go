package lint

import (
	"go/ast"
	"go/types"
)

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions backed by the shared global source. rand.New / rand.NewSource /
// rand.NewZipf construct seeded instances and are the sanctioned escape.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// GlobalRand returns the analyzer flagging math/rand global-state use.
// Cycle-level reproducibility — the property STONNE's claims rest on —
// requires every random stream to be a seeded *rand.Rand owned by the run
// that consumes it; the package-level source is process-global, shared
// across goroutines and reseeded behind the program's back. Test files are
// covered too: a test drawing from the global source cannot reproduce its
// own failures byte for byte.
func GlobalRand() *Analyzer {
	a := &Analyzer{
		Name: "globalrand",
		Doc: "math/rand global-state functions (rand.Intn, rand.Float64, ...) break " +
			"run reproducibility; draw from a seeded *rand.Rand instead",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !globalRandFuncs[sel.Sel.Name] {
					return true
				}
				obj := pass.Info.Uses[sel.Sel]
				fn, ok := obj.(*types.Func)
				if !ok {
					return true
				}
				// Package-level function (methods on *rand.Rand have a
				// receiver and are fine).
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				pkg := fn.Pkg()
				if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
					return true
				}
				pass.Reportf(sel.Pos(), "%s.%s draws from the process-global source: use a seeded *rand.Rand so runs reproduce", pkg.Path(), fn.Name())
				return true
			})
		}
		return nil
	}
	return a
}
