// Package lint is the simulator's custom static-analysis layer: a small
// go/analysis-style framework (the toolchain image carries no
// golang.org/x/tools, so the Analyzer/Pass surface is reimplemented on the
// standard library's go/ast + go/types) plus the ten analyzers that
// mechanically enforce the invariants earlier PRs established by
// convention:
//
//   - counternames: counter keys are spelled through internal/comp/names
//     constants, never string literals at the call site (PR 2).
//   - hotpathalloc: functions on the per-tick call surface stay free of
//     allocating expressions and map lookups (PR 1's hot-path contract).
//   - floatcmp: float operands are never compared with == / != outside
//     internal/check, which owns the tolerance model (PR 4).
//   - registrycontract: every sim.Register call declares the
//     architecture's NumericContract and names are unique (PR 4).
//   - globalrand: no math/rand global-state use — randomness flows
//     through seeded *rand.Rand so cycle counts stay reproducible.
//   - maporder: no map iteration feeding order-sensitive accumulation,
//     serialization or hashing — walk sorted keys instead (the
//     energy.Table.Apply bit-drift regression, generalized).
//   - wallclock: no time.Now/Since/Sleep-family reads inside the
//     simulation core; cycle counts must never depend on the host clock.
//   - mutexheld: fields annotated `guarded by <mu>` are only touched in
//     functions that lock that mutex on the same base (or document the
//     caller-holds-lock contract).
//   - ctxcancel: every context.WithCancel/WithTimeout/WithDeadline cancel
//     func is kept alive — deferred, called, passed or stored.
//   - atomicmix: a variable reached through sync/atomic anywhere is never
//     also accessed plainly.
//
// Diagnostics are suppressed with a written justification:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line, on the line directly above it, or in a
// function's doc comment (covering the whole function). A suppression
// without a reason is itself a diagnostic, and stonnelint -suppressions
// lists every directive in force so the set stays auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer so the checks port trivially if
// the dependency ever becomes available.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is the one-paragraph description shown by stonnelint -help.
	Doc string
	// Run inspects one type-checked package and reports findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package syntax. Test files (_test.go) are included;
	// analyzers that exempt them filter with pass.InTestFile.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, located and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run executes the analyzers over the loaded packages, applies
// //lint:ignore suppression, and returns the surviving diagnostics sorted
// by position. Malformed suppression directives are reported under the
// "lintignore" pseudo-analyzer regardless of which analyzers run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers)+1)
	known[DirectiveAnalyzerName] = true
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var all []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg, known)
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = append(diags, directiveDiagnostics(dirs)...)
		all = append(all, filterSuppressed(diags, dirs)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}
