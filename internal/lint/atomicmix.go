package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix returns the analyzer banning mixed atomic and non-atomic
// access to the same variable: once any site reaches a field or
// package-level variable through sync/atomic (atomic.AddUint64(&x.n, 1),
// atomic.LoadUint64(&x.n), ...), every other read and write of it must go
// through sync/atomic too. A plain load racing an atomic store is a data
// race the memory model gives no meaning to — and unlike a mutex bug it
// can produce torn or stale values that only surface as last-bit
// nondeterminism in results. The typed atomics (atomic.Uint64 and
// friends) make the mix unrepresentable and are the preferred fix; this
// analyzer polices the pointer-style API that does not.
func AtomicMix() *Analyzer {
	a := &Analyzer{
		Name: "atomicmix",
		Doc: "a variable accessed through sync/atomic anywhere must be accessed " +
			"through sync/atomic everywhere (or migrate to a typed atomic)",
	}
	a.Run = func(pass *Pass) error {
		atomicObjs, sanctioned := collectAtomicAccesses(pass)
		if len(atomicObjs) == 0 {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				// Field accesses arrive here too: a SelectorExpr's Sel is
				// itself visited as an *ast.Ident.
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[id]
				if obj == nil || !atomicObjs[obj] || sanctioned[id.Pos()] {
					return true
				}
				pass.Reportf(id.Pos(), "%s is accessed through sync/atomic elsewhere: this plain access races with the atomic ones — use sync/atomic here too (or a typed atomic)", obj.Name())
				return true
			})
		}
		return nil
	}
	return a
}

// collectAtomicAccesses finds every &x passed to a sync/atomic function:
// the objects behind them (fields or variables) become atomic-only, and
// the identifier positions inside those arguments are sanctioned so the
// reporting walk skips the atomic sites themselves.
func collectAtomicAccesses(pass *Pass) (map[types.Object]bool, map[token.Pos]bool) {
	objs := make(map[types.Object]bool)
	sanctioned := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				target := un.X
				var id *ast.Ident
				switch e := target.(type) {
				case *ast.SelectorExpr:
					id = e.Sel
				case *ast.Ident:
					id = e
				default:
					continue
				}
				obj := pass.Info.Uses[id]
				if obj == nil {
					continue
				}
				objs[obj] = true
				sanctioned[id.Pos()] = true
			}
			return true
		})
	}
	return objs, sanctioned
}
