package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Suppression is one //lint:ignore directive as seen by the audit mode:
// where it is, which analyzer it silences, and the written justification.
// Broken directives (no reason, unknown analyzer) are included with a Note
// so the audit surfaces them instead of hiding them — though the regular
// lint run already fails on them via the lintignore pseudo-analyzer.
type Suppression struct {
	File     string // absolute path; callers typically relativize
	Line     int
	Analyzer string
	Reason   string
	Note     string // "" when well-formed; "malformed" / "unknown analyzer"
}

// String renders one audit line: file:line: analyzer: reason.
func (s Suppression) String() string {
	reason := s.Reason
	if s.Note != "" {
		reason = strings.TrimSpace("[" + s.Note + "] " + reason)
	}
	an := s.Analyzer
	if an == "" {
		an = "?"
	}
	return fmt.Sprintf("%s:%d: %s: %s", s.File, s.Line, an, reason)
}

// Suppressions lists every //lint:ignore directive across the loaded
// packages, sorted by position, so the set of silenced findings is
// reviewable in one place (and diffable against a committed allowlist in
// CI — a new suppression then shows up in review as an allowlist edit,
// with its reason, instead of disappearing into the code).
func Suppressions(pkgs []*Package, analyzers []*Analyzer) []Suppression {
	known := make(map[string]bool, len(analyzers)+1)
	known[DirectiveAnalyzerName] = true
	for _, a := range analyzers {
		known[a.Name] = true
	}
	seen := make(map[string]bool)
	var out []Suppression
	for _, pkg := range pkgs {
		for _, d := range collectDirectives(pkg, known) {
			id := fmt.Sprintf("%s:%d", d.pos.Filename, d.pos.Line)
			if seen[id] {
				continue // a file shared between package variants
			}
			seen[id] = true
			s := Suppression{
				File:     d.pos.Filename,
				Line:     d.pos.Line,
				Analyzer: d.analyzer,
				Reason:   d.reason,
			}
			switch {
			case d.malformed:
				s.Note = "malformed"
			case d.unknownAn:
				s.Note = "unknown analyzer"
			}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
