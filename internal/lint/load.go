package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/dn"); external test
	// packages carry the "_test" suffix Go gives them.
	Path string
	// Dir is the absolute directory the sources live in.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Src maps filename to source bytes (directive classification needs
	// to see whether code precedes a comment on its line).
	Src   map[string][]byte
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the module's packages without
// golang.org/x/tools: module packages are checked from source (imports
// resolved recursively), standard-library packages are imported from the
// toolchain's export data, located once via `go list -export -deps std`.
type Loader struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Module is the module path from go.mod.
	Module string

	fset      *token.FileSet
	goVersion string

	std        types.ImporterFrom
	stdExports map[string]string

	// importCache memoizes module packages as seen by importers: compiled
	// WITHOUT test files, exactly like the go tool builds dependencies.
	importCache map[string]*Package

	// testVariants memoizes module packages re-typechecked against a
	// test-augmented package under test, keyed by that package's import
	// path. An external test package may import helpers that themselves
	// import the package under test (lint_test → linttest → lint); Go
	// rebuilds such intermediaries against the augmented variant, and so
	// must we, or the two worlds disagree on the identity of its types.
	testVariants map[string]map[string]*Package

	// moduleDeps memoizes each module package's direct module-internal
	// imports (non-test files), for the dependsOn reachability check.
	moduleDeps map[string][]string
}

// NewLoader returns a loader rooted at the module directory dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	module, goVersion, err := readModFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Dir:          abs,
		Module:       module,
		fset:         token.NewFileSet(),
		goVersion:    goVersion,
		importCache:  make(map[string]*Package),
		testVariants: make(map[string]map[string]*Package),
		moduleDeps:   make(map[string][]string),
	}
	l.std = importer.ForCompiler(l.fset, "gc", l.lookupStd).(types.ImporterFrom)
	return l, nil
}

func readModFile(path string) (module, goVersion string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
		}
		if rest, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = "go" + strings.TrimSpace(rest)
		}
	}
	if module == "" {
		return "", "", fmt.Errorf("lint: no module directive in %s", path)
	}
	return module, goVersion, nil
}

// lookupStd feeds the gc importer the export-data file of a toolchain
// package. The path→file table is built lazily with one `go list` run over
// the whole standard library, so a cold module build is the only slow run.
func (l *Loader) lookupStd(path string) (io.ReadCloser, error) {
	if l.stdExports == nil {
		out, err := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", "std").Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return nil, fmt.Errorf("lint: go list -export std: %v\n%s", err, ee.Stderr)
			}
			return nil, fmt.Errorf("lint: go list -export std: %w", err)
		}
		l.stdExports = make(map[string]string)
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("lint: decoding go list output: %w", err)
			}
			if p.Export != "" {
				l.stdExports[p.ImportPath] = p.Export
			}
		}
	}
	file, ok := l.stdExports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q (module dependencies are not supported)", path)
	}
	return os.Open(file)
}

// Load resolves package patterns ("./...", "./internal/dn", "internal/...")
// and returns the matched packages type-checked for analysis: module
// packages include their in-package test files, and external test packages
// (package foo_test) are returned as packages of their own.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		got, err := l.loadForAnalysis(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

// LoadDirAs loads one directory (typically an analysistest-style fixture
// under testdata, which pattern expansion deliberately skips) as a single
// package with the given import path. Test-file variants are not split out:
// every .go file in the directory joins the package.
func (l *Loader) LoadDirAs(dir, path string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}
	return l.check(abs, path, files, l.importerFn(nil))
}

// expand turns patterns into the sorted set of matching module directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(l.Dir, root)
		}
		if !rec {
			if hasGoFiles(root) {
				add(root)
				continue
			}
			return nil, fmt.Errorf("lint: no Go files in %s", root)
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Dir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.Dir)
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// splitDir classifies a directory's buildable files with go/build (which
// owns file-name and build-constraint rules).
func splitDir(dir string) (base, inTest, xTest []string, err error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil, nil, nil
		}
		return nil, nil, nil, err
	}
	return bp.GoFiles, bp.TestGoFiles, bp.XTestGoFiles, nil
}

// loadForAnalysis loads dir's package including in-package test files,
// plus its external test package when one exists.
func (l *Loader) loadForAnalysis(dir string) ([]*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	base, inTest, xTest, err := splitDir(dir)
	if err != nil {
		return nil, err
	}
	if len(base)+len(inTest)+len(xTest) == 0 {
		return nil, nil
	}
	var pkgs []*Package
	var underTest *Package
	if len(base)+len(inTest) > 0 {
		underTest, err = l.check(dir, path, append(append([]string{}, base...), inTest...), l.importerFn(nil))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, underTest)
	}
	if len(xTest) > 0 {
		// The external test package sees the test-augmented package under
		// test (export_test.go helpers live in the in-test variant).
		xp, err := l.check(dir, path+"_test", xTest, l.importerFn(underTest))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, xp)
	}
	return pkgs, nil
}

// loadImport type-checks the non-test variant of a module package for use
// as a dependency.
func (l *Loader) loadImport(path string) (*Package, error) {
	if p, ok := l.importCache[path]; ok {
		return p, nil
	}
	p, err := l.checkImport(path, l.importerFn(nil))
	if err != nil {
		return nil, err
	}
	l.importCache[path] = p
	return p, nil
}

// loadImportFor resolves a module dependency while checking an external
// test package. Only dependencies that transitively import the package
// under test are rebuilt in the under-test world (they must see its
// test-augmented variant — lint_test → linttest → lint); everything else
// resolves through the shared import cache. Rebuilding an unrelated
// dependency would create a second *types.Package for it, and any of its
// types appearing in the under-test package's API (checked against the
// shared instance) would stop unifying — "cannot use config.Hardware as
// config.Hardware" across the two worlds.
func (l *Loader) loadImportFor(path string, underTest *Package) (*Package, error) {
	if underTest == nil || !l.dependsOn(path, underTest.Path, make(map[string]bool)) {
		return l.loadImport(path)
	}
	cache := l.testVariants[underTest.Path]
	if cache == nil {
		cache = make(map[string]*Package)
		l.testVariants[underTest.Path] = cache
	}
	if p, ok := cache[path]; ok {
		return p, nil
	}
	p, err := l.checkImport(path, l.importerFn(underTest))
	if err != nil {
		return nil, err
	}
	cache[path] = p
	return p, nil
}

// directImports returns path's direct module-internal imports as declared
// by its non-test files (go/build owns file-name and constraint rules).
func (l *Loader) directImports(path string) []string {
	if deps, ok := l.moduleDeps[path]; ok {
		return deps
	}
	rel := strings.TrimPrefix(path, l.Module)
	dir := filepath.Join(l.Dir, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	var deps []string
	if bp, err := build.Default.ImportDir(dir, 0); err == nil {
		for _, imp := range bp.Imports {
			if imp == l.Module || strings.HasPrefix(imp, l.Module+"/") {
				deps = append(deps, imp)
			}
		}
	}
	l.moduleDeps[path] = deps
	return deps
}

// dependsOn reports whether module package path transitively imports
// target through non-test imports (or is target itself).
func (l *Loader) dependsOn(path, target string, seen map[string]bool) bool {
	if path == target {
		return true
	}
	if seen[path] {
		return false
	}
	seen[path] = true
	for _, dep := range l.directImports(path) {
		if l.dependsOn(dep, target, seen) {
			return true
		}
	}
	return false
}

// checkImport type-checks the non-test file set of a module package with
// the given importer.
func (l *Loader) checkImport(path string, imp types.Importer) (*Package, error) {
	rel := strings.TrimPrefix(path, l.Module)
	dir := filepath.Join(l.Dir, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	base, _, _, err := splitDir(dir)
	if err != nil {
		return nil, err
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	return l.check(dir, path, base, imp)
}

// importerFn builds the types.Importer used while checking one package:
// module paths resolve through the loader, everything else through the
// toolchain export data. underTest, when non-nil, overrides its own import
// path — the external test package must see the test-augmented variant.
func (l *Loader) importerFn(underTest *Package) types.Importer {
	return importerFunc(func(path string) (*types.Package, error) {
		if underTest != nil && path == underTest.Path {
			return underTest.Types, nil
		}
		if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
			p, err := l.loadImportFor(path, underTest)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return l.std.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// check parses and type-checks one file set as a package.
func (l *Loader) check(dir, path string, filenames []string, imp types.Importer) (*Package, error) {
	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.fset,
		Src:  make(map[string][]byte, len(filenames)),
	}
	sort.Strings(filenames)
	for _, name := range filenames {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Src[full] = src
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:  imp,
		GoVersion: l.goVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
