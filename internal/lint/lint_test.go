package lint_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestCounterNames(t *testing.T) {
	linttest.Run(t, lint.CounterNames(), "counternames")
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, lint.FloatCmp(), "floatcmp")
}

func TestGlobalRand(t *testing.T) {
	linttest.Run(t, lint.GlobalRand(), "globalrand")
}

func TestRegistryContract(t *testing.T) {
	linttest.Run(t, lint.RegistryContract(), "registrycontract")
}

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc(nil), "hotpathalloc")
}

// TestHotPathAllocExtraRoots drives the configured-hot-leaf mechanism the
// real suite uses for mem/mn/rn/dn leaves called from another package's
// tick loop.
func TestHotPathAllocExtraRoots(t *testing.T) {
	extra := map[string][]string{
		"repro/internal/lint/testdata/hotleaf": {"Leaf.Touch"},
	}
	linttest.Run(t, lint.HotPathAlloc(extra), "hotleaf")
}

// TestHotPathAllocChipRoots pins the chip-interconnect tier of the root
// table: the SharedDRAM.Serve / CorePort.* shapes added for the multi-core
// composition are rooted the same way, including transitive reach from a
// port method into the grant queue.
func TestHotPathAllocChipRoots(t *testing.T) {
	extra := map[string][]string{
		"repro/internal/lint/testdata/chipleaf": {"grantQueue.Serve", "port.FetchCycles"},
	}
	linttest.Run(t, lint.HotPathAlloc(extra), "chipleaf")
}

// TestUnknownAnalyzerDirective pins the hygiene rule that a typo'd
// //lint:ignore target is flagged instead of silently suppressing nothing.
func TestUnknownAnalyzerDirective(t *testing.T) {
	linttest.Run(t, lint.FloatCmp(), "directives")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder(), "maporder")
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, lint.WallClock([]string{"repro/internal/lint/testdata/wallclock"}), "wallclock")
}

// TestWallClockUnrestricted pins the allowlist seam: the same wall-clock
// reads in a package off the restricted list (the serve layer's latency
// measurement shape) produce no findings.
func TestWallClockUnrestricted(t *testing.T) {
	linttest.Run(t, lint.WallClock(lint.DefaultWallClockPackages()), "wallclockfree")
}

func TestMutexHeld(t *testing.T) {
	linttest.Run(t, lint.MutexHeld(), "mutexheld")
}

func TestCtxCancel(t *testing.T) {
	linttest.Run(t, lint.CtxCancel(), "ctxcancel")
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, lint.AtomicMix(), "atomicmix")
}

// TestSuppressionsAudit covers stonnelint -suppressions' engine: every
// //lint:ignore directive in a loaded package is listed with its position,
// analyzer and reason, sorted, with broken directives annotated rather
// than dropped.
func TestSuppressionsAudit(t *testing.T) {
	loader, err := lint.NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	load := func(fixture string) *lint.Package {
		pkg, err := loader.LoadDirAs("testdata/"+fixture, "repro/internal/lint/testdata/"+fixture)
		if err != nil {
			t.Fatal(err)
		}
		return pkg
	}
	pkgs := []*lint.Package{load("maporder"), load("directives")}
	sups := lint.Suppressions(pkgs, lint.DefaultAnalyzers())

	var maporder, unknown *lint.Suppression
	for i := range sups {
		s := &sups[i]
		switch s.Analyzer {
		case "maporder":
			maporder = s
		case "floatcompare":
			unknown = s
		}
	}
	if maporder == nil {
		t.Fatalf("maporder suppression not listed: %v", sups)
	}
	if want := "probe values are powers of two, addition is exact in any order"; maporder.Reason != want {
		t.Errorf("maporder reason = %q, want %q", maporder.Reason, want)
	}
	if maporder.Note != "" {
		t.Errorf("well-formed suppression carries note %q", maporder.Note)
	}
	if !strings.HasSuffix(maporder.File, "testdata/maporder/fixture.go") || maporder.Line == 0 {
		t.Errorf("maporder position = %s:%d", maporder.File, maporder.Line)
	}
	if unknown == nil {
		t.Fatalf("unknown-analyzer directive not listed: %v", sups)
	}
	if unknown.Note != "unknown analyzer" {
		t.Errorf("unknown-analyzer note = %q", unknown.Note)
	}
	if !strings.Contains(unknown.String(), "[unknown analyzer]") {
		t.Errorf("String() hides the note: %s", unknown.String())
	}
	if !sort.SliceIsSorted(sups, func(i, j int) bool {
		if sups[i].File != sups[j].File {
			return sups[i].File < sups[j].File
		}
		return sups[i].Line < sups[j].Line
	}) {
		t.Errorf("audit output not sorted: %v", sups)
	}
}
