package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestCounterNames(t *testing.T) {
	linttest.Run(t, lint.CounterNames(), "counternames")
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, lint.FloatCmp(), "floatcmp")
}

func TestGlobalRand(t *testing.T) {
	linttest.Run(t, lint.GlobalRand(), "globalrand")
}

func TestRegistryContract(t *testing.T) {
	linttest.Run(t, lint.RegistryContract(), "registrycontract")
}

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc(nil), "hotpathalloc")
}

// TestHotPathAllocExtraRoots drives the configured-hot-leaf mechanism the
// real suite uses for mem/mn/rn/dn leaves called from another package's
// tick loop.
func TestHotPathAllocExtraRoots(t *testing.T) {
	extra := map[string][]string{
		"repro/internal/lint/testdata/hotleaf": {"Leaf.Touch"},
	}
	linttest.Run(t, lint.HotPathAlloc(extra), "hotleaf")
}

// TestHotPathAllocChipRoots pins the chip-interconnect tier of the root
// table: the SharedDRAM.Serve / CorePort.* shapes added for the multi-core
// composition are rooted the same way, including transitive reach from a
// port method into the grant queue.
func TestHotPathAllocChipRoots(t *testing.T) {
	extra := map[string][]string{
		"repro/internal/lint/testdata/chipleaf": {"grantQueue.Serve", "port.FetchCycles"},
	}
	linttest.Run(t, lint.HotPathAlloc(extra), "chipleaf")
}

// TestUnknownAnalyzerDirective pins the hygiene rule that a typo'd
// //lint:ignore target is flagged instead of silently suppressing nothing.
func TestUnknownAnalyzerDirective(t *testing.T) {
	linttest.Run(t, lint.FloatCmp(), "directives")
}
