package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// guardedByRE parses the field annotation: `// guarded by mu` (any mutex
// field name), in the field's trailing comment or doc comment.
var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// MutexHeld returns the analyzer enforcing struct-field lock discipline:
// a field annotated `// guarded by <mu>` may only be read or written inside
// a function that locks that mutex on the same base expression
// (`c.mu.Lock()` / `c.mu.RLock()` for an access to `c.field`), or whose doc
// comment states the caller already holds it ("... caller holds mu ...").
//
// The check is function-granular: one Lock call anywhere in the function
// covers all of its accesses. That is deliberately weaker than a
// flow-sensitive happens-before analysis (which the race detector provides
// dynamically) — what it catches statically is the common regression of a
// new method, or a new early path in an old method, touching guarded state
// with no locking at all, which `go test -race` only sees when a test
// happens to race on it.
func MutexHeld() *Analyzer {
	a := &Analyzer{
		Name: "mutexheld",
		Doc: "fields annotated `guarded by mu` may only be accessed in functions that " +
			"lock that mutex on the same receiver (or are documented caller-holds-lock)",
	}
	a.Run = func(pass *Pass) error {
		guarded := collectGuardedFields(pass)
		if len(guarded) == 0 {
			return nil
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkGuardedAccesses(pass, fd, guarded)
			}
		}
		return nil
	}
	return a
}

// collectGuardedFields maps each annotated field object to its mutex name.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						out[obj] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkGuardedAccesses flags guarded-field selectors in one function that
// the function neither locks for nor is documented to receive locked.
func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	locked := lockedBases(pass, fd.Body)
	doc := ""
	if fd.Doc != nil {
		doc = strings.ToLower(fd.Doc.Text())
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		if obj == nil {
			if s, ok := pass.Info.Selections[sel]; ok {
				obj = s.Obj()
			}
		}
		mu, ok := guarded[obj]
		if !ok {
			return true
		}
		base := types.ExprString(sel.X)
		if locked[base+"."+mu] {
			return true
		}
		if callerHoldsLock(doc, mu) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "%s is guarded by %s but %s locks neither %s.%s nor documents that its caller holds it", sel.Sel.Name, mu, fd.Name.Name, base, mu)
		return true
	})
}

// lockedBases collects "base.mu" strings for every mutex Lock/RLock call in
// the body: `c.mu.Lock()` records "c.mu".
func lockedBases(pass *Pass, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
		default:
			return true
		}
		out[types.ExprString(sel.X)] = true
		return true
	})
	return out
}

// callerHoldsLock reports whether the function's doc comment declares the
// caller-holds-lock contract for mu ("caller holds mu", "caller must hold
// d.mu", ...).
func callerHoldsLock(doc, mu string) bool {
	if doc == "" || !strings.Contains(doc, "caller") {
		return false
	}
	mu = strings.ToLower(mu)
	for _, verb := range []string{"holds ", "hold "} {
		i := 0
		for {
			j := strings.Index(doc[i:], verb)
			if j < 0 {
				break
			}
			rest := doc[i+j+len(verb):]
			// Accept "holds mu", "holds the mu", "holds c.mu ...".
			rest = strings.TrimPrefix(rest, "the ")
			if strings.HasPrefix(rest, mu) || strings.HasPrefix(afterDot(rest), mu) {
				return true
			}
			i += j + len(verb)
		}
	}
	return false
}

// afterDot strips a leading "recv." qualifier ("c.mu ..." → "mu ...").
func afterDot(s string) string {
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '.':
			return s[i+1:]
		case s[i] == ' ' || s[i] == '\n':
			return s
		}
	}
	return s
}
