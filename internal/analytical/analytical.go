// Package analytical reimplements the three analytical cost models the
// paper compares STONNE against in Figure 1: the SCALE-Sim systolic-array
// model (Fig. 1a), the MAERI analytical model shipped with the MAERI paper
// (Fig. 1b), and the SIGMA analytical model (Fig. 1c). Analytical models
// compute cycle counts from closed-form expressions over layer dimensions;
// they cannot see pipeline stalls, reload bubbles or the actual
// distribution of zeros — which is exactly the gap the paper quantifies.
package analytical

import (
	"fmt"
	"math"
)

// SystolicOS returns the SCALE-Sim-style cycle estimate for an
// output-stationary P×P systolic array running an M×N×K GEMM: each tile
// streams K operands through the array with 2(P-1) cycles of skew, and
// tiles execute back to back.
func SystolicOS(m, n, k, p int) (float64, error) {
	if m <= 0 || n <= 0 || k <= 0 || p <= 0 {
		return 0, fmt.Errorf("analytical: non-positive dims %d×%d×%d on %d", m, n, k, p)
	}
	tiles := float64(ceilDiv(m, p) * ceilDiv(n, p))
	perTile := float64(k + 2*(p-1))
	return tiles * perTile, nil
}

// MAERIConv is the analytical model for a convolution on a MAERI-like
// fabric: compute time is the number of tile steps (each virtual neuron
// produces one partial output per step), and data delivery is assumed to
// overlap perfectly with compute, bounded only by the aggregate volume
// over the bandwidth. This perfect-overlap assumption is what breaks when
// bandwidth shrinks: the cycle-level simulator sees per-step delivery
// serialization and distribution/reduction conflicts the formula cannot.
type MAERIConvParams struct {
	// Layer: K filters and C channels per group, G groups, R×S window,
	// X'×Y' output.
	K, C, G, R, S, Xo, Yo int
	// Tile: virtual neurons = TK·TYp, each of VNSize = R·S·TC.
	TK, TYp, TC int
	// Hardware.
	MSSize, Bandwidth int
}

// MAERIConv returns the analytical cycle estimate.
func MAERIConv(p MAERIConvParams) (float64, error) {
	if p.K <= 0 || p.C <= 0 || p.R <= 0 || p.S <= 0 || p.Xo <= 0 || p.Yo <= 0 {
		return 0, fmt.Errorf("analytical: non-positive layer dims %+v", p)
	}
	if p.TK <= 0 || p.TYp <= 0 || p.TC <= 0 || p.Bandwidth <= 0 {
		return 0, fmt.Errorf("analytical: non-positive tile/hw params %+v", p)
	}
	g := p.G
	if g < 1 {
		g = 1
	}
	folds := float64(ceilDiv(p.C, p.TC))
	steps := float64(g) * float64(ceilDiv(p.K, p.TK)) * folds * float64(p.Xo) * float64(ceilDiv(p.Yo, p.TYp))

	// Unique traffic: weights once per (filter block × fold × reuse-free
	// reload is ignored by the model — weights are assumed to stay), and
	// each input element delivered once (perfect multicast and reuse).
	weightVolume := float64(g * p.K * p.C * p.R * p.S)
	inputVolume := float64(g * p.C * (p.Xo + p.R - 1) * (p.Yo + p.S - 1))
	deliveryCycles := (weightVolume + inputVolume) / float64(p.Bandwidth)

	// The pipeline fill is paid once per layer, not per group.
	pipelineFill := math.Ceil(math.Log2(float64(p.R*p.S*p.TC))) + 2
	return math.Max(steps, deliveryCycles) + pipelineFill, nil
}

// MAERIGEMMParams describes a plain GEMM for the MAERI analytical model.
type MAERIGEMMParams struct {
	M, N, K           int
	TM, TN, KSlice    int
	MSSize, Bandwidth int
}

// MAERIGEMM is the GEMM form of MAERIConv: steps under perfect compute
// pipelining versus total volume over bandwidth, whichever dominates.
func MAERIGEMM(p MAERIGEMMParams) (float64, error) {
	if p.M <= 0 || p.N <= 0 || p.K <= 0 || p.TM <= 0 || p.TN <= 0 || p.KSlice <= 0 || p.Bandwidth <= 0 {
		return 0, fmt.Errorf("analytical: non-positive params %+v", p)
	}
	folds := float64(ceilDiv(p.K, p.KSlice))
	steps := float64(ceilDiv(p.M, p.TM)) * folds * float64(ceilDiv(p.N, p.TN))
	volume := float64(p.M*p.K+p.K*p.N) / float64(p.Bandwidth)
	pipelineFill := math.Ceil(math.Log2(float64(p.KSlice))) + 2
	return math.Max(steps, volume) + pipelineFill, nil
}

// SIGMAParams describes a sparse GEMM for the SIGMA analytical model.
type SIGMAParams struct {
	M, N, K int
	// SparsityA and SparsityB are the zero fractions of the stationary and
	// streaming matrices in [0,1).
	SparsityA, SparsityB float64
	MSSize, Bandwidth    int
}

// SIGMA returns the analytical cycle estimate for a sparse GEMM: the model
// knows the sparsity *ratio* but not the distribution of zeros, so it
// assumes perfectly balanced clusters — every round packs the fabric
// completely and every column needs the expected number of distinct
// streaming values. Real packings have integer losses and per-column
// variance that only full-model, real-value simulation exposes (Fig. 1c).
func SIGMA(p SIGMAParams) (float64, error) {
	if p.M <= 0 || p.N <= 0 || p.K <= 0 || p.MSSize <= 0 || p.Bandwidth <= 0 {
		return 0, fmt.Errorf("analytical: non-positive params %+v", p)
	}
	if p.SparsityA < 0 || p.SparsityA >= 1 || p.SparsityB < 0 || p.SparsityB >= 1 {
		return 0, fmt.Errorf("analytical: sparsity out of [0,1): %+v", p)
	}
	nnzA := float64(p.M) * float64(p.K) * (1 - p.SparsityA)
	rounds := math.Ceil(nnzA / float64(p.MSSize))
	// Expected distinct k values per round and column: the round holds
	// MSSize stationary elements spread over ~MSSize/(K·(1-spA)) rows...
	// the model simply assumes each column needs K·(1-spB) streaming
	// deliveries capped by the round's stationary coverage.
	rowsPerRound := float64(p.MSSize) / (float64(p.K) * (1 - p.SparsityA))
	if rowsPerRound > float64(p.M) {
		rowsPerRound = float64(p.M)
	}
	distinctK := float64(p.K) * (1 - p.SparsityB)
	if distinctK > float64(p.MSSize) {
		distinctK = float64(p.MSSize)
	}
	perColumn := math.Max(1, distinctK/float64(p.Bandwidth))
	loadPerRound := float64(p.MSSize) / float64(p.Bandwidth)
	pipelineFill := math.Ceil(math.Log2(math.Max(2, float64(p.K)*(1-p.SparsityA)))) + 2
	return rounds*(loadPerRound+float64(p.N)*perColumn) + pipelineFill, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
