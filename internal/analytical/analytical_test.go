package analytical

import (
	"testing"
	"testing/quick"
)

func TestSystolicOS(t *testing.T) {
	// One 16×16 tile at K=32: K + 2(P-1) cycles.
	got, err := SystolicOS(16, 16, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got != 62 {
		t.Errorf("cycles = %v, want 62", got)
	}
	// Four tiles.
	got, _ = SystolicOS(32, 32, 16, 16)
	if got != 4*46 {
		t.Errorf("tiled cycles = %v, want %d", got, 4*46)
	}
	if _, err := SystolicOS(0, 1, 1, 16); err == nil {
		t.Error("zero dim accepted")
	}
}

func TestMAERIConvFullBandwidthIsComputeBound(t *testing.T) {
	p := MAERIConvParams{
		K: 6, C: 6, G: 1, R: 3, S: 3, Xo: 5, Yo: 5,
		TK: 1, TYp: 3, TC: 1, MSSize: 32, Bandwidth: 1 << 20,
	}
	got, err := MAERIConv(p)
	if err != nil {
		t.Fatal(err)
	}
	steps := 6.0 * 6 * 5 * 2 // K × folds × Xo × ceil(Yo/TYp)
	if got < steps || got > steps+10 {
		t.Errorf("cycles = %v, want ≈ %v (compute bound)", got, steps)
	}
}

func TestMAERIConvBandwidthBound(t *testing.T) {
	// A 1×1 convolution has little data reuse, so the volume term can
	// dominate the step count once bandwidth shrinks.
	base := MAERIConvParams{
		K: 4, C: 512, G: 1, R: 1, S: 1, Xo: 4, Yo: 4,
		TK: 1, TYp: 1, TC: 128, MSSize: 128, Bandwidth: 128,
	}
	fast, err := MAERIConv(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Bandwidth = 4
	slow, err := MAERIConv(base)
	if err != nil {
		t.Fatal(err)
	}
	if slow <= fast {
		t.Errorf("bandwidth reduction did not increase estimate: %v vs %v", slow, fast)
	}
	if _, err := MAERIConv(MAERIConvParams{}); err == nil {
		t.Error("empty params accepted")
	}
}

func TestMAERIGEMM(t *testing.T) {
	got, err := MAERIGEMM(MAERIGEMMParams{
		M: 64, N: 64, K: 128, TM: 1, TN: 1, KSlice: 128, MSSize: 128, Bandwidth: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got < 4096 || got > 4200 { // steps = 64·64 = 4096, compute bound
		t.Errorf("cycles %v", got)
	}
	if _, err := MAERIGEMM(MAERIGEMMParams{M: 1}); err == nil {
		t.Error("bad params accepted")
	}
}

func TestSIGMASparsityMonotoneProperty(t *testing.T) {
	// More stationary sparsity → fewer estimated cycles, monotonically.
	f := func(seed int64) bool {
		s := uint64(seed)*2654435761 + 29
		next := func(lo, hi int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return lo + int(s%uint64(hi-lo+1))
		}
		p := SIGMAParams{
			M: next(8, 256), N: next(1, 128), K: next(8, 512),
			MSSize: 128, Bandwidth: 128,
		}
		prev := 1e18
		for _, sp := range []float64{0, 0.3, 0.6, 0.9} {
			p.SparsityA = sp
			got, err := SIGMA(p)
			if err != nil {
				return false
			}
			if got > prev {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSIGMAErrors(t *testing.T) {
	if _, err := SIGMA(SIGMAParams{M: 1, N: 1, K: 1, SparsityA: 1.0, MSSize: 8, Bandwidth: 8}); err == nil {
		t.Error("sparsity 1.0 accepted")
	}
	if _, err := SIGMA(SIGMAParams{}); err == nil {
		t.Error("zero params accepted")
	}
}
