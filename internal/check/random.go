package check

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Op names the workload kind a Case exercises.
type Op int

const (
	// OpGEMM is a dense matrix multiply.
	OpGEMM Op = iota
	// OpConv is a convolution.
	OpConv
	// OpSparse is a matrix multiply with a pruned (sparse) stationary
	// operand — SpMM on the sparse controller, zero-heavy GEMM elsewhere.
	OpSparse
	numOps
)

func (o Op) String() string {
	switch o {
	case OpGEMM:
		return "gemm"
	case OpConv:
		return "conv"
	case OpSparse:
		return "sparse"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Case is one self-contained differential-check workload: an architecture,
// a fabric configuration, a workload shape and the data seed. Cases built
// by RandomCase are valid by construction — every constraint the target
// architecture imposes (square fabrics, window fits, batch-1) is satisfied —
// so any error or tolerance failure Run reports is a real bug.
type Case struct {
	Arch     string
	Op       Op
	MS, BW   int
	M, N, K  int              // GEMM / sparse dims
	CS       tensor.ConvShape // conv shape (Op == OpConv)
	Sparsity float64          // fraction of zeros pruned into A (Op == OpSparse)
	Policy   sched.Policy     // sparse-controller scheduling policy
	Seed     uint64           // data seed
}

func (c Case) String() string {
	switch c.Op {
	case OpConv:
		return fmt.Sprintf("%s/conv ms=%d bw=%d %+v seed=%#x", c.Arch, c.MS, c.BW, c.CS, c.Seed)
	case OpSparse:
		return fmt.Sprintf("%s/sparse ms=%d bw=%d %dx%dx%d sp=%.2f %v seed=%#x",
			c.Arch, c.MS, c.BW, c.M, c.N, c.K, c.Sparsity, c.Policy, c.Seed)
	default:
		return fmt.Sprintf("%s/gemm ms=%d bw=%d %dx%dx%d seed=%#x", c.Arch, c.MS, c.BW, c.M, c.N, c.K, c.Seed)
	}
}

// HW resolves the case's preset hardware configuration.
func (c Case) HW() (config.Hardware, error) {
	return sim.PresetHW(c.Arch, c.MS, c.BW)
}

// splitmix is the deterministic generator behind RandomCase and the data
// fill — the same finalizer sched's RDM shuffle uses.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *splitmix) float32() float32 {
	return float32(r.next()>>40)/float32(1<<24)*2 - 1 // uniform [-1, 1)
}

// RandomCase derives a valid workload/configuration case from a seed. Equal
// seeds produce equal cases.
func RandomCase(seed uint64) Case {
	r := splitmix{s: seed ^ 0xc0ffee}
	names := sim.Names()
	c := Case{
		Arch: names[r.intn(len(names))],
		Op:   Op(r.intn(int(numOps))),
		Seed: r.next(),
	}
	// Fabric: the systolic preset needs a square PE count; everything else
	// takes any power of two. Keep sizes modest so cases run in
	// milliseconds.
	if c.Arch == "tpu" {
		c.MS = []int{16, 64, 256}[r.intn(3)]
	} else {
		c.MS = 8 << r.intn(6) // 8..256
	}
	c.BW = 4 << r.intn(5) // 4..64
	switch c.Op {
	case OpConv:
		cs := tensor.ConvShape{
			R: 1 + r.intn(3), S: 1 + r.intn(3),
			Stride:  1 + r.intn(2),
			Padding: r.intn(2),
		}
		// The flexible dense mapper folds windows over the fabric but the
		// filter plane itself must fit: R·S ≤ MS holds for every generated
		// combination (3·3 = 9 > 8 is the one excluded corner).
		for cs.R*cs.S > c.MS {
			cs.S--
		}
		cs.G = 1 + r.intn(2)
		cs.C = cs.G * (1 + r.intn(4))
		cs.K = cs.G * (1 + r.intn(4))
		cs.N = 1
		if c.Arch != "snapea" { // SNAPEA models batch-1 inference only
			cs.N += r.intn(2)
		}
		cs.X = cs.R + r.intn(6)
		cs.Y = cs.S + r.intn(6)
		c.CS = cs
	case OpSparse:
		c.M, c.N, c.K = 1+r.intn(24), 1+r.intn(24), 1+r.intn(24)
		c.Sparsity = []float64{0, 0.3, 0.5, 0.8, 1}[r.intn(5)]
		c.Policy = []sched.Policy{sched.NS, sched.RDM, sched.LFF}[r.intn(3)]
	default:
		c.M, c.N, c.K = 1+r.intn(24), 1+r.intn(24), 1+r.intn(24)
	}
	return c
}

// Run simulates the case on its architecture and differentially verifies
// the output tensor against the CPU reference. The returned report is
// non-nil whenever the simulation itself succeeded.
func (c Case) Run() (*Report, error) {
	hw, err := c.HW()
	if err != nil {
		return nil, err
	}
	acc, err := engine.New(hw)
	if err != nil {
		return nil, fmt.Errorf("check: %s: %w", c, err)
	}
	r := splitmix{s: c.Seed ^ 0xda7a}
	switch c.Op {
	case OpConv:
		cs := c.CS
		w := randTensor(&r, cs.K, cs.C/cs.G, cs.R, cs.S)
		in := randTensor(&r, cs.N, cs.C, cs.X, cs.Y)
		// Activations are post-ReLU non-negative — the soundness condition
		// of SNAPEA's early cut, and the regime every conv arch targets.
		in.Apply(func(x float32) float32 {
			if x < 0 {
				return 0
			}
			return x
		})
		got, _, err := acc.RunConv(in, w, cs, "selfcheck")
		if err != nil {
			return nil, fmt.Errorf("check: %s: %w", c, err)
		}
		return VerifyConv(hw, in, w, cs, got)
	case OpSparse:
		A := randTensor(&r, c.M, c.K)
		prune(&r, A, c.Sparsity)
		B := randTensor(&r, c.K, c.N)
		if acc.SupportsScheduling() {
			pol := c.Policy
			got, _, err := acc.RunSpMM(A, B, "selfcheck", &pol)
			if err != nil {
				return nil, fmt.Errorf("check: %s: %w", c, err)
			}
			return VerifySpMM(hw, A, B, got)
		}
		got, _, err := acc.RunGEMM(A, B, "selfcheck")
		if err != nil {
			return nil, fmt.Errorf("check: %s: %w", c, err)
		}
		return VerifyGEMM(hw, A, B, got)
	default:
		A := randTensor(&r, c.M, c.K)
		B := randTensor(&r, c.K, c.N)
		got, _, err := acc.RunGEMM(A, B, "selfcheck")
		if err != nil {
			return nil, fmt.Errorf("check: %s: %w", c, err)
		}
		return VerifyGEMM(hw, A, B, got)
	}
}

func randTensor(r *splitmix, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = r.float32()
	}
	return t
}

// prune zeroes each element independently with probability sparsity.
func prune(r *splitmix, t *tensor.Tensor, sparsity float64) {
	d := t.Data()
	for i := range d {
		if float64(r.next()>>11)/float64(1<<53) < sparsity {
			d[i] = 0
		}
	}
}
