package check

import (
	"fmt"
	"io"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// SweepResult is one case of a differential sweep with its outcome. Err is
// set when the case could not run at all; Report carries the comparison.
type SweepResult struct {
	Case   Case
	Report *Report
	Err    error
}

// Failed reports whether the case errored or missed its tolerance.
func (r SweepResult) Failed() bool {
	return r.Err != nil || (r.Report != nil && !r.Report.OK())
}

// sweepGEMMShapes is the (M, N, K) grid every architecture sweeps,
// including the degenerate single-element and skinny shapes where tiling
// logic historically breaks.
var sweepGEMMShapes = [][3]int{
	{1, 1, 1},
	{1, 17, 1},
	{3, 5, 7},
	{16, 16, 16},
	{8, 32, 4},
	{33, 13, 21},
}

// sweepConvShapes is the convolution grid: pointwise, odd window with
// padding, strided, and grouped layers.
var sweepConvShapes = []tensor.ConvShape{
	{R: 1, S: 1, C: 1, G: 1, K: 1, N: 1, X: 1, Y: 1, Stride: 1},
	{R: 1, S: 1, C: 8, G: 1, K: 4, N: 1, X: 5, Y: 5, Stride: 1},
	{R: 3, S: 3, C: 3, G: 1, K: 4, N: 1, X: 8, Y: 8, Stride: 1, Padding: 1},
	{R: 3, S: 3, C: 4, G: 2, K: 6, N: 1, X: 7, Y: 9, Stride: 2, Padding: 1},
	{R: 2, S: 3, C: 2, G: 1, K: 3, N: 1, X: 6, Y: 7, Stride: 1},
	// Batched conv: the flexible dense schedule used to silently drop every
	// image after the first (it streamed batch 0 only and returned an
	// N=1 tensor).
	{R: 2, S: 2, C: 3, G: 1, K: 2, N: 2, X: 5, Y: 6, Stride: 1},
}

// sweepSparsities covers the dense, mixed and fully-pruned regimes; 1.0 is
// the all-zero stationary operand every scheduler must survive.
var sweepSparsities = []float64{0, 0.5, 0.9, 1}

// SweepCases enumerates the full differential grid — every registered
// architecture × {GEMM, Conv, sparse} × the shape grids — without running
// anything. Cases are deterministic: the data seed derives from the case
// position. Sweep executes them; the jobkey canonicalization tests reuse
// the same list as a corpus of semantically distinct jobs.
func SweepCases() []Case {
	var out []Case
	seed := uint64(0x5eed)
	for _, arch := range sim.Names() {
		ms, bw := 16, 16 // every preset accepts a 16-PE fabric
		for _, s := range sweepGEMMShapes {
			seed++
			out = append(out, Case{
				Arch: arch, Op: OpGEMM, MS: ms, BW: bw,
				M: s[0], N: s[1], K: s[2], Seed: seed,
			})
		}
		for _, cs := range sweepConvShapes {
			seed++
			if arch == "snapea" {
				cs.N = 1 // SNAPEA models batch-1 inference only
			}
			out = append(out, Case{
				Arch: arch, Op: OpConv, MS: ms, BW: bw, CS: cs, Seed: seed,
			})
		}
		for _, sp := range sweepSparsities {
			for _, pol := range []sched.Policy{sched.NS, sched.RDM, sched.LFF} {
				seed++
				out = append(out, Case{
					Arch: arch, Op: OpSparse, MS: ms, BW: bw,
					M: 12, N: 9, K: 20, Sparsity: sp, Policy: pol, Seed: seed,
				})
			}
		}
	}
	return out
}

// Sweep runs the full differential grid and returns one result per case.
func Sweep() []SweepResult {
	cases := SweepCases()
	out := make([]SweepResult, 0, len(cases))
	for _, c := range cases {
		out = append(out, runSweepCase(c))
	}
	return out
}

func runSweepCase(c Case) SweepResult {
	rep, err := c.Run()
	return SweepResult{Case: c, Report: rep, Err: err}
}

// WriteSweep runs the sweep, streams a one-line verdict per case to w and
// returns an error if any case failed — the checksweep CLI exit status.
func WriteSweep(w io.Writer) error {
	failed := 0
	results := Sweep()
	for _, r := range results {
		switch {
		case r.Err != nil:
			failed++
			fmt.Fprintf(w, "FAIL %s: %v\n", r.Case, r.Err)
		case !r.Report.OK():
			failed++
			fmt.Fprintf(w, "%s\n", r.Report)
		default:
			line := fmt.Sprintf("ok   %s", r.Case)
			if r.Report.Tol.Exact {
				fmt.Fprintf(w, "%s (ulp %d)\n", line, r.Report.MaxULP)
			} else {
				fmt.Fprintf(w, "%s (max %.2f× allowed)\n", line, r.Report.MaxExcess)
			}
		}
	}
	fmt.Fprintf(w, "checksweep: %d cases, %d failed\n", len(results), failed)
	if failed > 0 {
		return fmt.Errorf("checksweep: %d of %d cases failed", failed, len(results))
	}
	return nil
}
