package check

import (
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/mapper"
	"repro/internal/tensor"
)

// The fuzz targets feed raw, unvalidated parameters into the dispatch
// surface. The invariants are: (1) nothing panics — invalid inputs come
// back as errors; (2) whenever a simulation does run, its output verifies
// against the CPU reference under the architecture's contract.

// fuzzHW builds a hardware configuration from raw fuzz bytes via the
// preset table; engine.New re-validates it, so out-of-spec values must
// surface as errors, never panics.
func fuzzHW(archPick uint8, ms, bw uint16) (config.Hardware, bool) {
	presets := []func(int, int) config.Hardware{
		func(m, b int) config.Hardware { return config.TPULike(m) },
		config.MAERILike,
		config.SIGMALike,
		config.SNAPEALike,
	}
	hw := presets[int(archPick)%len(presets)](int(ms)%512, int(bw)%128)
	return hw, hw.Validate() == nil
}

func FuzzGEMMDispatch(f *testing.F) {
	f.Add(uint8(0), uint16(16), uint16(16), uint16(4), uint16(4), uint16(4), uint64(1))
	f.Add(uint8(1), uint16(16), uint16(8), uint16(1), uint16(1), uint16(1), uint64(2))
	f.Add(uint8(2), uint16(64), uint16(32), uint16(33), uint16(5), uint16(17), uint64(3))
	f.Add(uint8(3), uint16(8), uint16(4), uint16(7), uint16(20), uint16(3), uint64(4))
	f.Add(uint8(1), uint16(0), uint16(0), uint16(2), uint16(2), uint16(2), uint64(5))  // broken fabric
	f.Add(uint8(0), uint16(17), uint16(3), uint16(2), uint16(2), uint16(2), uint64(6)) // non-square systolic
	f.Fuzz(func(t *testing.T, archPick uint8, ms, bw, m, n, k uint16, seed uint64) {
		hw, valid := fuzzHW(archPick, ms, bw)
		acc, err := engine.New(hw)
		if err != nil {
			if valid && int(ms)%512 >= 4 {
				t.Fatalf("valid config rejected: %+v: %v", hw, err)
			}
			return
		}
		M, N, K := 1+int(m)%32, 1+int(n)%32, 1+int(k)%48
		r := splitmix{s: seed}
		A, B := randTensor(&r, M, K), randTensor(&r, K, N)
		got, _, err := acc.RunGEMM(A, B, "fuzz")
		if err != nil {
			return // constraint errors are fine; panics are not
		}
		rep, err := VerifyGEMM(hw, A, B, got)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("ms=%d bw=%d %dx%dx%d: %s", hw.MSSize, hw.DNBandwidth, M, N, K, rep)
		}
	})
}

func FuzzConvTile(f *testing.F) {
	f.Add(uint16(16), uint16(8), 3, 3, 4, 1, 4, 1, 8, 8, 1, 1, uint64(1))
	f.Add(uint16(16), uint16(8), 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, uint64(2))
	f.Add(uint16(64), uint16(16), 3, 3, 4, 2, 6, 2, 7, 9, 2, 1, uint64(3))
	f.Add(uint16(16), uint16(8), 0, 3, 4, 0, 4, 1, 8, 8, 1, 0, uint64(4))   // degenerate dims
	f.Add(uint16(16), uint16(8), 3, 3, 4, 1, 4, 1, 8, 8, -1, -1, uint64(5)) // negative stride/pad
	f.Add(uint16(4), uint16(4), 5, 5, 2, 1, 2, 1, 9, 9, 1, 0, uint64(6))    // window exceeds fabric
	f.Fuzz(func(t *testing.T, ms, bw uint16, r, s, c, g, k, n, x, y, stride, pad int, seed uint64) {
		cs := tensor.ConvShape{
			R: clampDim(r), S: clampDim(s), C: clampDim(c), G: clampDim(g),
			K: clampDim(k), N: clampDim(n) % 4, X: clampDim(x), Y: clampDim(y),
			Stride: clampDim(stride), Padding: clampDim(pad) % 4,
		}
		hw := config.MAERILike(int(ms)%256, int(bw)%64)
		// The mapper must never panic, whatever the shape — degenerate
		// shapes (zero groups, negative dims, windows beyond the fabric)
		// come back as errors.
		tile, tileErr := mapper.PickConv(&hw, cs)
		if tileErr == nil {
			if err := cs.Validate(); err != nil {
				t.Fatalf("PickConv accepted an invalid shape %+v: %v", cs, err)
			}
		}
		acc, err := engine.New(hw)
		if err != nil {
			return
		}
		if cs.Validate() != nil {
			// Still exercise the dispatch path: it must reject, not panic.
			in, w := tensor.New(1, 1, 1, 1), tensor.New(1, 1, 1, 1)
			if _, _, err := acc.RunConv(in, w, cs, "fuzz"); err == nil {
				t.Fatalf("invalid shape %+v accepted by RunConv", cs)
			}
			return
		}
		rng := splitmix{s: seed}
		in := randTensor(&rng, cs.N, cs.C, cs.X, cs.Y)
		w := randTensor(&rng, cs.K, cs.C/cs.G, cs.R, cs.S)
		var got *tensor.Tensor
		if tileErr == nil && tile.UsedMultipliers <= hw.MSSize && tile.TG == 1 && tile.TN == 1 {
			got, _, err = acc.RunConvTiled(in, w, cs, "fuzz", tile)
		} else {
			got, _, err = acc.RunConv(in, w, cs, "fuzz")
		}
		if err != nil {
			return
		}
		rep, err := VerifyConv(hw, in, w, cs, got)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("ms=%d %+v: %s", hw.MSSize, cs, rep)
		}
	})
}

// clampDim folds an arbitrary fuzzed int into a small shape dimension
// while keeping zero and the sign-flip corner reachable.
func clampDim(v int) int {
	if v < 0 {
		if v == -1 || v == -2 {
			return v // keep small negatives to hit the validation paths
		}
		v = -v
	}
	return v % 9
}

func FuzzSparseRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint64(1), uint8(128))
	f.Add(uint8(1), uint8(1), uint64(2), uint8(0))   // dense single element
	f.Add(uint8(7), uint8(5), uint64(3), uint8(255)) // all-zero matrix
	f.Add(uint8(9), uint8(2), uint64(4), uint8(200)) // mostly-empty rows
	f.Fuzz(func(t *testing.T, rows, cols uint8, seed uint64, sparsity uint8) {
		mr, mc := 1+int(rows)%16, 1+int(cols)%16
		r := splitmix{s: seed}
		a := randTensor(&r, mr, mc)
		prune(&r, a, float64(sparsity)/255)

		csr, err := tensor.ToCSR(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := csr.Validate(); err != nil {
			t.Fatalf("ToCSR produced invalid matrix: %v", err)
		}
		if d, _ := tensor.MaxAbsDiff(csr.Dense(), a); d != 0 {
			t.Fatalf("CSR round trip diff %g", d)
		}

		bm, err := tensor.ToBitmap(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := bm.Validate(); err != nil {
			t.Fatalf("ToBitmap produced invalid matrix: %v", err)
		}
		if d, _ := tensor.MaxAbsDiff(bm.Dense(), a); d != 0 {
			t.Fatalf("bitmap round trip diff %g", d)
		}

		view := bm.ToCSRView()
		if err := view.Validate(); err != nil {
			t.Fatalf("CSR view invalid: %v", err)
		}
		if d, _ := tensor.MaxAbsDiff(view.Dense(), a); d != 0 {
			t.Fatalf("CSR view round trip diff %g", d)
		}

		// SpMM over the encoding must be bit-exact against dense MatMul:
		// both accumulate each row's non-zeros in the same order.
		b := randTensor(&r, mc, 1+int(seed%5))
		got, err := tensor.SpMM(csr, b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tensor.MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Compare(got, want, nil, Tolerance{Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("SpMM vs MatMul: %s", rep)
		}
	})
}
