package check

import (
	"math"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/tensor"
)

func TestULPDist(t *testing.T) {
	cases := []struct {
		a, b float32
		want uint64
	}{
		{1, 1, 0},
		{0, float32(math.Copysign(0, -1)), 0}, // +0 and −0 are equal
		{1, math.Nextafter32(1, 2), 1},
		{1, math.Nextafter32(math.Nextafter32(1, 2), 2), 2},
		{-1, math.Nextafter32(-1, -2), 1},
		{math.Nextafter32(0, 1), float32(math.Copysign(float64(math.Nextafter32(0, 1)), -1)), 2},
	}
	for _, c := range cases {
		if got := ULPDist(c.a, c.b); got != c.want {
			t.Errorf("ULPDist(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := ULPDist(c.b, c.a); got != c.want {
			t.Errorf("ULPDist(%v, %v) = %d, want %d (asymmetric)", c.b, c.a, got, c.want)
		}
	}
	if got := ULPDist(float32(math.NaN()), 1); got != math.MaxUint64 {
		t.Errorf("NaN distance = %d", got)
	}
}

func TestToleranceFor(t *testing.T) {
	tpu := config.TPULike(16)
	tol, arch, err := ToleranceFor(tpu, false)
	if err != nil {
		t.Fatal(err)
	}
	if arch != "tpu" || !tol.Exact {
		t.Errorf("tpu contract: arch=%s tol=%+v", arch, tol)
	}
	maeri := config.MAERILike(16, 8)
	tol, arch, err = ToleranceFor(maeri, false)
	if err != nil {
		t.Fatal(err)
	}
	if arch != "maeri" || tol.Exact || tol.RelTol <= 0 {
		t.Errorf("maeri contract: arch=%s tol=%+v", arch, tol)
	}
	snapea := config.SNAPEALike(16, 8)
	tol, _, err = ToleranceFor(snapea, true)
	if err != nil {
		t.Fatal(err)
	}
	if !tol.ClampNonNeg {
		t.Errorf("snapea conv contract should clamp: %+v", tol)
	}
	tol, _, _ = ToleranceFor(snapea, false)
	if tol.ClampNonNeg {
		t.Errorf("snapea GEMM contract should not clamp: %+v", tol)
	}
}

func TestCompareExact(t *testing.T) {
	a, _ := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	rep, err := Compare(a.Clone(), a, nil, Tolerance{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Err() != nil {
		t.Fatalf("identical tensors failed exact compare: %s", rep)
	}
	b := a.Clone()
	b.Set(math.Nextafter32(3, 4), 1, 0)
	rep, err = Compare(b, a, nil, Tolerance{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || rep.Mismatches != 1 || rep.MaxULP != 1 {
		t.Fatalf("1-ulp deviation not flagged: %s", rep)
	}
	if rep.Err() == nil {
		t.Fatal("failing report has nil Err")
	}
}

func TestCompareRelative(t *testing.T) {
	want, _ := tensor.FromSlice([]float32{100, 0}, 1, 2)
	bound, _ := tensor.FromSlice([]float32{100, 0}, 1, 2)
	got, _ := tensor.FromSlice([]float32{100.0005, 0}, 1, 2)
	tol := Tolerance{RelTol: 1e-5, Atol: 1e-6}
	rep, err := Compare(got, want, bound, tol)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("in-tolerance deviation flagged: %s", rep)
	}
	got2, _ := tensor.FromSlice([]float32{100.01, 0}, 1, 2)
	rep, _ = Compare(got2, want, bound, tol)
	if rep.OK() {
		t.Fatalf("10×-out deviation accepted: %s", rep)
	}
	// A zero bound admits only the absolute floor.
	got3, _ := tensor.FromSlice([]float32{100, 0.5}, 1, 2)
	rep, _ = Compare(got3, want, bound, tol)
	if rep.OK() {
		t.Fatalf("error on a zero-bound element accepted: %s", rep)
	}
}

func TestCompareClampNonNeg(t *testing.T) {
	// SNAPEA's cut writes whatever negative psum it stopped at; post-ReLU
	// both sides are zero and must compare equal.
	want, _ := tensor.FromSlice([]float32{-3.75, 2}, 1, 2)
	got, _ := tensor.FromSlice([]float32{-0.01, 2}, 1, 2)
	tol := Tolerance{RelTol: 1e-5, Atol: 1e-6, ClampNonNeg: true}
	rep, err := Compare(got, want, nil, tol)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("negative-vs-negative mismatch should clamp away: %s", rep)
	}
	tol.ClampNonNeg = false
	rep, _ = Compare(got, want, nil, tol)
	if rep.OK() {
		t.Fatal("without clamping the deviation must be flagged")
	}
}

func TestCompareShapeMismatch(t *testing.T) {
	if _, err := Compare(tensor.New(2, 2), tensor.New(2, 3), nil, Tolerance{}); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := Compare(nil, tensor.New(1), nil, Tolerance{}); err == nil {
		t.Error("nil tensor accepted")
	}
	if _, err := Compare(tensor.New(2), tensor.New(2), tensor.New(3), Tolerance{}); err == nil {
		t.Error("bound shape mismatch accepted")
	}
}

func TestReportWorstOffenders(t *testing.T) {
	want := tensor.New(10)
	got := tensor.New(10)
	for i := 0; i < 10; i++ {
		got.Set(float32(i)*0.1, i) // increasing error
	}
	rep, err := Compare(got, want, nil, Tolerance{RelTol: 1e-5, Atol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Worst) != maxWorst {
		t.Fatalf("worst list has %d entries, want %d", len(rep.Worst), maxWorst)
	}
	for i := 1; i < len(rep.Worst); i++ {
		if rep.Worst[i].Excess > rep.Worst[i-1].Excess {
			t.Fatalf("worst list not sorted: %v", rep.Worst)
		}
	}
	if rep.Worst[0].Index[0] != 9 {
		t.Errorf("worst element should be index 9, got %v", rep.Worst[0].Index)
	}
	if !strings.Contains(rep.String(), "worst") {
		t.Error("report omits worst offenders")
	}
}

func TestVerifyGEMMDetectsCorruption(t *testing.T) {
	hw := config.TPULike(16)
	r := splitmix{s: 7}
	A, B := randTensor(&r, 5, 6), randTensor(&r, 6, 4)
	acc, err := engine.New(hw)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := acc.RunGEMM(A, B, "t")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyGEMM(hw, A, B, got)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean run failed verification: %s", rep)
	}
	// A single flipped mantissa bit must be caught.
	got.Set(math.Nextafter32(got.At(2, 1), 2), 2, 1)
	rep, err = VerifyGEMM(hw, A, B, got)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("bit-flipped output passed exact verification")
	}
}

func TestRandomCaseDeterministicAndValid(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		a, b := RandomCase(seed), RandomCase(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d: nondeterministic case: %s vs %s", seed, a, b)
		}
		hw, err := a.HW()
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, a, err)
		}
		if err := hw.Validate(); err != nil {
			t.Fatalf("seed %d (%s): invalid preset: %v", seed, a, err)
		}
	}
}

func TestRandomCasesPass(t *testing.T) {
	n := uint64(60)
	if testing.Short() {
		n = 12
	}
	for seed := uint64(0); seed < n; seed++ {
		c := RandomCase(seed)
		rep, err := c.Run()
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, c, err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d: %s", seed, rep)
		}
	}
}

// TestSweep is the in-tree copy of the checksweep CLI gate: every
// registered architecture × workload kind × shape grid must verify.
func TestSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	for _, r := range Sweep() {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Case, r.Err)
		} else if !r.Report.OK() {
			t.Errorf("%s", r.Report)
		}
	}
}

// Regression: the flexible dense schedule used to stream only the first
// image of a batched convolution and return an N=1 output tensor.
func TestBatchedConvMAERIRegression(t *testing.T) {
	hw := config.MAERILike(16, 8)
	cs := tensor.ConvShape{R: 2, S: 2, C: 3, G: 1, K: 2, N: 3, X: 5, Y: 5, Stride: 1}
	r := splitmix{s: 99}
	in := randTensor(&r, cs.N, cs.C, cs.X, cs.Y)
	w := randTensor(&r, cs.K, cs.C/cs.G, cs.R, cs.S)
	acc, err := engine.New(hw)
	if err != nil {
		t.Fatal(err)
	}
	got, run, err := acc.RunConv(in, w, cs, "batch-regression")
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim(0) != cs.N {
		t.Fatalf("output batch dim %d, want %d", got.Dim(0), cs.N)
	}
	if run.Cycles == 0 {
		t.Fatal("merged run lost its cycle count")
	}
	rep, err := VerifyConv(hw, in, w, cs, got)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("batched conv wrong: %s", rep)
	}
}

// Every architecture must declare a resolvable numeric contract.
func TestEveryArchHasContract(t *testing.T) {
	for _, a := range sim.List() {
		if a.Contract.ExactSum {
			continue
		}
		if a.Contract.RelTol <= 0 {
			// RelTol zero falls back to the harness default — allowed, but
			// the four paper compositions all declare one explicitly.
			t.Errorf("arch %s declares neither ExactSum nor RelTol", a.Name)
		}
	}
}
