// Package check is the differential verification harness: it replays any
// workload the simulator ran (GEMM, convolution, sparse MM) on the CPU
// reference executor and compares the simulated output tensor element by
// element under a summation-order-aware tolerance model.
//
// The tolerance an architecture earns comes from its registered
// sim.NumericContract. Compositions that accumulate every output in the
// reference k-order (the systolic array) must match bit for bit — ULP
// distance zero. Compositions whose reduction trees or scheduling rounds
// reorder the sum (MAERI's ART, SIGMA's FAN clusters) are held to a bounded
// error relative to the element's reordering scale Σ|aᵢ·bᵢ| — the
// absolute-value product, computed by the same reference kernels on |A| and
// |B|. SNAPEA's early negative cut makes convolution outputs meaningful only
// after the following ReLU, so its contract clamps both sides at zero first.
package check

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Default tolerances for architectures whose contract leaves them unset.
const (
	// DefaultRelTol bounds |got−want| by DefaultRelTol·Σ|aᵢ·bᵢ| per element
	// when a reordering architecture does not declare its own bound.
	DefaultRelTol = 1e-5
	// DefaultAtol is the absolute floor added to every per-element bound, so
	// elements whose reordering scale is zero still admit float32 noise.
	DefaultAtol = 1e-6
)

// maxWorst caps how many worst-offending elements a report retains.
const maxWorst = 5

// Tolerance is the resolved per-run comparison policy.
type Tolerance struct {
	// Exact requires bit-for-bit equality (ULP distance 0).
	Exact bool
	// RelTol scales the per-element bound Σ|aᵢ·bᵢ| (unused when Exact).
	RelTol float64
	// Atol is the absolute error floor (unused when Exact).
	Atol float64
	// ClampNonNeg clamps both sides at zero before comparing — the
	// post-activation contract of early-termination architectures.
	ClampNonNeg bool
}

func (t Tolerance) String() string {
	if t.Exact {
		return "exact (ULP 0)"
	}
	s := fmt.Sprintf("rel %.1e + abs %.1e", t.RelTol, t.Atol)
	if t.ClampNonNeg {
		s += ", post-ReLU"
	}
	return s
}

// ToleranceFor resolves the comparison policy for a configuration from the
// architecture registry. conv selects the convolution flavour of the
// contract (the early-cut clamp applies to convolutions only).
func ToleranceFor(hw config.Hardware, conv bool) (Tolerance, string, error) {
	arch, err := sim.Resolve(hw)
	if err != nil {
		return Tolerance{}, "", err
	}
	c := arch.Contract
	tol := Tolerance{Exact: c.ExactSum, RelTol: c.RelTol, Atol: DefaultAtol}
	if !tol.Exact && tol.RelTol == 0 {
		tol.RelTol = DefaultRelTol
	}
	if conv && c.PostActivationConv {
		tol.ClampNonNeg = true
	}
	return tol, arch.Name, nil
}

// Offender is one compared element, reported when it is among the worst.
type Offender struct {
	Index     []int // multi-index into the output tensor
	Got, Want float32
	AbsErr    float64
	// Excess is AbsErr divided by the element's allowed error — > 1 means
	// the element failed. Exact comparisons score by ULP distance instead.
	Excess float64
	ULP    uint64
}

func (o Offender) String() string {
	return fmt.Sprintf("[%s] got %v want %v (abs %.3g, %.2f× allowed, %d ulp)",
		joinInts(o.Index), o.Got, o.Want, o.AbsErr, o.Excess, o.ULP)
}

// Report is the outcome of one differential comparison.
type Report struct {
	Arch string // registry name, when resolved via a Verify* helper
	Op   string // "GEMM", "CONV" or "SPMM"
	Tol  Tolerance
	// Elems is the number of elements compared, Mismatches how many
	// exceeded their allowed error.
	Elems, Mismatches int
	MaxAbsErr         float64
	MaxULP            uint64
	// MaxExcess is the largest AbsErr/allowed ratio seen (exact runs report
	// MaxULP instead).
	MaxExcess float64
	// Worst holds the worst-scoring elements, most offending first.
	Worst []Offender
}

// OK reports whether every element met its bound.
func (r *Report) OK() bool { return r.Mismatches == 0 }

// Err returns nil for a passing report and a descriptive error otherwise.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("check: %s", r.String())
}

func (r *Report) String() string {
	var b strings.Builder
	name := r.Arch
	if name == "" {
		name = "?"
	}
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "%s %s/%s vs reference [%s]: %d/%d elements out of tolerance",
		verdict, name, r.Op, r.Tol, r.Mismatches, r.Elems)
	if r.Tol.Exact {
		fmt.Fprintf(&b, " (max %d ulp)", r.MaxULP)
	} else {
		fmt.Fprintf(&b, " (max abs %.3g, %.2f× allowed)", r.MaxAbsErr, r.MaxExcess)
	}
	for _, o := range r.Worst {
		fmt.Fprintf(&b, "\n  worst %s", o.String())
	}
	return b.String()
}

// Compare checks got against want element-wise under tol. bound supplies
// each element's reordering scale Σ|aᵢ·bᵢ| (same shape as want); it may be
// nil, in which case |want| stands in as the scale. Shapes must match.
func Compare(got, want, bound *tensor.Tensor, tol Tolerance) (*Report, error) {
	if got == nil || want == nil {
		return nil, fmt.Errorf("check: nil tensor in comparison")
	}
	if !tensor.SameShape(got, want) {
		return nil, fmt.Errorf("check: output shape %v does not match reference %v",
			got.Shape(), want.Shape())
	}
	if bound != nil && !tensor.SameShape(bound, want) {
		return nil, fmt.Errorf("check: bound shape %v does not match reference %v",
			bound.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	var bd []float32
	if bound != nil {
		bd = bound.Data()
	}
	rep := &Report{Tol: tol, Elems: len(gd)}
	for i := range gd {
		g, w := gd[i], wd[i]
		if tol.ClampNonNeg {
			if g < 0 {
				g = 0
			}
			if w < 0 {
				w = 0
			}
		}
		ulp := ULPDist(g, w)
		absErr := math.Abs(float64(g) - float64(w))
		if math.IsNaN(float64(g)) || math.IsNaN(float64(w)) {
			absErr = math.Inf(1)
		}
		var excess float64
		var bad bool
		if tol.Exact {
			excess = float64(ulp)
			bad = ulp > 0
		} else {
			scale := math.Abs(float64(w))
			if bd != nil {
				scale = math.Abs(float64(bd[i]))
			}
			allowed := tol.Atol + tol.RelTol*scale
			excess = absErr / allowed
			bad = absErr > allowed
		}
		if bad {
			rep.Mismatches++
		}
		if absErr > rep.MaxAbsErr {
			rep.MaxAbsErr = absErr
		}
		if ulp > rep.MaxULP {
			rep.MaxULP = ulp
		}
		if excess > rep.MaxExcess {
			rep.MaxExcess = excess
		}
		if excess > 0 {
			rep.noteWorst(Offender{
				Index: unravel(i, want.Shape()),
				Got:   g, Want: w,
				AbsErr: absErr, Excess: excess, ULP: ulp,
			})
		}
	}
	return rep, nil
}

// noteWorst keeps the top-maxWorst offenders sorted by descending Excess.
func (r *Report) noteWorst(o Offender) {
	pos := len(r.Worst)
	for pos > 0 && r.Worst[pos-1].Excess < o.Excess {
		pos--
	}
	if pos >= maxWorst {
		return
	}
	r.Worst = append(r.Worst, Offender{})
	copy(r.Worst[pos+1:], r.Worst[pos:])
	r.Worst[pos] = o
	if len(r.Worst) > maxWorst {
		r.Worst = r.Worst[:maxWorst]
	}
}

// VerifyGEMM recomputes C = A×B on the CPU reference and compares got
// against it under the configuration's architecture contract.
func VerifyGEMM(hw config.Hardware, A, B, got *tensor.Tensor) (*Report, error) {
	return verifyMM(hw, A, B, got, "GEMM")
}

// VerifySpMM is VerifyGEMM for the sparse front end: the reference for a
// sparse×dense product is the same dense MatMul (A carries its zeros).
func VerifySpMM(hw config.Hardware, A, B, got *tensor.Tensor) (*Report, error) {
	return verifyMM(hw, A, B, got, "SPMM")
}

func verifyMM(hw config.Hardware, A, B, got *tensor.Tensor, op string) (*Report, error) {
	tol, arch, err := ToleranceFor(hw, false)
	if err != nil {
		return nil, err
	}
	want, err := tensor.MatMul(A, B)
	if err != nil {
		return nil, fmt.Errorf("check: reference %s: %w", op, err)
	}
	var bound *tensor.Tensor
	if !tol.Exact {
		if bound, err = tensor.MatMul(absTensor(A), absTensor(B)); err != nil {
			return nil, fmt.Errorf("check: %s bound: %w", op, err)
		}
	}
	rep, err := Compare(got, want, bound, tol)
	if err != nil {
		return nil, err
	}
	rep.Arch, rep.Op = arch, op
	return rep, nil
}

// VerifyConv recomputes the convolution on the CPU reference and compares
// got against it under the configuration's architecture contract.
func VerifyConv(hw config.Hardware, in, w *tensor.Tensor, cs tensor.ConvShape, got *tensor.Tensor) (*Report, error) {
	tol, arch, err := ToleranceFor(hw, true)
	if err != nil {
		return nil, err
	}
	want, err := tensor.Conv2D(in, w, cs)
	if err != nil {
		return nil, fmt.Errorf("check: reference CONV: %w", err)
	}
	var bound *tensor.Tensor
	if !tol.Exact {
		if bound, err = tensor.Conv2D(absTensor(in), absTensor(w), cs); err != nil {
			return nil, fmt.Errorf("check: CONV bound: %w", err)
		}
	}
	rep, err := Compare(got, want, bound, tol)
	if err != nil {
		return nil, err
	}
	rep.Arch, rep.Op = arch, "CONV"
	return rep, nil
}

// ULPDist returns the distance between two float32 values in units of last
// place — the number of representable values strictly between them, plus
// one when they differ. Equal values (including +0 vs −0) are 0; any NaN
// operand is infinitely far.
func ULPDist(a, b float32) uint64 {
	if a == b {
		return 0
	}
	if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
		return math.MaxUint64
	}
	ia, ib := lexOrder(a), lexOrder(b)
	if ia < ib {
		ia, ib = ib, ia
	}
	return uint64(ia - ib)
}

// lexOrder maps float32 bit patterns onto a line where adjacent
// representable values differ by exactly 1 — the standard two's-complement
// trick, with negative floats reflected below zero.
func lexOrder(f float32) int64 {
	b := int64(math.Float32bits(f))
	if b >= 0x80000000 { // sign bit set
		return 0x80000000 - b
	}
	return b
}

// absTensor returns a copy with every element replaced by its magnitude.
func absTensor(t *tensor.Tensor) *tensor.Tensor {
	c := t.Clone()
	c.Apply(func(x float32) float32 {
		return float32(math.Abs(float64(x)))
	})
	return c
}

// unravel converts a flat row-major offset into a multi-index.
func unravel(off int, shape []int) []int {
	idx := make([]int, len(shape))
	for i := len(shape) - 1; i >= 0; i-- {
		idx[i] = off % shape[i]
		off /= shape[i]
	}
	return idx
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}
