package engine

import (
	"fmt"

	"repro/internal/comp"
	"repro/internal/dn"
	"repro/internal/mapper"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// convSource emits the schedule for a convolution on the flexible dense
// fabric: virtual neurons span T_K parallel filters × T_Y' adjacent output
// positions, weights stay stationary across a panel of output positions,
// and the Linear MN forwarding links carry the sliding-window overlap
// between consecutive steps.
type convSource struct {
	in, w *tensor.Tensor
	cs    tensor.ConvShape
	t     mapper.Tile

	cg, kg, xo, yo int
	folds          int

	// Output position groups: each group is one step covering TYp
	// consecutive oy positions at one ox.
	groupsPerRow, panelGroups, panels int

	// iteration state
	g, mb, panel, fold, grp int
	phase                   int // 0 = weight load, 1 = stream
	seq                     int
	exhausted               bool

	prevOx     int
	forwarding bool

	// Stamp-based coordinate dedup (allocation-free hot path): seen[idx]
	// holds the generation (seq+1) a coordinate was last needed in;
	// slot[idx] its delivery index within the current step. A coordinate
	// whose stamp equals the previous step's generation was just
	// delivered and can ride the forwarding links.
	seen   []uint32
	slot   []int32
	coordW int // padded row width (Y + 2·padding)
	coordH int // padded column count (X + 2·padding)
}

var _ sim.Source = (*convSource)(nil)

func newConvSource(in, w *tensor.Tensor, cs tensor.ConvShape, t mapper.Tile, forwarding bool) *convSource {
	c := &convSource{
		in: in, w: w, cs: cs, t: t,
		cg: cs.C / cs.G, kg: cs.K / cs.G,
		xo: cs.OutX(), yo: cs.OutY(),
		folds:      t.Folds,
		forwarding: forwarding,
		prevOx:     -1,
		coordH:     cs.X + 2*cs.Padding,
		coordW:     cs.Y + 2*cs.Padding,
	}
	cells := cs.C * c.coordH * c.coordW
	c.seen = make([]uint32, cells)
	c.slot = make([]int32, cells)
	c.groupsPerRow = ceilDiv(c.yo, t.TYp)
	totalGroups := c.xo * c.groupsPerRow
	c.panelGroups = sim.MaxAccEntries / (t.TK * t.TYp)
	if c.panelGroups < 1 {
		c.panelGroups = 1
	}
	if c.panelGroups > totalGroups {
		c.panelGroups = totalGroups
	}
	c.panels = ceilDiv(totalGroups, c.panelGroups)
	return c
}

func (c *convSource) expectedOutputs() int {
	return c.cs.K * c.xo * c.yo
}

// vns lays VN (kk, ty) = kk·TYp + ty over consecutive switch ranges.
func (c *convSource) vns() [][]int {
	vns := make([][]int, c.t.TK*c.t.TYp)
	for v := range vns {
		members := make([]int, c.t.VNSize)
		for p := range members {
			members[p] = v*c.t.VNSize + p
		}
		vns[v] = members
	}
	return vns
}

func (c *convSource) ms(kk, ty, p int) int { return (kk*c.t.TYp+ty)*c.t.VNSize + p }

// member p of a VN decodes to filter offsets (tc, tr, ts).
func (c *convSource) decode(p int) (tc, tr, ts int) {
	ts = p % c.t.TS
	tr = (p / c.t.TS) % c.t.TR
	tc = p / (c.t.TS * c.t.TR)
	return
}

func (c *convSource) mblocks() int { return ceilDiv(c.kg, c.t.TK) }

// Next builds the next work item of the convolution schedule; like the
// GEMM source, the per-item delivery-list allocations are amortized over
// the many cycles the item keeps the fabric busy.
//
//lint:ignore hotpathalloc work-item construction is amortized over the many cycles the item occupies the fabric
func (c *convSource) Next() (sim.WorkItem, bool) {
	if c.exhausted {
		return sim.WorkItem{}, false
	}
	t := c.t
	cw := min(t.TC, c.cg-c.fold*t.TC) // channels in this fold

	if c.phase == 0 {
		// Weight load for (g, mb, fold): each filter's slice multicast to
		// its TYp position replicas.
		item := sim.WorkItem{Barrier: true}
		for kk := 0; kk < t.TK; kk++ {
			kfull := c.g*c.kg + c.mb*t.TK + kk
			if c.mb*t.TK+kk >= c.kg {
				continue
			}
			for p := 0; p < t.VNSize; p++ {
				tc, tr, ts := c.decode(p)
				if tc >= cw {
					continue
				}
				dests := make([]int, 0, t.TYp)
				for ty := 0; ty < t.TYp; ty++ {
					dests = append(dests, c.ms(kk, ty, p))
				}
				item.ReloadSet = append(item.ReloadSet, dests...)
				item.Deliveries = append(item.Deliveries, dn.Delivery{
					Pkt: comp.Packet{
						Value: c.w.At(kfull, c.fold*t.TC+tc, tr, ts),
						Kind:  comp.WeightPkt,
					},
					Dests: dests,
				})
			}
		}
		item.Prefetch = t.TK * t.VNSize
		c.phase = 1
		c.prevOx = -1 // a reload breaks the sliding-window reuse chain
		return item, true
	}

	// Stream one output position group.
	grpAbs := c.panel*c.panelGroups + c.grp
	ox := grpAbs / c.groupsPerRow
	oyBase := (grpAbs % c.groupsPerRow) * t.TYp

	item := sim.WorkItem{}
	seq := c.seq
	c.seq++

	// Group needed elements by coordinate for multicast, preserving a
	// deterministic order. The stamp arrays make the dedup allocation-free
	// (this loop runs once per compute step, dominating full-model runs).
	curGen := uint32(seq) + 1
	prevGen := curGen - 1
	sameRow := c.forwarding && c.prevOx == ox
	expect := make([]int, t.TK*t.TYp)

	for ty := 0; ty < t.TYp; ty++ {
		oy := oyBase + ty
		if oy >= c.yo {
			continue
		}
		for p := 0; p < t.VNSize; p++ {
			tc, tr, ts := c.decode(p)
			if tc >= cw {
				continue
			}
			cc := c.g*c.cg + c.fold*t.TC + tc
			ix := ox*c.cs.Stride + tr - c.cs.Padding
			iy := oy*c.cs.Stride + ts - c.cs.Padding
			idx := (cc*c.coordH+ix+c.cs.Padding)*c.coordW + iy + c.cs.Padding
			var slot int32
			if c.seen[idx] != curGen {
				reused := sameRow && c.seen[idx] == prevGen
				c.seen[idx] = curGen
				slot = int32(len(item.Deliveries))
				c.slot[idx] = slot
				var v float32
				if ix >= 0 && ix < c.cs.X && iy >= 0 && iy < c.cs.Y {
					v = c.in.At(0, cc, ix, iy)
				}
				item.Deliveries = append(item.Deliveries, dn.Delivery{
					Pkt:     comp.Packet{Value: v, Kind: comp.InputPkt, Seq: seq},
					Forward: reused,
				})
			} else {
				slot = c.slot[idx]
			}
			d := &item.Deliveries[slot]
			for kk := 0; kk < t.TK; kk++ {
				if c.mb*t.TK+kk >= c.kg {
					continue
				}
				d.Dests = append(d.Dests, c.ms(kk, ty, p))
				expect[kk*t.TYp+ty]++
			}
		}
	}
	c.prevOx = ox

	// Expected participation per VN: TC slice size times... each (kk,ty)
	// receives exactly one product per member with tc < cw.
	for kk := 0; kk < t.TK; kk++ {
		if c.mb*t.TK+kk >= c.kg {
			continue
		}
		kfull := c.g*c.kg + c.mb*t.TK + kk
		for ty := 0; ty < t.TYp; ty++ {
			oy := oyBase + ty
			if oy >= c.yo {
				continue
			}
			vn := kk*t.TYp + ty
			if expect[vn] == 0 {
				continue
			}
			// expect[vn] counted one product per member switch with a
			// valid channel slice — exactly the set that will latch.
			item.Jobs = append(item.Jobs, sim.JobSpec{
				VN: vn, Seq: seq, Expect: expect[vn],
				OutIdx: (kfull*c.xo+ox)*c.yo + oy,
				Last:   c.fold == c.folds-1,
			})
		}
	}

	// Advance: grp → fold → panel → mb → g.
	c.grp++
	if c.grp >= c.panelGroups || c.panel*c.panelGroups+c.grp >= c.xo*c.groupsPerRow {
		c.grp = 0
		c.fold++
		c.phase = 0
		if c.fold >= c.folds {
			c.fold = 0
			c.panel++
			if c.panel >= c.panels {
				c.panel = 0
				c.mb++
				if c.mb >= c.mblocks() {
					c.mb = 0
					c.g++
					if c.g >= c.cs.G {
						c.exhausted = true
					}
				}
			}
		}
	}
	return item, true
}

// RunConv simulates a convolution on the tree-based flexible fabric with
// sliding-window forwarding, using the mapper's tile choice.
func (r *flexDenseRunner) RunConv(in, w *tensor.Tensor, cs tensor.ConvShape, layer string) (*tensor.Tensor, *stats.Run, error) {
	if cs.R*cs.S > r.hw.MSSize {
		return nil, nil, fmt.Errorf("engine: filter window %dx%d exceeds the %d-switch fabric (fold-over-window is not supported by the dense controller)",
			cs.R, cs.S, r.hw.MSSize)
	}
	tile, err := mapper.PickConv(&r.hw, cs)
	if err != nil {
		return nil, nil, err
	}
	return r.RunConvTiled(in, w, cs, layer, tile)
}

// RunConvTiled runs a convolution with an explicit user-supplied tile — in
// STONNE, the tile configuration for every layer is part of the model
// modifications (Fig. 2d); the mapper only provides a default.
func (r *flexDenseRunner) RunConvTiled(in, w *tensor.Tensor, cs tensor.ConvShape, layer string, tile mapper.Tile) (*tensor.Tensor, *stats.Run, error) {
	if err := cs.Validate(); err != nil {
		return nil, nil, err
	}
	if err := tile.Validate(cs); err != nil {
		return nil, nil, err
	}
	if in.Rank() != 4 || in.Dim(0) != cs.N || in.Dim(1) != cs.C || in.Dim(2) != cs.X || in.Dim(3) != cs.Y {
		return nil, nil, fmt.Errorf("engine: conv input %v does not match shape %+v", in.Shape(), cs)
	}
	if cs.N > 1 {
		// The schedule streams one image at a time (T_N == 1 is enforced
		// below): batches run back-to-back on the fabric with their cycle
		// and event counts summed.
		return r.runConvBatched(in, w, cs, layer, tile)
	}
	if tile.UsedMultipliers > r.hw.MSSize {
		return nil, nil, fmt.Errorf("engine: tile uses %d multipliers, fabric has %d", tile.UsedMultipliers, r.hw.MSSize)
	}
	if tile.TG != 1 || tile.TN != 1 {
		return nil, nil, fmt.Errorf("engine: group/batch tile parallelism is not supported (T_G=%d, T_N=%d)", tile.TG, tile.TN)
	}
	// Position parallelism along x is folded into the y sweep — the two
	// are symmetric for the delivery and reuse pattern.
	if tile.TXp > 1 {
		tile.TYp *= tile.TXp
		tile.TXp = 1
	}
	ctx := sim.NewCtx(&r.hw)
	src := newConvSource(in, w, cs, tile, r.hw.MN.String() == "LMN")
	f, err := newFlexRun(ctx, tile.TK*tile.TYp, cs.K*src.xo*src.yo, src.expectedOutputs())
	if err != nil {
		return nil, nil, err
	}
	if err := f.configureVNs(src.vns()); err != nil {
		return nil, nil, err
	}
	f.src = src
	ctx.InitialFill(in.Len() + w.Len())
	if err := f.run(); err != nil {
		return nil, nil, fmt.Errorf("engine: %s CONV %s: %w", r.hw.Name, layer, err)
	}
	ctx.DRAM.WriteBack(cs.K * src.xo * src.yo)
	out, err := tensor.FromSlice(f.out, 1, cs.K, src.xo, src.yo)
	if err != nil {
		return nil, nil, err
	}
	m, n, k := cs.GEMMDims()
	run := ctx.Finish("CONV", layer, m, n, k)
	return out, run, nil
}

// runConvBatched serializes a batched convolution into per-image runs —
// the flexible dense schedule keeps weights stationary within one image's
// position sweep, so images execute sequentially and the statistics merge
// additively.
func (r *flexDenseRunner) runConvBatched(in, w *tensor.Tensor, cs tensor.ConvShape, layer string, tile mapper.Tile) (*tensor.Tensor, *stats.Run, error) {
	xo, yo := cs.OutX(), cs.OutY()
	out := tensor.New(cs.N, cs.K, xo, yo)
	cs1 := cs
	cs1.N = 1
	inPer := cs.C * cs.X * cs.Y
	outPer := cs.K * xo * yo
	var total *stats.Run
	for n := 0; n < cs.N; n++ {
		img, err := tensor.FromSlice(in.Data()[n*inPer:(n+1)*inPer], 1, cs.C, cs.X, cs.Y)
		if err != nil {
			return nil, nil, err
		}
		bout, run, err := r.RunConvTiled(img, w, cs1, layer, tile)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: batch %d: %w", n, err)
		}
		copy(out.Data()[n*outPer:(n+1)*outPer], bout.Data())
		if total == nil {
			total = run
		} else {
			total.Merge(run)
		}
	}
	total.RecomputeUtilization(r.hw.MSSize)
	return out, total, nil
}
