package engine

import (
	"reflect"
	"testing"

	"repro/internal/comp/names"
	"repro/internal/config"
	"repro/internal/dnn"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// The fast-forward differential: every architecture × operation pair runs
// twice — fully ticked (-fastforward=false) and fast-forwarded — on a
// bandwidth-starved DRAM configuration that maximizes skippable stall
// windows. The two runs must be bit-identical in outputs, cycles, every
// counter and the per-tier breakdown; the only permitted difference is the
// trace.ff.skipped_cycles observability counter, which only the
// fast-forwarded run grows. This is the exactness contract of DESIGN.md's
// "Event-driven fast-forward" section.

// starvedHW builds a preset with DRAM throttled to a trickle so barrier
// prefetches dominate the runtime (the workload fast-forward targets).
func starvedHW(t *testing.T, arch string, disableFF bool) config.Hardware {
	t.Helper()
	hw, err := sim.PresetHW(arch, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	hw.Preloaded = true
	hw.DRAM.BandwidthGBs = 1
	hw.DRAM.Modules = 1
	hw.DisableFastForward = disableFF
	return hw
}

type ffRunFn func(acc *Accelerator) (*tensor.Tensor, *stats.Run, error)

// ffRunPair executes fn ticked and fast-forwarded (both traced) and returns
// the two runs after asserting bitwise-identical results. The returned value
// is the fast-forwarded run's skipped-cycle count.
func ffRunPair(t *testing.T, arch, label string, fn ffRunFn) uint64 {
	t.Helper()
	var outs [2]*tensor.Tensor
	var runs [2]*stats.Run
	for i, disable := range []bool{true, false} {
		hw := starvedHW(t, arch, disable)
		hw.Trace = &trace.Config{}
		acc, err := New(hw)
		if err != nil {
			t.Fatalf("%s: New: %v", label, err)
		}
		outs[i], runs[i], err = fn(acc)
		if err != nil {
			t.Fatalf("%s (disableFF=%v): %v", label, disable, err)
		}
	}
	ticked, ff := runs[0], runs[1]
	if !reflect.DeepEqual(outs[0].Data(), outs[1].Data()) {
		t.Errorf("%s: output tensors diverged", label)
	}
	if ticked.Cycles != ff.Cycles {
		t.Errorf("%s: cycles diverged: ticked %d, fast-forward %d", label, ticked.Cycles, ff.Cycles)
	}
	if ticked.MACs != ff.MACs || ticked.MemAccesses != ff.MemAccesses ||
		ticked.Utilization != ff.Utilization {
		t.Errorf("%s: summary diverged: ticked %+v, fast-forward %+v", label, ticked, ff)
	}
	skipped := ff.Counters[names.TraceFFSkippedCycles]
	ffCounters := make(map[string]uint64, len(ff.Counters))
	for k, v := range ff.Counters {
		if k == names.TraceFFSkippedCycles {
			continue // the one permitted difference: skip observability
		}
		ffCounters[k] = v
	}
	if !reflect.DeepEqual(ticked.Counters, ffCounters) {
		t.Errorf("%s: counters diverged:\nticked: %v\nfast-forward: %v", label, ticked.Counters, ffCounters)
	}
	if !reflect.DeepEqual(ticked.Breakdown, ff.Breakdown) {
		t.Errorf("%s: breakdown diverged:\nticked: %v\nfast-forward: %v", label, ticked.Breakdown, ff.Breakdown)
	}
	return skipped
}

func TestFastForwardTickedParity(t *testing.T) {
	cs := tensor.ConvShape{R: 3, S: 3, C: 4, G: 1, K: 4, N: 1, X: 8, Y: 8, Stride: 1, Padding: 1}
	gemmA := randTensor(0x61, 9, 24)
	gemmB := randTensor(0x62, 24, 7)
	convIn := randTensor(0x63, 1, 4, 8, 8)
	convW := randTensor(0x64, 4, 4, 3, 3)

	var maeriSkipped uint64
	for _, arch := range sim.List() {
		arch := arch
		skipped := ffRunPair(t, arch.Name, arch.Name+" gemm", func(acc *Accelerator) (*tensor.Tensor, *stats.Run, error) {
			return acc.RunGEMM(gemmA, gemmB, "ffparity")
		})
		if arch.Name == "maeri" {
			maeriSkipped = skipped
		}
		ffRunPair(t, arch.Name, arch.Name+" conv", func(acc *Accelerator) (*tensor.Tensor, *stats.Run, error) {
			return acc.RunConv(convIn, convW, cs, "ffparity")
		})
	}
	// The starved MAERI GEMM must actually exercise fast-forward: a parity
	// pass with zero skips would only prove the feature never engaged.
	if maeriSkipped == 0 {
		t.Error("starved maeri gemm skipped no cycles — fast-forward never engaged")
	}

	// Sparse controller across all three scheduling policies.
	spA := randTensor(0x65, 16, 24)
	prune := dnn.NewRNG(0x66)
	d := spA.Data()
	for i := range d {
		if prune.Float64() < 0.8 {
			d[i] = 0
		}
	}
	spB := randTensor(0x67, 24, 9)
	for _, pol := range []sched.Policy{sched.NS, sched.RDM, sched.LFF} {
		pol := pol
		ffRunPair(t, "sigma", "sigma spmm "+pol.String(), func(acc *Accelerator) (*tensor.Tensor, *stats.Run, error) {
			return acc.RunSpMM(spA, spB, "ffparity", &pol)
		})
	}
}

// Untraced runs must match with NO exemption: fast-forward may not grow any
// counter when tracing is off, so the full counter file stays byte-exact —
// the invariant the dispatch-parity goldens and check.Sweep rely on.
func TestFastForwardUntracedCounterFileExact(t *testing.T) {
	gemmA := randTensor(0x71, 9, 24)
	gemmB := randTensor(0x72, 24, 7)
	var files [2]string
	var cycles [2]uint64
	for i, disable := range []bool{true, false} {
		hw := starvedHW(t, "maeri", disable)
		acc, err := New(hw)
		if err != nil {
			t.Fatal(err)
		}
		_, run, err := acc.RunGEMM(gemmA, gemmB, "ffexact")
		if err != nil {
			t.Fatal(err)
		}
		files[i] = run.CounterFile()
		cycles[i] = run.Cycles
	}
	if cycles[0] != cycles[1] {
		t.Errorf("cycles diverged: ticked %d, fast-forward %d", cycles[0], cycles[1])
	}
	if files[0] != files[1] {
		t.Errorf("untraced counter files diverged:\n--- ticked ---\n%s--- fast-forward ---\n%s", files[0], files[1])
	}
}
