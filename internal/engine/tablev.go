package engine

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/dnn"
	"repro/internal/mapper"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Table V of the paper: the eleven microbenchmarks used to validate STONNE
// against the MAERI BSV, SIGMA Verilog and SCALE-Sim TPU RTL
// implementations, with the published cycle counts. This repo cannot re-run
// the RTL, so the published counts are the ground truth our engines are
// compared against (the documented substitution in DESIGN.md).
type TableVRow struct {
	Design  string
	Layer   string
	M, N, K int
	RTL     uint64 // cycles reported by the RTL implementation
	STONNE  uint64 // cycles reported by the original STONNE
}

// TableV returns the published validation rows.
func TableV() []TableVRow {
	return []TableVRow{
		{"MAERI", "MAERI-1", 6, 25, 54, 1338, 1381},
		{"MAERI", "MAERI-2", 20, 25, 180, 16120, 16081},
		{"MAERI", "MAERI-3", 6, 400, 54, 26178, 26581},
		{"SIGMA", "SIGMA-1", 64, 128, 32, 2321, 2304},
		{"SIGMA", "SIGMA-2", 256, 64, 64, 8594, 8448},
		{"SIGMA", "SIGMA-3", 256, 128, 64, 17192, 16896},
		{"SIGMA", "SIGMA-4", 128, 1, 64, 139, 138},
		{"TPU", "TPU-1", 16, 16, 32, 66, 67},
		{"TPU", "TPU-2", 16, 16, 16, 50, 51},
		{"TPU", "TPU-3", 32, 32, 16, 200, 204},
		{"TPU", "TPU-4", 64, 64, 32, 1056, 1072},
	}
}

// tableVTile is the MAERI validation tile from Section V:
// Tile(T_R=3, T_S=3, T_C=1, T_G=1, T_K=1, T_N=1, T_X'=3, T_Y'=1).
func tableVTile(folds int) mapper.Tile {
	return mapper.Tile{
		TR: 3, TS: 3, TC: 1, TG: 1, TK: 1, TN: 1, TXp: 3, TYp: 1,
		VNSize: 9, NumVNs: 3, Folds: folds, UsedMultipliers: 27,
	}
}

// maeriConvShape reconstructs the convolution behind a MAERI Table V row:
// M filters, K = 3·3·C dot-product length, N output positions of a square
// stride-1 convolution.
func maeriConvShape(row TableVRow) (tensor.ConvShape, error) {
	c := row.K / 9
	if c*9 != row.K {
		return tensor.ConvShape{}, fmt.Errorf("engine: MAERI row %s K=%d is not 3·3·C", row.Layer, row.K)
	}
	side := 1
	for side*side < row.N {
		side++
	}
	if side*side != row.N {
		return tensor.ConvShape{}, fmt.Errorf("engine: MAERI row %s N=%d is not a square output", row.Layer, row.N)
	}
	return tensor.ConvShape{
		R: 3, S: 3, C: c, G: 1, K: row.M, N: 1,
		X: side + 2, Y: side + 2, Stride: 1,
	}, nil
}

// RunTableVRow simulates one validation row on the matching architecture
// with the paper's configuration (MAERI: 32 MS / bw 4; SIGMA: 128 MS /
// bw 128; TPU: 16×16 full bandwidth) and returns the run statistics.
func RunTableVRow(row TableVRow) (*stats.Run, error) {
	rng := dnn.NewRNG(0xab1e + uint64(row.M*row.N*row.K))
	fill := func(t *tensor.Tensor) {
		d := t.Data()
		for i := range d {
			d[i] = float32(rng.Normal())
		}
	}
	switch row.Design {
	case "MAERI":
		hw := config.MAERILike(32, 4)
		hw.Preloaded = true
		acc, err := New(hw)
		if err != nil {
			return nil, err
		}
		cs, err := maeriConvShape(row)
		if err != nil {
			return nil, err
		}
		in := tensor.New(1, cs.C, cs.X, cs.Y)
		w := tensor.New(cs.K, cs.C, cs.R, cs.S)
		fill(in)
		fill(w)
		_, run, err := acc.RunConvTiled(in, w, cs, row.Layer, tableVTile(cs.C))
		return run, err
	case "SIGMA":
		hw := config.SIGMALike(128, 128)
		hw.Preloaded = true
		acc, err := New(hw)
		if err != nil {
			return nil, err
		}
		A := tensor.New(row.M, row.K)
		B := tensor.New(row.K, row.N)
		fill(A)
		fill(B)
		_, run, err := acc.RunGEMM(A, B, row.Layer)
		return run, err
	case "TPU":
		hw := config.TPULike(256) // 16×16 PE array
		hw.Preloaded = true
		acc, err := New(hw)
		if err != nil {
			return nil, err
		}
		A := tensor.New(row.M, row.K)
		B := tensor.New(row.K, row.N)
		fill(A)
		fill(B)
		_, run, err := acc.RunGEMM(A, B, row.Layer)
		return run, err
	default:
		return nil, fmt.Errorf("engine: unknown Table V design %q", row.Design)
	}
}
