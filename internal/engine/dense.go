package engine

import (
	"fmt"

	"repro/internal/comp"
	"repro/internal/comp/names"
	"repro/internal/config"
	"repro/internal/dn"
	"repro/internal/mapper"
	"repro/internal/mn"
	"repro/internal/rn"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// flexDenseRunner is the MAERI-like composition: dense controller + tree
// distribution + linear multiplier network + (accumulating) reduction tree.
type flexDenseRunner struct {
	hw config.Hardware
}

// flexRun drives the flexible pipeline: controller → DN → MN → RN, one
// Cycle() each per simulated clock, with back-pressure everywhere. The
// per-clock loop itself is the sim.Kernel; flexRun supplies the controller
// behaviour, the tick order and the completion/progress probes.
type flexRun struct {
	*sim.Ctx
	dnet dn.Network
	marr *mn.Array
	rnet *rn.Net
	src  sim.Source

	cur      *sim.WorkItem
	curDeliv int
	issued   bool // some deliveries of cur already offered
	srcDone  bool

	pending     [][]sim.JobSpec // per-VN FIFO of expected reductions
	pendingJobs int
	// readsPerDest: the Benes gather fetches one GB operand per
	// destination; tree/systolic fabrics read a multicast value once.
	readsPerDest bool

	// valBuf is the reusable product-pop scratch: the RN folds offered
	// values before returning, so one buffer serves every job every cycle.
	valBuf []float32

	// Pre-resolved controller counter handles (per-cycle path).
	cReloadWait, cDramWait comp.Counter

	fatal error

	out []float32
	// sumOut accumulates results into out (sparse controller: every
	// cluster contribution exits the RN and adds into the GB-side output);
	// otherwise results overwrite (dense: the RN accumulator already
	// folded them).
	sumOut    bool
	completed int
	expected  int
}

// flexRun consumes reduction-network results — it is the run's sim.Sink.
var _ sim.Sink = (*flexRun)(nil)

func newFlexRun(ctx *sim.Ctx, numVNs int, outLen, expected int) (*flexRun, error) {
	hw := ctx.HW
	dnet, err := dn.New(hw.DN.String(), hw.MSSize, hw.DNBandwidth, ctx.Counters)
	if err != nil {
		return nil, err
	}
	rkind := rn.ARTAcc
	switch hw.RN {
	case config.ARTRN:
		rkind = rn.ART
	case config.ARTAccRN:
		rkind = rn.ARTAcc
	case config.FANRN:
		rkind = rn.FAN
	case config.LinearRN:
		rkind = rn.Linear
	}
	f := &flexRun{
		Ctx:         ctx,
		dnet:        dnet,
		marr:        mn.NewArray(hw.MSSize, hw.FIFODepth, hw.MN == config.LinearMN, ctx.Counters),
		rnet:        rn.New(rkind, hw.MSSize, hw.RNBandwidth, ctx.Counters),
		pending:     make([][]sim.JobSpec, numVNs),
		out:         make([]float32, outLen),
		expected:    expected,
		cReloadWait: ctx.Counters.Counter(names.CtrlReloadWaitCycles),
		cDramWait:   ctx.Counters.Counter(names.CtrlDRAMWaitCycles),
	}
	f.readsPerDest = hw.DN == config.BenesDN
	f.dnet.SetSink(f.marr.Deliver)
	f.dnet.SetProber(f.marr.CanDeliver)
	f.rnet.SetSink(f.Consume)
	return f, nil
}

// Consume scatters one reduced result into the output buffer and accounts
// the Global Buffer write-back (sim.Sink).
func (f *flexRun) Consume(r rn.Result) {
	f.GB.Write(1)
	if f.sumOut {
		f.out[r.OutIdx] += r.Value
		f.completed++
		return
	}
	if f.rnet.HasAccumulator() {
		f.out[r.OutIdx] = r.Value
		f.completed++
		return
	}
	// Without accumulators every fold's partial sum leaves through the
	// output ports; the controller re-reads it for the next fold.
	f.out[r.OutIdx] += r.Value
	if r.Last {
		f.completed++
	} else {
		f.GB.Read(1) // psum re-fetch for the next fold
	}
}

// configureVNs programs the VN membership (Configuration Unit signals).
func (f *flexRun) configureVNs(vns [][]int) error {
	if len(vns) != len(f.pending) {
		return fmt.Errorf("engine: VN count %d does not match job table %d", len(vns), len(f.pending))
	}
	return f.marr.ConfigureVNs(vns)
}

// ctrlCycle is the memory controller's per-clock behaviour: fire ready
// reductions, then issue as much of the schedule as the DN accepts.
func (f *flexRun) ctrlCycle() {
	// 1. Fire ready virtual neurons into the reduction network.
	for vn := range f.pending {
		q := f.pending[vn]
		if len(q) == 0 {
			continue
		}
		j := q[0]
		var ready bool
		if j.Members != nil {
			ready = f.marr.ReadyMembers(j.Members, j.Seq, j.Expect)
		} else {
			ready = f.marr.ReadyVN(vn, j.Seq, j.Expect)
		}
		if !ready || !f.rnet.CanAccept(j.Expect) {
			continue
		}
		members := j.Members
		if members == nil {
			members = f.marr.VNs()[vn]
		}
		// The RN folds Values before Offer returns, so the scratch buffer is
		// free to reuse for the next VN in the same cycle.
		f.valBuf, _ = f.marr.AppendPop(f.valBuf[:0], members, j.Seq)
		f.rnet.Offer(rn.Job{VN: vn, Seq: j.Seq, Values: f.valBuf, OutIdx: j.OutIdx, Last: j.Last})
		// Copy-down pop keeps the per-VN queue's backing array.
		nq := copy(q, q[1:])
		f.pending[vn] = q[:nq]
		f.pendingJobs--
	}

	// 2. Issue schedule items.
	for {
		if f.cur == nil {
			item, ok := f.src.Next()
			if !ok {
				f.srcDone = true
				return
			}
			f.cur = &item
			f.curDeliv = 0
			f.issued = false
		}
		if f.cur.Barrier && !f.issued {
			if f.dnet.Pending() > 0 || !f.marr.QuiescentSet(f.cur.ReloadSet) {
				f.cReloadWait.Add(1)
				return
			}
			if f.cur.Reconfig != nil && (f.pendingJobs > 0 || !f.marr.Idle()) {
				f.cReloadWait.Add(1)
				return
			}
			if stall := f.DRAM.StallCycles(float64(f.Cycles)); stall > 0 {
				f.cDramWait.Add(1)
				return
			}
			if f.cur.Reconfig != nil {
				if err := f.cur.Reconfig(); err != nil {
					f.fatal = err
					return
				}
				f.cur.Reconfig = nil
			}
		}
		if f.cur.Prefetch > 0 && !f.issued {
			f.DRAM.BeginPrefetch(float64(f.Cycles), f.cur.Prefetch)
		}
		for f.curDeliv < len(f.cur.Deliveries) {
			d := f.cur.Deliveries[f.curDeliv]
			if !f.dnet.Offer(d) {
				f.issued = true
				return // DN injection queue full; resume next cycle
			}
			if !d.Forward {
				if f.readsPerDest {
					f.GB.Read(len(d.Dests))
				} else {
					f.GB.Read(1)
				}
			}
			f.curDeliv++
			f.issued = true
		}
		for _, j := range f.cur.Jobs {
			//lint:ignore hotpathalloc one append per job at work-item hand-off (amortized), and retireJobs pops by re-slicing so the backing array is reused at steady state
			f.pending[j.VN] = append(f.pending[j.VN], j)
			f.pendingJobs++
		}
		f.cur = nil
	}
}

// lookahead is the controller's fast-forward bound (sim.Kernel.Lookahead).
// It certifies the two controller steady states in which ctrlCycle's effect
// over the next n cycles is a closed form advance can replay:
//
//   - Barrier DRAM stall: the head work item is a quiesced barrier gated
//     only by the in-flight prefetch. Part 1 scans empty job queues (pure,
//     pendingJobs == 0), part 2 re-checks the quiescence conditions (pure,
//     nothing in flight changes them while the fabric is idle) and hits the
//     DRAM stall — each ticked cycle is exactly cDramWait.Add(1) plus one
//     dram.stall_events count. StallLookahead bounds how many consecutive
//     cycles stay stalled. The Reconfig arm re-checks marr.Idle here so the
//     claim is self-contained rather than leaning on the MN's own bound.
//
//   - Exhausted source: srcDone with no held item and no pending jobs.
//     Part 1 scans empty queues and part 2 re-polls the exhausted source
//     (sources' exhausted path is pure), so ctrlCycle is a no-op for any
//     horizon — the run is draining through the fabric components, whose
//     own bounds then limit the skip.
//
// Anything else — live deliveries, partially issued items, jobs awaiting
// fire — must tick.
func (f *flexRun) lookahead() uint64 {
	if f.fatal != nil || f.pendingJobs != 0 {
		return 0
	}
	if f.cur == nil {
		if f.srcDone {
			return sim.Unbounded
		}
		return 0
	}
	if !f.cur.Barrier || f.issued {
		return 0
	}
	if f.dnet.Pending() > 0 || !f.marr.QuiescentSet(f.cur.ReloadSet) {
		return 0
	}
	if f.cur.Reconfig != nil && !f.marr.Idle() {
		return 0
	}
	return f.DRAM.StallLookahead(f.Cycles)
}

// advance replays n skipped controller cycles (sim.Kernel.Advance). In the
// barrier-stall steady state each ticked cycle would have counted one
// dram-wait cycle and one DRAM stall event; in the exhausted-source state a
// ticked cycle touches nothing.
func (f *flexRun) advance(n uint64) {
	if f.cur == nil {
		return
	}
	f.cDramWait.Add(n)
	f.DRAM.AdvanceStall(n)
}

func (f *flexRun) done() bool {
	return f.srcDone && f.cur == nil && f.pendingJobs == 0 &&
		f.completed >= f.expected &&
		f.dnet.Pending() == 0 && f.rnet.Drained() && f.marr.Idle()
}

// deadlock renders the watchdog diagnostic with the run's stuck state.
func (f *flexRun) deadlock(window uint64) error {
	return fmt.Errorf("engine: no progress for %d cycles (completed %d/%d, pending jobs %d, dn pending %d)",
		window, f.completed, f.expected, f.pendingJobs, f.dnet.Pending())
}

// run executes the cycle kernel to completion: the controller acts, then
// DN → MN → RN tick in pipeline order.
func (f *flexRun) run() error {
	k := &sim.Kernel{
		Ctx:       f.Ctx,
		Control:   f.ctrlCycle,
		Ticks:     []sim.Tickable{f.dnet, f.marr, f.rnet},
		Done:      f.done,
		Progress:  func() int { return f.completed },
		Waiting:   func() uint64 { return f.cDramWait.Value() },
		Err:       func() error { return f.fatal },
		Draining:  func() bool { return f.srcDone && f.cur == nil },
		Deadlock:  f.deadlock,
		Lookahead: f.lookahead,
		Advance:   f.advance,
	}
	if err := k.Run(); err != nil {
		return err
	}
	f.marr.CollectFIFOStats()
	return nil
}

// ---------------------------------------------------------------------------
// GEMM scheduler
// ---------------------------------------------------------------------------

// gemmSource emits the schedule for a dense M×N×K GEMM on the flexible
// fabric: for each row block, column panel and fold — a weight load
// followed by one compute step per column group.
type gemmSource struct {
	A, B    *tensor.Tensor
	m, n, k int
	t       mapper.GEMMTile

	panelCols int // columns per panel (accumulation-buffer bound)

	mblocks, panels, groupsPerPanel int

	// iteration state
	mb, panel, fold, ng int
	phase               int // 0 = weight load, 1 = stream
	seq                 int
	exhausted           bool
}

var _ sim.Source = (*gemmSource)(nil)

func newGEMMSource(A, B *tensor.Tensor, t mapper.GEMMTile) *gemmSource {
	m, k := A.Dim(0), A.Dim(1)
	n := B.Dim(1)
	g := &gemmSource{A: A, B: B, m: m, n: n, k: k, t: t}
	g.panelCols = sim.MaxAccEntries / t.TM
	if g.panelCols < t.TN {
		g.panelCols = t.TN
	}
	g.panelCols -= g.panelCols % t.TN
	if g.panelCols > n {
		g.panelCols = n
	}
	g.mblocks = ceilDiv(m, t.TM)
	g.panels = ceilDiv(n, g.panelCols)
	g.groupsPerPanel = ceilDiv(g.panelCols, t.TN)
	return g
}

// expectedOutputs is the number of C elements the schedule will produce.
func (g *gemmSource) expectedOutputs() int { return g.m * g.n }

// vns returns the VN membership: VN (i,j) = i·TN + j occupies KSlice
// consecutive switches.
func (g *gemmSource) vns() [][]int {
	vns := make([][]int, g.t.TM*g.t.TN)
	for v := range vns {
		members := make([]int, g.t.KSlice)
		for p := range members {
			members[p] = v*g.t.KSlice + p
		}
		vns[v] = members
	}
	return vns
}

func (g *gemmSource) ms(i, j, p int) int { return (i*g.t.TN+j)*g.t.KSlice + p }

// Next builds the next work item of the GEMM schedule. Building an item
// allocates its delivery lists, but an item then occupies the fabric for
// many cycles while the source sits idle, so the cost is amortized per
// work item rather than paid per tick.
//
//lint:ignore hotpathalloc work-item construction is amortized over the many cycles the item occupies the fabric
func (g *gemmSource) Next() (sim.WorkItem, bool) {
	if g.exhausted {
		return sim.WorkItem{}, false
	}
	t := g.t
	k0 := g.fold * t.KSlice
	kw := min(t.KSlice, g.k-k0)

	if g.phase == 0 {
		// Weight load for (mb, fold): row slices A[mi, k0:k0+kw],
		// multicast across the TN column replicas.
		item := sim.WorkItem{Barrier: true}
		for i := 0; i < t.TM; i++ {
			mi := g.mb*t.TM + i
			if mi >= g.m {
				continue
			}
			for p := 0; p < kw; p++ {
				dests := make([]int, 0, t.TN)
				for j := 0; j < t.TN; j++ {
					dests = append(dests, g.ms(i, j, p))
				}
				item.ReloadSet = append(item.ReloadSet, dests...)
				item.Deliveries = append(item.Deliveries, dn.Delivery{
					Pkt:   comp.Packet{Value: g.A.At(mi, k0+p), Kind: comp.WeightPkt},
					Dests: dests,
				})
			}
		}
		// Prefetch the next fold's weights while this fold computes.
		item.Prefetch = t.TM * t.KSlice
		g.phase = 1
		g.ng = 0
		return item, true
	}

	// Stream one column group.
	colBase := g.panel*g.panelCols + g.ng*t.TN
	item := sim.WorkItem{}
	seq := g.seq
	g.seq++
	for j := 0; j < t.TN; j++ {
		nj := colBase + j
		if nj >= g.n || nj >= (g.panel+1)*g.panelCols {
			continue
		}
		for p := 0; p < kw; p++ {
			dests := make([]int, 0, t.TM)
			for i := 0; i < t.TM; i++ {
				if g.mb*t.TM+i >= g.m {
					continue
				}
				dests = append(dests, g.ms(i, j, p))
			}
			if len(dests) == 0 {
				continue
			}
			item.Deliveries = append(item.Deliveries, dn.Delivery{
				Pkt:   comp.Packet{Value: g.B.At(k0+p, nj), Kind: comp.InputPkt, Seq: seq},
				Dests: dests,
			})
		}
		for i := 0; i < t.TM; i++ {
			mi := g.mb*t.TM + i
			if mi >= g.m {
				continue
			}
			item.Jobs = append(item.Jobs, sim.JobSpec{
				VN: i*t.TN + j, Seq: seq, Expect: kw,
				OutIdx: mi*g.n + nj,
				Last:   g.fold == ceilDiv(g.k, t.KSlice)-1,
			})
		}
	}

	// Advance iteration: ng → fold → panel → mb.
	g.ng++
	if g.ng >= g.groupsPerPanel || g.panel*g.panelCols+g.ng*t.TN >= g.n {
		g.ng = 0
		g.fold++
		g.phase = 0
		if g.fold >= ceilDiv(g.k, t.KSlice) {
			g.fold = 0
			g.panel++
			if g.panel >= g.panels {
				g.panel = 0
				g.mb++
				if g.mb >= g.mblocks {
					g.exhausted = true
				}
			}
		}
	}
	return item, true
}

// RunGEMM simulates a dense GEMM on the tree-based flexible fabric (the
// MAERI-like composition). The controller keeps the operand with more reuse
// stationary: A rows are each reused N times and B columns M times, so when
// M > N the GEMM runs transposed (Cᵀ = Bᵀ×Aᵀ), making the execution
// input-stationary — this is how batch-1 fully-connected layers avoid a
// stationary reload per output row (the dense controller's WS/IS dataflow
// selection of Section IV-B). Configurations with ForceDataflow pin the
// choice instead.
func (r *flexDenseRunner) RunGEMM(A, B *tensor.Tensor, layer string) (*tensor.Tensor, *stats.Run, error) {
	inputStationary := A.Dim(0) > B.Dim(1)
	if r.hw.ForceDataflow {
		inputStationary = r.hw.Dataflow == config.InputStationary
	}
	if inputStationary {
		Ct, run, err := r.gemmWS(transposed(B), transposed(A), layer)
		if err != nil {
			return nil, nil, err
		}
		return transposed(Ct), run, nil
	}
	return r.gemmWS(A, B, layer)
}

func transposed(t *tensor.Tensor) *tensor.Tensor {
	r, c := t.Dim(0), t.Dim(1)
	out := tensor.New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.Set(t.At(i, j), j, i)
		}
	}
	return out
}

// gemmWS is the weight-stationary execution: A row slices stay in the
// switches while B columns stream.
func (r *flexDenseRunner) gemmWS(A, B *tensor.Tensor, layer string) (*tensor.Tensor, *stats.Run, error) {
	m, k := A.Dim(0), A.Dim(1)
	n := B.Dim(1)
	tile, err := mapper.PickGEMM(&r.hw, m, n, k)
	if err != nil {
		return nil, nil, err
	}
	ctx := sim.NewCtx(&r.hw)
	src := newGEMMSource(A, B, tile)
	f, err := newFlexRun(ctx, tile.TM*tile.TN, m*n, src.expectedOutputs())
	if err != nil {
		return nil, nil, err
	}
	if err := f.configureVNs(src.vns()); err != nil {
		return nil, nil, err
	}
	f.src = src
	ctx.InitialFill(m*k + k*n)
	if err := f.run(); err != nil {
		return nil, nil, fmt.Errorf("engine: %s GEMM %s (%dx%dx%d): %w", r.hw.Name, layer, m, n, k, err)
	}
	ctx.DRAM.WriteBack(m * n)
	C, err := tensor.FromSlice(f.out, m, n)
	if err != nil {
		return nil, nil, err
	}
	run := ctx.Finish("GEMM", layer, m, n, k)
	return C, run, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
