package engine

import (
	"fmt"

	"repro/internal/comp"
	"repro/internal/comp/names"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// systolicRunner is the TPU-like composition (dense controller + PoPN +
// LMN + LRN): an output-stationary systolic array. A operands enter skewed
// from the west and travel east, B operands enter skewed from the north and
// travel south, and each processing element accumulates its C element in
// place. The simulation shifts the physical registers cycle by cycle, so
// the result is computed by the modelled datapath itself.
type systolicRunner struct {
	hw config.Hardware
}

// Per-tile latency calibration: streaming K operands through a P×P array
// takes K + 2(P-1) + 1 cycles from first injection to last MAC; the
// output drain through the linear reduction chain overlaps column-parallel
// and adds a constant 4 cycles, matching the counts STONNE reports for the
// Table V TPU microbenchmarks (67/51 cycles for 16×16 tiles at K=32/16).
const systolicDrainCycles = 4

type systolicArray struct {
	*sim.Ctx
	p          int
	a, b, acc  []float32
	aNxt, bNxt []float32

	// Pre-resolved counter handles: injections run per edge element per
	// cycle, the rest once per tile.
	cLinkTrav, cInjections           comp.Counter
	cMults, cAdders, cFwds, cOutputs comp.Counter
}

func newSystolicArray(ctx *sim.Ctx) (*systolicArray, error) {
	p := isqrt(ctx.HW.MSSize)
	if p*p != ctx.HW.MSSize {
		return nil, fmt.Errorf("engine: systolic array needs a square PE count, got %d", ctx.HW.MSSize)
	}
	if ctx.HW.DNBandwidth < 2*p {
		return nil, fmt.Errorf("engine: systolic array requires full edge bandwidth (%d), configured %d",
			2*p, ctx.HW.DNBandwidth)
	}
	n := p * p
	return &systolicArray{
		Ctx: ctx,
		p:   p,
		a:   make([]float32, n), b: make([]float32, n), acc: make([]float32, n),
		aNxt: make([]float32, n), bNxt: make([]float32, n),
		cLinkTrav:   ctx.Counters.Counter(names.DNLinkTraversals),
		cInjections: ctx.Counters.Counter(names.DNInjections),
		cMults:      ctx.Counters.Counter(names.MNMults),
		cAdders:     ctx.Counters.Counter(names.RNAddersLRN),
		cFwds:       ctx.Counters.Counter(names.MNForwards),
		cOutputs:    ctx.Counters.Counter(names.RNOutputs),
	}, nil
}

// runTile streams one (P rows × P cols × K) tile and scatters the partial
// results into C (row-major m×n), accumulating across K panels.
func (s *systolicArray) runTile(A, B *tensor.Tensor, C []float32, m, n, k, mi0, nj0, k0, kw int) {
	p := s.p
	for i := range s.acc {
		s.acc[i], s.a[i], s.b[i] = 0, 0, 0
	}
	ad, bd := A.Data(), B.Data()
	streamLen := kw + 2*(p-1) + 1
	var mults, fwds uint64
	for t := 0; t < streamLen; t++ {
		// Shift: west→east for A, north→south for B, then inject edges.
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				idx := i*p + j
				if j > 0 {
					s.aNxt[idx] = s.a[idx-1]
				} else {
					var v float32
					kk := t - i
					mi := mi0 + i
					if kk >= 0 && kk < kw && mi < m {
						v = ad[mi*k+k0+kk]
						s.GB.Read(1)
						s.cLinkTrav.Add(1)
						s.cInjections.Add(1)
					}
					s.aNxt[idx] = v
				}
				if i > 0 {
					s.bNxt[idx] = s.b[idx-p]
				} else {
					var v float32
					kk := t - j
					nj := nj0 + j
					if kk >= 0 && kk < kw && nj < n {
						v = bd[(k0+kk)*n+nj]
						s.GB.Read(1)
						s.cLinkTrav.Add(1)
						s.cInjections.Add(1)
					}
					s.bNxt[idx] = v
				}
			}
		}
		s.a, s.aNxt = s.aNxt, s.a
		s.b, s.bNxt = s.bNxt, s.b
		// MAC: every PE inside its active window fires. Only PEs mapped to
		// valid output elements toggle their datapath (energy); padded
		// positions stream zeros and spend the cycles but not the events.
		for i := 0; i < p; i++ {
			if mi0+i >= m {
				break
			}
			for j := 0; j < p; j++ {
				if nj0+j >= n {
					break
				}
				kk := t - i - j
				if kk < 0 || kk >= kw {
					continue
				}
				idx := i*p + j
				s.acc[idx] += s.a[idx] * s.b[idx]
				mults++
				fwds += 2 // operand pass-through to east and south neighbours
			}
		}
	}
	s.Cycles += uint64(streamLen + systolicDrainCycles)
	if s.Rec != nil {
		// Bulk attribution for the rigid pipeline: the whole fabric works
		// for the tile's stream phase and flushes during the fixed drain;
		// the memory tier also serves the drain's output write-back.
		for _, tier := range []int{trace.TierDN, trace.TierMN, trace.TierRN} {
			s.Rec.AddSpan(tier, trace.Busy, uint64(streamLen))
			s.Rec.AddSpan(tier, trace.Drain, systolicDrainCycles)
		}
		s.Rec.AddSpan(trace.TierMem, trace.Busy, uint64(streamLen+systolicDrainCycles))
	}
	s.cMults.Add(mults)
	s.cAdders.Add(mults) // in-place accumulation chain (LRN)
	s.cFwds.Add(fwds)

	// Drain valid outputs into C.
	for i := 0; i < p; i++ {
		mi := mi0 + i
		if mi >= m {
			break
		}
		for j := 0; j < p; j++ {
			nj := nj0 + j
			if nj >= n {
				break
			}
			C[mi*n+nj] += s.acc[i*p+j]
			s.GB.Write(1)
			s.cOutputs.Add(1)
		}
	}
}

// RunGEMM tiles an M×N×K GEMM over the array; tiles execute back-to-back
// (the rigid pipeline cannot overlap tile boundaries, which is precisely
// the behaviour the RTL validation shows).
func (r *systolicRunner) RunGEMM(A, B *tensor.Tensor, layer string) (*tensor.Tensor, *stats.Run, error) {
	ctx := sim.NewCtx(&r.hw)
	arr, err := newSystolicArray(ctx)
	if err != nil {
		return nil, nil, err
	}
	m, k := A.Dim(0), A.Dim(1)
	n := B.Dim(1)
	C := make([]float32, m*n)
	p := arr.p
	// The GB working set per K panel must fit; panels larger than the
	// buffer are split (K folding with in-C accumulation).
	kPanel := k
	if maxK := ctx.GB.CapacityElems() / (4 * p); kPanel > maxK && maxK > 0 {
		kPanel = maxK
	}
	ctx.InitialFill(min(m*k+k*n, ctx.GB.CapacityElems()/2))
	for k0 := 0; k0 < k; k0 += kPanel {
		kw := min(kPanel, k-k0)
		for mi0 := 0; mi0 < m; mi0 += p {
			for nj0 := 0; nj0 < n; nj0 += p {
				arr.runTile(A, B, C, m, n, k, mi0, nj0, k0, kw)
			}
		}
	}
	ctx.DRAM.WriteBack(m * n)
	out, err := tensor.FromSlice(C, m, n)
	if err != nil {
		return nil, nil, err
	}
	return out, ctx.Finish("GEMM", layer, m, n, k), nil
}

// RunConv lowers the convolution to GEMM with im2col — how rigid systolic
// designs execute convolutions — and reshapes the result.
func (r *systolicRunner) RunConv(in, w *tensor.Tensor, cs tensor.ConvShape, layer string) (*tensor.Tensor, *stats.Run, error) {
	ctx := sim.NewCtx(&r.hw)
	arr, err := newSystolicArray(ctx)
	if err != nil {
		return nil, nil, err
	}
	xo, yo := cs.OutX(), cs.OutY()
	out := tensor.New(cs.N, cs.K, xo, yo)
	kg := cs.K / cs.G
	p := arr.p
	gm, gn, gk := cs.GEMMDims()
	ctx.InitialFill(min(in.Len()+w.Len(), ctx.GB.CapacityElems()/2))
	for g := 0; g < cs.G; g++ {
		cols, err := tensor.Im2Col(in, cs, g)
		if err != nil {
			return nil, nil, err
		}
		fm, err := tensor.FilterMatrix(w, cs, g)
		if err != nil {
			return nil, nil, err
		}
		m, k := fm.Dim(0), fm.Dim(1)
		n := cols.Dim(1)
		C := make([]float32, m*n)
		kPanel := k
		if maxK := ctx.GB.CapacityElems() / (4 * p); kPanel > maxK && maxK > 0 {
			kPanel = maxK
		}
		for k0 := 0; k0 < k; k0 += kPanel {
			kw := min(kPanel, k-k0)
			for mi0 := 0; mi0 < m; mi0 += p {
				for nj0 := 0; nj0 < n; nj0 += p {
					arr.runTile(fm, cols, C, m, n, k, mi0, nj0, k0, kw)
				}
			}
		}
		nc := xo * yo
		for kf := 0; kf < kg; kf++ {
			kk := g*kg + kf
			for b := 0; b < cs.N; b++ {
				for pix := 0; pix < nc; pix++ {
					out.Set(C[kf*n+b*nc+pix], b, kk, pix/yo, pix%yo)
				}
			}
		}
	}
	ctx.DRAM.WriteBack(cs.K * xo * yo)
	return out, ctx.Finish("CONV", layer, gm, gn, gk), nil
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
