package engine

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// The attribution invariant the whole observability layer rests on: a
// traced run classifies every simulated cycle into exactly one class per
// tier, so each tier's breakdown sums to Run.Cycles exactly — across every
// registered architecture, both operations, and with the initial-fill
// phase included (Preloaded=false for the kernel architectures).
func TestBreakdownSumsToCyclesAllArchs(t *testing.T) {
	cs := tensor.ConvShape{R: 3, S: 3, C: 4, G: 1, K: 4, N: 1, X: 8, Y: 8, Stride: 1, Padding: 1}
	gemmA := randTensor(0x11, 6, 8)
	gemmB := randTensor(0x22, 8, 5)
	convIn := randTensor(0x33, 1, 4, 8, 8)
	convW := randTensor(0x44, 4, 4, 3, 3)

	for _, arch := range sim.List() {
		for _, preloaded := range []bool{true, false} {
			hw := arch.Preset(64, 16)
			hw.Preloaded = preloaded
			hw.Trace = &trace.Config{SpanInterval: 64}
			acc, err := New(hw)
			if err != nil {
				t.Fatalf("%s: %v", arch.Name, err)
			}
			for _, op := range []string{"gemm", "conv"} {
				var run *stats.Run
				if op == "gemm" {
					_, run, err = acc.RunGEMM(gemmA, gemmB, "trace")
				} else {
					_, run, err = acc.RunConv(convIn, convW, cs, "trace")
				}
				if err != nil {
					t.Fatalf("%s %s: %v", arch.Name, op, err)
				}
				if len(run.Breakdown) != trace.NumTiers {
					t.Fatalf("%s %s: breakdown has %d tiers, want %d: %v",
						arch.Name, op, len(run.Breakdown), trace.NumTiers, run.Breakdown)
				}
				for _, tier := range trace.TierNames {
					b, ok := run.Breakdown[tier]
					if !ok {
						t.Fatalf("%s %s: tier %s missing", arch.Name, op, tier)
					}
					if got := b.Total(); got != run.Cycles {
						t.Errorf("%s %s preloaded=%v: tier %s sums to %d, run has %d cycles (%+v)",
							arch.Name, op, preloaded, tier, got, run.Cycles, b)
					}
				}
			}
		}
	}
}

// An untraced run must not grow a breakdown or extra counters — that is
// what keeps the parity goldens byte-identical.
func TestUntracedRunHasNoBreakdown(t *testing.T) {
	hw, err := sim.PresetHW("maeri", 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	hw.Preloaded = true
	acc, err := New(hw)
	if err != nil {
		t.Fatal(err)
	}
	_, run, err := acc.RunGEMM(randTensor(0x11, 6, 8), randTensor(0x22, 8, 5), "plain")
	if err != nil {
		t.Fatal(err)
	}
	if run.Breakdown != nil {
		t.Errorf("untraced run carries a breakdown: %v", run.Breakdown)
	}
	for k := range run.Counters {
		if len(k) >= 6 && k[:6] == "trace." {
			t.Errorf("untraced run leaked counter %q", k)
		}
	}
}

// A traced run's OnComplete trace must serialize into valid Chrome
// trace_event JSON whose span durations per tier never exceed the cycle
// count.
func TestTracedRunEmitsValidChromeTrace(t *testing.T) {
	hw, err := sim.PresetHW("maeri", 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	hw.Preloaded = true
	var got *trace.RunTrace
	hw.Trace = &trace.Config{Label: "unit", SpanInterval: 32, OnComplete: func(rt *trace.RunTrace) { got = rt }}
	acc, err := New(hw)
	if err != nil {
		t.Fatal(err)
	}
	_, run, err := acc.RunGEMM(randTensor(0x11, 6, 8), randTensor(0x22, 8, 5), "chrome")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("OnComplete was not invoked")
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, []*trace.RunTrace{got}); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Tid  int    `json:"tid"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, buf.String())
	}
	spanEnd := map[int]uint64{}
	spans := 0
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
		case "X":
			spans++
			if end := ev.Ts + ev.Dur; end > spanEnd[ev.Tid] {
				spanEnd[ev.Tid] = end
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if spans == 0 {
		t.Fatal("trace has no span events")
	}
	for tid, end := range spanEnd {
		if end > run.Cycles {
			t.Errorf("track %d spans reach cycle %d, run has only %d", tid, end, run.Cycles)
		}
	}
}
