package engine

import (
	"repro/internal/config"
	"repro/internal/sim"
)

// The four compositions of Table IV register themselves with the
// architecture registry. Order matters only for Resolve ties: the systolic
// composition (dense controller + point-to-point DN) registers before the
// broader flexible dense match. Adding a fifth architecture is adding one
// sim.Register call here plus its runner file — nothing above the engine
// changes.
func init() {
	sim.Register(sim.Arch{
		Name:        "tpu",
		Title:       "TPU-systolic",
		Description: "rigid output-stationary systolic array (dense ctrl + PoPN + LMN + LRN)",
		Matches: func(hw config.Hardware) bool {
			return hw.Ctrl == config.DenseCtrl && hw.DN == config.PointToPointDN
		},
		Preset: func(ms, _ int) config.Hardware { return config.TPULike(ms) },
		Build: func(hw config.Hardware) (sim.Runner, error) {
			return &systolicRunner{hw: hw}, nil
		},
		// The systolic array accumulates each output strictly in k order
		// (within and across K panels), exactly like the reference GEMM.
		Contract: sim.NumericContract{ExactSum: true},
	})
	sim.Register(sim.Arch{
		Name:        "maeri",
		Title:       "MAERI-flex-dense",
		Description: "flexible dense tree fabric (dense ctrl + TN + LMN + ART+ACC)",
		Matches: func(hw config.Hardware) bool {
			return hw.Ctrl == config.DenseCtrl && hw.DN != config.PointToPointDN
		},
		Preset: config.MAERILike,
		Build: func(hw config.Hardware) (sim.Runner, error) {
			return &flexDenseRunner{hw: hw}, nil
		},
		// The ART reduces each virtual neuron as a tree and folds channel
		// slices through the accumulation buffer — a reordered sum.
		Contract: sim.NumericContract{RelTol: 1e-5},
	})
	sim.Register(sim.Arch{
		Name:        "sigma",
		Title:       "SIGMA-sparse",
		Description: "flexible sparse fabric (sparse ctrl + BN + DMN + FAN)",
		Matches:     func(hw config.Hardware) bool { return hw.Ctrl == config.SparseCtrl },
		Preset:      config.SIGMALike,
		Build: func(hw config.Hardware) (sim.Runner, error) {
			return &sparseRunner{hw: hw}, nil
		},
		// FAN cluster reductions plus Global-Buffer-side accumulation
		// across rounds reorder the sum per output element.
		Contract: sim.NumericContract{RelTol: 1e-5},
	})
	sim.Register(sim.Arch{
		Name:        "snapea",
		Title:       "SNAPEA",
		Description: "dot-product lanes with sign-sorted early termination (use case 2)",
		Matches:     func(hw config.Hardware) bool { return hw.Ctrl == config.SNAPEACtrl },
		Preset:      config.SNAPEALike,
		Build: func(hw config.Hardware) (sim.Runner, error) {
			return &snapeaRunner{hw: hw}, nil
		},
		// Convolutions accumulate in sign-sorted weight order and the early
		// cut leaves negative outputs undefined below zero; GEMMs run the
		// lanes in reference order but share the conv tolerance for safety.
		Contract: sim.NumericContract{RelTol: 1e-5, PostActivationConv: true},
	})
}
