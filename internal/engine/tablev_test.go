package engine

import (
	"math"
	"testing"
)

// TestTableVErrors pins the per-row error of our engines against the
// published RTL cycle counts. The bounds encode the current calibration
// (recorded in EXPERIMENTS.md); a regression that loosens any row fails.
func TestTableVErrors(t *testing.T) {
	maxErr := map[string]float64{
		"MAERI-1": 0.10,
		"MAERI-2": 0.15,
		"MAERI-3": 0.35, // known outlier, see EXPERIMENTS.md
		"SIGMA-1": 0.15,
		"SIGMA-2": 0.05,
		"SIGMA-3": 0.05,
		"SIGMA-4": 0.05,
		"TPU-1":   0.03,
		"TPU-2":   0.03,
		"TPU-3":   0.03,
		"TPU-4":   0.03,
	}
	var sumAbs float64
	for _, row := range TableV() {
		run, err := RunTableVRow(row)
		if err != nil {
			t.Fatalf("%s: %v", row.Layer, err)
		}
		e := math.Abs(float64(run.Cycles)-float64(row.RTL)) / float64(row.RTL)
		sumAbs += e
		if e > maxErr[row.Layer] {
			t.Errorf("%s: %d cycles vs RTL %d — error %.1f%% exceeds bound %.0f%%",
				row.Layer, run.Cycles, row.RTL, 100*e, 100*maxErr[row.Layer])
		}
	}
	if avg := sumAbs / float64(len(TableV())); avg > 0.10 {
		t.Errorf("average |error| %.1f%% exceeds 10%%", 100*avg)
	}
}
