package engine

import (
	"testing"

	"repro/internal/comp"
	"repro/internal/config"
	"repro/internal/dnn"
	"repro/internal/mapper"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// drainSource exhausts a sim.Source and returns all items.
func drainSource(t *testing.T, src sim.Source, max int) []sim.WorkItem {
	t.Helper()
	var items []sim.WorkItem
	for i := 0; i < max; i++ {
		item, ok := src.Next()
		if !ok {
			return items
		}
		items = append(items, item)
	}
	t.Fatalf("source did not exhaust within %d items", max)
	return nil
}

// checkScheduleInvariants verifies the generated schedule is well formed:
// every output index receives exactly one Last job, job expectations are
// positive, and every delivery has at least one destination.
func checkScheduleInvariants(t *testing.T, items []sim.WorkItem, wantOutputs int) {
	t.Helper()
	lastSeen := map[int]int{}
	for ii, item := range items {
		for _, d := range item.Deliveries {
			if len(d.Dests) == 0 {
				t.Fatalf("item %d: delivery with no destinations", ii)
			}
		}
		for _, j := range item.Jobs {
			if j.Expect <= 0 {
				t.Fatalf("item %d: job with expect %d", ii, j.Expect)
			}
			if j.Last {
				lastSeen[j.OutIdx]++
			}
		}
	}
	if len(lastSeen) != wantOutputs {
		t.Fatalf("%d outputs receive a Last job, want %d", len(lastSeen), wantOutputs)
	}
	for idx, n := range lastSeen {
		if n != 1 {
			t.Fatalf("output %d finalized %d times", idx, n)
		}
	}
}

func randTensor(seed uint64, shape ...int) *tensor.Tensor {
	rng := dnn.NewRNG(seed)
	t := tensor.New(shape...)
	for i, d := 0, t.Data(); i < len(d); i++ {
		d[i] = float32(rng.Normal())
	}
	return t
}

func TestGEMMSourceScheduleInvariants(t *testing.T) {
	hw := config.MAERILike(64, 16)
	for _, dims := range [][3]int{{4, 4, 4}, {10, 3, 130}, {1, 1, 1}, {7, 20, 64}} {
		m, n, k := dims[0], dims[1], dims[2]
		A := randTensor(1, m, k)
		B := randTensor(2, k, n)
		tile, err := mapper.PickGEMM(&hw, m, n, k)
		if err != nil {
			t.Fatal(err)
		}
		src := newGEMMSource(A, B, tile)
		items := drainSource(t, src, 1_000_000)
		checkScheduleInvariants(t, items, m*n)

		// Weight items are barriers; stream items are not.
		for _, item := range items {
			hasWeights := false
			for _, d := range item.Deliveries {
				if d.Pkt.Kind == comp.WeightPkt {
					hasWeights = true
				}
			}
			if hasWeights != item.Barrier {
				t.Fatalf("dims %v: weight/barrier mismatch", dims)
			}
		}
	}
}

func TestConvSourceScheduleInvariants(t *testing.T) {
	hw := config.MAERILike(64, 16)
	cases := []tensor.ConvShape{
		{R: 3, S: 3, C: 4, G: 1, K: 6, N: 1, X: 8, Y: 8, Stride: 1, Padding: 1},
		{R: 1, S: 1, C: 16, G: 1, K: 3, N: 1, X: 5, Y: 5, Stride: 1},
		{R: 3, S: 3, C: 4, G: 4, K: 4, N: 1, X: 6, Y: 6, Stride: 1, Padding: 1},
		{R: 5, S: 5, C: 2, G: 1, K: 2, N: 1, X: 9, Y: 9, Stride: 2, Padding: 2},
	}
	for _, cs := range cases {
		in := randTensor(3, 1, cs.C, cs.X, cs.Y)
		w := randTensor(4, cs.K, cs.C/cs.G, cs.R, cs.S)
		tile, err := mapper.PickConv(&hw, cs)
		if err != nil {
			t.Fatal(err)
		}
		src := newConvSource(in, w, cs, tile, true)
		items := drainSource(t, src, 1_000_000)
		checkScheduleInvariants(t, items, cs.K*cs.OutX()*cs.OutY())
		if src.expectedOutputs() != cs.K*cs.OutX()*cs.OutY() {
			t.Fatalf("%+v: expectedOutputs %d", cs, src.expectedOutputs())
		}
	}
}

func TestConvSourceForwardingOnlyWithinRows(t *testing.T) {
	cs := tensor.ConvShape{R: 3, S: 3, C: 1, G: 1, K: 1, N: 1, X: 8, Y: 8, Stride: 1}
	hw := config.MAERILike(32, 8)
	in := randTensor(5, 1, 1, 8, 8)
	w := randTensor(6, 1, 1, 3, 3)
	tile, err := mapper.PickConv(&hw, cs)
	if err != nil {
		t.Fatal(err)
	}
	src := newConvSource(in, w, cs, tile, true)
	items := drainSource(t, src, 100000)
	var forwarded, total int
	for _, item := range items {
		for _, d := range item.Deliveries {
			if d.Pkt.Kind != comp.InputPkt {
				continue
			}
			total++
			if d.Forward {
				forwarded++
			}
		}
	}
	if forwarded == 0 {
		t.Error("stride-1 sliding window produced no forwarded deliveries")
	}
	if forwarded >= total {
		t.Error("every delivery forwarded — the new-column traffic vanished")
	}

	// With forwarding disabled, nothing is marked Forward.
	src2 := newConvSource(in, w, cs, tile, false)
	for _, item := range drainSource(t, src2, 100000) {
		for _, d := range item.Deliveries {
			if d.Forward {
				t.Fatal("Forward delivery from a non-forwarding source")
			}
		}
	}
}

func TestSigmaSourceGenerations(t *testing.T) {
	A := randTensor(7, 6, 10)
	csr, err := tensor.ToCSR(A)
	if err != nil {
		t.Fatal(err)
	}
	rounds := buildSigmaRounds(csr, 16, 0, 0)
	if len(rounds) < 2 {
		t.Skip("need multiple rounds for this check")
	}
	B := randTensor(8, 10, 3)
	src := &sigmaSource{rounds: rounds, B: B, n: 3}
	gens := map[uint32]bool{}
	for {
		item, ok := src.Next()
		if !ok {
			break
		}
		for _, d := range item.Deliveries {
			if d.Pkt.Gen == 0 {
				t.Fatal("sparse delivery without a generation tag")
			}
			gens[d.Pkt.Gen] = true
		}
		for _, j := range item.Jobs {
			if j.Members == nil {
				t.Fatal("sparse job without a member snapshot")
			}
			if !j.Last {
				t.Fatal("sparse jobs must be terminal (GB-side accumulation)")
			}
		}
	}
	if len(gens) != len(rounds) {
		t.Errorf("%d generations for %d rounds", len(gens), len(rounds))
	}
}
