package engine

import (
	"fmt"
	"sort"

	"repro/internal/comp/names"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// snapeaRunner is the SNAPEA-like composition (use case 2, Section VI-B):
// the dense back end extended with SnaPEA's data-dependent optimization.
// Filter weights are statically reordered by sign at "compile" time
// (positives first), an index table matches each reordered weight with its
// activation, and the accumulation logic performs a single-bit sign check
// on the running partial sum — once it drops to or below zero with only
// negative weights remaining, the output is inevitably zeroed by the
// following ReLU, so the rest of the computation and its memory accesses
// are cut off (exact mode).
//
// The microarchitecture is an output-stationary array of dot-product
// lanes: each of the MSSize processing elements owns one output neuron at
// a time and performs one MAC per cycle, picking up the next neuron from
// the work queue when it finishes or cuts.
type snapeaRunner struct {
	hw config.Hardware
}

// snapeaFilter is one filter's sign-sorted non-zero weights plus the index
// table locating each weight's activation.
type snapeaFilter struct {
	weights []float32
	offsets []int32 // flat (c·R·S + r·S + s) offset within the window
	negFrom int     // first index whose weight is negative
}

func buildSNAPEAFilters(w *tensor.Tensor, cs tensor.ConvShape) []snapeaFilter {
	cg := cs.C / cs.G
	window := cg * cs.R * cs.S
	filters := make([]snapeaFilter, cs.K)
	for k := 0; k < cs.K; k++ {
		type wo struct {
			v   float32
			off int32
		}
		var entries []wo
		for c := 0; c < cg; c++ {
			for r := 0; r < cs.R; r++ {
				for s := 0; s < cs.S; s++ {
					v := w.At(k, c, r, s)
					if v == 0 {
						continue // pruned weights are never mapped
					}
					entries = append(entries, wo{v, int32(c*cs.R*cs.S + r*cs.S + s)})
				}
			}
		}
		// Positives first (descending), then negatives (most negative
		// first) — the ordering that drops the partial sum fastest once
		// the positive mass is consumed.
		sort.SliceStable(entries, func(a, b int) bool {
			pa, pb := entries[a].v > 0, entries[b].v > 0
			if pa != pb {
				return pa
			}
			if pa {
				return entries[a].v > entries[b].v
			}
			return entries[a].v < entries[b].v
		})
		f := snapeaFilter{negFrom: len(entries)}
		for i, e := range entries {
			f.weights = append(f.weights, e.v)
			f.offsets = append(f.offsets, e.off)
			if e.v < 0 && i < f.negFrom {
				f.negFrom = i
			}
		}
		filters[k] = f
		_ = window
	}
	return filters
}

// snapeaPE is one dot-product lane.
type snapeaPE struct {
	active bool
	filter *snapeaFilter
	outIdx int
	// window origin in input coordinates
	ox, oy int
	pos    int
	psum   float32
}

// RunConv is the dense-dispatch target; without framework knowledge of
// the following layer it conservatively enables cutting, which is sound
// for conv+ReLU CNNs (the architecture's target domain).
func (r *snapeaRunner) RunConv(in, w *tensor.Tensor, cs tensor.ConvShape, layer string) (*tensor.Tensor, *stats.Run, error) {
	return runSNAPEAConv(&r.hw, in, w, cs, layer, true)
}

// runSNAPEAConv runs a convolution on the SNAPEA dot-product lanes. cut
// selects whether the early-termination logic is active (false models the
// paper's "Baseline", which is the same architecture without the negative
// detection logic). cut must only be enabled for layers whose output feeds
// a ReLU with non-negative inputs — the exact-mode soundness condition.
// It is a free function over the hardware configuration because the lane
// model applies to any fabric's multiplier budget: the SNAPEA-vs-Baseline
// comparison runs both variants on the same configuration.
func runSNAPEAConv(hw *config.Hardware, in, w *tensor.Tensor, cs tensor.ConvShape, layer string, cut bool) (*tensor.Tensor, *stats.Run, error) {
	if err := cs.Validate(); err != nil {
		return nil, nil, err
	}
	if cs.N != 1 {
		return nil, nil, fmt.Errorf("engine: SNAPEA models batch-1 inference, got N=%d", cs.N)
	}
	ctx := sim.NewCtx(hw)
	filters := buildSNAPEAFilters(w, cs)
	// The reordering table itself is read once per layer.
	var tableElems int
	for k := range filters {
		tableElems += len(filters[k].offsets)
	}
	ctx.Counters.Add(names.GBMetaReads, uint64(tableElems))

	xo, yo := cs.OutX(), cs.OutY()
	out := tensor.New(1, cs.K, xo, yo)
	od := out.Data()
	ind := in.Data()
	cg := cs.C / cs.G
	kg := cs.K / cs.G

	// Work queue iterator over (k, ox, oy).
	nextK, nextX, nextY := 0, 0, 0
	more := cs.K > 0
	nextNeuron := func() (k, ox, oy int, ok bool) {
		if !more {
			return 0, 0, 0, false
		}
		k, ox, oy = nextK, nextX, nextY
		nextY++
		if nextY == yo {
			nextY = 0
			nextX++
			if nextX == xo {
				nextX = 0
				nextK++
				if nextK == cs.K {
					more = false
				}
			}
		}
		return k, ox, oy, true
	}

	pes := make([]snapeaPE, hw.MSSize)
	var mults, reads, writes, signChecks, cuts, savedMACs uint64
	inX, inY := cs.X, cs.Y

	activeAny := true
	for activeAny {
		activeAny = false
		for i := range pes {
			pe := &pes[i]
			if !pe.active {
				k, ox, oy, ok := nextNeuron()
				if !ok {
					continue
				}
				pe.active = true
				pe.filter = &filters[k]
				pe.outIdx = (k*xo + ox) * yo
				pe.outIdx += oy
				pe.ox, pe.oy = ox, oy
				pe.pos, pe.psum = 0, 0
				activeAny = true
				continue // assignment cycle
			}
			activeAny = true
			f := pe.filter
			if cut && pe.pos >= f.negFrom {
				signChecks++
				if pe.psum <= 0 {
					od[pe.outIdx] = pe.psum
					writes++
					cuts++
					savedMACs += uint64(len(f.weights) - pe.pos)
					pe.active = false
					continue
				}
			}
			if pe.pos >= len(f.weights) {
				od[pe.outIdx] = pe.psum
				writes++
				pe.active = false
				continue
			}
			off := int(f.offsets[pe.pos])
			s := off % cs.S
			r := (off / cs.S) % cs.R
			c := off / (cs.R * cs.S)
			// Group-aware channel: filter k belongs to group k/kg.
			k := pe.outIdx / (xo * yo)
			cc := (k/kg)*cg + c
			ix := pe.ox*cs.Stride + r - cs.Padding
			iy := pe.oy*cs.Stride + s - cs.Padding
			var x float32
			if ix >= 0 && ix < inX && iy >= 0 && iy < inY {
				x = ind[(cc*inX+ix)*inY+iy]
			}
			pe.psum += f.weights[pe.pos] * x
			pe.pos++
			mults++
			reads += 2 // one weight, one activation (via the index table)
		}
		if activeAny {
			ctx.Cycles++
		}
	}

	ctx.Counters.Add(names.MNMults, mults)
	ctx.Counters.Add(names.RNAddersLRN, mults)
	ctx.Counters.Add(names.GBReads, reads)
	ctx.Counters.Add(names.GBWrites, writes)
	ctx.Counters.Add(names.DNLinkTraversals, reads)
	ctx.Counters.Add(names.SNAPEASignChecks, signChecks)
	ctx.Counters.Add(names.SNAPEACuts, cuts)
	ctx.Counters.Add(names.SNAPEASavedMACs, savedMACs)
	// The lane array only advances cycles while at least one lane works, so
	// every counted cycle is busy across all tiers (coarse bulk attribution
	// — the lanes fuse fetch, multiply and accumulate in one step).
	ctx.Rec.AddSpanAll(trace.Busy, ctx.Cycles)
	ctx.DRAM.WriteBack(cs.K * xo * yo)

	m, n, kk := cs.GEMMDims()
	run := ctx.Finish("CONV", layer, m, n, kk)
	return out, run, nil
}

// RunGEMM executes C = A×B on the same output-stationary dot-product
// lanes the convolutions use: each lane owns one output element at a time
// and performs one MAC per cycle over the non-zero A row entries. The
// sign-sorting/early-cut machinery stays off — SnaPEA applies it to
// convolutions only — so this is how both the SNAPEA and Baseline versions
// run the fully-connected layers.
func (sr *snapeaRunner) RunGEMM(A, B *tensor.Tensor, layer string) (*tensor.Tensor, *stats.Run, error) {
	ctx := sim.NewCtx(&sr.hw)
	m, k := A.Dim(0), A.Dim(1)
	n := B.Dim(1)
	// Non-zero entries per row, gathered once (the weights are static).
	type rowNZ struct {
		idx  []int32
		vals []float32
	}
	rows := make([]rowNZ, m)
	ad := A.Data()
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			if v := ad[i*k+kk]; v != 0 {
				rows[i].idx = append(rows[i].idx, int32(kk))
				rows[i].vals = append(rows[i].vals, v)
			}
		}
	}

	C := tensor.New(m, n)
	cd, bd := C.Data(), B.Data()
	lanes := sr.hw.MSSize

	// Work queue over (i, j) output elements; lanes pick up the next when
	// they finish, so the makespan is the greedy schedule's.
	type lane struct {
		active bool
		i, j   int
		pos    int
		psum   float32
	}
	ls := make([]lane, lanes)
	nextI, nextJ := 0, 0
	more := m > 0 && n > 0
	var mults, reads, writes uint64
	active := true
	for active {
		active = false
		for li := range ls {
			l := &ls[li]
			if !l.active {
				if !more {
					continue
				}
				l.active, l.i, l.j, l.pos, l.psum = true, nextI, nextJ, 0, 0
				nextJ++
				if nextJ == n {
					nextJ = 0
					nextI++
					if nextI == m {
						more = false
					}
				}
				active = true
				continue // assignment cycle
			}
			active = true
			r := &rows[l.i]
			if l.pos >= len(r.idx) {
				cd[l.i*n+l.j] = l.psum
				writes++
				l.active = false
				continue
			}
			l.psum += r.vals[l.pos] * bd[int(r.idx[l.pos])*n+l.j]
			l.pos++
			mults++
			reads += 2
		}
		if active {
			ctx.Cycles++
		}
	}
	ctx.Counters.Add(names.MNMults, mults)
	ctx.Counters.Add(names.RNAddersLRN, mults)
	ctx.Counters.Add(names.GBReads, reads)
	ctx.Counters.Add(names.GBWrites, writes)
	ctx.Counters.Add(names.DNLinkTraversals, reads)
	ctx.Rec.AddSpanAll(trace.Busy, ctx.Cycles) // see runSNAPEAConv
	ctx.DRAM.WriteBack(m * n)
	return C, ctx.Finish("GEMM", layer, m, n, k), nil
}
