package engine

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/dnn"
	"repro/internal/tensor"
)

// randMat builds a deterministic dense matrix with the given zero fraction.
func randMat(t *testing.T, seed uint64, rows, cols int, sparsity float64) *tensor.Tensor {
	t.Helper()
	rng := dnn.NewRNG(seed)
	m := tensor.New(rows, cols)
	d := m.Data()
	for i := range d {
		if rng.Float64() < sparsity {
			continue
		}
		d[i] = float32(rng.Normal())
	}
	return m
}

func assertClose(t *testing.T, got, want *tensor.Tensor, tol float64, what string) {
	t.Helper()
	if !tensor.SameShape(got, want) {
		t.Fatalf("%s: shape %v != %v", what, got.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	for i := range gd {
		diff := math.Abs(float64(gd[i]) - float64(wd[i]))
		scale := math.Max(1, math.Abs(float64(wd[i])))
		if diff/scale > tol {
			t.Fatalf("%s: element %d differs: got %v want %v", what, i, gd[i], wd[i])
		}
	}
}

func TestSystolicGEMMFunctional(t *testing.T) {
	acc, err := New(config.TPULike(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, dims := range [][3]int{{4, 4, 4}, {16, 16, 32}, {7, 9, 13}, {33, 17, 40}} {
		m, n, k := dims[0], dims[1], dims[2]
		A := randMat(t, 1, m, k, 0)
		B := randMat(t, 2, k, n, 0)
		want, err := tensor.MatMul(A, B)
		if err != nil {
			t.Fatal(err)
		}
		got, run, err := acc.RunGEMM(A, B, "t")
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		assertClose(t, got, want, 1e-3, "systolic GEMM")
		if run.Cycles == 0 {
			t.Errorf("%v: zero cycles", dims)
		}
	}
}

func TestSystolicTableVCycles(t *testing.T) {
	// Table V TPU rows: STONNE reports 67/51/204/1072 cycles on a 16×16
	// OS array. Our per-tile calibration must reproduce them exactly
	// (modulo the DRAM initial-fill cycles, which Table V excludes — the
	// user-interface microbenchmarks run from preloaded buffers).
	hw := config.TPULike(256)
	hw.Preloaded = true // Table V microbenchmarks run from preloaded buffers
	acc, err := New(hw)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		m, n, k int
		want    uint64
	}{
		{16, 16, 32, 67},
		{16, 16, 16, 51},
		{32, 32, 16, 204},
		{64, 64, 32, 1072},
	}
	for _, c := range cases {
		A := randMat(t, 3, c.m, c.k, 0)
		B := randMat(t, 4, c.k, c.n, 0)
		_, run, err := acc.RunGEMM(A, B, "tpu")
		if err != nil {
			t.Fatal(err)
		}
		if run.Cycles != c.want {
			t.Errorf("TPU %dx%dx%d: got %d cycles, want %d", c.m, c.n, c.k, run.Cycles, c.want)
		}
	}
}

func TestFlexDenseGEMMFunctional(t *testing.T) {
	acc, err := New(config.MAERILike(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, dims := range [][3]int{{4, 4, 4}, {6, 25, 54}, {20, 5, 180}, {3, 7, 100}} {
		m, n, k := dims[0], dims[1], dims[2]
		A := randMat(t, 5, m, k, 0)
		B := randMat(t, 6, k, n, 0)
		want, err := tensor.MatMul(A, B)
		if err != nil {
			t.Fatal(err)
		}
		got, run, err := acc.RunGEMM(A, B, "t")
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		assertClose(t, got, want, 1e-3, "flex GEMM")
		if run.MACs != uint64(m*n*k) {
			t.Errorf("%v: MACs = %d, want %d", dims, run.MACs, m*n*k)
		}
	}
}

func TestFlexDenseConvFunctional(t *testing.T) {
	acc, err := New(config.MAERILike(128, 32))
	if err != nil {
		t.Fatal(err)
	}
	cases := []tensor.ConvShape{
		{R: 3, S: 3, C: 6, G: 1, K: 6, N: 1, X: 7, Y: 7, Stride: 1, Padding: 0},
		{R: 3, S: 3, C: 4, G: 1, K: 8, N: 1, X: 8, Y: 8, Stride: 1, Padding: 1},
		{R: 5, S: 5, C: 3, G: 1, K: 4, N: 1, X: 12, Y: 12, Stride: 2, Padding: 2},
		{R: 1, S: 1, C: 16, G: 1, K: 10, N: 1, X: 6, Y: 6, Stride: 1, Padding: 0},
		{R: 3, S: 3, C: 8, G: 8, K: 8, N: 1, X: 9, Y: 9, Stride: 1, Padding: 1}, // depthwise
	}
	for i, cs := range cases {
		in := randMat(t, uint64(10+i), 1, cs.C*cs.X*cs.Y, 0)
		inT, err := in.Reshape(1, cs.C, cs.X, cs.Y)
		if err != nil {
			t.Fatal(err)
		}
		w := randMat(t, uint64(20+i), cs.K, cs.C/cs.G*cs.R*cs.S, 0)
		wT, err := w.Reshape(cs.K, cs.C/cs.G, cs.R, cs.S)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tensor.Conv2D(inT, wT, cs)
		if err != nil {
			t.Fatal(err)
		}
		got, run, err := acc.RunConv(inT, wT, cs, "conv")
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		assertClose(t, got, want, 1e-3, "flex conv")
		if run.MACs != uint64(cs.MACs()) {
			t.Errorf("case %d: MACs = %d, want %d", i, run.MACs, cs.MACs())
		}
	}
}

func TestSparseSpMMFunctional(t *testing.T) {
	acc, err := New(config.SIGMALike(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range []float64{0, 0.5, 0.9} {
		A := randMat(t, 30, 12, 40, sp)
		B := randMat(t, 31, 40, 9, sp/2)
		want, err := tensor.MatMul(A, B)
		if err != nil {
			t.Fatal(err)
		}
		got, run, err := acc.RunGEMM(A, B, "spmm")
		if err != nil {
			t.Fatalf("sparsity %.1f: %v", sp, err)
		}
		assertClose(t, got, want, 1e-3, "spmm")
		if sp > 0 && run.MACs >= uint64(12*40*9) {
			t.Errorf("sparsity %.1f: MACs %d not reduced below dense %d", sp, run.MACs, 12*40*9)
		}
	}
}

func TestSparseCyclesDropWithSparsity(t *testing.T) {
	acc, err := New(config.SIGMALike(128, 128))
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i, sp := range []float64{0, 0.5, 0.8} {
		A := randMat(t, 40, 64, 128, sp)
		B := randMat(t, 41, 128, 64, 0)
		_, run, err := acc.RunGEMM(A, B, "sweep")
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && run.Cycles >= prev {
			t.Errorf("sparsity %.1f: cycles %d did not drop below %d", sp, run.Cycles, prev)
		}
		prev = run.Cycles
	}
}

func TestSNAPEAConvFunctionalPostReLU(t *testing.T) {
	hw := config.SNAPEALike(64, 64)
	acc, err := New(hw)
	if err != nil {
		t.Fatal(err)
	}
	cs := tensor.ConvShape{R: 3, S: 3, C: 8, G: 1, K: 8, N: 1, X: 10, Y: 10, Stride: 1, Padding: 1}
	// Non-negative inputs, as the exact-mode soundness condition requires.
	rng := dnn.NewRNG(77)
	in := tensor.New(1, cs.C, cs.X, cs.Y)
	for i, d := 0, in.Data(); i < len(d); i++ {
		v := rng.Normal()
		if v < 0 {
			v = 0
		}
		d[i] = float32(v)
	}
	w := randMat(t, 78, cs.K, cs.C*cs.R*cs.S, 0.5)
	wT, err := w.Reshape(cs.K, cs.C, cs.R, cs.S)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tensor.Conv2D(in, wT, cs)
	if err != nil {
		t.Fatal(err)
	}

	gotCut, runCut, err := acc.RunSNAPEAConv(in, wT, cs, "c", true)
	if err != nil {
		t.Fatal(err)
	}
	gotBase, runBase, err := acc.RunSNAPEAConv(in, wT, cs, "c", false)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline matches the reference exactly (modulo summation order).
	assertClose(t, gotBase, want, 1e-3, "snapea baseline")

	// The cut version matches after ReLU.
	relu := func(t *tensor.Tensor) *tensor.Tensor {
		c := t.Clone()
		c.Apply(func(v float32) float32 {
			if v < 0 {
				return 0
			}
			return v
		})
		return c
	}
	assertClose(t, relu(gotCut), relu(want), 1e-3, "snapea post-relu")

	if runCut.MACs >= runBase.MACs {
		t.Errorf("SNAPEA did not save MACs: %d vs baseline %d", runCut.MACs, runBase.MACs)
	}
	if runCut.Cycles >= runBase.Cycles {
		t.Errorf("SNAPEA did not save cycles: %d vs baseline %d", runCut.Cycles, runBase.Cycles)
	}
	if runCut.Counters["snapea.cuts"] == 0 {
		t.Error("no cuts recorded")
	}
}

func TestFlexDenseBandwidthSensitivity(t *testing.T) {
	// Fig. 1b behaviour: cycles grow superlinearly as bandwidth drops.
	var cycles []uint64
	for _, bw := range []int{128, 64, 32} {
		acc, err := New(config.MAERILike(128, bw))
		if err != nil {
			t.Fatal(err)
		}
		A := randMat(t, 50, 32, 256, 0)
		B := randMat(t, 51, 256, 32, 0)
		_, run, err := acc.RunGEMM(A, B, "bw")
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, run.Cycles)
	}
	if !(cycles[0] < cycles[1] && cycles[1] < cycles[2]) {
		t.Errorf("cycles did not grow as bandwidth shrank: %v", cycles)
	}
}

func TestDispatchErrors(t *testing.T) {
	if _, err := New(config.Hardware{}); err == nil {
		t.Error("empty config accepted")
	}
	acc, err := New(config.SNAPEALike(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	// SNAPEA runs fully-connected layers on its dense back end.
	A := randMat(t, 60, 4, 4, 0)
	got, _, err := acc.RunGEMM(A, A, "x")
	if err != nil {
		t.Fatalf("SNAPEA dense GEMM fallback: %v", err)
	}
	want, err := tensor.MatMul(A, A)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, got, want, 1e-3, "snapea dense fallback")

	bad := randMat(t, 61, 3, 5, 0)
	if _, _, err := acc.RunGEMM(A, bad, "x"); err == nil {
		t.Error("mismatched GEMM dims accepted")
	}
}
