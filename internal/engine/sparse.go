package engine

import (
	"fmt"

	"repro/internal/comp"
	"repro/internal/comp/names"
	"repro/internal/config"
	"repro/internal/dn"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// sparseRunner is the SIGMA-like composition (sparse controller + Benes +
// DMN + FAN). It runs sparse-times-(possibly sparse) GEMMs: the non-zeros
// of the stationary MK matrix are packed into rounds of dynamic-size
// clusters — one cluster per filter/output-row chunk — and the KN matrix
// streams column by column, each distinct k value multicast through the
// Benes network to every switch holding a stationary element of that k.
// Zero streaming values are skipped entirely, so cycle counts depend on the
// actual distribution of zeros, the effect that breaks analytical models
// (Fig. 1c).
type sparseRunner struct {
	hw config.Hardware
}

// sigmaCluster is one mapped chunk: a contiguous run of switches holding
// the chunk's stationary non-zeros.
type sigmaCluster struct {
	row    int
	msBase int
	ks     []int32   // k index per member switch
	vals   []float32 // stationary value per member switch
	// members is the switch-index set [msBase, msBase+len(ks)), built once
	// at round construction; JobSpecs share it read-only, so streaming a
	// column allocates nothing.
	members []int
}

// sigmaRound precomputes, per distinct k in the round, the member switches
// that hold it, so streaming steps cost O(participants).
type sigmaRound struct {
	clusters []sigmaCluster
	used     int
	kOrder   []int32
	kDests   map[int32][]int
	// clusterOfMS maps switch → cluster index for expectation counting.
	clusterOfMS []int
}

type sigmaSource struct {
	rounds []sigmaRound
	B      *tensor.Tensor
	n      int

	round int
	phase int // 0 = stationary load, 1 = stream columns
	col   int
	seq   int

	// expect is the reusable per-cluster participation counter scratch.
	expect []int

	exhausted bool
}

var _ sim.Source = (*sigmaSource)(nil)

func buildSigmaRounds(A *tensor.CSRMatrix, capacity int, policy sched.Policy, seed uint64) []sigmaRound {
	nnz := make([]int, A.Rows)
	for i := 0; i < A.Rows; i++ {
		nnz[i] = A.RowNNZ(i)
	}
	packed := sched.Pack(nnz, capacity, policy, seed)
	rounds := make([]sigmaRound, 0, len(packed))
	for _, r := range packed {
		sr := sigmaRound{kDests: map[int32][]int{}, clusterOfMS: make([]int, capacity)}
		for i := range sr.clusterOfMS {
			sr.clusterOfMS[i] = -1
		}
		base := 0
		for ci, chunk := range r {
			idx, vals := A.Row(chunk.Row)
			cl := sigmaCluster{
				row:    chunk.Row,
				msBase: base,
				ks:     idx[chunk.Start : chunk.Start+chunk.Len],
				vals:   vals[chunk.Start : chunk.Start+chunk.Len],
			}
			cl.members = make([]int, len(cl.ks))
			for p, k := range cl.ks {
				ms := base + p
				cl.members[p] = ms
				if _, seen := sr.kDests[k]; !seen {
					sr.kOrder = append(sr.kOrder, k)
				}
				sr.kDests[k] = append(sr.kDests[k], ms)
				sr.clusterOfMS[ms] = ci
			}
			base += len(cl.ks)
			sr.clusters = append(sr.clusters, cl)
		}
		sr.used = base
		rounds = append(rounds, sr)
	}
	return rounds
}

// Next emits the next phase of the current SIGMA round; per-round
// delivery-list allocations are amortized over the cycles the round
// streams through the fabric.
//
//lint:ignore hotpathalloc work-item construction is amortized over the many cycles the round occupies the fabric
func (s *sigmaSource) Next() (sim.WorkItem, bool) {
	if s.exhausted {
		return sim.WorkItem{}, false
	}
	r := &s.rounds[s.round]

	gen := uint32(s.round + 1)
	if s.phase == 0 {
		// Stationary load: every non-zero of the round is unicast into the
		// shadow register of its switch (generation-tagged), so loading
		// pipelines behind the previous round's streaming — SIGMA's
		// double-buffered reconfiguration.
		item := sim.WorkItem{Prefetch: r.used}
		for _, cl := range r.clusters {
			for p, v := range cl.vals {
				item.Deliveries = append(item.Deliveries, dn.Delivery{
					Pkt:   comp.Packet{Value: v, Kind: comp.WeightPkt, Gen: gen},
					Dests: []int{cl.msBase + p},
				})
			}
		}
		s.phase = 1
		s.col = 0
		return item, true
	}

	// Stream one column of the KN matrix: distinct non-zero k values are
	// multicast; clusters reduce whatever members participated.
	item := sim.WorkItem{}
	seq := s.seq
	s.seq++
	j := s.col
	if cap(s.expect) < len(r.clusters) {
		s.expect = make([]int, len(r.clusters))
	}
	expect := s.expect[:len(r.clusters)]
	for i := range expect {
		expect[i] = 0
	}
	bd := s.B.Data()
	for _, k := range r.kOrder {
		bv := bd[int(k)*s.n+j]
		if bv == 0 {
			continue // streaming sparsity: never delivered, never multiplied
		}
		dests := r.kDests[k]
		item.Deliveries = append(item.Deliveries, dn.Delivery{
			Pkt:   comp.Packet{Value: bv, Kind: comp.InputPkt, Seq: seq, Gen: gen},
			Dests: dests,
		})
		for _, ms := range dests {
			expect[r.clusterOfMS[ms]]++
		}
	}
	for ci, cl := range r.clusters {
		if expect[ci] == 0 {
			continue // entire chunk hit zeros in this column
		}
		item.Jobs = append(item.Jobs, sim.JobSpec{
			VN: ci, Seq: seq, Expect: expect[ci],
			OutIdx:  cl.row*s.n + j,
			Last:    true, // each contribution exits and accumulates GB-side
			Members: cl.members,
		})
	}

	s.col++
	if s.col >= s.n {
		s.phase = 0
		s.round++
		if s.round >= len(s.rounds) {
			s.exhausted = true
		}
	}
	return item, true
}

// RunGEMM runs the GEMM through the sparse front end: the sparse
// controller runs every GEMM through its bitmap/CSR format machinery;
// dense operands simply have full bitmaps.
func (r *sparseRunner) RunGEMM(A, B *tensor.Tensor, layer string) (*tensor.Tensor, *stats.Run, error) {
	return r.RunSpMM(A, B, layer, nil)
}

// RunConv lowers the convolution to SpMM per group: sparse filter matrix
// times im2col columns (any CONV maps to GEMM via img2col, Section IV-B).
func (r *sparseRunner) RunConv(in, w *tensor.Tensor, cs tensor.ConvShape, layer string) (*tensor.Tensor, *stats.Run, error) {
	return r.RunConvScheduled(in, w, cs, layer, sched.NS)
}

// RunSpMM executes C = A×B where A is treated as sparse (bitmap or CSR
// front format per the configuration) and zeros in B are skipped. policy
// selects the filter scheduling strategy of use case 3 (nil = NS).
func (r *sparseRunner) RunSpMM(A, B *tensor.Tensor, layer string, policy *sched.Policy) (*tensor.Tensor, *stats.Run, error) {
	if A.Rank() != 2 || B.Rank() != 2 || A.Dim(1) != B.Dim(0) {
		return nil, nil, fmt.Errorf("engine: SpMM shape mismatch %v × %v", A.Shape(), B.Shape())
	}
	pol := sched.NS
	if policy != nil {
		pol = *policy
	}
	csr, err := tensor.ToCSR(A)
	if err != nil {
		return nil, nil, err
	}
	m, k := A.Dim(0), A.Dim(1)
	n := B.Dim(1)

	ctx := sim.NewCtx(&r.hw)
	rounds := buildSigmaRounds(csr, r.hw.MSSize, pol, 0x51634)
	// Empty operand: no rounds, the output is all zeros after 0 cycles.
	if len(rounds) == 0 {
		C := tensor.New(m, n)
		return C, ctx.Finish("SpMM", layer, m, n, k), nil
	}

	f, err := newFlexRun(ctx, r.hw.MSSize, m*n, 0)
	if err != nil {
		return nil, nil, err
	}
	f.sumOut = true
	src := &sigmaSource{rounds: rounds, B: B, n: n}
	f.src = src

	// Sparse metadata traffic: the bitmap front format reads one bit per
	// MK element (packed into 64-bit words); CSR reads one index per
	// non-zero plus row pointers.
	switch r.hw.SparseFormat {
	case config.FmtBitmap:
		ctx.Counters.Add(names.GBMetaReads, uint64((m*k+63)/64))
	case config.FmtCSR:
		ctx.Counters.Add(names.GBMetaReads, uint64(csr.NNZ()+m+1))
	}

	ctx.InitialFill(csr.NNZ() + k*n)
	if err := f.run(); err != nil {
		return nil, nil, fmt.Errorf("engine: %s SpMM %s (%dx%dx%d): %w", r.hw.Name, layer, m, n, k, err)
	}
	ctx.DRAM.WriteBack(m * n)
	C, err := tensor.FromSlice(f.out, m, n)
	if err != nil {
		return nil, nil, err
	}
	run := ctx.Finish("SpMM", layer, m, n, k)
	run.Counters[names.SchedRounds] = uint64(len(rounds))
	return C, run, nil
}

// RunConvScheduled runs a convolution on the sparse controller with an
// explicit filter-scheduling policy (use case 3: the prior-simulation
// function reorders the filters, the sparse controller issues them in that
// order).
func (r *sparseRunner) RunConvScheduled(in, w *tensor.Tensor, cs tensor.ConvShape, layer string, pol sched.Policy) (*tensor.Tensor, *stats.Run, error) {
	xo, yo := cs.OutX(), cs.OutY()
	out := tensor.New(cs.N, cs.K, xo, yo)
	kg := cs.K / cs.G
	var agg *stats.Run
	for g := 0; g < cs.G; g++ {
		cols, err := tensor.Im2Col(in, cs, g)
		if err != nil {
			return nil, nil, err
		}
		fm, err := tensor.FilterMatrix(w, cs, g)
		if err != nil {
			return nil, nil, err
		}
		C, run, err := r.RunSpMM(fm, cols, fmt.Sprintf("%s.g%d", layer, g), &pol)
		if err != nil {
			return nil, nil, err
		}
		nc := xo * yo
		for kf := 0; kf < kg; kf++ {
			kk := g*kg + kf
			for b := 0; b < cs.N; b++ {
				for pix := 0; pix < nc; pix++ {
					out.Set(C.At(kf, b*nc+pix), b, kk, pix/yo, pix%yo)
				}
			}
		}
		if agg == nil {
			agg = run
			agg.Op = "CONV"
			agg.Layer = layer
		} else {
			agg.Merge(run)
		}
	}
	m, n, k := cs.GEMMDims()
	agg.M, agg.N, agg.K = m, n, k
	agg.RecomputeUtilization(r.hw.MSSize)
	return out, agg, nil
}
