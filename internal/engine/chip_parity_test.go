package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// chipOpWorkload runs one op (GEMM or conv) through the Runner the chip
// scheduler hands it — the minimal workload for differential parity.
type chipOpWorkload struct {
	op     string
	gemmA  *tensor.Tensor
	gemmB  *tensor.Tensor
	convIn *tensor.Tensor
	convW  *tensor.Tensor
	cs     tensor.ConvShape
	out    *tensor.Tensor
}

func (w *chipOpWorkload) Streams() int { return 1 }
func (w *chipOpWorkload) Stages() int  { return 1 }
func (w *chipOpWorkload) RunStage(_, _, _ int, r sim.Runner) ([]*stats.Run, int, error) {
	var (
		out *tensor.Tensor
		run *stats.Run
		err error
	)
	if w.op == "gemm" {
		out, run, err = r.RunGEMM(w.gemmA, w.gemmB, "chip-parity")
	} else {
		out, run, err = r.RunConv(w.convIn, w.convW, w.cs, "chip-parity")
	}
	if err != nil {
		return nil, 0, err
	}
	w.out = out
	return []*stats.Run{run}, out.Len(), nil
}

// TestChipSingleCoreParity is the differential regression the tentpole
// promises: a 1-core sim.Chip drives each registered architecture through
// the registry-built runner and must be byte-identical to running the same
// op on a bare runner — output bits, cycles, every counter, and the full
// cycle breakdown. A failure here means the chip composition leaked into
// the single-core path.
func TestChipSingleCoreParity(t *testing.T) {
	archs := sim.List()
	if len(archs) != 4 {
		t.Fatalf("registry lists %d architectures, want 4", len(archs))
	}
	cs := tensor.ConvShape{R: 3, S: 3, C: 4, G: 1, K: 4, N: 1, X: 8, Y: 8, Stride: 1, Padding: 1}
	gemmA := randTensor(0x11, 6, 8)
	gemmB := randTensor(0x22, 8, 5)
	convIn := randTensor(0x33, 1, 4, 8, 8)
	convW := randTensor(0x44, 4, 4, 3, 3)

	for _, arch := range archs {
		hw := arch.Preset(64, 16)
		for _, op := range []string{"gemm", "conv"} {
			bare, err := New(hw)
			if err != nil {
				t.Fatalf("%s: New: %v", arch.Name, err)
			}
			var wantOut *tensor.Tensor
			var wantRun *stats.Run
			if op == "gemm" {
				wantOut, wantRun, err = bare.RunGEMM(gemmA, gemmB, "chip-parity")
			} else {
				wantOut, wantRun, err = bare.RunConv(convIn, convW, cs, "chip-parity")
			}
			if err != nil {
				t.Fatalf("%s %s: bare run: %v", arch.Name, op, err)
			}

			chip, err := sim.NewChip(sim.ChipConfig{Cores: []config.Hardware{hw}}, nil)
			if err != nil {
				t.Fatalf("%s: NewChip: %v", arch.Name, err)
			}
			w := &chipOpWorkload{op: op, gemmA: gemmA, gemmB: gemmB, convIn: convIn, convW: convW, cs: cs}
			cr, err := chip.Run(context.Background(), w)
			if err != nil {
				t.Fatalf("%s %s: chip run: %v", arch.Name, op, err)
			}

			if !reflect.DeepEqual(w.out.Data(), wantOut.Data()) {
				t.Errorf("%s %s: 1-core chip output bytes differ from the bare runner", arch.Name, op)
			}
			if cr.Total.Cycles != wantRun.Cycles {
				t.Errorf("%s %s: chip cycles %d, bare %d", arch.Name, op, cr.Total.Cycles, wantRun.Cycles)
			}
			if !reflect.DeepEqual(cr.Total.Counters, wantRun.Counters) {
				t.Errorf("%s %s: chip counters differ from the bare runner\nchip: %v\nbare: %v",
					arch.Name, op, cr.Total.Counters, wantRun.Counters)
			}
			if !reflect.DeepEqual(cr.Total.Breakdown, wantRun.Breakdown) {
				t.Errorf("%s %s: chip cycle breakdown differs from the bare runner", arch.Name, op)
			}
			if cr.MakespanCycles != wantRun.Cycles {
				t.Errorf("%s %s: 1-core makespan %d != op cycles %d", arch.Name, op, cr.MakespanCycles, wantRun.Cycles)
			}
		}
	}
}
