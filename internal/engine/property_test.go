package engine

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/mapper"
	"repro/internal/tensor"
)

// xorshift for hermetic random workloads.
type propRNG struct{ s uint64 }

func newPropRNG(seed int64) *propRNG { return &propRNG{s: uint64(seed)*0x9e3779b97f4a7c15 + 99} }

func (r *propRNG) next(lo, hi int) int {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return lo + int(r.s%uint64(hi-lo+1))
}

func (r *propRNG) val() float32 {
	return float32(r.next(-1000, 1000)) / 400
}

func (r *propRNG) mat(rows, cols int, sparsity int) *tensor.Tensor {
	t := tensor.New(rows, cols)
	d := t.Data()
	for i := range d {
		if r.next(0, 99) >= sparsity {
			d[i] = r.val()
		}
	}
	return t
}

func closeEnough(a, b *tensor.Tensor) bool {
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		diff := float64(ad[i] - bd[i])
		if diff < 0 {
			diff = -diff
		}
		scale := float64(bd[i])
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		if diff/scale > 1e-3 {
			return false
		}
	}
	return true
}

// Property: every architecture completes every random GEMM without
// deadlock (the run loop aborts with an error if no progress is made) and
// produces the reference product. This sweeps fabric sizes, bandwidths and
// FIFO depths — the stall-inducing parameters.
func TestEngineGEMMCompletenessProperty(t *testing.T) {
	archs := []func(r *propRNG) config.Hardware{
		func(r *propRNG) config.Hardware {
			return config.TPULike(1 << (2 * r.next(1, 4))) // 4..256 PEs (squares)
		},
		func(r *propRNG) config.Hardware {
			hw := config.MAERILike(1<<r.next(3, 8), 1<<r.next(1, 7))
			hw.FIFODepth = r.next(1, 8)
			return hw
		},
		func(r *propRNG) config.Hardware {
			hw := config.SIGMALike(1<<r.next(3, 8), 1<<r.next(1, 7))
			hw.FIFODepth = r.next(1, 8)
			return hw
		},
	}
	f := func(seed int64, pick uint8) bool {
		r := newPropRNG(seed)
		hw := archs[int(pick)%len(archs)](r)
		hw.Preloaded = true
		acc, err := New(hw)
		if err != nil {
			return false
		}
		m, n, k := r.next(1, 40), r.next(1, 40), r.next(1, 80)
		sp := r.next(0, 90)
		A := r.mat(m, k, sp)
		B := r.mat(k, n, sp/2)
		got, run, err := acc.RunGEMM(A, B, "prop")
		if err != nil {
			t.Logf("seed %d %s: %v", seed, hw.Name, err)
			return false
		}
		want, _ := tensor.MatMul(A, B)
		if !closeEnough(got, want) {
			t.Logf("seed %d %s: wrong product (%dx%dx%d)", seed, hw.Name, m, n, k)
			return false
		}
		if run.Cycles == 0 && m*n*k > 0 && A.NNZ() > 0 {
			t.Logf("seed %d %s: zero cycles", seed, hw.Name)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: random valid tiles on the flexible dense fabric still compute
// the correct convolution — the user-supplied tile path of Fig. 2(d).
func TestConvTiledCorrectnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newPropRNG(seed)
		cs := tensor.ConvShape{
			R: r.next(1, 3), S: 0, C: r.next(1, 8), G: 1, K: r.next(1, 6), N: 1,
			X: 0, Y: 0, Stride: r.next(1, 2), Padding: r.next(0, 1),
		}
		cs.S = cs.R
		cs.X = r.next(cs.R+1, 10)
		cs.Y = cs.X
		if cs.Validate() != nil {
			return true
		}
		const ms = 64
		hw := config.MAERILike(ms, 1<<r.next(1, 5))
		hw.Preloaded = true
		hw.FIFODepth = r.next(1, 8)
		acc, err := New(hw)
		if err != nil {
			return false
		}
		// Random valid tile: window always fully covered, random TC and
		// random VN parallelism within the fabric.
		window := cs.R * cs.S
		maxTC := ms / window
		if maxTC > cs.C {
			maxTC = cs.C
		}
		tc := r.next(1, maxTC)
		vnSize := window * tc
		avail := ms / vnSize
		typ := r.next(1, min(avail, cs.OutY()))
		tk := r.next(1, min(avail/typ, cs.K))
		tile := mapper.Tile{
			TR: cs.R, TS: cs.S, TC: tc, TG: 1, TK: tk, TN: 1, TXp: 1, TYp: typ,
			VNSize: vnSize, NumVNs: tk * typ,
			Folds:           (cs.C + tc - 1) / tc,
			UsedMultipliers: tk * typ * vnSize,
		}
		in := r.mat(1, cs.C*cs.X*cs.Y, 0)
		inT, _ := in.Reshape(1, cs.C, cs.X, cs.Y)
		w := r.mat(cs.K, cs.C*cs.R*cs.S, r.next(0, 70))
		wT, _ := w.Reshape(cs.K, cs.C, cs.R, cs.S)
		got, _, err := acc.RunConvTiled(inT, wT, cs, "prop", tile)
		if err != nil {
			t.Logf("seed %d: %v (tile %+v, cs %+v)", seed, err, tile, cs)
			return false
		}
		want, _ := tensor.Conv2D(inT, wT, cs)
		if !closeEnough(got, want) {
			t.Logf("seed %d: wrong conv (tile %+v)", seed, tile)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSpMMDegenerateOperands(t *testing.T) {
	acc, err := New(config.SIGMALike(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	// All-zero stationary matrix: zero rounds, zero output.
	A := tensor.New(8, 16)
	B := tensor.New(16, 4)
	for i, d := 0, B.Data(); i < len(d); i++ {
		d[i] = 1
	}
	got, run, err := acc.RunSpMM(A, B, "zeros", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 || run.MACs != 0 {
		t.Errorf("all-zero A produced work: nnz=%d macs=%d", got.NNZ(), run.MACs)
	}

	// All-zero streaming matrix: rounds load but nothing multiplies.
	r := newPropRNG(5)
	A2 := r.mat(8, 16, 30)
	B2 := tensor.New(16, 4)
	got2, run2, err := acc.RunSpMM(A2, B2, "zerosB", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got2.NNZ() != 0 || run2.MACs != 0 {
		t.Errorf("all-zero B produced products: %d", run2.MACs)
	}

	// A row that is entirely zero must still yield a zero output row.
	A3 := r.mat(4, 8, 0)
	for j := 0; j < 8; j++ {
		A3.Set(0, 2, j)
	}
	B3 := r.mat(8, 3, 0)
	got3, _, err := acc.RunSpMM(A3, B3, "zerorow", nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if got3.At(2, j) != 0 {
			t.Errorf("zero row produced %v", got3.At(2, j))
		}
	}
	want, _ := tensor.MatMul(A3, B3)
	if !closeEnough(got3, want) {
		t.Error("partial-zero product wrong")
	}
}

func TestSingleElementGEMM(t *testing.T) {
	for _, hw := range []config.Hardware{
		config.TPULike(16), config.MAERILike(16, 4), config.SIGMALike(16, 4),
	} {
		hw.Preloaded = true
		acc, err := New(hw)
		if err != nil {
			t.Fatal(err)
		}
		A := tensor.New(1, 1)
		A.Set(3, 0, 0)
		B := tensor.New(1, 1)
		B.Set(4, 0, 0)
		got, _, err := acc.RunGEMM(A, B, "1x1")
		if err != nil {
			t.Fatalf("%s: %v", hw.Name, err)
		}
		if got.At(0, 0) != 12 {
			t.Errorf("%s: 3×4 = %v", hw.Name, got.At(0, 0))
		}
	}
}
