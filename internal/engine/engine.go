// Package engine composes the microarchitecture modules (distribution,
// multiplier and reduction networks, memory controllers, buffers) into
// complete simulated accelerators and runs operations on them cycle by
// cycle. It provides the four compositions of the paper: TPU-like
// (systolic), MAERI-like (flexible dense), SIGMA-like (flexible sparse) and
// SNAPEA-like (data-dependent early termination).
//
// Each composition is a sim.Runner registered with the architecture
// registry (see register.go); the Accelerator facade resolves the runner
// for a configuration once at construction, so adding a fifth architecture
// is one registration — no dispatch code changes anywhere above.
package engine

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/mapper"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Accelerator is one configured instance of the simulation engine — what
// the STONNE API's CreateInstance returns. It is a thin facade over the
// runner the architecture registry resolved for the configuration.
type Accelerator struct {
	hw     config.Hardware
	arch   *sim.Arch
	runner sim.Runner
}

// New validates the configuration, resolves its architecture from the
// registry and builds the accelerator instance.
func New(hw config.Hardware) (*Accelerator, error) {
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	arch, err := sim.Resolve(hw)
	if err != nil {
		return nil, err
	}
	runner, err := arch.Build(hw)
	if err != nil {
		return nil, err
	}
	return &Accelerator{hw: hw, arch: arch, runner: runner}, nil
}

// HW returns the hardware configuration.
func (a *Accelerator) HW() config.Hardware { return a.hw }

// Arch returns the registry name of the resolved architecture.
func (a *Accelerator) Arch() string { return a.arch.Name }

// SupportsScheduling reports whether the accelerator runs the sparse
// controller, i.e. filter-scheduling policies and SpMM apply.
func (a *Accelerator) SupportsScheduling() bool {
	_, ok := a.runner.(*sparseRunner)
	return ok
}

// SupportsEarlyCut reports whether the accelerator is the SNAPEA
// composition with the data-dependent early-termination logic.
func (a *Accelerator) SupportsEarlyCut() bool {
	_, ok := a.runner.(*snapeaRunner)
	return ok
}

// RunGEMM executes C = A(M×K) × B(K×N) densely on the configured fabric
// and returns the result with per-run statistics.
func (a *Accelerator) RunGEMM(A, B *tensor.Tensor, layer string) (*tensor.Tensor, *stats.Run, error) {
	if A.Rank() != 2 || B.Rank() != 2 || A.Dim(1) != B.Dim(0) {
		return nil, nil, fmt.Errorf("engine: GEMM shape mismatch %v × %v", A.Shape(), B.Shape())
	}
	return a.runner.RunGEMM(A, B, layer)
}

// RunConv executes a convolution (input NCHW, weights KCRS) and returns the
// NKX'Y' output with statistics.
func (a *Accelerator) RunConv(in, w *tensor.Tensor, cs tensor.ConvShape, layer string) (*tensor.Tensor, *stats.Run, error) {
	if err := cs.Validate(); err != nil {
		return nil, nil, err
	}
	return a.runner.RunConv(in, w, cs, layer)
}

// RunConvTiled runs a convolution with an explicit user-supplied tile — in
// STONNE, the tile configuration for every layer is part of the model
// modifications (Fig. 2d); the mapper only provides a default.
func (a *Accelerator) RunConvTiled(in, w *tensor.Tensor, cs tensor.ConvShape, layer string, tile mapper.Tile) (*tensor.Tensor, *stats.Run, error) {
	fr, ok := a.runner.(*flexDenseRunner)
	if !ok {
		return nil, nil, fmt.Errorf("engine: explicit tiles target the flexible dense composition, have %v/%v", a.hw.Ctrl, a.hw.DN)
	}
	return fr.RunConvTiled(in, w, cs, layer, tile)
}

// RunSpMM executes C = A×B where A is treated as sparse (bitmap or CSR
// front format per the configuration) and zeros in B are skipped. policy
// selects the filter scheduling strategy of use case 3 (nil = NS).
func (a *Accelerator) RunSpMM(A, B *tensor.Tensor, layer string, policy *sched.Policy) (*tensor.Tensor, *stats.Run, error) {
	sr, ok := a.runner.(*sparseRunner)
	if !ok {
		return nil, nil, fmt.Errorf("engine: RunSpMM requires the sparse controller, have %v", a.hw.Ctrl)
	}
	return sr.RunSpMM(A, B, layer, policy)
}

// RunSpMMScheduled is RunSpMM with an explicit policy value (convenience
// for the scheduling study).
func (a *Accelerator) RunSpMMScheduled(A, B *tensor.Tensor, layer string, policy sched.Policy) (*tensor.Tensor, *stats.Run, error) {
	return a.RunSpMM(A, B, layer, &policy)
}

// RunConvScheduled runs a convolution on the sparse controller with an
// explicit filter-scheduling policy (use case 3: the prior-simulation
// function reorders the filters, the sparse controller issues them in that
// order).
func (a *Accelerator) RunConvScheduled(in, w *tensor.Tensor, cs tensor.ConvShape, layer string, pol sched.Policy) (*tensor.Tensor, *stats.Run, error) {
	sr, ok := a.runner.(*sparseRunner)
	if !ok {
		return nil, nil, fmt.Errorf("engine: filter scheduling requires the sparse controller, have %v", a.hw.Ctrl)
	}
	return sr.RunConvScheduled(in, w, cs, layer, pol)
}

// RunSNAPEAConv runs a convolution on the SNAPEA dot-product lane model
// regardless of the configured composition — the SNAPEA-vs-Baseline
// comparison runs both variants on the same configuration. cut selects
// whether the early-termination logic is active.
func (a *Accelerator) RunSNAPEAConv(in, w *tensor.Tensor, cs tensor.ConvShape, layer string, cut bool) (*tensor.Tensor, *stats.Run, error) {
	return runSNAPEAConv(&a.hw, in, w, cs, layer, cut)
}
