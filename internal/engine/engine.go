// Package engine composes the microarchitecture modules (distribution,
// multiplier and reduction networks, memory controllers, buffers) into
// complete simulated accelerators and runs operations on them cycle by
// cycle. It provides the four compositions of the paper: TPU-like
// (systolic), MAERI-like (flexible dense), SIGMA-like (flexible sparse) and
// SNAPEA-like (data-dependent early termination).
package engine

import (
	"fmt"

	"repro/internal/comp"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Accelerator is one configured instance of the simulation engine — what
// the STONNE API's CreateInstance returns.
type Accelerator struct {
	hw config.Hardware
}

// New validates the configuration and builds an accelerator instance.
func New(hw config.Hardware) (*Accelerator, error) {
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	return &Accelerator{hw: hw}, nil
}

// HW returns the hardware configuration.
func (a *Accelerator) HW() config.Hardware { return a.hw }

// deadlockWindow is the number of cycles without any observable progress
// after which a run aborts with a diagnostic instead of spinning forever —
// a controller bug, not a valid hardware state.
const deadlockWindow = 200_000

// maxAccEntries bounds the accumulation-buffer working set; schedulers
// panelize output sweeps so folds never need more in-flight partial sums.
const maxAccEntries = 4096

// RunGEMM executes C = A(M×K) × B(K×N) densely on the configured fabric
// and returns the result with per-run statistics.
func (a *Accelerator) RunGEMM(A, B *tensor.Tensor, layer string) (*tensor.Tensor, *stats.Run, error) {
	if A.Rank() != 2 || B.Rank() != 2 || A.Dim(1) != B.Dim(0) {
		return nil, nil, fmt.Errorf("engine: GEMM shape mismatch %v × %v", A.Shape(), B.Shape())
	}
	switch a.hw.Ctrl {
	case config.DenseCtrl:
		if a.hw.DN == config.PointToPointDN {
			return a.runSystolicGEMM(A, B, layer)
		}
		return a.runFlexDenseGEMM(A, B, layer)
	case config.SparseCtrl:
		// The sparse controller runs every GEMM through its bitmap/CSR
		// front end; dense operands simply have full bitmaps.
		return a.RunSpMM(A, B, layer, nil)
	case config.SNAPEACtrl:
		// SNAPEA's sign-sorting targets convolutions; fully-connected
		// layers run on the same dot-product lanes without cutting.
		return a.runSNAPEAGEMM(A, B, layer)
	default:
		return nil, nil, fmt.Errorf("engine: unknown controller %v", a.hw.Ctrl)
	}
}

// RunConv executes a convolution (input NCHW, weights KCRS) and returns the
// NKX'Y' output with statistics.
func (a *Accelerator) RunConv(in, w *tensor.Tensor, cs tensor.ConvShape, layer string) (*tensor.Tensor, *stats.Run, error) {
	if err := cs.Validate(); err != nil {
		return nil, nil, err
	}
	switch a.hw.Ctrl {
	case config.DenseCtrl:
		if a.hw.DN == config.PointToPointDN {
			return a.runSystolicConv(in, w, cs, layer)
		}
		return a.runFlexDenseConv(in, w, cs, layer)
	case config.SparseCtrl:
		return a.runSparseConv(in, w, cs, layer)
	case config.SNAPEACtrl:
		return a.runSNAPEAConv(in, w, cs, layer)
	default:
		return nil, nil, fmt.Errorf("engine: unknown controller %v", a.hw.Ctrl)
	}
}

// runCtx bundles the per-run state shared by all engines.
type runCtx struct {
	hw       *config.Hardware
	counters *comp.Counters
	gb       *mem.GlobalBuffer
	dram     *mem.DRAM
	cycles   uint64
}

func newRunCtx(hw *config.Hardware) *runCtx {
	c := comp.NewCounters()
	return &runCtx{
		hw:       hw,
		counters: c,
		gb:       mem.NewGlobalBuffer(hw, c),
		dram:     mem.NewDRAM(hw, c),
	}
}

// finish assembles the Run record.
func (r *runCtx) finish(op, layer string, m, n, k int) *stats.Run {
	mults := r.counters.Get("mn.mults")
	util := 0.0
	if r.cycles > 0 {
		util = float64(mults) / (float64(r.cycles) * float64(r.hw.MSSize))
	}
	return &stats.Run{
		Accelerator: r.hw.Name,
		Op:          op,
		Layer:       layer,
		M:           m, N: n, K: k,
		Cycles:      r.cycles,
		MACs:        mults,
		MemAccesses: r.counters.Get("gb.reads") + r.counters.Get("gb.writes"),
		Utilization: util,
		Counters:    r.counters.Snapshot(),
	}
}

// initialFill charges the unavoidable DRAM latency of streaming the first
// working set into the Global Buffer before compute can start; later
// transfers double-buffer behind compute.
func (r *runCtx) initialFill(elems int) {
	if r.hw.Preloaded {
		return
	}
	half := r.gb.CapacityElems() / 2 // double-buffered halves
	if elems > half {
		elems = half
	}
	fill := uint64(r.dram.FetchCycles(elems))
	r.cycles += fill
	r.counters.Add("dram.initial_fill_cycles", fill)
}
