package stats

import (
	"strings"
	"testing"

	"repro/internal/comp/names"
)

// TestChipRunAddGuards pins the aggregation hardening: an out-of-range
// core, a nil run, or an uninitialised aggregate must come back as a
// descriptive error instead of an index/nil-map panic.
func TestChipRunAddGuards(t *testing.T) {
	cr := NewChipRun("layer", 2, 8, 4)
	run := &Run{Cycles: 10, Counters: map[string]uint64{names.ICNWaitCycles: 3}}

	if err := cr.Add(0, run); err != nil {
		t.Fatalf("in-range Add: %v", err)
	}
	if cr.Total.Cycles != 10 || cr.PerCore[0].Cycles != 10 {
		t.Fatalf("merge lost cycles: total=%d core0=%d", cr.Total.Cycles, cr.PerCore[0].Cycles)
	}

	for _, core := range []int{-1, 2, 100} {
		err := cr.Add(core, run)
		if err == nil {
			t.Errorf("Add(core=%d) accepted an out-of-range core", core)
			continue
		}
		if !strings.Contains(err.Error(), "out of range") {
			t.Errorf("Add(core=%d) error %q does not name the problem", core, err)
		}
	}

	if err := cr.Add(0, nil); err == nil {
		t.Error("Add(nil run) did not error")
	}

	// A zero-value ChipRun (not built by NewChipRun) has no cores at all:
	// Add must refuse rather than panic, and the JSON writer path that the
	// CLI drives stays usable.
	var zero ChipRun
	if err := zero.Add(0, run); err == nil {
		t.Error("zero-value ChipRun accepted an Add")
	}

	// Partially initialised aggregates (nil slot / nil Total) are the other
	// panic shapes the guard covers.
	broken := NewChipRun("layer", 1, 8, 1)
	broken.PerCore[0] = nil
	if err := broken.Add(0, run); err == nil {
		t.Error("nil PerCore slot accepted an Add")
	}
	broken = NewChipRun("layer", 1, 8, 1)
	broken.Total = nil
	if err := broken.Add(0, run); err == nil {
		t.Error("nil Total accepted an Add")
	}
}

// TestChipRunICNWaitCyclesZeroValues pins the nil-safety of the contention
// accessor: a zero-value ChipRun, a nil receiver, and a Total with no
// counter map all read as zero wait.
func TestChipRunICNWaitCyclesZeroValues(t *testing.T) {
	var zero ChipRun
	if got := zero.ICNWaitCycles(); got != 0 {
		t.Errorf("zero-value ChipRun reports %d wait cycles", got)
	}
	var nilRun *ChipRun
	if got := nilRun.ICNWaitCycles(); got != 0 {
		t.Errorf("nil ChipRun reports %d wait cycles", got)
	}
	cr := NewChipRun("batch", 1, 8, 1)
	if got := cr.ICNWaitCycles(); got != 0 { // fresh Total: nil Counters map
		t.Errorf("fresh ChipRun reports %d wait cycles", got)
	}
	if err := cr.Add(0, &Run{Counters: map[string]uint64{names.ICNWaitCycles: 7}}); err != nil {
		t.Fatal(err)
	}
	if got := cr.ICNWaitCycles(); got != 7 {
		t.Errorf("merged wait cycles = %d, want 7", got)
	}
}
