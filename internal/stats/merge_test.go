package stats

import "testing"

func TestRunMerge(t *testing.T) {
	dst := &Run{
		Cycles: 100, MACs: 400, MemAccesses: 50,
		Counters: map[string]uint64{"mn.mults": 400, "gb.reads": 30},
	}
	src := &Run{
		Cycles: 60, MACs: 200, MemAccesses: 25,
		Counters: map[string]uint64{"mn.mults": 200, "rn.outputs": 10},
	}
	dst.Merge(src)
	if dst.Cycles != 160 || dst.MACs != 600 || dst.MemAccesses != 75 {
		t.Errorf("totals after merge: cycles=%d macs=%d mem=%d", dst.Cycles, dst.MACs, dst.MemAccesses)
	}
	want := map[string]uint64{"mn.mults": 600, "gb.reads": 30, "rn.outputs": 10}
	if len(dst.Counters) != len(want) {
		t.Fatalf("counters after merge: %v", dst.Counters)
	}
	for k, v := range want {
		if dst.Counters[k] != v {
			t.Errorf("counter %s = %d, want %d", k, dst.Counters[k], v)
		}
	}
	// src must be untouched.
	if src.Cycles != 60 || src.Counters["mn.mults"] != 200 {
		t.Error("Merge mutated its source")
	}
}

func TestRecomputeUtilization(t *testing.T) {
	r := &Run{Cycles: 100, MACs: 400}
	r.RecomputeUtilization(16)
	if got, want := r.Utilization, 400.0/(100.0*16.0); got != want {
		t.Errorf("utilization = %v, want %v", got, want)
	}

	// Zero cycles: keep whatever is there rather than dividing by zero.
	z := &Run{Utilization: 0.5}
	z.RecomputeUtilization(16)
	if z.Utilization != 0.5 {
		t.Errorf("zero-cycle run changed utilization to %v", z.Utilization)
	}
}

func TestMergeThenRecompute(t *testing.T) {
	a := &Run{Cycles: 10, MACs: 80, Counters: map[string]uint64{}}
	b := &Run{Cycles: 30, MACs: 160, Counters: map[string]uint64{}}
	a.Merge(b)
	a.RecomputeUtilization(8)
	if got, want := a.Utilization, 240.0/(40.0*8.0); got != want {
		t.Errorf("merged utilization = %v, want %v", got, want)
	}
}
