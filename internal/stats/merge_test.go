package stats

import (
	"strconv"
	"strings"
	"testing"
)

func TestRunMerge(t *testing.T) {
	dst := &Run{
		Cycles: 100, MACs: 400, MemAccesses: 50,
		Counters: map[string]uint64{"mn.mults": 400, "gb.reads": 30},
	}
	src := &Run{
		Cycles: 60, MACs: 200, MemAccesses: 25,
		Counters: map[string]uint64{"mn.mults": 200, "rn.outputs": 10},
	}
	dst.Merge(src)
	if dst.Cycles != 160 || dst.MACs != 600 || dst.MemAccesses != 75 {
		t.Errorf("totals after merge: cycles=%d macs=%d mem=%d", dst.Cycles, dst.MACs, dst.MemAccesses)
	}
	want := map[string]uint64{"mn.mults": 600, "gb.reads": 30, "rn.outputs": 10}
	if len(dst.Counters) != len(want) {
		t.Fatalf("counters after merge: %v", dst.Counters)
	}
	for k, v := range want {
		if dst.Counters[k] != v {
			t.Errorf("counter %s = %d, want %d", k, dst.Counters[k], v)
		}
	}
	// src must be untouched.
	if src.Cycles != 60 || src.Counters["mn.mults"] != 200 {
		t.Error("Merge mutated its source")
	}
}

func TestRecomputeUtilization(t *testing.T) {
	r := &Run{Cycles: 100, MACs: 400}
	r.RecomputeUtilization(16)
	if got, want := r.Utilization, 400.0/(100.0*16.0); got != want {
		t.Errorf("utilization = %v, want %v", got, want)
	}

	// Zero cycles: keep whatever is there rather than dividing by zero.
	z := &Run{Utilization: 0.5}
	z.RecomputeUtilization(16)
	if z.Utilization != 0.5 {
		t.Errorf("zero-cycle run changed utilization to %v", z.Utilization)
	}
}

func TestMergeThenRecompute(t *testing.T) {
	a := &Run{Cycles: 10, MACs: 80, Counters: map[string]uint64{}}
	b := &Run{Cycles: 30, MACs: 160, Counters: map[string]uint64{}}
	a.Merge(b)
	a.RecomputeUtilization(8)
	if got, want := a.Utilization, 240.0/(40.0*8.0); got != want {
		t.Errorf("merged utilization = %v, want %v", got, want)
	}
}

// Merging into a zero-value Run must allocate every destination map on
// demand instead of panicking, and must carry energy/area/breakdown along
// with the counters — the sparse engine merges per-group runs this way.
func TestMergeIntoZeroValueRun(t *testing.T) {
	src := &Run{
		Cycles: 100, MACs: 10, MemAccesses: 5,
		Counters:  map[string]uint64{"mn.mults": 10},
		Breakdown: map[string]CycleBreakdown{"MN": {Busy: 60, StallInput: 40}},
		Energy:    map[string]float64{"MN": 1.5},
		AreaUM2:   map[string]float64{"MN": 250},
	}
	var agg Run
	agg.Merge(src)
	agg.Merge(src)
	if agg.Cycles != 200 || agg.MACs != 20 || agg.MemAccesses != 10 {
		t.Errorf("scalars: %+v", agg)
	}
	if agg.Counters["mn.mults"] != 20 {
		t.Errorf("counters: %v", agg.Counters)
	}
	if b := agg.Breakdown["MN"]; b.Busy != 120 || b.StallInput != 80 {
		t.Errorf("breakdown: %+v", b)
	}
	if agg.Energy["MN"] != 3.0 {
		t.Errorf("energy dropped: %v", agg.Energy)
	}
	if agg.AreaUM2["MN"] != 500 {
		t.Errorf("area dropped: %v", agg.AreaUM2)
	}
}

// A source with empty maps must not allocate destination maps (merged runs
// without energy stay omitempty in JSON).
func TestMergeKeepsNilMapsForEmptySources(t *testing.T) {
	var agg Run
	agg.Merge(&Run{Cycles: 7})
	if agg.Counters != nil || agg.Breakdown != nil || agg.Energy != nil || agg.AreaUM2 != nil {
		t.Errorf("maps allocated for empty source: %+v", agg)
	}
	if agg.Cycles != 7 {
		t.Errorf("cycles: %d", agg.Cycles)
	}
}

// Multi-round merge in the sparse-engine style: several partial runs with
// disjoint and overlapping keys accumulate into one aggregate.
func TestMergeMultiRound(t *testing.T) {
	rounds := []*Run{
		{Cycles: 10, Counters: map[string]uint64{"gb.reads": 4},
			Energy: map[string]float64{"GB": 0.5}},
		{Cycles: 20, Counters: map[string]uint64{"gb.reads": 6, "mn.mults": 8},
			Energy: map[string]float64{"GB": 0.25, "MN": 1.0}},
		{Cycles: 30, Breakdown: map[string]CycleBreakdown{"MEM": {Busy: 30}}},
	}
	agg := &Run{}
	for _, r := range rounds {
		agg.Merge(r)
	}
	agg.RecomputeUtilization(4)
	if agg.Cycles != 60 {
		t.Errorf("cycles: %d", agg.Cycles)
	}
	if agg.Counters["gb.reads"] != 10 || agg.Counters["mn.mults"] != 8 {
		t.Errorf("counters: %v", agg.Counters)
	}
	if agg.Energy["GB"] != 0.75 || agg.Energy["MN"] != 1.0 {
		t.Errorf("energy: %v", agg.Energy)
	}
	if agg.Breakdown["MEM"].Busy != 30 {
		t.Errorf("breakdown: %v", agg.Breakdown)
	}
}

// The doc fix pins the semantics: utilization is cycle-weighted, so a long
// efficient layer dominates a short inefficient one.
func TestAvgUtilizationCycleWeighted(t *testing.T) {
	mr := &ModelRun{Runs: []*Run{
		{Cycles: 100, Utilization: 0.5},
		{Cycles: 300, Utilization: 1.0},
	}}
	// (0.5·100 + 1.0·300) / 400 = 0.875 — not the MAC-weighted or plain mean.
	if got := mr.AvgUtilization(); got != 0.875 {
		t.Errorf("avg utilization = %v, want 0.875", got)
	}
}

// A run without a layer name must not leave a trailing space in the counter
// file header.
func TestCounterFileNoTrailingSpaceWithoutLayer(t *testing.T) {
	r := sampleRun()
	r.Layer = ""
	s := r.CounterFile()
	header, _, ok := strings.Cut(s, "\n")
	if !ok {
		t.Fatalf("no header line:\n%s", s)
	}
	if strings.HasSuffix(header, " ") {
		t.Errorf("header has trailing space: %q", header)
	}
	if want := "# STONNE counter file: MAERI-like CONV"; header != want {
		t.Errorf("header = %q, want %q", header, want)
	}
}

// Counter-file emission and BreakdownFromCounters are inverses.
func TestBreakdownCounterFileRoundTrip(t *testing.T) {
	r := sampleRun()
	r.Breakdown = map[string]CycleBreakdown{
		"DN":  {Busy: 700, StallBandwidth: 300},
		"MEM": {Busy: 400, Idle: 600},
	}
	s := r.CounterFile()
	if !strings.Contains(s, "trace.dn.busy_cycles=700\n") ||
		!strings.Contains(s, "trace.mem.idle_cycles=600\n") {
		t.Fatalf("missing trace lines:\n%s", s)
	}
	counters := map[string]uint64{}
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, _ := strings.Cut(line, "=")
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		counters[key] = n
	}
	got := BreakdownFromCounters(counters)
	if got["DN"] != r.Breakdown["DN"] || got["MEM"] != r.Breakdown["MEM"] {
		t.Errorf("round trip: %+v", got)
	}
	if BreakdownFromCounters(map[string]uint64{"mn.mults": 1}) != nil {
		t.Error("non-trace counters produced a breakdown")
	}
}
