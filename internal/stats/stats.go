// Package stats is the simulator's Output Module (Section III): it collects
// per-run performance numbers and activity counts, renders the JSON summary
// and the customized counter file, and aggregates runs into full-model
// totals.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Run holds the result of simulating one operation (one offloaded layer).
type Run struct {
	Accelerator string `json:"accelerator"`
	Op          string `json:"op"`
	Layer       string `json:"layer,omitempty"`

	// M, N, K are the GEMM dims (per group for convolutions).
	M int `json:"m"`
	N int `json:"n"`
	K int `json:"k"`

	Cycles uint64 `json:"cycles"`
	// MACs actually performed (differs from dense volume under sparsity or
	// SNAPEA early termination).
	MACs uint64 `json:"macs"`
	// MemAccesses is GB reads + writes (the metric of Fig. 6d).
	MemAccesses uint64 `json:"mem_accesses"`
	// Utilization is average multiplier busy fraction in [0,1].
	Utilization float64 `json:"utilization"`

	Counters map[string]uint64 `json:"counters"`

	// Energy in microjoules by component, filled in by the energy model.
	Energy map[string]float64 `json:"energy_uj,omitempty"`
	// AreaUM2 by component, filled in by the area model.
	AreaUM2 map[string]float64 `json:"area_um2,omitempty"`
}

// Merge accumulates another run's raw totals into r: cycles, performed
// MACs, memory accesses and every activity counter. Derived metrics
// (Utilization) are not touched — call RecomputeUtilization once all parts
// are merged.
func (r *Run) Merge(src *Run) {
	r.Cycles += src.Cycles
	r.MACs += src.MACs
	r.MemAccesses += src.MemAccesses
	for k, v := range src.Counters {
		r.Counters[k] += v
	}
}

// RecomputeUtilization rederives the average multiplier busy fraction from
// the (possibly merged) MAC and cycle totals for a fabric of msSize
// multiplier switches. A zero-cycle run keeps its existing value.
func (r *Run) RecomputeUtilization(msSize int) {
	if r.Cycles > 0 {
		r.Utilization = float64(r.MACs) / (float64(r.Cycles) * float64(msSize))
	}
}

// TimeSeconds converts cycles at the given clock.
func (r *Run) TimeSeconds(clockGHz float64) float64 {
	return float64(r.Cycles) / (clockGHz * 1e9)
}

// TotalEnergy sums the per-component energy.
func (r *Run) TotalEnergy() float64 {
	var t float64
	for _, v := range r.Energy {
		t += v
	}
	return t
}

// WriteJSON emits the general summary file format.
func (r *Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CounterFile renders the customized counter-file format: one
// component.event=count line per activity class, sorted.
func (r *Run) CounterFile() string {
	keys := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "# STONNE counter file: %s %s %s\n", r.Accelerator, r.Op, r.Layer)
	fmt.Fprintf(&b, "cycles=%d\n", r.Cycles)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, r.Counters[k])
	}
	return b.String()
}

// ModelRun aggregates the per-layer runs of a full-model inference.
type ModelRun struct {
	Accelerator string `json:"accelerator"`
	Model       string `json:"model"`
	Runs        []*Run `json:"runs"`
}

// TotalCycles sums cycles over all offloaded layers.
func (m *ModelRun) TotalCycles() uint64 {
	var t uint64
	for _, r := range m.Runs {
		t += r.Cycles
	}
	return t
}

// TotalMACs sums performed MACs.
func (m *ModelRun) TotalMACs() uint64 {
	var t uint64
	for _, r := range m.Runs {
		t += r.MACs
	}
	return t
}

// TotalMemAccesses sums GB accesses.
func (m *ModelRun) TotalMemAccesses() uint64 {
	var t uint64
	for _, r := range m.Runs {
		t += r.MemAccesses
	}
	return t
}

// EnergyBreakdown sums per-component energy over all layers (µJ).
func (m *ModelRun) EnergyBreakdown() map[string]float64 {
	out := map[string]float64{}
	for _, r := range m.Runs {
		for k, v := range r.Energy {
			out[k] += v
		}
	}
	return out
}

// TotalEnergy sums all components (µJ).
func (m *ModelRun) TotalEnergy() float64 {
	var t float64
	for _, v := range m.EnergyBreakdown() {
		t += v
	}
	return t
}

// AvgUtilization is the MAC-weighted mean multiplier utilization.
func (m *ModelRun) AvgUtilization() float64 {
	var wsum, w float64
	for _, r := range m.Runs {
		wsum += r.Utilization * float64(r.Cycles)
		w += float64(r.Cycles)
	}
	if w == 0 {
		return 0
	}
	return wsum / w
}

// WriteJSON emits the aggregated summary.
func (m *ModelRun) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
