// Package stats is the simulator's Output Module (Section III): it collects
// per-run performance numbers and activity counts, renders the JSON summary
// and the customized counter file, and aggregates runs into full-model
// totals.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Run holds the result of simulating one operation (one offloaded layer).
type Run struct {
	Accelerator string `json:"accelerator"`
	Op          string `json:"op"`
	Layer       string `json:"layer,omitempty"`

	// M, N, K are the GEMM dims (per group for convolutions).
	M int `json:"m"`
	N int `json:"n"`
	K int `json:"k"`

	Cycles uint64 `json:"cycles"`
	// MACs actually performed (differs from dense volume under sparsity or
	// SNAPEA early termination).
	MACs uint64 `json:"macs"`
	// MemAccesses is GB reads + writes (the metric of Fig. 6d).
	MemAccesses uint64 `json:"mem_accesses"`
	// Utilization is average multiplier busy fraction in [0,1].
	Utilization float64 `json:"utilization"`

	Counters map[string]uint64 `json:"counters"`

	// Breakdown is the per-tier cycle attribution filled in when the run
	// was traced (internal/trace): for every tier the busy/stall/drain/idle
	// cycle counts sum exactly to Cycles.
	Breakdown map[string]CycleBreakdown `json:"breakdown,omitempty"`

	// Energy in microjoules by component, filled in by the energy model.
	Energy map[string]float64 `json:"energy_uj,omitempty"`
	// AreaUM2 by component, filled in by the area model.
	AreaUM2 map[string]float64 `json:"area_um2,omitempty"`
}

// CycleBreakdown attributes one tier's share of a run's cycles: exactly one
// class per cycle, so Total() equals the run's cycle count.
type CycleBreakdown struct {
	Busy           uint64 `json:"busy"`
	StallInput     uint64 `json:"stall_input"`
	StallBandwidth uint64 `json:"stall_bandwidth"`
	Drain          uint64 `json:"drain"`
	Idle           uint64 `json:"idle"`
}

// Total sums all attribution classes.
func (b CycleBreakdown) Total() uint64 {
	return b.Busy + b.StallInput + b.StallBandwidth + b.Drain + b.Idle
}

// Accumulate adds another breakdown's counts into b.
func (b *CycleBreakdown) Accumulate(o CycleBreakdown) {
	b.Busy += o.Busy
	b.StallInput += o.StallInput
	b.StallBandwidth += o.StallBandwidth
	b.Drain += o.Drain
	b.Idle += o.Idle
}

// Merge accumulates another run's raw totals into r: cycles, performed
// MACs, memory accesses, every activity counter, the cycle breakdown, and
// the energy/area maps — allocating destination maps on demand so merging
// into a zero-value Run works. Derived metrics (Utilization) are not
// touched — call RecomputeUtilization once all parts are merged.
func (r *Run) Merge(src *Run) {
	r.Cycles += src.Cycles
	r.MACs += src.MACs
	r.MemAccesses += src.MemAccesses
	if len(src.Counters) > 0 && r.Counters == nil {
		r.Counters = make(map[string]uint64, len(src.Counters))
	}
	for k, v := range src.Counters {
		r.Counters[k] += v
	}
	if len(src.Breakdown) > 0 && r.Breakdown == nil {
		r.Breakdown = make(map[string]CycleBreakdown, len(src.Breakdown))
	}
	for tier, b := range src.Breakdown {
		agg := r.Breakdown[tier]
		agg.Accumulate(b)
		r.Breakdown[tier] = agg
	}
	if len(src.Energy) > 0 && r.Energy == nil {
		r.Energy = make(map[string]float64, len(src.Energy))
	}
	for k, v := range src.Energy {
		r.Energy[k] += v
	}
	if len(src.AreaUM2) > 0 && r.AreaUM2 == nil {
		r.AreaUM2 = make(map[string]float64, len(src.AreaUM2))
	}
	for k, v := range src.AreaUM2 {
		r.AreaUM2[k] += v
	}
}

// RecomputeUtilization rederives the average multiplier busy fraction from
// the (possibly merged) MAC and cycle totals for a fabric of msSize
// multiplier switches. A zero-cycle run keeps its existing value.
func (r *Run) RecomputeUtilization(msSize int) {
	if r.Cycles > 0 {
		r.Utilization = float64(r.MACs) / (float64(r.Cycles) * float64(msSize))
	}
}

// TimeSeconds converts cycles at the given clock.
func (r *Run) TimeSeconds(clockGHz float64) float64 {
	return float64(r.Cycles) / (clockGHz * 1e9)
}

// TotalEnergy sums the per-component energy. The walk is over sorted
// component names: float addition is not associative, so summing in map
// iteration order would make the total differ in the last bits from run
// to run, breaking byte-identical summary files.
func (r *Run) TotalEnergy() float64 {
	return sumSorted(r.Energy)
}

// sumSorted adds the values of a float map in sorted-key order so the
// result is the same every call.
func sumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var t float64
	for _, k := range keys {
		t += m[k]
	}
	return t
}

// WriteJSON emits the general summary file format.
func (r *Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// breakdownClasses maps each CycleBreakdown field to its counter-file key
// suffix, in emission order.
var breakdownClasses = []struct {
	suffix string
	get    func(CycleBreakdown) uint64
	set    func(*CycleBreakdown, uint64)
}{
	{"busy_cycles", func(b CycleBreakdown) uint64 { return b.Busy }, func(b *CycleBreakdown, v uint64) { b.Busy = v }},
	{"stall_input_cycles", func(b CycleBreakdown) uint64 { return b.StallInput }, func(b *CycleBreakdown, v uint64) { b.StallInput = v }},
	{"stall_bandwidth_cycles", func(b CycleBreakdown) uint64 { return b.StallBandwidth }, func(b *CycleBreakdown, v uint64) { b.StallBandwidth = v }},
	{"drain_cycles", func(b CycleBreakdown) uint64 { return b.Drain }, func(b *CycleBreakdown, v uint64) { b.Drain = v }},
	{"idle_cycles", func(b CycleBreakdown) uint64 { return b.Idle }, func(b *CycleBreakdown, v uint64) { b.Idle = v }},
}

// CounterFile renders the customized counter-file format: one
// component.event=count line per activity class, sorted, followed by the
// cycle-attribution lines (trace.<tier>.<class>=count) when the run was
// traced.
func (r *Run) CounterFile() string {
	keys := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	header := strings.TrimRight(fmt.Sprintf("# STONNE counter file: %s %s %s", r.Accelerator, r.Op, r.Layer), " ")
	fmt.Fprintf(&b, "%s\n", header)
	fmt.Fprintf(&b, "cycles=%d\n", r.Cycles)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, r.Counters[k])
	}
	if len(r.Breakdown) > 0 {
		tiers := make([]string, 0, len(r.Breakdown))
		for tier := range r.Breakdown {
			tiers = append(tiers, tier)
		}
		sort.Strings(tiers)
		for _, tier := range tiers {
			bd := r.Breakdown[tier]
			for _, c := range breakdownClasses {
				fmt.Fprintf(&b, "trace.%s.%s=%d\n", strings.ToLower(tier), c.suffix, c.get(bd))
			}
		}
	}
	return b.String()
}

// BreakdownFromCounters reconstructs a cycle breakdown from the
// trace.<tier>.<class> lines of a parsed counter file (the inverse of the
// CounterFile emission). It returns nil when no trace lines are present.
func BreakdownFromCounters(counters map[string]uint64) map[string]CycleBreakdown {
	var out map[string]CycleBreakdown
	for key, v := range counters {
		rest, ok := strings.CutPrefix(key, "trace.")
		if !ok {
			continue
		}
		tier, suffix, ok := strings.Cut(rest, ".")
		if !ok {
			continue
		}
		for _, c := range breakdownClasses {
			if suffix != c.suffix {
				continue
			}
			if out == nil {
				out = map[string]CycleBreakdown{}
			}
			name := strings.ToUpper(tier)
			bd := out[name]
			c.set(&bd, v)
			out[name] = bd
		}
	}
	return out
}

// ModelRun aggregates the per-layer runs of a full-model inference.
type ModelRun struct {
	Accelerator string `json:"accelerator"`
	Model       string `json:"model"`
	Runs        []*Run `json:"runs"`
}

// TotalCycles sums cycles over all offloaded layers.
func (m *ModelRun) TotalCycles() uint64 {
	var t uint64
	for _, r := range m.Runs {
		t += r.Cycles
	}
	return t
}

// TotalMACs sums performed MACs.
func (m *ModelRun) TotalMACs() uint64 {
	var t uint64
	for _, r := range m.Runs {
		t += r.MACs
	}
	return t
}

// TotalMemAccesses sums GB accesses.
func (m *ModelRun) TotalMemAccesses() uint64 {
	var t uint64
	for _, r := range m.Runs {
		t += r.MemAccesses
	}
	return t
}

// EnergyBreakdown sums per-component energy over all layers (µJ).
func (m *ModelRun) EnergyBreakdown() map[string]float64 {
	out := map[string]float64{}
	for _, r := range m.Runs {
		for k, v := range r.Energy {
			out[k] += v
		}
	}
	return out
}

// TotalEnergy sums all components (µJ) in sorted-component order, for the
// same determinism reason as Run.TotalEnergy.
func (m *ModelRun) TotalEnergy() float64 {
	return sumSorted(m.EnergyBreakdown())
}

// AvgUtilization is the cycle-weighted mean multiplier utilization: each
// layer's busy fraction weighted by how long it ran, i.e. the average busy
// fraction over the whole model execution.
func (m *ModelRun) AvgUtilization() float64 {
	var wsum, w float64
	for _, r := range m.Runs {
		wsum += r.Utilization * float64(r.Cycles)
		w += float64(r.Cycles)
	}
	if w == 0 {
		return 0
	}
	return wsum / w
}

// WriteJSON emits the aggregated summary.
func (m *ModelRun) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
