package stats

import (
	"testing"
	"time"
)

// TestPercentileNearestRank pins the nearest-rank definition on the exact
// small-sample case the old truncating form got wrong: with 50 samples,
// int(0.99*(50-1)) = 48 reads the second-largest sample as the p99. The
// nearest-rank index ceil(0.99*50)-1 = 49 reads the maximum.
func TestPercentileNearestRank(t *testing.T) {
	sorted := make([]time.Duration, 50)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{0.99, 50 * time.Millisecond}, // the regression: tail must be the max
		{1.00, 50 * time.Millisecond},
		{0.90, 45 * time.Millisecond},
		{0.50, 25 * time.Millisecond},
		{0.00, 1 * time.Millisecond},
		{-1.0, 1 * time.Millisecond}, // clamped
		{2.00, 50 * time.Millisecond},
	} {
		if got := PercentileDuration(sorted, tc.p); got != tc.want {
			t.Errorf("p=%g: got %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := PercentileDuration(nil, 0.99); got != 0 {
		t.Errorf("empty slice: got %v, want 0", got)
	}
	one := []time.Duration{7 * time.Millisecond}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := PercentileDuration(one, p); got != 7*time.Millisecond {
			t.Errorf("single sample p=%g: got %v", p, got)
		}
	}
}

func TestSummarizeLatencies(t *testing.T) {
	// Unsorted on purpose: Summarize must sort a copy.
	samples := []time.Duration{
		4 * time.Millisecond, 1 * time.Millisecond,
		3 * time.Millisecond, 2 * time.Millisecond,
	}
	s := SummarizeLatencies(samples)
	if s.Count != 4 {
		t.Errorf("count %d, want 4", s.Count)
	}
	// Compare through integer durations: float equality is reserved to
	// internal/check.
	asDur := func(msv float64) time.Duration { return time.Duration(msv * float64(time.Millisecond)) }
	if asDur(s.MinMs) != 1*time.Millisecond || asDur(s.MaxMs) != 4*time.Millisecond {
		t.Errorf("min/max %g/%g ms", s.MinMs, s.MaxMs)
	}
	if asDur(s.MeanMs) != 2500*time.Microsecond {
		t.Errorf("mean %g ms, want 2.5", s.MeanMs)
	}
	if asDur(s.P50Ms) != 2*time.Millisecond { // ceil(0.5*4)=2 -> sorted[1]
		t.Errorf("p50 %g ms, want 2", s.P50Ms)
	}
	if asDur(s.P99Ms) != 4*time.Millisecond {
		t.Errorf("p99 %g ms, want 4 (the max)", s.P99Ms)
	}
	if samples[0] != 4*time.Millisecond {
		t.Error("Summarize mutated the input slice")
	}

	if z := SummarizeLatencies(nil); z.Count != 0 || asDur(z.P99Ms) != 0 {
		t.Errorf("empty summary: %+v", z)
	}
}
