package stats

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleRun() *Run {
	return &Run{
		Accelerator: "MAERI-like", Op: "CONV", Layer: "conv1",
		M: 8, N: 25, K: 54,
		Cycles: 1000, MACs: 5000, MemAccesses: 700, Utilization: 0.5,
		Counters: map[string]uint64{"mn.mults": 5000, "gb.reads": 600},
		Energy:   map[string]float64{"MN": 1.5, "RN": 3.0},
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRun().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Run
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Cycles != 1000 || decoded.Layer != "conv1" || decoded.N != 25 {
		t.Errorf("round trip: %+v", decoded)
	}
}

func TestCounterFileFormat(t *testing.T) {
	s := sampleRun().CounterFile()
	if !strings.Contains(s, "cycles=1000\n") {
		t.Errorf("missing cycles line:\n%s", s)
	}
	if !strings.Contains(s, "gb.reads=600\n") || !strings.Contains(s, "mn.mults=5000\n") {
		t.Errorf("missing counters:\n%s", s)
	}
	// Sorted order: gb before mn.
	if strings.Index(s, "gb.reads") > strings.Index(s, "mn.mults") {
		t.Error("counters not sorted")
	}
}

func TestRunHelpers(t *testing.T) {
	r := sampleRun()
	if got := r.TimeSeconds(1); got != 1e-6 {
		t.Errorf("time %v", got)
	}
	if got := r.TotalEnergy(); got != 4.5 {
		t.Errorf("energy %v", got)
	}
}

func TestModelRunAggregation(t *testing.T) {
	mr := &ModelRun{
		Accelerator: "X", Model: "Y",
		Runs: []*Run{
			{Cycles: 100, MACs: 10, MemAccesses: 5, Utilization: 0.2,
				Energy: map[string]float64{"MN": 1}},
			{Cycles: 300, MACs: 30, MemAccesses: 15, Utilization: 0.6,
				Energy: map[string]float64{"MN": 2, "RN": 4}},
		},
	}
	if mr.TotalCycles() != 400 || mr.TotalMACs() != 40 || mr.TotalMemAccesses() != 20 {
		t.Errorf("totals: %d %d %d", mr.TotalCycles(), mr.TotalMACs(), mr.TotalMemAccesses())
	}
	if got := mr.TotalEnergy(); got != 7 {
		t.Errorf("energy %v", got)
	}
	br := mr.EnergyBreakdown()
	if br["MN"] != 3 || br["RN"] != 4 {
		t.Errorf("breakdown %v", br)
	}
	// Cycle-weighted utilization: (0.2·100 + 0.6·300)/400 = 0.5.
	if got := mr.AvgUtilization(); got != 0.5 {
		t.Errorf("avg util %v", got)
	}
	var buf bytes.Buffer
	if err := mr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyModelRun(t *testing.T) {
	mr := &ModelRun{}
	if mr.TotalCycles() != 0 || mr.AvgUtilization() != 0 || mr.TotalEnergy() != 0 {
		t.Error("empty model run not zero")
	}
}

// TestTotalEnergyOrderIndependent pins the sorted-walk fix for summing
// per-component energy: 1e16+1 rounds back to 1e16 in float64, so these
// three values total 0 when added in sorted-key order (a, b, c) but 1 in
// the order a, c, b. Before the fix the walk used Go's randomized map
// iteration order and the total flipped between the two from call to call.
func TestTotalEnergyOrderIndependent(t *testing.T) {
	r := &Run{Energy: map[string]float64{"a": 1e16, "b": 1, "c": -1e16}}
	for i := 0; i < 50; i++ {
		if got := r.TotalEnergy(); got != 0 {
			t.Fatalf("call %d: TotalEnergy = %v, want 0 (map-order drift)", i, got)
		}
	}
}

// TestModelTotalEnergyOrderIndependent is the same probe through the
// model-level aggregation path.
func TestModelTotalEnergyOrderIndependent(t *testing.T) {
	mr := &ModelRun{Runs: []*Run{
		{Energy: map[string]float64{"a": 1e16, "b": 1}},
		{Energy: map[string]float64{"c": -1e16}},
	}}
	for i := 0; i < 50; i++ {
		if got := mr.TotalEnergy(); got != 0 {
			t.Fatalf("call %d: TotalEnergy = %v, want 0 (map-order drift)", i, got)
		}
	}
}
