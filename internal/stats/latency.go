package stats

import (
	"math"
	"sort"
	"time"
)

// LatencySummary condenses a set of request latencies into the serving
// layer's standard report shape: count, min/mean/max and nearest-rank
// percentiles, all in milliseconds. It is shared by the stonned /stats
// endpoint, the stonneload harness and the trace-replay reports so every
// surface quotes percentiles with the same (tail-inclusive) definition.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MinMs  float64 `json:"min_ms"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// PercentileDuration returns the p-quantile of sorted (ascending) samples
// using the nearest-rank definition: the smallest sample such that at
// least p of the distribution is at or below it, i.e. index ceil(p·n)-1.
// Unlike the truncating int(p·(n-1)) form it never under-reports the tail
// — the p99 of 50 samples is the maximum, not the 49th of 50. p is
// clamped to [0,1]; an empty slice yields 0.
func PercentileDuration(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// SummarizeLatencies computes the summary of samples (order irrelevant;
// the input slice is not modified). Callers must pass only the latencies
// that belong in the distribution — failed requests are reported as a
// separate count, never mixed into the percentiles.
func SummarizeLatencies(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{
		Count:  uint64(len(sorted)),
		MinMs:  ms(sorted[0]),
		MeanMs: ms(sum) / float64(len(sorted)),
		P50Ms:  ms(PercentileDuration(sorted, 0.50)),
		P90Ms:  ms(PercentileDuration(sorted, 0.90)),
		P99Ms:  ms(PercentileDuration(sorted, 0.99)),
		MaxMs:  ms(sorted[len(sorted)-1]),
	}
}
