package stats

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/comp/names"
)

// ChipRun aggregates a multi-core chip execution (sim.Chip): per-core
// merged totals, the chip-wide merged total, and the makespan — the chip
// wall-clock, which is what overlapping cores actually improve. Per-op
// cycles accumulate in the merged Runs, so Total.Cycles is the serial sum
// of work; MakespanCycles falls below it exactly when the chip ran stages
// in parallel.
type ChipRun struct {
	Placement string `json:"placement"`
	Cores     int    `json:"cores"`
	Banks     int    `json:"banks"`
	Streams   int    `json:"streams"`

	// MakespanCycles is the chip cycle at which the last stage of the last
	// stream completed.
	MakespanCycles uint64 `json:"makespan_cycles"`

	// PerCore merges every op scheduled onto each core; index is the core.
	PerCore []*Run `json:"per_core"`
	// Total merges every op on the chip.
	Total *Run `json:"total"`
}

// NewChipRun builds an empty aggregate for a chip of the given shape.
func NewChipRun(placement string, cores, banks, streams int) *ChipRun {
	per := make([]*Run, cores)
	for i := range per {
		per[i] = &Run{}
	}
	return &ChipRun{
		Placement: placement,
		Cores:     cores,
		Banks:     banks,
		Streams:   streams,
		PerCore:   per,
		Total:     &Run{},
	}
}

// Add merges one op's run into the core's and the chip's totals. An
// out-of-range core, a nil run, or a ChipRun that was not built by
// NewChipRun (nil PerCore entries / Total) is reported as a descriptive
// error instead of panicking deep inside aggregation.
func (c *ChipRun) Add(core int, r *Run) error {
	if r == nil {
		return fmt.Errorf("stats: chip run: nil op run for core %d", core)
	}
	if core < 0 || core >= len(c.PerCore) {
		return fmt.Errorf("stats: chip run: core %d out of range (chip has %d cores)", core, len(c.PerCore))
	}
	if c.PerCore[core] == nil || c.Total == nil {
		return fmt.Errorf("stats: chip run: aggregate not initialised (use NewChipRun)")
	}
	c.PerCore[core].Merge(r)
	c.Total.Merge(r)
	return nil
}

// Throughput is inference streams completed per million chip cycles — the
// scaling metric of the multi-core figure and benchmark.
func (c *ChipRun) Throughput() float64 {
	if c.MakespanCycles == 0 {
		return 0
	}
	return float64(c.Streams) * 1e6 / float64(c.MakespanCycles)
}

// ICNWaitCycles is the chip-wide contention delay: cycles transfers spent
// queued behind other cores' traffic at the shared memory system. Zero on
// 1-core chips, which never touch the interconnect, and on a zero-value
// ChipRun (nil Total or a Total whose counter map was never allocated).
func (c *ChipRun) ICNWaitCycles() uint64 {
	if c == nil || c.Total == nil {
		return 0
	}
	return c.Total.Counters[names.ICNWaitCycles]
}

// WriteJSON emits the aggregate summary.
func (c *ChipRun) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
