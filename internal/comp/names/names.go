// Package names is the single vocabulary of activity-counter names shared
// by the hardware modules, the engines, the energy model and the results
// path. Every counter a module emits and every counter a consumer reads is
// spelled through one of these constants, so a typo'd name is a compile
// error instead of a silently-zero counter in a report.
//
// The dotted prefix is the component tier the event belongs to: gb (Global
// Buffer), dram, dn (distribution network), mn (multiplier network), rn
// (reduction network), ctrl (memory controller), snapea (the use-case-2
// controller extensions) and sched (the sparse filter scheduler).
package names

// Global Buffer.
const (
	GBReads     = "gb.reads"
	GBWrites    = "gb.writes"
	GBMetaReads = "gb.meta_reads"
)

// Off-chip DRAM model.
const (
	DRAMReads             = "dram.reads"
	DRAMWrites            = "dram.writes"
	DRAMRowActivations    = "dram.row_activations"
	DRAMStallEvents       = "dram.stall_events"
	DRAMInitialFillCycles = "dram.initial_fill_cycles"
)

// Distribution network.
const (
	DNInjections       = "dn.injections"
	DNLinkTraversals   = "dn.link_traversals"
	DNSwitchTraversals = "dn.switch_traversals"
	DNActiveCycles     = "dn.active_cycles"
	DNStallCycles      = "dn.stall_cycles"
)

// Multiplier network.
const (
	MNMults            = "mn.mults"
	MNForwards         = "mn.forwards"
	MNWeightLoads      = "mn.weight_loads"
	MNActiveCycles     = "mn.active_cycles"
	MNReconfigurations = "mn.reconfigurations"
	MNComparisons      = "mn.comparisons"
	MNFifoPushes       = "mn.fifo.pushes"
	MNFifoPops         = "mn.fifo.pops"
)

// Reduction network.
const (
	RNAddersLRN    = "rn.adders_lrn"
	RNAddersFAN    = "rn.adders_fan"
	RNAdders3to1   = "rn.adders_3to1"
	RNAccAccesses  = "rn.acc_accesses"
	RNOutputs      = "rn.outputs"
	RNInputStalls  = "rn.input_stalls"
	RNOutputStalls = "rn.output_stalls"
	RNActiveCycles = "rn.active_cycles"
)

// Memory controller.
const (
	CtrlReloadWaitCycles = "ctrl.reload_wait_cycles"
	CtrlDRAMWaitCycles   = "ctrl.dram_wait_cycles"
)

// SNAPEA controller extensions (use case 2).
const (
	SNAPEASignChecks = "snapea.sign_checks"
	SNAPEACuts       = "snapea.cuts"
	SNAPEASavedMACs  = "snapea.saved_macs"
)

// Sparse filter scheduler (use case 3).
const (
	SchedRounds = "sched.rounds"
)

// Chip-level shared-memory interconnect (sim.Chip). These counters exist
// only on multi-core runs — a core reaching DRAM through a private port
// never touches them, which is what keeps 1-core chip counter sets
// byte-identical to the bare-kernel path.
const (
	// ICNRequests counts transfers granted to this core by the shared
	// interconnect (prefetches and blocking fetches).
	ICNRequests = "icn.requests"
	// ICNBusyCycles is the time the interconnect spent serving this core's
	// transfers (grant to completion).
	ICNBusyCycles = "icn.busy_cycles"
	// ICNWaitCycles is the contention delay: cycles this core's transfers
	// waited for the link or their bank behind other cores' traffic.
	ICNWaitCycles = "icn.wait_cycles"
)

// Observability layer. TraceFFSkippedCycles counts the cycles the kernel's
// event-driven fast-forward skipped instead of ticking; it exists only on
// traced runs so untraced counter sets stay identical to the ticked loop's.
const (
	TraceFFSkippedCycles = "trace.ff.skipped_cycles"
)
