package comp

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/comp/names"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("a.x", 3)
	c.Add("a.x", 2)
	c.Add("b.y", 1)
	if c.Get("a.x") != 5 || c.Get("b.y") != 1 || c.Get("missing") != 0 {
		t.Errorf("counts wrong: %v", c.Snapshot())
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "a.x" || keys[1] != "b.y" {
		t.Errorf("keys not sorted: %v", keys)
	}
	other := NewCounters()
	other.Add("a.x", 10)
	other.Add("c.z", 7)
	c.Merge(other)
	if c.Get("a.x") != 15 || c.Get("c.z") != 7 {
		t.Errorf("merge wrong: %v", c.Snapshot())
	}
	s := c.String()
	if !strings.Contains(s, "a.x=15\n") {
		t.Errorf("render: %q", s)
	}
	snap := c.Snapshot()
	snap["a.x"] = 999
	if c.Get("a.x") != 15 {
		t.Error("snapshot aliases internal map")
	}
}

func TestFIFOBasics(t *testing.T) {
	f := NewFIFO("t", 2)
	if !f.Empty() || f.Full() {
		t.Fatal("fresh FIFO state wrong")
	}
	if !f.Push(Packet{Seq: 1}) || !f.Push(Packet{Seq: 2}) {
		t.Fatal("pushes rejected")
	}
	if !f.Full() || f.Push(Packet{Seq: 3}) {
		t.Fatal("overfull push accepted")
	}
	if p, ok := f.Peek(); !ok || p.Seq != 1 {
		t.Fatalf("peek: %v %v", p, ok)
	}
	p, ok := f.Pop()
	if !ok || p.Seq != 1 {
		t.Fatalf("pop order wrong: %v", p)
	}
	pushes, pops, maxOcc := f.Stats()
	if pushes != 2 || pops != 1 || maxOcc != 2 {
		t.Errorf("stats %d %d %d", pushes, pops, maxOcc)
	}
	c := NewCounters()
	f.AddTo(c, names.MNFifoPushes, names.MNFifoPops)
	if c.Get(names.MNFifoPushes) != 2 || c.Get(names.MNFifoPops) != 1 {
		t.Error("AddTo wrong")
	}
}

func TestFIFOUnbounded(t *testing.T) {
	f := NewFIFO("u", 0)
	for i := 0; i < 1000; i++ {
		if !f.Push(Packet{Seq: i}) {
			t.Fatal("unbounded FIFO rejected push")
		}
	}
	if f.Full() {
		t.Error("unbounded FIFO reports full")
	}
	if f.Len() != 1000 {
		t.Errorf("len %d", f.Len())
	}
}

// Property: a FIFO preserves order and never loses packets, including
// through the internal compaction path.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(ops []bool) bool {
		fifo := NewFIFO("p", 0)
		nextPush, nextPop := 0, 0
		for _, push := range ops {
			if push {
				fifo.Push(Packet{Seq: nextPush})
				nextPush++
			} else if p, ok := fifo.Pop(); ok {
				if p.Seq != nextPop {
					return false
				}
				nextPop++
			}
		}
		for {
			p, ok := fifo.Pop()
			if !ok {
				break
			}
			if p.Seq != nextPop {
				return false
			}
			nextPop++
		}
		return nextPop == nextPush
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFIFOCompaction(t *testing.T) {
	f := NewFIFO("c", 0)
	// Interleave enough pushes/pops to trigger the head>64 compaction.
	for i := 0; i < 500; i++ {
		f.Push(Packet{Seq: i})
	}
	for i := 0; i < 400; i++ {
		p, ok := f.Pop()
		if !ok || p.Seq != i {
			t.Fatalf("pop %d: %v %v", i, p, ok)
		}
	}
	for i := 500; i < 600; i++ {
		f.Push(Packet{Seq: i})
	}
	for i := 400; i < 600; i++ {
		p, ok := f.Pop()
		if !ok || p.Seq != i {
			t.Fatalf("post-compaction pop %d: %v %v", i, p, ok)
		}
	}
}

func TestPacketKindString(t *testing.T) {
	for k, want := range map[PacketKind]string{
		WeightPkt: "weight", InputPkt: "input", PsumPkt: "psum", OutputPkt: "output",
	} {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
}
