// Package comp provides the primitives every simulated hardware module is
// built from: the Component interface with its per-clock Cycle method
// (mirroring STONNE's class diagram, Fig. 4 of the paper), bounded FIFOs,
// data packets, and the hierarchical activity counters that feed the
// table-based energy model.
package comp

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Component is any hardware module that advances one clock cycle at a time.
// The accelerator's run loop ticks every configured component once per
// simulated cycle in pipeline order.
type Component interface {
	Name() string
	Cycle()
}

// Unbounded is the Lookahead return value meaning "steady for any horizon":
// the component never limits a fast-forward skip; something else (another
// component, the controller, the watchdog) provides the finite bound.
const Unbounded = ^uint64(0)

// Lookahead is the optional fast-forward capability of a ticked component.
// A component implementing it certifies, cycle-accurately, how far ahead
// its Cycle method is predictable without running it:
//
//   - Lookahead returns n > 0 when the next n Cycle calls would be no-ops
//     apart from state that Advance can replay in closed form (counters,
//     internal clocks). It returns 0 when the component must actually tick.
//     The certificate assumes no external input arrives during the skip —
//     the kernel guarantees that by skipping only when every tick
//     participant and the controller agree on a nonzero bound.
//   - Advance(n) replays n skipped cycles at once. After Advance(n) the
//     component must be in the exact state n individual Cycle calls would
//     have produced — bit-exact, including every activity counter.
type Lookahead interface {
	Lookahead() uint64
	Advance(n uint64)
}

// Counter names are interned once into a process-wide registry so every
// Counters instance can store its values in a flat slice indexed by the
// interned id. The registry only grows (ids are never reused); after the
// first simulation has registered the vocabulary, lookups take a read lock
// and the per-cycle hot path takes no lock at all — it holds pre-resolved
// handles.
var registry = struct {
	sync.RWMutex
	ids   map[string]int
	names []string
}{ids: make(map[string]int)}

// counterID interns name, returning its stable id.
func counterID(name string) int {
	registry.RLock()
	id, ok := registry.ids[name]
	registry.RUnlock()
	if ok {
		return id
	}
	registry.Lock()
	defer registry.Unlock()
	if id, ok := registry.ids[name]; ok {
		return id
	}
	id = len(registry.names)
	registry.ids[name] = id
	registry.names = append(registry.names, name)
	return id
}

// counterNames returns the first n interned names. The returned slice is
// safe to read without the lock: entries are immutable once published and
// append reallocation leaves old backing arrays intact.
func counterNames(n int) []string {
	registry.RLock()
	defer registry.RUnlock()
	return registry.names[:n:n]
}

// Counters accumulates named activity counts ("mn.mults",
// "dn.link_traversals", "gb.reads", ...). The energy model multiplies each
// count by a per-event cost table, exactly as STONNE's counter file +
// Accelergy-style script does.
//
// Values live in a flat slice indexed by the interned counter id; the
// string-keyed methods resolve names on every call and exist for cold paths
// (construction, snapshots, tests). Per-cycle call sites pre-resolve a
// Counter handle once and use Counter.Add, which is a bare slice update.
// A Counters instance is not safe for concurrent use — each engine run owns
// a private instance (what makes whole runs embarrassingly parallel).
type Counters struct {
	vals    []uint64
	touched []bool
}

// Counter is a handle to one named counter of one Counters instance,
// pre-resolved so the per-cycle increment does no string hashing.
type Counter struct {
	c  *Counters
	id int32
}

// Add increments the counter by n. Adding zero still marks the counter as
// present in snapshots, matching the map semantics of the string API.
func (h Counter) Add(n uint64) {
	h.c.vals[h.id] += n
	h.c.touched[h.id] = true
}

// Value returns the counter's current value.
func (h Counter) Value() uint64 { return h.c.vals[h.id] }

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{} }

// ensure grows the value storage to cover id.
func (c *Counters) ensure(id int) {
	if id < len(c.vals) {
		return
	}
	vals := make([]uint64, id+1)
	copy(vals, c.vals)
	c.vals = vals
	touched := make([]bool, id+1)
	copy(touched, c.touched)
	c.touched = touched
}

// Counter resolves (interning if needed) a handle for the named counter.
// Resolve once at component construction; call Add on the hot path.
func (c *Counters) Counter(name string) Counter {
	id := counterID(name)
	c.ensure(id)
	return Counter{c: c, id: int32(id)}
}

// Add increments counter key by n (string-keyed cold path).
func (c *Counters) Add(key string, n uint64) { c.Counter(key).Add(n) }

// Get returns the current value of key (0 if never touched).
func (c *Counters) Get(key string) uint64 {
	registry.RLock()
	id, ok := registry.ids[key]
	registry.RUnlock()
	if !ok || id >= len(c.vals) {
		return 0
	}
	return c.vals[id]
}

// Keys returns all counter names in sorted order.
func (c *Counters) Keys() []string {
	names := counterNames(len(c.vals))
	keys := make([]string, 0, len(c.vals))
	for id, t := range c.touched {
		if t {
			keys = append(keys, names[id])
		}
	}
	sort.Strings(keys)
	return keys
}

// Snapshot returns a copy of the counter map.
func (c *Counters) Snapshot() map[string]uint64 {
	names := counterNames(len(c.vals))
	out := make(map[string]uint64, len(c.vals))
	for id, t := range c.touched {
		if t {
			out[names[id]] = c.vals[id]
		}
	}
	return out
}

// Merge adds every counter of other into c.
func (c *Counters) Merge(other *Counters) {
	for id, t := range other.touched {
		if !t {
			continue
		}
		c.ensure(id)
		c.vals[id] += other.vals[id]
		c.touched[id] = true
	}
}

// String renders the counters one per line in the customized counter-file
// format of the output module.
func (c *Counters) String() string {
	snap := c.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, snap[k])
	}
	return b.String()
}

// PacketKind tags what a value travelling the fabric represents.
type PacketKind uint8

const (
	WeightPkt PacketKind = iota
	InputPkt
	PsumPkt
	OutputPkt
)

func (k PacketKind) String() string {
	switch k {
	case WeightPkt:
		return "weight"
	case InputPkt:
		return "input"
	case PsumPkt:
		return "psum"
	case OutputPkt:
		return "output"
	default:
		return fmt.Sprintf("PacketKind(%d)", int(k))
	}
}

// Packet is one element in flight through the fabric.
type Packet struct {
	Value float32
	Kind  PacketKind
	// VN identifies the virtual neuron / cluster the value belongs to.
	VN int
	// Seq is the element's position within its dot product or stream.
	Seq int
	// Gen is the stationary-configuration generation. A weight packet with
	// Gen != 0 lands in the switch's shadow register; an input packet with
	// Gen != 0 promotes the matching shadow to the live stationary before
	// multiplying — SIGMA-style double-buffered reconfiguration that lets
	// consecutive rounds pipeline. Gen 0 is the barrier-synchronized dense
	// path.
	Gen uint32
	// Last marks the final contribution to an accumulation.
	Last bool
}

// FIFO is a bounded queue of packets with push/pop activity accounting.
// A zero-capacity FIFO is unbounded (used for result collection).
type FIFO struct {
	name     string
	capacity int
	buf      []Packet
	head     int

	pushes, pops, maxOcc uint64
}

// NewFIFO returns a FIFO with the given capacity (0 = unbounded).
func NewFIFO(name string, capacity int) *FIFO {
	return &FIFO{name: name, capacity: capacity}
}

// Name returns the FIFO's instance name.
func (f *FIFO) Name() string { return f.name }

// Len returns the current occupancy.
func (f *FIFO) Len() int { return len(f.buf) - f.head }

// Full reports whether a push would be rejected.
func (f *FIFO) Full() bool { return f.capacity > 0 && f.Len() >= f.capacity }

// Empty reports whether the FIFO holds no packets.
func (f *FIFO) Empty() bool { return f.Len() == 0 }

// Push enqueues p; it returns false (and drops nothing) when full.
func (f *FIFO) Push(p Packet) bool {
	if f.Full() {
		return false
	}
	f.buf = append(f.buf, p)
	f.pushes++
	if occ := uint64(f.Len()); occ > f.maxOcc {
		f.maxOcc = occ
	}
	return true
}

// Pop dequeues the oldest packet; ok is false when empty.
func (f *FIFO) Pop() (p Packet, ok bool) {
	if f.Empty() {
		return Packet{}, false
	}
	p = f.buf[f.head]
	f.head++
	f.pops++
	// Compact occasionally so the backing array does not grow unboundedly.
	if f.head > 64 && f.head*2 >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return p, true
}

// Peek returns the oldest packet without removing it.
func (f *FIFO) Peek() (p Packet, ok bool) {
	if f.Empty() {
		return Packet{}, false
	}
	return f.buf[f.head], true
}

// Stats reports lifetime pushes, pops and the high-water occupancy.
func (f *FIFO) Stats() (pushes, pops, maxOccupancy uint64) {
	return f.pushes, f.pops, f.maxOcc
}

// Lookahead implements the fast-forward capability trivially: a FIFO has no
// clocked behaviour of its own (it changes only when pushed or popped), so
// an empty FIFO is steady for any horizon and a non-empty one defers to the
// component draining it.
func (f *FIFO) Lookahead() uint64 {
	if f.Empty() {
		return Unbounded
	}
	return 0
}

// Advance implements Lookahead; a FIFO holds no per-cycle state to replay.
func (f *FIFO) Advance(uint64) {}

// AddTo folds the FIFO's activity into the counter set under the given
// keys. Callers pass constants from internal/comp/names (e.g.
// names.MNFifoPushes / names.MNFifoPops) rather than having the FIFO
// synthesize key strings outside the shared vocabulary.
func (f *FIFO) AddTo(c *Counters, pushesKey, popsKey string) {
	c.Add(pushesKey, f.pushes)
	c.Add(popsKey, f.pops)
}
