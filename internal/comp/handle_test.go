package comp

import (
	"reflect"
	"sort"
	"testing"
)

// The handle API and the string API must be two views of the same
// counters: a handle Add is visible through Get/Snapshot, and a string
// Add is visible through the handle's Value.
func TestCounterHandleStringInterop(t *testing.T) {
	c := NewCounters()
	h := c.Counter("interop.x")
	h.Add(7)
	if got := c.Get("interop.x"); got != 7 {
		t.Errorf("string Get after handle Add = %d, want 7", got)
	}
	c.Add("interop.x", 5)
	if got := h.Value(); got != 12 {
		t.Errorf("handle Value after string Add = %d, want 12", got)
	}
	// Re-resolving the same name yields the same underlying slot.
	h2 := c.Counter("interop.x")
	h2.Add(1)
	if h.Value() != 13 {
		t.Errorf("second handle hit a different slot: %d", h.Value())
	}
}

// Resolving a handle (or Add with n=0) creates the key, matching the old
// map semantics where Add always materialized an entry.
func TestCounterHandleZeroCreatesKey(t *testing.T) {
	c := NewCounters()
	h := c.Counter("zero.created")
	h.Add(0)
	snap := c.Snapshot()
	if v, ok := snap["zero.created"]; !ok || v != 0 {
		t.Errorf("Add(0) did not materialize the key: %v", snap)
	}
	// A name registered process-wide by another instance must not leak
	// into this instance's snapshot.
	other := NewCounters()
	other.Add("zero.other-instance", 1)
	if _, ok := c.Snapshot()["zero.other-instance"]; ok {
		t.Error("registry name leaked into an instance that never touched it")
	}
}

func TestCountersMergeHandles(t *testing.T) {
	a := NewCounters()
	b := NewCounters()
	a.Counter("m.one").Add(3)
	b.Counter("m.one").Add(4)
	b.Counter("m.two").Add(9)
	b.Add("m.zero", 0)
	a.Merge(b)
	want := map[string]uint64{"m.one": 7, "m.two": 9, "m.zero": 0}
	got := map[string]uint64{}
	for k, v := range a.Snapshot() {
		if _, ok := want[k]; ok {
			got[k] = v
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merge = %v, want %v", got, want)
	}
	// Merge must not mutate the source.
	if b.Get("m.one") != 4 {
		t.Errorf("merge mutated source: %d", b.Get("m.one"))
	}
}

// Keys and the rendered String are sorted regardless of the order handles
// were resolved or touched in.
func TestCountersSnapshotOrdering(t *testing.T) {
	c := NewCounters()
	for _, name := range []string{"ord.c", "ord.a", "ord.b"} {
		c.Counter(name).Add(1)
	}
	keys := c.Keys()
	if !sort.StringsAreSorted(keys) {
		t.Errorf("Keys not sorted: %v", keys)
	}
	snap := c.Snapshot()
	if len(snap) != len(keys) {
		t.Errorf("snapshot has %d entries, keys %d", len(snap), len(keys))
	}
	for _, k := range keys {
		if _, ok := snap[k]; !ok {
			t.Errorf("key %q missing from snapshot", k)
		}
	}
}

// BenchmarkCountersString is the old per-cycle hot path: every Add pays a
// name-to-slot resolution.
func BenchmarkCountersString(b *testing.B) {
	c := NewCounters()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add("bench.mults", 8)
		c.Add("bench.active", 1)
		c.Add("bench.forwards", 3)
	}
}

// BenchmarkCountersHandle is the new per-cycle hot path: handles resolved
// once at construction, bare slice updates per cycle.
func BenchmarkCountersHandle(b *testing.B) {
	c := NewCounters()
	mults := c.Counter("bench.mults")
	active := c.Counter("bench.active")
	fwds := c.Counter("bench.forwards")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mults.Add(8)
		active.Add(1)
		fwds.Add(3)
	}
}
