package dnn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// RNG is a splitmix64-based PRNG. We carry our own generator rather than
// math/rand so that weight tensors — and therefore every sparse cycle count
// in EXPERIMENTS.md — are reproducible byte-for-byte across Go releases.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded from s.
func NewRNG(s uint64) *RNG { return &RNG{state: s} }

// Uint64 returns the next 64 random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dnn: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a standard normal sample (Box–Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Weights holds every trained tensor of a model keyed by layer name.
type Weights struct {
	ByLayer map[string]*tensor.Tensor
}

// InitWeights generates deterministic He-initialized weights for every
// weighted layer of the model (Conv and Linear; GEMM layers are
// activation×activation and carry no weights).
//
// Two per-filter statistics of really-trained, pruned networks are
// emulated, because data-dependent results hinge on them:
//
//   - per-filter magnitude scale, log-uniform in [0.5, 2]: under global
//     magnitude pruning this yields the strongly non-uniform per-filter
//     non-zero counts of Fig. 7b, which the LFF scheduling study exploits;
//   - a selective negative bias on half the filters: trained conv filters
//     act as detectors whose outputs are deeply negative off-pattern, the
//     property SNAPEA's early termination monetizes. Purely symmetric
//     random weights would cross zero only near the end of the dot
//     product and hide the effect.
func InitWeights(m *Model, seed uint64) *Weights {
	w := &Weights{ByLayer: make(map[string]*tensor.Tensor)}
	for i := range m.Layers {
		l := &m.Layers[i]
		rng := NewRNG(seed ^ hashName(m.Name+"/"+l.Name))
		fill := func(t *tensor.Tensor, rows, cols int, std float64) {
			d := t.Data()
			for r := 0; r < rows; r++ {
				scale := math.Exp((rng.Float64()*2 - 1) * math.Ln2) // [0.5, 2]
				shift := 0.0
				if rng.Float64() < 0.5 {
					shift = -0.2 * scale * std // selective filter
				}
				for c := 0; c < cols; c++ {
					d[r*cols+c] = float32(rng.Normal()*scale*std + shift)
				}
			}
		}
		switch l.Kind {
		case Conv:
			cs := l.Conv
			t := tensor.New(cs.K, cs.C/cs.G, cs.R, cs.S)
			fanIn := float64(cs.R * cs.S * cs.C / cs.G)
			fill(t, cs.K, cs.C/cs.G*cs.R*cs.S, math.Sqrt(2/fanIn))
			w.ByLayer[l.Name] = t
		case Linear:
			t := tensor.New(l.Out, l.In)
			fill(t, l.Out, l.In, math.Sqrt(2/float64(l.In)))
			w.ByLayer[l.Name] = t
		}
	}
	return w
}

func hashName(s string) uint64 {
	// FNV-1a, inlined to avoid importing hash/fnv for four lines.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Prune applies unstructured magnitude pruning (Zhu & Gupta style) to every
// weighted layer so that the global weight sparsity of the model reaches the
// target ratio in [0,1). Per-layer ratios equal the global ratio, matching
// the uniform unstructured scheme the paper cites.
func (w *Weights) Prune(target float64) error {
	if target < 0 || target >= 1 {
		return fmt.Errorf("dnn: pruning target %.2f out of [0,1)", target)
	}
	if target == 0 {
		return nil
	}
	for name, t := range w.ByLayer {
		if err := pruneTensor(t, target); err != nil {
			return fmt.Errorf("dnn: pruning %s: %w", name, err)
		}
	}
	return nil
}

func pruneTensor(t *tensor.Tensor, target float64) error {
	d := t.Data()
	n := len(d)
	drop := int(math.Round(target * float64(n)))
	if drop == 0 {
		return nil
	}
	if drop >= n {
		drop = n - 1 // never prune a layer to fully zero
	}
	mags := make([]float64, n)
	for i, v := range d {
		mags[i] = math.Abs(float64(v))
	}
	sort.Float64s(mags)
	threshold := mags[drop-1]
	zeroed := 0
	for i, v := range d {
		if math.Abs(float64(v)) <= threshold && zeroed < drop {
			d[i] = 0
			zeroed++
		}
	}
	return nil
}

// RandomInput builds a deterministic input activation tensor for the model:
// (1, C, X, Y) for image models, (SeqLen, hidden) for sequence models.
// Values follow ReLU-style statistics (non-negative with zeros), since
// data-dependent optimizations such as SNAPEA are sensitive to the sign
// distribution of activations.
func RandomInput(m *Model, seed uint64) *tensor.Tensor {
	rng := NewRNG(seed ^ hashName(m.Name+"/input"))
	var t *tensor.Tensor
	if m.SeqLen > 0 {
		t = tensor.New(m.SeqLen, hiddenOf(m))
	} else {
		t = tensor.New(1, m.InputC, m.InputXY, m.InputXY)
	}
	d := t.Data()
	for i := range d {
		v := rng.Normal()
		if v < 0 {
			v = 0 // mimic post-ReLU input statistics
		}
		d[i] = float32(v)
	}
	return t
}
