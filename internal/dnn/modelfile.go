package dnn

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/tensor"
)

// This file is the standalone model front end — the role the Caffe path
// plays in the original tool: models described in a file rather than in
// framework code. The format is a JSON layer list with shape inference:
// input channel counts and linear fan-ins are derived by propagating the
// activation shape, so descriptions stay close to what a prototxt gives.
//
//	{
//	  "name": "lenet", "input_channels": 1, "input_size": 28,
//	  "sparsity": 0.5,
//	  "layers": [
//	    {"type": "conv", "name": "c1", "filters": 8, "kernel": 5, "pad": 2},
//	    {"type": "relu"},
//	    {"type": "maxpool", "window": 2, "stride": 2},
//	    {"type": "conv", "name": "c2", "filters": 16, "kernel": 3, "pad": 1, "save": "skip"},
//	    {"type": "relu"},
//	    {"type": "linear", "name": "fc", "out": 10},
//	    {"type": "softmax"}
//	  ]
//	}

// LayerSpec is one entry of the file's layer list.
type LayerSpec struct {
	Type string `json:"type"`
	Name string `json:"name,omitempty"`

	// conv parameters
	Filters int `json:"filters,omitempty"`
	Kernel  int `json:"kernel,omitempty"`
	Stride  int `json:"stride,omitempty"`
	Pad     int `json:"pad,omitempty"`
	Groups  int `json:"groups,omitempty"`
	// Depthwise is shorthand for groups == channels == filters.
	Depthwise bool `json:"depthwise,omitempty"`

	// pool parameters
	Window int `json:"window,omitempty"`

	// linear parameters
	Out int `json:"out,omitempty"`

	// skip-connection plumbing
	Save     string `json:"save,omitempty"`
	From     string `json:"from,omitempty"`
	Detached bool   `json:"detached,omitempty"`
}

// ModelSpec is the file's top-level object.
type ModelSpec struct {
	Name          string      `json:"name"`
	InputChannels int         `json:"input_channels"`
	InputSize     int         `json:"input_size"`
	Sparsity      float64     `json:"sparsity,omitempty"`
	Layers        []LayerSpec `json:"layers"`
}

// ParseModel reads a JSON model description and builds the Model graph,
// inferring every shape the file leaves implicit.
func ParseModel(r io.Reader) (*Model, error) {
	var spec ModelSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("dnn: parse model file: %w", err)
	}
	return BuildModel(&spec)
}

// LoadModelFile parses a model description from a file path.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dnn: %w", err)
	}
	defer f.Close()
	m, err := ParseModel(f)
	if err != nil {
		return nil, fmt.Errorf("dnn: %s: %w", path, err)
	}
	return m, nil
}

// BuildModel turns a spec into a validated Model.
func BuildModel(spec *ModelSpec) (*Model, error) {
	switch {
	case spec.Name == "":
		return nil, fmt.Errorf("dnn: model file needs a name")
	case spec.InputChannels <= 0 || spec.InputSize <= 0:
		return nil, fmt.Errorf("dnn: model %s needs positive input_channels and input_size", spec.Name)
	case len(spec.Layers) == 0:
		return nil, fmt.Errorf("dnn: model %s has no layers", spec.Name)
	case spec.Sparsity < 0 || spec.Sparsity >= 1:
		return nil, fmt.Errorf("dnn: model %s sparsity %v out of [0,1)", spec.Name, spec.Sparsity)
	}
	m := &Model{
		Name: spec.Name, Short: spec.Name, Domain: "custom",
		Sparsity: spec.Sparsity,
		InputC:   spec.InputChannels, InputXY: spec.InputSize,
	}
	// Shape inference state: channels c, spatial x, flattened width flat
	// (0 while the activation is spatial). Saved shapes track skip
	// branches.
	c, x := spec.InputChannels, spec.InputSize
	flat := 0
	type savedShape struct{ c, x int }
	saved := map[string]savedShape{}
	autoNames := 0
	name := func(s *LayerSpec, kind string) string {
		if s.Name != "" {
			return s.Name
		}
		autoNames++
		return fmt.Sprintf("%s%d", kind, autoNames)
	}

	for i := range spec.Layers {
		s := &spec.Layers[i]
		switch s.Type {
		case "conv":
			if flat != 0 {
				return nil, fmt.Errorf("dnn: layer %d: conv after flatten", i)
			}
			if s.Filters <= 0 || s.Kernel <= 0 {
				return nil, fmt.Errorf("dnn: layer %d: conv needs filters and kernel", i)
			}
			stride := s.Stride
			if stride == 0 {
				stride = 1
			}
			g := s.Groups
			if g == 0 {
				g = 1
			}
			filters := s.Filters
			if s.Depthwise {
				g, filters = c, c
			}
			l := Layer{
				Name: name(s, "conv"), Kind: Conv, Class: ClassC,
				Conv: tensor.ConvShape{
					R: s.Kernel, S: s.Kernel, C: c, G: g, K: filters, N: 1,
					X: x, Y: x, Stride: stride, Padding: s.Pad,
				},
				SaveAs: s.Save, Detached: s.Detached,
			}
			if s.Depthwise {
				l.Class = ClassFC
			}
			if err := l.Conv.Validate(); err != nil {
				return nil, fmt.Errorf("dnn: layer %d (%s): %w", i, l.Name, err)
			}
			m.Layers = append(m.Layers, l)
			if s.Detached {
				if s.Save == "" {
					return nil, fmt.Errorf("dnn: layer %d: detached conv needs save", i)
				}
				saved[s.Save] = savedShape{c: filters, x: l.Conv.OutX()}
				continue
			}
			c, x = filters, l.Conv.OutX()
			if s.Save != "" {
				saved[s.Save] = savedShape{c: c, x: x}
			}
		case "relu", "batchnorm", "softmax":
			kind := map[string]Kind{"relu": ReLU, "batchnorm": BatchNorm, "softmax": Softmax}[s.Type]
			m.Layers = append(m.Layers, Layer{Name: name(s, s.Type), Kind: kind, Class: ClassNA, SaveAs: s.Save})
			if s.Save != "" {
				saved[s.Save] = savedShape{c: c, x: x}
			}
		case "maxpool", "avgpool":
			if flat != 0 {
				return nil, fmt.Errorf("dnn: layer %d: pool after flatten", i)
			}
			if s.Window <= 0 {
				return nil, fmt.Errorf("dnn: layer %d: pool needs a window", i)
			}
			if s.Stride < 0 || s.Pad < 0 {
				return nil, fmt.Errorf("dnn: layer %d: pool stride/pad must be non-negative (stride %d, pad %d)", i, s.Stride, s.Pad)
			}
			stride := s.Stride
			if stride == 0 {
				stride = s.Window
			}
			if s.Window > x+2*s.Pad {
				return nil, fmt.Errorf("dnn: layer %d: pool window %d exceeds feature map %d", i, s.Window, x)
			}
			kind := MaxPool
			if s.Type == "avgpool" {
				kind = AvgPool
			}
			m.Layers = append(m.Layers, Layer{
				Name: name(s, s.Type), Kind: kind, Class: ClassNA,
				Pool: PoolShape{Window: s.Window, Stride: stride, Padding: s.Pad},
			})
			x = (x+2*s.Pad-s.Window)/stride + 1
			if x <= 0 {
				return nil, fmt.Errorf("dnn: layer %d: pool empties the feature map", i)
			}
		case "linear":
			if s.Out <= 0 {
				return nil, fmt.Errorf("dnn: layer %d: linear needs out", i)
			}
			if flat == 0 {
				// Auto-insert the flatten a prototxt leaves implicit.
				m.Layers = append(m.Layers, Layer{Name: name(&LayerSpec{}, "flatten"), Kind: Flatten, Class: ClassNA})
				flat = c * x * x
			}
			m.Layers = append(m.Layers, Layer{
				Name: name(s, "linear"), Kind: Linear, Class: ClassL,
				In: flat, Out: s.Out,
			})
			flat = s.Out
		case "residual", "concat":
			if s.From == "" {
				return nil, fmt.Errorf("dnn: layer %d: %s needs from", i, s.Type)
			}
			sv, ok := saved[s.From]
			if !ok {
				return nil, fmt.Errorf("dnn: layer %d: %s references unsaved %q", i, s.Type, s.From)
			}
			kind := Residual
			if s.Type == "concat" {
				kind = Concat
			}
			m.Layers = append(m.Layers, Layer{
				Name: name(s, s.Type), Kind: kind, Class: ClassNA, SkipFrom: s.From,
			})
			if kind == Residual {
				if sv.c != c || sv.x != x {
					return nil, fmt.Errorf("dnn: layer %d: residual shapes differ (%dx%d vs %dx%d)", i, sv.c, sv.x, c, x)
				}
			} else {
				if sv.x != x {
					return nil, fmt.Errorf("dnn: layer %d: concat spatial sizes differ (%d vs %d)", i, sv.x, x)
				}
				c += sv.c
			}
		default:
			return nil, fmt.Errorf("dnn: layer %d: unknown type %q", i, s.Type)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
