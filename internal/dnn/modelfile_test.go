package dnn

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const lenetJSON = `{
  "name": "lenet", "input_channels": 1, "input_size": 28, "sparsity": 0.5,
  "layers": [
    {"type": "conv", "name": "c1", "filters": 8, "kernel": 5, "pad": 2},
    {"type": "relu"},
    {"type": "maxpool", "window": 2},
    {"type": "conv", "name": "c2", "filters": 16, "kernel": 3, "pad": 1},
    {"type": "relu"},
    {"type": "linear", "name": "fc", "out": 10},
    {"type": "softmax"}
  ]
}`

func TestParseModelLeNet(t *testing.T) {
	m, err := ParseModel(strings.NewReader(lenetJSON))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "lenet" || m.Sparsity != 0.5 {
		t.Errorf("metadata: %+v", m)
	}
	// c2 input channels inferred (8), fc fan-in inferred (16·14·14), and
	// the flatten auto-inserted.
	var c2, fc *Layer
	sawFlatten := false
	for i := range m.Layers {
		switch m.Layers[i].Name {
		case "c2":
			c2 = &m.Layers[i]
		case "fc":
			fc = &m.Layers[i]
		}
		if m.Layers[i].Kind == Flatten {
			sawFlatten = true
		}
	}
	if c2 == nil || c2.Conv.C != 8 || c2.Conv.X != 14 {
		t.Errorf("c2 inference: %+v", c2)
	}
	if fc == nil || fc.In != 16*14*14 || fc.Out != 10 {
		t.Errorf("fc inference: %+v", fc)
	}
	if !sawFlatten {
		t.Error("flatten not auto-inserted")
	}
	// The parsed model executes.
	w := InitWeights(m, 1)
	if _, err := (&Executor{Model: m, Weights: w}).Run(RandomInput(m, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestParseModelResidualAndConcat(t *testing.T) {
	src := `{
	  "name": "skipnet", "input_channels": 4, "input_size": 8,
	  "layers": [
	    {"type": "conv", "name": "a", "filters": 4, "kernel": 3, "pad": 1, "save": "s"},
	    {"type": "conv", "name": "b", "filters": 4, "kernel": 3, "pad": 1},
	    {"type": "residual", "from": "s"},
	    {"type": "conv", "name": "side", "filters": 2, "kernel": 1, "detached": true, "save": "t"},
	    {"type": "conv", "name": "c", "filters": 2, "kernel": 1},
	    {"type": "concat", "from": "t"},
	    {"type": "relu"},
	    {"type": "linear", "out": 3}
	  ]
	}`
	m, err := ParseModel(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	w := InitWeights(m, 3)
	out, err := (&Executor{Model: m, Weights: w}).Run(RandomInput(m, 4))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("output %v", out.Shape())
	}
}

func TestParseModelDepthwise(t *testing.T) {
	src := `{
	  "name": "dw", "input_channels": 8, "input_size": 6,
	  "layers": [
	    {"type": "conv", "name": "d", "filters": 8, "kernel": 3, "pad": 1, "depthwise": true},
	    {"type": "linear", "out": 2}
	  ]
	}`
	m, err := ParseModel(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Layers[0].Conv.G != 8 || m.Layers[0].Class != ClassFC {
		t.Errorf("depthwise: %+v", m.Layers[0])
	}
}

func TestParseModelErrors(t *testing.T) {
	cases := []string{
		`{}`,
		`{"name":"x","input_channels":1,"input_size":8,"layers":[]}`,
		`{"name":"x","input_channels":1,"input_size":8,"layers":[{"type":"bogus"}]}`,
		`{"name":"x","input_channels":1,"input_size":8,"layers":[{"type":"conv"}]}`,
		`{"name":"x","input_channels":1,"input_size":8,"layers":[{"type":"residual","from":"nope"}]}`,
		`{"name":"x","input_channels":1,"input_size":8,"layers":[{"type":"linear","out":2},{"type":"conv","filters":1,"kernel":1}]}`,
		`{"name":"x","input_channels":1,"input_size":8,"sparsity":1.5,"layers":[{"type":"linear","out":2}]}`,
		`{"name":"x","input_channels":1,"input_size":8,"layers":[{"type":"maxpool","window":20}]}`,
		`{"name":"x","unknown_field":1,"input_channels":1,"input_size":8,"layers":[{"type":"linear","out":2}]}`,
	}
	for i, src := range cases {
		if _, err := ParseModel(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted:\n%s", i, src)
		}
	}
}

func TestLoadModelFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.json")
	if err := writeFile(path, lenetJSON); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	m, err := ParseModel(strings.NewReader(lenetJSON))
	if err != nil {
		t.Fatal(err)
	}
	ws := InitWeights(m, 9)
	if err := ws.Prune(0.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ws.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWeights(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ByLayer) != len(ws.ByLayer) {
		t.Fatalf("layer count %d vs %d", len(got.ByLayer), len(ws.ByLayer))
	}
	for name, want := range ws.ByLayer {
		g, ok := got.ByLayer[name]
		if !ok {
			t.Fatalf("layer %s missing", name)
		}
		for i, v := range want.Data() {
			if g.Data()[i] != v {
				t.Fatalf("layer %s element %d differs", name, i)
			}
		}
	}
	if err := CheckWeights(m, got); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsFileErrors(t *testing.T) {
	if _, err := LoadWeights(strings.NewReader("JUNKJUNKJUNK")); err == nil {
		t.Error("junk accepted")
	}
	if _, err := LoadWeights(strings.NewReader("STNW")); err == nil {
		t.Error("truncated file accepted")
	}
}

// A valid weights buffer truncated at every prefix length must come back
// as a descriptive error, never a panic or a silent partial load.
func TestLoadWeightsTruncatedPrefixes(t *testing.T) {
	tiny := `{"name":"t","input_channels":1,"input_size":6,"layers":[
	  {"type":"conv","name":"c1","filters":2,"kernel":3},
	  {"type":"linear","name":"fc","out":2}]}`
	m, err := ParseModel(strings.NewReader(tiny))
	if err != nil {
		t.Fatal(err)
	}
	ws := InitWeights(m, 5)
	var buf bytes.Buffer
	if err := ws.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := LoadWeights(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncated file of %d/%d bytes accepted", cut, len(full))
		}
		if !strings.Contains(err.Error(), "dnn:") {
			t.Fatalf("cut %d: error lacks package context: %v", cut, err)
		}
	}
	if _, err := LoadWeights(bytes.NewReader(full)); err != nil {
		t.Fatalf("untruncated buffer rejected: %v", err)
	}
}

// Targeted byte mutations of a valid weights file: each corrupted field is
// reported with layer context instead of panicking or over-allocating.
func TestLoadWeightsCorruptFields(t *testing.T) {
	m, err := ParseModel(strings.NewReader(lenetJSON))
	if err != nil {
		t.Fatal(err)
	}
	ws := InitWeights(m, 5)
	var buf bytes.Buffer
	if err := ws.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Layout: magic[0:4] | version[4:8] | count[8:12] |
	// record "c1": nameLen[12:16] | "c1"[16:18] | rank[18:22] | dims...
	mutate := func(off int, v uint32) []byte {
		b := append([]byte(nil), full...)
		b[off] = byte(v)
		b[off+1] = byte(v >> 8)
		b[off+2] = byte(v >> 16)
		b[off+3] = byte(v >> 24)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string // substring the error must carry
	}{
		{"bad magic", append([]byte("XXXX"), full[4:]...), "not a weights file"},
		{"bad version", mutate(4, 99), "version"},
		{"huge layer count", mutate(8, 1<<24), "layers"},
		{"huge name length", mutate(12, 1<<20), "name length"},
		{"zero rank", mutate(18, 0), "rank"},
		{"huge rank", mutate(18, 200), "rank"},
		{"zero dim", mutate(22, 0), "dim"},
		{"huge dim", mutate(22, 0x7fffffff), "dim"},
		// Dims that are individually legal but whose product overflows the
		// element budget must bail before allocating.
		{"overflow dim product", mutate(26, 1<<29), "elements"},
	}
	for _, tc := range cases {
		_, err := LoadWeights(bytes.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// Regression: pool layers with negative stride or padding used to flow into
// the output-size formula and corrupt downstream shape inference.
func TestParseModelNegativePoolParams(t *testing.T) {
	for _, layer := range []string{
		`{"type": "maxpool", "window": 2, "stride": -1}`,
		`{"type": "maxpool", "window": 2, "pad": -2}`,
		`{"type": "avgpool", "window": 2, "stride": -3, "pad": -1}`,
	} {
		src := `{"name":"x","input_channels":1,"input_size":8,"layers":[` + layer + `,{"type":"linear","out":2}]}`
		if _, err := ParseModel(strings.NewReader(src)); err == nil {
			t.Errorf("negative pool params accepted: %s", layer)
		}
	}
}

func TestCheckWeightsMismatch(t *testing.T) {
	m, _ := ParseModel(strings.NewReader(lenetJSON))
	ws := InitWeights(m, 9)
	delete(ws.ByLayer, "fc")
	if err := CheckWeights(m, ws); err == nil {
		t.Error("missing layer accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
