package dnn

import (
	"testing"

	"repro/internal/tensor"
)

// TestPartitionLayersCoverage pins the structural contract: contiguous,
// non-empty, in-order stages covering every layer exactly once, for every
// model in the zoo across the core counts the chip sweeps.
func TestPartitionLayersCoverage(t *testing.T) {
	for _, m := range AllModels() {
		for _, parts := range []int{1, 2, 3, 4, 8, 64, 1000} {
			bounds := PartitionLayers(m, parts)
			want := parts
			if want > len(m.Layers) {
				want = len(m.Layers)
			}
			if want < 1 {
				want = 1
			}
			if len(bounds) != want {
				t.Errorf("%s parts=%d: got %d stages, want %d", m.Name, parts, len(bounds), want)
			}
			next := 0
			for _, b := range bounds {
				if b[0] != next || b[1] <= b[0] {
					t.Fatalf("%s parts=%d: bad stage %v (next=%d)", m.Name, parts, b, next)
				}
				next = b[1]
			}
			if next != len(m.Layers) {
				t.Errorf("%s parts=%d: stages end at %d, want %d", m.Name, parts, next, len(m.Layers))
			}
		}
	}
}

// TestPartitionLayersBalance checks the cuts track MAC volume: no stage of
// a 4-way split of a deep model should hold the overwhelming majority of
// the MACs.
func TestPartitionLayersBalance(t *testing.T) {
	m := MobileNetsV1()
	bounds := PartitionLayers(m, 4)
	var total uint64
	stage := make([]uint64, len(bounds))
	for si, b := range bounds {
		for i := b[0]; i < b[1]; i++ {
			stage[si] += uint64(m.Layers[i].MACs()) + 1
		}
		total += stage[si]
	}
	for si, s := range stage {
		if s*2 > total {
			t.Errorf("stage %d holds %d of %d weighted MACs — partition is degenerate", si, s, total)
		}
	}
}

// TestRunRangeMatchesRun pins the stage primitive: cutting a model with
// skip connections at every boundary and resuming must reproduce the
// uncut execution bit for bit.
func TestRunRangeMatchesRun(t *testing.T) {
	m := SqueezeNet() // Concat skip connections exercise the saved map
	sm, err := ScaleSpatial(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := InitWeights(sm, 0xbeef)
	input := RandomInput(sm, 0x1234)

	whole := &Executor{Model: sm, Weights: w}
	want, err := whole.Run(input)
	if err != nil {
		t.Fatal(err)
	}

	for _, parts := range []int{2, 3, 5} {
		exec := &Executor{Model: sm, Weights: w}
		act := input
		saved := map[string]*tensor.Tensor{}
		for _, b := range PartitionLayers(sm, parts) {
			var err error
			act, err = exec.RunRange(act, saved, b[0], b[1])
			if err != nil {
				t.Fatalf("parts=%d stage %v: %v", parts, b, err)
			}
		}
		if !tensor.SameShape(act, want) {
			t.Fatalf("parts=%d: shape %v, want %v", parts, act.Shape(), want.Shape())
		}
		got, ref := act.Data(), want.Data()
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("parts=%d: output[%d] = %v, want %v", parts, i, got[i], ref[i])
			}
		}
	}
}
