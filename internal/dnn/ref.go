package dnn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Offloader executes one compute-intensive layer (Conv, Linear or GEMM) on
// behalf of the executor — on a simulated accelerator in this repo, or nil
// for native CPU execution. It receives the raw input activation and the
// layer's weight tensor (nil for GEMM layers, whose B operand is provided
// in b). It must return a tensor with the layer's natural output shape.
//
// This is the seam corresponding to the paper's Figure 2(b): the framework
// walks the model layer by layer, offloads compute-intensive layers to the
// accelerator, and runs the remaining layers natively.
type Offloader interface {
	RunLayer(l *Layer, in, w *tensor.Tensor) (*tensor.Tensor, error)
}

// Executor runs a model's forward pass.
type Executor struct {
	Model   *Model
	Weights *Weights
	// Offload, when non-nil, receives every layer for which
	// Kind.Offloaded() is true. Nil runs everything natively.
	Offload Offloader
	// LayerOutputs, when non-nil, receives a clone of every layer output
	// keyed by layer name (used by tests and by the scheduling study).
	LayerOutputs map[string]*tensor.Tensor
}

// Run executes the forward pass on input and returns the final activation
// (pre-argmax scores, exactly what the paper compares between PyTorch-CPU
// and STONNE executions for functional validation).
func (e *Executor) Run(input *tensor.Tensor) (*tensor.Tensor, error) {
	return e.RunRange(input, map[string]*tensor.Tensor{}, 0, len(e.Model.Layers))
}

// RunRange executes layers [from, to) starting from activation act, with
// saved holding the skip-connection activations produced so far (mutated
// in place). It returns the activation after layer to-1. This is the chip
// scheduler's stage primitive: a stream's state between pipeline stages is
// exactly the (activation, saved-map) pair, so a model can be cut at any
// layer boundary and resumed on another core.
func (e *Executor) RunRange(act *tensor.Tensor, saved map[string]*tensor.Tensor, from, to int) (*tensor.Tensor, error) {
	for i := from; i < to; i++ {
		l := &e.Model.Layers[i]
		out, err := e.runLayer(l, act, saved)
		if err != nil {
			return nil, fmt.Errorf("dnn: model %s layer %d (%s): %w", e.Model.Name, i, l.Name, err)
		}
		if e.LayerOutputs != nil {
			e.LayerOutputs[l.Name] = out.Clone()
		}
		if l.Detached {
			saved[l.SaveAs] = out
			continue
		}
		act = out
		if l.SaveAs != "" {
			saved[l.SaveAs] = act
		}
	}
	return act, nil
}

func (e *Executor) runLayer(l *Layer, act *tensor.Tensor, saved map[string]*tensor.Tensor) (*tensor.Tensor, error) {
	if l.Kind.Offloaded() && e.Offload != nil {
		w := e.Weights.ByLayer[l.Name]
		in, err := e.offloadInput(l, act)
		if err != nil {
			return nil, err
		}
		return e.Offload.RunLayer(l, in, w)
	}
	switch l.Kind {
	case Conv:
		return tensor.Conv2D(act, e.Weights.ByLayer[l.Name], l.Conv)
	case Linear:
		in, err := e.offloadInput(l, act)
		if err != nil {
			return nil, err
		}
		return LinearForward(l, in, e.Weights.ByLayer[l.Name])
	case GEMM:
		a, b, err := GEMMOperands(l, act)
		if err != nil {
			return nil, err
		}
		return tensor.MatMul(a, b)
	case MaxPool:
		return pool2D(act, l.Pool, true)
	case AvgPool:
		return pool2D(act, l.Pool, false)
	case ReLU:
		out := act.Clone()
		out.Apply(func(v float32) float32 {
			if v < 0 {
				return 0
			}
			return v
		})
		return out, nil
	case BatchNorm:
		// Inference-time batch norm folds into the preceding convolution's
		// weights; with synthetic weights we model it as identity.
		return act, nil
	case Softmax:
		return softmax(act), nil
	case Flatten:
		return act.Reshape(1, act.Len())
	case Residual:
		s, ok := saved[l.SkipFrom]
		if !ok {
			return nil, fmt.Errorf("residual source %q not saved", l.SkipFrom)
		}
		if !tensor.SameShape(act, s) {
			return nil, fmt.Errorf("residual shape mismatch %v vs %v", act.Shape(), s.Shape())
		}
		out := act.Clone()
		od, sd := out.Data(), s.Data()
		for i := range od {
			od[i] += sd[i]
		}
		return out, nil
	case Concat:
		s, ok := saved[l.SkipFrom]
		if !ok {
			return nil, fmt.Errorf("concat source %q not saved", l.SkipFrom)
		}
		return concatChannels(act, s)
	default:
		return nil, fmt.Errorf("unknown layer kind %v", l.Kind)
	}
}

// offloadInput reshapes the running activation into the canonical input
// layout the layer expects: (B, In) for Linear, untouched for Conv.
func (e *Executor) offloadInput(l *Layer, act *tensor.Tensor) (*tensor.Tensor, error) {
	switch l.Kind {
	case Linear:
		n := act.Len()
		if n%l.In != 0 {
			return nil, fmt.Errorf("linear input %v not a multiple of In=%d", act.Shape(), l.In)
		}
		return act.Reshape(n/l.In, l.In)
	default:
		return act, nil
	}
}

// LinearForward computes Out = In(B×In) × Wᵀ(In×Out) natively.
func LinearForward(l *Layer, in, w *tensor.Tensor) (*tensor.Tensor, error) {
	if w == nil {
		return nil, fmt.Errorf("linear layer %s has no weights", l.Name)
	}
	b := in.Dim(0)
	out := tensor.New(b, l.Out)
	ind, wd, od := in.Data(), w.Data(), out.Data()
	for r := 0; r < b; r++ {
		row := ind[r*l.In : (r+1)*l.In]
		for o := 0; o < l.Out; o++ {
			wrow := wd[o*l.In : (o+1)*l.In]
			var acc float32
			for i, x := range row {
				acc += x * wrow[i]
			}
			od[r*l.Out+o] = acc
		}
	}
	return out, nil
}

// GEMMOperands derives the A (M×K) and B (K×N) operands of a weight-less
// GEMM layer from the running activation. When the activation matches the
// required operand shape (or its transpose) it is reused — this makes the
// BERT attention-score GEMM a genuine activation×activation product; when
// it cannot match, a deterministic pseudo-activation stands in (documented
// substitution: the cycle count of a dense GEMM does not depend on values).
func GEMMOperands(l *Layer, act *tensor.Tensor) (a, b *tensor.Tensor, err error) {
	if act.Len() == l.M*l.K {
		if a, err = act.Reshape(l.M, l.K); err != nil {
			return nil, nil, err
		}
	} else {
		a = pseudoActivation(l.Name+"/A", l.M, l.K)
	}
	if act.Len() == l.K*l.N {
		r, err := act.Reshape(l.N, l.K)
		if err != nil {
			return nil, nil, err
		}
		b = transpose(r)
	} else {
		b = pseudoActivation(l.Name+"/B", l.K, l.N)
	}
	return a, b, nil
}

func pseudoActivation(key string, rows, cols int) *tensor.Tensor {
	rng := NewRNG(hashName(key))
	t := tensor.New(rows, cols)
	d := t.Data()
	for i := range d {
		v := rng.Normal()
		if v < 0 {
			v = 0
		}
		d[i] = float32(v)
	}
	return t
}

func transpose(t *tensor.Tensor) *tensor.Tensor {
	r, c := t.Dim(0), t.Dim(1)
	out := tensor.New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.Set(t.At(i, j), j, i)
		}
	}
	return out
}

func concatChannels(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	if a.Rank() != 4 || b.Rank() != 4 ||
		a.Dim(0) != b.Dim(0) || a.Dim(2) != b.Dim(2) || a.Dim(3) != b.Dim(3) {
		return nil, fmt.Errorf("concat shapes incompatible %v vs %v", a.Shape(), b.Shape())
	}
	n, ca, cb, x, y := a.Dim(0), a.Dim(1), b.Dim(1), a.Dim(2), a.Dim(3)
	out := tensor.New(n, ca+cb, x, y)
	for ni := 0; ni < n; ni++ {
		for c := 0; c < ca; c++ {
			for i := 0; i < x; i++ {
				for j := 0; j < y; j++ {
					out.Set(a.At(ni, c, i, j), ni, c, i, j)
				}
			}
		}
		for c := 0; c < cb; c++ {
			for i := 0; i < x; i++ {
				for j := 0; j < y; j++ {
					out.Set(b.At(ni, c, i, j), ni, ca+c, i, j)
				}
			}
		}
	}
	return out, nil
}

func pool2D(act *tensor.Tensor, p PoolShape, isMax bool) (*tensor.Tensor, error) {
	if act.Rank() != 4 {
		return nil, fmt.Errorf("pool expects rank-4 input, got %v", act.Shape())
	}
	n, c, x, y := act.Dim(0), act.Dim(1), act.Dim(2), act.Dim(3)
	ox := (x+2*p.Padding-p.Window)/p.Stride + 1
	oy := (y+2*p.Padding-p.Window)/p.Stride + 1
	if ox <= 0 || oy <= 0 {
		return nil, fmt.Errorf("pool %+v yields empty output from %v", p, act.Shape())
	}
	out := tensor.New(n, c, ox, oy)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for i := 0; i < ox; i++ {
				for j := 0; j < oy; j++ {
					best := float32(math.Inf(-1))
					var sum float32
					count := 0
					for wi := 0; wi < p.Window; wi++ {
						xi := i*p.Stride + wi - p.Padding
						if xi < 0 || xi >= x {
							continue
						}
						for wj := 0; wj < p.Window; wj++ {
							yj := j*p.Stride + wj - p.Padding
							if yj < 0 || yj >= y {
								continue
							}
							v := act.At(ni, ci, xi, yj)
							if v > best {
								best = v
							}
							sum += v
							count++
						}
					}
					if isMax {
						out.Set(best, ni, ci, i, j)
					} else if count > 0 {
						out.Set(sum/float32(count), ni, ci, i, j)
					}
				}
			}
		}
	}
	return out, nil
}

func softmax(act *tensor.Tensor) *tensor.Tensor {
	out := act.Clone()
	d := out.Data()
	// Softmax over the last dimension, row by row.
	cols := act.Dim(act.Rank() - 1)
	for r := 0; r+cols <= len(d); r += cols {
		row := d[r : r+cols]
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - max))
			row[i] = float32(e)
			sum += e
		}
		for i := range row {
			row[i] = float32(float64(row[i]) / sum)
		}
	}
	return out
}
