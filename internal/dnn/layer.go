// Package dnn is the deep-learning front end that replaces PyTorch in this
// reproduction. It defines layers, the seven DNN models of Table I, seeded
// weight generation with magnitude pruning to the paper's sparsity ratios,
// and a CPU reference executor used as functional ground truth for the
// simulated accelerators.
package dnn

import (
	"fmt"

	"repro/internal/tensor"
)

// Kind enumerates the layer operators the front end understands. Only the
// compute-intensive kinds (Conv, Linear, GEMM) are offloaded to the
// simulated accelerator; the rest run natively, exactly as Figure 2(b) of
// the paper describes.
type Kind int

const (
	Conv Kind = iota
	Linear
	GEMM // raw matrix multiply (used for transformer attention internals)
	MaxPool
	AvgPool
	ReLU
	BatchNorm
	Softmax
	Flatten
	Residual // element-wise add with the activation saved by SaveAs
	Concat   // channel concatenation with the activation saved by SaveAs
)

func (k Kind) String() string {
	switch k {
	case Conv:
		return "Conv"
	case Linear:
		return "Linear"
	case GEMM:
		return "GEMM"
	case MaxPool:
		return "MaxPool"
	case AvgPool:
		return "AvgPool"
	case ReLU:
		return "ReLU"
	case BatchNorm:
		return "BatchNorm"
	case Softmax:
		return "Softmax"
	case Flatten:
		return "Flatten"
	case Residual:
		return "Residual"
	case Concat:
		return "Concat"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Offloaded reports whether this layer kind is compute-intensive enough to
// be sent to the simulated accelerator rather than run natively.
func (k Kind) Offloaded() bool { return k == Conv || k == Linear || k == GEMM }

// Class is the paper's layer-type taxonomy from Table I: Convolution (C),
// Factorized Convolution (FC), Squeeze Convolution (SC), Expand Convolution
// (EC), Linear (L), Transformer (TR), Residual Function (RF).
type Class string

const (
	ClassC  Class = "C"
	ClassFC Class = "FC"
	ClassSC Class = "SC"
	ClassEC Class = "EC"
	ClassL  Class = "L"
	ClassTR Class = "TR"
	ClassRF Class = "RF"
	ClassNA Class = "-" // non-offloaded helper layers
)

// PoolShape describes a pooling window.
type PoolShape struct {
	Window, Stride, Padding int
}

// Layer is one operator in a model graph. The graph is a list with optional
// named skip connections, which is enough for all seven models of Table I.
type Layer struct {
	Name  string
	Kind  Kind
	Class Class

	// Conv parameters (Kind == Conv).
	Conv tensor.ConvShape

	// Linear parameters (Kind == Linear): output = W(Out×In) · input.
	// Batch is the number of input vectors (sequence length for BERT);
	// zero means 1.
	In, Out, Batch int

	// GEMM parameters (Kind == GEMM): M×K times K×N. GEMM layers have no
	// trained weights; both operands are activations (transformer
	// attention), so the B operand is taken from the running activation.
	M, N, K int

	// Pool parameters.
	Pool PoolShape

	// SaveAs, when non-empty, stores this layer's output under the given
	// key for a later Residual layer.
	SaveAs string
	// SkipFrom names the stored activation a Residual layer adds.
	SkipFrom string
	// Detached marks a side-branch layer: it reads the current activation
	// and stores its output under SaveAs, but the main-chain activation
	// passes through unchanged (used for residual projection shortcuts and
	// detection heads).
	Detached bool
}

// MACs returns the dense multiply-accumulate count of the layer (0 for
// non-offloaded kinds).
func (l *Layer) MACs() int64 {
	switch l.Kind {
	case Conv:
		return l.Conv.MACs()
	case Linear:
		b := l.Batch
		if b == 0 {
			b = 1
		}
		return int64(l.In) * int64(l.Out) * int64(b)
	case GEMM:
		return int64(l.M) * int64(l.N) * int64(l.K)
	default:
		return 0
	}
}

// GEMMDims returns the M, N, K of the GEMM this layer lowers to (per group
// for convolutions). It panics for non-offloaded kinds.
func (l *Layer) GEMMDims() (m, n, k int) {
	switch l.Kind {
	case Conv:
		return l.Conv.GEMMDims()
	case Linear:
		b := l.Batch
		if b == 0 {
			b = 1
		}
		return l.Out, b, l.In
	case GEMM:
		return l.M, l.N, l.K
	default:
		panic(fmt.Sprintf("dnn: layer %q of kind %v has no GEMM lowering", l.Name, l.Kind))
	}
}

// Model is an ordered layer list plus the metadata of Table I.
type Model struct {
	Name     string
	Short    string // the single-letter tag used in the figures (M, S, A, R, V, S-M, B)
	Domain   string
	Sparsity float64 // target weight sparsity after pruning, from Table I
	InputC   int     // input channels (image models) — 0 for BERT
	InputXY  int     // input spatial size (square) — 0 for BERT
	SeqLen   int     // sequence length (BERT)
	Layers   []Layer
}

// OffloadedLayers returns the layers that are sent to the accelerator.
func (m *Model) OffloadedLayers() []Layer {
	var out []Layer
	for _, l := range m.Layers {
		if l.Kind.Offloaded() {
			out = append(out, l)
		}
	}
	return out
}

// TotalMACs sums the dense MAC count over all offloaded layers.
func (m *Model) TotalMACs() int64 {
	var t int64
	for i := range m.Layers {
		t += m.Layers[i].MACs()
	}
	return t
}

// Validate checks that layer shapes chain together by running a shape-only
// forward pass.
func (m *Model) Validate() error {
	_, err := m.forwardShapes()
	return err
}

// forwardShapes propagates activation shapes through the graph.
func (m *Model) forwardShapes() ([]int, error) {
	var shape []int
	if m.SeqLen > 0 {
		shape = []int{m.SeqLen, hiddenOf(m)}
	} else {
		shape = []int{1, m.InputC, m.InputXY, m.InputXY}
	}
	saved := map[string][]int{}
	for i := range m.Layers {
		l := &m.Layers[i]
		out, err := l.outShape(shape)
		if err != nil {
			return nil, fmt.Errorf("dnn: model %s layer %d (%s): %w", m.Name, i, l.Name, err)
		}
		if l.Detached {
			if l.SaveAs == "" {
				return nil, fmt.Errorf("dnn: model %s layer %s: detached layer must set SaveAs", m.Name, l.Name)
			}
			saved[l.SaveAs] = out
			continue // main-chain shape unchanged
		}
		shape = out
		if l.SaveAs != "" {
			saved[l.SaveAs] = shape
		}
		switch l.Kind {
		case Residual:
			s, ok := saved[l.SkipFrom]
			if !ok {
				return nil, fmt.Errorf("dnn: model %s layer %s: residual source %q not saved", m.Name, l.Name, l.SkipFrom)
			}
			if !equalShape(s, shape) {
				return nil, fmt.Errorf("dnn: model %s layer %s: residual shape %v != %v", m.Name, l.Name, s, shape)
			}
		case Concat:
			s, ok := saved[l.SkipFrom]
			if !ok {
				return nil, fmt.Errorf("dnn: model %s layer %s: concat source %q not saved", m.Name, l.Name, l.SkipFrom)
			}
			if len(s) != 4 || len(shape) != 4 || s[0] != shape[0] || s[2] != shape[2] || s[3] != shape[3] {
				return nil, fmt.Errorf("dnn: model %s layer %s: concat shapes incompatible %v vs %v", m.Name, l.Name, s, shape)
			}
			shape = []int{shape[0], shape[1] + s[1], shape[2], shape[3]}
		}
	}
	return shape, nil
}

func hiddenOf(m *Model) int {
	// For sequence models the first offloaded layer defines the hidden size.
	for i := range m.Layers {
		if m.Layers[i].Kind == Linear {
			return m.Layers[i].In
		}
	}
	return 1
}

func (l *Layer) outShape(in []int) ([]int, error) {
	switch l.Kind {
	case Conv:
		cs := l.Conv
		if err := cs.Validate(); err != nil {
			return nil, err
		}
		if len(in) != 4 || in[1] != cs.C || in[2] != cs.X || in[3] != cs.Y {
			return nil, fmt.Errorf("conv expects input (N,%d,%d,%d), got %v", cs.C, cs.X, cs.Y, in)
		}
		return []int{in[0], cs.K, cs.OutX(), cs.OutY()}, nil
	case Linear:
		n := prod(in)
		if n%l.In != 0 {
			return nil, fmt.Errorf("linear expects multiple of %d inputs, got %v", l.In, in)
		}
		return []int{n / l.In, l.Out}, nil
	case GEMM:
		return []int{l.M, l.N}, nil
	case MaxPool, AvgPool:
		if len(in) != 4 {
			return nil, fmt.Errorf("pool expects rank-4 input, got %v", in)
		}
		p := l.Pool
		if p.Window > in[2]+2*p.Padding || p.Window > in[3]+2*p.Padding {
			return nil, fmt.Errorf("pool window %d exceeds feature map %v", p.Window, in)
		}
		ox := (in[2]+2*p.Padding-p.Window)/p.Stride + 1
		oy := (in[3]+2*p.Padding-p.Window)/p.Stride + 1
		if ox <= 0 || oy <= 0 {
			return nil, fmt.Errorf("pool %+v yields empty output from %v", p, in)
		}
		return []int{in[0], in[1], ox, oy}, nil
	case Flatten:
		return []int{1, prod(in)}, nil
	case ReLU, BatchNorm, Softmax, Residual, Concat:
		// Residual and Concat are completed by forwardShapes / the
		// executor, which have access to the saved activations.
		return in, nil
	default:
		return nil, fmt.Errorf("unknown layer kind %v", l.Kind)
	}
}

func prod(s []int) int {
	p := 1
	for _, d := range s {
		p *= d
	}
	return p
}

func equalShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
