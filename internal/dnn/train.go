package dnn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Training support — the paper lists it as ongoing work ("Support of
// training procedures in STONNE is part of our ongoing work"), and SIGMA,
// one of the modelled architectures, targets training explicitly. This
// file implements one training step for sequential models: a forward pass
// with activation caching, softmax–cross-entropy loss, and a backward pass
// whose three matrix products per weighted layer (the dominant compute)
// are routed through a GEMMRunner so a simulated accelerator can execute
// them:
//
//	linear:  dX = dYᵀ·W reshaped, dW = dYᵀ·X
//	conv:    dW = dY_mat·colsᵀ, dX = Wᵀ·dY_mat (then col2im)
//
// Residual/Concat/Detached graphs are out of scope here (the paper's
// training support never landed either); TrainStep rejects them.

// GEMMRunner executes one dense matrix product on behalf of the trainer —
// a simulated accelerator in this repo, or nil for native CPU execution.
type GEMMRunner interface {
	RunTrainGEMM(a, b *tensor.Tensor, tag string) (*tensor.Tensor, error)
}

// TrainResult reports one step's loss and weight gradients.
type TrainResult struct {
	Loss  float64
	Grads map[string]*tensor.Tensor
}

// TrainStep runs forward + backward for one input and target class. The
// model must be sequential (no skip connections) and end in a Softmax; the
// loss is cross-entropy over the softmax output.
func TrainStep(m *Model, w *Weights, input *tensor.Tensor, label int, run GEMMRunner) (*TrainResult, error) {
	for i := range m.Layers {
		l := &m.Layers[i]
		if l.Kind == Residual || l.Kind == Concat || l.Detached || l.Kind == GEMM {
			return nil, fmt.Errorf("dnn: TrainStep supports sequential models only (layer %s is %v)", l.Name, l.Kind)
		}
	}
	if len(m.Layers) == 0 || m.Layers[len(m.Layers)-1].Kind != Softmax {
		return nil, fmt.Errorf("dnn: TrainStep requires a trailing Softmax layer")
	}
	if run == nil {
		run = nativeGEMM{}
	}

	// Forward with caches.
	type cache struct {
		in   *tensor.Tensor // layer input
		cols []*tensor.Tensor
		out  *tensor.Tensor
	}
	caches := make([]cache, len(m.Layers))
	act := input
	for i := range m.Layers {
		l := &m.Layers[i]
		c := &caches[i]
		c.in = act
		var err error
		switch l.Kind {
		case Conv:
			cs := l.Conv
			out := tensor.New(cs.N, cs.K, cs.OutX(), cs.OutY())
			kg := cs.K / cs.G
			for g := 0; g < cs.G; g++ {
				cols, err := tensor.Im2Col(act, cs, g)
				if err != nil {
					return nil, err
				}
				c.cols = append(c.cols, cols)
				fm, err := tensor.FilterMatrix(w.ByLayer[l.Name], cs, g)
				if err != nil {
					return nil, err
				}
				prod, err := run.RunTrainGEMM(fm, cols, l.Name+".fwd")
				if err != nil {
					return nil, err
				}
				scatterConvOut(prod, out, cs, g, kg)
			}
			act = out
		case Linear:
			x, err := act.Reshape(act.Len()/l.In, l.In)
			if err != nil {
				return nil, err
			}
			c.in = x
			// Y = W(Out×In) × Xᵀ → transpose back to (B, Out).
			yT, err := run.RunTrainGEMM(w.ByLayer[l.Name], trainTranspose(x), l.Name+".fwd")
			if err != nil {
				return nil, err
			}
			act = trainTranspose(yT)
		case ReLU:
			out := act.Clone()
			out.Apply(func(v float32) float32 {
				if v < 0 {
					return 0
				}
				return v
			})
			act = out
		case BatchNorm:
			// identity at inference statistics
		case MaxPool:
			act, err = pool2D(act, l.Pool, true)
			if err != nil {
				return nil, err
			}
		case AvgPool:
			act, err = pool2D(act, l.Pool, false)
			if err != nil {
				return nil, err
			}
		case Flatten:
			act, err = act.Reshape(1, act.Len())
			if err != nil {
				return nil, err
			}
		case Softmax:
			act = softmax(act)
		default:
			return nil, fmt.Errorf("dnn: TrainStep cannot handle layer kind %v", l.Kind)
		}
		c.out = act
	}

	// Loss and the fused softmax+cross-entropy gradient: dLogits = p − 1ₗ.
	probs := act
	if label < 0 || label >= probs.Len() {
		return nil, fmt.Errorf("dnn: label %d out of range [0,%d)", label, probs.Len())
	}
	p := float64(probs.Data()[label])
	if p < 1e-12 {
		p = 1e-12
	}
	res := &TrainResult{Loss: -math.Log(p), Grads: map[string]*tensor.Tensor{}}
	grad := probs.Clone()
	grad.Data()[label] -= 1

	// Backward.
	for i := len(m.Layers) - 1; i >= 0; i-- {
		l := &m.Layers[i]
		c := &caches[i]
		switch l.Kind {
		case Softmax:
			// folded into the loss gradient above
		case Flatten:
			g, err := grad.Reshape(c.in.Shape()...)
			if err != nil {
				return nil, err
			}
			grad = g
		case ReLU:
			g := grad.Clone()
			gd, od := g.Data(), c.out.Data()
			for j := range gd {
				if od[j] == 0 {
					gd[j] = 0
				}
			}
			grad = g
		case BatchNorm:
			// identity
		case MaxPool:
			g, err := maxPoolBackward(c.in, c.out, grad, l.Pool)
			if err != nil {
				return nil, err
			}
			grad = g
		case AvgPool:
			g, err := avgPoolBackward(c.in, grad, l.Pool)
			if err != nil {
				return nil, err
			}
			grad = g
		case Linear:
			x := c.in                                         // (B, In)
			dY := grad                                        // (B, Out)
			dYT := trainTranspose(dY)                         // (Out, B)
			dW, err := run.RunTrainGEMM(dYT, x, l.Name+".dW") // (Out, In)
			if err != nil {
				return nil, err
			}
			res.Grads[l.Name] = dW
			dX, err := run.RunTrainGEMM(dY, w.ByLayer[l.Name], l.Name+".dX") // (B, In)
			if err != nil {
				return nil, err
			}
			grad = dX
		case Conv:
			cs := l.Conv
			kg := cs.K / cs.G
			cg := cs.C / cs.G
			dWfull := tensor.New(cs.K, cg, cs.R, cs.S)
			dIn := tensor.New(cs.N, cs.C, cs.X, cs.Y)
			for g := 0; g < cs.G; g++ {
				dYmat := gatherConvGrad(grad, cs, g, kg) // (kg, N·X'·Y')
				// dW = dY_mat × colsᵀ.
				dW, err := run.RunTrainGEMM(dYmat, trainTranspose(c.cols[g]), l.Name+".dW")
				if err != nil {
					return nil, err
				}
				scatterFilterGrad(dW, dWfull, cs, g, kg)
				// dCols = Wᵀ × dY_mat, then col2im.
				fm, err := tensor.FilterMatrix(w.ByLayer[l.Name], cs, g)
				if err != nil {
					return nil, err
				}
				dCols, err := run.RunTrainGEMM(trainTranspose(fm), dYmat, l.Name+".dX")
				if err != nil {
					return nil, err
				}
				col2imAdd(dCols, dIn, cs, g)
			}
			res.Grads[l.Name] = dWfull
			grad = dIn
		}
	}
	return res, nil
}

// ApplySGD updates the weights in place: w ← w − lr·g. Pruned (zero)
// weights stay zero, preserving the sparsity structure — the standard
// fixed-mask fine-tuning regime.
func ApplySGD(w *Weights, grads map[string]*tensor.Tensor, lr float64) error {
	// Walk layers in sorted order. Each layer's tensor is disjoint so the
	// updates commute, but a sorted walk also makes the "unknown layer"
	// error deterministic when several gradients are stale.
	names := make([]string, 0, len(grads))
	for name := range grads {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := grads[name]
		t, ok := w.ByLayer[name]
		if !ok {
			return fmt.Errorf("dnn: gradient for unknown layer %s", name)
		}
		td, gd := t.Data(), g.Data()
		if len(td) != len(gd) {
			return fmt.Errorf("dnn: gradient shape mismatch for %s", name)
		}
		for i := range td {
			if td[i] == 0 {
				continue // keep the pruned mask
			}
			td[i] -= float32(lr * float64(gd[i]))
		}
	}
	return nil
}

type nativeGEMM struct{}

func (nativeGEMM) RunTrainGEMM(a, b *tensor.Tensor, tag string) (*tensor.Tensor, error) {
	return tensor.MatMul(a, b)
}

func trainTranspose(t *tensor.Tensor) *tensor.Tensor {
	r, c := t.Dim(0), t.Dim(1)
	out := tensor.New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.Set(t.At(i, j), j, i)
		}
	}
	return out
}

func scatterConvOut(prod, out *tensor.Tensor, cs tensor.ConvShape, g, kg int) {
	xo, yo := cs.OutX(), cs.OutY()
	nc := xo * yo
	for kf := 0; kf < kg; kf++ {
		kk := g*kg + kf
		for n := 0; n < cs.N; n++ {
			for p := 0; p < nc; p++ {
				out.Set(prod.At(kf, n*nc+p), n, kk, p/yo, p%yo)
			}
		}
	}
}

func gatherConvGrad(grad *tensor.Tensor, cs tensor.ConvShape, g, kg int) *tensor.Tensor {
	xo, yo := cs.OutX(), cs.OutY()
	nc := xo * yo
	out := tensor.New(kg, cs.N*nc)
	for kf := 0; kf < kg; kf++ {
		kk := g*kg + kf
		for n := 0; n < cs.N; n++ {
			for p := 0; p < nc; p++ {
				out.Set(grad.At(n, kk, p/yo, p%yo), kf, n*nc+p)
			}
		}
	}
	return out
}

func scatterFilterGrad(dW, full *tensor.Tensor, cs tensor.ConvShape, g, kg int) {
	cg := cs.C / cs.G
	for kf := 0; kf < kg; kf++ {
		kk := g*kg + kf
		col := 0
		for c := 0; c < cg; c++ {
			for r := 0; r < cs.R; r++ {
				for s := 0; s < cs.S; s++ {
					full.Set(dW.At(kf, col), kk, c, r, s)
					col++
				}
			}
		}
	}
}

// col2imAdd scatters column gradients back to input coordinates, summing
// overlaps — the adjoint of Im2Col.
func col2imAdd(dCols, dIn *tensor.Tensor, cs tensor.ConvShape, g int) {
	cg := cs.C / cs.G
	xo, yo := cs.OutX(), cs.OutY()
	col := 0
	for n := 0; n < cs.N; n++ {
		for ox := 0; ox < xo; ox++ {
			for oy := 0; oy < yo; oy++ {
				row := 0
				for c := 0; c < cg; c++ {
					cc := g*cg + c
					for r := 0; r < cs.R; r++ {
						ix := ox*cs.Stride + r - cs.Padding
						for s := 0; s < cs.S; s++ {
							iy := oy*cs.Stride + s - cs.Padding
							if ix >= 0 && ix < cs.X && iy >= 0 && iy < cs.Y {
								dIn.Set(dIn.At(n, cc, ix, iy)+dCols.At(row, col), n, cc, ix, iy)
							}
							row++
						}
					}
				}
				col++
			}
		}
	}
}

func maxPoolBackward(in, out, grad *tensor.Tensor, p PoolShape) (*tensor.Tensor, error) {
	dIn := tensor.New(in.Shape()...)
	n, c := in.Dim(0), in.Dim(1)
	x, y := in.Dim(2), in.Dim(3)
	ox, oy := out.Dim(2), out.Dim(3)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for i := 0; i < ox; i++ {
				for j := 0; j < oy; j++ {
					// Route the gradient to the first element matching the
					// recorded maximum.
					target := out.At(ni, ci, i, j)
					done := false
					for wi := 0; wi < p.Window && !done; wi++ {
						xi := i*p.Stride + wi - p.Padding
						if xi < 0 || xi >= x {
							continue
						}
						for wj := 0; wj < p.Window; wj++ {
							yj := j*p.Stride + wj - p.Padding
							if yj < 0 || yj >= y {
								continue
							}
							//lint:ignore floatcmp argmax recovery: target was copied bit-for-bit out of this window in the forward pass, so exact equality is the correct test
							if in.At(ni, ci, xi, yj) == target {
								dIn.Set(dIn.At(ni, ci, xi, yj)+grad.At(ni, ci, i, j), ni, ci, xi, yj)
								done = true
								break
							}
						}
					}
				}
			}
		}
	}
	return dIn, nil
}

func avgPoolBackward(in, grad *tensor.Tensor, p PoolShape) (*tensor.Tensor, error) {
	dIn := tensor.New(in.Shape()...)
	n, c := in.Dim(0), in.Dim(1)
	x, y := in.Dim(2), in.Dim(3)
	ox, oy := grad.Dim(2), grad.Dim(3)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for i := 0; i < ox; i++ {
				for j := 0; j < oy; j++ {
					// Count the window's in-bounds elements.
					count := 0
					for wi := 0; wi < p.Window; wi++ {
						xi := i*p.Stride + wi - p.Padding
						if xi < 0 || xi >= x {
							continue
						}
						for wj := 0; wj < p.Window; wj++ {
							yj := j*p.Stride + wj - p.Padding
							if yj >= 0 && yj < y {
								count++
							}
						}
					}
					if count == 0 {
						continue
					}
					share := grad.At(ni, ci, i, j) / float32(count)
					for wi := 0; wi < p.Window; wi++ {
						xi := i*p.Stride + wi - p.Padding
						if xi < 0 || xi >= x {
							continue
						}
						for wj := 0; wj < p.Window; wj++ {
							yj := j*p.Stride + wj - p.Padding
							if yj < 0 || yj >= y {
								continue
							}
							dIn.Set(dIn.At(ni, ci, xi, yj)+share, ni, ci, xi, yj)
						}
					}
				}
			}
		}
	}
	return dIn, nil
}
