package dnn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func tinyModel(t *testing.T) (*Model, *Weights, *tensor.Tensor) {
	t.Helper()
	m := &Model{
		Name: "tiny", Short: "T", InputC: 2, InputXY: 6,
		Layers: []Layer{
			{Name: "conv", Kind: Conv, Conv: tensor.ConvShape{
				R: 3, S: 3, C: 2, G: 1, K: 4, N: 1, X: 6, Y: 6, Stride: 1, Padding: 1}},
			{Name: "relu", Kind: ReLU},
			{Name: "pool", Kind: MaxPool, Pool: PoolShape{Window: 2, Stride: 2}},
			{Name: "flat", Kind: Flatten},
			{Name: "fc", Kind: Linear, In: 4 * 3 * 3, Out: 5},
			{Name: "sm", Kind: Softmax},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	w := InitWeights(m, 1)
	return m, w, RandomInput(m, 2)
}

func TestExecutorForward(t *testing.T) {
	m, w, in := tinyModel(t)
	e := &Executor{Model: m, Weights: w, LayerOutputs: map[string]*tensor.Tensor{}}
	out, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("output shape %v", out.Shape())
	}
	// Softmax output sums to 1.
	var sum float64
	for _, v := range out.Data() {
		if v < 0 || v > 1 {
			t.Errorf("softmax value out of range: %v", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("softmax sum %v", sum)
	}
	for _, name := range []string{"conv", "relu", "pool", "fc"} {
		if e.LayerOutputs[name] == nil {
			t.Errorf("layer output %s not recorded", name)
		}
	}
}

// countingOffloader verifies the executor routes exactly the
// compute-intensive layers through the offload seam.
type countingOffloader struct{ names []string }

func (c *countingOffloader) RunLayer(l *Layer, in, w *tensor.Tensor) (*tensor.Tensor, error) {
	c.names = append(c.names, l.Name)
	// Delegate to the native implementations for correctness.
	switch l.Kind {
	case Conv:
		return tensor.Conv2D(in, w, l.Conv)
	case Linear:
		return LinearForward(l, in, w)
	case GEMM:
		a, b, err := GEMMOperands(l, in)
		if err != nil {
			return nil, err
		}
		return tensor.MatMul(a, b)
	}
	return nil, nil
}

func TestExecutorOffloadSeam(t *testing.T) {
	m, w, in := tinyModel(t)
	native, err := (&Executor{Model: m, Weights: w}).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	off := &countingOffloader{}
	got, err := (&Executor{Model: m, Weights: w, Offload: off}).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(off.names) != 2 || off.names[0] != "conv" || off.names[1] != "fc" {
		t.Errorf("offloaded layers %v", off.names)
	}
	if d, _ := tensor.MaxAbsDiff(got, native); d > 1e-5 {
		t.Errorf("offloaded result differs by %v", d)
	}
}

func TestResidualAndConcatExecution(t *testing.T) {
	// ResNet-50 and SqueezeNet exercise Residual/Concat/Detached end to
	// end at a small scale.
	for _, mk := range []func() *Model{ResNet50, SqueezeNet} {
		full := mk()
		m, err := ScaleSpatial(full, 16)
		if err != nil {
			t.Fatal(err)
		}
		w := InitWeights(m, 3)
		e := &Executor{Model: m, Weights: w}
		out, err := e.Run(RandomInput(m, 4))
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s: empty output", m.Name)
		}
		for _, v := range out.Data() {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite output", m.Name)
			}
		}
	}
}

func TestBERTExecution(t *testing.T) {
	m, err := ScaleSpatial(BERT(), 8)
	if err != nil {
		t.Fatal(err)
	}
	w := InitWeights(m, 5)
	out, err := (&Executor{Model: m, Weights: w}).Run(RandomInput(m, 6))
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(out.Rank()-1) != 2 {
		t.Errorf("BERT output shape %v", out.Shape())
	}
}

func TestPruneReachesTarget(t *testing.T) {
	m, err := ScaleSpatial(AlexNet(), 4)
	if err != nil {
		t.Fatal(err)
	}
	w := InitWeights(m, 7)
	if err := w.Prune(0.78); err != nil {
		t.Fatal(err)
	}
	var nnz, total int
	for _, tt := range w.ByLayer {
		nnz += tt.NNZ()
		total += tt.Len()
	}
	got := 1 - float64(nnz)/float64(total)
	if math.Abs(got-0.78) > 0.01 {
		t.Errorf("global sparsity %.3f, want 0.78", got)
	}
	if err := w.Prune(1.5); err == nil {
		t.Error("target 1.5 accepted")
	}
	if err := w.Prune(0); err != nil {
		t.Error("no-op prune failed")
	}
}

func TestPruneCreatesPerFilterVariance(t *testing.T) {
	// The per-filter scale in InitWeights must yield non-uniform
	// per-filter non-zero counts under global pruning (Fig. 7b).
	m, err := ScaleSpatial(VGG16(), 8)
	if err != nil {
		t.Fatal(err)
	}
	w := InitWeights(m, 8)
	if err := w.Prune(0.9); err != nil {
		t.Fatal(err)
	}
	tt := w.ByLayer["conv3_1"]
	k := m.Layers[idxOf(t, m, "conv3_1")].Conv.K
	per := tt.Len() / k
	min, max := per+1, -1
	for r := 0; r < k; r++ {
		n := 0
		for c := 0; c < per; c++ {
			if tt.Data()[r*per+c] != 0 {
				n++
			}
		}
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max < min*2 {
		t.Errorf("per-filter nnz too uniform: min %d max %d", min, max)
	}
}

func idxOf(t *testing.T, m *Model, name string) int {
	t.Helper()
	for i := range m.Layers {
		if m.Layers[i].Name == name {
			return i
		}
	}
	t.Fatalf("layer %s not found", name)
	return -1
}

func TestSNAPEACutSafe(t *testing.T) {
	r := ResNet50()
	safe := SNAPEACutSafe(r)
	if safe["conv1"] != true { // conv1 → bn → relu
		t.Error("conv1 should be cut-safe")
	}
	if safe["res2_1_proj"] {
		t.Error("projection shortcut must not be cut")
	}
	if safe["res2_1_c"] {
		t.Error("pre-add conv must not be cut")
	}
	if !safe["res2_1_a"] || !safe["res2_1_b"] {
		t.Error("bottleneck a/b convs are relu-fed and should be cut-safe")
	}
	s := SqueezeNet()
	sq := SNAPEACutSafe(s)
	if !sq["fire2_expand3x3"] || !sq["fire2_expand1x1"] {
		t.Error("fire expand convs flow through concat to relu: cut-safe")
	}
	if !sq["fire2_squeeze"] {
		t.Error("squeeze conv feeds relu directly: cut-safe")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	p := NewRNG(1).Perm(10)
	seen := map[int]bool{}
	for _, v := range p {
		if seen[v] || v < 0 || v >= 10 {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
	if NewRNG(2).Intn(1) != 0 {
		t.Error("Intn(1) != 0")
	}
}

func TestGEMMOperandsReuseActivation(t *testing.T) {
	l := &Layer{Name: "scores", Kind: GEMM, M: 4, N: 4, K: 8}
	act := tensor.New(4, 8)
	for i, d := 0, act.Data(); i < len(d); i++ {
		d[i] = float32(i)
	}
	a, b, err := GEMMOperands(l, act)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 1 {
		t.Error("A operand is not the activation")
	}
	// B is actᵀ reshaped: act.Len() == K·N == 32 ✓.
	if b.Dim(0) != 8 || b.Dim(1) != 4 {
		t.Errorf("B shape %v", b.Shape())
	}
}
