package dnn

import "fmt"

// ScaleSpatial returns a copy of the model with every spatial dimension
// reduced by the integer factor (input X/Y and the X/Y of every conv layer).
// Channel counts, filter counts and filter sizes are preserved, so the mix
// of layer classes, the tile shapes chosen by the mapper and the sparsity
// behaviour all survive; only the number of output pixels per layer shrinks.
//
// This is the documented substitution that makes full-model cycle-level
// simulation of all seven Table I models feasible on one machine (the
// paper's artifact notes ~5 days on a cluster for the full-resolution runs).
// Experiments record which scale they used.
func ScaleSpatial(m *Model, factor int) (*Model, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dnn: scale factor must be >= 1, got %d", factor)
	}
	if factor == 1 {
		return m, nil
	}
	if m.SeqLen > 0 {
		// Sequence models scale by shortening the sequence.
		out := cloneModel(m)
		out.SeqLen = ceilDiv(m.SeqLen, factor)
		for i := range out.Layers {
			l := &out.Layers[i]
			if l.Batch > 1 {
				l.Batch = ceilDiv(l.Batch, factor)
			}
			if l.Kind == GEMM {
				if l.M == m.SeqLen {
					l.M = out.SeqLen
				}
				if l.N == m.SeqLen {
					l.N = out.SeqLen
				}
				if l.K == m.SeqLen {
					l.K = out.SeqLen
				}
			}
		}
		out.Name = fmt.Sprintf("%s@1/%d", m.Name, factor)
		return out, out.Validate()
	}

	out := cloneModel(m)
	out.Name = fmt.Sprintf("%s@1/%d", m.Name, factor)
	out.InputXY = scaleDim(m.InputXY, factor)
	// Walk the graph forward recomputing each spatial size: conv and pool
	// layers transform it; everything else passes it through.
	x := out.InputXY
	prevLinOutOrig, prevLinOutNew := 0, 0
	for i := range out.Layers {
		l := &out.Layers[i]
		switch l.Kind {
		case Conv:
			l.Conv.X, l.Conv.Y = x, x
			// Shrink the filter or padding if the feature map became too
			// small for the original window.
			for l.Conv.R > x+2*l.Conv.Padding {
				l.Conv.R--
				l.Conv.S--
			}
			if l.Detached {
				continue // side branch: does not advance the main chain
			}
			x = l.Conv.OutX()
		case MaxPool, AvgPool:
			p := &l.Pool
			for p.Window > x+2*p.Padding {
				p.Window--
			}
			if p.Window < 1 {
				p.Window = 1
			}
			if p.Stride > p.Window {
				p.Stride = p.Window
			}
			nx := (x+2*p.Padding-p.Window)/p.Stride + 1
			x = nx
		case Linear:
			// The first linear after a flatten must accept whatever the
			// final feature map flattens to; a linear chained after
			// another linear follows that layer's (possibly shrunk) width.
			origOut := l.Out
			if i > 0 && out.Layers[i-1].Kind == Flatten {
				c := lastChannels(out.Layers[:i])
				if c > 0 {
					l.In = c * x * x
				}
			} else if prevLinOutOrig > 0 && l.In == prevLinOutOrig {
				l.In = prevLinOutNew
			}
			// Hidden fully-connected layers shrink with the model so the
			// conv/fc work balance of the full-resolution network is
			// preserved; the final classifier keeps its class count.
			if l.Out >= 256 && !isFinalLinear(out.Layers, i) {
				l.Out = maxInt(64, l.Out/factor)
			}
			prevLinOutOrig, prevLinOutNew = origOut, l.Out
		}
	}
	return out, out.Validate()
}

func isFinalLinear(layers []Layer, i int) bool {
	for j := i + 1; j < len(layers); j++ {
		if layers[j].Kind == Linear {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func lastChannels(layers []Layer) int {
	for i := len(layers) - 1; i >= 0; i-- {
		l := &layers[i]
		if l.Detached {
			continue
		}
		if l.Kind == Conv {
			return l.Conv.K
		}
	}
	return 0
}

func scaleDim(d, factor int) int {
	v := d / factor
	if v < 8 {
		v = 8
	}
	return v
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// cloneModel copies the model with an independent layer slice; every layer
// field is a value type, so the element copy is already deep.
func cloneModel(m *Model) *Model {
	out := *m
	out.Layers = append([]Layer(nil), m.Layers...)
	return &out
}
