package dnn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/tensor"
)

// Weights file format (the .pb stand-in of Fig. 2): a little-endian binary
// with a magic header and one record per layer:
//
//	magic "STNW" | u32 version | u32 layerCount
//	per layer: u32 nameLen | name | u32 rank | u32 dims... | f32 data...
//
// Records are sorted by layer name so files are byte-reproducible.

const (
	weightsMagic   = "STNW"
	weightsVersion = 1
)

// Save writes all weight tensors to w.
func (ws *Weights) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(weightsMagic); err != nil {
		return err
	}
	names := make([]string, 0, len(ws.ByLayer))
	for name := range ws.ByLayer {
		names = append(names, name)
	}
	sort.Strings(names)
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := writeU32(weightsVersion); err != nil {
		return err
	}
	if err := writeU32(uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		t := ws.ByLayer[name]
		if err := writeU32(uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		shape := t.Shape()
		if err := writeU32(uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := writeU32(uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range t.Data() {
			if err := writeU32(math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveFile writes the weights to a file path.
func (ws *Weights) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dnn: %w", err)
	}
	defer f.Close()
	if err := ws.Save(f); err != nil {
		return fmt.Errorf("dnn: save weights %s: %w", path, err)
	}
	return nil
}

// LoadWeights reads a weights file written by Save.
func LoadWeights(r io.Reader) (*Weights, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dnn: weights header: %w", err)
	}
	if string(magic) != weightsMagic {
		return nil, fmt.Errorf("dnn: not a weights file (magic %q)", magic)
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	version, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("dnn: weights file truncated in header (version): %w", err)
	}
	if version != weightsVersion {
		return nil, fmt.Errorf("dnn: unsupported weights version %d", version)
	}
	count, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("dnn: weights file truncated in header (layer count): %w", err)
	}
	const maxLayers = 1 << 20
	if count > maxLayers {
		return nil, fmt.Errorf("dnn: weights file claims %d layers", count)
	}
	ws := &Weights{ByLayer: make(map[string]*tensor.Tensor, count)}
	for i := uint32(0); i < count; i++ {
		nameLen, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("dnn: weights file truncated at layer %d/%d (name length): %w", i+1, count, err)
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("dnn: layer name length %d", nameLen)
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return nil, fmt.Errorf("dnn: weights file truncated at layer %d/%d (name): %w", i+1, count, err)
		}
		rank, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("dnn: weights file truncated in layer %s (rank): %w", nameBytes, err)
		}
		if rank == 0 || rank > 8 {
			return nil, fmt.Errorf("dnn: layer %s rank %d", nameBytes, rank)
		}
		// The element count accumulates in 64 bits with an early bail so a
		// corrupt header cannot overflow int or provoke a giant allocation.
		const maxElems = 1 << 30
		shape := make([]int, rank)
		n := int64(1)
		for d := range shape {
			v, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("dnn: weights file truncated in layer %s (dim %d): %w", nameBytes, d, err)
			}
			if v == 0 || int64(v) > maxElems {
				return nil, fmt.Errorf("dnn: layer %s dim %d is %d", nameBytes, d, v)
			}
			shape[d] = int(v)
			n *= int64(v)
			if n > maxElems {
				return nil, fmt.Errorf("dnn: layer %s exceeds %d elements", nameBytes, int64(maxElems))
			}
		}
		data := make([]float32, n)
		for j := range data {
			bits, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("dnn: weights file truncated in layer %s (element %d of %d): %w", nameBytes, j, n, err)
			}
			data[j] = math.Float32frombits(bits)
		}
		t, err := tensor.FromSlice(data, shape...)
		if err != nil {
			return nil, fmt.Errorf("dnn: layer %s: %w", nameBytes, err)
		}
		ws.ByLayer[string(nameBytes)] = t
	}
	return ws, nil
}

// LoadWeightsFile reads weights from a file path.
func LoadWeightsFile(path string) (*Weights, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dnn: %w", err)
	}
	defer f.Close()
	ws, err := LoadWeights(f)
	if err != nil {
		return nil, fmt.Errorf("dnn: load weights %s: %w", path, err)
	}
	return ws, nil
}

// CheckWeights verifies the weight set covers every weighted layer of the
// model with the right shapes.
func CheckWeights(m *Model, ws *Weights) error {
	for i := range m.Layers {
		l := &m.Layers[i]
		switch l.Kind {
		case Conv:
			t, ok := ws.ByLayer[l.Name]
			if !ok {
				return fmt.Errorf("dnn: missing weights for conv %s", l.Name)
			}
			cs := l.Conv
			want := []int{cs.K, cs.C / cs.G, cs.R, cs.S}
			if !shapeEqual(t.Shape(), want) {
				return fmt.Errorf("dnn: conv %s weights %v, want %v", l.Name, t.Shape(), want)
			}
		case Linear:
			t, ok := ws.ByLayer[l.Name]
			if !ok {
				return fmt.Errorf("dnn: missing weights for linear %s", l.Name)
			}
			if !shapeEqual(t.Shape(), []int{l.Out, l.In}) {
				return fmt.Errorf("dnn: linear %s weights %v, want [%d %d]", l.Name, t.Shape(), l.Out, l.In)
			}
		}
	}
	return nil
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
