package dnn

import (
	"math"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func trainModel(t *testing.T) (*Model, *Weights, *tensor.Tensor) {
	t.Helper()
	m := &Model{
		Name: "trainnet", InputC: 2, InputXY: 8,
		Layers: []Layer{
			{Name: "conv", Kind: Conv, Conv: tensor.ConvShape{
				R: 3, S: 3, C: 2, G: 1, K: 4, N: 1, X: 8, Y: 8, Stride: 1, Padding: 1}},
			{Name: "relu", Kind: ReLU},
			{Name: "pool", Kind: MaxPool, Pool: PoolShape{Window: 2, Stride: 2}},
			{Name: "flat", Kind: Flatten},
			{Name: "fc", Kind: Linear, In: 4 * 4 * 4, Out: 3},
			{Name: "sm", Kind: Softmax},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	w := InitWeights(m, 31)
	return m, w, RandomInput(m, 32)
}

func TestTrainStepGradientsMatchNumerical(t *testing.T) {
	m, w, in := trainModel(t)
	const label = 1
	res, err := TrainStep(m, w, in, label, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss <= 0 {
		t.Fatalf("loss %v", res.Loss)
	}
	if len(res.Grads) != 2 {
		t.Fatalf("gradients for %d layers, want 2", len(res.Grads))
	}

	lossAt := func() float64 {
		out, err := (&Executor{Model: m, Weights: w}).Run(in)
		if err != nil {
			t.Fatal(err)
		}
		p := float64(out.Data()[label])
		return -math.Log(math.Max(p, 1e-12))
	}

	// Spot-check analytic vs numerical gradients on both layers.
	const eps = 1e-2
	for _, layer := range []string{"conv", "fc"} {
		wt := w.ByLayer[layer]
		g := res.Grads[layer]
		checked := 0
		for idx := 0; idx < wt.Len() && checked < 5; idx += wt.Len()/5 + 1 {
			orig := wt.Data()[idx]
			wt.Data()[idx] = orig + eps
			up := lossAt()
			wt.Data()[idx] = orig - eps
			down := lossAt()
			wt.Data()[idx] = orig
			numerical := (up - down) / (2 * eps)
			analytic := float64(g.Data()[idx])
			if math.Abs(numerical-analytic) > 2e-2*math.Max(1, math.Abs(numerical)) {
				t.Errorf("%s[%d]: analytic %.5f vs numerical %.5f", layer, idx, analytic, numerical)
			}
			checked++
		}
	}
}

func TestSGDStepReducesLoss(t *testing.T) {
	m, w, in := trainModel(t)
	const label = 2
	first, err := TrainStep(m, w, in, label, nil)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		res, err := TrainStep(m, w, in, label, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ApplySGD(w, res.Grads, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	last, err := TrainStep(m, w, in, label, nil)
	if err != nil {
		t.Fatal(err)
	}
	if last.Loss >= first.Loss {
		t.Errorf("loss did not decrease: %.4f -> %.4f", first.Loss, last.Loss)
	}
}

func TestSGDPreservesPrunedMask(t *testing.T) {
	m, w, in := trainModel(t)
	if err := w.Prune(0.6); err != nil {
		t.Fatal(err)
	}
	res, err := TrainStep(m, w, in, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplySGD(w, res.Grads, 0.1); err != nil {
		t.Fatal(err)
	}
	for name, wt := range w.ByLayer {
		sp := wt.Sparsity()
		if sp < 0.55 {
			t.Errorf("%s: sparsity collapsed to %.2f after SGD", name, sp)
		}
	}
}

// countingGEMM verifies the trainer routes the heavy products through the
// runner (the simulated-accelerator seam).
type countingGEMM struct{ tags []string }

func (c *countingGEMM) RunTrainGEMM(a, b *tensor.Tensor, tag string) (*tensor.Tensor, error) {
	c.tags = append(c.tags, tag)
	return tensor.MatMul(a, b)
}

func TestTrainStepOffloadsGEMMs(t *testing.T) {
	m, w, in := trainModel(t)
	run := &countingGEMM{}
	if _, err := TrainStep(m, w, in, 0, run); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"conv.fwd": true, "fc.fwd": true,
		"conv.dW": true, "conv.dX": true,
		"fc.dW": true, "fc.dX": true,
	}
	got := map[string]bool{}
	for _, tag := range run.tags {
		got[tag] = true
	}
	for tag := range want {
		if !got[tag] {
			t.Errorf("GEMM %s never offloaded (got %v)", tag, run.tags)
		}
	}
}

func TestTrainStepRejectsSkipGraphs(t *testing.T) {
	m, err := ScaleSpatial(ResNet50(), 16)
	if err != nil {
		t.Fatal(err)
	}
	w := InitWeights(m, 1)
	if _, err := TrainStep(m, w, RandomInput(m, 1), 0, nil); err == nil {
		t.Error("residual model accepted")
	}
}

func TestTrainStepErrors(t *testing.T) {
	m, w, in := trainModel(t)
	if _, err := TrainStep(m, w, in, 99, nil); err == nil {
		t.Error("out-of-range label accepted")
	}
	noSM := &Model{Name: "x", InputC: 1, InputXY: 4, Layers: []Layer{
		{Name: "fc", Kind: Linear, In: 16, Out: 2},
	}}
	wx := InitWeights(noSM, 1)
	if _, err := TrainStep(noSM, wx, RandomInput(noSM, 1), 0, nil); err == nil {
		t.Error("model without softmax accepted")
	}
}

// TestApplySGDDeterministicError pins the sorted layer walk in ApplySGD:
// with several stale gradients, the reported unknown layer must always be
// the lexicographically first, not whichever the map yielded first.
func TestApplySGDDeterministicError(t *testing.T) {
	w := &Weights{ByLayer: map[string]*tensor.Tensor{}}
	grads := map[string]*tensor.Tensor{
		"zeta":  tensor.New(2),
		"alpha": tensor.New(2),
		"mid":   tensor.New(2),
	}
	for i := 0; i < 20; i++ {
		err := ApplySGD(w, grads, 0.1)
		if err == nil {
			t.Fatal("expected unknown-layer error")
		}
		if !strings.Contains(err.Error(), "alpha") {
			t.Fatalf("iteration %d: error names %q, want the first layer alpha", i, err)
		}
	}
}
