package dnn

// SNAPEACutSafe returns, per convolution layer name, whether the SNAPEA
// exact-mode early cut is sound for it: the layer's output must flow into
// a ReLU through value-preserving operators only — an inference-time batch
// norm (identity here) or a channel concatenation (elements pass through
// untouched). A truncated partial sum is ≤ 0 and the true sum is ≤ it, so
// the ReLU zeroes both. Convolutions feeding residual adds must run to
// completion: the add mixes the value with another activation, and a
// truncated operand would change the final result.
func SNAPEACutSafe(m *Model) map[string]bool {
	safe := make(map[string]bool)
	for i := range m.Layers {
		l := &m.Layers[i]
		if l.Kind != Conv {
			continue
		}
		if l.Detached {
			safe[l.Name] = detachedCutSafe(m, l)
			continue
		}
		safe[l.Name] = mainChainCutSafe(m, i)
	}
	return safe
}

// mainChainCutSafe scans forward from layer index i along the main chain.
func mainChainCutSafe(m *Model, i int) bool {
	for j := i + 1; j < len(m.Layers); j++ {
		n := &m.Layers[j]
		if n.Detached {
			continue // side branch consumes the same input, not our output
		}
		switch n.Kind {
		case BatchNorm, Concat:
			continue // value-preserving for the elements flowing through
		case ReLU:
			return true
		default:
			return false // residual add, pool, softmax, linear, ...
		}
	}
	return false
}

// detachedCutSafe traces a side branch: its output is consumed by the
// layer whose SkipFrom names its SaveAs key. Consumption by a Concat keeps
// elements intact, so the scan continues from there; a Residual add makes
// the cut unsound.
func detachedCutSafe(m *Model, l *Layer) bool {
	for j := range m.Layers {
		n := &m.Layers[j]
		if n.SkipFrom != l.SaveAs {
			continue
		}
		switch n.Kind {
		case Concat:
			return mainChainCutSafe(m, j)
		default:
			return false
		}
	}
	return false
}
