package dnn

import (
	"testing"
)

func TestAllModelsValidate(t *testing.T) {
	for _, m := range AllModels() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestAllModelsHaveOffloadedLayers(t *testing.T) {
	for _, m := range AllModels() {
		if n := len(m.OffloadedLayers()); n < 5 {
			t.Errorf("%s: only %d offloaded layers", m.Name, n)
		}
	}
}

func TestTotalMACsPlausible(t *testing.T) {
	// Published dense MAC counts (±35%): the layer inventories are the
	// real architectures, so totals must land near the literature values.
	want := map[string]float64{
		"Alexnet":       715e6, // ~0.72 GMACs
		"VGG-16":        15.5e9,
		"Resnets-50":    4.1e9,
		"Mobilenets-V1": 569e6,
		"Squeezenet":    830e6, // v1.0 with paired expand convs
	}
	for _, m := range AllModels() {
		w, ok := want[m.Name]
		if !ok {
			continue
		}
		got := float64(m.TotalMACs())
		if got < w*0.65 || got > w*1.35 {
			t.Errorf("%s: MACs = %.3g, want within 35%% of %.3g", m.Name, got, w)
		}
	}
}

func TestScaleSpatialValidates(t *testing.T) {
	for _, m := range AllModels() {
		for _, f := range []int{2, 4, 8} {
			s, err := ScaleSpatial(m, f)
			if err != nil {
				t.Errorf("%s @1/%d: %v", m.Name, f, err)
				continue
			}
			if s.TotalMACs() >= m.TotalMACs() && m.SeqLen == 0 {
				t.Errorf("%s @1/%d: MACs did not shrink (%d -> %d)",
					m.Name, f, m.TotalMACs(), s.TotalMACs())
			}
		}
	}
}

func TestModelByShort(t *testing.T) {
	for _, tag := range []string{"M", "S", "A", "R", "V", "S-M", "B"} {
		if _, err := ModelByShort(tag); err != nil {
			t.Errorf("tag %s: %v", tag, err)
		}
	}
	if _, err := ModelByShort("nope"); err == nil {
		t.Error("expected error for unknown tag")
	}
}
