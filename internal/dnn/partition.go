package dnn

// PartitionLayers splits a model's layers into at most `parts` contiguous
// stages balanced by MAC volume — the layer-parallel chip placement's cut
// points. Each stage is a [start, end) index range into m.Layers; the
// ranges are non-empty, in order, and cover every layer exactly once.
// Native layers carry a nominal unit weight so activation-only tails
// (pooling, softmax) still land somewhere sensible instead of all
// gravitating to the last stage.
func PartitionLayers(m *Model, parts int) [][2]int {
	n := len(m.Layers)
	if parts > n {
		parts = n
	}
	if parts <= 1 {
		return [][2]int{{0, n}}
	}
	weights := make([]uint64, n)
	var total uint64
	for i := range m.Layers {
		w := uint64(m.Layers[i].MACs()) + 1
		weights[i] = w
		total += w
	}
	bounds := make([][2]int, 0, parts)
	start := 0
	var acc uint64
	for i := 0; i < n; i++ {
		acc += weights[i]
		emitted := len(bounds)
		stagesLeft := parts - emitted - 1
		layersLeft := n - i - 1
		if stagesLeft == 0 {
			break
		}
		// Cut at the running quantile, or when the remaining layers are
		// only just enough to keep every later stage non-empty.
		if acc*uint64(parts) >= total*uint64(emitted+1) || layersLeft == stagesLeft {
			bounds = append(bounds, [2]int{start, i + 1})
			start = i + 1
		}
	}
	return append(bounds, [2]int{start, n})
}
