package dnn

import (
	"fmt"

	"repro/internal/tensor"
)

// Table I of the paper: the seven contemporary DNN models, their domains and
// their average weight sparsity after unstructured pruning.
//
// Shapes follow the published architectures (MobileNets-V1, SqueezeNet v1.0,
// AlexNet, ResNet-50, VGG-16, SSD-MobileNets, BERT-base).

// conv is a builder shorthand.
func conv(name string, class Class, k, c, g, x, r, stride, pad int) Layer {
	return Layer{
		Name:  name,
		Kind:  Conv,
		Class: class,
		Conv: tensor.ConvShape{
			R: r, S: r, C: c, G: g, K: k, N: 1, X: x, Y: x,
			Stride: stride, Padding: pad,
		},
	}
}

func relu(name string) Layer  { return Layer{Name: name, Kind: ReLU, Class: ClassNA} }
func bnorm(name string) Layer { return Layer{Name: name, Kind: BatchNorm, Class: ClassNA} }

func maxpool(name string, w, s, p int) Layer {
	return Layer{Name: name, Kind: MaxPool, Class: ClassNA, Pool: PoolShape{Window: w, Stride: s, Padding: p}}
}

func avgpool(name string, w, s int) Layer {
	return Layer{Name: name, Kind: AvgPool, Class: ClassNA, Pool: PoolShape{Window: w, Stride: s}}
}

func linear(name string, class Class, out, in int) Layer {
	return Layer{Name: name, Kind: Linear, Class: class, In: in, Out: out}
}

func flatten(name string) Layer { return Layer{Name: name, Kind: Flatten, Class: ClassNA} }

// AlexNet builds the AlexNet (A) image-classification model, 78% sparsity.
func AlexNet() *Model {
	m := &Model{
		Name: "Alexnet", Short: "A", Domain: "Image Classification",
		Sparsity: 0.78, InputC: 3, InputXY: 227,
	}
	m.Layers = []Layer{
		conv("conv1", ClassC, 96, 3, 1, 227, 11, 4, 0), relu("relu1"),
		maxpool("pool1", 3, 2, 0),
		conv("conv2", ClassC, 256, 96, 2, 27, 5, 1, 2), relu("relu2"),
		maxpool("pool2", 3, 2, 0),
		conv("conv3", ClassC, 384, 256, 1, 13, 3, 1, 1), relu("relu3"),
		conv("conv4", ClassC, 384, 384, 2, 13, 3, 1, 1), relu("relu4"),
		conv("conv5", ClassC, 256, 384, 2, 13, 3, 1, 1), relu("relu5"),
		maxpool("pool5", 3, 2, 0),
		flatten("flatten"),
		linear("fc6", ClassL, 4096, 256*6*6), relu("relu6"),
		linear("fc7", ClassL, 4096, 4096), relu("relu7"),
		linear("fc8", ClassL, 1000, 4096),
		{Name: "softmax", Kind: Softmax, Class: ClassNA},
	}
	return m
}

// VGG16 builds the VGG-16 (V) model, 90% sparsity.
func VGG16() *Model {
	m := &Model{
		Name: "VGG-16", Short: "V", Domain: "Image Classification",
		Sparsity: 0.90, InputC: 3, InputXY: 224,
	}
	type blk struct{ n, c, x, reps int }
	blocks := []blk{
		{64, 3, 224, 2}, {128, 64, 112, 2}, {256, 128, 56, 3},
		{512, 256, 28, 3}, {512, 512, 14, 3},
	}
	for bi, b := range blocks {
		c := b.c
		for r := 0; r < b.reps; r++ {
			name := fmt.Sprintf("conv%d_%d", bi+1, r+1)
			m.Layers = append(m.Layers,
				conv(name, ClassC, b.n, c, 1, b.x, 3, 1, 1), relu("relu_"+name))
			c = b.n
		}
		m.Layers = append(m.Layers, maxpool(fmt.Sprintf("pool%d", bi+1), 2, 2, 0))
	}
	m.Layers = append(m.Layers,
		flatten("flatten"),
		linear("fc6", ClassL, 4096, 512*7*7), relu("relu_fc6"),
		linear("fc7", ClassL, 4096, 4096), relu("relu_fc7"),
		linear("fc8", ClassL, 1000, 4096),
		Layer{Name: "softmax", Kind: Softmax, Class: ClassNA},
	)
	return m
}

// MobileNetsV1 builds the MobileNets-V1 (M) model, 75% sparsity. Its
// depthwise convolutions are the paper's "Factorized Convolution" class.
func MobileNetsV1() *Model {
	m := &Model{
		Name: "Mobilenets-V1", Short: "M", Domain: "Image Classification",
		Sparsity: 0.75, InputC: 3, InputXY: 224,
	}
	m.Layers = append(m.Layers,
		conv("conv1", ClassC, 32, 3, 1, 224, 3, 2, 1), bnorm("bn1"), relu("relu1"))
	type blk struct{ cin, cout, x, stride int }
	blocks := []blk{
		{32, 64, 112, 1}, {64, 128, 112, 2}, {128, 128, 56, 1},
		{128, 256, 56, 2}, {256, 256, 28, 1}, {256, 512, 28, 2},
		{512, 512, 14, 1}, {512, 512, 14, 1}, {512, 512, 14, 1},
		{512, 512, 14, 1}, {512, 512, 14, 1}, {512, 1024, 14, 2},
		{1024, 1024, 7, 1},
	}
	for i, b := range blocks {
		dw := fmt.Sprintf("dw%d", i+2)
		pw := fmt.Sprintf("pw%d", i+2)
		xOut := b.x
		if b.stride == 2 {
			xOut = b.x / 2
		}
		m.Layers = append(m.Layers,
			conv(dw, ClassFC, b.cin, b.cin, b.cin, b.x, 3, b.stride, 1),
			bnorm("bn_"+dw), relu("relu_"+dw),
			conv(pw, ClassC, b.cout, b.cin, 1, xOut, 1, 1, 0),
			bnorm("bn_"+pw), relu("relu_"+pw),
		)
	}
	m.Layers = append(m.Layers,
		avgpool("avgpool", 7, 7),
		flatten("flatten"),
		linear("fc", ClassL, 1000, 1024),
		Layer{Name: "softmax", Kind: Softmax, Class: ClassNA},
	)
	return m
}

// SqueezeNet builds the SqueezeNet v1.0 (S) model, 70% sparsity. Squeeze
// 1×1 convolutions are class SC; expand convolutions class EC.
func SqueezeNet() *Model {
	m := &Model{
		Name: "Squeezenet", Short: "S", Domain: "Image Classification",
		Sparsity: 0.70, InputC: 3, InputXY: 224,
	}
	m.Layers = append(m.Layers,
		conv("conv1", ClassC, 96, 3, 1, 224, 7, 2, 0), relu("relu1"),
		maxpool("pool1", 3, 2, 0))
	// fire(name, cin, squeeze, expand) at spatial size x: a 1×1 squeeze
	// conv followed by two expand branches (1×1 as a detached side branch,
	// 3×3 on the main chain) whose outputs are channel-concatenated to
	// 2·e channels — the real SqueezeNet v1.0 fire module.
	fire := func(name string, cin, s, e, x int) []Layer {
		e1 := conv(name+"_expand1x1", ClassEC, e, s, 1, x, 1, 1, 0)
		e1.Detached = true
		e1.SaveAs = name + "_e1"
		return []Layer{
			conv(name+"_squeeze", ClassSC, s, cin, 1, x, 1, 1, 0), relu(name + "_srelu"),
			e1,
			conv(name+"_expand3x3", ClassEC, e, s, 1, x, 3, 1, 1),
			{Name: name + "_concat", Kind: Concat, Class: ClassNA, SkipFrom: name + "_e1"},
			relu(name + "_erelu"),
		}
	}
	m.Layers = append(m.Layers, fire("fire2", 96, 16, 64, 54)...)
	m.Layers = append(m.Layers, fire("fire3", 128, 16, 64, 54)...)
	m.Layers = append(m.Layers, fire("fire4", 128, 32, 128, 54)...)
	m.Layers = append(m.Layers, maxpool("pool4", 3, 2, 0))
	m.Layers = append(m.Layers, fire("fire5", 256, 32, 128, 26)...)
	m.Layers = append(m.Layers, fire("fire6", 256, 48, 192, 26)...)
	m.Layers = append(m.Layers, fire("fire7", 384, 48, 192, 26)...)
	m.Layers = append(m.Layers, fire("fire8", 384, 64, 256, 26)...)
	m.Layers = append(m.Layers, maxpool("pool8", 3, 2, 0))
	m.Layers = append(m.Layers, fire("fire9", 512, 64, 256, 12)...)
	m.Layers = append(m.Layers,
		conv("conv10", ClassC, 1000, 512, 1, 12, 1, 1, 0), relu("relu10"),
		avgpool("avgpool", 12, 12),
		flatten("flatten"),
		Layer{Name: "softmax", Kind: Softmax, Class: ClassNA},
	)
	return m
}

// ResNet50 builds the ResNet-50 (R) model, 89% sparsity. Bottleneck blocks
// provide the paper's "Residual Function" class.
func ResNet50() *Model {
	m := &Model{
		Name: "Resnets-50", Short: "R", Domain: "Image Classification",
		Sparsity: 0.89, InputC: 3, InputXY: 224,
	}
	m.Layers = append(m.Layers,
		conv("conv1", ClassC, 64, 3, 1, 224, 7, 2, 3), bnorm("bn1"), relu("relu1"),
		maxpool("pool1", 3, 2, 1))
	type stage struct{ mid, out, x, reps, firstStride int }
	stages := []stage{
		{64, 256, 56, 3, 1},
		{128, 512, 56, 4, 2},
		{256, 1024, 28, 6, 2},
		{512, 2048, 14, 3, 2},
	}
	cin := 64
	for si, st := range stages {
		x := st.x
		for r := 0; r < st.reps; r++ {
			stride := 1
			if r == 0 {
				stride = st.firstStride
			}
			base := fmt.Sprintf("res%d_%d", si+2, r+1)
			xOut := x
			if stride == 2 {
				xOut = x / 2
			}
			// Projection shortcut on the first block of each stage. The
			// projection is a detached side branch: it consumes the block
			// input and stores the shortcut, while the main chain proceeds
			// through the bottleneck.
			if r == 0 {
				proj := conv(base+"_proj", ClassRF, st.out, cin, 1, x, 1, stride, 0)
				proj.SaveAs = base + "_skip"
				proj.Detached = true
				m.Layers = append(m.Layers, proj)
			} else {
				m.Layers = append(m.Layers, Layer{
					Name: base + "_id", Kind: ReLU, Class: ClassNA, SaveAs: base + "_skip",
				})
			}
			m.Layers = append(m.Layers,
				conv(base+"_a", ClassRF, st.mid, cin, 1, x, 1, stride, 0),
				bnorm(base+"_bna"), relu(base+"_rla"),
				conv(base+"_b", ClassRF, st.mid, st.mid, 1, xOut, 3, 1, 1),
				bnorm(base+"_bnb"), relu(base+"_rlb"),
				conv(base+"_c", ClassRF, st.out, st.mid, 1, xOut, 1, 1, 0),
				bnorm(base+"_bnc"),
				Layer{Name: base + "_add", Kind: Residual, Class: ClassNA, SkipFrom: base + "_skip"},
				relu(base+"_rlc"),
			)
			cin = st.out
			x = xOut
		}
	}
	m.Layers = append(m.Layers,
		avgpool("avgpool", 7, 7),
		flatten("flatten"),
		linear("fc", ClassL, 1000, 2048),
		Layer{Name: "softmax", Kind: Softmax, Class: ClassNA},
	)
	return m
}

// SSDMobileNets builds the SSD-MobileNets (S-M) object-detection model,
// 75% sparsity: the MobileNets-V1 backbone (without classifier) plus the
// SSD extra feature layers and prediction heads.
func SSDMobileNets() *Model {
	base := MobileNetsV1()
	m := &Model{
		Name: "SSD-Mobilenets", Short: "S-M", Domain: "Object Detection",
		Sparsity: 0.75, InputC: 3, InputXY: 224,
	}
	// Backbone: everything up to (not including) the average pool.
	for _, l := range base.Layers {
		if l.Name == "avgpool" {
			break
		}
		m.Layers = append(m.Layers, l)
	}
	// SSD extra feature layers (1×1 squeeze + 3×3 stride-2), 7×7 → 4 → 2 → 1.
	extras := []struct {
		name     string
		cin, mid int
		cout, x  int
	}{
		{"extra1", 1024, 256, 512, 7},
		{"extra2", 512, 128, 256, 4},
		{"extra3", 256, 128, 256, 2},
	}
	for _, e := range extras {
		m.Layers = append(m.Layers,
			conv(e.name+"_1x1", ClassC, e.mid, e.cin, 1, e.x, 1, 1, 0), relu(e.name+"_r1"),
			conv(e.name+"_3x3", ClassC, e.cout, e.mid, 1, e.x, 3, 2, 1), relu(e.name+"_r2"),
		)
	}
	// Prediction heads off the last feature map: localization (4 coords ×
	// 6 anchors, a detached branch) and classification (91 COCO classes ×
	// 6 anchors, the main chain).
	locHead := conv("loc_head", ClassC, 24, 256, 1, 1, 1, 1, 0)
	locHead.Detached = true
	locHead.SaveAs = "loc"
	m.Layers = append(m.Layers,
		locHead,
		conv("cls_head", ClassC, 546, 256, 1, 1, 1, 1, 0),
		flatten("flatten"),
		linear("det_fc", ClassL, 100, 546),
		Layer{Name: "softmax", Kind: Softmax, Class: ClassNA},
	)
	return m
}

// BERT builds the BERT-base (B) language model, 60% sparsity, sequence
// length 128. Each of the 12 encoder layers contributes the Q/K/V and
// output projections plus the attention-score and attention-context GEMMs
// (class TR) and the two feed-forward projections (class L).
func BERT() *Model {
	const (
		hidden = 768
		ffn    = 3072
		seq    = 128
		layers = 12
	)
	m := &Model{
		Name: "BERT", Short: "B", Domain: "Language Processing",
		Sparsity: 0.60, SeqLen: seq,
	}
	seqLinear := func(name string, class Class, out, in int) Layer {
		l := linear(name, class, out, in)
		l.Batch = seq
		return l
	}
	for i := 1; i <= layers; i++ {
		p := fmt.Sprintf("enc%d_", i)
		m.Layers = append(m.Layers,
			seqLinear(p+"q", ClassTR, hidden, hidden),
			seqLinear(p+"k", ClassTR, hidden, hidden),
			seqLinear(p+"v", ClassTR, hidden, hidden),
			// Attention scores QK^T and context SV, per 12 heads merged
			// into single GEMMs of equivalent MAC volume.
			Layer{Name: p + "scores", Kind: GEMM, Class: ClassTR, M: seq, N: seq, K: hidden},
			Layer{Name: p + "context", Kind: GEMM, Class: ClassTR, M: seq, N: hidden, K: seq},
			seqLinear(p+"attnout", ClassTR, hidden, hidden),
			seqLinear(p+"ffn_up", ClassL, ffn, hidden),
			seqLinear(p+"ffn_down", ClassL, hidden, ffn),
		)
	}
	m.Layers = append(m.Layers,
		seqLinear("cls", ClassL, 2, hidden),
		Layer{Name: "softmax", Kind: Softmax, Class: ClassNA},
	)
	return m
}

// AllModels returns the seven models of Table I in the paper's order.
func AllModels() []*Model {
	return []*Model{
		MobileNetsV1(), SqueezeNet(), AlexNet(), ResNet50(), VGG16(),
		SSDMobileNets(), BERT(),
	}
}

// ModelByShort looks a model up by its figure tag (M, S, A, R, V, S-M, B).
func ModelByShort(short string) (*Model, error) {
	for _, m := range AllModels() {
		if m.Short == short {
			return m, nil
		}
	}
	return nil, fmt.Errorf("dnn: no model with tag %q", short)
}
