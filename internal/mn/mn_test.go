package mn

import (
	"testing"

	"repro/internal/comp"
)

func newTestArray(t *testing.T, n int) (*Array, *comp.Counters) {
	t.Helper()
	c := comp.NewCounters()
	return NewArray(n, 4, true, c), c
}

func TestConfigureVNs(t *testing.T) {
	a, _ := newTestArray(t, 8)
	if err := a.ConfigureVNs([][]int{{0, 1, 2}, {3, 4, 5}}); err != nil {
		t.Fatal(err)
	}
	if err := a.ConfigureVNs([][]int{{0, 1}, {1, 2}}); err == nil {
		t.Error("overlapping VNs accepted")
	}
	if err := a.ConfigureVNs([][]int{{0, 99}}); err == nil {
		t.Error("out-of-range member accepted")
	}
}

func TestMultiplyFlow(t *testing.T) {
	a, c := newTestArray(t, 4)
	if err := a.ConfigureVNs([][]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	// Load stationary weights, then stream one input per switch.
	a.Deliver(0, comp.Packet{Value: 2, Kind: comp.WeightPkt})
	a.Deliver(1, comp.Packet{Value: 3, Kind: comp.WeightPkt})
	a.Deliver(0, comp.Packet{Value: 10, Kind: comp.InputPkt, Seq: 0})
	a.Deliver(1, comp.Packet{Value: 10, Kind: comp.InputPkt, Seq: 0})
	a.Cycle()
	if !a.ReadyVN(0, 0, 2) {
		t.Fatal("VN not ready after multiply")
	}
	values, _ := a.PopVN(0, 0)
	if len(values) != 2 || values[0] != 20 || values[1] != 30 {
		t.Errorf("products %v", values)
	}
	if c.Get("mn.mults") != 2 {
		t.Errorf("mults = %d", c.Get("mn.mults"))
	}
	if !a.Idle() {
		t.Error("array not idle after pop")
	}
}

func TestInputWithoutStationaryStalls(t *testing.T) {
	a, c := newTestArray(t, 2)
	a.Deliver(0, comp.Packet{Value: 5, Kind: comp.InputPkt, Seq: 0})
	a.Cycle()
	if c.Get("mn.mults") != 0 {
		t.Error("multiplied without stationary operand")
	}
	a.Deliver(0, comp.Packet{Value: 4, Kind: comp.WeightPkt})
	a.Cycle()
	if c.Get("mn.mults") != 1 {
		t.Error("did not multiply once weight arrived")
	}
}

func TestFIFOBackpressure(t *testing.T) {
	a, _ := newTestArray(t, 1)
	a.Deliver(0, comp.Packet{Value: 1, Kind: comp.WeightPkt})
	for i := 0; i < 4; i++ {
		if !a.Deliver(0, comp.Packet{Value: 1, Kind: comp.InputPkt, Seq: i}) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if a.Deliver(0, comp.Packet{Value: 1, Kind: comp.InputPkt, Seq: 4}) {
		t.Error("push above FIFO capacity accepted")
	}
	if a.CanDeliver(0, comp.Packet{Kind: comp.InputPkt}) {
		t.Error("CanDeliver true on full FIFO")
	}
}

func TestPsumLatchLimitsRunAhead(t *testing.T) {
	a, _ := newTestArray(t, 1)
	a.ConfigureVNs([][]int{{0}})
	a.Deliver(0, comp.Packet{Value: 1, Kind: comp.WeightPkt})
	for i := 0; i < 4; i++ {
		a.Deliver(0, comp.Packet{Value: float32(i), Kind: comp.InputPkt, Seq: i})
	}
	a.Cycle()
	a.Cycle()
	a.Cycle() // latch depth 2: the third multiply must stall
	if got := a.FIFOOccupancy(); got != 2 {
		t.Errorf("FIFO occupancy %d, want 2 (stalled on full latch)", got)
	}
	a.PopVN(0, 0)
	a.Cycle()
	if got := a.FIFOOccupancy(); got != 1 {
		t.Errorf("occupancy after drain %d, want 1", got)
	}
}

func TestGenerationShadowSwap(t *testing.T) {
	a, c := newTestArray(t, 1)
	a.ConfigureVNs([][]int{{0}})
	// Round 1 stationary in the shadow, then its input promotes it.
	a.Deliver(0, comp.Packet{Value: 3, Kind: comp.WeightPkt, Gen: 1})
	a.Deliver(0, comp.Packet{Value: 2, Kind: comp.InputPkt, Seq: 0, Gen: 1})
	a.Cycle()
	v, _ := a.PopVN(0, 0)
	if len(v) != 1 || v[0] != 6 {
		t.Fatalf("gen-1 product %v", v)
	}
	// Round 2 shadow can load while round 1 was still computing.
	a.Deliver(0, comp.Packet{Value: 10, Kind: comp.WeightPkt, Gen: 2})
	a.Deliver(0, comp.Packet{Value: 5, Kind: comp.InputPkt, Seq: 1, Gen: 2})
	a.Cycle()
	v, _ = a.PopVN(0, 1)
	if len(v) != 1 || v[0] != 50 {
		t.Fatalf("gen-2 product %v", v)
	}
	if c.Get("mn.mults") != 2 {
		t.Errorf("mults %d", c.Get("mn.mults"))
	}
}

func TestShadowOverwriteRules(t *testing.T) {
	a, _ := newTestArray(t, 1)
	// Unconsumed shadow + empty FIFO: overwrite allowed (the round had no
	// inputs for this switch).
	a.Deliver(0, comp.Packet{Value: 1, Kind: comp.WeightPkt, Gen: 1})
	if !a.CanDeliver(0, comp.Packet{Kind: comp.WeightPkt, Gen: 2}) {
		t.Error("safe shadow overwrite rejected")
	}
	if !a.Deliver(0, comp.Packet{Value: 2, Kind: comp.WeightPkt, Gen: 2}) {
		t.Error("safe shadow overwrite failed")
	}
	// Unconsumed shadow + queued input: overwrite must be rejected.
	a.Deliver(0, comp.Packet{Value: 7, Kind: comp.InputPkt, Seq: 0, Gen: 2})
	if a.CanDeliver(0, comp.Packet{Kind: comp.WeightPkt, Gen: 3}) {
		t.Error("unsafe shadow overwrite allowed by CanDeliver")
	}
	if a.Deliver(0, comp.Packet{Value: 3, Kind: comp.WeightPkt, Gen: 3}) {
		t.Error("unsafe shadow overwrite accepted by Deliver")
	}
}

func TestInputStallsUntilItsGeneration(t *testing.T) {
	a, c := newTestArray(t, 1)
	a.ConfigureVNs([][]int{{0}})
	// Input of gen 1 arrives before its weight: must stall.
	a.Deliver(0, comp.Packet{Value: 2, Kind: comp.InputPkt, Seq: 0, Gen: 1})
	a.Cycle()
	if c.Get("mn.mults") != 0 {
		t.Fatal("multiplied before the generation's stationary arrived")
	}
	a.Deliver(0, comp.Packet{Value: 4, Kind: comp.WeightPkt, Gen: 1})
	a.Cycle()
	if c.Get("mn.mults") != 1 {
		t.Error("stalled input never fired")
	}
	v, _ := a.PopVN(0, 0)
	if v[0] != 8 {
		t.Errorf("product %v", v)
	}
}

func TestForward(t *testing.T) {
	a, c := newTestArray(t, 2)
	a.ConfigureVNs([][]int{{0}, {1}})
	a.Deliver(0, comp.Packet{Value: 1, Kind: comp.WeightPkt})
	a.Deliver(1, comp.Packet{Value: 1, Kind: comp.WeightPkt})
	if a.Forward(0, 1) {
		t.Error("forward before source saw any input")
	}
	a.Deliver(0, comp.Packet{Value: 9, Kind: comp.InputPkt, Seq: 0})
	a.Cycle()
	if !a.Forward(0, 1) {
		t.Fatal("forward failed")
	}
	a.Cycle()
	v, _ := a.PopVN(1, 0)
	if len(v) != 1 || v[0] != 9 {
		t.Errorf("forwarded product %v", v)
	}
	if c.Get("mn.forwards") != 1 {
		t.Errorf("forwards %d", c.Get("mn.forwards"))
	}
	// Disabled MN rejects forwarding.
	d := NewArray(2, 4, false, comp.NewCounters())
	if d.Forward(0, 1) {
		t.Error("DMN forwarded")
	}
}

func TestPopMembersMatchesSeqOnly(t *testing.T) {
	a, _ := newTestArray(t, 2)
	a.ConfigureVNs([][]int{{0, 1}})
	a.Deliver(0, comp.Packet{Value: 1, Kind: comp.WeightPkt})
	a.Deliver(1, comp.Packet{Value: 1, Kind: comp.WeightPkt})
	// Switch 0 has steps 0 and 1; switch 1 only step 1.
	a.Deliver(0, comp.Packet{Value: 10, Kind: comp.InputPkt, Seq: 0})
	a.Deliver(0, comp.Packet{Value: 20, Kind: comp.InputPkt, Seq: 1})
	a.Deliver(1, comp.Packet{Value: 30, Kind: comp.InputPkt, Seq: 1})
	a.Cycle()
	a.Cycle()
	if !a.ReadyMembers([]int{0, 1}, 0, 1) {
		t.Fatal("step 0 not ready with expect=1")
	}
	v, _ := a.PopMembers([]int{0, 1}, 0)
	if len(v) != 1 || v[0] != 10 {
		t.Fatalf("step 0 pop %v", v)
	}
	if !a.ReadyMembers([]int{0, 1}, 1, 2) {
		t.Fatal("step 1 not ready")
	}
	v, _ = a.PopMembers([]int{0, 1}, 1)
	if len(v) != 2 {
		t.Fatalf("step 1 pop %v", v)
	}
}

func TestQuiescentAndInvalidate(t *testing.T) {
	a, _ := newTestArray(t, 2)
	a.ConfigureVNs([][]int{{0}})
	a.Deliver(0, comp.Packet{Value: 1, Kind: comp.WeightPkt})
	a.Deliver(0, comp.Packet{Value: 2, Kind: comp.InputPkt, Seq: 0})
	if a.QuiescentSet([]int{0}) {
		t.Error("quiescent with queued input")
	}
	a.Cycle()
	if a.QuiescentSet([]int{0}) {
		t.Error("quiescent with latched psum")
	}
	a.PopVN(0, 0)
	if !a.QuiescentSet([]int{0}) {
		t.Error("not quiescent after drain")
	}
	a.InvalidateStationary([]int{0})
	if a.StationaryLoaded([]int{0}) {
		t.Error("stationary still loaded after invalidate")
	}
}
