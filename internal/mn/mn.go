// Package mn implements the multiplier network of Section IV-A.2: the array
// of Multiplier Switches (MSs) holding a stationary operand and multiplying
// it with streamed operands, with optional forwarding links between
// neighbouring switches (Linear MN) that exploit the sliding-window reuse
// of convolutions.
//
// The mn.active_cycles counter doubles as the trace layer's busy probe for
// the MN tier (internal/trace): it must fire exactly on cycles where at
// least one multiplier produced work.
package mn

import (
	"fmt"

	"repro/internal/comp"
	"repro/internal/comp/names"
)

// psumLatchDepth bounds how many reduce steps a switch can run ahead of
// the reduction network before stalling.
const psumLatchDepth = 2

type msState struct {
	stationary float32
	hasStat    bool
	curGen     uint32
	// shadow is the double-buffered stationary register (SIGMA rounds):
	// loaded ahead of time, promoted when the first input of its
	// generation arrives.
	shadow    float32
	shadowGen uint32
	hasShadow bool

	in           *comp.FIFO
	psums        []psum // latched products awaiting reduction, in step order
	lastInput    float32
	lastInputSeq int
	hasLast      bool
}

type psum struct {
	value float32
	seq   int
	last  bool
}

// Array is the multiplier-switch array. The engine assigns each switch to a
// virtual neuron (VN) and tells the array, per VN and step, how many member
// products to expect; ReadyVN reports VNs whose current step is complete.
type Array struct {
	name       string
	n          int
	forwarding bool // Linear MN: forwarding links present
	ms         []msState
	counters   *comp.Counters

	// Pre-resolved counter handles (per-cycle hot path).
	cMults, cActive, cWeightLoads, cForwards, cReconf comp.Counter
	cFifoPushes, cFifoPops                            comp.Counter

	vnMembers [][]int // vn -> member switch indices
	vnOf      []int   // switch -> vn (-1 when unassigned)
}

// NewArray builds an MS array of n switches. forwarding selects the Linear
// MN (true) or Disabled MN (false). fifoDepth bounds each operand FIFO.
func NewArray(n, fifoDepth int, forwarding bool, c *comp.Counters) *Array {
	a := &Array{
		name:         "mn.array",
		n:            n,
		forwarding:   forwarding,
		ms:           make([]msState, n),
		counters:     c,
		cMults:       c.Counter(names.MNMults),
		cActive:      c.Counter(names.MNActiveCycles),
		cWeightLoads: c.Counter(names.MNWeightLoads),
		cForwards:    c.Counter(names.MNForwards),
		cReconf:      c.Counter(names.MNReconfigurations),
		cFifoPushes:  c.Counter(names.MNFifoPushes),
		cFifoPops:    c.Counter(names.MNFifoPops),
		vnOf:         make([]int, n),
	}
	for i := range a.ms {
		a.ms[i].in = comp.NewFIFO(fmt.Sprintf("mn.ms%d.in", i), fifoDepth)
		a.vnOf[i] = -1
	}
	return a
}

// Name implements comp.Component.
func (a *Array) Name() string { return a.name }

// Size returns the number of multiplier switches.
func (a *Array) Size() int { return a.n }

// Forwarding reports whether the array has inter-switch forwarding links.
func (a *Array) Forwarding() bool { return a.forwarding }

// ConfigureVNs assigns switches to virtual neurons. Each inner slice lists
// the member switch indices of one VN. Reconfiguration happens between
// tiles, mirroring the signals the paper's Configuration Unit drives.
func (a *Array) ConfigureVNs(vns [][]int) error {
	for i := range a.vnOf {
		a.vnOf[i] = -1
	}
	for vn, members := range vns {
		for _, ms := range members {
			if ms < 0 || ms >= a.n {
				return fmt.Errorf("mn: VN %d member %d out of range [0,%d)", vn, ms, a.n)
			}
			if a.vnOf[ms] != -1 {
				return fmt.Errorf("mn: switch %d assigned to both VN %d and VN %d", ms, a.vnOf[ms], vn)
			}
			a.vnOf[ms] = vn
		}
	}
	a.vnMembers = vns
	a.cReconf.Add(1)
	return nil
}

// VNs returns the current VN membership table.
func (a *Array) VNs() [][]int { return a.vnMembers }

// CanDeliver is the dn.Prober: it reports whether Deliver would accept the
// packet right now, without side effects.
func (a *Array) CanDeliver(ms int, p comp.Packet) bool {
	s := &a.ms[ms]
	switch p.Kind {
	case comp.WeightPkt:
		if p.Gen != 0 {
			return !s.hasShadow || s.in.Empty()
		}
		return true
	default:
		return !s.in.Full()
	}
}

// Deliver is the dn.Sink: weights land in the stationary register, inputs
// in the operand FIFO. It returns false when the operand FIFO is full.
func (a *Array) Deliver(ms int, p comp.Packet) bool {
	s := &a.ms[ms]
	switch p.Kind {
	case comp.WeightPkt:
		if p.Gen != 0 {
			// A still-unpromoted shadow may only be overwritten when the
			// operand FIFO is empty: deliveries arrive in program order,
			// so an empty FIFO proves no input of the shadow's generation
			// is still coming (streaming sparsity can skip a switch for a
			// whole round). Otherwise back-pressure the network.
			if s.hasShadow && !s.in.Empty() {
				return false
			}
			s.shadow = p.Value
			s.shadowGen = p.Gen
			s.hasShadow = true
		} else {
			s.stationary = p.Value
			s.hasStat = true
			s.curGen = 0
		}
		a.cWeightLoads.Add(1)
		return true
	default:
		return s.in.Push(p)
	}
}

// Forward injects the most recent input of switch `from` into switch `to`
// via the forwarding link, without touching the distribution network. It
// returns false when the source has not seen an input yet or the target
// FIFO is full. Only meaningful on a Linear MN.
func (a *Array) Forward(from, to int) bool {
	if !a.forwarding {
		return false
	}
	src := &a.ms[from]
	if !src.hasLast {
		return false
	}
	ok := a.ms[to].in.Push(comp.Packet{
		Value: src.lastInput, Kind: comp.InputPkt, Seq: src.lastInputSeq,
	})
	if ok {
		a.cForwards.Add(1)
	}
	return ok
}

// StationaryLoaded reports whether every switch in the given set has its
// stationary operand.
func (a *Array) StationaryLoaded(set []int) bool {
	for _, ms := range set {
		if !a.ms[ms].hasStat {
			return false
		}
	}
	return true
}

// InvalidateStationary clears the stationary registers of the given
// switches (between tiles).
func (a *Array) InvalidateStationary(set []int) {
	for _, ms := range set {
		a.ms[ms].hasStat = false
	}
}

// Cycle fires every switch that has a stationary operand, a queued input
// and latch space: one multiply per switch per cycle. An input of a newer
// generation first promotes the matching shadow register; if that shadow
// has not arrived yet, the switch stalls.
func (a *Array) Cycle() {
	fired := 0
	for i := range a.ms {
		s := &a.ms[i]
		if len(s.psums) >= psumLatchDepth {
			continue
		}
		p, ok := s.in.Peek()
		if !ok {
			continue
		}
		if p.Gen != s.curGen {
			if !s.hasShadow || s.shadowGen != p.Gen {
				continue // waiting for this generation's stationary value
			}
			s.stationary = s.shadow
			s.hasStat = true
			s.curGen = p.Gen
			s.hasShadow = false
		}
		if !s.hasStat {
			continue
		}
		s.in.Pop()
		s.lastInput = p.Value
		s.lastInputSeq = p.Seq
		s.hasLast = true
		//lint:ignore hotpathalloc latch depth is capped at psumLatchDepth (checked above) and pops copy down in place, so the backing array stops growing after the first few cycles
		s.psums = append(s.psums, psum{value: s.stationary * p.Value, seq: p.Seq, last: p.Last})
		fired++
	}
	if fired > 0 {
		a.cMults.Add(uint64(fired))
		a.cActive.Add(1)
	}
}

// Lookahead implements comp.Lookahead: an idle array (no queued operands,
// no latched psums) fires nothing and touches no counter, so its Cycle is a
// pure no-op for any horizon; any in-flight work means it must tick. The
// Idle scan is O(switches), which is why the kernel probes the controller's
// cheap bound first and reaches this only in candidate steady states.
func (a *Array) Lookahead() uint64 {
	if a.Idle() {
		return comp.Unbounded
	}
	return 0
}

// Advance implements comp.Lookahead: an idle array has no per-cycle state.
func (a *Array) Advance(uint64) {}

// ReadyVN reports whether VN vn has a complete product set for step seq:
// at least `expect` member switches hold a head psum tagged seq.
func (a *Array) ReadyVN(vn, seq, expect int) bool {
	if vn >= len(a.vnMembers) {
		return false
	}
	return a.ReadyMembers(a.vnMembers[vn], seq, expect)
}

// ReadyMembers is ReadyVN over an explicit member set — used by
// controllers whose cluster shapes change every round and are snapshot
// into the job itself.
func (a *Array) ReadyMembers(members []int, seq, expect int) bool {
	count := 0
	for _, ms := range members {
		ps := a.ms[ms].psums
		if len(ps) > 0 && ps[0].seq == seq {
			count++
		}
	}
	return count >= expect
}

// PopVN removes and returns the head psums of VN vn tagged with step seq.
// last reports whether any contributing product was marked final.
func (a *Array) PopVN(vn, seq int) (values []float32, last bool) {
	return a.PopMembers(a.vnMembers[vn], seq)
}

// PopMembers is PopVN over an explicit member set.
func (a *Array) PopMembers(members []int, seq int) (values []float32, last bool) {
	return a.AppendPop(nil, members, seq)
}

// AppendPop appends the popped head psums of the member set for step seq to
// dst and returns the extended slice — the allocation-free variant the
// cycle loop uses with a reusable scratch buffer.
func (a *Array) AppendPop(dst []float32, members []int, seq int) (values []float32, last bool) {
	values = dst
	for _, ms := range members {
		s := &a.ms[ms]
		if len(s.psums) > 0 && s.psums[0].seq == seq {
			//lint:ignore hotpathalloc dst is the caller's reusable scratch buffer (reset to len 0 each cycle), so this append reallocates only until it reaches steady-state capacity
			values = append(values, s.psums[0].value)
			last = last || s.psums[0].last
			// Copy-down pop keeps the latch's backing array (depth ≤
			// psumLatchDepth), so the following append reuses it instead of
			// reallocating every multiply.
			n := copy(s.psums, s.psums[1:])
			s.psums = s.psums[:n]
		}
	}
	return values, last
}

// QuiescentSet reports whether every switch in the set has drained its
// operand FIFO and psum latches — the safe condition for reloading its
// stationary register.
func (a *Array) QuiescentSet(set []int) bool {
	for _, ms := range set {
		s := &a.ms[ms]
		if !s.in.Empty() || len(s.psums) > 0 {
			return false
		}
	}
	return true
}

// Idle reports whether no switch holds queued inputs or latched psums.
func (a *Array) Idle() bool {
	for i := range a.ms {
		s := &a.ms[i]
		if !s.in.Empty() || len(s.psums) > 0 {
			return false
		}
	}
	return true
}

// FIFOOccupancy returns the total queued operands (used by tests to check
// back-pressure invariants).
func (a *Array) FIFOOccupancy() int {
	total := 0
	for i := range a.ms {
		total += a.ms[i].in.Len()
	}
	return total
}

// CollectFIFOStats folds per-switch FIFO activity into the counters.
func (a *Array) CollectFIFOStats() {
	for i := range a.ms {
		pushes, pops, _ := a.ms[i].in.Stats()
		a.cFifoPushes.Add(pushes)
		a.cFifoPops.Add(pops)
	}
}
