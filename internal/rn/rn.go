// Package rn implements the reduction networks of Section IV-A.3: the
// MAERI Augmented Reduction Tree (ART, 3:1 adders with horizontal links),
// ART with an accumulation buffer (ART+ACC), the SIGMA Forwarding Adder
// Network (FAN, 2:1 adders), and the Linear Reduction Network of rigid
// designs. A reduction network turns per-step product sets of each virtual
// neuron into outputs, pipelined, under a per-cycle output-port budget.
package rn

import (
	"fmt"
	"math/bits"

	"repro/internal/comp"
)

// Job is one virtual neuron's product set for one step of computation.
type Job struct {
	VN  int
	Seq int
	// Values are the products entering the tree this cycle.
	Values []float32
	// OutIdx identifies the output element this (chain of) reduction(s)
	// produces.
	OutIdx int
	// Last marks the final fold: after it the accumulated value leaves the
	// network as an output.
	Last bool
}

// Result is a completed output leaving the reduction network. Last is
// propagated from the job so accumulator-less configurations can tell
// final results from fold partials.
type Result struct {
	VN     int
	OutIdx int
	Value  float32
	Last   bool
}

// Sink receives completed outputs (normally the Global Buffer write port);
// it must always accept — the port budget is enforced by the network.
type Sink func(r Result)

// Network is the common behaviour of all reduction network types.
type Network interface {
	comp.Component
	// Offer admits a job this cycle. It returns false when the input stage
	// has no capacity left this cycle; the caller retries next cycle.
	Offer(j Job) bool
	// SetSink wires the output destination.
	SetSink(s Sink)
	// Drained reports no in-flight reductions or queued outputs.
	Drained() bool
	// Bandwidth returns the output elements/cycle budget.
	Bandwidth() int
}

// Kind selects a reduction network implementation.
type Kind int

const (
	// ART is the augmented reduction tree without accumulators: folded
	// partial sums must round-trip through the output ports.
	ART Kind = iota
	// ARTAcc is ART with accumulation buffers at the outputs.
	ARTAcc
	// FAN is the SIGMA forwarding adder network (2:1 adders, accumulators).
	FAN
	// Linear is the serial accumulation chain of rigid accelerators.
	Linear
)

func (k Kind) String() string {
	switch k {
	case ART:
		return "ART"
	case ARTAcc:
		return "ART+ACC"
	case FAN:
		return "FAN"
	case Linear:
		return "LRN"
	default:
		return fmt.Sprintf("rn.Kind(%d)", int(k))
	}
}

type inflight struct {
	job   Job
	ready uint64 // cycle at which the reduced value pops out of the tree
}

// Net is the concrete implementation; behaviour differences between kinds
// are latency, adder accounting and accumulator presence.
type Net struct {
	kind       Kind
	name       string
	size       int // total adder inputs per cycle == MS count
	outBW      int
	hasAcc     bool
	sink       Sink
	counters   *comp.Counters
	cycleCount uint64

	inflight   []inflight
	acc        map[int]float32 // OutIdx -> running partial (ARTAcc/FAN)
	outQ       []Result
	inUsedThis int // adder inputs consumed in the current cycle
}

// New builds a reduction network of the given kind over `size` inputs with
// an output bandwidth of outBW elements/cycle.
func New(kind Kind, size, outBW int, c *comp.Counters) *Net {
	return &Net{
		kind:     kind,
		name:     "rn." + kind.String(),
		size:     size,
		outBW:    outBW,
		hasAcc:   kind == ARTAcc || kind == FAN,
		counters: c,
		acc:      make(map[int]float32),
	}
}

// Name implements comp.Component.
func (n *Net) Name() string { return n.name }

// SetSink implements Network.
func (n *Net) SetSink(s Sink) { n.sink = s }

// Bandwidth implements Network.
func (n *Net) Bandwidth() int { return n.outBW }

// HasAccumulator reports whether folded partial sums stay inside the
// network (ART+ACC, FAN) instead of round-tripping through the GB.
func (n *Net) HasAccumulator() bool { return n.hasAcc }

// CanAccept reports whether a job with the given input count would be
// admitted this cycle, letting callers test before destructively popping
// operands from the multiplier network.
func (n *Net) CanAccept(inputs int) bool { return n.inUsedThis+inputs <= n.size }

// Offer implements Network: a job occupies len(Values) tree inputs in the
// current cycle; the spatial tree can ingest `size` inputs per cycle total.
func (n *Net) Offer(j Job) bool {
	need := len(j.Values)
	if need == 0 {
		return true
	}
	if n.inUsedThis+need > n.size {
		n.counters.Add("rn.input_stalls", 1)
		return false
	}
	n.inUsedThis += need
	n.inflight = append(n.inflight, inflight{job: j, ready: n.cycleCount + uint64(n.latency(need))})
	n.countAdders(need)
	return true
}

func (n *Net) latency(inputs int) int {
	switch n.kind {
	case Linear:
		// Serial chain: one hop per element.
		if inputs < 1 {
			return 1
		}
		return inputs
	default:
		// Pipelined tree: one level per cycle.
		l := log2ceil(inputs)
		if l < 1 {
			l = 1
		}
		return l
	}
}

func (n *Net) countAdders(inputs int) {
	if inputs <= 1 {
		return
	}
	switch n.kind {
	case ART, ARTAcc:
		// 3:1 adder switches: each absorbs up to two extra operands.
		n.counters.Add("rn.adders_3to1", uint64(inputs/2))
	case FAN:
		// 2:1 adders with forwarding muxes: k-1 additions per reduction.
		n.counters.Add("rn.adders_fan", uint64(inputs-1))
	case Linear:
		n.counters.Add("rn.adders_lrn", uint64(inputs-1))
	}
}

// Cycle advances the pipeline: completed reductions either accumulate or
// join the output queue, and up to outBW outputs leave through the ports.
func (n *Net) Cycle() {
	n.cycleCount++
	n.inUsedThis = 0

	// Retire reductions whose tree traversal completed. Retirement is
	// in-order per output index: a short reduction (a partial last fold)
	// must not overtake an earlier fold of the same output through the
	// accumulator.
	blocked := map[int]struct{}{}
	kept := n.inflight[:0]
	for _, f := range n.inflight {
		if _, wait := blocked[f.job.OutIdx]; wait || f.ready > n.cycleCount {
			blocked[f.job.OutIdx] = struct{}{}
			kept = append(kept, f)
			continue
		}
		sum := float32(0)
		for _, v := range f.job.Values {
			sum += v
		}
		if n.hasAcc {
			n.counters.Add("rn.acc_accesses", 1)
			n.acc[f.job.OutIdx] += sum
			if f.job.Last {
				n.outQ = append(n.outQ, Result{VN: f.job.VN, OutIdx: f.job.OutIdx, Value: n.acc[f.job.OutIdx], Last: true})
				delete(n.acc, f.job.OutIdx)
			}
		} else {
			// Without accumulators every fold's partial leaves through the
			// output ports (and is re-read by the controller), so each
			// fold occupies port bandwidth. The engine folds externally.
			n.outQ = append(n.outQ, Result{VN: f.job.VN, OutIdx: f.job.OutIdx, Value: sum, Last: f.job.Last})
		}
	}
	n.inflight = kept

	// Drain output ports.
	sent := 0
	for sent < n.outBW && len(n.outQ) > 0 {
		r := n.outQ[0]
		n.outQ = n.outQ[1:]
		n.sink(r)
		sent++
		n.counters.Add("rn.outputs", 1)
	}
	if sent > 0 {
		n.counters.Add("rn.active_cycles", 1)
	}
	if len(n.outQ) > 0 {
		n.counters.Add("rn.output_stalls", 1)
	}
}

// Drained implements Network.
func (n *Net) Drained() bool { return len(n.inflight) == 0 && len(n.outQ) == 0 }

// PendingAccumulations reports OutIdx entries still held in the
// accumulators (non-empty indicates a missing Last job — a controller bug
// tests assert against).
func (n *Net) PendingAccumulations() int { return len(n.acc) }

func log2ceil(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}
