// Package rn implements the reduction networks of Section IV-A.3: the
// MAERI Augmented Reduction Tree (ART, 3:1 adders with horizontal links),
// ART with an accumulation buffer (ART+ACC), the SIGMA Forwarding Adder
// Network (FAN, 2:1 adders), and the Linear Reduction Network of rigid
// designs. A reduction network turns per-step product sets of each virtual
// neuron into outputs, pipelined, under a per-cycle output-port budget.
//
// The rn.active_cycles / adder counters and the rn.output_stalls /
// rn.input_stalls back-pressure counters double as the trace layer's busy
// and bandwidth-stall probes for the RN tier (internal/trace).
package rn

import (
	"fmt"
	"math/bits"

	"repro/internal/comp"
	"repro/internal/comp/names"
)

// Job is one virtual neuron's product set for one step of computation.
type Job struct {
	VN  int
	Seq int
	// Values are the products entering the tree this cycle.
	Values []float32
	// OutIdx identifies the output element this (chain of) reduction(s)
	// produces.
	OutIdx int
	// Last marks the final fold: after it the accumulated value leaves the
	// network as an output.
	Last bool
}

// Result is a completed output leaving the reduction network. Last is
// propagated from the job so accumulator-less configurations can tell
// final results from fold partials.
type Result struct {
	VN     int
	OutIdx int
	Value  float32
	Last   bool
}

// Sink receives completed outputs (normally the Global Buffer write port);
// it must always accept — the port budget is enforced by the network.
type Sink func(r Result)

// Network is the common behaviour of all reduction network types.
type Network interface {
	comp.Component
	// Offer admits a job this cycle. It returns false when the input stage
	// has no capacity left this cycle; the caller retries next cycle.
	Offer(j Job) bool
	// SetSink wires the output destination.
	SetSink(s Sink)
	// Drained reports no in-flight reductions or queued outputs.
	Drained() bool
	// Bandwidth returns the output elements/cycle budget.
	Bandwidth() int
}

// Kind selects a reduction network implementation.
type Kind int

const (
	// ART is the augmented reduction tree without accumulators: folded
	// partial sums must round-trip through the output ports.
	ART Kind = iota
	// ARTAcc is ART with accumulation buffers at the outputs.
	ARTAcc
	// FAN is the SIGMA forwarding adder network (2:1 adders, accumulators).
	FAN
	// Linear is the serial accumulation chain of rigid accelerators.
	Linear
)

func (k Kind) String() string {
	switch k {
	case ART:
		return "ART"
	case ARTAcc:
		return "ART+ACC"
	case FAN:
		return "FAN"
	case Linear:
		return "LRN"
	default:
		return fmt.Sprintf("rn.Kind(%d)", int(k))
	}
}

// inflight is one reduction travelling the tree. The job's product set is
// folded at Offer time (same element order, hence bit-identical float
// results) so the network never retains the caller's Values slice — what
// lets the controller reuse one scratch buffer for every pop.
type inflight struct {
	vn     int
	outIdx int
	sum    float32
	last   bool
	ready  uint64 // cycle at which the reduced value pops out of the tree
}

// Net is the concrete implementation; behaviour differences between kinds
// are latency, adder accounting and accumulator presence.
type Net struct {
	kind       Kind
	name       string
	size       int // total adder inputs per cycle == MS count
	outBW      int
	hasAcc     bool
	sink       Sink
	counters   *comp.Counters
	cycleCount uint64

	// Pre-resolved counter handles (per-cycle hot path). cAdders is the
	// kind-specific adder event counter.
	cInputStalls, cAdders, cAccAccesses comp.Counter
	cOutputs, cActive, cOutputStalls    comp.Counter

	inflight   []inflight
	acc        map[int]float32  // OutIdx -> running partial (ARTAcc/FAN)
	blocked    map[int]struct{} // reused per cycle: OutIdx retirement order
	outQ       []Result
	outHead    int // consumed prefix of outQ (head-indexed queue)
	inUsedThis int // adder inputs consumed in the current cycle
}

// New builds a reduction network of the given kind over `size` inputs with
// an output bandwidth of outBW elements/cycle.
func New(kind Kind, size, outBW int, c *comp.Counters) *Net {
	adders := names.RNAddersLRN
	switch kind {
	case ART, ARTAcc:
		adders = names.RNAdders3to1
	case FAN:
		adders = names.RNAddersFAN
	}
	return &Net{
		kind:          kind,
		name:          "rn." + kind.String(),
		size:          size,
		outBW:         outBW,
		hasAcc:        kind == ARTAcc || kind == FAN,
		counters:      c,
		cInputStalls:  c.Counter(names.RNInputStalls),
		cAdders:       c.Counter(adders),
		cAccAccesses:  c.Counter(names.RNAccAccesses),
		cOutputs:      c.Counter(names.RNOutputs),
		cActive:       c.Counter(names.RNActiveCycles),
		cOutputStalls: c.Counter(names.RNOutputStalls),
		acc:           make(map[int]float32),
		blocked:       make(map[int]struct{}),
	}
}

// Name implements comp.Component.
func (n *Net) Name() string { return n.name }

// SetSink implements Network.
func (n *Net) SetSink(s Sink) { n.sink = s }

// Bandwidth implements Network.
func (n *Net) Bandwidth() int { return n.outBW }

// HasAccumulator reports whether folded partial sums stay inside the
// network (ART+ACC, FAN) instead of round-tripping through the GB.
func (n *Net) HasAccumulator() bool { return n.hasAcc }

// CanAccept reports whether a job with the given input count would be
// admitted this cycle, letting callers test before destructively popping
// operands from the multiplier network.
func (n *Net) CanAccept(inputs int) bool { return n.inUsedThis+inputs <= n.size }

// Offer implements Network: a job occupies len(Values) tree inputs in the
// current cycle; the spatial tree can ingest `size` inputs per cycle total.
// The Values slice is not retained — its elements are folded (in order)
// before Offer returns, so callers may reuse the backing array.
func (n *Net) Offer(j Job) bool {
	need := len(j.Values)
	if need == 0 {
		return true
	}
	if n.inUsedThis+need > n.size {
		n.cInputStalls.Add(1)
		return false
	}
	n.inUsedThis += need
	sum := float32(0)
	for _, v := range j.Values {
		sum += v
	}
	//lint:ignore hotpathalloc Cycle retires by re-slicing inflight to [:0], so the backing array is reused once it reaches the network's natural occupancy
	n.inflight = append(n.inflight, inflight{
		vn: j.VN, outIdx: j.OutIdx, sum: sum, last: j.Last,
		ready: n.cycleCount + uint64(n.latency(need)),
	})
	n.countAdders(need)
	return true
}

func (n *Net) latency(inputs int) int {
	switch n.kind {
	case Linear:
		// Serial chain: one hop per element.
		if inputs < 1 {
			return 1
		}
		return inputs
	default:
		// Pipelined tree: one level per cycle.
		l := log2ceil(inputs)
		if l < 1 {
			l = 1
		}
		return l
	}
}

func (n *Net) countAdders(inputs int) {
	if inputs <= 1 {
		return
	}
	switch n.kind {
	case ART, ARTAcc:
		// 3:1 adder switches: each absorbs up to two extra operands.
		n.cAdders.Add(uint64(inputs / 2))
	default:
		// FAN / LRN: 2:1 adders, k-1 additions per reduction.
		n.cAdders.Add(uint64(inputs - 1))
	}
}

// outLen is the current output-queue occupancy.
func (n *Net) outLen() int { return len(n.outQ) - n.outHead }

// Cycle advances the pipeline: completed reductions either accumulate or
// join the output queue, and up to outBW outputs leave through the ports.
func (n *Net) Cycle() {
	n.cycleCount++
	n.inUsedThis = 0

	// Retire reductions whose tree traversal completed. Retirement is
	// in-order per output index: a short reduction (a partial last fold)
	// must not overtake an earlier fold of the same output through the
	// accumulator. The blocked set is a reused map, cleared per cycle only
	// when in-flight work exists, so an idle network allocates nothing.
	if len(n.inflight) > 0 {
		clear(n.blocked)
		kept := n.inflight[:0]
		for _, f := range n.inflight {
			if _, wait := n.blocked[f.outIdx]; wait || f.ready > n.cycleCount { //lint:ignore hotpathalloc blocked is the reused per-cycle map cleared above, never reallocated
				n.blocked[f.outIdx] = struct{}{} //lint:ignore hotpathalloc insertion into the reused blocked map; its buckets persist across cycles
				kept = append(kept, f)           //lint:ignore hotpathalloc kept re-slices inflight's own backing array ([:0]), so no new allocation
				continue
			}
			if n.hasAcc {
				n.cAccAccesses.Add(1)
				n.acc[f.outIdx] += f.sum //lint:ignore hotpathalloc acc models the accumulator RAM: sparse map keyed by live output indices, entries deleted on retire
				if f.last {
					n.outQ = append(n.outQ, Result{VN: f.vn, OutIdx: f.outIdx, Value: n.acc[f.outIdx], Last: true}) //lint:ignore hotpathalloc outQ pops head-indexed, reusing its backing array; acc read hits the live entry inserted above
					delete(n.acc, f.outIdx)
				}
			} else {
				// Without accumulators every fold's partial leaves through the
				// output ports (and is re-read by the controller), so each
				// fold occupies port bandwidth. The engine folds externally.
				n.outQ = append(n.outQ, Result{VN: f.vn, OutIdx: f.outIdx, Value: f.sum, Last: f.last}) //lint:ignore hotpathalloc outQ pops head-indexed, reusing its backing array at steady state
			}
		}
		n.inflight = kept
	}

	// Drain output ports (head-indexed pop keeps the queue's backing array).
	sent := 0
	for sent < n.outBW && n.outLen() > 0 {
		r := n.outQ[n.outHead]
		n.outHead++
		n.sink(r)
		sent++
		n.cOutputs.Add(1)
	}
	if n.outHead == len(n.outQ) {
		n.outQ = n.outQ[:0]
		n.outHead = 0
	}
	if sent > 0 {
		n.cActive.Add(1)
	}
	if n.outLen() > 0 {
		n.cOutputStalls.Add(1)
	}
}

// Drained implements Network.
func (n *Net) Drained() bool { return len(n.inflight) == 0 && n.outLen() == 0 }

// Lookahead implements comp.Lookahead. Unlike the other fabric tiers the RN
// mutates state every single Cycle — its internal clock (cycleCount) always
// advances — but that clock is exactly what Advance replays in closed form,
// so the steady-state question reduces to: for how many upcoming ticks does
// nothing retire and nothing leave the ports? Queued outputs force a tick
// immediately; an empty network is steady for any horizon; otherwise the
// earliest in-flight ready cycle bounds the skip. A tick at internal clock
// c retires entries with ready ≤ c, so from the current clock c0 the next k
// ticks (clocks c0+1 … c0+k) are no-ops exactly while k ≤ minReady − c0 − 1.
func (n *Net) Lookahead() uint64 {
	if n.outLen() > 0 {
		return 0
	}
	if len(n.inflight) == 0 {
		return comp.Unbounded
	}
	minReady := n.inflight[0].ready
	for _, f := range n.inflight[1:] {
		if f.ready < minReady {
			minReady = f.ready
		}
	}
	if minReady <= n.cycleCount+1 {
		return 0
	}
	return minReady - n.cycleCount - 1
}

// Advance implements comp.Lookahead: n skipped ticks advance the internal
// clock by n and nothing else — no retirement was due (Lookahead's bound),
// no output left, no counter would have fired.
func (n *Net) Advance(cycles uint64) { n.cycleCount += cycles }

// PendingAccumulations reports OutIdx entries still held in the
// accumulators (non-empty indicates a missing Last job — a controller bug
// tests assert against).
func (n *Net) PendingAccumulations() int { return len(n.acc) }

func log2ceil(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}
