package rn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/comp"
)

func runUntilDrained(t *testing.T, n *Net, max int) {
	t.Helper()
	for i := 0; i < max; i++ {
		n.Cycle()
		if n.Drained() {
			return
		}
	}
	t.Fatalf("network not drained after %d cycles", max)
}

func TestFANReducesAndAccumulates(t *testing.T) {
	c := comp.NewCounters()
	n := New(FAN, 16, 4, c)
	var results []Result
	n.SetSink(func(r Result) { results = append(results, r) })

	// Two folds accumulate, the second is Last.
	if !n.Offer(Job{VN: 0, Seq: 0, Values: []float32{1, 2, 3}, OutIdx: 7}) {
		t.Fatal("offer rejected")
	}
	n.Cycle()
	n.Offer(Job{VN: 0, Seq: 1, Values: []float32{4, 5}, OutIdx: 7, Last: true})
	runUntilDrained(t, n, 20)
	if len(results) != 1 {
		t.Fatalf("results %v", results)
	}
	if results[0].Value != 15 || results[0].OutIdx != 7 || !results[0].Last {
		t.Errorf("result %+v", results[0])
	}
	if n.PendingAccumulations() != 0 {
		t.Error("accumulator leaked")
	}
	if c.Get("rn.adders_fan") != 3 { // 2 + 1 additions
		t.Errorf("fan adders %d", c.Get("rn.adders_fan"))
	}
}

func TestARTCounts3to1(t *testing.T) {
	c := comp.NewCounters()
	n := New(ART, 16, 4, c)
	var results []Result
	n.SetSink(func(r Result) { results = append(results, r) })
	n.Offer(Job{VN: 1, Values: []float32{1, 1, 1, 1, 1}, OutIdx: 0, Last: true})
	runUntilDrained(t, n, 20)
	if len(results) != 1 || results[0].Value != 5 {
		t.Fatalf("results %v", results)
	}
	if c.Get("rn.adders_3to1") != 2 { // 5 inputs → two 3:1 nodes
		t.Errorf("3:1 adders %d", c.Get("rn.adders_3to1"))
	}
}

func TestARTWithoutAccEmitsPartials(t *testing.T) {
	c := comp.NewCounters()
	n := New(ART, 16, 4, c)
	var results []Result
	n.SetSink(func(r Result) { results = append(results, r) })
	n.Offer(Job{VN: 0, Values: []float32{1, 2}, OutIdx: 3, Last: false})
	n.Cycle()
	n.Offer(Job{VN: 0, Values: []float32{3}, OutIdx: 3, Last: true})
	runUntilDrained(t, n, 20)
	// Plain ART has no accumulator: both partials exit.
	if len(results) != 2 {
		t.Fatalf("results %v", results)
	}
	if results[0].Last || !results[1].Last {
		t.Errorf("Last flags wrong: %+v", results)
	}
}

func TestInputCapacityPerCycle(t *testing.T) {
	c := comp.NewCounters()
	n := New(FAN, 8, 4, c)
	n.SetSink(func(Result) {})
	if !n.CanAccept(8) {
		t.Fatal("fresh network rejects full-width job")
	}
	n.Offer(Job{VN: 0, Values: make([]float32, 6), OutIdx: 0, Last: true})
	if n.CanAccept(4) {
		t.Error("capacity not consumed")
	}
	if n.Offer(Job{VN: 1, Values: make([]float32, 4), OutIdx: 1, Last: true}) {
		t.Error("over-capacity job accepted")
	}
	n.Cycle() // resets the per-cycle budget
	if !n.CanAccept(8) {
		t.Error("budget not reset after cycle")
	}
}

func TestOutputBandwidth(t *testing.T) {
	c := comp.NewCounters()
	n := New(FAN, 32, 2, c)
	var results []Result
	n.SetSink(func(r Result) { results = append(results, r) })
	for i := 0; i < 5; i++ {
		n.Offer(Job{VN: i, Values: []float32{1}, OutIdx: i, Last: true})
	}
	n.Cycle() // retire + drain ≤ 2
	n.Cycle()
	if len(results) > 4 {
		t.Fatalf("output ports exceeded: %d results after 2 cycles", len(results))
	}
	runUntilDrained(t, n, 20)
	if len(results) != 5 {
		t.Errorf("total results %d", len(results))
	}
	if c.Get("rn.output_stalls") == 0 {
		t.Error("no output stalls recorded despite port pressure")
	}
}

func TestLinearLatencyIsSerial(t *testing.T) {
	c := comp.NewCounters()
	n := New(Linear, 16, 16, c)
	var got []Result
	n.SetSink(func(r Result) { got = append(got, r) })
	n.Offer(Job{VN: 0, Values: make([]float32, 8), OutIdx: 0, Last: true})
	for i := 0; i < 7; i++ {
		n.Cycle()
		if len(got) > 0 {
			t.Fatalf("linear chain finished after %d cycles (serial latency is 8)", i+1)
		}
	}
	n.Cycle()
	n.Cycle()
	if len(got) != 1 {
		t.Errorf("result missing after serial latency: %d", len(got))
	}
}

// Property: for any set of fold partitions, the FAN accumulator produces
// the exact sum of all values.
func TestReductionSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := uint64(seed)*0x9e3779b97f4a7c15 + 5
		next := func(m int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(m))
		}
		c := comp.NewCounters()
		n := New(FAN, 64, 8, c)
		var got float64
		done := 0
		n.SetSink(func(r Result) {
			got += float64(r.Value)
			done++
		})
		want := 0.0
		folds := 1 + next(4)
		for f := 0; f < folds; f++ {
			vals := make([]float32, 1+next(8))
			for i := range vals {
				vals[i] = float32(next(100)) / 10
				want += float64(vals[i])
			}
			for !n.Offer(Job{VN: 0, Seq: f, Values: vals, OutIdx: 0, Last: f == folds-1}) {
				n.Cycle()
			}
			n.Cycle()
		}
		for i := 0; i < 50 && !n.Drained(); i++ {
			n.Cycle()
		}
		return done == 1 && math.Abs(got-want) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{ART: "ART", ARTAcc: "ART+ACC", FAN: "FAN", Linear: "LRN"} {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
}
