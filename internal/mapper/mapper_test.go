package mapper

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/tensor"
)

func hw(ms, bw int) *config.Hardware {
	h := config.MAERILike(ms, bw)
	return &h
}

func TestPickConvBasic(t *testing.T) {
	cs := tensor.ConvShape{R: 3, S: 3, C: 6, G: 1, K: 6, N: 1, X: 7, Y: 7, Stride: 1}
	tile, err := PickConv(hw(32, 4), cs)
	if err != nil {
		t.Fatal(err)
	}
	if err := tile.Validate(cs); err != nil {
		t.Fatal(err)
	}
	if tile.TR != 3 || tile.TS != 3 {
		t.Errorf("tile does not cover the window: %+v", tile)
	}
	if tile.UsedMultipliers > 32 {
		t.Errorf("tile overflows the fabric: %+v", tile)
	}
	if tile.VNSize*tile.Folds < 3*3*6 {
		t.Errorf("folds do not cover the dot product: %+v", tile)
	}
}

func TestPickConvOversizeWindow(t *testing.T) {
	cs := tensor.ConvShape{R: 11, S: 11, C: 3, G: 1, K: 4, N: 1, X: 32, Y: 32, Stride: 4}
	tile, err := PickConv(hw(64, 16), cs)
	if err != nil {
		t.Fatal(err)
	}
	if tile.VNSize != 64 || tile.NumVNs != 1 {
		t.Errorf("oversize window tile: %+v", tile)
	}
	if tile.Folds*tile.VNSize < 11*11*3 {
		t.Errorf("folds do not cover the window: %+v", tile)
	}
}

func TestPickGEMMBasic(t *testing.T) {
	tile, err := PickGEMM(hw(128, 32), 64, 32, 48)
	if err != nil {
		t.Fatal(err)
	}
	if tile.KSlice != 48 || tile.Folds != 1 {
		t.Errorf("KSlice/folds: %+v", tile)
	}
	if tile.UsedMultipliers > 128 {
		t.Errorf("overflow: %+v", tile)
	}
	if _, err := PickGEMM(hw(128, 32), 0, 1, 1); err == nil {
		t.Error("zero dim accepted")
	}
}

// Property: every generated tile fits the fabric and its folds cover the
// full dot product.
func TestPickGEMMProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := uint64(seed)*2654435761 + 17
		next := func(lo, hi int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return lo + int(s%uint64(hi-lo+1))
		}
		ms := 1 << next(3, 9)
		m, n, k := next(1, 300), next(1, 300), next(1, 1000)
		tile, err := PickGEMM(hw(ms, ms/2), m, n, k)
		if err != nil {
			return false
		}
		return tile.UsedMultipliers <= ms &&
			tile.KSlice*tile.Folds >= k &&
			tile.TM >= 1 && tile.TN >= 1 &&
			tile.TM <= m && tile.TN <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPickConvProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := uint64(seed)*0x9e3779b97f4a7c15 + 23
		next := func(lo, hi int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return lo + int(s%uint64(hi-lo+1))
		}
		ms := 1 << next(5, 9)
		r := next(1, 5)
		cs := tensor.ConvShape{
			R: r, S: r, C: next(1, 64), G: 1, K: next(1, 64), N: 1,
			X: next(r, 32), Y: next(r, 32), Stride: next(1, 2), Padding: next(0, 1),
		}
		if cs.Validate() != nil {
			return true // skip invalid random shapes
		}
		tile, err := PickConv(hw(ms, ms/4), cs)
		if err != nil {
			return false
		}
		if tile.Validate(cs) != nil {
			return false
		}
		return tile.UsedMultipliers <= ms && tile.TC*tile.Folds >= cs.C/cs.G
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Regression: a fabric without multiplier switches used to crash both
// pickers with a division by zero inside ceilDiv.
func TestPickersRejectEmptyFabric(t *testing.T) {
	cs := tensor.ConvShape{R: 3, S: 3, C: 4, G: 1, K: 4, N: 1, X: 8, Y: 8, Stride: 1}
	for _, ms := range []int{0, -16} {
		h := hw(16, 4)
		h.MSSize = ms
		if _, err := PickConv(h, cs); err == nil {
			t.Errorf("PickConv accepted MSSize %d", ms)
		}
		if _, err := PickGEMM(h, 4, 4, 4); err == nil {
			t.Errorf("PickGEMM accepted MSSize %d", ms)
		}
	}
}

// Regression: Tile.Validate used to divide by cs.G before checking the
// shape, so a zero-group shape panicked instead of erroring.
func TestTileValidateDegenerateShape(t *testing.T) {
	tile := Tile{TR: 1, TS: 1, TC: 1, TG: 1, TK: 1, TN: 1, TXp: 1, TYp: 1, VNSize: 1, NumVNs: 1, Folds: 1}
	bad := tensor.ConvShape{R: 1, S: 1, C: 4, G: 0, K: 4, N: 1, X: 4, Y: 4, Stride: 1}
	if err := tile.Validate(bad); err == nil {
		t.Error("zero-group shape accepted")
	}
	neg := tensor.ConvShape{R: 1, S: 1, C: -4, G: 1, K: 4, N: 1, X: 4, Y: 4, Stride: 1}
	if err := tile.Validate(neg); err == nil {
		t.Error("negative-channel shape accepted")
	}
}

func TestTileValidateNonPositiveDims(t *testing.T) {
	cs := tensor.ConvShape{R: 3, S: 3, C: 4, G: 1, K: 4, N: 1, X: 8, Y: 8, Stride: 1}
	bad := Tile{TR: 3, TS: 3, TC: 0, TG: 1, TK: 1, TN: 1, TXp: 1, TYp: 1, VNSize: 0, NumVNs: 1, Folds: 1}
	if err := bad.Validate(cs); err == nil {
		t.Error("zero-TC tile accepted")
	}
	neg := Tile{TR: 3, TS: 3, TC: 1, TG: 1, TK: -1, TN: 1, TXp: 1, TYp: -1, VNSize: 9, NumVNs: 1, Folds: 1}
	if err := neg.Validate(cs); err == nil {
		t.Error("negative-parallelism tile accepted")
	}
}

func TestTileValidate(t *testing.T) {
	cs := tensor.ConvShape{R: 3, S: 3, C: 4, G: 1, K: 4, N: 1, X: 8, Y: 8, Stride: 1}
	bad := Tile{TR: 3, TS: 3, TC: 1, TG: 1, TK: 1, TN: 1, TXp: 1, TYp: 1, VNSize: 10, NumVNs: 1, Folds: 4}
	if err := bad.Validate(cs); err == nil {
		t.Error("VNSize mismatch accepted")
	}
	bad2 := Tile{TR: 5, TS: 3, TC: 1, TG: 1, TK: 1, TN: 1, TXp: 1, TYp: 1, VNSize: 15, NumVNs: 1, Folds: 4}
	if err := bad2.Validate(cs); err == nil {
		t.Error("TR > R accepted")
	}
}
