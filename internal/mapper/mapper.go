// Package mapper selects tile configurations — the role of STONNE's Mapper
// block in Figure 2(a), inspired by mRNA: given the layer shape and the
// hardware, it picks the Tile(T_R, T_S, T_C, T_G, T_K, T_N, T_X', T_Y')
// partition (Section IV-B) and derives the virtual-neuron arrangement the
// Configuration Unit programs into the fabric.
package mapper

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/tensor"
)

// Tile is the dense-controller tile descriptor of Section IV-B.
type Tile struct {
	TR, TS, TC      int // dot-product slice mapped per virtual neuron
	TG, TK, TN      int // parallel groups / filters / batch
	TXp, TYp        int // parallel output positions
	VNSize          int // TR·TS·TC
	NumVNs          int // TG·TK·TN·TXp·TYp
	Folds           int // sequential iterations to cover the full dot product
	UsedMultipliers int
}

// Validate checks internal consistency against the layer it was built for.
func (t Tile) Validate(cs tensor.ConvShape) error {
	if err := cs.Validate(); err != nil {
		return err
	}
	switch {
	case t.TR < 1 || t.TS < 1 || t.TC < 1 || t.TG < 1 || t.TK < 1 || t.TN < 1 || t.TXp < 1 || t.TYp < 1:
		return fmt.Errorf("mapper: tile has non-positive dimension: %+v", t)
	case t.VNSize != t.TR*t.TS*t.TC:
		return fmt.Errorf("mapper: VNSize %d != TR·TS·TC %d", t.VNSize, t.TR*t.TS*t.TC)
	case t.NumVNs != t.TG*t.TK*t.TN*t.TXp*t.TYp:
		return fmt.Errorf("mapper: NumVNs %d != product of parallel dims %d",
			t.NumVNs, t.TG*t.TK*t.TN*t.TXp*t.TYp)
	case t.TR > cs.R || t.TS > cs.S || t.TC > cs.C/cs.G:
		return fmt.Errorf("mapper: tile %+v exceeds filter dims of %+v", t, cs)
	case t.Folds < 1:
		return fmt.Errorf("mapper: folds must be >= 1, got %d", t.Folds)
	}
	return nil
}

// PickConv chooses a convolution tile for the hardware: the full filter
// spatial extent when it fits (T_R=R, T_S=S), the largest channel slice
// that keeps VNSize within the fabric, and the remaining multipliers spent
// on parallel output positions, then parallel filters.
func PickConv(h *config.Hardware, cs tensor.ConvShape) (Tile, error) {
	if err := cs.Validate(); err != nil {
		return Tile{}, err
	}
	if h.MSSize <= 0 {
		return Tile{}, fmt.Errorf("mapper: fabric has no multiplier switches (MSSize %d)", h.MSSize)
	}
	cg := cs.C / cs.G
	kg := cs.K / cs.G
	t := Tile{TG: 1, TN: 1}

	window := cs.R * cs.S
	switch {
	case window > h.MSSize:
		// Filter window alone exceeds the fabric: fold over the window.
		t.TR, t.TS, t.TC = cs.R, cs.S, 1
		t.VNSize = h.MSSize
		t.Folds = ceilDiv(window*cg, h.MSSize)
		t.NumVNs = 1
		t.TK, t.TXp, t.TYp = 1, 1, 1
		t.UsedMultipliers = h.MSSize
		return t, nil
	default:
		t.TR, t.TS = cs.R, cs.S
		t.TC = h.MSSize / window
		if t.TC > cg {
			t.TC = cg
		}
		if t.TC < 1 {
			t.TC = 1
		}
		t.VNSize = t.TR * t.TS * t.TC
		t.Folds = ceilDiv(cg, t.TC)
	}

	// Spend the remaining switches on parallel virtual neurons: output
	// positions first (maximizes sliding-window reuse on a Linear MN),
	// then filters.
	avail := h.MSSize / t.VNSize
	yo := cs.OutY()
	t.TYp = min(avail, yo)
	avail /= t.TYp
	t.TXp = 1
	t.TK = min(avail, kg)
	if t.TK < 1 {
		t.TK = 1
	}
	t.NumVNs = t.TG * t.TK * t.TN * t.TXp * t.TYp
	t.UsedMultipliers = t.NumVNs * t.VNSize
	return t, nil
}

// GEMMTile describes the mapping of a plain M×N×K GEMM on a flexible
// fabric: each virtual neuron covers a K-slice of one output row, folded
// when K exceeds the fabric.
type GEMMTile struct {
	KSlice int // dot-product elements per VN per fold
	Folds  int
	// TM and TN are the output rows and columns processed in parallel.
	TM, TN          int
	NumVNs          int
	UsedMultipliers int
}

// PickGEMM chooses a GEMM tile: the widest K slice that fits, remaining
// multipliers spent on parallel output columns (sharing the stationary
// row), then rows.
func PickGEMM(h *config.Hardware, m, n, k int) (GEMMTile, error) {
	if m <= 0 || n <= 0 || k <= 0 {
		return GEMMTile{}, fmt.Errorf("mapper: non-positive GEMM dims %d×%d×%d", m, n, k)
	}
	if h.MSSize <= 0 {
		return GEMMTile{}, fmt.Errorf("mapper: fabric has no multiplier switches (MSSize %d)", h.MSSize)
	}
	t := GEMMTile{}
	t.KSlice = min(k, h.MSSize)
	t.Folds = ceilDiv(k, t.KSlice)
	avail := h.MSSize / t.KSlice
	t.TM = min(avail, m)
	if t.TM < 1 {
		t.TM = 1
	}
	avail /= t.TM
	t.TN = min(avail, n)
	if t.TN < 1 {
		t.TN = 1
	}
	t.NumVNs = t.TM * t.TN
	t.UsedMultipliers = t.NumVNs * t.KSlice
	return t, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
