package trace

import "repro/internal/stats"

// TierICN is the chip-level interconnect tier of a multi-core run's cycle
// breakdown. Unlike the four fabric tiers the per-cycle recorder attributes
// (DN/MN/RN/MEM), the interconnect is a transaction-level resource shared
// across cores, so its attribution is reconstructed per op from the icn.*
// activity counters once the op's cycle count is known — ICNBreakdown does
// that reconstruction while preserving the exact-sum invariant.
const TierICN = "ICN"

// ICNBreakdown classifies one op's cycles against the shared interconnect:
// busy cycles are those the interconnect spent serving this core's
// transfers, stall-bandwidth cycles the contention delay behind other
// cores' traffic, and everything else idle (the op neither moving data nor
// waiting for the grant). The classes are clamped in priority order so the
// breakdown sums to exactly `cycles` — the same exact-sum invariant the
// per-cycle recorder guarantees for the fabric tiers — even when transfers
// overlap compute and the raw counters exceed the op's span.
func ICNBreakdown(cycles, busy, wait uint64) stats.CycleBreakdown {
	if busy > cycles {
		busy = cycles
	}
	if wait > cycles-busy {
		wait = cycles - busy
	}
	return stats.CycleBreakdown{
		Busy:           busy,
		StallBandwidth: wait,
		Idle:           cycles - busy - wait,
	}
}
